// Package audit provides the append-only audit trail that the TDM requires
// for tag suppression (§3.1): "Along with a suppressed tag, we also store an
// identifier of the user who initiated the suppression and a justification
// to facilitate future audits."
package audit

import (
	"encoding/json"
	"io"
	"sync"
	"time"
)

// Action classifies an audit entry.
type Action string

const (
	// ActionSuppress records a user declassifying a tag on a segment.
	ActionSuppress Action = "suppress"

	// ActionAllocate records a user allocating a custom tag.
	ActionAllocate Action = "allocate"

	// ActionGrant records a tag being added to a service privilege label.
	ActionGrant Action = "grant"

	// ActionRevoke records a tag being removed from a service privilege label.
	ActionRevoke Action = "revoke"

	// ActionOverride records a user overriding a Block/Warn decision.
	ActionOverride Action = "override"

	// ActionDegraded records a decision made while the shared tag service
	// was unreachable (fail-open in advisory mode, fail-closed in
	// enforcing mode). The justification carries the failure cause.
	ActionDegraded Action = "degraded"

	// ActionRecovered records the tag service becoming reachable again
	// and the buffered observations being replayed.
	ActionRecovered Action = "recovered"
)

// Entry is one immutable audit record.
type Entry struct {
	Seq           uint64    `json:"seq"`
	Time          time.Time `json:"time"`
	User          string    `json:"user"`
	Action        Action    `json:"action"`
	Tag           string    `json:"tag,omitempty"`
	Segment       string    `json:"segment,omitempty"`
	Service       string    `json:"service,omitempty"`
	Justification string    `json:"justification,omitempty"`
}

// Log is an append-only, thread-safe audit trail.
type Log struct {
	mu      sync.RWMutex
	now     func() time.Time
	entries []Entry
}

// NewLog returns an empty Log stamping entries with time.Now.
func NewLog() *Log {
	return &Log{now: time.Now}
}

// NewLogWithClock returns a Log with an injected time source, for
// deterministic tests.
func NewLogWithClock(now func() time.Time) *Log {
	return &Log{now: now}
}

// Append records e (its Seq and Time are assigned by the log) and returns
// the stored entry.
func (l *Log) Append(e Entry) Entry {
	l.mu.Lock()
	defer l.mu.Unlock()
	e.Seq = uint64(len(l.entries) + 1)
	e.Time = l.now()
	l.entries = append(l.entries, e)
	return e
}

// Len returns the number of entries.
func (l *Log) Len() int {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return len(l.entries)
}

// Entries returns a copy of all entries in append order.
func (l *Log) Entries() []Entry {
	l.mu.RLock()
	defer l.mu.RUnlock()
	out := make([]Entry, len(l.entries))
	copy(out, l.entries)
	return out
}

// Since returns a copy of the entries appended after the first n (i.e.
// entries[n:]). The durability journal uses it to capture exactly the
// audit records one registry operation produced.
func (l *Log) Since(n int) []Entry {
	l.mu.RLock()
	defer l.mu.RUnlock()
	if n < 0 {
		n = 0
	}
	if n >= len(l.entries) {
		return nil
	}
	out := make([]Entry, len(l.entries)-n)
	copy(out, l.entries[n:])
	return out
}

// Amend overwrites the entry whose Seq matches e.Seq with e, preserving
// append order. It reports whether a matching entry was found. Recovery
// uses it to restore the original timestamps of audit records regenerated
// during WAL replay.
func (l *Log) Amend(e Entry) bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	for i := range l.entries {
		if l.entries[i].Seq == e.Seq {
			l.entries[i] = e
			return true
		}
	}
	return false
}

// Filter returns the entries for which keep returns true, in append order.
func (l *Log) Filter(keep func(Entry) bool) []Entry {
	l.mu.RLock()
	defer l.mu.RUnlock()
	var out []Entry
	for _, e := range l.entries {
		if keep(e) {
			out = append(out, e)
		}
	}
	return out
}

// ByUser returns all entries initiated by user.
func (l *Log) ByUser(user string) []Entry {
	return l.Filter(func(e Entry) bool { return e.User == user })
}

// ByTag returns all entries involving tag.
func (l *Log) ByTag(tag string) []Entry {
	return l.Filter(func(e Entry) bool { return e.Tag == tag })
}

// Replace swaps the log's contents for a previously captured entry list
// (used when restoring persisted state).
func (l *Log) Replace(entries []Entry) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.entries = make([]Entry, len(entries))
	copy(l.entries, entries)
}

// WriteJSON streams the log as JSON lines to w.
func (l *Log) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	for _, e := range l.Entries() {
		if err := enc.Encode(e); err != nil {
			return err
		}
	}
	return nil
}

// ReadJSON loads JSON-lines entries from r, replacing the log's contents.
func (l *Log) ReadJSON(r io.Reader) error {
	dec := json.NewDecoder(r)
	var entries []Entry
	for {
		var e Entry
		if err := dec.Decode(&e); err == io.EOF {
			break
		} else if err != nil {
			return err
		}
		entries = append(entries, e)
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	l.entries = entries
	return nil
}
