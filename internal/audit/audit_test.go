package audit

import (
	"bytes"
	"sync"
	"testing"
	"time"
)

func fixedClock() func() time.Time {
	t0 := time.Date(2016, 12, 12, 9, 0, 0, 0, time.UTC)
	n := 0
	return func() time.Time {
		n++
		return t0.Add(time.Duration(n) * time.Second)
	}
}

func TestAppendAssignsSeqAndTime(t *testing.T) {
	l := NewLogWithClock(fixedClock())
	a := l.Append(Entry{User: "alice", Action: ActionSuppress, Tag: "ti"})
	b := l.Append(Entry{User: "bob", Action: ActionAllocate, Tag: "tn"})
	if a.Seq != 1 || b.Seq != 2 {
		t.Errorf("seqs=%d,%d, want 1,2", a.Seq, b.Seq)
	}
	if !b.Time.After(a.Time) {
		t.Error("times not monotone")
	}
	if l.Len() != 2 {
		t.Errorf("Len=%d, want 2", l.Len())
	}
}

func TestFilters(t *testing.T) {
	l := NewLogWithClock(fixedClock())
	l.Append(Entry{User: "alice", Action: ActionSuppress, Tag: "ti", Justification: "sharing with legal"})
	l.Append(Entry{User: "bob", Action: ActionSuppress, Tag: "tw"})
	l.Append(Entry{User: "alice", Action: ActionGrant, Tag: "tw", Service: "itool"})

	if got := len(l.ByUser("alice")); got != 2 {
		t.Errorf("ByUser(alice)=%d, want 2", got)
	}
	if got := len(l.ByTag("tw")); got != 2 {
		t.Errorf("ByTag(tw)=%d, want 2", got)
	}
	if got := len(l.ByUser("mallory")); got != 0 {
		t.Errorf("ByUser(mallory)=%d, want 0", got)
	}
}

func TestEntriesIsCopy(t *testing.T) {
	l := NewLogWithClock(fixedClock())
	l.Append(Entry{User: "alice", Action: ActionSuppress})
	es := l.Entries()
	es[0].User = "tampered"
	if l.Entries()[0].User != "alice" {
		t.Error("Entries exposed internal state")
	}
}

func TestJSONRoundTrip(t *testing.T) {
	l := NewLogWithClock(fixedClock())
	l.Append(Entry{User: "alice", Action: ActionSuppress, Tag: "ti", Segment: "wiki#p0", Justification: "client request"})
	l.Append(Entry{User: "bob", Action: ActionOverride, Service: "docs"})

	var buf bytes.Buffer
	if err := l.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	restored := NewLog()
	if err := restored.ReadJSON(&buf); err != nil {
		t.Fatal(err)
	}
	got, want := restored.Entries(), l.Entries()
	if len(got) != len(want) {
		t.Fatalf("len=%d, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i].User != want[i].User || got[i].Action != want[i].Action ||
			got[i].Tag != want[i].Tag || got[i].Seq != want[i].Seq {
			t.Errorf("entry %d mismatch: %+v vs %+v", i, got[i], want[i])
		}
	}
}

func TestReadJSONBadInput(t *testing.T) {
	l := NewLog()
	if err := l.ReadJSON(bytes.NewBufferString("{not json")); err == nil {
		t.Error("want error on malformed input")
	}
}

func TestConcurrentAppend(t *testing.T) {
	l := NewLog()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				l.Append(Entry{User: "u", Action: ActionSuppress})
			}
		}()
	}
	wg.Wait()
	if l.Len() != 400 {
		t.Errorf("Len=%d, want 400", l.Len())
	}
	// Seqs must be unique and dense 1..400.
	seen := make(map[uint64]bool)
	for _, e := range l.Entries() {
		if seen[e.Seq] {
			t.Fatalf("duplicate seq %d", e.Seq)
		}
		seen[e.Seq] = true
	}
	for s := uint64(1); s <= 400; s++ {
		if !seen[s] {
			t.Fatalf("missing seq %d", s)
		}
	}
}
