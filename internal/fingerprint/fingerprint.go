// Package fingerprint implements BrowserFlow's text fingerprinting (§4.1),
// an application of the winnowing algorithm (Schleimer et al., SIGMOD'03).
//
// A fingerprint is a small set of 32-bit hashes chosen from the n-gram
// hashes of the normalised text:
//
//	S1  normalise the text (see package normalize),
//	S2  hash every n-gram with a Karp–Rabin rolling hash (package rollhash),
//	S3  slide a window of w consecutive hashes over the hash sequence,
//	S4  keep the minimum hash of each window (rightmost on ties).
//
// Winnowing guarantees that any shared passage of at least w+n-1 characters
// between two texts contributes at least one common hash to both
// fingerprints, while small edits perturb only the hashes near the edit.
package fingerprint

import (
	"fmt"
	"slices"
)

// Config holds the fingerprinting parameters. The paper's evaluation (§6)
// uses 32-bit hashes over 15-character n-grams with a window of 30.
type Config struct {
	// NGram is the n-gram length in normalised bytes (S2).
	NGram int

	// Window is the number of consecutive n-gram hashes per window (S3).
	Window int
}

// DefaultConfig returns the configuration used throughout the paper's
// evaluation: n-grams of 15 characters and a window size of 30.
func DefaultConfig() Config {
	return Config{NGram: 15, Window: 30}
}

// Validate reports whether the configuration is usable.
func (c Config) Validate() error {
	if c.NGram <= 0 {
		return fmt.Errorf("fingerprint: NGram must be positive, got %d", c.NGram)
	}
	if c.Window <= 0 {
		return fmt.Errorf("fingerprint: Window must be positive, got %d", c.Window)
	}
	return nil
}

// GuaranteeThreshold returns the minimum shared passage length (in
// normalised characters) that is guaranteed to produce a common fingerprint
// hash: w + n - 1.
func (c Config) GuaranteeThreshold() int {
	return c.Window + c.NGram - 1
}

// Position attributes one selected hash to the passage of the original text
// that produced it.
type Position struct {
	// Hash is the selected n-gram hash.
	Hash uint32

	// Start and End delimit the originating n-gram in the *original*
	// (pre-normalisation) text, as byte offsets.
	Start int
	End   int
}

// Fingerprint is the set of winnowed hashes of one text segment, with the
// source position of each selection retained for attribution.
//
// The hash set is stored as an immutable ascending []uint32 computed once
// at construction. This makes the §4.3 hot path allocation-lean: Contains
// is a binary search, set operations (IntersectCount, Containment, Equal)
// are linear merges over the two sorted slices, and Hashes returns the
// internal slice without sorting or copying.
type Fingerprint struct {
	// sorted holds the distinct hashes in ascending order. It is never
	// mutated after the constructor returns.
	sorted    []uint32
	positions []Position
}

// Compute fingerprints text under cfg. Texts shorter than one n-gram (after
// normalisation) yield an empty fingerprint — the systematic false-negative
// source for very short paragraphs that §6.1 reports.
func Compute(text string, cfg Config) (*Fingerprint, error) {
	var sc Scratch
	return sc.Compute(text, cfg)
}

// sortedDistinct sorts raw ascending and removes duplicates in place,
// returning the deduplicated prefix. The one sort at construction time
// replaces the per-call sort the old map representation paid in Hashes().
// slices.Sort specialises for the element type, so unlike sort.Slice it
// performs no reflection-based swapper or closure allocations.
func sortedDistinct(raw []uint32) []uint32 {
	if len(raw) == 0 {
		return nil
	}
	slices.Sort(raw)
	out := raw[:1]
	for _, h := range raw[1:] {
		if h != out[len(out)-1] {
			out = append(out, h)
		}
	}
	return out
}

// winnow implements steps S3–S4: slide a window of `window` consecutive
// hashes and keep the index of the minimum of each window (rightmost on
// ties), recording each selection once. Texts shorter than one window
// yield their single global minimum.
//
// A monotonic deque gives O(n) total cost instead of the naive O(n·w):
// indices wait in the deque in strictly increasing hash order; pushing a
// new hash evicts every back entry with an equal-or-larger hash (equal
// included, which is what makes the front the *rightmost* minimal index of
// the window), and the front is evicted once it slides out of range.
func winnow(hashes []uint32, window int) []int {
	if len(hashes) == 0 {
		return nil
	}
	return winnowInto(nil, hashes, window, make([]int, window+1))
}

// winnowInto is the deque core of winnow: it appends the selected indices
// to dst, using ring (length window+1) as the candidate buffer, and
// returns the extended dst. Given capacity in both, it allocates nothing —
// the fixed scratch ring of the zero-allocation observe path.
func winnowInto(dst []int, hashes []uint32, window int, ring []int) []int {
	if len(hashes) == 0 {
		return dst
	}
	if len(hashes) <= window {
		return append(dst, minIndex(hashes, 0, len(hashes)))
	}
	// Ring buffer of candidate indices; head..tail (exclusive) in push
	// order, at most window entries live at once.
	n := len(ring)
	head, tail := 0, 0
	prevSel := -1
	for i, h := range hashes {
		for tail > head && hashes[ring[(tail-1)%n]] >= h {
			tail--
		}
		ring[tail%n] = i
		tail++
		if ring[head%n] <= i-window {
			head++
		}
		if i >= window-1 {
			if sel := ring[head%n]; sel != prevSel {
				dst = append(dst, sel)
				prevSel = sel
			}
		}
	}
	return dst
}

// minIndex returns the index of the rightmost minimum of hashes[lo:hi].
func minIndex(hashes []uint32, lo, hi int) int {
	best := lo
	for i := lo + 1; i < hi; i++ {
		if hashes[i] <= hashes[best] {
			best = i
		}
	}
	return best
}

// Len returns the number of distinct hashes in the fingerprint.
func (f *Fingerprint) Len() int { return len(f.sorted) }

// Empty reports whether the fingerprint selected no hashes (text shorter
// than one n-gram).
func (f *Fingerprint) Empty() bool { return len(f.sorted) == 0 }

// Contains reports whether h is one of the fingerprint's hashes. It is a
// branchless-friendly binary search over the sorted hash slice; a plain
// loop (rather than sort.Search) keeps the hot path free of closure
// allocations.
func (f *Fingerprint) Contains(h uint32) bool {
	lo, hi := 0, len(f.sorted)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if f.sorted[mid] < h {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo < len(f.sorted) && f.sorted[lo] == h
}

// Hashes returns the distinct hashes in ascending order.
//
// The returned slice is the fingerprint's internal storage — it is shared,
// already sorted, and MUST NOT be modified. Returning it without a copy is
// what keeps the Algorithm 1 hot path (index updates, merge intersections,
// wire encoding) allocation-free; callers that need an owned copy should
// append to their own buffer.
func (f *Fingerprint) Hashes() []uint32 { return f.sorted }

// Positions returns the selected hashes in text order with their source
// ranges. The slice is a fresh copy.
func (f *Fingerprint) Positions() []Position {
	out := make([]Position, len(f.positions))
	copy(out, f.positions)
	return out
}

// PositionsOf returns the source ranges whose n-grams hashed to h, in text
// order. It returns nil if h is not in the fingerprint.
func (f *Fingerprint) PositionsOf(h uint32) []Position {
	var out []Position
	for _, p := range f.positions {
		if p.Hash == h {
			out = append(out, p)
		}
	}
	return out
}

// IntersectCount returns |f ∩ g| over distinct hashes. Both hash sets are
// sorted, so this is a single linear merge with no lookups or allocation.
func (f *Fingerprint) IntersectCount(g *Fingerprint) int {
	a, b := f.sorted, g.sorted
	n, i, j := 0, 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			n++
			i++
			j++
		}
	}
	return n
}

// Equal reports whether two fingerprints select exactly the same hash set.
func (f *Fingerprint) Equal(g *Fingerprint) bool {
	if len(f.sorted) != len(g.sorted) {
		return false
	}
	for i, h := range f.sorted {
		if g.sorted[i] != h {
			return false
		}
	}
	return true
}

// Containment returns |f ∩ g| / |f|, the fraction of f's hashes found in g
// (Broder containment). It returns 0 for an empty f.
func (f *Fingerprint) Containment(g *Fingerprint) float64 {
	if f.Len() == 0 {
		return 0
	}
	return float64(f.IntersectCount(g)) / float64(f.Len())
}

// Digest returns an order-independent 64-bit summary of the hash set,
// suitable as a cache key for "has this fingerprint changed?" checks. Equal
// hash sets produce equal digests.
func (f *Fingerprint) Digest() uint64 {
	var sum, xor uint64
	for _, h := range f.sorted {
		v := uint64(h) * 0x9e3779b97f4a7c15
		sum += v
		xor ^= v
	}
	return sum ^ (xor << 1) ^ uint64(len(f.sorted))
}

// FromHashes builds a Fingerprint from a raw hash set, without positions.
// It is used when restoring persisted state and when deserialising wire
// requests. The input is copied, deduplicated and sorted; the caller keeps
// ownership of the argument slice.
func FromHashes(hashes []uint32) *Fingerprint {
	raw := make([]uint32, len(hashes))
	copy(raw, hashes)
	return &Fingerprint{sorted: sortedDistinct(raw)}
}

// Clone returns an owned deep copy of f. Its primary use is detaching a
// scratch-shared fingerprint (see Scratch.ComputeShared) from its scratch
// buffers at the moment a caller decides to retain it.
func (f *Fingerprint) Clone() *Fingerprint {
	g := &Fingerprint{}
	if len(f.sorted) > 0 {
		g.sorted = append(make([]uint32, 0, len(f.sorted)), f.sorted...)
	}
	if len(f.positions) > 0 {
		g.positions = append(make([]Position, 0, len(f.positions)), f.positions...)
	}
	return g
}

// FromSortedHashes builds a Fingerprint that takes ownership of hashes,
// which the caller promises are strictly ascending and never mutated
// afterwards — the allocation-free restore path used by binary snapshot
// recovery, where the decoder already produced a validated sorted slice.
// Input that breaks the promise falls back to the copying constructor, so
// the fingerprint invariant holds regardless.
func FromSortedHashes(hashes []uint32) *Fingerprint {
	for i := 1; i < len(hashes); i++ {
		if hashes[i] <= hashes[i-1] {
			return FromHashes(hashes)
		}
	}
	if len(hashes) == 0 {
		return &Fingerprint{}
	}
	return &Fingerprint{sorted: hashes}
}
