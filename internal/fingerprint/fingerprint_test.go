package fingerprint

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

// smallCfg keeps tests readable: 6-grams, windows of 3 hashes.
var smallCfg = Config{NGram: 6, Window: 3}

func mustCompute(t *testing.T, text string, cfg Config) *Fingerprint {
	t.Helper()
	fp, err := Compute(text, cfg)
	if err != nil {
		t.Fatalf("Compute(%q): %v", text, err)
	}
	return fp
}

func TestConfigValidate(t *testing.T) {
	tests := []struct {
		name    string
		cfg     Config
		wantErr bool
	}{
		{name: "default", cfg: DefaultConfig(), wantErr: false},
		{name: "zero ngram", cfg: Config{NGram: 0, Window: 3}, wantErr: true},
		{name: "zero window", cfg: Config{NGram: 3, Window: 0}, wantErr: true},
		{name: "negative", cfg: Config{NGram: -1, Window: -1}, wantErr: true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if err := tt.cfg.Validate(); (err != nil) != tt.wantErr {
				t.Errorf("Validate()=%v, wantErr=%v", err, tt.wantErr)
			}
		})
	}
}

func TestGuaranteeThreshold(t *testing.T) {
	if got := DefaultConfig().GuaranteeThreshold(); got != 44 {
		t.Errorf("GuaranteeThreshold()=%d, want 44", got)
	}
}

func TestComputeShortText(t *testing.T) {
	fp := mustCompute(t, "hi!", DefaultConfig())
	if !fp.Empty() {
		t.Errorf("short text: want empty fingerprint, got %d hashes", fp.Len())
	}
}

func TestComputeSingleWindow(t *testing.T) {
	// "Hello World!" normalises to 10 chars -> 5 6-gram hashes, all within
	// one window of 3? No: 5 hashes > window 3, so regular winnowing. Use a
	// tighter text for the single-window path.
	fp := mustCompute(t, "hellowo", smallCfg) // 7 chars -> 2 hashes <= window
	if fp.Len() != 1 {
		t.Errorf("single-window text: want exactly 1 hash, got %d", fp.Len())
	}
}

func TestComputeDeterministic(t *testing.T) {
	text := "The quick brown fox jumps over the lazy dog."
	a := mustCompute(t, text, smallCfg)
	b := mustCompute(t, text, smallCfg)
	if !a.Equal(b) {
		t.Error("same text produced different fingerprints")
	}
}

func TestNormalizationInvariance(t *testing.T) {
	a := mustCompute(t, "The Quick Brown Fox Jumps!", smallCfg)
	b := mustCompute(t, "the quick brown fox jumps", smallCfg)
	if !a.Equal(b) {
		t.Error("case/punctuation variants produced different fingerprints")
	}
}

func TestIdenticalTextFullContainment(t *testing.T) {
	text := strings.Repeat("confidential interviewing guidelines for engineers. ", 5)
	a := mustCompute(t, text, DefaultConfig())
	b := mustCompute(t, text, DefaultConfig())
	if got := a.Containment(b); got != 1.0 {
		t.Errorf("self containment=%v, want 1.0", got)
	}
}

func TestDisjointTextsNoOverlap(t *testing.T) {
	a := mustCompute(t, strings.Repeat("alpha beta gamma delta epsilon zeta. ", 10), DefaultConfig())
	b := mustCompute(t, strings.Repeat("one two three four five six seven. ", 10), DefaultConfig())
	if got := a.IntersectCount(b); got != 0 {
		t.Errorf("disjoint texts share %d hashes, want 0", got)
	}
}

func TestSharedPassageGuarantee(t *testing.T) {
	// Any shared passage >= w+n-1 normalised chars must yield >= 1 common hash.
	cfg := DefaultConfig()
	shared := "thispassageissharedbetweenbothdocumentsentirelyandverbatim" // 59 chars > 44
	a := mustCompute(t, "prefix one two three "+shared+" suffix alpha", cfg)
	b := mustCompute(t, "completely different start "+shared+" another ending", cfg)
	if a.IntersectCount(b) == 0 {
		t.Error("shared passage above guarantee threshold produced no common hash")
	}
}

func TestSmallEditSmallChange(t *testing.T) {
	cfg := DefaultConfig()
	base := strings.Repeat("the interview candidate showed strong distributed systems knowledge. ", 8)
	edited := strings.Replace(base, "strong", "weak", 1)
	a := mustCompute(t, base, cfg)
	b := mustCompute(t, edited, cfg)
	if got := a.Containment(b); got < 0.7 {
		t.Errorf("one-word edit dropped containment to %v, want >= 0.7", got)
	}
}

func TestShuffleRobustness(t *testing.T) {
	// Reordering whole sentences keeps most hashes (S4 property: shuffling
	// document content does not strongly affect selected hashes).
	cfg := DefaultConfig()
	sentences := []string{
		"the first sentence talks about budget planning for next year.",
		"the second sentence describes the hiring pipeline in detail.",
		"the third sentence lists the confidential salary bands involved.",
		"the fourth sentence summarises outstanding compliance actions.",
	}
	fwd := mustCompute(t, strings.Join(sentences, " "), cfg)
	rev := mustCompute(t, strings.Join([]string{sentences[3], sentences[2], sentences[1], sentences[0]}, " "), cfg)
	if got := fwd.Containment(rev); got < 0.5 {
		t.Errorf("sentence shuffle dropped containment to %v, want >= 0.5", got)
	}
}

func TestPositionsAttribupeSource(t *testing.T) {
	cfg := smallCfg
	text := "Alpha, Beta! Gamma Delta Epsilon."
	fp := mustCompute(t, text, cfg)
	for _, p := range fp.Positions() {
		if p.Start < 0 || p.End > len(text) || p.Start >= p.End {
			t.Fatalf("position out of range: %+v (len %d)", p, len(text))
		}
		if !fp.Contains(p.Hash) {
			t.Errorf("position hash %#x not in hash set", p.Hash)
		}
	}
	if len(fp.Positions()) == 0 {
		t.Fatal("no positions recorded")
	}
}

func TestPositionsOf(t *testing.T) {
	fp := mustCompute(t, "Alpha, Beta! Gamma Delta Epsilon.", smallCfg)
	hs := fp.Hashes()
	if len(hs) == 0 {
		t.Fatal("empty fingerprint")
	}
	for _, h := range hs {
		if len(fp.PositionsOf(h)) == 0 {
			t.Errorf("PositionsOf(%#x) empty for member hash", h)
		}
	}
	if fp.PositionsOf(0xdeadbeef) != nil {
		t.Error("PositionsOf(non-member) should be nil")
	}
}

func TestDigestStableAndSensitive(t *testing.T) {
	a := mustCompute(t, "the quick brown fox jumps over the lazy dog", smallCfg)
	b := mustCompute(t, "the quick brown fox jumps over the lazy dog", smallCfg)
	c := mustCompute(t, "a completely different text about databases", smallCfg)
	if a.Digest() != b.Digest() {
		t.Error("equal fingerprints have different digests")
	}
	if a.Digest() == c.Digest() {
		t.Error("different fingerprints collided on digest (unlikely)")
	}
}

func TestFromHashes(t *testing.T) {
	fp := FromHashes([]uint32{1, 2, 3, 2})
	if fp.Len() != 3 {
		t.Errorf("Len=%d, want 3", fp.Len())
	}
	for _, h := range []uint32{1, 2, 3} {
		if !fp.Contains(h) {
			t.Errorf("missing hash %d", h)
		}
	}
}

func TestHashesSorted(t *testing.T) {
	fp := mustCompute(t, strings.Repeat("winnowing algorithm local document fingerprinting. ", 6), DefaultConfig())
	hs := fp.Hashes()
	for i := 1; i < len(hs); i++ {
		if hs[i] < hs[i-1] {
			t.Fatal("Hashes() not sorted")
		}
	}
}

// Property: fingerprint density — winnowing selects roughly 2/(w+1) of the
// n-gram hashes; assert it never exceeds the hash count and is at least 1
// per full window span.
func TestQuickDensityBounds(t *testing.T) {
	letters := []rune("abcdefghijklmnopqrstuvwxyz ")
	f := func(seed int64, lnRaw uint16) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(lnRaw)%400 + 50
		b := make([]rune, n)
		for i := range b {
			b[i] = letters[rng.Intn(len(letters))]
		}
		fp, err := Compute(string(b), smallCfg)
		if err != nil {
			return false
		}
		norm := 0
		for _, r := range b {
			if r != ' ' {
				norm++
			}
		}
		nHashes := norm - smallCfg.NGram + 1
		if nHashes <= 0 {
			return fp.Empty()
		}
		// At least one selection per window stride, at most one per hash.
		return fp.Len() >= 1 && fp.Len() <= nHashes
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: containment is monotone under appending — appending extra text
// to g never decreases f's containment in g.
func TestQuickContainmentMonotone(t *testing.T) {
	base := strings.Repeat("sensitive quarterly earnings report draft numbers. ", 6)
	fBase, err := Compute(base, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	f := func(extraSeed int64) bool {
		rng := rand.New(rand.NewSource(extraSeed))
		words := []string{"zebra", "quark", "maple", "onion", "violet", "umber"}
		var sb strings.Builder
		sb.WriteString(base)
		for i := 0; i < 20; i++ {
			sb.WriteString(words[rng.Intn(len(words))])
			sb.WriteByte(' ')
		}
		g, err := Compute(sb.String(), DefaultConfig())
		if err != nil {
			return false
		}
		return fBase.Containment(g) >= fBase.Containment(fBase)-1e-9 ||
			fBase.Containment(g) >= 0.9 // appended text may perturb boundary hashes slightly
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func BenchmarkCompute1KB(b *testing.B)  { benchCompute(b, 1<<10) }
func BenchmarkCompute64KB(b *testing.B) { benchCompute(b, 64<<10) }

func benchCompute(b *testing.B, size int) {
	rng := rand.New(rand.NewSource(7))
	letters := "abcdefghijklmnopqrstuvwxyz      "
	buf := make([]byte, size)
	for i := range buf {
		buf[i] = letters[rng.Intn(len(letters))]
	}
	text := string(buf)
	cfg := DefaultConfig()
	b.SetBytes(int64(size))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Compute(text, cfg); err != nil {
			b.Fatal(err)
		}
	}
}
