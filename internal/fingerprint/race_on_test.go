//go:build race

package fingerprint

const raceEnabled = true
