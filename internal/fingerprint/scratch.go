package fingerprint

import (
	"github.com/lsds/browserflow/internal/normalize"
	"github.com/lsds/browserflow/internal/rollhash"
)

// Scratch holds every intermediate buffer of the fingerprinting pipeline —
// the normalised text, the rolling-hash state, the n-gram hash sequence,
// the winnowing ring and the selected-hash staging area — so repeated
// fingerprint computations reuse one fixed working set instead of
// reallocating it per call. This is what makes the per-keystroke observe
// loop allocation-free at steady state: once the buffers have grown to the
// size of the largest text seen, ComputeShared and AppendHashes perform no
// heap allocations at all.
//
// A Scratch is not safe for concurrent use; pool instances per goroutine
// (the disclosure tracker recycles one per observation via a sync.Pool).
// The zero value is ready to use.
type Scratch struct {
	hasher   rollhash.Hasher
	norm     []byte
	hashes   []uint32
	ring     []int
	selected []int
	raw      []uint32
	fp       Fingerprint
}

// AppendHashes appends the winnowed fingerprint hashes of text — distinct,
// ascending — to dst and returns the extended slice. It is equivalent to
// appending Compute(text, cfg).Hashes() but draws every intermediate buffer
// from the scratch and computes no positions. dst must not alias any of
// sc's internal buffers (pass a caller-owned slice or nil).
func (sc *Scratch) AppendHashes(dst []uint32, text string, cfg Config) ([]uint32, error) {
	if err := cfg.Validate(); err != nil {
		return dst, err
	}
	sc.norm = normalize.AppendText(sc.norm[:0], text)
	if err := sc.hasher.Init(cfg.NGram); err != nil {
		return dst, err
	}
	sc.hashes = sc.hasher.AppendNGrams(sc.hashes[:0], sc.norm)
	if len(sc.hashes) == 0 {
		return dst, nil
	}
	if cap(sc.ring) < cfg.Window+1 {
		sc.ring = make([]int, cfg.Window+1)
	}
	sc.selected = winnowInto(sc.selected[:0], sc.hashes, cfg.Window, sc.ring[:cfg.Window+1])
	base := len(dst)
	for _, idx := range sc.selected {
		dst = append(dst, sc.hashes[idx])
	}
	// Sort and deduplicate the appended tail in place; the prefix of dst is
	// untouched.
	tail := sortedDistinct(dst[base:])
	return dst[:base+len(tail)], nil
}

// ComputeShared fingerprints text like Compute but returns a fingerprint
// that ALIASES the scratch: it is valid only until the next call on sc and
// MUST NOT be retained — callers that decide to keep it detach it first
// with Clone. Positions are not computed (Positions and PositionsOf return
// nothing), so the result serves hash-set consumers only: the observe hot
// path, digests, set operations.
//
// At steady state the call performs zero heap allocations; that property
// is pinned by TestComputeSharedZeroAlloc.
func (sc *Scratch) ComputeShared(text string, cfg Config) (*Fingerprint, error) {
	raw, err := sc.AppendHashes(sc.raw[:0], text, cfg)
	if err != nil {
		return nil, err
	}
	sc.raw = raw
	sc.fp = Fingerprint{}
	if len(raw) > 0 {
		sc.fp.sorted = raw
	}
	return &sc.fp, nil
}

// Compute is the scratch-backed form of the package-level Compute,
// including positions: the result is fully owned by the caller (safe to
// retain), and only the owned output slices allocate — all intermediate
// buffers come from the scratch.
func (sc *Scratch) Compute(text string, cfg Config) (*Fingerprint, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	norm := normalize.Normalize(text)
	if err := sc.hasher.Init(cfg.NGram); err != nil {
		return nil, err
	}
	sc.hashes = sc.hasher.AppendNGrams(sc.hashes[:0], []byte(norm.Text))
	fp := &Fingerprint{}
	if len(sc.hashes) == 0 {
		return fp, nil
	}
	if cap(sc.ring) < cfg.Window+1 {
		sc.ring = make([]int, cfg.Window+1)
	}
	sc.selected = winnowInto(sc.selected[:0], sc.hashes, cfg.Window, sc.ring[:cfg.Window+1])
	fp.positions = make([]Position, 0, len(sc.selected))
	raw := make([]uint32, 0, len(sc.selected))
	for _, hashIdx := range sc.selected {
		h := sc.hashes[hashIdx]
		start, end := norm.OrigRange(hashIdx, hashIdx+cfg.NGram)
		fp.positions = append(fp.positions, Position{Hash: h, Start: start, End: end})
		raw = append(raw, h)
	}
	fp.sorted = sortedDistinct(raw)
	return fp, nil
}
