package fingerprint

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// TestWinnowPaperExample replays the worked example of §4.1: hash sequence
// {52, 40, 53, 13, 22} with windows of 3 yields windows {52,40,53},
// {40,53,13}, {53,13,22}; selecting the minimum of each gives the
// fingerprint {40, 13}.
func TestWinnowPaperExample(t *testing.T) {
	hashes := []uint32{52, 40, 53, 13, 22}
	idxs := winnow(hashes, 3)
	var selected []uint32
	for _, i := range idxs {
		selected = append(selected, hashes[i])
	}
	want := []uint32{40, 13}
	if len(selected) != len(want) {
		t.Fatalf("selected=%v, want %v", selected, want)
	}
	for i := range want {
		if selected[i] != want[i] {
			t.Errorf("selected=%v, want %v", selected, want)
		}
	}
}

func TestWinnowEdgeCases(t *testing.T) {
	if got := winnow(nil, 3); got != nil {
		t.Errorf("empty input: %v", got)
	}
	// Shorter than a window: global minimum.
	if got := winnow([]uint32{9, 2, 7}, 5); len(got) != 1 || got[0] != 1 {
		t.Errorf("short input: %v", got)
	}
	// Single hash.
	if got := winnow([]uint32{5}, 3); len(got) != 1 || got[0] != 0 {
		t.Errorf("single hash: %v", got)
	}
	// Ties select the rightmost index within a window.
	if got := winnow([]uint32{3, 3, 3}, 3); len(got) != 1 || got[0] != 2 {
		t.Errorf("ties: %v", got)
	}
}

func TestWinnowMonotoneDecreasing(t *testing.T) {
	// Strictly decreasing hashes: each window's minimum is its last
	// element, so every position from window-1 on is selected.
	hashes := []uint32{50, 40, 30, 20, 10}
	got := winnow(hashes, 3)
	want := []int{2, 3, 4}
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("got %v, want %v", got, want)
		}
	}
}

// winnowNaive is the O(n·w) reference implementation the deque version
// must match exactly.
func winnowNaive(hashes []uint32, window int) []int {
	if len(hashes) == 0 {
		return nil
	}
	if len(hashes) <= window {
		return []int{minIndex(hashes, 0, len(hashes))}
	}
	var selected []int
	prevSel := -1
	for w := 0; w+window <= len(hashes); w++ {
		sel := minIndex(hashes, w, w+window)
		if sel != prevSel {
			selected = append(selected, sel)
			prevSel = sel
		}
	}
	return selected
}

// Property: the deque winnow is index-for-index identical to the naive
// reference, including tie handling.
func TestQuickWinnowMatchesNaive(t *testing.T) {
	f := func(seed int64, n uint8, wRaw uint8, small bool) bool {
		rng := rand.New(rand.NewSource(seed))
		size := int(n)%150 + 1
		window := int(wRaw)%12 + 1
		hashes := make([]uint32, size)
		for i := range hashes {
			if small {
				// Small value range forces many ties.
				hashes[i] = rng.Uint32() % 4
			} else {
				hashes[i] = rng.Uint32()
			}
		}
		a := winnow(hashes, window)
		b := winnowNaive(hashes, window)
		if len(a) != len(b) {
			return false
		}
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// Property: the winnowing guarantee — every window of `window` consecutive
// hashes contains at least one selected index.
func TestQuickWinnowCoverage(t *testing.T) {
	f := func(seed int64, n uint8, wRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		size := int(n)%100 + 1
		window := int(wRaw)%10 + 1
		hashes := make([]uint32, size)
		for i := range hashes {
			hashes[i] = rng.Uint32()
		}
		selected := winnow(hashes, window)
		sel := make(map[int]bool, len(selected))
		for _, i := range selected {
			sel[i] = true
		}
		if size <= window {
			return len(selected) == 1
		}
		for w := 0; w+window <= size; w++ {
			covered := false
			for i := w; i < w+window; i++ {
				if sel[i] {
					covered = true
					break
				}
			}
			if !covered {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: every selected index is the minimum of at least one window
// containing it.
func TestQuickWinnowSelectionsAreMinima(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		size := int(n)%80 + 10
		const window = 4
		hashes := make([]uint32, size)
		for i := range hashes {
			hashes[i] = rng.Uint32() % 1000
		}
		for _, idx := range winnow(hashes, window) {
			isMin := false
			for w := idx - window + 1; w <= idx; w++ {
				if w < 0 || w+window > size {
					continue
				}
				min := true
				for i := w; i < w+window; i++ {
					if hashes[i] < hashes[idx] {
						min = false
						break
					}
				}
				if min {
					isMin = true
					break
				}
			}
			if size <= window {
				return true
			}
			if !isMin {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
