package fingerprint

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

// randText builds a text with letters, digits, punctuation and multi-byte
// runes so the scratch path exercises normalisation, rolling hashes and
// winnowing together.
func randText(rng *rand.Rand, n int) string {
	alphabet := []rune("abcdefghij KLMNO 0123456789 .,!? ÄöüÉ 中文字")
	var b strings.Builder
	for i := 0; i < n; i++ {
		b.WriteRune(alphabet[rng.Intn(len(alphabet))])
	}
	return b.String()
}

// Property: ComputeShared selects exactly the hash set of Compute, for any
// text and several configurations.
func TestComputeSharedMatchesCompute(t *testing.T) {
	var sc Scratch
	cfgs := []Config{DefaultConfig(), {NGram: 3, Window: 4}, {NGram: 1, Window: 1}}
	f := func(seed int64, n uint16) bool {
		rng := rand.New(rand.NewSource(seed))
		text := randText(rng, int(n)%400)
		for _, cfg := range cfgs {
			want, err := Compute(text, cfg)
			if err != nil {
				return false
			}
			got, err := sc.ComputeShared(text, cfg)
			if err != nil {
				return false
			}
			if !got.Equal(want) || got.Digest() != want.Digest() {
				t.Logf("cfg=%+v text=%q got=%v want=%v", cfg, text, got.Hashes(), want.Hashes())
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// AppendHashes must leave an existing prefix untouched and reuse capacity.
func TestAppendHashesPreservesPrefix(t *testing.T) {
	var sc Scratch
	cfg := Config{NGram: 3, Window: 4}
	text := "the quick brown fox jumps over the lazy dog"
	want, err := Compute(text, cfg)
	if err != nil {
		t.Fatal(err)
	}
	prefix := []uint32{99, 1, 42}
	buf := make([]uint32, 0, 128)
	buf = append(buf, prefix...)
	got, err := sc.AppendHashes(buf, text, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if &got[0] != &buf[0] {
		t.Error("AppendHashes reallocated despite sufficient capacity")
	}
	for i, h := range prefix {
		if got[i] != h {
			t.Fatalf("prefix clobbered: %v", got[:len(prefix)])
		}
	}
	tail := got[len(prefix):]
	if len(tail) != want.Len() {
		t.Fatalf("appended %d hashes, want %d", len(tail), want.Len())
	}
	for i, h := range want.Hashes() {
		if tail[i] != h {
			t.Fatalf("tail[%d]=%d, want %d", i, tail[i], h)
		}
	}
}

// TestComputeSharedZeroAlloc pins the tentpole property: once the scratch
// buffers are warm, fingerprinting allocates nothing.
func TestComputeSharedZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are not meaningful under -race")
	}
	var sc Scratch
	cfg := DefaultConfig()
	text := strings.Repeat("the quick brown fox jumps over the lazy dog. ", 20)
	// Warm-up: grow every buffer to its steady-state size.
	if _, err := sc.ComputeShared(text, cfg); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(100, func() {
		fp, err := sc.ComputeShared(text, cfg)
		if err != nil || fp.Empty() {
			t.Fatal("unexpected compute failure")
		}
	})
	if allocs != 0 {
		t.Errorf("ComputeShared allocates %.1f objects/op at steady state, want 0", allocs)
	}
}

// Clone must produce an owned fingerprint that survives scratch reuse.
func TestCloneDetachesFromScratch(t *testing.T) {
	var sc Scratch
	cfg := Config{NGram: 3, Window: 4}
	shared, err := sc.ComputeShared("a first text with enough content to fingerprint", cfg)
	if err != nil {
		t.Fatal(err)
	}
	owned := shared.Clone()
	wantDigest := owned.Digest()
	// Clobber the scratch with a different text.
	if _, err := sc.ComputeShared("something completely different goes here now!", cfg); err != nil {
		t.Fatal(err)
	}
	if owned.Digest() != wantDigest {
		t.Error("Clone still aliases the scratch: digest changed after scratch reuse")
	}
	// Clone of a position-bearing fingerprint keeps positions.
	full, err := Compute("a first text with enough content to fingerprint", cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got := full.Clone(); len(got.Positions()) != len(full.Positions()) {
		t.Errorf("Clone dropped positions: %d != %d", len(got.Positions()), len(full.Positions()))
	}
}

func BenchmarkCompute(b *testing.B) {
	text := strings.Repeat("the quick brown fox jumps over the lazy dog. ", 20)
	cfg := DefaultConfig()
	b.SetBytes(int64(len(text)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Compute(text, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkComputeShared(b *testing.B) {
	text := strings.Repeat("the quick brown fox jumps over the lazy dog. ", 20)
	cfg := DefaultConfig()
	var sc Scratch
	b.SetBytes(int64(len(text)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := sc.ComputeShared(text, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkComputeSharedSizes(b *testing.B) {
	cfg := DefaultConfig()
	for _, words := range []int{10, 100, 1000} {
		b.Run(fmt.Sprintf("words=%d", words), func(b *testing.B) {
			text := strings.Repeat("lorem ipsum dolor sit amet consectetur ", words/6+1)
			var sc Scratch
			b.SetBytes(int64(len(text)))
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := sc.ComputeShared(text, cfg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
