package dataset

import (
	"fmt"
	"strings"
)

// Stats is one row of Table 1.
type Stats struct {
	// Dataset is the group ("Wikipedia", "Manuals", "Ebooks").
	Dataset string

	// Name is the row label within the group.
	Name string

	// Documents is the number of distinct documents.
	Documents int

	// Versions is the number of versions per document.
	Versions int

	// AvgParagraphs is the mean paragraph count across versions.
	AvgParagraphs float64

	// AvgSizeKB is the mean version size in KB.
	AvgSizeKB float64
}

// RevisionCorpusStats summarises the Wikipedia-style corpus as one row.
func RevisionCorpusStats(articles []Article) Stats {
	var pars, bytes, versions int
	for _, a := range articles {
		for _, rev := range a.Revisions {
			pars += len(rev)
			bytes += ArticleSizeBytes(rev)
			versions++
		}
	}
	s := Stats{
		Dataset:   "Wikipedia",
		Name:      "Articles",
		Documents: len(articles),
	}
	if len(articles) > 0 {
		s.Versions = len(articles[0].Revisions)
	}
	if versions > 0 {
		s.AvgParagraphs = float64(pars) / float64(versions)
		s.AvgSizeKB = float64(bytes) / float64(versions) / 1024
	}
	return s
}

// ManualStats summarises each chapter as one row.
func ManualStats(chapters []Chapter) []Stats {
	out := make([]Stats, 0, len(chapters))
	for _, c := range chapters {
		var pars, bytes int
		for _, v := range c.Versions {
			pars += len(v.Paragraphs)
			bytes += ArticleSizeBytes(v.Paragraphs)
		}
		n := len(c.Versions)
		out = append(out, Stats{
			Dataset:       "Manuals",
			Name:          c.Name,
			Documents:     1,
			Versions:      n,
			AvgParagraphs: float64(pars) / float64(n),
			AvgSizeKB:     float64(bytes) / float64(n) / 1024,
		})
	}
	return out
}

// EbookStats summarises the e-book corpus as one row.
func EbookStats(books []Ebook) Stats {
	var pars, bytes int
	for _, b := range books {
		pars += len(b.Paragraphs)
		bytes += b.SizeBytes()
	}
	s := Stats{
		Dataset:   "Ebooks",
		Name:      "Books",
		Documents: len(books),
		Versions:  1,
	}
	if len(books) > 0 {
		s.AvgParagraphs = float64(pars) / float64(len(books))
		s.AvgSizeKB = float64(bytes) / float64(len(books)) / 1024
	}
	return s
}

// FormatTable renders rows in the layout of Table 1.
func FormatTable(rows []Stats) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-10s %-22s %9s %8s %10s %9s\n",
		"Dataset", "Name", "Documents", "Versions", "Paragraphs", "Size(KB)")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-10s %-22s %9d %8d %10.0f %9.1f\n",
			r.Dataset, r.Name, r.Documents, r.Versions, r.AvgParagraphs, r.AvgSizeKB)
	}
	return sb.String()
}
