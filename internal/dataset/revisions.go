package dataset

import (
	"fmt"
	"math/rand"
)

// Stable and volatile article titles follow the paper's examples: mature
// topics whose articles keep their length and content across revisions,
// versus controversial or fast-moving topics with large changes (§6.1).
var (
	// StableTitles are the low length-variation articles of Figure 9a.
	StableTitles = []string{"Chicago", "C++", "IP address", "Liverpool FC"}

	// VolatileTitles are the high length-variation articles of Figure 9b.
	VolatileTitles = []string{"Chemotherapy", "Dementia", "Dow Jones", "Radiotherapy"}
)

// Article is one synthetic Wikipedia-style article with its revision
// history.
type Article struct {
	// Title names the article.
	Title string

	// Volatility is the per-revision probability that any given paragraph
	// is perturbed.
	Volatility float64

	// Revisions holds the paragraph lists, oldest first.
	Revisions [][]string
}

// Base returns the oldest revision's paragraphs.
func (a Article) Base() []string { return a.Revisions[0] }

// Latest returns the newest revision's paragraphs.
func (a Article) Latest() []string { return a.Revisions[len(a.Revisions)-1] }

// RevisionCorpusConfig controls revision-corpus generation. The paper's
// corpus is 100 articles × 1000 revisions (Table 1); the default here is a
// laptop-scale 8 × 200 that preserves the same disclosure-decay shapes.
// Scale up with the fields below.
type RevisionCorpusConfig struct {
	// Seed drives all randomness.
	Seed int64

	// ExtraArticles adds this many generated articles beyond the eight
	// named ones, split evenly between stable and volatile.
	ExtraArticles int

	// Revisions is the number of revisions per article.
	Revisions int

	// Paragraphs is the initial number of paragraphs per article
	// (Table 1 reports ~60 for Wikipedia articles).
	Paragraphs int

	// StableVolatility is the per-paragraph perturbation probability for
	// stable articles (small: content is mature).
	StableVolatility float64

	// VolatileVolatility is the same for volatile articles.
	VolatileVolatility float64
}

// DefaultRevisionCorpusConfig returns the laptop-scale configuration.
func DefaultRevisionCorpusConfig() RevisionCorpusConfig {
	return RevisionCorpusConfig{
		Seed:               1,
		Revisions:          200,
		Paragraphs:         30,
		StableVolatility:   0.002,
		VolatileVolatility: 0.04,
	}
}

// GenerateRevisionCorpus builds the synthetic Wikipedia dataset: the four
// named stable and four named volatile articles, plus any extras.
func GenerateRevisionCorpus(cfg RevisionCorpusConfig) []Article {
	if cfg.Revisions < 1 {
		cfg.Revisions = 1
	}
	if cfg.Paragraphs < 1 {
		cfg.Paragraphs = 1
	}
	var articles []Article
	seed := cfg.Seed
	add := func(title string, volatility float64) {
		seed++
		articles = append(articles, generateArticle(title, volatility, seed, cfg))
	}
	for _, title := range StableTitles {
		add(title, cfg.StableVolatility)
	}
	for _, title := range VolatileTitles {
		add(title, cfg.VolatileVolatility)
	}
	for i := 0; i < cfg.ExtraArticles; i++ {
		if i%2 == 0 {
			add(fmt.Sprintf("Stable topic %d", i/2), cfg.StableVolatility)
		} else {
			add(fmt.Sprintf("Volatile topic %d", i/2), cfg.VolatileVolatility)
		}
	}
	return articles
}

// generateArticle builds one article's revision chain. Each article uses
// its own vocabulary so unrelated articles share no fingerprint hashes.
func generateArticle(title string, volatility float64, seed int64, cfg RevisionCorpusConfig) Article {
	gen := NewTextGen(seed, 400)
	rng := rand.New(rand.NewSource(seed * 7919))

	base := make([]string, cfg.Paragraphs)
	for i := range base {
		base[i] = gen.Paragraph(3, 6)
	}

	revisions := make([][]string, 0, cfg.Revisions)
	revisions = append(revisions, base)
	cur := base
	for r := 1; r < cfg.Revisions; r++ {
		cur = evolve(cur, gen, rng, volatility)
		revisions = append(revisions, cur)
	}
	return Article{Title: title, Volatility: volatility, Revisions: revisions}
}

// evolve applies one revision's worth of edits. Edit mix: mostly light
// in-paragraph edits; occasionally sentence drops/additions, full
// rephrasings, paragraph insertions and deletions. Volatile articles
// therefore both churn content and drift in length, reproducing the
// Figure 8 length-change distribution.
func evolve(pars []string, gen *TextGen, rng *rand.Rand, volatility float64) []string {
	out := make([]string, 0, len(pars)+1)
	for _, p := range pars {
		if rng.Float64() >= volatility {
			out = append(out, p)
			continue
		}
		switch op := rng.Float64(); {
		case op < 0.35:
			out = append(out, gen.LightEdit(p, 0.1))
		case op < 0.55:
			out = append(out, gen.DropSentence(p))
		case op < 0.70:
			out = append(out, gen.AppendSentence(p))
		case op < 0.85:
			out = append(out, gen.Rephrase(p))
		case op < 0.95:
			// Insert a brand-new paragraph after this one.
			out = append(out, p, gen.Paragraph(3, 6))
		default:
			// Delete the paragraph (unless the article would empty out).
			if len(pars) > 3 {
				continue
			}
			out = append(out, p)
		}
	}
	if len(out) == 0 {
		out = append(out, gen.Paragraph(3, 6))
	}
	return out
}

// ArticleSizeBytes returns the byte size of one revision.
func ArticleSizeBytes(paragraphs []string) int {
	n := 0
	for _, p := range paragraphs {
		n += len(p) + 2
	}
	return n
}

// RelativeLengthChange returns |len(latest)-len(base)| / len(base) in
// bytes, the Figure 8 metric.
func RelativeLengthChange(a Article) float64 {
	base := float64(ArticleSizeBytes(a.Base()))
	latest := float64(ArticleSizeBytes(a.Latest()))
	if base == 0 {
		return 0
	}
	diff := latest - base
	if diff < 0 {
		diff = -diff
	}
	return diff / base
}
