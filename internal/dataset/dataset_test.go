package dataset

import (
	"errors"
	"strings"
	"testing"

	"github.com/lsds/browserflow/internal/fingerprint"
)

func TestTextGenDeterministic(t *testing.T) {
	a := NewTextGen(7, 100)
	b := NewTextGen(7, 100)
	for i := 0; i < 20; i++ {
		if a.Word() != b.Word() {
			t.Fatal("same seed produced different words")
		}
	}
	if NewTextGen(7, 100).Sentence(5, 10) != NewTextGen(7, 100).Sentence(5, 10) {
		t.Error("sentences not deterministic")
	}
}

func TestTextGenShapes(t *testing.T) {
	g := NewTextGen(3, 200)
	s := g.Sentence(5, 5)
	if !strings.HasSuffix(s, ".") {
		t.Errorf("sentence %q missing full stop", s)
	}
	if len(strings.Fields(s)) != 5 {
		t.Errorf("sentence %q has %d words, want 5", s, len(strings.Fields(s)))
	}
	p := g.Paragraph(3, 3)
	if got := strings.Count(p, "."); got != 3 {
		t.Errorf("paragraph has %d sentences, want 3", got)
	}
}

func TestLightEditPreservesFingerprint(t *testing.T) {
	g := NewTextGen(11, 300)
	p := g.Paragraph(4, 6)
	edited := g.LightEdit(p, 0.08)
	cfg := fingerprint.DefaultConfig()
	fa, err := fingerprint.Compute(p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	fb, err := fingerprint.Compute(edited, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if c := fa.Containment(fb); c < 0.5 {
		t.Errorf("light edit broke fingerprint: containment=%v", c)
	}
}

func TestRephraseBreaksFingerprint(t *testing.T) {
	g := NewTextGen(13, 300)
	p := g.Paragraph(4, 6)
	rephrased := g.Rephrase(p)
	cfg := fingerprint.DefaultConfig()
	fa, err := fingerprint.Compute(p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	fb, err := fingerprint.Compute(rephrased, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if c := fa.Containment(fb); c > 0.2 {
		t.Errorf("rephrase kept containment %v, want near 0", c)
	}
}

func TestSentenceOps(t *testing.T) {
	g := NewTextGen(17, 300)
	p := g.Paragraph(4, 4)
	if got := strings.Count(g.DropSentence(p), "."); got != 3 {
		t.Errorf("DropSentence: %d sentences, want 3", got)
	}
	if got := strings.Count(g.AppendSentence(p), "."); got != 5 {
		t.Errorf("AppendSentence: %d sentences, want 5", got)
	}
	shuffled := g.ShuffleSentences(p)
	if strings.Count(shuffled, ".") != 4 {
		t.Error("ShuffleSentences changed sentence count")
	}
	single := "Only one sentence here."
	if g.DropSentence(single) != single {
		t.Error("DropSentence removed the only sentence")
	}
}

func TestGenerateRevisionCorpus(t *testing.T) {
	cfg := DefaultRevisionCorpusConfig()
	cfg.Revisions = 50
	cfg.Paragraphs = 10
	articles := GenerateRevisionCorpus(cfg)
	if len(articles) != 8 {
		t.Fatalf("articles=%d, want 8", len(articles))
	}
	for _, a := range articles {
		if len(a.Revisions) != 50 {
			t.Errorf("%s: revisions=%d", a.Title, len(a.Revisions))
		}
		if len(a.Base()) != 10 {
			t.Errorf("%s: base paragraphs=%d", a.Title, len(a.Base()))
		}
	}
	// Determinism.
	again := GenerateRevisionCorpus(cfg)
	if articles[0].Latest()[0] != again[0].Latest()[0] {
		t.Error("corpus not deterministic")
	}
}

func TestVolatileArticlesChangeMore(t *testing.T) {
	cfg := DefaultRevisionCorpusConfig()
	cfg.Revisions = 150
	cfg.Paragraphs = 20
	articles := GenerateRevisionCorpus(cfg)
	var stableChange, volatileChange float64
	for _, a := range articles {
		if a.Volatility <= cfg.StableVolatility {
			stableChange += RelativeLengthChange(a)
		} else {
			volatileChange += RelativeLengthChange(a)
		}
	}
	// Volatile articles must churn more in aggregate (Figure 8 shape).
	if volatileChange <= stableChange {
		t.Errorf("volatile change %v <= stable change %v", volatileChange, stableChange)
	}
}

func TestExtraArticles(t *testing.T) {
	cfg := DefaultRevisionCorpusConfig()
	cfg.Revisions = 5
	cfg.Paragraphs = 3
	cfg.ExtraArticles = 4
	articles := GenerateRevisionCorpus(cfg)
	if len(articles) != 12 {
		t.Errorf("articles=%d, want 12", len(articles))
	}
}

func TestGenerateManuals(t *testing.T) {
	chapters := GenerateManuals(1)
	if len(chapters) != 4 {
		t.Fatalf("chapters=%d, want 4", len(chapters))
	}
	for _, c := range chapters {
		if len(c.Versions) != 4 {
			t.Errorf("%s: versions=%d, want 4", c.Name, len(c.Versions))
		}
		base := c.Base()
		if base.GroundTruthDisclosed() != len(base.Paragraphs) {
			t.Errorf("%s: base must fully disclose itself", c.Name)
		}
		for _, v := range c.Versions {
			if len(v.BaseEdits) != len(base.Paragraphs) {
				t.Errorf("%s %s: BaseEdits=%d, want %d", c.Name, v.Label, len(v.BaseEdits), len(base.Paragraphs))
			}
		}
	}
	if _, ok := ChapterByName(chapters, "MySQL What's MySQL"); !ok {
		t.Error("ChapterByName failed")
	}
	if _, ok := ChapterByName(chapters, "nonexistent"); ok {
		t.Error("ChapterByName found a ghost")
	}
}

func TestManualChurnShapes(t *testing.T) {
	chapters := GenerateManuals(1)
	camera, _ := ChapterByName(chapters, "IPhone Camera")
	whats, _ := ChapterByName(chapters, "MySQL What's MySQL")

	// iPhone Camera: last version discloses almost nothing of the base.
	last := camera.Versions[len(camera.Versions)-1]
	frac := float64(last.GroundTruthDisclosed()) / float64(len(camera.Base().Paragraphs))
	if frac > 0.3 {
		t.Errorf("iPhone Camera final disclosure=%v, want near 0", frac)
	}
	// What's MySQL: stays essentially fully disclosed.
	lastW := whats.Versions[len(whats.Versions)-1]
	fracW := float64(lastW.GroundTruthDisclosed()) / float64(len(whats.Base().Paragraphs))
	if fracW < 0.7 {
		t.Errorf("What's MySQL final disclosure=%v, want near 1", fracW)
	}
}

func TestEditKindDiscloses(t *testing.T) {
	if !EditKept.Discloses() || !EditLight.Discloses() || !EditRephrased.Discloses() {
		t.Error("kept/light/rephrased must disclose")
	}
	if EditRemoved.Discloses() {
		t.Error("removed must not disclose")
	}
}

func TestGenerateEbooks(t *testing.T) {
	cfg := EbookConfig{Seed: 5, Books: 3, MinBytes: 10 << 10, MaxBytes: 20 << 10}
	books := GenerateEbooks(cfg)
	if len(books) != 3 {
		t.Fatalf("books=%d", len(books))
	}
	for _, b := range books {
		if b.SizeBytes() < cfg.MinBytes {
			t.Errorf("%s: size=%d < min %d", b.Title, b.SizeBytes(), cfg.MinBytes)
		}
	}
	if TotalSizeBytes(books) < 30<<10 {
		t.Error("total size too small")
	}
	page := books[0].Page(0)
	if len(page) < 1024 {
		t.Errorf("page=%d bytes, want ~2KB", len(page))
	}
	// Determinism.
	again := GenerateEbooks(cfg)
	if books[0].Paragraphs[0] != again[0].Paragraphs[0] {
		t.Error("ebooks not deterministic")
	}
}

func TestPopularPassagesShared(t *testing.T) {
	cfg := EbookConfig{
		Seed: 5, Books: 3, MinBytes: 30 << 10, MaxBytes: 40 << 10,
		PopularPassages: 3, PopularEvery: 10,
	}
	books := GenerateEbooks(cfg)
	// Find a paragraph in book 0 containing an injected passage: a
	// passage is a sentence that also appears verbatim in another book.
	shared := 0
	for _, p0 := range books[0].Paragraphs {
		for _, sentence := range splitSentences(p0) {
			if len(sentence) < 60 {
				continue
			}
			for _, p1 := range books[1].Paragraphs {
				if strings.Contains(p1, sentence) {
					shared++
				}
			}
		}
	}
	if shared == 0 {
		t.Error("no popular passages shared across books")
	}
	// Without injection, no cross-book sharing of long sentences.
	cfg.PopularPassages = 0
	plain := GenerateEbooks(cfg)
	sharedPlain := 0
	for _, p0 := range plain[0].Paragraphs[:20] {
		for _, sentence := range splitSentences(p0) {
			if len(sentence) < 60 {
				continue
			}
			for _, p1 := range plain[1].Paragraphs {
				if strings.Contains(p1, sentence) {
					sharedPlain++
				}
			}
		}
	}
	if sharedPlain != 0 {
		t.Errorf("unexpected sharing without injection: %d", sharedPlain)
	}
}

func TestPopularPassagesZipfProfile(t *testing.T) {
	cfg := EbookConfig{
		Seed: 5, Books: 1, MinBytes: 60 << 10, MaxBytes: 60 << 10,
		PopularPassages: 2, PopularEvery: 10,
	}
	books := GenerateEbooks(cfg)
	pgen := NewTextGen(cfg.Seed+424242, 1500)
	first := pgen.Sentence(12, 18)
	second := pgen.Sentence(12, 18)
	count := func(needle string) int {
		n := 0
		for _, p := range books[0].Paragraphs {
			if strings.Contains(p, needle) {
				n++
			}
		}
		return n
	}
	c1, c2 := count(first), count(second)
	if c1 == 0 || c2 == 0 {
		t.Fatalf("passages not injected: %d %d", c1, c2)
	}
	if c1 <= c2 {
		t.Errorf("Zipf profile violated: passage0=%d <= passage1=%d", c1, c2)
	}
}

func TestStatsAndTable(t *testing.T) {
	cfg := DefaultRevisionCorpusConfig()
	cfg.Revisions = 5
	cfg.Paragraphs = 4
	articles := GenerateRevisionCorpus(cfg)
	chapters := GenerateManuals(1)
	books := GenerateEbooks(EbookConfig{Seed: 5, Books: 2, MinBytes: 5 << 10, MaxBytes: 6 << 10})

	rows := []Stats{RevisionCorpusStats(articles)}
	rows = append(rows, ManualStats(chapters)...)
	rows = append(rows, EbookStats(books))

	if rows[0].Documents != 8 || rows[0].Versions != 5 {
		t.Errorf("wikipedia row=%+v", rows[0])
	}
	if len(rows) != 6 {
		t.Fatalf("rows=%d, want 6", len(rows))
	}
	table := FormatTable(rows)
	for _, want := range []string{"Wikipedia", "IPhone Camera", "MySQL New Features", "Ebooks"} {
		if !strings.Contains(table, want) {
			t.Errorf("table missing %q:\n%s", want, table)
		}
	}
}

func TestStatsEmptyInputs(t *testing.T) {
	if s := RevisionCorpusStats(nil); s.Documents != 0 {
		t.Error("empty corpus stats")
	}
	if s := EbookStats(nil); s.Documents != 0 {
		t.Error("empty ebook stats")
	}
}

func TestGenerateEbooksFuncMatchesBatch(t *testing.T) {
	cfg := EbookConfig{Seed: 7, Books: 4, MinBytes: 2 << 10, MaxBytes: 6 << 10, PopularPassages: 3}
	want := GenerateEbooks(cfg)
	var got []Ebook
	if err := GenerateEbooksFunc(cfg, func(b Ebook) error {
		got = append(got, b)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("streamed %d books, batch produced %d", len(got), len(want))
	}
	for i := range want {
		if got[i].Title != want[i].Title {
			t.Fatalf("book %d title %q != %q", i, got[i].Title, want[i].Title)
		}
		if len(got[i].Paragraphs) != len(want[i].Paragraphs) {
			t.Fatalf("book %d has %d paragraphs, want %d", i, len(got[i].Paragraphs), len(want[i].Paragraphs))
		}
		for j := range want[i].Paragraphs {
			if got[i].Paragraphs[j] != want[i].Paragraphs[j] {
				t.Fatalf("book %d paragraph %d diverged", i, j)
			}
		}
	}
}

func TestGenerateEbooksFuncStopsOnError(t *testing.T) {
	cfg := EbookConfig{Seed: 7, Books: 10, MinBytes: 2 << 10, MaxBytes: 4 << 10}
	calls := 0
	sentinel := errors.New("stop")
	err := GenerateEbooksFunc(cfg, func(Ebook) error {
		calls++
		if calls == 2 {
			return sentinel
		}
		return nil
	})
	if !errors.Is(err, sentinel) {
		t.Fatalf("err=%v, want sentinel", err)
	}
	if calls != 2 {
		t.Fatalf("generator kept going after error: %d calls", calls)
	}
}
