// Package dataset generates the synthetic corpora that stand in for the
// paper's evaluation data (§6.1, Table 1). The real corpora — Wikipedia
// revision histories, iPhone/MySQL manuals with human-expert ground truth,
// and Project Gutenberg e-books — are not available offline, so each is
// replaced by a seeded generator that reproduces the property the
// experiments actually measure:
//
//   - revision chains with controlled edit volatility (Figures 8–9),
//   - versioned manual chapters whose edit log doubles as exact ground
//     truth (Figures 10–11), and
//   - large e-books for fingerprint-database scaling (Figures 12–13).
//
// All generation is deterministic given a seed.
package dataset

import (
	"math/rand"
	"strings"
)

// TextGen produces deterministic pseudo-English text from a synthetic
// vocabulary. Different articles use disjoint vocabulary slices where the
// experiments need guaranteed non-overlap.
type TextGen struct {
	rng   *rand.Rand
	vocab []string
}

// syllable inventory for vocabulary construction.
var (
	onsets  = []string{"b", "c", "d", "f", "g", "h", "j", "k", "l", "m", "n", "p", "r", "s", "t", "v", "w", "z", "br", "ch", "cl", "dr", "fl", "gr", "pl", "pr", "sh", "sl", "st", "th", "tr"}
	nuclei  = []string{"a", "e", "i", "o", "u", "ai", "ea", "ee", "io", "ou"}
	stopper = []string{"", "n", "r", "s", "t", "l", "m", "nd", "st", "rt"}
)

// NewTextGen returns a generator with a vocabulary of size words derived
// from seed.
func NewTextGen(seed int64, size int) *TextGen {
	rng := rand.New(rand.NewSource(seed))
	vocab := make([]string, 0, size)
	seen := make(map[string]bool, size)
	for len(vocab) < size {
		var sb strings.Builder
		syllables := 2 + rng.Intn(3)
		for s := 0; s < syllables; s++ {
			sb.WriteString(onsets[rng.Intn(len(onsets))])
			sb.WriteString(nuclei[rng.Intn(len(nuclei))])
			if s == syllables-1 {
				sb.WriteString(stopper[rng.Intn(len(stopper))])
			}
		}
		w := sb.String()
		if !seen[w] {
			seen[w] = true
			vocab = append(vocab, w)
		}
	}
	return &TextGen{rng: rng, vocab: vocab}
}

// Word returns one random vocabulary word.
func (g *TextGen) Word() string {
	return g.vocab[g.rng.Intn(len(g.vocab))]
}

// Sentence returns a sentence of between minWords and maxWords words,
// capitalised and full-stopped.
func (g *TextGen) Sentence(minWords, maxWords int) string {
	n := minWords
	if maxWords > minWords {
		n += g.rng.Intn(maxWords - minWords + 1)
	}
	words := make([]string, n)
	for i := range words {
		words[i] = g.Word()
	}
	s := strings.Join(words, " ")
	return strings.ToUpper(s[:1]) + s[1:] + "."
}

// Paragraph returns a paragraph of between minSentences and maxSentences
// sentences.
func (g *TextGen) Paragraph(minSentences, maxSentences int) string {
	n := minSentences
	if maxSentences > minSentences {
		n += g.rng.Intn(maxSentences - minSentences + 1)
	}
	sentences := make([]string, n)
	for i := range sentences {
		sentences[i] = g.Sentence(8, 16)
	}
	return strings.Join(sentences, " ")
}

// Rephrase rewrites a paragraph completely with fresh words, preserving
// only its approximate shape — the "same concept, different words" edit
// that escapes fingerprint tracking (§4.4).
func (g *TextGen) Rephrase(paragraph string) string {
	sentences := strings.Count(paragraph, ".")
	if sentences < 1 {
		sentences = 1
	}
	out := make([]string, sentences)
	for i := range out {
		out[i] = g.Sentence(8, 16)
	}
	return strings.Join(out, " ")
}

// LightEdit perturbs a paragraph slightly: it replaces roughly frac of the
// words, keeping the bulk of the text (and its fingerprint) intact.
func (g *TextGen) LightEdit(paragraph string, frac float64) string {
	words := strings.Fields(paragraph)
	changes := int(float64(len(words)) * frac)
	if changes < 1 {
		changes = 1
	}
	for c := 0; c < changes; c++ {
		i := g.rng.Intn(len(words))
		words[i] = g.Word()
	}
	return strings.Join(words, " ")
}

// ShuffleSentences reorders the sentences of a paragraph.
func (g *TextGen) ShuffleSentences(paragraph string) string {
	sentences := splitSentences(paragraph)
	g.rng.Shuffle(len(sentences), func(i, j int) {
		sentences[i], sentences[j] = sentences[j], sentences[i]
	})
	return strings.Join(sentences, " ")
}

// DropSentence removes one sentence (if the paragraph has more than one).
func (g *TextGen) DropSentence(paragraph string) string {
	sentences := splitSentences(paragraph)
	if len(sentences) <= 1 {
		return paragraph
	}
	i := g.rng.Intn(len(sentences))
	sentences = append(sentences[:i], sentences[i+1:]...)
	return strings.Join(sentences, " ")
}

// AppendSentence adds a fresh sentence to the paragraph.
func (g *TextGen) AppendSentence(paragraph string) string {
	return paragraph + " " + g.Sentence(8, 16)
}

func splitSentences(paragraph string) []string {
	parts := strings.SplitAfter(paragraph, ".")
	var out []string
	for _, p := range parts {
		p = strings.TrimSpace(p)
		if p != "" {
			out = append(out, p)
		}
	}
	return out
}
