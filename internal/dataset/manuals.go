package dataset

import (
	"math/rand"
)

// The Manuals dataset (Table 1): two chapters from each of two technical
// manuals, four versions per chapter. The generator's edit log plays the
// role of the paper's human expert: it records, for every base paragraph
// and every later version, whether that version still discloses the base
// paragraph's content ("similar content or concepts ... regardless of the
// actual words used").

// EditKind is what happened to a base paragraph in a given version.
type EditKind int

const (
	// EditKept keeps the paragraph verbatim.
	EditKept EditKind = iota + 1

	// EditLight rewrites a few words; content clearly disclosed.
	EditLight

	// EditRephrased rewrites the paragraph in fresh words while keeping
	// the concept. The expert reports disclosure; fingerprints cannot —
	// the systematic false negative of §6.1.
	EditRephrased

	// EditRemoved drops the paragraph; no disclosure.
	EditRemoved
)

// Discloses reports whether the human expert counts this edit as
// disclosing the base paragraph.
func (k EditKind) Discloses() bool {
	return k == EditKept || k == EditLight || k == EditRephrased
}

// ManualVersion is one version of a chapter.
type ManualVersion struct {
	// Label names the version ("iOS3", "4.1", ...).
	Label string

	// Paragraphs is the version's text.
	Paragraphs []string

	// BaseEdits[i] records what this version did with base paragraph i.
	BaseEdits []EditKind
}

// GroundTruthDisclosed returns how many base paragraphs the expert counts
// as disclosed by this version.
func (v ManualVersion) GroundTruthDisclosed() int {
	n := 0
	for _, k := range v.BaseEdits {
		if k.Discloses() {
			n++
		}
	}
	return n
}

// Chapter is one manual chapter across versions.
type Chapter struct {
	// Name identifies the chapter ("IPhone Camera", ...).
	Name string

	// Versions holds the versions, oldest (the base) first.
	Versions []ManualVersion
}

// Base returns the oldest version.
func (c Chapter) Base() ManualVersion { return c.Versions[0] }

// chapterSpec describes a chapter's churn profile: survival[v] is the
// fraction of base paragraphs still disclosed (kept or lightly edited) in
// version v, and rephrased[v] the fraction rephrased-but-same-concept.
type chapterSpec struct {
	name       string
	labels     []string
	paragraphs int
	survival   []float64
	rephrased  []float64
}

// chapterSpecs mirrors the qualitative shapes of Figure 10: the iPhone
// chapters churn heavily (almost nothing of iOS3 survives to iOS7), MySQL
// "New Features" drops after 4.1, and "What's MySQL" barely changes.
var chapterSpecs = []chapterSpec{
	{
		name:       "IPhone Camera",
		labels:     []string{"iOS3", "iOS4", "iOS5", "iOS7"},
		paragraphs: 40,
		survival:   []float64{1.0, 0.55, 0.30, 0.04},
		rephrased:  []float64{0, 0.05, 0.05, 0.03},
	},
	{
		name:       "IPhone Message",
		labels:     []string{"iOS3", "iOS4", "iOS5", "iOS7"},
		paragraphs: 20,
		survival:   []float64{1.0, 0.60, 0.25, 0.02},
		rephrased:  []float64{0, 0.05, 0.08, 0.04},
	},
	{
		name:       "MySQL New Features",
		labels:     []string{"4.0", "4.1", "5.0", "5.1"},
		paragraphs: 28,
		survival:   []float64{1.0, 0.85, 0.45, 0.35},
		rephrased:  []float64{0, 0.03, 0.05, 0.05},
	},
	{
		name:       "MySQL What's MySQL",
		labels:     []string{"4.0", "4.1", "5.0", "5.1"},
		paragraphs: 8,
		survival:   []float64{1.0, 1.0, 0.95, 0.95},
		rephrased:  []float64{0, 0, 0.05, 0.05},
	},
}

// GenerateManuals builds the four chapters deterministically from seed.
func GenerateManuals(seed int64) []Chapter {
	chapters := make([]Chapter, 0, len(chapterSpecs))
	for i, spec := range chapterSpecs {
		chapters = append(chapters, generateChapter(spec, seed+int64(i)*101))
	}
	return chapters
}

// ChapterByName returns the named chapter from GenerateManuals output.
func ChapterByName(chapters []Chapter, name string) (Chapter, bool) {
	for _, c := range chapters {
		if c.Name == name {
			return c, true
		}
	}
	return Chapter{}, false
}

func generateChapter(spec chapterSpec, seed int64) Chapter {
	gen := NewTextGen(seed, 500)
	rng := rand.New(rand.NewSource(seed * 31337))

	base := make([]string, spec.paragraphs)
	for i := range base {
		base[i] = gen.Paragraph(3, 5)
	}
	baseVersion := ManualVersion{
		Label:      spec.labels[0],
		Paragraphs: base,
		BaseEdits:  make([]EditKind, spec.paragraphs),
	}
	for i := range baseVersion.BaseEdits {
		baseVersion.BaseEdits[i] = EditKept
	}

	chapter := Chapter{Name: spec.name, Versions: []ManualVersion{baseVersion}}
	for v := 1; v < len(spec.labels); v++ {
		chapter.Versions = append(chapter.Versions,
			deriveVersion(spec, v, base, gen, rng))
	}
	return chapter
}

// deriveVersion builds version v directly from the base: each base
// paragraph independently survives, is lightly edited, is rephrased, or is
// removed, at rates interpolated from the spec. New paragraphs are added
// to keep chapter length roughly stable.
func deriveVersion(spec chapterSpec, v int, base []string, gen *TextGen, rng *rand.Rand) ManualVersion {
	version := ManualVersion{
		Label:     spec.labels[v],
		BaseEdits: make([]EditKind, len(base)),
	}
	surviveP := spec.survival[v]
	rephraseP := spec.rephrased[v]
	for i, p := range base {
		r := rng.Float64()
		switch {
		case r < surviveP*0.7:
			version.BaseEdits[i] = EditKept
			version.Paragraphs = append(version.Paragraphs, p)
		case r < surviveP:
			version.BaseEdits[i] = EditLight
			version.Paragraphs = append(version.Paragraphs, gen.LightEdit(p, 0.03))
		case r < surviveP+rephraseP:
			version.BaseEdits[i] = EditRephrased
			version.Paragraphs = append(version.Paragraphs, gen.Rephrase(p))
		default:
			version.BaseEdits[i] = EditRemoved
		}
	}
	// Top up with brand-new paragraphs (not counted in ground truth).
	for len(version.Paragraphs) < len(base) {
		version.Paragraphs = append(version.Paragraphs, gen.Paragraph(3, 5))
	}
	return version
}
