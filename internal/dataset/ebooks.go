package dataset

import (
	"fmt"
	"math/rand"
	"strings"
)

// Ebook is one synthetic Project Gutenberg-style book used by the
// performance experiments (§6.2): the paper loads 180 e-books (300 KB to
// 5.5 MB, 90 MB total, ~10 M distinct hashes) into the fingerprint
// database.
type Ebook struct {
	// Title names the book.
	Title string

	// Paragraphs is the full text, paragraph by paragraph.
	Paragraphs []string
}

// SizeBytes returns the book's total text size.
func (e Ebook) SizeBytes() int {
	n := 0
	for _, p := range e.Paragraphs {
		n += len(p) + 2
	}
	return n
}

// EbookConfig controls e-book generation.
type EbookConfig struct {
	// Seed drives all randomness.
	Seed int64

	// Books is the number of books (paper: 180).
	Books int

	// MinBytes and MaxBytes bound the book sizes (paper: 300 KB–5.5 MB).
	MinBytes int
	MaxBytes int

	// PopularPassages injects this many shared passages across books with
	// a Zipf-like frequency profile (passage 0 most frequent). §6.2 notes
	// that "performance is determined primarily by how many popular text
	// passages appear in multiple different paragraphs" — this knob
	// reproduces that load. Zero disables injection.
	PopularPassages int

	// PopularEvery is the base injection period in paragraphs (default
	// 40): passage k appears every (k+1)*PopularEvery paragraphs.
	PopularEvery int
}

// DefaultEbookConfig returns a laptop-scale configuration (~5 MB total,
// ~1 M hashes); the bench harness scales it up towards the paper's 90 MB.
func DefaultEbookConfig() EbookConfig {
	return EbookConfig{
		Seed:     42,
		Books:    10,
		MinBytes: 200 << 10,
		MaxBytes: 800 << 10,
	}
}

// GenerateEbooks builds the book corpus. Books share one large vocabulary
// (like English prose), so popular phrases occasionally collide across
// books — the realistic overlap that drives Figure 12's W1/W3 latencies.
//
// The whole corpus is materialised at once; corpus-scale callers (10M+
// hashes) should stream it book by book with GenerateEbooksFunc instead.
func GenerateEbooks(cfg EbookConfig) []Ebook {
	books := make([]Ebook, 0, max(cfg.Books, 1))
	// The only error source is fn, and this fn never fails.
	_ = GenerateEbooksFunc(cfg, func(book Ebook) error {
		books = append(books, book)
		return nil
	})
	return books
}

// GenerateEbooksFunc generates the corpus one book at a time, invoking fn
// with each completed book in generation order. The caller may ingest and
// drop every book as it arrives, so loading a corpus far larger than memory
// (the 10M-hash scalability runs) peaks at one book (~MaxBytes) of text
// instead of the whole corpus. Generation is deterministic: a given cfg
// yields byte-identical books whether consumed through GenerateEbooks or
// streamed here. An error from fn stops generation and is returned.
func GenerateEbooksFunc(cfg EbookConfig, fn func(book Ebook) error) error {
	if cfg.Books < 1 {
		cfg.Books = 1
	}
	if cfg.MinBytes < 1<<10 {
		cfg.MinBytes = 1 << 10
	}
	if cfg.MaxBytes < cfg.MinBytes {
		cfg.MaxBytes = cfg.MinBytes
	}
	if cfg.PopularEvery <= 0 {
		cfg.PopularEvery = 40
	}
	// Shared passage pool, generated once so every book embeds identical
	// text (and therefore identical fingerprint hashes).
	var popular []string
	if cfg.PopularPassages > 0 {
		pgen := NewTextGen(cfg.Seed+424242, 1500)
		popular = make([]string, cfg.PopularPassages)
		for i := range popular {
			popular[i] = pgen.Sentence(12, 18)
		}
	}

	rng := rand.New(rand.NewSource(cfg.Seed))
	for b := 0; b < cfg.Books; b++ {
		gen := NewTextGen(cfg.Seed+int64(b)*1009, 3000)
		target := cfg.MinBytes
		if cfg.MaxBytes > cfg.MinBytes {
			target += rng.Intn(cfg.MaxBytes - cfg.MinBytes)
		}
		book := Ebook{Title: fmt.Sprintf("Synthetic Classic %03d", b)}
		size := 0
		for size < target {
			p := gen.Paragraph(4, 9)
			// Zipf-like injection: passage k every (k+1)*PopularEvery
			// paragraphs, so low-k passages recur in many paragraphs
			// across many books.
			idx := len(book.Paragraphs)
			for k, passage := range popular {
				if idx%((k+1)*cfg.PopularEvery) == (k+1)*7%cfg.PopularEvery {
					p = p + " " + passage
				}
			}
			book.Paragraphs = append(book.Paragraphs, p)
			size += len(p) + 2
		}
		if err := fn(book); err != nil {
			return err
		}
	}
	return nil
}

// Page returns roughly one page (~2 KB) of a book starting at paragraph
// offset, as a single string — the unit the Figure 12 workflows paste.
func (e Ebook) Page(offset int) string {
	var sb strings.Builder
	for i := offset; i < len(e.Paragraphs) && sb.Len() < 2048; i++ {
		sb.WriteString(e.Paragraphs[i])
		sb.WriteString("\n\n")
	}
	return strings.TrimSpace(sb.String())
}

// TotalSizeBytes sums the corpus size.
func TotalSizeBytes(books []Ebook) int {
	n := 0
	for _, b := range books {
		n += b.SizeBytes()
	}
	return n
}
