package tagserver

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"time"

	"github.com/lsds/browserflow/internal/fingerprint"
	"github.com/lsds/browserflow/internal/segment"
	"github.com/lsds/browserflow/internal/tdm"
)

// ClusterClient splits traffic across a replicated tag service: reads
// (check/upload/label/stats) round-robin over replicas and fail over to
// the primary; writes (observe/suppress) go to the primary and follow
// 421 redirects when the cluster has failed over to a new one. The
// client tracks the highest replication term it has seen and stamps it
// on every write, so a deposed primary that answers is fenced on contact
// rather than accepting a stale write.
type ClusterClient struct {
	device string
	cfg    fingerprint.Config
	opts   []ClientOption

	mu        sync.Mutex
	primary   string
	replicas  []string
	bootstrap []string
	clients   map[string]*Client
	rr        int
	term      uint64

	// maxRedirects bounds how many 421 redirects one write follows.
	maxRedirects int
}

// NewClusterClient builds a client over a primary and any number of
// read replicas. opts apply to every per-node Client it constructs.
func NewClusterClient(primary string, replicas []string, device string, cfg fingerprint.Config, opts ...ClientOption) (*ClusterClient, error) {
	if primary == "" {
		return nil, fmt.Errorf("tagserver: cluster primary URL is required")
	}
	cc := &ClusterClient{
		device:       device,
		cfg:          cfg,
		opts:         opts,
		primary:      primary,
		replicas:     append([]string(nil), replicas...),
		bootstrap:    append([]string{primary}, replicas...),
		clients:      make(map[string]*Client),
		maxRedirects: 3,
	}
	// Validate eagerly: constructing the primary client surfaces bad
	// config now rather than on the first call.
	if _, err := cc.clientFor(primary); err != nil {
		return nil, err
	}
	return cc, nil
}

// Bootstrap returns the comma-joined node list the client was built
// over (primary first) — the identity a routing tier compares to decide
// whether a ring change touched this group.
func (cc *ClusterClient) Bootstrap() string {
	cc.mu.Lock()
	defer cc.mu.Unlock()
	if len(cc.bootstrap) == 0 {
		return ""
	}
	return strings.Join(cc.bootstrap, ",")
}

// Term returns the highest replication term this client has observed.
func (cc *ClusterClient) Term() uint64 {
	cc.mu.Lock()
	defer cc.mu.Unlock()
	return cc.term
}

// Primary returns the address writes are currently sent to.
func (cc *ClusterClient) Primary() string {
	cc.mu.Lock()
	defer cc.mu.Unlock()
	return cc.primary
}

// observe folds a 421's term and primary into the client's routing state.
func (cc *ClusterClient) observe(np *NotPrimaryError) {
	cc.mu.Lock()
	defer cc.mu.Unlock()
	if np.Term > cc.term {
		cc.term = np.Term
	}
	if np.Primary != "" && np.Primary != cc.primary {
		cc.primary = np.Primary
	}
}

// clientFor returns (building if needed) the per-node client for base.
func (cc *ClusterClient) clientFor(base string) (*Client, error) {
	cc.mu.Lock()
	if c, ok := cc.clients[base]; ok {
		cc.mu.Unlock()
		return c, nil
	}
	cc.mu.Unlock()

	opts := append(append([]ClientOption(nil), cc.opts...), WithTermSource(cc.Term))
	c, err := NewClient(base, cc.device, cc.cfg, opts...)
	if err != nil {
		return nil, err
	}
	cc.mu.Lock()
	defer cc.mu.Unlock()
	if existing, ok := cc.clients[base]; ok {
		return existing, nil
	}
	cc.clients[base] = c
	return c, nil
}

// discoverPrimary probes every known node's /healthz for one that
// reports the primary role, adopting it for future writes.
func (cc *ClusterClient) discoverPrimary(ctx context.Context) bool {
	cc.mu.Lock()
	candidates := append([]string{cc.primary}, cc.replicas...)
	cc.mu.Unlock()
	for _, base := range candidates {
		c, err := cc.clientFor(base)
		if err != nil {
			continue
		}
		health, err := c.HealthStatus(ctx)
		if err != nil || health.Replication == nil {
			continue
		}
		cc.mu.Lock()
		if health.Replication.Term > cc.term {
			cc.term = health.Replication.Term
		}
		cc.mu.Unlock()
		if health.Replication.Role == "primary" {
			cc.mu.Lock()
			cc.primary = base
			cc.mu.Unlock()
			return true
		}
		if p := health.Replication.Primary; p != "" {
			cc.mu.Lock()
			cc.primary = p
			cc.mu.Unlock()
			return true
		}
	}
	return false
}

// write runs fn against the current primary, following up to
// maxRedirects 421 redirects (learning the new primary from the error
// or, when it is not advertised, from the replicas' health endpoints).
// The hop cap bounds the redirect chase even when a mid-promotion
// cluster ping-pongs (a fenced ex-primary advertising the candidate,
// the candidate still advertising the ex-primary): a redirect back to a
// node already tried this write stops following addresses and falls
// back to health discovery. A 421 carrying a Retry-After hint (a
// promotion in flight) is honoured like a 429's backoff before the next
// hop; a 421 carrying a ring version is a partition-ownership redirect
// and is returned to the caller — only the routing tier can fix a stale
// ring.
func (cc *ClusterClient) write(ctx context.Context, fn func(*Client) error) error {
	var lastErr error
	visited := make(map[string]bool, cc.maxRedirects+1)
	for attempt := 0; attempt <= cc.maxRedirects; attempt++ {
		base := cc.Primary()
		c, err := cc.clientFor(base)
		if err != nil {
			return err
		}
		visited[base] = true
		err = fn(c)
		if err == nil {
			return nil
		}
		lastErr = err
		np, ok := AsNotPrimary(err)
		if !ok {
			if IsUnavailable(err) && cc.discoverPrimary(ctx) {
				continue
			}
			return err
		}
		if np.RingVersion > 0 {
			return err
		}
		cc.observe(np)
		if np.RetryAfter > 0 {
			select {
			case <-ctx.Done():
				return ctx.Err()
			case <-time.After(np.RetryAfter):
			}
		}
		if np.Primary == "" || visited[cc.Primary()] {
			if !cc.discoverPrimary(ctx) {
				return err
			}
		}
	}
	return lastErr
}

// nextReadOrder returns the bases to try for one read: replicas in
// round-robin order, then the primary as the fallback.
func (cc *ClusterClient) nextReadOrder() []string {
	cc.mu.Lock()
	defer cc.mu.Unlock()
	order := make([]string, 0, len(cc.replicas)+1)
	n := len(cc.replicas)
	if n > 0 {
		start := cc.rr % n
		cc.rr++
		for i := 0; i < n; i++ {
			order = append(order, cc.replicas[(start+i)%n])
		}
	}
	return append(order, cc.primary)
}

// read runs fn against replicas (round-robin) and falls back to the
// primary when every replica is unavailable.
func (cc *ClusterClient) read(fn func(*Client) error) error {
	var lastErr error
	for _, base := range cc.nextReadOrder() {
		c, err := cc.clientFor(base)
		if err != nil {
			lastErr = err
			continue
		}
		err = fn(c)
		if err == nil {
			return nil
		}
		lastErr = err
		if !IsUnavailable(err) {
			// Application-level rejection: failing over will not help.
			return err
		}
	}
	return lastErr
}

// ObserveBatch flushes coalesced edits to the primary (following
// failovers), returning one verdict per item.
func (cc *ClusterClient) ObserveBatch(ctx context.Context, service string, items []BatchItem) ([]Verdict, error) {
	var out []Verdict
	err := cc.write(ctx, func(c *Client) error {
		v, err := c.ObserveBatchCtx(ctx, service, items)
		if err == nil {
			out = v
		}
		return err
	})
	return out, err
}

// Observe records one paragraph edit on the primary.
func (cc *ClusterClient) Observe(ctx context.Context, service string, seg segment.ID, text string) (Verdict, error) {
	var out Verdict
	err := cc.write(ctx, func(c *Client) error {
		v, err := c.ObserveCtx(ctx, service, seg, text)
		if err == nil {
			out = v
		}
		return err
	})
	return out, err
}

// ObserveHashes records one pre-fingerprinted observation on the
// primary (following failovers) — the primitive load drivers use when
// they pre-compute fingerprints once and replay them.
func (cc *ClusterClient) ObserveHashes(ctx context.Context, service string, seg segment.ID, hashes []uint32, granularity string) (Verdict, error) {
	var out Verdict
	err := cc.write(ctx, func(c *Client) error {
		v, err := c.ObserveHashes(ctx, service, seg, hashes, granularity)
		if err == nil {
			out = v
		}
		return err
	})
	return out, err
}

// PartObserve sends a routed observation to the partition's primary,
// following replication failovers. A partition-ownership 421 (ring
// version set) is returned to the caller for a ring refresh.
func (cc *ClusterClient) PartObserve(ctx context.Context, service string, seg segment.ID, hashes []uint32, granularity string, clock uint64, resolved *PartResolved) (PartObserveResponse, error) {
	var out PartObserveResponse
	err := cc.write(ctx, func(c *Client) error {
		r, err := c.PartObserve(ctx, service, seg, hashes, granularity, clock, resolved)
		if err == nil {
			out = r
		}
		return err
	})
	return out, err
}

// PartQuery fetches the partition's scatter contribution from its
// primary. Queries deliberately do not round-robin over replicas: a
// lagging replica's contribution could miss a just-observed source and
// change a verdict a single node would have produced.
func (cc *ClusterClient) PartQuery(ctx context.Context, hashes []uint32, granularity string) (PartResolveWire, error) {
	var out PartResolveWire
	err := cc.write(ctx, func(c *Client) error {
		r, err := c.PartQuery(ctx, hashes, granularity)
		if err == nil {
			out = r
		}
		return err
	})
	return out, err
}

// PartCheck evaluates a resolved release check on the partition's
// primary.
func (cc *ClusterClient) PartCheck(ctx context.Context, dest string, sources []PartSource, implicit []string) (Verdict, error) {
	var out Verdict
	err := cc.write(ctx, func(c *Client) error {
		v, err := c.PartCheck(ctx, dest, sources, implicit)
		if err == nil {
			out = v
		}
		return err
	})
	return out, err
}

// PartRing fetches the encoded ring from any reachable node (replicas
// first, primary fallback — the ring is installed cluster-wide).
func (cc *ClusterClient) PartRing(ctx context.Context) (encoded []byte, version uint64, err error) {
	rerr := cc.read(func(c *Client) error {
		b, v, err := c.PartRing(ctx)
		if err == nil {
			encoded, version = b, v
		}
		return err
	})
	return encoded, version, rerr
}

// PartSuppress declassifies a tag via the partition's primary,
// surfacing ownership 421s to the caller like PartObserve.
func (cc *ClusterClient) PartSuppress(ctx context.Context, user string, seg segment.ID, tag tdm.Tag, justification string) error {
	return cc.write(ctx, func(c *Client) error {
		return c.SuppressCtx(ctx, user, seg, tag, justification)
	})
}

// Suppress declassifies a tag via the primary.
func (cc *ClusterClient) Suppress(ctx context.Context, user string, seg segment.ID, tag tdm.Tag, justification string) error {
	return cc.write(ctx, func(c *Client) error {
		return c.SuppressCtx(ctx, user, seg, tag, justification)
	})
}

// Upload evaluates a tracked segment's release on any replica (primary
// fallback) — the check is against the segment's stored label.
func (cc *ClusterClient) Upload(ctx context.Context, seg segment.ID, dest string) (Verdict, error) {
	var out Verdict
	err := cc.read(func(c *Client) error {
		v, err := c.CheckUploadCtx(ctx, seg, dest)
		if err == nil {
			out = v
		}
		return err
	})
	return out, err
}

// Check evaluates ad-hoc text against a destination on any replica
// (primary fallback).
func (cc *ClusterClient) Check(ctx context.Context, text, dest string) (Verdict, error) {
	var out Verdict
	err := cc.read(func(c *Client) error {
		v, err := c.CheckCtx(ctx, text, dest)
		if err == nil {
			out = v
		}
		return err
	})
	return out, err
}

// Label fetches a segment's label from any replica (primary fallback).
func (cc *ClusterClient) Label(ctx context.Context, seg segment.ID) (LabelResponse, error) {
	var out LabelResponse
	err := cc.read(func(c *Client) error {
		l, err := c.LabelCtx(ctx, seg)
		if err == nil {
			out = l
		}
		return err
	})
	return out, err
}

// Stats fetches database sizes from any replica (primary fallback).
func (cc *ClusterClient) Stats(ctx context.Context) (StatsResponse, error) {
	var out StatsResponse
	err := cc.read(func(c *Client) error {
		s, err := c.StatsCtx(ctx)
		if err == nil {
			out = s
		}
		return err
	})
	return out, err
}
