package tagserver

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"github.com/lsds/browserflow/internal/obs"
	"github.com/lsds/browserflow/internal/store"
	"github.com/lsds/browserflow/internal/wal"
)

// getHealth fetches and decodes /healthz.
func getHealth(t *testing.T, base string) HealthResponse {
	t.Helper()
	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz status %d", resp.StatusCode)
	}
	var out HealthResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	return out
}

// getBody fetches one path and returns the body as a string.
func getBody(t *testing.T, base, path string) string {
	t.Helper()
	resp, err := http.Get(base + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(body)
}

// TestHealthzReplicationBlock covers the /healthz replication block: the
// node's role, fencing term, and byte/record lag must round-trip so
// callers can bound read staleness.
func TestHealthzReplicationBlock(t *testing.T) {
	w := newTraceWorld(t)
	status := HealthReplication{
		Role:           "replica",
		Term:           7,
		Primary:        "http://primary:7000",
		Position:       "3,128",
		LagRecords:     5,
		LagBytes:       4096,
		AppliedRecords: 41,
		Bootstraps:     2,
		Connected:      true,
		LastError:      "transient: conn reset",
	}
	server, err := NewServer(w.engine, WithReplicationStatus(func() HealthReplication { return status }))
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(server)
	defer srv.Close()

	health := getHealth(t, srv.URL)
	if health.Replication == nil {
		t.Fatal("healthz missing replication block")
	}
	got := *health.Replication
	if got != status {
		t.Fatalf("replication block mismatch:\n got %+v\nwant %+v", got, status)
	}

	// The same numbers surface as Prometheus gauges on /v1/metrics.
	metrics := getBody(t, srv.URL, "/v1/metrics")
	for _, want := range []string{
		`browserflow_replication_role{role="replica"} 1`,
		"browserflow_replication_term 7",
		"browserflow_replication_lag_records 5",
		"browserflow_replication_lag_bytes 4096",
		"browserflow_replication_applied_records 41",
		"browserflow_replication_connected 1",
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
}

// TestHealthzNoReplication: a standalone server reports no replication
// block at all (nil, not zero-valued).
func TestHealthzNoReplication(t *testing.T) {
	w := newTraceWorld(t)
	server, err := NewServer(w.engine)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(server)
	defer srv.Close()
	health := getHealth(t, srv.URL)
	if health.Replication != nil {
		t.Fatalf("standalone server grew a replication block: %+v", health.Replication)
	}
	if health.Durability != nil {
		t.Fatalf("journal-less server grew a durability block: %+v", health.Durability)
	}
}

// TestHealthzDurabilityBlock covers the durability fields: WAL record
// counts, checkpoint tallies and the checkpoint age that monitoring
// alerts on.
func TestHealthzDurabilityBlock(t *testing.T) {
	w := newTraceWorld(t)
	durable, err := store.OpenDurable(store.DurableOptions{Dir: t.TempDir(), Fsync: wal.SyncAlways}, w.tracker, w.registry)
	if err != nil {
		t.Fatal(err)
	}
	defer durable.Close()
	w.engine.SetJournal(durable)

	server, err := NewServer(w.engine, WithDurabilityStats(durable.Stats))
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(server)
	defer srv.Close()

	// Journal a mutation, then checkpoint so LastCheckpointAge appears.
	if _, err := w.engine.ObserveEdit("wiki/a#p0", "wiki", "quarterly revenue forecast revised downwards"); err != nil {
		t.Fatal(err)
	}
	if err := durable.Checkpoint(); err != nil {
		t.Fatal(err)
	}

	health := getHealth(t, srv.URL)
	if health.Durability == nil {
		t.Fatal("healthz missing durability block")
	}
	d := health.Durability
	if d.WALRecords == 0 {
		t.Error("WALRecords = 0 after a journalled observe")
	}
	if d.Fsyncs == 0 {
		t.Error("Fsyncs = 0 under SyncAlways")
	}
	if d.Checkpoints != 1 {
		t.Errorf("Checkpoints = %d, want 1", d.Checkpoints)
	}
	if d.CheckpointErrors != 0 {
		t.Errorf("CheckpointErrors = %d, want 0", d.CheckpointErrors)
	}
	if d.LastCheckpointAge == "" {
		t.Error("LastCheckpointAge empty after a checkpoint")
	}
	if _, err := time.ParseDuration(d.LastCheckpointAge); err != nil {
		t.Errorf("LastCheckpointAge %q is not a duration: %v", d.LastCheckpointAge, err)
	}
}

// TestObsGaugesOnMetrics: with WithObs + durability + replication
// sources installed, the engine-level gauges appear in the obs section
// of /v1/metrics (lag bytes, checkpoint age, fsync quantiles, term).
func TestObsGaugesOnMetrics(t *testing.T) {
	w := newTraceWorld(t)
	durable, err := store.OpenDurable(store.DurableOptions{Dir: t.TempDir(), Fsync: wal.SyncAlways}, w.tracker, w.registry)
	if err != nil {
		t.Fatal(err)
	}
	defer durable.Close()
	w.engine.SetJournal(durable)

	o := obs.New(nil, 0)
	server, err := NewServer(w.engine,
		WithObs(o),
		WithDurabilityStats(durable.Stats),
		WithReplicationStatus(func() HealthReplication {
			return HealthReplication{Role: "replica", Term: 9, LagBytes: 1234, Connected: true}
		}),
	)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(server)
	defer srv.Close()

	if _, err := w.engine.ObserveEdit("wiki/a#p0", "wiki", "customer escalation about data residency"); err != nil {
		t.Fatal(err)
	}
	if err := durable.Checkpoint(); err != nil {
		t.Fatal(err)
	}

	metrics := getBody(t, srv.URL, "/v1/metrics")
	for _, want := range []string{
		"bf_node_repl_lag_bytes 1234",
		"bf_node_repl_term 9",
		"bf_decision_cache_hit_ratio",
		"bf_wal_fsync_p50_seconds",
		"bf_wal_fsync_p99_seconds",
		"bf_checkpoint_age_seconds",
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("obs metrics missing %q", want)
		}
	}

	// Traces surface on /v1/debug/traces when WithObs is installed.
	traces := getBody(t, srv.URL, "/v1/debug/traces")
	if !strings.Contains(traces, `"spans"`) {
		t.Errorf("/v1/debug/traces not serving span JSON: %s", traces)
	}
}

// TestHealthzPolicyBlock covers the /healthz policy block: nodes started
// from a compiled policy advertise its fingerprint so operators can
// confirm fleet-wide policy agreement; nodes without one omit the block.
func TestHealthzPolicyBlock(t *testing.T) {
	w := newTraceWorld(t)
	server, err := NewServer(w.engine, WithPolicyInfo("deadbeef01", 4))
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(server)
	defer srv.Close()

	health := getHealth(t, srv.URL)
	if health.Policy == nil {
		t.Fatal("healthz missing policy block")
	}
	if health.Policy.Hash != "deadbeef01" || health.Policy.Services != 4 {
		t.Fatalf("policy block mismatch: %+v", *health.Policy)
	}

	// No policy: block omitted entirely, and an empty hash is treated as
	// "no policy" rather than advertised.
	bare, err := NewServer(newTraceWorld(t).engine, WithPolicyInfo("", 9))
	if err != nil {
		t.Fatal(err)
	}
	srv2 := httptest.NewServer(bare)
	defer srv2.Close()
	if h := getHealth(t, srv2.URL); h.Policy != nil {
		t.Fatalf("policy block present without a policy: %+v", *h.Policy)
	}
}
