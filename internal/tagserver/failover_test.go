package tagserver

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/lsds/browserflow/internal/audit"
	"github.com/lsds/browserflow/internal/faultinject"
	"github.com/lsds/browserflow/internal/policy"
	"github.com/lsds/browserflow/internal/resilience"
	"github.com/lsds/browserflow/internal/segment"
)

// fakeClock drives the breaker's cooldown deterministically.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func newFakeClock() *fakeClock { return &fakeClock{t: time.Unix(1700000000, 0)} }

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

// observeRecorder records every /v1/observe request the server actually
// receives — segment order and per-segment delivery counts — so tests can
// assert exactly-once FIFO replay against the server side.
type observeRecorder struct {
	next http.Handler

	mu    sync.Mutex
	order []segment.ID
	count map[segment.ID]int
}

func newObserveRecorder(next http.Handler) *observeRecorder {
	return &observeRecorder{next: next, count: make(map[segment.ID]int)}
}

func (rec *observeRecorder) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if r.Method == http.MethodPost && r.URL.Path == "/v1/observe" {
		body, err := io.ReadAll(r.Body)
		if err == nil {
			var req ObserveRequest
			if json.Unmarshal(body, &req) == nil {
				rec.mu.Lock()
				rec.order = append(rec.order, req.Seg)
				rec.count[req.Seg]++
				rec.mu.Unlock()
			}
			r.Body = io.NopCloser(bytes.NewReader(body))
		}
	}
	rec.next.ServeHTTP(w, r)
}

func (rec *observeRecorder) Order() []segment.ID {
	rec.mu.Lock()
	defer rec.mu.Unlock()
	return append([]segment.ID(nil), rec.order...)
}

func (rec *observeRecorder) Count(seg segment.ID) int {
	rec.mu.Lock()
	defer rec.mu.Unlock()
	return rec.count[seg]
}

// chaosService is a real tag service behind an observe recorder, reached
// through a deterministic fault injector.
type chaosService struct {
	srv      *httptest.Server
	recorder *observeRecorder
	engine   *policy.Engine
	injector *faultinject.Injector
	client   *Client
}

func newChaosService(t *testing.T, mode policy.Mode) *chaosService {
	t.Helper()
	backend, engine := newService(t)
	backend.Close() // replaced by the recorder-wrapped server below

	server, err := NewServer(engine)
	if err != nil {
		t.Fatal(err)
	}
	recorder := newObserveRecorder(server)
	srv := httptest.NewServer(recorder)
	t.Cleanup(srv.Close)

	inj := faultinject.New(srv.Client().Transport, 1)
	inj.SetSleep(func(time.Duration) {}) // latency faults must not slow tests
	client, err := NewClient(srv.URL, "chaos-laptop", fpConfig(), WithTransport(inj))
	if err != nil {
		t.Fatal(err)
	}
	return &chaosService{srv: srv, recorder: recorder, engine: engine, injector: inj, client: client}
}

func newFailover(t *testing.T, cs *chaosService, mode policy.Mode, clk *fakeClock, log *audit.Log) *FailoverEngine {
	t.Helper()
	breaker := resilience.NewBreaker(resilience.BreakerConfig{
		FailureThreshold: 3,
		Cooldown:         10 * time.Second,
		Now:              clk.Now,
	})
	f, err := NewFailoverEngine(FailoverConfig{
		Client:  cs.client,
		Mode:    mode,
		Breaker: breaker,
		Audit:   log,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(f.Close)
	return f
}

// The headline chaos scenario of the robustness PR: an enforcing-mode
// FailoverEngine rides through a full outage — blocking releases fail
// closed while the breaker is open, local edits buffer, and on recovery the
// replay queue delivers every buffered observation to the server exactly
// once, in order.
func TestFailoverEndToEndChaos(t *testing.T) {
	cs := newChaosService(t, policy.ModeEnforcing)
	clk := newFakeClock()
	log := audit.NewLog()
	f := newFailover(t, cs, policy.ModeEnforcing, clk, log)

	// Phase 1: healthy. Real verdicts flow end to end.
	v, err := f.ObserveEdit("wiki/schedule#p0", "wiki", orgSecret)
	if err != nil || v.Decision != policy.DecisionAllow || v.Degraded {
		t.Fatalf("healthy observe: v=%+v err=%v", v, err)
	}
	v, err = f.CheckText(orgSecret, "docs")
	if err != nil {
		t.Fatal(err)
	}
	if v.Decision != policy.DecisionBlock || v.Degraded {
		t.Fatalf("healthy check of tracked secret: %+v, want genuine block", v)
	}

	// Phase 2: outage. Every request dies at the connection level.
	cs.injector.AddRule(faultinject.Rule{Kind: faultinject.KindConnError})
	for i := 0; i < 3; i++ {
		v, err = f.CheckText("benign note", "docs")
		if err != nil {
			t.Fatalf("degraded check %d returned error: %v", i, err)
		}
		if v.Decision != policy.DecisionBlock || !v.Degraded {
			t.Fatalf("degraded check %d: %+v, want fail-closed block", i, v)
		}
	}
	if got := f.Breaker().State(); got != resilience.StateOpen {
		t.Fatalf("breaker=%v after 3 consecutive failures, want open", got)
	}

	// While open, decisions fall back locally without touching the network.
	attemptsBefore := cs.injector.Attempts("/v1/check")
	v, err = f.CheckText("benign note", "docs")
	if err != nil {
		t.Fatal(err)
	}
	if v.Decision != policy.DecisionBlock || !v.Degraded {
		t.Fatalf("open-breaker check: %+v", v)
	}
	if len(v.Violating) != 1 || v.Violating[0] != DegradedTag {
		t.Errorf("open-breaker check violating=%v, want [%s]", v.Violating, DegradedTag)
	}
	if got := cs.injector.Attempts("/v1/check"); got != attemptsBefore {
		t.Errorf("open breaker still hit the network: attempts %d -> %d", attemptsBefore, got)
	}

	// Local edits stay allowed and buffer for replay.
	segs := []segment.ID{"wiki/a#p0", "wiki/b#p0", "wiki/c#p0"}
	for i, seg := range segs {
		text := fmt.Sprintf("offline paragraph %d drafted while the tag service was down", i)
		v, err = f.ObserveEdit(seg, "wiki", text)
		if err != nil {
			t.Fatalf("degraded observe: %v", err)
		}
		if v.Decision != policy.DecisionAllow || !v.Degraded {
			t.Fatalf("degraded observe: %+v, want degraded allow", v)
		}
	}
	if got := f.Stats().QueueLen; got != 3 {
		t.Fatalf("queue len=%d, want 3", got)
	}
	if got := cs.injector.Attempts("/v1/observe"); got != 1 {
		t.Errorf("open breaker sent observes upstream: attempts=%d, want 1 (healthy phase only)", got)
	}

	// Phase 3: recovery. Faults clear, cooldown elapses, a health probe
	// spends the half-open trial and the queue drains.
	cs.injector.ClearRules()
	clk.Advance(11 * time.Second)
	if err := f.Probe(context.Background()); err != nil {
		t.Fatalf("probe after recovery: %v", err)
	}
	if got := f.Breaker().State(); got != resilience.StateClosed {
		t.Fatalf("breaker=%v after successful probe, want closed", got)
	}

	stats := f.Stats()
	if stats.QueueLen != 0 || stats.Replayed != 3 || stats.Dropped != 0 {
		t.Fatalf("post-drain stats=%+v", stats)
	}
	if stats.Recoveries == 0 {
		t.Error("recovery not counted")
	}

	// Server-side proof of exactly-once FIFO delivery.
	order := cs.recorder.Order()
	if len(order) != 1+len(segs) {
		t.Fatalf("server saw %d observes (%v), want %d", len(order), order, 1+len(segs))
	}
	for i, seg := range segs {
		if order[1+i] != seg {
			t.Errorf("replay order[%d]=%s, want %s (full order %v)", i, order[1+i], seg, order)
		}
		if n := cs.recorder.Count(seg); n != 1 {
			t.Errorf("segment %s delivered %d times, want exactly once", seg, n)
		}
	}
	remote, err := cs.client.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if remote.Segments != 1+len(segs) {
		t.Errorf("server segments=%d after replay, want %d", remote.Segments, 1+len(segs))
	}

	// Post-recovery decisions are genuine again.
	v, err = f.CheckText("benign note", "docs")
	if err != nil {
		t.Fatal(err)
	}
	if v.Decision != policy.DecisionAllow || v.Degraded {
		t.Errorf("post-recovery check: %+v, want genuine allow", v)
	}

	// The outage left an audit trail: degraded entries and a recovery.
	var degraded, recovered int
	for _, e := range log.Entries() {
		switch e.Action {
		case audit.ActionDegraded:
			degraded++
		case audit.ActionRecovered:
			recovered++
		}
	}
	if degraded == 0 || recovered != 1 {
		t.Errorf("audit: degraded=%d recovered=%d", degraded, recovered)
	}
}

// Advisory mode fails OPEN: during an outage release checks are allowed but
// flagged degraded so the UI can warn.
func TestFailoverAdvisoryFailsOpen(t *testing.T) {
	cs := newChaosService(t, policy.ModeAdvisory)
	clk := newFakeClock()
	f := newFailover(t, cs, policy.ModeAdvisory, clk, nil)

	var events []DegradedEvent
	var mu sync.Mutex
	f.cfg.OnDegraded = func(e DegradedEvent) {
		mu.Lock()
		events = append(events, e)
		mu.Unlock()
	}

	cs.injector.AddRule(faultinject.Rule{Kind: faultinject.KindConnError})
	v, err := f.CheckText("anything at all", "docs")
	if err != nil {
		t.Fatal(err)
	}
	if v.Decision != policy.DecisionAllow || !v.Degraded {
		t.Fatalf("advisory degraded check: %+v, want degraded allow", v)
	}
	if len(v.Violating) != 0 {
		t.Errorf("advisory fail-open verdict carries violations: %v", v.Violating)
	}
	v, err = f.CheckUpload("wiki/x#p0", "docs")
	if err != nil {
		t.Fatal(err)
	}
	if v.Decision != policy.DecisionAllow || !v.Degraded {
		t.Fatalf("advisory degraded upload: %+v, want degraded allow", v)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(events) != 2 || events[0].Op != "check" || events[1].Op != "upload" {
		t.Errorf("events=%+v", events)
	}
}

// Enforcing and encrypting modes fail CLOSED for uploads during an outage.
func TestFailoverEncryptingFailsClosed(t *testing.T) {
	cs := newChaosService(t, policy.ModeEncrypting)
	clk := newFakeClock()
	f := newFailover(t, cs, policy.ModeEncrypting, clk, nil)
	cs.injector.AddRule(faultinject.Rule{Kind: faultinject.KindConnError})
	v, err := f.CheckUpload("wiki/x#p0", "docs")
	if err != nil {
		t.Fatal(err)
	}
	if v.Decision != policy.DecisionBlock || !v.Degraded {
		t.Fatalf("encrypting degraded upload: %+v, want degraded block", v)
	}
}

// A full replay queue rejects the newest observation (counted as dropped)
// rather than evicting older ones, preserving order and exactly-once
// delivery of everything that was accepted.
func TestFailoverQueueLimit(t *testing.T) {
	cs := newChaosService(t, policy.ModeEnforcing)
	clk := newFakeClock()
	breaker := resilience.NewBreaker(resilience.BreakerConfig{
		FailureThreshold: 1,
		Cooldown:         10 * time.Second,
		Now:              clk.Now,
	})
	f, err := NewFailoverEngine(FailoverConfig{
		Client: cs.client, Mode: policy.ModeEnforcing, Breaker: breaker, QueueLimit: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(f.Close)

	cs.injector.AddRule(faultinject.Rule{Kind: faultinject.KindConnError})
	segs := []segment.ID{"wiki/q1#p0", "wiki/q2#p0", "wiki/q3#p0"}
	for i, seg := range segs {
		if _, err := f.ObserveEdit(seg, "wiki", fmt.Sprintf("queued paragraph number %d", i)); err != nil {
			t.Fatal(err)
		}
	}
	stats := f.Stats()
	if stats.QueueLen != 2 || stats.Dropped != 1 {
		t.Fatalf("stats=%+v, want 2 queued / 1 dropped", stats)
	}

	cs.injector.ClearRules()
	clk.Advance(11 * time.Second)
	if err := f.Probe(context.Background()); err != nil {
		t.Fatal(err)
	}
	order := cs.recorder.Order()
	if len(order) != 2 || order[0] != segs[0] || order[1] != segs[1] {
		t.Errorf("replayed order=%v, want first two accepted segments", order)
	}
	if cs.recorder.Count(segs[2]) != 0 {
		t.Error("dropped observation was delivered")
	}
}

// A mid-drain relapse keeps the remainder queued and re-degrades; the next
// recovery finishes the job without duplicating anything.
func TestFailoverMidDrainRelapse(t *testing.T) {
	cs := newChaosService(t, policy.ModeEnforcing)
	clk := newFakeClock()
	f := newFailover(t, cs, policy.ModeEnforcing, clk, nil)

	cs.injector.AddRule(faultinject.Rule{Kind: faultinject.KindConnError})
	segs := []segment.ID{"wiki/r1#p0", "wiki/r2#p0", "wiki/r3#p0"}
	for i, seg := range segs {
		if _, err := f.ObserveEdit(seg, "wiki", fmt.Sprintf("relapse paragraph number %d", i)); err != nil {
			t.Fatal(err)
		}
	}
	// Breaker: 3 observe failures opened it.
	if got := f.Breaker().State(); got != resilience.StateOpen {
		t.Fatalf("breaker=%v, want open", got)
	}

	// Recovery that immediately relapses: /healthz answers but the first
	// replayed observe dies on the wire. The drain must stop, keep the
	// whole queue, and re-mark the engine degraded — never discard or
	// duplicate an undelivered item.
	cs.injector.ClearRules()
	cs.injector.AddRule(faultinject.Rule{
		PathPrefix: "/v1/observe", Kind: faultinject.KindConnError, Times: 1,
	})
	clk.Advance(11 * time.Second)
	if err := f.Probe(context.Background()); err != nil {
		t.Fatal(err)
	}
	stats := f.Stats()
	if stats.QueueLen != 3 || stats.Replayed != 0 {
		t.Fatalf("after relapse: stats=%+v, want 3 still queued / 0 replayed", stats)
	}

	// Second, clean recovery drains everything. The fault budget (Times: 1)
	// is spent; the breaker never re-opened (one failure < threshold), so a
	// plain probe triggers the drain immediately.
	if err := f.Probe(context.Background()); err != nil {
		t.Fatal(err)
	}
	stats = f.Stats()
	if stats.QueueLen != 0 || stats.Replayed != 3 {
		t.Fatalf("after second recovery: stats=%+v", stats)
	}
	for _, seg := range segs {
		if n := cs.recorder.Count(seg); n != 1 {
			t.Errorf("segment %s delivered %d times, want exactly once", seg, n)
		}
	}
	order := cs.recorder.Order()
	want := []segment.ID{segs[0], segs[1], segs[2]}
	if len(order) != len(want) {
		t.Fatalf("order=%v", order)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Errorf("order[%d]=%s, want %s", i, order[i], want[i])
		}
	}
}

// Acceptance criterion: no retry is ever issued for a non-idempotent
// request whose body was delivered upstream *unless the sender opted in
// with an Idempotency-Key* — asserted with the fault injector's delivery
// counter. (The tagserver Client does opt in — every mutation becomes an
// idempotent WAL record — so the keyless contract is pinned with a raw
// request here, and the opt-in behaviour in the test that follows.)
func TestNoRetryForDeliveredPost(t *testing.T) {
	srv, _ := newService(t)
	inj := faultinject.New(srv.Client().Transport, 1)
	inj.AddRule(faultinject.Rule{PathPrefix: "/v1/check", Kind: faultinject.KindResetAfterSend})
	rt := resilience.NewRetryTransport(inj, resilience.RetryPolicy{MaxAttempts: 4, Sleep: func(time.Duration) {}})
	httpc := &http.Client{Transport: rt}

	resp, err := httpc.Post(srv.URL+"/v1/check", "application/json",
		strings.NewReader(`{"device":"laptop","dest":"docs","hashes":[1,2,3]}`))
	if err == nil {
		resp.Body.Close()
		t.Fatal("expected error for reset-after-send")
	}
	if got := inj.Delivered("POST", "/v1/check"); got != 1 {
		t.Errorf("delivered=%d, want exactly 1 (no replay of a delivered keyless POST)", got)
	}
	if got := inj.Attempts("/v1/check"); got != 1 {
		t.Errorf("attempts=%d, want 1 — a delivered keyless POST must never be retried", got)
	}
}

// The Client marks its requests replay-safe with an Idempotency-Key, so
// an ambiguous failure (reset after delivery) IS retried and the call
// succeeds on the second attempt.
func TestClientPostsCarryIdempotencyKey(t *testing.T) {
	srv, _ := newService(t)
	inj := faultinject.New(srv.Client().Transport, 1)
	inj.AddRule(faultinject.Rule{PathPrefix: "/v1/check", Kind: faultinject.KindResetAfterSend, Times: 1})
	client, err := NewClient(srv.URL, "laptop", fpConfig(),
		WithTransport(inj),
		WithRetry(resilience.RetryPolicy{MaxAttempts: 4, Sleep: func(time.Duration) {}}),
	)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := client.Check("some text heading for the wire", "docs"); err != nil {
		t.Fatalf("check with idempotency key should survive one reset: %v", err)
	}
	if got := inj.Attempts("/v1/check"); got != 2 {
		t.Errorf("attempts=%d, want 2 (one reset + one successful retry)", got)
	}
}

// The inverse: a POST that provably never left the device IS retried, and
// the server still receives the body exactly once.
func TestRetryForUnsentPost(t *testing.T) {
	srv, _ := newService(t)
	inj := faultinject.New(srv.Client().Transport, 1)
	inj.AddRule(faultinject.Rule{PathPrefix: "/v1/check", Kind: faultinject.KindConnError, Times: 1})
	client, err := NewClient(srv.URL, "laptop", fpConfig(),
		WithTransport(inj),
		WithRetry(resilience.RetryPolicy{MaxAttempts: 4, Sleep: func(time.Duration) {}}),
	)
	if err != nil {
		t.Fatal(err)
	}
	v, err := client.Check("some text heading for the wire", "docs")
	if err != nil {
		t.Fatal(err)
	}
	if v.Decision != "allow" {
		t.Errorf("verdict=%+v", v)
	}
	if got := inj.Attempts("/v1/check"); got != 2 {
		t.Errorf("attempts=%d, want 2 (one failure, one retry)", got)
	}
	if got := inj.Delivered("POST", "/v1/check"); got != 1 {
		t.Errorf("delivered=%d, want exactly 1", got)
	}
}

// /healthz round-trips through the client, and a broken service is
// classified unavailable.
func TestHealthProbe(t *testing.T) {
	srv, _ := newService(t)
	client, err := NewClient(srv.URL, "laptop", fpConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := client.Health(context.Background()); err != nil {
		t.Fatalf("health against live service: %v", err)
	}

	dead := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "on fire", http.StatusInternalServerError)
	}))
	defer dead.Close()
	sick, err := NewClient(dead.URL, "laptop", fpConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := sick.Health(context.Background()); !IsUnavailable(err) {
		t.Errorf("health against 500 service: err=%v, want unavailable", err)
	}
}

// Stats (and every other call) must inspect the status code: a 5xx is an
// unavailability error, a 4xx a plain error — never silently decoded.
func TestStatusClassification(t *testing.T) {
	var status int
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "nope", status)
	}))
	defer srv.Close()
	client, err := NewClient(srv.URL, "laptop", fpConfig())
	if err != nil {
		t.Fatal(err)
	}

	status = http.StatusServiceUnavailable
	if _, err := client.Stats(); !IsUnavailable(err) {
		t.Errorf("stats with 503: err=%v, want unavailable", err)
	}
	status = http.StatusForbidden
	_, err = client.Stats()
	if err == nil {
		t.Fatal("stats with 403 succeeded")
	}
	if IsUnavailable(err) {
		t.Errorf("4xx misclassified as unavailability: %v", err)
	}
	if !strings.Contains(err.Error(), "403") {
		t.Errorf("status missing from error: %v", err)
	}
}

// A truncated or malformed response body is unavailability, not a verdict.
func TestMalformedResponseIsUnavailable(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, `{"decision": "allo`) //nolint:errcheck
	}))
	defer srv.Close()
	client, err := NewClient(srv.URL, "laptop", fpConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := client.Check("text heading for the wire", "docs"); !IsUnavailable(err) {
		t.Errorf("err=%v, want unavailable", err)
	}
}

// The server bounds request bodies: anything past the limit is rejected
// with 413 before it reaches the decision engine.
func TestServerBodyLimit(t *testing.T) {
	_, engine := newService(t)
	server, err := NewServer(engine, WithMaxBodyBytes(256))
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(server)
	defer srv.Close()

	big := fmt.Sprintf(`{"device":"d","service":"wiki","seg":"s#p0","hashes":[%s1]}`,
		strings.Repeat("1,", 4096))
	resp, err := http.Post(srv.URL+"/v1/observe", "application/json", strings.NewReader(big))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Errorf("oversized body status=%d, want 413", resp.StatusCode)
	}

	small := `{"device":"d","service":"wiki","seg":"s#p0","hashes":[1,2,3]}`
	resp, err = http.Post(srv.URL+"/v1/observe", "application/json", strings.NewReader(small))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("small body status=%d", resp.StatusCode)
	}
}

// The client never ships without a timeout unless explicitly disabled.
func TestClientDefaultTimeout(t *testing.T) {
	client, err := NewClient("http://tags.example", "laptop", fpConfig())
	if err != nil {
		t.Fatal(err)
	}
	if client.http.Timeout != DefaultClientTimeout {
		t.Errorf("default timeout=%v, want %v", client.http.Timeout, DefaultClientTimeout)
	}
	client, err = NewClient("http://tags.example", "laptop", fpConfig(), WithTimeout(time.Second))
	if err != nil {
		t.Fatal(err)
	}
	if client.http.Timeout != time.Second {
		t.Errorf("timeout=%v after WithTimeout", client.http.Timeout)
	}
}

// Caller context cancellation aborts a remote call promptly.
func TestClientContextCancel(t *testing.T) {
	blocked := make(chan struct{})
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		<-blocked
	}))
	defer srv.Close()
	defer close(blocked)
	client, err := NewClient(srv.URL, "laptop", fpConfig())
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	start := time.Now()
	if _, err := client.CheckCtx(ctx, "text heading for the wire", "docs"); err == nil {
		t.Fatal("expected context error")
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Errorf("cancellation took %v", elapsed)
	}
}

func TestFailoverConfigValidation(t *testing.T) {
	if _, err := NewFailoverEngine(FailoverConfig{}); err == nil {
		t.Error("nil client accepted")
	}
	client, err := NewClient("http://x", "d", fpConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewFailoverEngine(FailoverConfig{Client: client, Mode: policy.Mode(99)}); err == nil {
		t.Error("invalid mode accepted")
	}
}

// The background prober recovers a degraded engine without manual Probe
// calls.
func TestFailoverBackgroundProber(t *testing.T) {
	cs := newChaosService(t, policy.ModeEnforcing)
	breaker := resilience.NewBreaker(resilience.BreakerConfig{
		FailureThreshold: 1,
		Cooldown:         time.Millisecond,
	})
	f, err := NewFailoverEngine(FailoverConfig{
		Client:        cs.client,
		Mode:          policy.ModeEnforcing,
		Breaker:       breaker,
		ProbeInterval: 2 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	cs.injector.AddRule(faultinject.Rule{Kind: faultinject.KindConnError})
	if _, err := f.ObserveEdit("wiki/bg#p0", "wiki", "background prober paragraph"); err != nil {
		t.Fatal(err)
	}
	if f.Stats().QueueLen != 1 {
		t.Fatalf("stats=%+v", f.Stats())
	}
	cs.injector.ClearRules()

	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if s := f.Stats(); s.QueueLen == 0 && s.Replayed == 1 {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("background prober never drained the queue: stats=%+v", f.Stats())
}

// Race-hammer: concurrent edits and checks while the service flaps. Run
// under -race; the invariant checked at the end is exactly-once delivery of
// every accepted observation.
func TestFailoverConcurrentChaos(t *testing.T) {
	cs := newChaosService(t, policy.ModeEnforcing)
	breaker := resilience.NewBreaker(resilience.BreakerConfig{
		FailureThreshold: 2,
		Cooldown:         time.Millisecond,
	})
	f, err := NewFailoverEngine(FailoverConfig{
		Client:  cs.client,
		Mode:    policy.ModeEnforcing,
		Breaker: breaker,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	// Probabilistic connection failures on every endpoint.
	cs.injector.AddRule(faultinject.Rule{Kind: faultinject.KindConnError, P: 0.3})

	const workers, perWorker = 8, 25
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				seg := segment.ID(fmt.Sprintf("wiki/w%d#p%d", w, i))
				if _, err := f.ObserveEdit(seg, "wiki", fmt.Sprintf("concurrent paragraph %d from worker %d", i, w)); err != nil {
					t.Errorf("observe: %v", err)
					return
				}
				if i%5 == 0 {
					if _, err := f.CheckText("benign concurrent note", "docs"); err != nil {
						t.Errorf("check: %v", err)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()

	// Heal the service and drain whatever is still queued.
	cs.injector.ClearRules()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) && f.Stats().QueueLen > 0 {
		_ = f.Probe(context.Background())
		_, _ = f.CheckText("drain trigger", "docs")
		time.Sleep(2 * time.Millisecond)
	}

	stats := f.Stats()
	if stats.QueueLen != 0 {
		t.Fatalf("queue never drained: stats=%+v", stats)
	}
	// Exactly-once: every segment the server received arrived exactly once,
	// and direct+replayed deliveries account for every observation (none
	// were dropped: the default queue bound far exceeds the workload).
	if stats.Dropped != 0 {
		t.Fatalf("observations dropped under default queue limit: %+v", stats)
	}
	total := 0
	for w := 0; w < workers; w++ {
		for i := 0; i < perWorker; i++ {
			seg := segment.ID(fmt.Sprintf("wiki/w%d#p%d", w, i))
			n := cs.recorder.Count(seg)
			if n != 1 {
				t.Errorf("segment %s delivered %d times, want exactly once", seg, n)
			}
			total += n
		}
	}
	if total != workers*perWorker {
		t.Errorf("server saw %d observations, want %d", total, workers*perWorker)
	}
}
