package tagserver

import (
	"errors"
	"net/http/httptest"
	"testing"

	"github.com/lsds/browserflow/internal/browser"
	"github.com/lsds/browserflow/internal/intercept"
	"github.com/lsds/browserflow/internal/policy"
	"github.com/lsds/browserflow/internal/webapp"
)

var _ intercept.Engine = (*RemoteEngine)(nil)

// Two devices, each running the full browser plug-in against the shared
// tag service: Alice's device observes the wiki; Bob's device — which
// never saw the wiki — gets his paste into docs blocked.
func TestPluginAgainstRemoteEngineCrossDevice(t *testing.T) {
	tagSrv, _ := newService(t)

	// The simulated cloud services (shared by both users).
	apps := webapp.NewServer()
	apps.SeedWikiPage("schedule", orgSecret)
	apps.SeedDoc("vendor", "Benign starter paragraph.")
	appSrv := httptest.NewServer(apps)
	t.Cleanup(appSrv.Close)

	newDevice := func(name string) (*browser.Browser, *intercept.Plugin) {
		t.Helper()
		client, err := NewClient(tagSrv.URL, name, fpConfig())
		if err != nil {
			t.Fatal(err)
		}
		plugin, err := intercept.New(intercept.Config{
			Engine: NewRemoteEngine(client, policy.ModeEnforcing),
			User:   name,
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(plugin.Shutdown)
		b := browser.New()
		plugin.AttachToBrowser(b)
		return b, plugin
	}

	// Alice opens the wiki: her plug-in registers the text remotely.
	aliceBrowser, alicePlugin := newDevice("alice-laptop")
	aliceTab, err := aliceBrowser.OpenTab(appSrv.URL + "/wiki/schedule")
	if err != nil {
		t.Fatal(err)
	}
	alicePlugin.Flush()

	// Bob opens only the docs page on his own device and pastes the text
	// (say, received out of band) — the shared service recognises it.
	bobBrowser, bobPlugin := newDevice("bob-laptop")
	docsTab, err := bobBrowser.OpenTab(appSrv.URL + "/docs/vendor")
	if err != nil {
		t.Fatal(err)
	}
	bobPlugin.Flush()
	ed, err := webapp.AttachDocsEditor(docsTab)
	if err != nil {
		t.Fatal(err)
	}
	bobBrowser.SetClipboard(aliceTab.Document().Root().ByID("par-0").InnerText())
	err = ed.PasteAppend()
	if !errors.Is(err, browser.ErrBlocked) {
		t.Fatalf("cross-device paste: err=%v, want ErrBlocked", err)
	}
	if got := apps.Doc("vendor"); len(got) != 1 {
		t.Errorf("blocked paste reached backend: %v", got)
	}
}

func TestRemoteEngineVerdictMapping(t *testing.T) {
	srv, _ := newService(t)
	client, err := NewClient(srv.URL, "dev", fpConfig())
	if err != nil {
		t.Fatal(err)
	}
	re := NewRemoteEngine(client, policy.ModeEnforcing)
	if re.Mode() != policy.ModeEnforcing {
		t.Error("mode lost")
	}
	v, err := re.ObserveEdit("wiki/x#p0", "wiki", orgSecret)
	if err != nil {
		t.Fatal(err)
	}
	if v.Decision != policy.DecisionAllow || v.Seg != "wiki/x#p0" {
		t.Errorf("verdict=%+v", v)
	}
	v, err = re.CheckText(orgSecret, "docs")
	if err != nil {
		t.Fatal(err)
	}
	if v.Decision != policy.DecisionBlock || len(v.Sources) == 0 {
		t.Errorf("check verdict=%+v", v)
	}
	// Document granularity round trip.
	v, err = re.ObserveDocumentEdit("wiki/x", "wiki", orgSecret)
	if err != nil {
		t.Fatal(err)
	}
	if v.Decision != policy.DecisionAllow {
		t.Errorf("doc verdict=%+v", v)
	}
	// Errors propagate.
	if _, err := re.CheckText(orgSecret, "ghost"); err == nil {
		t.Error("unknown dest accepted")
	}
}

func TestParseDecision(t *testing.T) {
	for s, want := range map[string]policy.Decision{
		"allow": policy.DecisionAllow, "warn": policy.DecisionWarn,
		"block": policy.DecisionBlock, "encrypt": policy.DecisionEncrypt,
	} {
		got, err := policy.ParseDecision(s)
		if err != nil || got != want {
			t.Errorf("ParseDecision(%q)=%v,%v", s, got, err)
		}
	}
	if _, err := policy.ParseDecision("yolo"); err == nil {
		t.Error("bad decision accepted")
	}
}
