package tagserver

import (
	"context"

	"github.com/lsds/browserflow/internal/disclosure"
	"github.com/lsds/browserflow/internal/fingerprint"
	"github.com/lsds/browserflow/internal/policy"
	"github.com/lsds/browserflow/internal/segment"
)

// RemoteEngine adapts a Client to the plug-in's Engine interface, so a
// device's BrowserFlow plug-in makes its decisions against the shared
// enterprise tag service instead of a device-local database. Text is
// fingerprinted on the device; only hashes cross the wire.
type RemoteEngine struct {
	client *Client
	mode   policy.Mode
}

// NewRemoteEngine wraps client. The mode is advisory/enforcing/encrypting
// exactly like a local engine; the server decides violations, the mode
// string in its verdicts reflects the *server's* configuration, which this
// adapter translates faithfully.
func NewRemoteEngine(client *Client, mode policy.Mode) *RemoteEngine {
	return &RemoteEngine{client: client, mode: mode}
}

// Mode reports the enforcement mode.
func (r *RemoteEngine) Mode() policy.Mode { return r.mode }

// ObserveEdit records a paragraph edit with the shared service.
func (r *RemoteEngine) ObserveEdit(seg segment.ID, service, text string) (policy.Verdict, error) {
	fp, err := fingerprint.Compute(text, r.client.cfg)
	if err != nil {
		return policy.Verdict{}, err
	}
	v, err := r.client.ObserveHashes(context.Background(), service, seg, fp.Hashes(), "")
	if err != nil {
		return policy.Verdict{}, err
	}
	return toPolicyVerdict(v, seg, service)
}

// ObserveDocumentEdit records a whole-page observation with the shared
// service.
func (r *RemoteEngine) ObserveDocumentEdit(doc segment.ID, service, text string) (policy.Verdict, error) {
	fp, err := fingerprint.Compute(text, r.client.cfg)
	if err != nil {
		return policy.Verdict{}, err
	}
	v, err := r.client.ObserveHashes(context.Background(), service, doc, fp.Hashes(), "document")
	if err != nil {
		return policy.Verdict{}, err
	}
	return toPolicyVerdict(v, doc, service)
}

// CheckText evaluates ad-hoc text against a destination service.
func (r *RemoteEngine) CheckText(text, destService string) (policy.Verdict, error) {
	v, err := r.client.Check(text, destService)
	if err != nil {
		return policy.Verdict{}, err
	}
	return toPolicyVerdict(v, "", destService)
}

func toPolicyVerdict(v Verdict, seg segment.ID, service string) (policy.Verdict, error) {
	decision, err := policy.ParseDecision(v.Decision)
	if err != nil {
		return policy.Verdict{}, err
	}
	out := policy.Verdict{
		Decision:  decision,
		Seg:       seg,
		Service:   service,
		Violating: v.Violating,
	}
	for _, src := range v.Sources {
		out.Sources = append(out.Sources, disclosure.Source{Seg: src.Seg, Disclosure: src.Disclosure})
	}
	return out, nil
}
