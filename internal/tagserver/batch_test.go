package tagserver

// Tests for the /v1/observe/batch endpoint and its client support: the
// batched flush must validate like the singular endpoint, return one
// verdict per item in request order, count every item in the observe
// metrics, and — the defining property — produce exactly the verdicts the
// equivalent singular call sequence would.

import (
	"context"
	"io"
	"net/http"
	"reflect"
	"strings"
	"testing"

	"github.com/lsds/browserflow/internal/fingerprint"
)

const batchSecret = "The acquisition shortlist names three candidate companies and the planned offer range for each."

// TestBatchObserveRoundTrip drives Client.ObserveBatch end to end: mixed
// paragraph/document items, per-item verdicts in order, and cross-device
// recognition of batched content.
func TestBatchObserveRoundTrip(t *testing.T) {
	srv, _ := newService(t)
	dev, err := NewClient(srv.URL, "laptop", fpConfig())
	if err != nil {
		t.Fatal(err)
	}

	items := []BatchItem{
		{Seg: "wiki/plan#p0", Text: batchSecret},
		{Seg: "wiki/plan#p1", Text: batchSecret}, // same text: discloses from p0
		{Seg: "wiki/plan", Text: batchSecret, Granularity: "document"},
		{Seg: "wiki/plan#p0", Text: batchSecret}, // unchanged re-observation (cache hit path)
	}
	verdicts, err := dev.ObserveBatch("wiki", items)
	if err != nil {
		t.Fatal(err)
	}
	if len(verdicts) != len(items) {
		t.Fatalf("got %d verdicts for %d items", len(verdicts), len(items))
	}
	for i, v := range verdicts {
		if v.Decision != "allow" {
			t.Errorf("item %d: verdict=%+v, want allow (wiki is cleared for its own tag)", i, v)
		}
	}
	if len(verdicts[1].Sources) == 0 || verdicts[1].Sources[0].Seg != "wiki/plan#p0" {
		t.Errorf("duplicate paragraph should disclose from p0, sources=%+v", verdicts[1].Sources)
	}

	// Content batched from one device is recognised when another device
	// checks it — the batch path feeds the same shared tracker.
	other, err := NewClient(srv.URL, "laptop-2", fpConfig())
	if err != nil {
		t.Fatal(err)
	}
	v, err := other.Check(batchSecret, "docs")
	if err != nil {
		t.Fatal(err)
	}
	if v.Decision != "block" || !v.Violation() {
		t.Fatalf("cross-device check after batch = %+v, want block", v)
	}
}

// TestBatchMatchesSingularVerdicts pins the batch endpoint to the exact
// verdict sequence of the equivalent one-at-a-time Observe calls against
// an identically configured service.
func TestBatchMatchesSingularVerdicts(t *testing.T) {
	batchSrv, _ := newService(t)
	singleSrv, _ := newService(t)
	batchDev, err := NewClient(batchSrv.URL, "laptop", fpConfig())
	if err != nil {
		t.Fatal(err)
	}
	singleDev, err := NewClient(singleSrv.URL, "laptop", fpConfig())
	if err != nil {
		t.Fatal(err)
	}

	items := []BatchItem{
		{Seg: "wiki/a#p0", Text: batchSecret},
		{Seg: "wiki/a#p1", Text: batchSecret + " One extra closing sentence pushes this revision past the original."},
		{Seg: "wiki/a", Text: batchSecret, Granularity: "document"},
		{Seg: "wiki/a#p0", Text: batchSecret}, // repeat → cache hit
		{Seg: "wiki/b#p0", Text: strings.Repeat("Unrelated prose about lighthouse maintenance schedules on the coast. ", 3)},
	}
	got, err := batchDev.ObserveBatch("wiki", items)
	if err != nil {
		t.Fatal(err)
	}
	want := make([]Verdict, 0, len(items))
	for _, item := range items {
		fp, err := fingerprint.Compute(item.Text, singleDev.FingerprintConfig())
		if err != nil {
			t.Fatal(err)
		}
		v, err := singleDev.ObserveHashes(context.Background(), "wiki", item.Seg, fp.Hashes(), item.Granularity)
		if err != nil {
			t.Fatal(err)
		}
		want = append(want, v)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("batch diverged from singular sequence:\nbatch:    %+v\nsingular: %+v", got, want)
	}
}

// TestBatchObserveValidation exercises the server-side request checks.
func TestBatchObserveValidation(t *testing.T) {
	srv, _ := newService(t)
	client := srv.Client()
	post := func(body string) int {
		t.Helper()
		resp, err := client.Post(srv.URL+"/v1/observe/batch", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return resp.StatusCode
	}

	// Wrong method.
	resp, err := client.Get(srv.URL + "/v1/observe/batch")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET status=%d, want 405", resp.StatusCode)
	}

	cases := []struct {
		name string
		body string
	}{
		{"malformed json", "{"},
		{"missing service", `{"device":"d","items":[{"seg":"a#p0","hashes":[1]}]}`},
		{"empty items", `{"device":"d","service":"wiki","items":[]}`},
		{"item missing seg", `{"device":"d","service":"wiki","items":[{"hashes":[1]}]}`},
		{"bad granularity", `{"device":"d","service":"wiki","items":[{"seg":"a#p0","hashes":[1],"granularity":"sentence"}]}`},
		{"unknown service", `{"device":"d","service":"ghost","items":[{"seg":"a#p0","hashes":[1]}]}`},
	}
	for _, tc := range cases {
		if code := post(tc.body); code != http.StatusBadRequest {
			t.Errorf("%s: status=%d, want 400", tc.name, code)
		}
	}

	// A rejected batch must not register any of its items.
	dev, err := NewClient(srv.URL, "laptop", fpConfig())
	if err != nil {
		t.Fatal(err)
	}
	stats, err := dev.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if stats.Segments != 0 {
		t.Errorf("rejected batches registered %d segments", stats.Segments)
	}
}

// TestBatchObserveMetrics asserts that a flush of N items advances the
// observe counter by N, exactly as N singular calls would.
func TestBatchObserveMetrics(t *testing.T) {
	srv, _ := newService(t)
	dev, err := NewClient(srv.URL, "laptop", fpConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := dev.ObserveBatch("wiki", []BatchItem{
		{Seg: "wiki/m#p0", Text: batchSecret},
		{Seg: "wiki/m#p1", Text: batchSecret + " More."},
		{Seg: "wiki/m#p2", Text: batchSecret + " Even more."},
	}); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(body), "browserflow_observes_total 3") {
		t.Errorf("metrics should count 3 batched observes:\n%s", body)
	}
}

// TestBatchUnavailableClassification asserts that transport-level failures
// of the batch path are classified as UnavailableError so the failover
// layer treats them as outages, while 4xx rejections are not.
func TestBatchUnavailableClassification(t *testing.T) {
	down, err := NewClient("http://127.0.0.1:1", "laptop", fpConfig())
	if err != nil {
		t.Fatal(err)
	}
	_, err = down.ObserveBatch("wiki", []BatchItem{{Seg: "a#p0", Text: batchSecret}})
	if err == nil || !IsUnavailable(err) {
		t.Errorf("transport failure not classified unavailable: %v", err)
	}

	srv, _ := newService(t)
	dev, err := NewClient(srv.URL, "laptop", fpConfig())
	if err != nil {
		t.Fatal(err)
	}
	_, err = dev.ObserveBatch("ghost", []BatchItem{{Seg: "a#p0", Text: batchSecret}})
	if err == nil || IsUnavailable(err) {
		t.Errorf("application rejection misclassified: %v", err)
	}
}
