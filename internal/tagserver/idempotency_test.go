package tagserver

import (
	"bytes"
	"encoding/json"
	"net/http/httptest"
	"testing"
	"time"

	"github.com/lsds/browserflow/internal/audit"
	"github.com/lsds/browserflow/internal/disclosure"
	"github.com/lsds/browserflow/internal/faultinject"
	"github.com/lsds/browserflow/internal/policy"
	"github.com/lsds/browserflow/internal/resilience"
	"github.com/lsds/browserflow/internal/store"
	"github.com/lsds/browserflow/internal/tdm"
)

// newIdemWorld builds an engine stack with a fixed audit clock so state
// exports compare byte-for-byte.
func newIdemWorld(t *testing.T) (*policy.Engine, *disclosure.Tracker, *tdm.Registry) {
	t.Helper()
	tracker, err := disclosure.NewTracker(disclosure.Params{
		Fingerprint: fpConfig(),
		Tpar:        0.3,
		Tdoc:        0.3,
	})
	if err != nil {
		t.Fatal(err)
	}
	clock := func() time.Time { return time.Date(2026, 1, 2, 3, 4, 5, 0, time.UTC) }
	registry := tdm.NewRegistry(audit.NewLogWithClock(clock))
	if err := registry.RegisterService("docs", tdm.NewTagSet("confidential"), tdm.NewTagSet("confidential")); err != nil {
		t.Fatal(err)
	}
	engine, err := policy.NewEngine(tracker, registry, policy.ModeAdvisory)
	if err != nil {
		t.Fatal(err)
	}
	return engine, tracker, registry
}

func idemExport(t *testing.T, tracker *disclosure.Tracker, registry *tdm.Registry) []byte {
	t.Helper()
	snap := store.Capture(tracker, registry)
	snap.SavedAt = time.Time{}
	data, err := json.Marshal(snap)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// TestObserveBatchRetryIsIdempotent is the cardinal write-retry safety
// property of the replicated deployment: an ObserveBatch whose first
// delivery is acknowledged by the server but whose response is lost (a
// reset after delivery — the ambiguous failure) is retried by the
// client because the request carries an Idempotency-Key, the server
// applies it a second time, and the final state is byte-identical to a
// single application. Without this property, primary failover would
// risk double-counting disclosure on every in-flight flush.
func TestObserveBatchRetryIsIdempotent(t *testing.T) {
	// The service under test, with a flaky path in front of it.
	engine, tracker, registry := newIdemWorld(t)
	server, err := NewServer(engine)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(server)
	defer srv.Close()

	inj := faultinject.New(srv.Client().Transport, 1)
	inj.AddRule(faultinject.Rule{
		PathPrefix: "/v1/observe/batch",
		Kind:       faultinject.KindResetAfterSend,
		Times:      1,
	})
	client, err := NewClient(srv.URL, "laptop", fpConfig(),
		WithTransport(inj),
		WithRetry(resilience.RetryPolicy{MaxAttempts: 3, Sleep: func(time.Duration) {}}),
	)
	if err != nil {
		t.Fatal(err)
	}

	items := []BatchItem{
		{Seg: "docs/plan#p0", Text: "the quarterly revenue forecast was revised downwards on friday"},
		{Seg: "docs/plan#p1", Text: "launch codes and rollout schedule for the atlas project"},
		{Seg: "docs/plan#p2", Text: "meeting notes from the security review of the billing system"},
	}
	verdicts, err := client.ObserveBatch("docs", items)
	if err != nil {
		t.Fatalf("batch should survive one reset-after-delivery: %v", err)
	}
	if len(verdicts) != len(items) {
		t.Fatalf("got %d verdicts, want %d", len(verdicts), len(items))
	}

	// The ambiguous failure really did deliver the body twice.
	if got := inj.Delivered("POST", "/v1/observe/batch"); got != 2 {
		t.Fatalf("delivered=%d, want 2 (first delivery acked, response lost, retried)", got)
	}

	// Control: the same batch applied exactly once.
	controlEngine, controlTracker, controlRegistry := newIdemWorld(t)
	controlSrv := httptest.NewServer(mustServer(t, controlEngine))
	defer controlSrv.Close()
	controlClient, err := NewClient(controlSrv.URL, "laptop", fpConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := controlClient.ObserveBatch("docs", items); err != nil {
		t.Fatal(err)
	}

	got := idemExport(t, tracker, registry)
	want := idemExport(t, controlTracker, controlRegistry)
	if !bytes.Equal(got, want) {
		t.Fatalf("double-delivered batch diverged from single application\n double: %s\n single: %s", got, want)
	}
}

func mustServer(t *testing.T, engine *policy.Engine) *Server {
	t.Helper()
	s, err := NewServer(engine)
	if err != nil {
		t.Fatal(err)
	}
	return s
}
