// Package tagserver provides the shared enterprise tag service: a central
// HTTP endpoint holding the fingerprint databases and TDM labels for a
// whole organisation, so that text observed on one employee's device is
// recognised when it surfaces on another's.
//
// Devices keep text local and ship *fingerprint hashes only* — the same
// privacy posture the paper recommends for fingerprint data at rest
// (§4.4). The protocol mirrors the plug-in's decision points:
//
//	POST /v1/observe        {device, service, seg, hashes}     -> verdict
//	POST /v1/observe/batch  {device, service, items:[...]}     -> verdicts
//	POST /v1/check     {device, dest, hashes}              -> verdict
//	POST /v1/upload    {device, seg, dest}                 -> verdict
//	POST /v1/suppress  {user, seg, tag, justification}     -> ok
//	GET  /v1/label?seg=...                                 -> label
//	GET  /v1/stats                                         -> sizes
//	GET  /healthz                                          -> liveness
package tagserver

import (
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
	"strconv"
	"sync/atomic"
	"time"

	"github.com/lsds/browserflow/internal/admission"
	"github.com/lsds/browserflow/internal/disclosure"
	"github.com/lsds/browserflow/internal/fingerprint"
	"github.com/lsds/browserflow/internal/obs"
	"github.com/lsds/browserflow/internal/policy"
	"github.com/lsds/browserflow/internal/segment"
	"github.com/lsds/browserflow/internal/store"
	"github.com/lsds/browserflow/internal/tdm"
)

// ObserveRequest records an observation from a device.
type ObserveRequest struct {
	Device  string     `json:"device"`
	Service string     `json:"service"`
	Seg     segment.ID `json:"seg"`
	Hashes  []uint32   `json:"hashes"`

	// Granularity is "paragraph" (default) or "document".
	Granularity string `json:"granularity,omitempty"`
}

// BatchObserveItem is one observation inside a batched flush.
type BatchObserveItem struct {
	Seg    segment.ID `json:"seg"`
	Hashes []uint32   `json:"hashes"`

	// Granularity is "paragraph" (default) or "document".
	Granularity string `json:"granularity,omitempty"`
}

// BatchObserveRequest records a flush of coalesced observations from a
// device — how a real browser extension ships DOM mutations: buffered and
// flushed together rather than one request per keystroke.
type BatchObserveRequest struct {
	Device  string             `json:"device"`
	Service string             `json:"service"`
	Items   []BatchObserveItem `json:"items"`
}

// BatchObserveResponse carries one verdict per request item, in order.
type BatchObserveResponse struct {
	Verdicts []VerdictResponse `json:"verdicts"`
}

// CheckRequest asks whether content may be released to a destination.
type CheckRequest struct {
	Device string   `json:"device"`
	Dest   string   `json:"dest"`
	Hashes []uint32 `json:"hashes"`
}

// UploadRequest asks whether a tracked segment may be released.
type UploadRequest struct {
	Device string     `json:"device"`
	Seg    segment.ID `json:"seg"`
	Dest   string     `json:"dest"`
}

// SuppressRequest declassifies a tag on a segment.
type SuppressRequest struct {
	User          string     `json:"user"`
	Seg           segment.ID `json:"seg"`
	Tag           tdm.Tag    `json:"tag"`
	Justification string     `json:"justification"`
}

// VerdictResponse is the wire form of a policy verdict.
type VerdictResponse struct {
	Decision  string     `json:"decision"`
	Violating []tdm.Tag  `json:"violating,omitempty"`
	Sources   []SourceDT `json:"sources,omitempty"`
}

// SourceDT is one disclosure source on the wire.
type SourceDT struct {
	Seg        segment.ID `json:"seg"`
	Disclosure float64    `json:"disclosure"`
}

// LabelResponse is the wire form of a segment label.
type LabelResponse struct {
	Explicit   []tdm.Tag `json:"explicit"`
	Implicit   []tdm.Tag `json:"implicit"`
	Suppressed []tdm.Tag `json:"suppressed"`
}

// StatsResponse reports database sizes.
type StatsResponse struct {
	Segments       int `json:"segments"`
	DistinctHashes int `json:"distinctHashes"`
	AuditEntries   int `json:"auditEntries"`
}

// HealthResponse is the wire form of the /healthz liveness probe. Clients
// (and the failover layer's half-open trials) use it to decide whether the
// service has recovered.
type HealthResponse struct {
	Status   string `json:"status"`
	Uptime   string `json:"uptime"`
	Segments int    `json:"segments"`

	// Durability summarises the WAL + checkpoint subsystem; nil when the
	// server runs without a durability layer.
	Durability *HealthDurability `json:"durability,omitempty"`

	// Replication summarises the node's cluster role; nil when the server
	// runs standalone.
	Replication *HealthReplication `json:"replication,omitempty"`

	// Admission summarises the ingest admission pipeline; nil when the
	// server runs without one. It is served from a side path (no queueing),
	// so it stays live while the ingest lanes are shedding.
	Admission *HealthAdmission `json:"admission,omitempty"`

	// Storage summarises the self-healing storage layer — scrub freshness,
	// quarantine inventory and disk degradation; nil without a durability
	// layer.
	Storage *HealthStorage `json:"storage,omitempty"`

	// Partition summarises the node's place in the cluster ring; nil on an
	// unpartitioned node.
	Partition *HealthPartition `json:"partition,omitempty"`

	// Policy identifies the compiled policy the node enforces; nil when
	// the server was started without a policy file.
	Policy *HealthPolicy `json:"policy,omitempty"`
}

// HealthPolicy is the /healthz view of the loaded policy: the compile
// fingerprint lets operators confirm every node in a fleet enforces the
// same rules without shipping the policy body over the probe.
type HealthPolicy struct {
	Hash     string `json:"hash"`
	Services int    `json:"services,omitempty"`
}

// HealthStorage is the /healthz view of the self-healing storage layer.
// Monitoring alerts on LastScrubAge going stale, QuarantinedFiles > 0 and
// DiskDegraded; the rest contextualises those.
type HealthStorage struct {
	ScrubPasses      int64  `json:"scrubPasses"`
	LastScrubAge     string `json:"lastScrubAge,omitempty"`
	FramesVerified   int64  `json:"framesVerified"`
	CorruptionsFound int64  `json:"corruptionsFound"`
	Quarantines      int64  `json:"quarantines"`
	QuarantinedFiles int    `json:"quarantinedFiles"`
	LastCorruption   string `json:"lastCorruption,omitempty"`
	DiskDegraded     bool   `json:"diskDegraded"`
	DegradedCause    string `json:"degradedCause,omitempty"`
	FailOpen         bool   `json:"failOpen"`
	DroppedRecords   int64  `json:"droppedRecords"`
	DiskRecoveries   int64  `json:"diskRecoveries"`
}

// HealthAdmission is the /healthz view of the admission pipeline.
type HealthAdmission struct {
	Draining    bool                `json:"draining"`
	Folds       uint64              `json:"folds"`
	Interactive HealthAdmissionLane `json:"interactive"`
	Bulk        HealthAdmissionLane `json:"bulk"`
}

// HealthAdmissionLane is one lane's live state.
type HealthAdmissionLane struct {
	Depth         int    `json:"depth"`
	Cap           int    `json:"cap"`
	Submitted     uint64 `json:"submitted"`
	Executed      uint64 `json:"executed"`
	Shed          uint64 `json:"shed"`
	DeadlineDrops uint64 `json:"deadlineDrops"`
}

// HealthReplication is the /healthz view of the replication subsystem:
// the node's role and fencing term, and — on replicas — how far behind
// the primary it is, so callers can bound read staleness.
type HealthReplication struct {
	Role           string `json:"role"`
	Term           uint64 `json:"term"`
	Primary        string `json:"primary,omitempty"`
	Position       string `json:"position,omitempty"`
	LagRecords     int64  `json:"lag_records"`
	LagBytes       int64  `json:"lag_bytes"`
	AppliedRecords int64  `json:"appliedRecords,omitempty"`
	Bootstraps     int64  `json:"bootstraps,omitempty"`
	Connected      bool   `json:"connected"`
	LastError      string `json:"lastError,omitempty"`
}

// HealthDurability is the /healthz view of the durability subsystem.
type HealthDurability struct {
	WALRecords        int64  `json:"walRecords"`
	WALSegments       int    `json:"walSegments"`
	Fsyncs            int64  `json:"fsyncs"`
	Checkpoints       int64  `json:"checkpoints"`
	CheckpointErrors  int64  `json:"checkpointErrors"`
	LastCheckpointAge string `json:"lastCheckpointAge,omitempty"`
	RecordsReplayed   int64  `json:"recordsReplayed"`
	CheckpointLoaded  string `json:"checkpointLoaded,omitempty"`
}

// DefaultMaxBodyBytes bounds request bodies accepted by the service
// (overridable with WithMaxBodyBytes). Fingerprint hash lists are small;
// anything past this is hostile or broken.
const DefaultMaxBodyBytes = 1 << 20

// ServerOption customises a Server.
type ServerOption func(*Server)

// WithMaxBodyBytes overrides the request-body size limit. Requests larger
// than n bytes are rejected with 413.
func WithMaxBodyBytes(n int64) ServerOption {
	return func(s *Server) {
		if n > 0 {
			s.maxBody = n
		}
	}
}

// WithDurabilityStats exposes the durability subsystem's statistics on
// /metrics (Prometheus gauges/counters) and /healthz. Pass
// (*store.Durable).Stats.
func WithDurabilityStats(fn func() store.DurabilityStats) ServerOption {
	return WithDurabilitySource(func() (store.DurabilityStats, bool) { return fn(), true })
}

// WithDurabilitySource is WithDurabilityStats for nodes whose durability
// layer appears at runtime (a replica opens its journal only when
// promoted): the source reports ok=false until stats exist.
func WithDurabilitySource(fn func() (store.DurabilityStats, bool)) ServerOption {
	return func(s *Server) { s.durability = fn }
}

// WithReplicationStatus exposes the node's replication role, term and
// lag on /healthz and /metrics. The callback is invoked per request, so
// it may reflect a live promotion.
func WithReplicationStatus(fn func() HealthReplication) ServerOption {
	return func(s *Server) { s.replication = fn }
}

// WithAdmission routes /v1/observe and /v1/observe/batch through an
// admission pipeline: single observes ride the interactive lane (with
// per-segment coalescing), batch flushes ride the bulk lane. Shed requests
// are answered 429 with a Retry-After hint instead of queueing without
// bound. Side paths (/healthz, /v1/metrics, checks, uploads) bypass the
// pipeline so operators can always see a saturated server.
func WithAdmission(p *admission.Pipeline) ServerOption {
	return func(s *Server) { s.admission = p }
}

// WithPolicyInfo publishes the compiled policy's identity on /healthz.
// Pass the policyfile compile hash and the number of services it
// resolved; an empty hash leaves the policy section off the probe.
func WithPolicyInfo(hash string, services int) ServerOption {
	return func(s *Server) {
		if hash != "" {
			s.policyInfo = &HealthPolicy{Hash: hash, Services: services}
		}
	}
}

// WithObs installs an observability bundle: every endpoint is wrapped
// with RED metrics and X-BF-Trace lifting, the bundle's Prometheus
// families are appended to /v1/metrics, the span ring is served at
// /v1/debug/traces, and engine-level gauges (decision-cache hit ratio,
// WAL fsync latency, checkpoint age, replication lag) are registered.
func WithObs(o *obs.Obs) ServerOption {
	return func(s *Server) { s.obs = o }
}

// Server is the shared tag service. It is safe for concurrent use.
type Server struct {
	engine      *policy.Engine
	mux         *http.ServeMux
	maxBody     int64
	started     time.Time
	durability  func() (store.DurabilityStats, bool)
	replication func() HealthReplication
	admission   *admission.Pipeline
	obs         *obs.Obs
	partition   PartitionState
	policyInfo  *HealthPolicy

	// Operational counters, exported in Prometheus text format at
	// /metrics.
	observes     atomic.Int64
	checks       atomic.Int64
	uploads      atomic.Int64
	suppressions atomic.Int64
	violations   atomic.Int64
	cacheHits    atomic.Int64
	cacheMisses  atomic.Int64
}

var _ http.Handler = (*Server)(nil)

// NewServer returns a Server over the given engine.
func NewServer(engine *policy.Engine, opts ...ServerOption) (*Server, error) {
	if engine == nil {
		return nil, fmt.Errorf("tagserver: engine is required")
	}
	s := &Server{
		engine:  engine,
		mux:     http.NewServeMux(),
		maxBody: DefaultMaxBodyBytes,
		started: time.Now(),
	}
	for _, opt := range opts {
		opt(s)
	}
	// Instrument is nil-safe: without WithObs the raw handlers serve
	// unchanged; with it every endpoint gains RED metrics and trace
	// lifting under a stable endpoint label.
	handle := func(path, endpoint string, h http.HandlerFunc) {
		s.mux.Handle(path, s.obs.Instrument(endpoint, h))
	}
	handle("/v1/observe", "observe", s.handleObserve)
	handle("/v1/observe/batch", "observe_batch", s.handleObserveBatch)
	handle("/v1/check", "check", s.handleCheck)
	handle("/v1/upload", "upload", s.handleUpload)
	handle("/v1/suppress", "suppress", s.handleSuppress)
	handle("/v1/label", "label", s.handleLabel)
	handle("/v1/stats", "stats", s.handleStats)
	handle("/v1/metrics", "metrics", s.handleMetrics)
	handle("/healthz", "healthz", s.handleHealthz)
	s.registerPartitionHandlers(handle)
	s.mux.HandleFunc("/metrics", s.handleMetrics)
	if s.obs != nil {
		s.mux.Handle("/v1/debug/traces", s.obs.TracesHandler())
		s.registerEngineGauges()
	}
	return s, nil
}

// registerEngineGauges publishes engine-level health as gauges in the
// obs registry: decision-cache hit ratio, WAL fsync latency quantiles,
// checkpoint age, and replication lag. GaugeFuncs are sampled at scrape
// time, so a live promotion (durability appearing on a replica) is
// reflected without re-registration.
func (s *Server) registerEngineGauges() {
	reg := s.obs.Registry()
	reg.GaugeFunc("bf_decision_cache_hit_ratio",
		"Fraction of verdicts answered from the disclosure decision cache.",
		func() float64 {
			hits, misses := float64(s.cacheHits.Load()), float64(s.cacheMisses.Load())
			if hits+misses == 0 {
				return 0
			}
			return hits / (hits + misses)
		})
	reg.GaugeFunc("bf_segments", "Tracked segments.", func() float64 {
		return float64(s.engine.Tracker().Paragraphs().Stats().Segments)
	})
	reg.GaugeFunc("bf_wal_fsync_p50_seconds",
		"Median WAL fsync latency.", func() float64 {
			if d, ok := s.durabilityStats(); ok {
				return d.WAL.FsyncLatency.P50.Seconds()
			}
			return 0
		})
	reg.GaugeFunc("bf_wal_fsync_p99_seconds",
		"99th-percentile WAL fsync latency.", func() float64 {
			if d, ok := s.durabilityStats(); ok {
				return d.WAL.FsyncLatency.P99.Seconds()
			}
			return 0
		})
	reg.GaugeFunc("bf_checkpoint_age_seconds",
		"Seconds since the last successful checkpoint.", func() float64 {
			if d, ok := s.durabilityStats(); ok && !d.LastCheckpointAt.IsZero() {
				return reg.Now().Sub(d.LastCheckpointAt).Seconds()
			}
			return 0
		})
	reg.GaugeFunc("bf_scrub_frames_verified_total",
		"WAL frames re-verified clean by the at-rest scrubber.", func() float64 {
			if d, ok := s.durabilityStats(); ok {
				return float64(d.Scrub.FramesVerified)
			}
			return 0
		})
	reg.GaugeFunc("bf_scrub_corruptions_found_total",
		"At-rest corruptions the scrubber found.", func() float64 {
			if d, ok := s.durabilityStats(); ok {
				return float64(d.Scrub.CorruptionsFound)
			}
			return 0
		})
	reg.GaugeFunc("bf_scrub_quarantines_total",
		"Decayed files renamed aside by the scrubber.", func() float64 {
			if d, ok := s.durabilityStats(); ok {
				return float64(d.Scrub.Quarantines)
			}
			return 0
		})
	reg.GaugeFunc("bf_scrub_last_pass_age_seconds",
		"Seconds since the last completed scrub pass (0 before the first).", func() float64 {
			if d, ok := s.durabilityStats(); ok && !d.Scrub.LastPassAt.IsZero() {
				return reg.Now().Sub(d.Scrub.LastPassAt).Seconds()
			}
			return 0
		})
	reg.GaugeFunc("bf_quarantined_files",
		"Quarantined files currently present in the durable directory.", func() float64 {
			if d, ok := s.durabilityStats(); ok {
				return float64(d.Scrub.QuarantinedFiles)
			}
			return 0
		})
	reg.GaugeFunc("bf_disk_degraded",
		"1 while the journal is disk-fault degraded.", func() float64 {
			if d, ok := s.durabilityStats(); ok && d.Disk.Degraded {
				return 1
			}
			return 0
		})
	if s.replication != nil {
		reg.GaugeFunc("bf_node_repl_lag_bytes",
			"Framed WAL bytes this node trails its primary by (0 on a primary).",
			func() float64 { return float64(s.replication().LagBytes) })
		reg.GaugeFunc("bf_node_repl_term",
			"The node's replication fencing term.",
			func() float64 { return float64(s.replication().Term) })
	}
}

// Observes returns the number of observations served (batch items count
// individually). The bftagd save trigger uses it so batched flushes weigh
// by their size instead of counting as one request.
func (s *Server) Observes() int64 { return s.observes.Load() }

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

func (s *Server) handleObserve(w http.ResponseWriter, r *http.Request) {
	var req ObserveRequest
	if !s.decodePost(w, r, &req) {
		return
	}
	if req.Seg == "" || req.Service == "" {
		http.Error(w, "seg and service required", http.StatusBadRequest)
		return
	}
	var gran segment.Granularity
	switch req.Granularity {
	case "", "paragraph":
		gran = segment.GranularityParagraph
	case "document":
		gran = segment.GranularityDocument
	default:
		http.Error(w, "unknown granularity", http.StatusBadRequest)
		return
	}
	var (
		verdict policy.Verdict
		err     error
	)
	if ps := s.partition; ps != nil {
		// Partition mode: every observe journals a resolved (stamped)
		// record so a later split can replay this node's WAL
		// deterministically. Sole rings complete locally; a multi-partition
		// node cannot resolve cross-partition sources itself, so classic
		// observes must come through the routing tier.
		if !ps.Owns(req.Seg) {
			s.writeNotOwner(w, req.Seg)
			return
		}
		if !ps.Sole() {
			http.Error(w, "node is a cluster partition: observations go through the routing tier (/v1/part/observe)", http.StatusConflict)
			return
		}
		verdict, err = s.engine.ObserveSoleFPCtx(r.Context(), req.Seg, req.Service, fingerprint.FromHashes(req.Hashes), gran, 0)
	} else if s.admission != nil {
		verdict, err = s.admission.Observe(r.Context(), req.Service, req.Seg, gran, fingerprint.FromHashes(req.Hashes))
	} else if gran == segment.GranularityDocument {
		verdict, err = s.engine.ObserveDocumentEditFPCtx(r.Context(), req.Seg, req.Service, fingerprint.FromHashes(req.Hashes))
	} else {
		verdict, err = s.engine.ObserveEditFPCtx(r.Context(), req.Seg, req.Service, fingerprint.FromHashes(req.Hashes))
	}
	if err != nil {
		s.writeEngineError(w, err)
		return
	}
	s.observes.Add(1)
	s.countVerdict(verdict)
	writeVerdict(w, verdict)
}

// handleObserveBatch serves a flush of coalesced observations in one
// request: one JSON decode, one engine batch call, one verdict per item.
func (s *Server) handleObserveBatch(w http.ResponseWriter, r *http.Request) {
	var req BatchObserveRequest
	if !s.decodePost(w, r, &req) {
		return
	}
	if req.Service == "" {
		http.Error(w, "service required", http.StatusBadRequest)
		return
	}
	if len(req.Items) == 0 {
		http.Error(w, "items required", http.StatusBadRequest)
		return
	}
	items := make([]disclosure.BatchObservation, len(req.Items))
	for i, item := range req.Items {
		if item.Seg == "" {
			http.Error(w, fmt.Sprintf("item %d: seg required", i), http.StatusBadRequest)
			return
		}
		g := segment.GranularityParagraph
		switch item.Granularity {
		case "", "paragraph":
		case "document":
			g = segment.GranularityDocument
		default:
			http.Error(w, fmt.Sprintf("item %d: unknown granularity", i), http.StatusBadRequest)
			return
		}
		items[i] = disclosure.BatchObservation{
			Seg:         item.Seg,
			FP:          fingerprint.FromHashes(item.Hashes),
			Granularity: g,
		}
	}
	var (
		verdicts []policy.Verdict
		err      error
	)
	if ps := s.partition; ps != nil {
		// Partition mode: batch records carry no Lamport stamps, so apply
		// items one by one through the sole-mode path (stamped resolved
		// records) to keep a split's filtered replay deterministic.
		if !ps.Sole() {
			http.Error(w, "node is a cluster partition: observations go through the routing tier (/v1/part/observe)", http.StatusConflict)
			return
		}
		verdicts = make([]policy.Verdict, len(items))
		for i, item := range items {
			if !ps.Owns(item.Seg) {
				s.writeNotOwner(w, item.Seg)
				return
			}
			verdicts[i], err = s.engine.ObserveSoleFPCtx(r.Context(), item.Seg, req.Service, item.FP, item.Granularity, 0)
			if err != nil {
				break
			}
		}
	} else if s.admission != nil {
		verdicts, err = s.admission.ObserveBatch(r.Context(), req.Service, items)
	} else {
		verdicts, err = s.engine.ObserveBatchFPCtx(r.Context(), req.Service, items)
	}
	if err != nil {
		s.writeEngineError(w, err)
		return
	}
	s.observes.Add(int64(len(verdicts)))
	resp := BatchObserveResponse{Verdicts: make([]VerdictResponse, len(verdicts))}
	for i, v := range verdicts {
		s.countVerdict(v)
		resp.Verdicts[i] = verdictResponse(v)
	}
	writeJSON(w, resp)
}

func (s *Server) handleCheck(w http.ResponseWriter, r *http.Request) {
	var req CheckRequest
	if !s.decodePost(w, r, &req) {
		return
	}
	if req.Dest == "" {
		http.Error(w, "dest required", http.StatusBadRequest)
		return
	}
	verdict, err := s.engine.CheckFP(fingerprint.FromHashes(req.Hashes), req.Dest)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	s.checks.Add(1)
	s.countVerdict(verdict)
	writeVerdict(w, verdict)
}

func (s *Server) handleUpload(w http.ResponseWriter, r *http.Request) {
	var req UploadRequest
	if !s.decodePost(w, r, &req) {
		return
	}
	if req.Seg == "" || req.Dest == "" {
		http.Error(w, "seg and dest required", http.StatusBadRequest)
		return
	}
	verdict, err := s.engine.CheckUpload(req.Seg, req.Dest)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	s.uploads.Add(1)
	s.countVerdict(verdict)
	writeVerdict(w, verdict)
}

func (s *Server) handleSuppress(w http.ResponseWriter, r *http.Request) {
	var req SuppressRequest
	if !s.decodePost(w, r, &req) {
		return
	}
	if ps := s.partition; ps != nil && !ps.Owns(req.Seg) {
		// Suppressions mutate the segment's home label; the audit trail
		// lives there too.
		s.writeNotOwner(w, req.Seg)
		return
	}
	// Route through the engine (not Registry().SuppressTag directly) so the
	// declassification and its audit record hit the durability journal and
	// survive a crash.
	if err := s.engine.Suppress(req.User, req.Seg, req.Tag, req.Justification); err != nil {
		s.writeEngineError(w, err)
		return
	}
	s.suppressions.Add(1)
	writeJSON(w, map[string]bool{"ok": true})
}

// writeOverload answers admission sheds: 429 Too Many Requests with a
// Retry-After hint (seconds, rounded up) so well-behaved clients back off
// for at least as long as the backlog is old. A pipeline that is draining
// for shutdown answers 503 instead — the capacity is not coming back here,
// and failover clients treat 503 as "try another node".
func writeOverload(w http.ResponseWriter, err error) bool {
	oe, ok := admission.AsOverload(err)
	if !ok {
		return false
	}
	secs := int(math.Ceil(oe.RetryAfter.Seconds()))
	if secs < 1 {
		secs = 1
	}
	w.Header().Set("Retry-After", strconv.Itoa(secs))
	status := http.StatusTooManyRequests
	if oe.Reason == admission.ReasonDraining {
		status = http.StatusServiceUnavailable
	}
	http.Error(w, err.Error(), status)
	return true
}

// writeEngineError answers an engine mutation failure: admission sheds get
// their overload mapping, journal failures 503, everything else 400. When
// the journal failure is the fail-closed disk-degraded state, a
// Retry-After of the probe cadence tells clients exactly when recovery
// could next be detected. The engine flattens the journal's typed error
// (fmt %v), so the degraded state is read from the durability source, not
// the error chain.
func (s *Server) writeEngineError(w http.ResponseWriter, err error) {
	if writeOverload(w, err) {
		return
	}
	status := statusFor(err)
	if status == http.StatusServiceUnavailable {
		if d, ok := s.durabilityStats(); ok && d.Disk.Degraded {
			secs := int(math.Ceil(d.Disk.ProbeEvery.Seconds()))
			if secs < 1 {
				secs = 1
			}
			w.Header().Set("Retry-After", strconv.Itoa(secs))
		}
	}
	http.Error(w, err.Error(), status)
}

// statusFor maps engine errors to HTTP statuses: journal append failures
// mean the mutation's durability is not guaranteed, so the request must
// not be acknowledged (503 invites a retry); everything else is a caller
// error.
func statusFor(err error) int {
	if errors.Is(err, policy.ErrJournal) {
		return http.StatusServiceUnavailable
	}
	return http.StatusBadRequest
}

// durabilityStats loads the durability source when one is installed and
// currently reporting (a replica has none until promotion).
func (s *Server) durabilityStats() (store.DurabilityStats, bool) {
	if s.durability == nil {
		return store.DurabilityStats{}, false
	}
	return s.durability()
}

// countVerdict folds one verdict into the operational counters: the
// violation tally and the decision-cache hit/miss split that feeds the
// bf_decision_cache_hit_ratio gauge.
func (s *Server) countVerdict(v policy.Verdict) {
	if v.Violation() {
		s.violations.Add(1)
	}
	if v.CacheHit {
		s.cacheHits.Add(1)
	} else {
		s.cacheMisses.Add(1)
	}
}

// handleMetrics exposes operational counters and database sizes in
// Prometheus text exposition format.
func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	stats := s.engine.Tracker().Paragraphs().Stats()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	fmt.Fprintf(w, "# TYPE browserflow_observes_total counter\nbrowserflow_observes_total %d\n", s.observes.Load())
	fmt.Fprintf(w, "# TYPE browserflow_checks_total counter\nbrowserflow_checks_total %d\n", s.checks.Load())
	fmt.Fprintf(w, "# TYPE browserflow_uploads_total counter\nbrowserflow_uploads_total %d\n", s.uploads.Load())
	fmt.Fprintf(w, "# TYPE browserflow_suppressions_total counter\nbrowserflow_suppressions_total %d\n", s.suppressions.Load())
	fmt.Fprintf(w, "# TYPE browserflow_violations_total counter\nbrowserflow_violations_total %d\n", s.violations.Load())
	fmt.Fprintf(w, "# TYPE browserflow_decision_cache_hits_total counter\nbrowserflow_decision_cache_hits_total %d\n", s.cacheHits.Load())
	fmt.Fprintf(w, "# TYPE browserflow_decision_cache_misses_total counter\nbrowserflow_decision_cache_misses_total %d\n", s.cacheMisses.Load())
	fmt.Fprintf(w, "# TYPE browserflow_segments gauge\nbrowserflow_segments %d\n", stats.Segments)
	fmt.Fprintf(w, "# TYPE browserflow_distinct_hashes gauge\nbrowserflow_distinct_hashes %d\n", stats.DistinctHashes)
	fmt.Fprintf(w, "# TYPE browserflow_audit_entries gauge\nbrowserflow_audit_entries %d\n", s.engine.Registry().Audit().Len())
	if s.replication != nil {
		rs := s.replication()
		fmt.Fprintf(w, "# TYPE browserflow_replication_role gauge\nbrowserflow_replication_role{role=%q} 1\n", rs.Role)
		fmt.Fprintf(w, "# TYPE browserflow_replication_term gauge\nbrowserflow_replication_term %d\n", rs.Term)
		fmt.Fprintf(w, "# TYPE browserflow_replication_lag_records gauge\nbrowserflow_replication_lag_records %d\n", rs.LagRecords)
		fmt.Fprintf(w, "# TYPE browserflow_replication_lag_bytes gauge\nbrowserflow_replication_lag_bytes %d\n", rs.LagBytes)
		fmt.Fprintf(w, "# TYPE browserflow_replication_applied_records counter\nbrowserflow_replication_applied_records %d\n", rs.AppliedRecords)
		fmt.Fprintf(w, "# TYPE browserflow_replication_bootstraps_total counter\nbrowserflow_replication_bootstraps_total %d\n", rs.Bootstraps)
		connected := 0
		if rs.Connected {
			connected = 1
		}
		fmt.Fprintf(w, "# TYPE browserflow_replication_connected gauge\nbrowserflow_replication_connected %d\n", connected)
	}
	if d, ok := s.durabilityStats(); ok {
		fmt.Fprintf(w, "# TYPE browserflow_wal_records_total counter\nbrowserflow_wal_records_total %d\n", d.WAL.RecordsAppended)
		fmt.Fprintf(w, "# TYPE browserflow_wal_bytes_total counter\nbrowserflow_wal_bytes_total %d\n", d.WAL.BytesAppended)
		fmt.Fprintf(w, "# TYPE browserflow_wal_fsyncs_total counter\nbrowserflow_wal_fsyncs_total %d\n", d.WAL.Fsyncs)
		fmt.Fprintf(w, "# TYPE browserflow_wal_fsync_latency_seconds summary\n")
		fmt.Fprintf(w, "browserflow_wal_fsync_latency_seconds{quantile=\"0.5\"} %g\n", d.WAL.FsyncLatency.P50.Seconds())
		fmt.Fprintf(w, "browserflow_wal_fsync_latency_seconds{quantile=\"0.95\"} %g\n", d.WAL.FsyncLatency.P95.Seconds())
		fmt.Fprintf(w, "browserflow_wal_fsync_latency_seconds{quantile=\"0.99\"} %g\n", d.WAL.FsyncLatency.P99.Seconds())
		fmt.Fprintf(w, "# TYPE browserflow_wal_segments gauge\nbrowserflow_wal_segments %d\n", d.WAL.Segments)
		fmt.Fprintf(w, "# TYPE browserflow_wal_torn_bytes_truncated gauge\nbrowserflow_wal_torn_bytes_truncated %d\n", d.WAL.TornBytesTruncated)
		fmt.Fprintf(w, "# TYPE browserflow_checkpoints_total counter\nbrowserflow_checkpoints_total %d\n", d.Checkpoints)
		fmt.Fprintf(w, "# TYPE browserflow_checkpoint_errors_total counter\nbrowserflow_checkpoint_errors_total %d\n", d.CheckpointErrors)
		if !d.LastCheckpointAt.IsZero() {
			fmt.Fprintf(w, "# TYPE browserflow_last_checkpoint_age_seconds gauge\nbrowserflow_last_checkpoint_age_seconds %g\n",
				time.Since(d.LastCheckpointAt).Seconds())
		}
		fmt.Fprintf(w, "# TYPE browserflow_recovery_records_replayed gauge\nbrowserflow_recovery_records_replayed %d\n", d.Recovery.RecordsReplayed)
		fmt.Fprintf(w, "# TYPE browserflow_recovery_corrupt_checkpoints gauge\nbrowserflow_recovery_corrupt_checkpoints %d\n", d.Recovery.CorruptCheckpoints)
		fmt.Fprintf(w, "# TYPE browserflow_scrub_passes_total counter\nbrowserflow_scrub_passes_total %d\n", d.Scrub.Passes)
		fmt.Fprintf(w, "# TYPE browserflow_scrub_frames_verified_total counter\nbrowserflow_scrub_frames_verified_total %d\n", d.Scrub.FramesVerified)
		fmt.Fprintf(w, "# TYPE browserflow_scrub_corruptions_found_total counter\nbrowserflow_scrub_corruptions_found_total %d\n", d.Scrub.CorruptionsFound)
		fmt.Fprintf(w, "# TYPE browserflow_scrub_quarantines_total counter\nbrowserflow_scrub_quarantines_total %d\n", d.Scrub.Quarantines)
		fmt.Fprintf(w, "# TYPE browserflow_quarantined_files gauge\nbrowserflow_quarantined_files %d\n", d.Scrub.QuarantinedFiles)
		degraded := 0
		if d.Disk.Degraded {
			degraded = 1
		}
		fmt.Fprintf(w, "# TYPE browserflow_disk_degraded gauge\nbrowserflow_disk_degraded %d\n", degraded)
		fmt.Fprintf(w, "# TYPE browserflow_disk_dropped_records counter\nbrowserflow_disk_dropped_records %d\n", d.Disk.DroppedRecords)
		fmt.Fprintf(w, "# TYPE browserflow_disk_recoveries_total counter\nbrowserflow_disk_recoveries_total %d\n", d.Disk.Recoveries)
	}
	if s.admission != nil {
		st := s.admission.Stats()
		fmt.Fprintf(w, "# TYPE browserflow_admission_queue_depth gauge\n")
		fmt.Fprintf(w, "browserflow_admission_queue_depth{lane=\"interactive\"} %d\n", st.Interactive.Depth)
		fmt.Fprintf(w, "browserflow_admission_queue_depth{lane=\"bulk\"} %d\n", st.Bulk.Depth)
		fmt.Fprintf(w, "# TYPE browserflow_admission_shed_total counter\n")
		fmt.Fprintf(w, "browserflow_admission_shed_total{lane=\"interactive\"} %d\n", st.Interactive.Shed)
		fmt.Fprintf(w, "browserflow_admission_shed_total{lane=\"bulk\"} %d\n", st.Bulk.Shed)
		fmt.Fprintf(w, "# TYPE browserflow_admission_folds_total counter\nbrowserflow_admission_folds_total %d\n", st.Folds)
		fmt.Fprintf(w, "# TYPE browserflow_admission_deadline_drops_total counter\nbrowserflow_admission_deadline_drops_total %d\n",
			st.Interactive.DeadlineDrops+st.Bulk.DeadlineDrops)
	}
	// The obs registry's families (bf_*) follow the legacy browserflow_*
	// block; its output is deterministically sorted, so two scrapes under
	// a fake clock are byte-identical.
	if s.obs != nil {
		s.obs.Registry().WritePrometheus(w)
	}
}

func (s *Server) handleLabel(w http.ResponseWriter, r *http.Request) {
	seg := segment.ID(r.URL.Query().Get("seg"))
	if seg == "" {
		http.Error(w, "seg required", http.StatusBadRequest)
		return
	}
	label := s.engine.Registry().Label(seg)
	if label == nil {
		http.Error(w, "unknown segment", http.StatusNotFound)
		return
	}
	writeJSON(w, LabelResponse{
		Explicit:   label.Explicit().Sorted(),
		Implicit:   label.Implicit().Sorted(),
		Suppressed: label.Suppressed().Sorted(),
	})
}

func (s *Server) handleStats(w http.ResponseWriter, _ *http.Request) {
	stats := s.engine.Tracker().Paragraphs().Stats()
	writeJSON(w, StatsResponse{
		Segments:       stats.Segments,
		DistinctHashes: stats.DistinctHashes,
		AuditEntries:   s.engine.Registry().Audit().Len(),
	})
}

// handleHealthz is the liveness probe driving client-side half-open
// breaker trials: a 200 with {"status":"ok"} means the service can answer
// decision traffic again.
func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	stats := s.engine.Tracker().Paragraphs().Stats()
	resp := HealthResponse{
		Status:   "ok",
		Uptime:   time.Since(s.started).Round(time.Second).String(),
		Segments: stats.Segments,
	}
	if rs := s.replication; rs != nil {
		status := rs()
		resp.Replication = &status
	}
	if s.policyInfo != nil {
		info := *s.policyInfo
		resp.Policy = &info
	}
	if ps := s.partition; ps != nil {
		lo, hi := ps.KeyRange()
		resp.Partition = &HealthPartition{
			ID:          ps.ID(),
			RingVersion: ps.RingVersion(),
			RangeLo:     lo,
			RangeHi:     hi,
			Resharding:  ps.Resharding(),
		}
	}
	if s.admission != nil {
		st := s.admission.Stats()
		lane := func(ls admission.LaneStats) HealthAdmissionLane {
			return HealthAdmissionLane{
				Depth:         ls.Depth,
				Cap:           ls.Cap,
				Submitted:     ls.Submitted,
				Executed:      ls.Executed,
				Shed:          ls.Shed,
				DeadlineDrops: ls.DeadlineDrops,
			}
		}
		resp.Admission = &HealthAdmission{
			Draining:    st.Draining,
			Folds:       st.Folds,
			Interactive: lane(st.Interactive),
			Bulk:        lane(st.Bulk),
		}
	}
	if d, ok := s.durabilityStats(); ok {
		hs := &HealthStorage{
			ScrubPasses:      d.Scrub.Passes,
			FramesVerified:   d.Scrub.FramesVerified,
			CorruptionsFound: d.Scrub.CorruptionsFound,
			Quarantines:      d.Scrub.Quarantines,
			QuarantinedFiles: d.Scrub.QuarantinedFiles,
			LastCorruption:   d.Scrub.LastCorruption,
			DiskDegraded:     d.Disk.Degraded,
			DegradedCause:    d.Disk.Cause,
			FailOpen:         d.Disk.FailOpen,
			DroppedRecords:   d.Disk.DroppedRecords,
			DiskRecoveries:   d.Disk.Recoveries,
		}
		if !d.Scrub.LastPassAt.IsZero() {
			hs.LastScrubAge = time.Since(d.Scrub.LastPassAt).Round(time.Second).String()
		}
		resp.Storage = hs
		hd := &HealthDurability{
			WALRecords:       d.WAL.RecordsAppended,
			WALSegments:      d.WAL.Segments,
			Fsyncs:           d.WAL.Fsyncs,
			Checkpoints:      d.Checkpoints,
			CheckpointErrors: d.CheckpointErrors,
			RecordsReplayed:  d.Recovery.RecordsReplayed,
			CheckpointLoaded: d.Recovery.CheckpointLoaded,
		}
		if !d.LastCheckpointAt.IsZero() {
			hd.LastCheckpointAge = time.Since(d.LastCheckpointAt).Round(time.Second).String()
		}
		resp.Durability = hd
	}
	writeJSON(w, resp)
}

// decodePost decodes a JSON POST body, bounding it with MaxBytesReader:
// oversized bodies get 413, malformed ones 400.
func (s *Server) decodePost(w http.ResponseWriter, r *http.Request, into interface{}) bool {
	if r.Method != http.MethodPost {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return false
	}
	body := http.MaxBytesReader(w, r.Body, s.maxBody)
	defer body.Close()
	if err := json.NewDecoder(body).Decode(into); err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			http.Error(w, fmt.Sprintf("request body exceeds %d bytes", tooLarge.Limit), http.StatusRequestEntityTooLarge)
			return false
		}
		http.Error(w, err.Error(), http.StatusBadRequest)
		return false
	}
	return true
}

func writeVerdict(w http.ResponseWriter, v policy.Verdict) {
	writeJSON(w, verdictResponse(v))
}

// verdictResponse converts a policy verdict to its wire form.
func verdictResponse(v policy.Verdict) VerdictResponse {
	resp := VerdictResponse{Decision: v.Decision.String(), Violating: v.Violating}
	for _, src := range v.Sources {
		resp.Sources = append(resp.Sources, SourceDT{Seg: src.Seg, Disclosure: src.Disclosure})
	}
	return resp
}

func writeJSON(w http.ResponseWriter, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(v); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}
