// Package tagserver provides the shared enterprise tag service: a central
// HTTP endpoint holding the fingerprint databases and TDM labels for a
// whole organisation, so that text observed on one employee's device is
// recognised when it surfaces on another's.
//
// Devices keep text local and ship *fingerprint hashes only* — the same
// privacy posture the paper recommends for fingerprint data at rest
// (§4.4). The protocol mirrors the plug-in's decision points:
//
//	POST /v1/observe        {device, service, seg, hashes}     -> verdict
//	POST /v1/observe/batch  {device, service, items:[...]}     -> verdicts
//	POST /v1/check     {device, dest, hashes}              -> verdict
//	POST /v1/upload    {device, seg, dest}                 -> verdict
//	POST /v1/suppress  {user, seg, tag, justification}     -> ok
//	GET  /v1/label?seg=...                                 -> label
//	GET  /v1/stats                                         -> sizes
//	GET  /healthz                                          -> liveness
package tagserver

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sync/atomic"
	"time"

	"github.com/lsds/browserflow/internal/disclosure"
	"github.com/lsds/browserflow/internal/fingerprint"
	"github.com/lsds/browserflow/internal/policy"
	"github.com/lsds/browserflow/internal/segment"
	"github.com/lsds/browserflow/internal/tdm"
)

// ObserveRequest records an observation from a device.
type ObserveRequest struct {
	Device  string     `json:"device"`
	Service string     `json:"service"`
	Seg     segment.ID `json:"seg"`
	Hashes  []uint32   `json:"hashes"`

	// Granularity is "paragraph" (default) or "document".
	Granularity string `json:"granularity,omitempty"`
}

// BatchObserveItem is one observation inside a batched flush.
type BatchObserveItem struct {
	Seg    segment.ID `json:"seg"`
	Hashes []uint32   `json:"hashes"`

	// Granularity is "paragraph" (default) or "document".
	Granularity string `json:"granularity,omitempty"`
}

// BatchObserveRequest records a flush of coalesced observations from a
// device — how a real browser extension ships DOM mutations: buffered and
// flushed together rather than one request per keystroke.
type BatchObserveRequest struct {
	Device  string             `json:"device"`
	Service string             `json:"service"`
	Items   []BatchObserveItem `json:"items"`
}

// BatchObserveResponse carries one verdict per request item, in order.
type BatchObserveResponse struct {
	Verdicts []VerdictResponse `json:"verdicts"`
}

// CheckRequest asks whether content may be released to a destination.
type CheckRequest struct {
	Device string   `json:"device"`
	Dest   string   `json:"dest"`
	Hashes []uint32 `json:"hashes"`
}

// UploadRequest asks whether a tracked segment may be released.
type UploadRequest struct {
	Device string     `json:"device"`
	Seg    segment.ID `json:"seg"`
	Dest   string     `json:"dest"`
}

// SuppressRequest declassifies a tag on a segment.
type SuppressRequest struct {
	User          string     `json:"user"`
	Seg           segment.ID `json:"seg"`
	Tag           tdm.Tag    `json:"tag"`
	Justification string     `json:"justification"`
}

// VerdictResponse is the wire form of a policy verdict.
type VerdictResponse struct {
	Decision  string     `json:"decision"`
	Violating []tdm.Tag  `json:"violating,omitempty"`
	Sources   []SourceDT `json:"sources,omitempty"`
}

// SourceDT is one disclosure source on the wire.
type SourceDT struct {
	Seg        segment.ID `json:"seg"`
	Disclosure float64    `json:"disclosure"`
}

// LabelResponse is the wire form of a segment label.
type LabelResponse struct {
	Explicit   []tdm.Tag `json:"explicit"`
	Implicit   []tdm.Tag `json:"implicit"`
	Suppressed []tdm.Tag `json:"suppressed"`
}

// StatsResponse reports database sizes.
type StatsResponse struct {
	Segments       int `json:"segments"`
	DistinctHashes int `json:"distinctHashes"`
	AuditEntries   int `json:"auditEntries"`
}

// HealthResponse is the wire form of the /healthz liveness probe. Clients
// (and the failover layer's half-open trials) use it to decide whether the
// service has recovered.
type HealthResponse struct {
	Status   string `json:"status"`
	Uptime   string `json:"uptime"`
	Segments int    `json:"segments"`
}

// DefaultMaxBodyBytes bounds request bodies accepted by the service
// (overridable with WithMaxBodyBytes). Fingerprint hash lists are small;
// anything past this is hostile or broken.
const DefaultMaxBodyBytes = 1 << 20

// ServerOption customises a Server.
type ServerOption func(*Server)

// WithMaxBodyBytes overrides the request-body size limit. Requests larger
// than n bytes are rejected with 413.
func WithMaxBodyBytes(n int64) ServerOption {
	return func(s *Server) {
		if n > 0 {
			s.maxBody = n
		}
	}
}

// Server is the shared tag service. It is safe for concurrent use.
type Server struct {
	engine  *policy.Engine
	mux     *http.ServeMux
	maxBody int64
	started time.Time

	// Operational counters, exported in Prometheus text format at
	// /metrics.
	observes     atomic.Int64
	checks       atomic.Int64
	uploads      atomic.Int64
	suppressions atomic.Int64
	violations   atomic.Int64
}

var _ http.Handler = (*Server)(nil)

// NewServer returns a Server over the given engine.
func NewServer(engine *policy.Engine, opts ...ServerOption) (*Server, error) {
	if engine == nil {
		return nil, fmt.Errorf("tagserver: engine is required")
	}
	s := &Server{
		engine:  engine,
		mux:     http.NewServeMux(),
		maxBody: DefaultMaxBodyBytes,
		started: time.Now(),
	}
	for _, opt := range opts {
		opt(s)
	}
	s.mux.HandleFunc("/v1/observe", s.handleObserve)
	s.mux.HandleFunc("/v1/observe/batch", s.handleObserveBatch)
	s.mux.HandleFunc("/v1/check", s.handleCheck)
	s.mux.HandleFunc("/v1/upload", s.handleUpload)
	s.mux.HandleFunc("/v1/suppress", s.handleSuppress)
	s.mux.HandleFunc("/v1/label", s.handleLabel)
	s.mux.HandleFunc("/v1/stats", s.handleStats)
	s.mux.HandleFunc("/metrics", s.handleMetrics)
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	return s, nil
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

func (s *Server) handleObserve(w http.ResponseWriter, r *http.Request) {
	var req ObserveRequest
	if !s.decodePost(w, r, &req) {
		return
	}
	if req.Seg == "" || req.Service == "" {
		http.Error(w, "seg and service required", http.StatusBadRequest)
		return
	}
	var (
		verdict policy.Verdict
		err     error
	)
	switch req.Granularity {
	case "", "paragraph":
		verdict, err = s.engine.ObserveEditFP(req.Seg, req.Service, fingerprint.FromHashes(req.Hashes))
	case "document":
		verdict, err = s.engine.ObserveDocumentEditFP(req.Seg, req.Service, fingerprint.FromHashes(req.Hashes))
	default:
		http.Error(w, "unknown granularity", http.StatusBadRequest)
		return
	}
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	s.observes.Add(1)
	s.countViolation(verdict)
	writeVerdict(w, verdict)
}

// handleObserveBatch serves a flush of coalesced observations in one
// request: one JSON decode, one engine batch call, one verdict per item.
func (s *Server) handleObserveBatch(w http.ResponseWriter, r *http.Request) {
	var req BatchObserveRequest
	if !s.decodePost(w, r, &req) {
		return
	}
	if req.Service == "" {
		http.Error(w, "service required", http.StatusBadRequest)
		return
	}
	if len(req.Items) == 0 {
		http.Error(w, "items required", http.StatusBadRequest)
		return
	}
	items := make([]disclosure.BatchObservation, len(req.Items))
	for i, item := range req.Items {
		if item.Seg == "" {
			http.Error(w, fmt.Sprintf("item %d: seg required", i), http.StatusBadRequest)
			return
		}
		g := segment.GranularityParagraph
		switch item.Granularity {
		case "", "paragraph":
		case "document":
			g = segment.GranularityDocument
		default:
			http.Error(w, fmt.Sprintf("item %d: unknown granularity", i), http.StatusBadRequest)
			return
		}
		items[i] = disclosure.BatchObservation{
			Seg:         item.Seg,
			FP:          fingerprint.FromHashes(item.Hashes),
			Granularity: g,
		}
	}
	verdicts, err := s.engine.ObserveBatchFP(req.Service, items)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	s.observes.Add(int64(len(verdicts)))
	resp := BatchObserveResponse{Verdicts: make([]VerdictResponse, len(verdicts))}
	for i, v := range verdicts {
		s.countViolation(v)
		resp.Verdicts[i] = verdictResponse(v)
	}
	writeJSON(w, resp)
}

func (s *Server) handleCheck(w http.ResponseWriter, r *http.Request) {
	var req CheckRequest
	if !s.decodePost(w, r, &req) {
		return
	}
	if req.Dest == "" {
		http.Error(w, "dest required", http.StatusBadRequest)
		return
	}
	verdict, err := s.engine.CheckFP(fingerprint.FromHashes(req.Hashes), req.Dest)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	s.checks.Add(1)
	s.countViolation(verdict)
	writeVerdict(w, verdict)
}

func (s *Server) handleUpload(w http.ResponseWriter, r *http.Request) {
	var req UploadRequest
	if !s.decodePost(w, r, &req) {
		return
	}
	if req.Seg == "" || req.Dest == "" {
		http.Error(w, "seg and dest required", http.StatusBadRequest)
		return
	}
	verdict, err := s.engine.CheckUpload(req.Seg, req.Dest)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	s.uploads.Add(1)
	s.countViolation(verdict)
	writeVerdict(w, verdict)
}

func (s *Server) handleSuppress(w http.ResponseWriter, r *http.Request) {
	var req SuppressRequest
	if !s.decodePost(w, r, &req) {
		return
	}
	if err := s.engine.Registry().SuppressTag(req.User, req.Seg, req.Tag, req.Justification); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	s.suppressions.Add(1)
	writeJSON(w, map[string]bool{"ok": true})
}

func (s *Server) countViolation(v policy.Verdict) {
	if v.Violation() {
		s.violations.Add(1)
	}
}

// handleMetrics exposes operational counters and database sizes in
// Prometheus text exposition format.
func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	stats := s.engine.Tracker().Paragraphs().Stats()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	fmt.Fprintf(w, "# TYPE browserflow_observes_total counter\nbrowserflow_observes_total %d\n", s.observes.Load())
	fmt.Fprintf(w, "# TYPE browserflow_checks_total counter\nbrowserflow_checks_total %d\n", s.checks.Load())
	fmt.Fprintf(w, "# TYPE browserflow_uploads_total counter\nbrowserflow_uploads_total %d\n", s.uploads.Load())
	fmt.Fprintf(w, "# TYPE browserflow_suppressions_total counter\nbrowserflow_suppressions_total %d\n", s.suppressions.Load())
	fmt.Fprintf(w, "# TYPE browserflow_violations_total counter\nbrowserflow_violations_total %d\n", s.violations.Load())
	fmt.Fprintf(w, "# TYPE browserflow_segments gauge\nbrowserflow_segments %d\n", stats.Segments)
	fmt.Fprintf(w, "# TYPE browserflow_distinct_hashes gauge\nbrowserflow_distinct_hashes %d\n", stats.DistinctHashes)
	fmt.Fprintf(w, "# TYPE browserflow_audit_entries gauge\nbrowserflow_audit_entries %d\n", s.engine.Registry().Audit().Len())
}

func (s *Server) handleLabel(w http.ResponseWriter, r *http.Request) {
	seg := segment.ID(r.URL.Query().Get("seg"))
	if seg == "" {
		http.Error(w, "seg required", http.StatusBadRequest)
		return
	}
	label := s.engine.Registry().Label(seg)
	if label == nil {
		http.Error(w, "unknown segment", http.StatusNotFound)
		return
	}
	writeJSON(w, LabelResponse{
		Explicit:   label.Explicit().Sorted(),
		Implicit:   label.Implicit().Sorted(),
		Suppressed: label.Suppressed().Sorted(),
	})
}

func (s *Server) handleStats(w http.ResponseWriter, _ *http.Request) {
	stats := s.engine.Tracker().Paragraphs().Stats()
	writeJSON(w, StatsResponse{
		Segments:       stats.Segments,
		DistinctHashes: stats.DistinctHashes,
		AuditEntries:   s.engine.Registry().Audit().Len(),
	})
}

// handleHealthz is the liveness probe driving client-side half-open
// breaker trials: a 200 with {"status":"ok"} means the service can answer
// decision traffic again.
func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	stats := s.engine.Tracker().Paragraphs().Stats()
	writeJSON(w, HealthResponse{
		Status:   "ok",
		Uptime:   time.Since(s.started).Round(time.Second).String(),
		Segments: stats.Segments,
	})
}

// decodePost decodes a JSON POST body, bounding it with MaxBytesReader:
// oversized bodies get 413, malformed ones 400.
func (s *Server) decodePost(w http.ResponseWriter, r *http.Request, into interface{}) bool {
	if r.Method != http.MethodPost {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return false
	}
	body := http.MaxBytesReader(w, r.Body, s.maxBody)
	defer body.Close()
	if err := json.NewDecoder(body).Decode(into); err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			http.Error(w, fmt.Sprintf("request body exceeds %d bytes", tooLarge.Limit), http.StatusRequestEntityTooLarge)
			return false
		}
		http.Error(w, err.Error(), http.StatusBadRequest)
		return false
	}
	return true
}

func writeVerdict(w http.ResponseWriter, v policy.Verdict) {
	writeJSON(w, verdictResponse(v))
}

// verdictResponse converts a policy verdict to its wire form.
func verdictResponse(v policy.Verdict) VerdictResponse {
	resp := VerdictResponse{Decision: v.Decision.String(), Violating: v.Violating}
	for _, src := range v.Sources {
		resp.Sources = append(resp.Sources, SourceDT{Seg: src.Seg, Disclosure: src.Disclosure})
	}
	return resp
}

func writeJSON(w http.ResponseWriter, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(v); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}
