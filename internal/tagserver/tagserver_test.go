package tagserver

import (
	"bytes"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"github.com/lsds/browserflow/internal/audit"
	"github.com/lsds/browserflow/internal/disclosure"
	"github.com/lsds/browserflow/internal/fingerprint"
	"github.com/lsds/browserflow/internal/policy"
	"github.com/lsds/browserflow/internal/segment"
	"github.com/lsds/browserflow/internal/tdm"
)

const orgSecret = "The enterprise-wide migration schedule with per-team cutover dates is strictly internal to the platform group."

func fpConfig() fingerprint.Config {
	return fingerprint.Config{NGram: 6, Window: 4}
}

func newService(t *testing.T) (*httptest.Server, *policy.Engine) {
	t.Helper()
	tracker, err := disclosure.NewTracker(disclosure.Params{
		Fingerprint: fpConfig(),
		Tpar:        0.5,
		Tdoc:        0.5,
	})
	if err != nil {
		t.Fatal(err)
	}
	registry := tdm.NewRegistry(audit.NewLog())
	for _, svc := range []struct {
		name   string
		lp, lc tdm.TagSet
	}{
		{name: "wiki", lp: tdm.NewTagSet("tw"), lc: tdm.NewTagSet("tw")},
		{name: "docs", lp: tdm.NewTagSet(), lc: tdm.NewTagSet()},
	} {
		if err := registry.RegisterService(svc.name, svc.lp, svc.lc); err != nil {
			t.Fatal(err)
		}
	}
	engine, err := policy.NewEngine(tracker, registry, policy.ModeEnforcing)
	if err != nil {
		t.Fatal(err)
	}
	server, err := NewServer(engine)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(server)
	t.Cleanup(srv.Close)
	return srv, engine
}

func TestNewServerValidation(t *testing.T) {
	if _, err := NewServer(nil); err == nil {
		t.Error("nil engine accepted")
	}
}

func TestNewClientValidation(t *testing.T) {
	if _, err := NewClient("", "dev", fpConfig()); err == nil {
		t.Error("empty base accepted")
	}
	if _, err := NewClient("http://x", "", fpConfig()); err == nil {
		t.Error("empty device accepted")
	}
	if _, err := NewClient("http://x", "dev", fingerprint.Config{}); err == nil {
		t.Error("bad fingerprint config accepted")
	}
}

// The headline property: text observed on device A is recognised when it
// surfaces on device B — cross-device tracking through the shared service.
func TestCrossDeviceTracking(t *testing.T) {
	srv, _ := newService(t)
	deviceA, err := NewClient(srv.URL, "laptop-alice", fpConfig())
	if err != nil {
		t.Fatal(err)
	}
	deviceB, err := NewClient(srv.URL, "laptop-bob", fpConfig())
	if err != nil {
		t.Fatal(err)
	}

	// Alice reads the wiki page; her device registers the text.
	v, err := deviceA.Observe("wiki", "wiki/schedule#p0", orgSecret)
	if err != nil {
		t.Fatal(err)
	}
	if v.Decision != "allow" {
		t.Fatalf("observe verdict=%v", v)
	}

	// Bob (who never saw the wiki) pastes the same text towards docs: the
	// shared service recognises it.
	v, err = deviceB.Check(orgSecret, "docs")
	if err != nil {
		t.Fatal(err)
	}
	if v.Decision != "block" || !v.Violation() {
		t.Fatalf("cross-device check=%+v, want block", v)
	}
	if len(v.Sources) == 0 || v.Sources[0].Seg != "wiki/schedule#p0" {
		t.Errorf("sources=%v", v.Sources)
	}
}

func TestObserveThenUploadAndSuppress(t *testing.T) {
	srv, _ := newService(t)
	dev, err := NewClient(srv.URL, "laptop", fpConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := dev.Observe("wiki", "wiki/s#p0", orgSecret); err != nil {
		t.Fatal(err)
	}
	if _, err := dev.Observe("docs", "docs/d#p0", orgSecret); err != nil {
		t.Fatal(err)
	}
	v, err := dev.CheckUpload("docs/d#p0", "docs")
	if err != nil {
		t.Fatal(err)
	}
	if v.Decision != "block" {
		t.Fatalf("upload=%+v", v)
	}
	// Label shows the implicit wiki tag.
	label, err := dev.Label("docs/d#p0")
	if err != nil {
		t.Fatal(err)
	}
	if len(label.Implicit) != 1 || label.Implicit[0] != "tw" {
		t.Errorf("label=%+v", label)
	}
	// Suppress and retry.
	if err := dev.Suppress("alice", "docs/d#p0", "tw", "approved"); err != nil {
		t.Fatal(err)
	}
	v, err = dev.CheckUpload("docs/d#p0", "docs")
	if err != nil {
		t.Fatal(err)
	}
	if v.Decision != "allow" {
		t.Errorf("after suppress: %+v", v)
	}
}

func TestStatsEndpoint(t *testing.T) {
	srv, _ := newService(t)
	dev, err := NewClient(srv.URL, "laptop", fpConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := dev.Observe("wiki", "wiki/s#p0", orgSecret); err != nil {
		t.Fatal(err)
	}
	stats, err := dev.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if stats.Segments != 1 || stats.DistinctHashes == 0 {
		t.Errorf("stats=%+v", stats)
	}
}

func TestServerErrorPaths(t *testing.T) {
	srv, _ := newService(t)
	client := srv.Client()

	// Wrong method.
	resp, err := client.Get(srv.URL + "/v1/observe")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET observe status=%d", resp.StatusCode)
	}
	// Malformed JSON.
	resp, err = client.Post(srv.URL+"/v1/observe", "application/json", strings.NewReader("{"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad json status=%d", resp.StatusCode)
	}
	// Missing fields.
	resp, err = client.Post(srv.URL+"/v1/observe", "application/json", strings.NewReader("{}"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("missing fields status=%d", resp.StatusCode)
	}
	// Unknown destination service.
	dev, err := NewClient(srv.URL, "laptop", fpConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := dev.Check("some text to check", "ghost"); err == nil {
		t.Error("unknown dest accepted")
	}
	// Unknown label.
	if _, err := dev.Label("nope#p0"); err == nil {
		t.Error("unknown label accepted")
	}
	// Missing label query.
	resp, err = client.Get(srv.URL + "/v1/label")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("label without seg status=%d", resp.StatusCode)
	}
}

func TestMetricsEndpoint(t *testing.T) {
	srv, _ := newService(t)
	dev, err := NewClient(srv.URL, "laptop", fpConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := dev.Observe("wiki", "wiki/m#p0", orgSecret); err != nil {
		t.Fatal(err)
	}
	if _, err := dev.Check(orgSecret, "docs"); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	text := string(body)
	for _, want := range []string{
		"browserflow_observes_total 1",
		"browserflow_checks_total 1",
		"browserflow_violations_total 1",
		"browserflow_segments 1",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics missing %q:\n%s", want, text)
		}
	}
}

// BenchmarkTagServiceObserve measures the shared service's observe
// throughput with concurrent devices.
func BenchmarkTagServiceObserve(b *testing.B) {
	tracker, err := disclosure.NewTracker(disclosure.DefaultParams())
	if err != nil {
		b.Fatal(err)
	}
	registry := tdm.NewRegistry(audit.NewLog())
	if err := registry.RegisterService("wiki", tdm.NewTagSet("tw"), tdm.NewTagSet("tw")); err != nil {
		b.Fatal(err)
	}
	engine, err := policy.NewEngine(tracker, registry, policy.ModeEnforcing)
	if err != nil {
		b.Fatal(err)
	}
	server, err := NewServer(engine)
	if err != nil {
		b.Fatal(err)
	}
	srv := httptest.NewServer(server)
	defer srv.Close()

	b.RunParallel(func(pb *testing.PB) {
		dev, err := NewClient(srv.URL, "bench-device", fingerprint.DefaultConfig())
		if err != nil {
			b.Error(err)
			return
		}
		i := 0
		for pb.Next() {
			i++
			seg := segmentID("wiki/bench", i%64)
			if _, err := dev.Observe("wiki", seg, orgSecret); err != nil {
				b.Error(err)
				return
			}
		}
	})
}

func segmentID(doc string, n int) (out segment.ID) {
	return segment.ID(doc + "#p" + string(rune('a'+n%26)) + string(rune('a'+(n/26)%26)))
}

// The wire carries hashes only — the text itself never reaches the server.
func TestTextStaysOnDevice(t *testing.T) {
	var captured []byte
	backend, engine := newService(t)
	_ = backend
	recording := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		body := make([]byte, r.ContentLength)
		r.Body.Read(body)
		captured = append(captured, body...)
		// Re-dispatch into a real server for a valid response.
		srv, err := NewServer(engine)
		if err != nil {
			t.Error(err)
			return
		}
		r2 := r.Clone(r.Context())
		r2.Body = http.NoBody
		r2.Body = io.NopCloser(bytes.NewReader(body))
		srv.ServeHTTP(w, r2)
	}))
	defer recording.Close()

	dev, err := NewClient(recording.URL, "laptop", fpConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := dev.Observe("wiki", "wiki/x#p0", orgSecret); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(captured), "migration schedule") {
		t.Error("plaintext crossed the wire")
	}
	if !strings.Contains(string(captured), "hashes") {
		t.Error("hashes missing from the wire")
	}
}
