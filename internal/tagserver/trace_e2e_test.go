package tagserver

import (
	"context"
	"net/http"
	"net/http/httptest"
	"net/url"
	"path/filepath"
	"testing"
	"time"

	"github.com/lsds/browserflow/internal/audit"
	"github.com/lsds/browserflow/internal/disclosure"
	"github.com/lsds/browserflow/internal/faultinject"
	"github.com/lsds/browserflow/internal/obs"
	"github.com/lsds/browserflow/internal/policy"
	"github.com/lsds/browserflow/internal/proxy"
	"github.com/lsds/browserflow/internal/replication"
	"github.com/lsds/browserflow/internal/resilience"
	"github.com/lsds/browserflow/internal/store"
	"github.com/lsds/browserflow/internal/tdm"
	"github.com/lsds/browserflow/internal/wal"
)

// traceWorld is one engine stack for the trace E2E test.
type traceWorld struct {
	tracker  *disclosure.Tracker
	registry *tdm.Registry
	engine   *policy.Engine
}

func newTraceWorld(t *testing.T) *traceWorld {
	t.Helper()
	tracker, err := disclosure.NewTracker(disclosure.Params{
		Fingerprint: fpConfig(),
		Tpar:        0.3,
		Tdoc:        0.3,
	})
	if err != nil {
		t.Fatal(err)
	}
	registry := tdm.NewRegistry(audit.NewLog())
	if err := registry.RegisterService("wiki", tdm.NewTagSet("tw"), tdm.NewTagSet("tw")); err != nil {
		t.Fatal(err)
	}
	engine, err := policy.NewEngine(tracker, registry, policy.ModeAdvisory)
	if err != nil {
		t.Fatal(err)
	}
	return &traceWorld{tracker: tracker, registry: registry, engine: engine}
}

// spanNames collects the span names recorded for one trace ID.
func spanNames(o *obs.Obs, trace string) map[string]int {
	names := map[string]int{}
	for _, s := range o.Traces().Query(trace) {
		names[s.Name]++
	}
	return names
}

// TestTraceE2EChaos drives one ClusterClient write through bfproxy's
// forwarding path into a durable primary and out to a streaming replica,
// with a chaos transport injecting a connection error on the first
// attempt. One trace ID must stitch every hop: the client-side retry
// span, the proxy span, the primary's handler + engine + WAL spans, and
// the replica's apply span (carried inside the journalled record).
func TestTraceE2EChaos(t *testing.T) {
	// --- primary: engine + durable journal + replication log + tag API.
	pw := newTraceWorld(t)
	pdir := t.TempDir()
	durable, err := store.OpenDurable(store.DurableOptions{Dir: pdir, Fsync: wal.SyncAlways}, pw.tracker, pw.registry)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { durable.Close() })
	pw.engine.SetJournal(durable)

	pnode, err := replication.NewNode(replication.NodeOptions{
		Role: replication.RolePrimary, TermFile: filepath.Join(pdir, "TERM"),
	})
	if err != nil {
		t.Fatal(err)
	}
	primaryObs := obs.New(nil, 0)
	rsvc := replication.NewService(pnode, replication.PrimaryOptions{MaxWait: time.Second}, t.Logf)
	rsvc.SetObs(primaryObs)
	rsvc.SetPrimary(replication.NewPrimary(pnode, durable, replication.PrimaryOptions{MaxWait: time.Second, Logf: t.Logf}))
	replSrv := httptest.NewServer(rsvc.Handler())
	t.Cleanup(replSrv.Close)

	tagServer, err := NewServer(pw.engine, WithObs(primaryObs), WithDurabilityStats(durable.Stats))
	if err != nil {
		t.Fatal(err)
	}
	tagSrv := httptest.NewServer(tagServer)
	t.Cleanup(tagSrv.Close)

	// --- replica: own engine stack, tailing the primary's WAL.
	rw := newTraceWorld(t)
	rdir := t.TempDir()
	rnode, err := replication.NewNode(replication.NodeOptions{
		Role: replication.RoleReplica, Primary: replSrv.URL, TermFile: filepath.Join(rdir, "TERM"),
	})
	if err != nil {
		t.Fatal(err)
	}
	replicaObs := obs.New(nil, 0)
	replica, err := replication.OpenReplica(rnode, rw.engine, replication.ReplicaOptions{
		Dir:          rdir,
		PollWait:     200 * time.Millisecond,
		RetryBackoff: 20 * time.Millisecond,
		Logf:         t.Logf,
		Obs:          replicaObs,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(replica.Stop)
	replica.Start()

	// --- bfproxy in front of the tag API.
	upstream, err := url.Parse(tagSrv.URL)
	if err != nil {
		t.Fatal(err)
	}
	proxyObs := obs.New(nil, 0)
	fwd, err := proxy.New(proxy.Config{Upstream: upstream, Obs: proxyObs})
	if err != nil {
		t.Fatal(err)
	}
	proxySrv := httptest.NewServer(fwd)
	t.Cleanup(proxySrv.Close)

	// --- client with a chaos transport: the first observe attempt dies
	// with a connection error before anything is sent, forcing the retry
	// layer to re-send (and record a retry span on the trace).
	inj := faultinject.New(http.DefaultTransport, 7)
	inj.AddRule(faultinject.Rule{
		PathPrefix: "/v1/observe", Method: http.MethodPost,
		Kind: faultinject.KindConnError, Times: 1,
	})
	clientObs := obs.New(nil, 0)
	cc, err := NewClusterClient(proxySrv.URL, nil, "dev-e2e", fpConfig(),
		WithTransport(inj),
		WithRetry(resilience.RetryPolicy{
			MaxAttempts: 3,
			BaseDelay:   time.Millisecond,
			Sleep:       func(time.Duration) {},
		}),
	)
	if err != nil {
		t.Fatal(err)
	}

	traceID := clientObs.NewTraceID()
	ctx := obs.WithTrace(context.Background(), traceID, clientObs.Traces())
	if _, err := cc.Observe(ctx, "wiki", "wiki/launch#p0", "the secret launch plan for the atlas project"); err != nil {
		t.Fatalf("observe through proxy: %v", err)
	}
	if got := inj.Attempts("/v1/observe"); got < 2 {
		t.Fatalf("chaos transport saw %d attempts, want >= 2 (one injected failure + retry)", got)
	}

	// --- wait for the replica to apply the journalled observation.
	deadline := time.Now().Add(10 * time.Second)
	for {
		st := replica.Status()
		if st.Connected && st.AppliedRecords > 0 && st.LagRecords == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("replica never caught up: %+v", st)
		}
		time.Sleep(10 * time.Millisecond)
	}

	// --- one trace ID must cover every hop, each span in the ring of the
	// node that did the work.
	client := spanNames(clientObs, traceID)
	if client["resilience.retry"] == 0 {
		t.Errorf("client ring missing resilience.retry span: %v", client)
	}
	prox := spanNames(proxyObs, traceID)
	if prox["proxy.request"] == 0 {
		t.Errorf("proxy ring missing proxy.request span: %v", prox)
	}
	prim := spanNames(primaryObs, traceID)
	for _, want := range []string{"http.observe", "engine.observe", "wal.append"} {
		if prim[want] == 0 {
			t.Errorf("primary ring missing %s span: %v", want, prim)
		}
	}
	repl := spanNames(replicaObs, traceID)
	if repl["replica.apply"] == 0 {
		t.Errorf("replica ring missing replica.apply span: %v", repl)
	}

	// Privacy invariant: no span anywhere may carry the observed text.
	for _, o := range []*obs.Obs{clientObs, proxyObs, primaryObs, replicaObs} {
		for _, s := range o.Traces().Snapshot() {
			for k, v := range s.Attrs {
				if v == "the secret launch plan for the atlas project" {
					t.Fatalf("span %s attr %s leaked monitored text", s.Name, k)
				}
			}
		}
	}

	// The replicated state converged: the replica tracks the segment.
	if got := rw.tracker.Paragraphs().Stats().Segments; got == 0 {
		t.Error("replica applied no segments")
	}
}
