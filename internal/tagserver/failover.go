package tagserver

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"github.com/lsds/browserflow/internal/audit"
	"github.com/lsds/browserflow/internal/fingerprint"
	"github.com/lsds/browserflow/internal/obs"
	"github.com/lsds/browserflow/internal/policy"
	"github.com/lsds/browserflow/internal/resilience"
	"github.com/lsds/browserflow/internal/segment"
	"github.com/lsds/browserflow/internal/tdm"
)

// DegradedTag marks fail-closed block verdicts issued while the tag
// service is unreachable, so users (and audit trails) can tell an outage
// block from a policy block.
const DegradedTag = tdm.Tag("bf:degraded")

// DegradedEvent reports one decision taken without the tag service.
type DegradedEvent struct {
	// Op is the decision point: "observe", "check", or "upload".
	Op string

	// Seg is the involved segment (empty for ad-hoc checks).
	Seg segment.ID

	// Service is the destination or hosting service.
	Service string

	// Mode is the enforcement mode that chose the fallback.
	Mode policy.Mode

	// Err is the failure that triggered degradation (resilience.
	// ErrCircuitOpen when the breaker short-circuited the call).
	Err error

	// Queued reports whether an observation was buffered for replay.
	Queued bool
}

// FailoverConfig configures a FailoverEngine.
type FailoverConfig struct {
	// Client is the connection to the shared tag service (required).
	Client *Client

	// Mode selects the degradation posture: advisory fails open (allow +
	// audit), enforcing and encrypting fail closed for release checks
	// (block) while still allowing local edits.
	Mode policy.Mode

	// Breaker guards the remote path. Nil gets a default breaker
	// (5 consecutive failures, 10s cooldown, single half-open trial).
	Breaker *resilience.Breaker

	// Audit, if set, receives a degraded entry per fallback decision and
	// a recovered entry when the service comes back.
	Audit *audit.Log

	// QueueLimit bounds the observation replay queue (default 1024).
	// When full, new observations are counted as dropped rather than
	// evicting older ones, preserving replay order and exactly-once
	// delivery of everything that was accepted.
	QueueLimit int

	// OnDegraded, if set, observes every fallback decision. It may be
	// called concurrently.
	OnDegraded func(DegradedEvent)

	// ProbeInterval, when positive, starts a background prober that
	// calls Probe while the engine is degraded. Zero leaves probing to
	// the caller (tests drive Probe manually; daemons set an interval).
	ProbeInterval time.Duration

	// CallTimeout bounds each remote call the engine makes (default
	// DefaultClientTimeout; the client's own timeout still applies).
	CallTimeout time.Duration
}

// FailoverStats snapshots a FailoverEngine.
type FailoverStats struct {
	// BreakerState is the guard's current state.
	BreakerState resilience.State

	// QueueLen is the number of buffered observations awaiting replay.
	QueueLen int

	// Degraded counts fallback decisions taken without the service.
	Degraded int64

	// Replayed counts buffered observations delivered after recovery.
	Replayed int64

	// Dropped counts observations lost to a full replay queue.
	Dropped int64

	// Recoveries counts degraded -> healthy transitions.
	Recoveries int64
}

// replayItem is one buffered observation. Only fingerprint hashes are
// held — the text itself is discarded immediately, preserving the
// on-device privacy posture even in the buffer.
type replayItem struct {
	service     string
	seg         segment.ID
	hashes      []uint32
	granularity string
}

// FailoverEngine wraps the remote tag-service client with mode-aware
// graceful degradation. While the circuit breaker is open (or the service
// is failing):
//
//   - local edits are always allowed; their observations are buffered in
//     a replay queue that drains to the server, in order, on recovery;
//   - release checks (CheckText, CheckUpload) fail OPEN in advisory mode
//     (allow + audit a degraded event) and fail CLOSED in enforcing and
//     encrypting modes (block, tagged DegradedTag).
//
// It implements intercept.Engine and is safe for concurrent use.
type FailoverEngine struct {
	cfg     FailoverConfig
	breaker *resilience.Breaker

	mu       sync.Mutex
	queue    []replayItem
	draining bool
	degraded bool

	degradedCount atomic.Int64
	replayed      atomic.Int64
	dropped       atomic.Int64
	recoveries    atomic.Int64

	stopOnce sync.Once
	stop     chan struct{}
	done     chan struct{}
}

// NewFailoverEngine returns a started FailoverEngine.
func NewFailoverEngine(cfg FailoverConfig) (*FailoverEngine, error) {
	if cfg.Client == nil {
		return nil, fmt.Errorf("tagserver: failover Client is required")
	}
	switch cfg.Mode {
	case policy.ModeAdvisory, policy.ModeEnforcing, policy.ModeEncrypting:
	default:
		return nil, fmt.Errorf("tagserver: invalid failover mode %d", int(cfg.Mode))
	}
	if cfg.QueueLimit <= 0 {
		cfg.QueueLimit = 1024
	}
	if cfg.CallTimeout <= 0 {
		cfg.CallTimeout = DefaultClientTimeout
	}
	breaker := cfg.Breaker
	if breaker == nil {
		breaker = resilience.NewBreaker(resilience.BreakerConfig{})
	}
	f := &FailoverEngine{
		cfg:     cfg,
		breaker: breaker,
		stop:    make(chan struct{}),
		done:    make(chan struct{}),
	}
	if cfg.ProbeInterval > 0 {
		go f.prober()
	} else {
		close(f.done)
	}
	return f, nil
}

// Close stops the background prober (if any). Buffered observations stay
// queued; a later Probe from another holder of the breaker cannot drain
// them, so daemons should Close only at shutdown.
func (f *FailoverEngine) Close() {
	f.stopOnce.Do(func() { close(f.stop) })
	<-f.done
}

// Mode reports the enforcement mode.
func (f *FailoverEngine) Mode() policy.Mode { return f.cfg.Mode }

// Breaker returns the guarding circuit breaker.
func (f *FailoverEngine) Breaker() *resilience.Breaker { return f.breaker }

// RegisterMetrics publishes the failover layer's health as gauges in an
// obs registry: the circuit-breaker state (0 closed, 1 open, 2
// half-open), the replay-queue depth, and the degraded/replayed/dropped
// tallies. GaugeFuncs are sampled at scrape time, so no background
// goroutine is needed.
func (f *FailoverEngine) RegisterMetrics(reg *obs.Registry) {
	if reg == nil {
		return
	}
	reg.GaugeFunc("bf_breaker_state",
		"Circuit-breaker state guarding the remote tag service (0 closed, 1 open, 2 half-open).",
		func() float64 { return float64(f.breaker.State()) })
	reg.GaugeFunc("bf_failover_queue_len",
		"Observations buffered for replay while degraded.",
		func() float64 { return float64(f.Stats().QueueLen) })
	reg.GaugeFunc("bf_failover_degraded",
		"Fallback decisions taken without the remote service.",
		func() float64 { return float64(f.degradedCount.Load()) })
	reg.GaugeFunc("bf_failover_replayed",
		"Buffered observations delivered after recovery.",
		func() float64 { return float64(f.replayed.Load()) })
	reg.GaugeFunc("bf_failover_dropped",
		"Observations lost to a full replay queue.",
		func() float64 { return float64(f.dropped.Load()) })
}

// Stats returns a snapshot of the failover counters.
func (f *FailoverEngine) Stats() FailoverStats {
	f.mu.Lock()
	qlen := len(f.queue)
	f.mu.Unlock()
	return FailoverStats{
		BreakerState: f.breaker.State(),
		QueueLen:     qlen,
		Degraded:     f.degradedCount.Load(),
		Replayed:     f.replayed.Load(),
		Dropped:      f.dropped.Load(),
		Recoveries:   f.recoveries.Load(),
	}
}

// ObserveEdit records a paragraph edit, degrading to allow-and-buffer
// when the service is unreachable.
func (f *FailoverEngine) ObserveEdit(seg segment.ID, service, text string) (policy.Verdict, error) {
	return f.observe(seg, service, text, "")
}

// ObserveDocumentEdit records a whole-page observation, degrading to
// allow-and-buffer when the service is unreachable.
func (f *FailoverEngine) ObserveDocumentEdit(doc segment.ID, service, text string) (policy.Verdict, error) {
	return f.observe(doc, service, text, "document")
}

func (f *FailoverEngine) observe(seg segment.ID, service, text, granularity string) (policy.Verdict, error) {
	fp, err := fingerprint.Compute(text, f.cfg.Client.cfg)
	if err != nil {
		return policy.Verdict{}, err
	}
	hashes := fp.Hashes()

	done, allowErr := f.breaker.Allow()
	if allowErr != nil {
		return f.degradeObserve(seg, service, hashes, granularity, allowErr), nil
	}
	ctx, cancel := f.callCtx()
	v, err := f.cfg.Client.ObserveHashes(ctx, service, seg, hashes, granularity)
	cancel()
	if err != nil {
		if IsUnavailable(err) {
			done(false)
			return f.degradeObserve(seg, service, hashes, granularity, err), nil
		}
		done(true) // the service answered; the request was wrong
		return policy.Verdict{}, err
	}
	done(true)
	f.onHealthy()
	return toPolicyVerdict(v, seg, service)
}

// CheckText evaluates ad-hoc text against a destination service,
// degrading to the mode's fail-open/fail-closed default.
func (f *FailoverEngine) CheckText(text, destService string) (policy.Verdict, error) {
	done, allowErr := f.breaker.Allow()
	if allowErr != nil {
		return f.degradeCheck("check", "", destService, allowErr), nil
	}
	ctx, cancel := f.callCtx()
	v, err := f.cfg.Client.CheckCtx(ctx, text, destService)
	cancel()
	if err != nil {
		if IsUnavailable(err) {
			done(false)
			return f.degradeCheck("check", "", destService, err), nil
		}
		done(true)
		return policy.Verdict{}, err
	}
	done(true)
	f.onHealthy()
	return toPolicyVerdict(v, "", destService)
}

// CheckUpload evaluates releasing a tracked segment to a destination,
// degrading to the mode's fail-open/fail-closed default.
func (f *FailoverEngine) CheckUpload(seg segment.ID, destService string) (policy.Verdict, error) {
	done, allowErr := f.breaker.Allow()
	if allowErr != nil {
		return f.degradeCheck("upload", seg, destService, allowErr), nil
	}
	ctx, cancel := f.callCtx()
	v, err := f.cfg.Client.CheckUploadCtx(ctx, seg, destService)
	cancel()
	if err != nil {
		if IsUnavailable(err) {
			done(false)
			return f.degradeCheck("upload", seg, destService, err), nil
		}
		done(true)
		return policy.Verdict{}, err
	}
	done(true)
	f.onHealthy()
	return toPolicyVerdict(v, seg, destService)
}

// Probe performs one health trial against the service. While the breaker
// is open (cooldown running) it returns resilience.ErrCircuitOpen without
// touching the network; in half-open it spends a trial on /healthz, and a
// success closes the breaker and drains the replay queue.
func (f *FailoverEngine) Probe(ctx context.Context) error {
	done, err := f.breaker.Allow()
	if err != nil {
		return err
	}
	if err := f.cfg.Client.Health(ctx); err != nil {
		done(false)
		return err
	}
	done(true)
	f.onHealthy()
	return nil
}

// prober drives half-open trials in the background while degraded.
func (f *FailoverEngine) prober() {
	defer close(f.done)
	ticker := time.NewTicker(f.cfg.ProbeInterval)
	defer ticker.Stop()
	for {
		select {
		case <-f.stop:
			return
		case <-ticker.C:
			if !f.isDegraded() {
				continue
			}
			ctx, cancel := f.callCtx()
			_ = f.Probe(ctx) // outcome is reflected in breaker state
			cancel()
		}
	}
}

func (f *FailoverEngine) callCtx() (context.Context, context.CancelFunc) {
	return context.WithTimeout(context.Background(), f.cfg.CallTimeout)
}

func (f *FailoverEngine) isDegraded() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.degraded
}

// degradeObserve buffers the observation and allows the local edit.
func (f *FailoverEngine) degradeObserve(seg segment.ID, service string, hashes []uint32, granularity string, cause error) policy.Verdict {
	queued := f.enqueue(replayItem{service: service, seg: seg, hashes: hashes, granularity: granularity})
	f.noteDegraded(DegradedEvent{
		Op: "observe", Seg: seg, Service: service, Mode: f.cfg.Mode, Err: cause, Queued: queued,
	})
	return policy.Verdict{
		Decision: policy.DecisionAllow,
		Seg:      seg,
		Service:  service,
		Degraded: true,
	}
}

// degradeCheck substitutes the mode's default for a release check:
// advisory allows (fail open), enforcing/encrypting block (fail closed).
func (f *FailoverEngine) degradeCheck(op string, seg segment.ID, destService string, cause error) policy.Verdict {
	f.noteDegraded(DegradedEvent{
		Op: op, Seg: seg, Service: destService, Mode: f.cfg.Mode, Err: cause,
	})
	v := policy.Verdict{Seg: seg, Service: destService, Degraded: true}
	if f.cfg.Mode == policy.ModeAdvisory {
		v.Decision = policy.DecisionAllow
		return v
	}
	v.Decision = policy.DecisionBlock
	v.Violating = []tdm.Tag{DegradedTag}
	return v
}

// enqueue buffers an observation for replay, reporting whether it was
// accepted (false when the queue is full).
func (f *FailoverEngine) enqueue(item replayItem) bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	if len(f.queue) >= f.cfg.QueueLimit {
		f.dropped.Add(1)
		return false
	}
	f.queue = append(f.queue, item)
	return true
}

// noteDegraded marks the engine degraded and fans the event out to the
// audit log and the OnDegraded hook.
func (f *FailoverEngine) noteDegraded(e DegradedEvent) {
	f.degradedCount.Add(1)
	f.mu.Lock()
	f.degraded = true
	f.mu.Unlock()
	if f.cfg.Audit != nil {
		f.cfg.Audit.Append(audit.Entry{
			User:          f.cfg.Client.device,
			Action:        audit.ActionDegraded,
			Segment:       string(e.Seg),
			Service:       e.Service,
			Justification: fmt.Sprintf("%s: %v", e.Op, e.Err),
		})
	}
	if f.cfg.OnDegraded != nil {
		f.cfg.OnDegraded(e)
	}
}

// onHealthy runs after any successful remote call: if the engine was
// degraded it flips back to healthy and drains the replay queue.
func (f *FailoverEngine) onHealthy() {
	f.mu.Lock()
	wasDegraded := f.degraded
	f.degraded = false
	hasQueue := len(f.queue) > 0
	f.mu.Unlock()
	if wasDegraded {
		f.recoveries.Add(1)
		if f.cfg.Audit != nil {
			f.cfg.Audit.Append(audit.Entry{
				User:          f.cfg.Client.device,
				Action:        audit.ActionRecovered,
				Justification: "tag service reachable again",
			})
		}
	}
	if hasQueue {
		f.drain()
	}
}

// drain replays buffered observations in FIFO order. Each item is removed
// only after the server acknowledged it, and the single-flight guard
// ensures no item is ever sent twice — together: exactly-once delivery of
// every accepted observation. A mid-drain failure leaves the remainder
// queued for the next recovery.
func (f *FailoverEngine) drain() {
	f.mu.Lock()
	if f.draining {
		f.mu.Unlock()
		return
	}
	f.draining = true
	f.mu.Unlock()
	defer func() {
		f.mu.Lock()
		f.draining = false
		f.mu.Unlock()
	}()

	for {
		f.mu.Lock()
		if len(f.queue) == 0 {
			f.mu.Unlock()
			return
		}
		item := f.queue[0]
		f.mu.Unlock()

		done, err := f.breaker.Allow()
		if err != nil {
			return // breaker re-opened; keep the remainder queued
		}
		ctx, cancel := f.callCtx()
		_, err = f.cfg.Client.ObserveHashes(ctx, item.service, item.seg, item.hashes, item.granularity)
		cancel()
		if err != nil {
			if IsUnavailable(err) {
				done(false)
				f.mu.Lock()
				f.degraded = true
				f.mu.Unlock()
				return
			}
			// The service rejected this item outright (e.g. its service
			// was deregistered); drop it rather than wedging the queue.
			done(true)
		} else {
			done(true)
			f.replayed.Add(1)
		}
		f.mu.Lock()
		f.queue = f.queue[1:]
		f.mu.Unlock()
	}
}

// Ensure FailoverEngine satisfies the same surface RemoteEngine does; the
// intercept.Engine interface check lives in the intercept tests to avoid
// an import cycle.
var (
	_ interface {
		ObserveEdit(segment.ID, string, string) (policy.Verdict, error)
		ObserveDocumentEdit(segment.ID, string, string) (policy.Verdict, error)
		CheckText(string, string) (policy.Verdict, error)
		Mode() policy.Mode
	} = (*FailoverEngine)(nil)
)
