package tagserver

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"sync/atomic"
	"time"

	"github.com/lsds/browserflow/internal/fingerprint"
	"github.com/lsds/browserflow/internal/obs"
	"github.com/lsds/browserflow/internal/resilience"
	"github.com/lsds/browserflow/internal/segment"
	"github.com/lsds/browserflow/internal/tdm"
)

// DefaultClientTimeout bounds every request a Client makes unless
// overridden with WithTimeout or WithHTTPClient. A shared tag service on
// the decision path must never hang a device indefinitely.
const DefaultClientTimeout = 5 * time.Second

// Client is one device's connection to the shared tag service. It
// fingerprints text locally (the text never leaves the device) and ships
// only the winnowed hashes.
type Client struct {
	base       string
	device     string
	cfg        fingerprint.Config
	http       *http.Client
	termSource func() uint64
	keySeq     atomic.Int64
	keyEpoch   int64
}

// ClientOption customises a Client.
type ClientOption func(*Client)

// WithTimeout overrides the client's overall per-call timeout (0 disables
// it — not recommended on the decision path).
func WithTimeout(d time.Duration) ClientOption {
	return func(c *Client) { c.http.Timeout = d }
}

// WithHTTPClient replaces the underlying *http.Client wholesale.
func WithHTTPClient(h *http.Client) ClientOption {
	return func(c *Client) {
		if h != nil {
			c.http = h
		}
	}
}

// WithTransport sets the underlying transport; compose resilience
// middleware here (see resilience.Chain).
func WithTransport(rt http.RoundTripper) ClientOption {
	return func(c *Client) { c.http.Transport = rt }
}

// WithRetry wraps the client's transport with retry middleware. Only
// idempotent requests and requests that never reached the server are
// retried; a delivered POST is never replayed.
func WithRetry(policy resilience.RetryPolicy) ClientOption {
	return func(c *Client) {
		c.http.Transport = resilience.NewRetryTransport(c.http.Transport, policy)
	}
}

// WithBreaker wraps the client's transport with circuit-breaker
// middleware.
func WithBreaker(b *resilience.Breaker) ClientOption {
	return func(c *Client) {
		c.http.Transport = resilience.NewBreakerTransport(c.http.Transport, b)
	}
}

// WithTermSource stamps every request with the highest replication term
// the caller has observed (X-BF-Term). A stale primary receiving such a
// request fences itself instead of accepting the write — the client-side
// half of the fencing protocol. The failover layer (ClusterClient)
// installs this automatically.
func WithTermSource(fn func() uint64) ClientOption {
	return func(c *Client) { c.termSource = fn }
}

// NewClient returns a Client for the service at base (e.g.
// "http://tags.corp:7000"), identifying itself as device. By default calls
// time out after DefaultClientTimeout; resilience middleware is opt-in via
// WithRetry/WithBreaker/WithTransport.
func NewClient(base, device string, cfg fingerprint.Config, opts ...ClientOption) (*Client, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if base == "" || device == "" {
		return nil, fmt.Errorf("tagserver: base URL and device are required")
	}
	c := &Client{
		base:     base,
		device:   device,
		cfg:      cfg,
		http:     &http.Client{Timeout: DefaultClientTimeout},
		keyEpoch: time.Now().UnixNano(),
	}
	for _, opt := range opts {
		opt(c)
	}
	return c, nil
}

// Device returns the device identity the client reports to the service.
func (c *Client) Device() string { return c.device }

// FingerprintConfig returns the client's fingerprint configuration.
func (c *Client) FingerprintConfig() fingerprint.Config { return c.cfg }

// UnavailableError marks a failure of the tag service itself — a transport
// error, a 5xx response, or an unreadable/malformed response body — as
// opposed to an application-level rejection (4xx). Failover layers treat
// it as "the service is down", not "the request was wrong".
type UnavailableError struct {
	Op  string
	Err error
}

// Error implements error.
func (e *UnavailableError) Error() string {
	return fmt.Sprintf("tagserver: %s: service unavailable: %v", e.Op, e.Err)
}

// Unwrap exposes the underlying cause.
func (e *UnavailableError) Unwrap() error { return e.Err }

// IsUnavailable reports whether err means the tag service could not
// answer (network failure, 5xx, malformed response, or an open circuit
// breaker).
func IsUnavailable(err error) bool {
	var u *UnavailableError
	if errors.As(err, &u) {
		return true
	}
	return errors.Is(err, resilience.ErrCircuitOpen)
}

// OverloadedError is a 429 from the admission layer: the service is alive
// but shedding load. RetryAfter carries the server's hint on when capacity
// should exist again (0 when the header was absent or malformed). It is
// always wrapped in an UnavailableError, so failover layers treat a shed
// like a transient outage: fail open and replay later.
type OverloadedError struct {
	Op         string
	RetryAfter time.Duration
}

// Error implements error.
func (e *OverloadedError) Error() string {
	return fmt.Sprintf("tagserver: %s: service overloaded, retry after %s", e.Op, e.RetryAfter)
}

// AsOverloaded unwraps an OverloadedError from err, if present.
func AsOverloaded(err error) (*OverloadedError, bool) {
	var oe *OverloadedError
	if errors.As(err, &oe) {
		return oe, true
	}
	return nil, false
}

// NotPrimaryError is a 421 Misdirected Request from a replica or fenced
// ex-primary: the write must be re-sent to Primary (when known). Term is
// the responding node's fencing term; callers fold it into their term
// source so stale primaries get fenced on contact.
type NotPrimaryError struct {
	Op      string
	Primary string
	Term    uint64

	// RingVersion, when non-zero, marks a partition-ownership redirect
	// rather than a replication failover: the responding node IS a healthy
	// primary, it just does not own the segment under ring RingVersion.
	// Retrying against another node cannot help; the caller (the routing
	// tier) must refresh its ring and re-route.
	RingVersion uint64

	// RetryAfter is the server's Retry-After hint (0 when absent): how
	// long to wait before re-dispatching, e.g. while a promotion is in
	// flight.
	RetryAfter time.Duration
}

// Error implements error.
func (e *NotPrimaryError) Error() string {
	if e.Primary == "" {
		return fmt.Sprintf("tagserver: %s: node is not the primary (term %d, primary unknown)", e.Op, e.Term)
	}
	return fmt.Sprintf("tagserver: %s: node is not the primary (term %d); writes go to %s", e.Op, e.Term, e.Primary)
}

// AsNotPrimary unwraps a NotPrimaryError from err, if present.
func AsNotPrimary(err error) (*NotPrimaryError, bool) {
	var np *NotPrimaryError
	if errors.As(err, &np) {
		return np, true
	}
	return nil, false
}

// Verdict is the client-side decision result.
type Verdict struct {
	Decision  string
	Violating []tdm.Tag
	Sources   []SourceDT
}

// Violation reports whether the verdict carries violating tags.
func (v Verdict) Violation() bool { return len(v.Violating) > 0 }

// Observe records the current text of a paragraph with the shared service.
func (c *Client) Observe(service string, seg segment.ID, text string) (Verdict, error) {
	return c.ObserveCtx(context.Background(), service, seg, text)
}

// ObserveCtx is Observe with a caller-controlled context.
func (c *Client) ObserveCtx(ctx context.Context, service string, seg segment.ID, text string) (Verdict, error) {
	fp, err := fingerprint.Compute(text, c.cfg)
	if err != nil {
		return Verdict{}, err
	}
	return c.ObserveHashes(ctx, service, seg, fp.Hashes(), "")
}

// ObserveHashes records a pre-computed fingerprint with the shared
// service. granularity is "" / "paragraph" or "document". It is the
// primitive the failover replay queue drains through.
func (c *Client) ObserveHashes(ctx context.Context, service string, seg segment.ID, hashes []uint32, granularity string) (Verdict, error) {
	return c.postVerdict(ctx, "/v1/observe", ObserveRequest{
		Device:      c.device,
		Service:     service,
		Seg:         seg,
		Hashes:      hashes,
		Granularity: granularity,
	})
}

// BatchItem is one paragraph edit inside a client-side flush: the segment
// and its current text. The text is fingerprinted locally; only hashes go
// on the wire.
type BatchItem struct {
	Seg  segment.ID
	Text string

	// Granularity is "" / "paragraph" or "document".
	Granularity string
}

// ObserveBatch flushes a queue of coalesced edits to the shared service in
// one request — the shape in which a browser extension ships buffered DOM
// mutations. It returns one verdict per item, in order.
func (c *Client) ObserveBatch(service string, items []BatchItem) ([]Verdict, error) {
	return c.ObserveBatchCtx(context.Background(), service, items)
}

// ObserveBatchCtx is ObserveBatch with a caller-controlled context.
func (c *Client) ObserveBatchCtx(ctx context.Context, service string, items []BatchItem) ([]Verdict, error) {
	wire := make([]BatchObserveItem, len(items))
	for i, item := range items {
		fp, err := fingerprint.Compute(item.Text, c.cfg)
		if err != nil {
			return nil, err
		}
		wire[i] = BatchObserveItem{
			Seg:         item.Seg,
			Hashes:      fp.Hashes(),
			Granularity: item.Granularity,
		}
	}
	return c.ObserveHashesBatch(ctx, service, wire)
}

// ObserveHashesBatch flushes pre-fingerprinted observations to the shared
// service's /v1/observe/batch endpoint, amortising transport and decode
// cost across the whole flush.
func (c *Client) ObserveHashesBatch(ctx context.Context, service string, items []BatchObserveItem) ([]Verdict, error) {
	const path = "/v1/observe/batch"
	resp, err := c.post(ctx, path, BatchObserveRequest{
		Device:  c.device,
		Service: service,
		Items:   items,
	})
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, statusError(path, resp)
	}
	var wire BatchObserveResponse
	if err := json.NewDecoder(resp.Body).Decode(&wire); err != nil {
		return nil, &UnavailableError{Op: path, Err: fmt.Errorf("decode response: %w", err)}
	}
	out := make([]Verdict, len(wire.Verdicts))
	for i, v := range wire.Verdicts {
		out[i] = Verdict{Decision: v.Decision, Violating: v.Violating, Sources: v.Sources}
	}
	return out, nil
}

// Check evaluates ad-hoc text against a destination service.
func (c *Client) Check(text, dest string) (Verdict, error) {
	return c.CheckCtx(context.Background(), text, dest)
}

// CheckCtx is Check with a caller-controlled context.
func (c *Client) CheckCtx(ctx context.Context, text, dest string) (Verdict, error) {
	fp, err := fingerprint.Compute(text, c.cfg)
	if err != nil {
		return Verdict{}, err
	}
	return c.postVerdict(ctx, "/v1/check", CheckRequest{
		Device: c.device,
		Dest:   dest,
		Hashes: fp.Hashes(),
	})
}

// CheckUpload evaluates releasing a tracked segment to a destination.
func (c *Client) CheckUpload(seg segment.ID, dest string) (Verdict, error) {
	return c.CheckUploadCtx(context.Background(), seg, dest)
}

// CheckUploadCtx is CheckUpload with a caller-controlled context.
func (c *Client) CheckUploadCtx(ctx context.Context, seg segment.ID, dest string) (Verdict, error) {
	return c.postVerdict(ctx, "/v1/upload", UploadRequest{
		Device: c.device,
		Seg:    seg,
		Dest:   dest,
	})
}

// Suppress declassifies a tag on a segment, audited under user.
func (c *Client) Suppress(user string, seg segment.ID, tag tdm.Tag, justification string) error {
	return c.SuppressCtx(context.Background(), user, seg, tag, justification)
}

// SuppressCtx is Suppress with a caller-controlled context.
func (c *Client) SuppressCtx(ctx context.Context, user string, seg segment.ID, tag tdm.Tag, justification string) error {
	resp, err := c.post(ctx, "/v1/suppress", SuppressRequest{
		User: user, Seg: seg, Tag: tag, Justification: justification,
	})
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return statusError("/v1/suppress", resp)
	}
	return nil
}

// Label fetches a segment's label.
func (c *Client) Label(seg segment.ID) (LabelResponse, error) {
	return c.LabelCtx(context.Background(), seg)
}

// LabelCtx is Label with a caller-controlled context.
func (c *Client) LabelCtx(ctx context.Context, seg segment.ID) (LabelResponse, error) {
	var out LabelResponse
	err := c.getJSON(ctx, "/v1/label?seg="+url.QueryEscape(string(seg)), &out)
	return out, err
}

// Stats fetches the service's database sizes.
func (c *Client) Stats() (StatsResponse, error) {
	return c.StatsCtx(context.Background())
}

// StatsCtx is Stats with a caller-controlled context.
func (c *Client) StatsCtx(ctx context.Context) (StatsResponse, error) {
	var out StatsResponse
	err := c.getJSON(ctx, "/v1/stats", &out)
	return out, err
}

// Health probes the service's /healthz endpoint. A nil return means the
// service answered and is serving; anything else is an UnavailableError
// (or a context error).
func (c *Client) Health(ctx context.Context) error {
	var out HealthResponse
	if err := c.getJSON(ctx, "/healthz", &out); err != nil {
		return err
	}
	if out.Status != "ok" {
		return &UnavailableError{Op: "/healthz", Err: fmt.Errorf("status %q", out.Status)}
	}
	return nil
}

// HealthStatus fetches the full /healthz document, including the node's
// replication role, term and lag. Failover layers use it to discover
// which node is the primary and to bound replica read staleness.
func (c *Client) HealthStatus(ctx context.Context) (HealthResponse, error) {
	var out HealthResponse
	err := c.getJSON(ctx, "/healthz", &out)
	return out, err
}

// getJSON performs a GET and decodes the JSON response, classifying
// transport errors, 5xx statuses, and malformed bodies as unavailability.
func (c *Client) getJSON(ctx context.Context, pathAndQuery string, into interface{}) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+pathAndQuery, nil)
	if err != nil {
		return err
	}
	obs.StampRequest(req)
	resp, err := c.http.Do(req)
	if err != nil {
		return &UnavailableError{Op: pathAndQuery, Err: err}
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return statusError(pathAndQuery, resp)
	}
	if err := json.NewDecoder(resp.Body).Decode(into); err != nil {
		return &UnavailableError{Op: pathAndQuery, Err: fmt.Errorf("decode response: %w", err)}
	}
	return nil
}

func (c *Client) postVerdict(ctx context.Context, path string, req interface{}) (Verdict, error) {
	resp, err := c.post(ctx, path, req)
	if err != nil {
		return Verdict{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return Verdict{}, statusError(path, resp)
	}
	var wire VerdictResponse
	if err := json.NewDecoder(resp.Body).Decode(&wire); err != nil {
		return Verdict{}, &UnavailableError{Op: path, Err: fmt.Errorf("decode response: %w", err)}
	}
	return Verdict{Decision: wire.Decision, Violating: wire.Violating, Sources: wire.Sources}, nil
}

func (c *Client) post(ctx context.Context, path string, req interface{}) (*http.Response, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return nil, err
	}
	// http.NewRequest over a *bytes.Reader sets GetBody, so resilience
	// middleware can replay the body when a retry is safe.
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+path, bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	hreq.Header.Set("Content-Type", "application/json")
	// Every tag-service mutation becomes an idempotent WAL record on the
	// server (re-applying it converges to the same state), so mark the
	// request replay-safe: the retry layer may then re-send a POST even
	// when the first attempt's delivery status is unknown.
	hreq.Header.Set(resilience.IdempotencyKeyHeader, c.idempotencyKey())
	c.stampTerm(hreq)
	// Carry the caller's trace (if any) to the server so its spans —
	// handler, engine observe, WAL append — join the same trace ID.
	obs.StampRequest(hreq)
	resp, err := c.http.Do(hreq)
	if err != nil {
		return nil, &UnavailableError{Op: path, Err: err}
	}
	return resp, nil
}

// idempotencyKey mints a unique per-logical-request key: retries of the
// same request reuse it (the header is set once before the retry layer),
// distinct requests never collide.
func (c *Client) idempotencyKey() string {
	return fmt.Sprintf("%s-%d-%d", c.device, c.keyEpoch, c.keySeq.Add(1))
}

// stampTerm adds the highest observed replication term, when a source is
// installed.
func (c *Client) stampTerm(req *http.Request) {
	if c.termSource != nil {
		if term := c.termSource(); term > 0 {
			req.Header.Set("X-BF-Term", strconv.FormatUint(term, 10))
		}
	}
}

// StatusError is a non-200, non-redirect HTTP status the node produced
// deliberately — typically a 4xx like "unknown segment". It preserves
// the code and body so a relaying tier (the partition router) can
// re-emit the node's answer verbatim instead of rewrapping it.
type StatusError struct {
	Op      string
	Code    int
	Message string
}

func (e *StatusError) Error() string {
	return fmt.Sprintf("tagserver: %s status %d: %s", e.Op, e.Code, e.Message)
}

// statusError converts a non-200 response into an error, classifying 5xx
// as unavailability and 421 as a replication redirect. The caller closes
// the body.
func statusError(path string, resp *http.Response) error {
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<10))
	if resp.StatusCode == http.StatusMisdirectedRequest {
		return notPrimaryError(path, resp, body)
	}
	if resp.StatusCode == http.StatusTooManyRequests {
		hint, _ := resilience.ParseRetryAfter(resp.Header.Get("Retry-After"), time.Now())
		return &UnavailableError{Op: path, Err: &OverloadedError{Op: path, RetryAfter: hint}}
	}
	err := &StatusError{Op: path, Code: resp.StatusCode, Message: string(bytes.TrimSpace(body))}
	if resp.StatusCode >= http.StatusInternalServerError {
		return &UnavailableError{Op: path, Err: err}
	}
	return err
}

// notPrimaryError builds a NotPrimaryError from a 421 response: the JSON
// body's primary/term fields, with the X-BF-Primary / X-BF-Term headers
// as fallback.
func notPrimaryError(path string, resp *http.Response, body []byte) *NotPrimaryError {
	np := &NotPrimaryError{Op: path}
	var wire struct {
		Primary string `json:"primary"`
		Term    uint64 `json:"term"`
	}
	if json.Unmarshal(body, &wire) == nil {
		np.Primary, np.Term = wire.Primary, wire.Term
	}
	if np.Primary == "" {
		np.Primary = resp.Header.Get("X-BF-Primary")
	}
	if np.Term == 0 {
		if term, err := strconv.ParseUint(resp.Header.Get("X-BF-Term"), 10, 64); err == nil {
			np.Term = term
		}
	}
	if v, err := strconv.ParseUint(resp.Header.Get(HeaderRingVersion), 10, 64); err == nil {
		np.RingVersion = v
	}
	// A 421 during promotion may hint when the new primary will be
	// electable; honour it exactly like a 429's backoff hint.
	if hint, ok := resilience.ParseRetryAfter(resp.Header.Get("Retry-After"), time.Now()); ok {
		np.RetryAfter = hint
	}
	return np
}
