package tagserver

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"

	"github.com/lsds/browserflow/internal/fingerprint"
	"github.com/lsds/browserflow/internal/segment"
	"github.com/lsds/browserflow/internal/tdm"
)

// Client is one device's connection to the shared tag service. It
// fingerprints text locally (the text never leaves the device) and ships
// only the winnowed hashes.
type Client struct {
	base   string
	device string
	cfg    fingerprint.Config
	http   *http.Client
}

// NewClient returns a Client for the service at base (e.g.
// "http://tags.corp:7000"), identifying itself as device.
func NewClient(base, device string, cfg fingerprint.Config) (*Client, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if base == "" || device == "" {
		return nil, fmt.Errorf("tagserver: base URL and device are required")
	}
	return &Client{base: base, device: device, cfg: cfg, http: &http.Client{}}, nil
}

// Verdict is the client-side decision result.
type Verdict struct {
	Decision  string
	Violating []tdm.Tag
	Sources   []SourceDT
}

// Violation reports whether the verdict carries violating tags.
func (v Verdict) Violation() bool { return len(v.Violating) > 0 }

// Observe records the current text of a paragraph with the shared service.
func (c *Client) Observe(service string, seg segment.ID, text string) (Verdict, error) {
	fp, err := fingerprint.Compute(text, c.cfg)
	if err != nil {
		return Verdict{}, err
	}
	return c.postVerdict("/v1/observe", ObserveRequest{
		Device:  c.device,
		Service: service,
		Seg:     seg,
		Hashes:  fp.Hashes(),
	})
}

// Check evaluates ad-hoc text against a destination service.
func (c *Client) Check(text, dest string) (Verdict, error) {
	fp, err := fingerprint.Compute(text, c.cfg)
	if err != nil {
		return Verdict{}, err
	}
	return c.postVerdict("/v1/check", CheckRequest{
		Device: c.device,
		Dest:   dest,
		Hashes: fp.Hashes(),
	})
}

// CheckUpload evaluates releasing a tracked segment to a destination.
func (c *Client) CheckUpload(seg segment.ID, dest string) (Verdict, error) {
	return c.postVerdict("/v1/upload", UploadRequest{
		Device: c.device,
		Seg:    seg,
		Dest:   dest,
	})
}

// Suppress declassifies a tag on a segment, audited under user.
func (c *Client) Suppress(user string, seg segment.ID, tag tdm.Tag, justification string) error {
	resp, err := c.post("/v1/suppress", SuppressRequest{
		User: user, Seg: seg, Tag: tag, Justification: justification,
	})
	if err != nil {
		return err
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("tagserver: suppress status %d", resp.StatusCode)
	}
	return nil
}

// Label fetches a segment's label.
func (c *Client) Label(seg segment.ID) (LabelResponse, error) {
	resp, err := c.http.Get(c.base + "/v1/label?seg=" + url.QueryEscape(string(seg)))
	if err != nil {
		return LabelResponse{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return LabelResponse{}, fmt.Errorf("tagserver: label status %d", resp.StatusCode)
	}
	var out LabelResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return LabelResponse{}, err
	}
	return out, nil
}

// Stats fetches the service's database sizes.
func (c *Client) Stats() (StatsResponse, error) {
	resp, err := c.http.Get(c.base + "/v1/stats")
	if err != nil {
		return StatsResponse{}, err
	}
	defer resp.Body.Close()
	var out StatsResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return StatsResponse{}, err
	}
	return out, nil
}

func (c *Client) postVerdict(path string, req interface{}) (Verdict, error) {
	resp, err := c.post(path, req)
	if err != nil {
		return Verdict{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		return Verdict{}, fmt.Errorf("tagserver: %s status %d: %s", path, resp.StatusCode, bytes.TrimSpace(body))
	}
	var wire VerdictResponse
	if err := json.NewDecoder(resp.Body).Decode(&wire); err != nil {
		return Verdict{}, err
	}
	return Verdict{Decision: wire.Decision, Violating: wire.Violating, Sources: wire.Sources}, nil
}

func (c *Client) post(path string, req interface{}) (*http.Response, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return nil, err
	}
	resp, err := c.http.Post(c.base+path, "application/json", bytes.NewReader(body))
	if err != nil {
		return nil, fmt.Errorf("tagserver: %s: %w", path, err)
	}
	return resp, nil
}
