// partition.go — the tag service's partitioned-cluster surface. In a
// partitioned deployment every node owns one contiguous partition-key
// range (segment.Key hashes), and the routing tier (bfproxy -ring-file)
// scatter-gathers cross-partition disclosure queries:
//
//	POST /v1/part/observe  phase 1 (no body.resolved): cache probe at the
//	                       segment's home; a hit answers the verdict, a
//	                       miss returns this partition's scatter
//	                       contribution. phase 2 (body.resolved set):
//	                       apply the router-merged result.
//	POST /v1/part/query    read-only scatter contribution (checks, and
//	                       the remote half of an observe resolution).
//	                       Primary-only despite being read-only: the
//	                       replication guard 421s it on replicas and
//	                       fenced ex-primaries, whose lagging state
//	                       could hide the authoritative holder.
//	POST /v1/part/check    evaluate a release check from router-resolved
//	                       sources and implicit tags.
//	GET/POST /v1/part/ring fetch / install the encoded ring config.
//	POST /v1/part/prune    drop a key range after a split moves it.
//
// A mutation for a segment this node does not own is answered 421 with
// X-BF-Ring-Version, so a router holding a stale ring refreshes and
// re-dispatches instead of writing to the wrong partition.
package tagserver

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"

	"github.com/lsds/browserflow/internal/disclosure"
	"github.com/lsds/browserflow/internal/fingerprint"
	"github.com/lsds/browserflow/internal/index"
	"github.com/lsds/browserflow/internal/obs"
	"github.com/lsds/browserflow/internal/policy"
	"github.com/lsds/browserflow/internal/segment"
)

// HeaderRingVersion carries the responding node's ring version on
// partition-ownership 421s and on /v1/part/ring responses, so routers
// know whether their ring is stale before re-fetching it.
const HeaderRingVersion = "X-BF-Ring-Version"

// PartitionState is the node-side view of the cluster ring the server
// consults for ownership and health. It is implemented by bftagd (which
// owns the ring file) so the tagserver package stays decoupled from the
// ring codec.
type PartitionState interface {
	// ID is this node's partition id.
	ID() string

	// RingVersion is the installed ring's version.
	RingVersion() uint64

	// Owns reports whether seg's partition key falls in this partition's
	// range under the installed ring.
	Owns(seg segment.ID) bool

	// KeyRange is this partition's inclusive partition-key range.
	KeyRange() (lo, hi uint32)

	// Sole reports whether the ring holds exactly one partition, in which
	// case observes complete locally in one round trip.
	Sole() bool

	// Resharding reports whether a split is currently moving a slice of
	// this partition's range.
	Resharding() bool

	// RingBytes returns the installed ring in its encoded (BFRING01)
	// form, nil when none is installed.
	RingBytes() []byte

	// SetRing validates and installs an encoded ring, returning the new
	// version. Version-monotone: an older or equal version is rejected.
	SetRing(encoded []byte) (uint64, error)
}

// WithPartition installs the node's partition state, enabling the
// /v1/part/* surface and partition-aware ownership checks on the
// classic mutation endpoints.
func WithPartition(ps PartitionState) ServerOption {
	return func(s *Server) { s.partition = ps }
}

// HealthPartition is the /healthz view of the node's partition.
type HealthPartition struct {
	ID          string `json:"id"`
	RingVersion uint64 `json:"ringVersion"`
	RangeLo     uint32 `json:"rangeLo"`
	RangeHi     uint32 `json:"rangeHi"`
	Resharding  bool   `json:"resharding"`
}

// --- wire types -------------------------------------------------------------

// PartOldestRef names the partition-local oldest holder of one query
// hash (I indexes the request's hash list).
type PartOldestRef struct {
	I   int        `json:"i"`
	Seg segment.ID `json:"seg"`
	Seq uint64     `json:"seq"`
}

// PartCandWire carries one candidate's evaluation facts: fingerprint
// length, disclosure threshold, the hash indices it holds, and its
// explicit tags.
type PartCandWire struct {
	Seg  segment.ID `json:"seg"`
	Len  int        `json:"len"`
	Thr  float64    `json:"thr"`
	Ov   []int      `json:"ov,omitempty"`
	Tags []string   `json:"tags,omitempty"`
}

// PartResolveWire is one partition's scatter-gather contribution.
type PartResolveWire struct {
	Clock  uint64          `json:"clock"`
	Oldest []PartOldestRef `json:"oldest,omitempty"`
	Cands  []PartCandWire  `json:"cands,omitempty"`
}

// PartSource is one resolved disclosure source on the wire (threshold
// included so the home partition can seed its decision cache).
type PartSource struct {
	Seg        segment.ID `json:"seg"`
	Disclosure float64    `json:"disclosure"`
	Threshold  float64    `json:"threshold"`
}

// PartResolved is the router-merged disclosure result a phase-2 observe
// applies.
type PartResolved struct {
	Sources []PartSource            `json:"sources"`
	Tags    map[segment.ID][]string `json:"tags,omitempty"`
}

// PartObserveRequest is a routed observation. Clock is the router's
// Lamport stamp (0 lets the home partition self-stamp). Resolved nil
// means phase 1; set means phase 2.
type PartObserveRequest struct {
	Device      string        `json:"device,omitempty"`
	Service     string        `json:"service"`
	Seg         segment.ID    `json:"seg"`
	Hashes      []uint32      `json:"hashes"`
	Granularity string        `json:"granularity,omitempty"`
	Clock       uint64        `json:"clock,omitempty"`
	Resolved    *PartResolved `json:"resolved,omitempty"`
}

// PartObserveResponse carries either a final verdict (phase 1 hit, sole
// mode, or phase 2) or the home partition's scatter contribution for
// the router to merge.
type PartObserveResponse struct {
	Verdict *VerdictResponse `json:"verdict,omitempty"`
	Resolve *PartResolveWire `json:"resolve,omitempty"`
}

// PartQueryRequest asks a partition for its scatter contribution.
type PartQueryRequest struct {
	Hashes      []uint32 `json:"hashes"`
	Granularity string   `json:"granularity,omitempty"`
}

// PartCheckRequest evaluates a release check from router-resolved
// sources and the scatter-computed implicit tag union.
type PartCheckRequest struct {
	Device   string       `json:"device,omitempty"`
	Dest     string       `json:"dest"`
	Sources  []PartSource `json:"sources,omitempty"`
	Implicit []string     `json:"implicit,omitempty"`
}

// PartPruneRequest drops the inclusive key range after a split.
type PartPruneRequest struct {
	Lo uint32 `json:"lo"`
	Hi uint32 `json:"hi"`
}

// PartPruneResponse reports how many segments the prune removed.
type PartPruneResponse struct {
	Removed int `json:"removed"`
}

// PartRingResponse acknowledges a ring install.
type PartRingResponse struct {
	Version uint64 `json:"version"`
}

// --- wire conversions -------------------------------------------------------

// toWireResolve converts an engine scatter contribution to its wire form.
func toWireResolve(r policy.PartResolve) *PartResolveWire {
	out := &PartResolveWire{Clock: r.Clock}
	for _, o := range r.Oldest {
		out.Oldest = append(out.Oldest, PartOldestRef{I: o.Idx, Seg: o.Seg, Seq: o.Seq})
	}
	for _, c := range r.Cands {
		out.Cands = append(out.Cands, PartCandWire{Seg: c.Seg, Len: c.Len, Thr: c.Threshold, Ov: c.Overlap, Tags: c.Tags})
	}
	return out
}

// FromWireResolve converts a wire scatter contribution back to engine
// form — the router's side of the conversion.
func FromWireResolve(r *PartResolveWire) policy.PartResolve {
	out := policy.PartResolve{Clock: r.Clock}
	for _, o := range r.Oldest {
		out.Oldest = append(out.Oldest, index.OldestRef{Idx: o.I, Seg: o.Seg, Seq: o.Seq})
	}
	for _, c := range r.Cands {
		out.Cands = append(out.Cands, policy.PartCand{Seg: c.Seg, Len: c.Len, Threshold: c.Thr, Overlap: c.Ov, Tags: c.Tags})
	}
	return out
}

// FromWireResolved converts a router-merged result to engine form.
func FromWireResolved(r *PartResolved) ([]disclosure.Source, map[segment.ID][]string) {
	var sources []disclosure.Source
	for _, s := range r.Sources {
		sources = append(sources, disclosure.Source{Seg: s.Seg, Disclosure: s.Disclosure, Threshold: s.Threshold})
	}
	return sources, r.Tags
}

// ToWireSources converts resolved sources to wire form.
func ToWireSources(sources []disclosure.Source) []PartSource {
	out := make([]PartSource, 0, len(sources))
	for _, s := range sources {
		out = append(out, PartSource{Seg: s.Seg, Disclosure: s.Disclosure, Threshold: s.Threshold})
	}
	return out
}

// --- server handlers --------------------------------------------------------

// registerPartitionHandlers mounts the /v1/part/* surface (no-op when
// the server runs unpartitioned).
func (s *Server) registerPartitionHandlers(handle func(path, endpoint string, h http.HandlerFunc)) {
	if s.partition == nil {
		return
	}
	handle("/v1/part/observe", "part_observe", s.handlePartObserve)
	handle("/v1/part/query", "part_query", s.handlePartQuery)
	handle("/v1/part/check", "part_check", s.handlePartCheck)
	handle("/v1/part/ring", "part_ring", s.handlePartRing)
	handle("/v1/part/prune", "part_prune", s.handlePartPrune)
}

// writeNotOwner answers a mutation for a segment this partition does not
// own: 421 plus the ring version, so a router with a stale ring fetches
// the fresh one and re-dispatches.
func (s *Server) writeNotOwner(w http.ResponseWriter, seg segment.ID) {
	ps := s.partition
	w.Header().Set(HeaderRingVersion, strconv.FormatUint(ps.RingVersion(), 10))
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusMisdirectedRequest)
	json.NewEncoder(w).Encode(map[string]interface{}{ //nolint:errcheck
		"error":       fmt.Sprintf("partition %s does not own segment %q (ring v%d)", ps.ID(), seg, ps.RingVersion()),
		"ringVersion": ps.RingVersion(),
	})
}

// parseGranularity maps the wire granularity to the engine's.
func parseGranularity(v string) (segment.Granularity, bool) {
	switch v {
	case "", "paragraph":
		return segment.GranularityParagraph, true
	case "document":
		return segment.GranularityDocument, true
	default:
		return segment.GranularityParagraph, false
	}
}

func (s *Server) handlePartObserve(w http.ResponseWriter, r *http.Request) {
	var req PartObserveRequest
	if !s.decodePost(w, r, &req) {
		return
	}
	if req.Seg == "" || req.Service == "" {
		http.Error(w, "seg and service required", http.StatusBadRequest)
		return
	}
	gran, ok := parseGranularity(req.Granularity)
	if !ok {
		http.Error(w, "unknown granularity", http.StatusBadRequest)
		return
	}
	if !s.partition.Owns(req.Seg) {
		s.writeNotOwner(w, req.Seg)
		return
	}
	fp := fingerprint.FromHashes(req.Hashes)
	if req.Resolved != nil {
		sources, tags := FromWireResolved(req.Resolved)
		verdict, err := s.engine.ObserveResolvedFPCtx(r.Context(), req.Seg, req.Service, fp, gran, req.Clock, sources, tags)
		if err != nil {
			s.writeEngineError(w, err)
			return
		}
		s.observes.Add(1)
		s.countVerdict(verdict)
		vr := verdictResponse(verdict)
		writeJSON(w, PartObserveResponse{Verdict: &vr})
		return
	}
	if s.partition.Sole() {
		verdict, err := s.engine.ObserveSoleFPCtx(r.Context(), req.Seg, req.Service, fp, gran, req.Clock)
		if err != nil {
			s.writeEngineError(w, err)
			return
		}
		s.observes.Add(1)
		s.countVerdict(verdict)
		vr := verdictResponse(verdict)
		writeJSON(w, PartObserveResponse{Verdict: &vr})
		return
	}
	verdict, resolve, done, err := s.engine.ObservePart(r.Context(), req.Seg, req.Service, fp, gran, req.Clock)
	if err != nil {
		s.writeEngineError(w, err)
		return
	}
	if done {
		s.observes.Add(1)
		s.countVerdict(verdict)
		vr := verdictResponse(verdict)
		writeJSON(w, PartObserveResponse{Verdict: &vr})
		return
	}
	writeJSON(w, PartObserveResponse{Resolve: toWireResolve(resolve)})
}

func (s *Server) handlePartQuery(w http.ResponseWriter, r *http.Request) {
	var req PartQueryRequest
	if !s.decodePost(w, r, &req) {
		return
	}
	gran, ok := parseGranularity(req.Granularity)
	if !ok {
		http.Error(w, "unknown granularity", http.StatusBadRequest)
		return
	}
	writeJSON(w, toWireResolve(s.engine.PartQuery(req.Hashes, gran)))
}

func (s *Server) handlePartCheck(w http.ResponseWriter, r *http.Request) {
	var req PartCheckRequest
	if !s.decodePost(w, r, &req) {
		return
	}
	if req.Dest == "" {
		http.Error(w, "dest required", http.StatusBadRequest)
		return
	}
	sources := make([]disclosure.Source, 0, len(req.Sources))
	for _, src := range req.Sources {
		sources = append(sources, disclosure.Source{Seg: src.Seg, Disclosure: src.Disclosure, Threshold: src.Threshold})
	}
	verdict, err := s.engine.CheckResolved(req.Dest, sources, req.Implicit)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	s.checks.Add(1)
	s.countVerdict(verdict)
	writeVerdict(w, verdict)
}

// handlePartRing serves (GET) and installs (POST) the encoded ring. The
// POST side is deliberately outside the replication guard: a ring flip
// must reach replicas and fenced ex-primaries too, or they would keep
// answering ownership checks against a stale ring after promotion.
func (s *Server) handlePartRing(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodGet:
		rb := s.partition.RingBytes()
		if rb == nil {
			http.Error(w, "no ring installed", http.StatusNotFound)
			return
		}
		w.Header().Set(HeaderRingVersion, strconv.FormatUint(s.partition.RingVersion(), 10))
		w.Header().Set("Content-Type", "application/octet-stream")
		w.Write(rb) //nolint:errcheck
	case http.MethodPost:
		body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, s.maxBody))
		if err != nil {
			http.Error(w, "read ring body: "+err.Error(), http.StatusBadRequest)
			return
		}
		version, err := s.partition.SetRing(body)
		if err != nil {
			http.Error(w, "install ring: "+err.Error(), http.StatusBadRequest)
			return
		}
		w.Header().Set(HeaderRingVersion, strconv.FormatUint(version, 10))
		writeJSON(w, PartRingResponse{Version: version})
	default:
		http.Error(w, "GET or POST only", http.StatusMethodNotAllowed)
	}
}

func (s *Server) handlePartPrune(w http.ResponseWriter, r *http.Request) {
	var req PartPruneRequest
	if !s.decodePost(w, r, &req) {
		return
	}
	if req.Lo > req.Hi {
		http.Error(w, "lo must be <= hi", http.StatusBadRequest)
		return
	}
	removed, err := s.engine.PruneRange(r.Context(), req.Lo, req.Hi)
	if err != nil {
		s.writeEngineError(w, err)
		return
	}
	writeJSON(w, PartPruneResponse{Removed: removed})
}

// --- client methods ---------------------------------------------------------

// PartObserve sends a routed observation (phase 1 when resolved is nil,
// phase 2 otherwise). Exactly one of the response's Verdict / Resolve is
// set on success.
func (c *Client) PartObserve(ctx context.Context, service string, seg segment.ID, hashes []uint32, granularity string, clock uint64, resolved *PartResolved) (PartObserveResponse, error) {
	const path = "/v1/part/observe"
	resp, err := c.post(ctx, path, PartObserveRequest{
		Device:      c.device,
		Service:     service,
		Seg:         seg,
		Hashes:      hashes,
		Granularity: granularity,
		Clock:       clock,
		Resolved:    resolved,
	})
	if err != nil {
		return PartObserveResponse{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return PartObserveResponse{}, statusError(path, resp)
	}
	var out PartObserveResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return PartObserveResponse{}, &UnavailableError{Op: path, Err: fmt.Errorf("decode response: %w", err)}
	}
	if out.Verdict == nil && out.Resolve == nil {
		return PartObserveResponse{}, &UnavailableError{Op: path, Err: fmt.Errorf("response carries neither verdict nor resolve")}
	}
	return out, nil
}

// PartQuery fetches a partition's scatter contribution for hashes.
func (c *Client) PartQuery(ctx context.Context, hashes []uint32, granularity string) (PartResolveWire, error) {
	const path = "/v1/part/query"
	resp, err := c.post(ctx, path, PartQueryRequest{Hashes: hashes, Granularity: granularity})
	if err != nil {
		return PartResolveWire{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return PartResolveWire{}, statusError(path, resp)
	}
	var out PartResolveWire
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return PartResolveWire{}, &UnavailableError{Op: path, Err: fmt.Errorf("decode response: %w", err)}
	}
	return out, nil
}

// PartCheck evaluates a release check from resolved sources and implicit
// tags.
func (c *Client) PartCheck(ctx context.Context, dest string, sources []PartSource, implicit []string) (Verdict, error) {
	return c.postVerdict(ctx, "/v1/part/check", PartCheckRequest{
		Device:   c.device,
		Dest:     dest,
		Sources:  sources,
		Implicit: implicit,
	})
}

// PartRing fetches the node's encoded ring and its version.
func (c *Client) PartRing(ctx context.Context) ([]byte, uint64, error) {
	const path = "/v1/part/ring"
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+path, nil)
	if err != nil {
		return nil, 0, err
	}
	obs.StampRequest(req)
	resp, err := c.http.Do(req)
	if err != nil {
		return nil, 0, &UnavailableError{Op: path, Err: err}
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, 0, statusError(path, resp)
	}
	body, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if err != nil {
		return nil, 0, &UnavailableError{Op: path, Err: err}
	}
	version, _ := strconv.ParseUint(resp.Header.Get(HeaderRingVersion), 10, 64)
	return body, version, nil
}

// PartSetRing installs an encoded ring on the node, returning the
// installed version.
func (c *Client) PartSetRing(ctx context.Context, encoded []byte) (uint64, error) {
	const path = "/v1/part/ring"
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+path, bytes.NewReader(encoded))
	if err != nil {
		return 0, err
	}
	req.Header.Set("Content-Type", "application/octet-stream")
	obs.StampRequest(req)
	resp, err := c.http.Do(req)
	if err != nil {
		return 0, &UnavailableError{Op: path, Err: err}
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return 0, statusError(path, resp)
	}
	var out PartRingResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return 0, &UnavailableError{Op: path, Err: fmt.Errorf("decode response: %w", err)}
	}
	return out.Version, nil
}

// PartPrune drops the inclusive key range [lo, hi] on the node.
func (c *Client) PartPrune(ctx context.Context, lo, hi uint32) (int, error) {
	const path = "/v1/part/prune"
	resp, err := c.post(ctx, path, PartPruneRequest{Lo: lo, Hi: hi})
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return 0, statusError(path, resp)
	}
	var out PartPruneResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return 0, &UnavailableError{Op: path, Err: fmt.Errorf("decode response: %w", err)}
	}
	return out.Removed, nil
}
