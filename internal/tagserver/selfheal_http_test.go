package tagserver

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"github.com/lsds/browserflow/internal/faultinject"
	"github.com/lsds/browserflow/internal/obs"
	"github.com/lsds/browserflow/internal/store"
	"github.com/lsds/browserflow/internal/wal"
)

// postObserve sends one observe request and returns the response.
func postObserve(t *testing.T, base string) *http.Response {
	t.Helper()
	body, _ := json.Marshal(ObserveRequest{Seg: "wiki/a#p0", Service: "wiki", Hashes: []uint32{1, 2, 3}})
	resp, err := http.Post(base+"/v1/observe", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

// TestDegradedDiskAnswers503WithRetryAfter: a fail-closed node whose disk
// stops accepting writes must answer observes with 503 + Retry-After (the
// probe cadence) and expose the degradation on /healthz and /metrics —
// and go back to 200 once the disk heals.
func TestDegradedDiskAnswers503WithRetryAfter(t *testing.T) {
	w := newTraceWorld(t)
	fs := faultinject.NewMemFS(42)
	durable, err := store.OpenDurable(store.DurableOptions{
		Dir:        "/data",
		FS:         fs,
		Fsync:      wal.SyncAlways,
		ProbeEvery: 7 * time.Second, // manual recovery below; no background flapping
	}, w.tracker, w.registry)
	if err != nil {
		t.Fatal(err)
	}
	defer durable.Close()
	w.engine.SetJournal(durable)

	server, err := NewServer(w.engine, WithDurabilityStats(durable.Stats))
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(server)
	defer srv.Close()

	// Healthy baseline.
	resp := postObserve(t, srv.URL)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthy observe: status %d", resp.StatusCode)
	}

	// Kill the disk. The next journalled mutation degrades the node.
	fs.FailWritesAfter(0)
	resp = postObserve(t, srv.URL)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("degraded observe: status %d, want 503", resp.StatusCode)
	}
	if got := resp.Header.Get("Retry-After"); got != "7" {
		t.Fatalf("Retry-After = %q, want %q (the probe cadence)", got, "7")
	}

	// Degradation is visible on /healthz...
	health := getHealth(t, srv.URL)
	if health.Storage == nil {
		t.Fatal("healthz missing storage block")
	}
	if !health.Storage.DiskDegraded || health.Storage.DegradedCause != "eio" {
		t.Fatalf("storage block = %+v, want DiskDegraded with cause eio", health.Storage)
	}
	// ...and on /metrics.
	metrics := getBody(t, srv.URL, "/v1/metrics")
	if !strings.Contains(metrics, "browserflow_disk_degraded 1") {
		t.Error("metrics missing browserflow_disk_degraded 1")
	}

	// Heal the disk; recovery re-admits writes.
	fs.ClearWriteError()
	if ok, err := durable.ProbeRecover(); !ok {
		t.Fatalf("probe recover: %v", err)
	}
	resp = postObserve(t, srv.URL)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("recovered observe: status %d", resp.StatusCode)
	}
	metrics = getBody(t, srv.URL, "/v1/metrics")
	if !strings.Contains(metrics, "browserflow_disk_degraded 0") {
		t.Error("metrics still report browserflow_disk_degraded 1 after recovery")
	}
	if !strings.Contains(metrics, "browserflow_disk_recoveries_total 1") {
		t.Error("metrics missing browserflow_disk_recoveries_total 1")
	}
}

// TestHealthzStorageBlockAndScrubMetrics: the storage block reports scrub
// freshness and quarantine counts, and the bf_scrub_* obs gauges appear on
// /v1/metrics.
func TestHealthzStorageBlockAndScrubMetrics(t *testing.T) {
	w := newTraceWorld(t)
	fs := faultinject.NewMemFS(42)
	durable, err := store.OpenDurable(store.DurableOptions{
		Dir:   "/data",
		FS:    fs,
		Fsync: wal.SyncAlways,
	}, w.tracker, w.registry)
	if err != nil {
		t.Fatal(err)
	}
	defer durable.Close()
	w.engine.SetJournal(durable)

	o := obs.New(nil, 0)
	server, err := NewServer(w.engine, WithObs(o), WithDurabilityStats(durable.Stats))
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(server)
	defer srv.Close()

	// Seal a segment so the scrub pass has frames to verify, then scrub.
	if _, err := w.engine.ObserveEdit("wiki/a#p0", "wiki", "launch codes and rollout schedule for atlas"); err != nil {
		t.Fatal(err)
	}
	if _, err := durable.WAL().Rotate(); err != nil {
		t.Fatal(err)
	}
	if n, err := durable.ScrubPass(); n != 0 || err != nil {
		t.Fatalf("scrub pass: corruptions=%d err=%v", n, err)
	}

	health := getHealth(t, srv.URL)
	if health.Storage == nil {
		t.Fatal("healthz missing storage block")
	}
	st := health.Storage
	if st.ScrubPasses != 1 {
		t.Errorf("ScrubPasses = %d, want 1", st.ScrubPasses)
	}
	if st.FramesVerified == 0 {
		t.Error("FramesVerified = 0 after scrubbing a sealed segment")
	}
	if st.LastScrubAge == "" {
		t.Error("LastScrubAge empty after a pass")
	} else if _, err := time.ParseDuration(st.LastScrubAge); err != nil {
		t.Errorf("LastScrubAge %q is not a duration: %v", st.LastScrubAge, err)
	}
	if st.QuarantinedFiles != 0 || st.DiskDegraded {
		t.Errorf("clean node reports quarantine/degradation: %+v", st)
	}

	metrics := getBody(t, srv.URL, "/v1/metrics")
	for _, want := range []string{
		"bf_scrub_frames_verified_total",
		"bf_scrub_corruptions_found_total 0",
		"bf_scrub_quarantines_total 0",
		"bf_scrub_last_pass_age_seconds",
		"bf_quarantined_files 0",
		"bf_disk_degraded 0",
		"browserflow_scrub_passes_total 1",
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
}
