package tagserver

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/lsds/browserflow/internal/admission"
	"github.com/lsds/browserflow/internal/audit"
	"github.com/lsds/browserflow/internal/disclosure"
	"github.com/lsds/browserflow/internal/fingerprint"
	"github.com/lsds/browserflow/internal/policy"
	"github.com/lsds/browserflow/internal/segment"
	"github.com/lsds/browserflow/internal/tdm"
)

// wedgedEngine blocks every observe until its gate closes, wedging an
// admission pipeline's workers so tests can saturate the queues.
type wedgedEngine struct {
	gate chan struct{}
	once sync.Once
}

func (e *wedgedEngine) wait() { <-e.gate }

func (e *wedgedEngine) release() { e.once.Do(func() { close(e.gate) }) }

func (e *wedgedEngine) ObserveEditFPCtx(ctx context.Context, seg segment.ID, service string, fp *fingerprint.Fingerprint) (policy.Verdict, error) {
	e.wait()
	return policy.Verdict{Decision: policy.DecisionAllow, Seg: seg, Service: service}, nil
}

func (e *wedgedEngine) ObserveDocumentEditFPCtx(ctx context.Context, doc segment.ID, service string, fp *fingerprint.Fingerprint) (policy.Verdict, error) {
	e.wait()
	return policy.Verdict{Decision: policy.DecisionAllow, Seg: doc, Service: service}, nil
}

func (e *wedgedEngine) ObserveBatchFPCtx(ctx context.Context, service string, items []disclosure.BatchObservation) ([]policy.Verdict, error) {
	e.wait()
	out := make([]policy.Verdict, len(items))
	for i, it := range items {
		out[i] = policy.Verdict{Decision: policy.DecisionAllow, Seg: it.Seg, Service: service}
	}
	return out, nil
}

// TestControlPlaneLiveUnderSaturation wedges the admission workers, fills
// the interactive queue to capacity, and asserts the server's control
// plane stays live: /healthz and /v1/metrics answer promptly (reporting
// the saturation), and further observes are shed with an immediate 429 +
// Retry-After instead of queueing behind the backlog.
func TestControlPlaneLiveUnderSaturation(t *testing.T) {
	wedged := &wedgedEngine{gate: make(chan struct{})}
	pipeline, err := admission.New(wedged, admission.Config{
		InteractiveQueue: 4,
		BulkQueue:        2,
		Workers:          1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		wedged.release()
		pipeline.Close(context.Background())
	}()

	tracker, err := disclosure.NewTracker(disclosure.Params{
		Fingerprint: fpConfig(),
		Tpar:        0.5,
		Tdoc:        0.5,
	})
	if err != nil {
		t.Fatal(err)
	}
	registry := tdm.NewRegistry(audit.NewLog())
	if err := registry.RegisterService("docs", tdm.NewTagSet(), tdm.NewTagSet()); err != nil {
		t.Fatal(err)
	}
	engine, err := policy.NewEngine(tracker, registry, policy.ModeEnforcing)
	if err != nil {
		t.Fatal(err)
	}
	server, err := NewServer(engine, WithAdmission(pipeline))
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(server)
	defer srv.Close()

	observe := func(seg string) *http.Response {
		body, _ := json.Marshal(ObserveRequest{
			Service: "docs",
			Seg:     segment.ID(seg),
			Hashes:  []uint32{1, 2, 3},
		})
		resp, err := http.Post(srv.URL+"/v1/observe", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		return resp
	}

	// One observe wedges the worker; four more fill the queue. Distinct
	// segments prevent coalescing from folding them together.
	responses := make(chan *http.Response, 5)
	for i := 0; i < 5; i++ {
		go func(i int) { responses <- observe(fmt.Sprintf("doc/%d#p0", i)) }(i)
	}
	deadline := time.Now().Add(5 * time.Second)
	for pipeline.Stats().Interactive.Depth < 4 {
		if time.Now().After(deadline) {
			t.Fatalf("queue never saturated: %+v", pipeline.Stats())
		}
		time.Sleep(time.Millisecond)
	}

	// Overflow arrival: shed fast with 429 + Retry-After.
	start := time.Now()
	resp := observe("doc/overflow#p0")
	elapsed := time.Since(start)
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overflow status=%d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("shed response missing Retry-After")
	}
	if elapsed > time.Second {
		t.Errorf("shed took %s, want immediate rejection", elapsed)
	}

	// /healthz answers promptly and reports the saturated lane.
	start = time.Now()
	hr, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	if time.Since(start) > time.Second {
		t.Errorf("healthz took %s under saturation", time.Since(start))
	}
	if hr.StatusCode != http.StatusOK {
		t.Fatalf("healthz status=%d", hr.StatusCode)
	}
	var health HealthResponse
	if err := json.NewDecoder(hr.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	hr.Body.Close()
	if health.Admission == nil {
		t.Fatal("healthz missing admission section")
	}
	if health.Admission.Interactive.Depth != 4 {
		t.Errorf("healthz interactive depth=%d, want 4", health.Admission.Interactive.Depth)
	}
	if health.Admission.Interactive.Shed == 0 {
		t.Error("healthz reports zero sheds after a 429")
	}

	// /v1/metrics answers promptly and exposes the admission gauges.
	start = time.Now()
	mr, err := http.Get(srv.URL + "/v1/metrics")
	if err != nil {
		t.Fatal(err)
	}
	if time.Since(start) > time.Second {
		t.Errorf("metrics took %s under saturation", time.Since(start))
	}
	if mr.StatusCode != http.StatusOK {
		t.Fatalf("metrics status=%d", mr.StatusCode)
	}
	var metrics bytes.Buffer
	metrics.ReadFrom(mr.Body)
	mr.Body.Close()
	for _, want := range []string{
		`browserflow_admission_queue_depth{lane="interactive"} 4`,
		`browserflow_admission_shed_total{lane="interactive"}`,
	} {
		if !strings.Contains(metrics.String(), want) {
			t.Errorf("metrics missing %q", want)
		}
	}

	// Release the worker: queued observes complete, backlog drains, and
	// the next arrival is admitted again.
	wedged.release()
	for i := 0; i < 5; i++ {
		r := <-responses
		if r.StatusCode != http.StatusOK {
			t.Errorf("queued observe status=%d, want 200", r.StatusCode)
		}
		r.Body.Close()
	}
	resp2 := observe("doc/after#p0")
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusOK {
		t.Errorf("post-recovery status=%d, want 200", resp2.StatusCode)
	}
}
