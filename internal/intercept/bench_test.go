package intercept

import (
	"fmt"
	"net/http/httptest"
	"testing"

	"github.com/lsds/browserflow/internal/audit"
	"github.com/lsds/browserflow/internal/browser"
	"github.com/lsds/browserflow/internal/disclosure"
	"github.com/lsds/browserflow/internal/policy"
	"github.com/lsds/browserflow/internal/tdm"
	"github.com/lsds/browserflow/internal/webapp"
)

// BenchmarkPluginKeystrokeThroughput measures sustained end-to-end edits
// per second through the full stack: DOM mutation -> observer -> XHR hook
// -> backend, with the asynchronous decision worker running.
func BenchmarkPluginKeystrokeThroughput(b *testing.B) {
	tracker, err := disclosure.NewTracker(disclosure.DefaultParams())
	if err != nil {
		b.Fatal(err)
	}
	registry := tdm.NewRegistry(audit.NewLog())
	for _, svc := range []struct {
		name   string
		lp, lc tdm.TagSet
	}{
		{name: webapp.ServiceWiki, lp: tdm.NewTagSet("tw"), lc: tdm.NewTagSet("tw")},
		{name: webapp.ServiceDocs, lp: tdm.NewTagSet(), lc: tdm.NewTagSet()},
	} {
		if err := registry.RegisterService(svc.name, svc.lp, svc.lc); err != nil {
			b.Fatal(err)
		}
	}
	engine, err := policy.NewEngine(tracker, registry, policy.ModeAdvisory)
	if err != nil {
		b.Fatal(err)
	}
	plugin, err := New(Config{Engine: engine, User: "bench"})
	if err != nil {
		b.Fatal(err)
	}
	defer plugin.Shutdown()

	server := webapp.NewServer()
	server.SeedDoc("bench", "Starting paragraph for the benchmark document.")
	srv := httptest.NewServer(server)
	defer srv.Close()

	br := browser.New()
	plugin.AttachToBrowser(br)
	tab, err := br.OpenTab(srv.URL + "/docs/bench")
	if err != nil {
		b.Fatal(err)
	}
	plugin.Flush()
	ed, err := webapp.AttachDocsEditor(tab)
	if err != nil {
		b.Fatal(err)
	}

	text := "The quick brown fox jumps over the lazy dog near the river bank today"
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := ed.ReplaceParagraph(0, fmt.Sprintf("%s %d", text, i)); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	plugin.Flush()
}
