package intercept

import (
	"bytes"
	"log/slog"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/lsds/browserflow/internal/policy"
	"github.com/lsds/browserflow/internal/segment"
	"github.com/lsds/browserflow/internal/tagserver"
)

// The failover engine must be pluggable wherever a local engine is; the
// check lives here (not in tagserver) to avoid an import cycle.
var _ Engine = (*tagserver.FailoverEngine)(nil)

// degradedEngine simulates a FailoverEngine riding out an outage: every
// decision is the mode default, flagged Degraded.
type degradedEngine struct{ mode policy.Mode }

func (d *degradedEngine) verdict(seg segment.ID, service string) (policy.Verdict, error) {
	return policy.Verdict{
		Decision: policy.DecisionAllow,
		Seg:      seg,
		Service:  service,
		Degraded: true,
	}, nil
}

func (d *degradedEngine) ObserveEdit(seg segment.ID, service, text string) (policy.Verdict, error) {
	return d.verdict(seg, service)
}

func (d *degradedEngine) ObserveDocumentEdit(doc segment.ID, service, text string) (policy.Verdict, error) {
	return d.verdict(doc, service)
}

func (d *degradedEngine) CheckText(text, destService string) (policy.Verdict, error) {
	return d.verdict("", destService)
}

func (d *degradedEngine) Mode() policy.Mode { return d.mode }

// Degraded verdicts are counted, logged at Warn, and surfaced to OnEvent so
// a UI can tell users the tag service is unreachable.
func TestDegradedVerdictsSurfaced(t *testing.T) {
	var (
		mu     sync.Mutex
		events []Event
		logBuf bytes.Buffer
	)
	plugin, err := New(Config{
		Engine: &degradedEngine{mode: policy.ModeAdvisory},
		User:   "alice",
		Logger: slog.New(slog.NewTextHandler(&logBuf, nil)),
		OnEvent: func(e Event) {
			mu.Lock()
			events = append(events, e)
			mu.Unlock()
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer plugin.Shutdown()

	plugin.decide(editTask{
		seg: "docs/offline#p0", service: "docs",
		text: "typed while the service was down", enqueued: time.Now(),
	})
	plugin.decide(editTask{
		seg: "docs/offline!doc", service: "docs",
		text: "typed while the service was down", enqueued: time.Now(),
	})

	if got := plugin.DegradedCount(); got != 2 {
		t.Errorf("DegradedCount=%d, want 2", got)
	}
	if got := plugin.WarnCount(); got != 0 {
		t.Errorf("WarnCount=%d: degraded allows are not violations", got)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(events) != 2 {
		t.Fatalf("events=%d, want 2", len(events))
	}
	for _, e := range events {
		if !e.Verdict.Degraded {
			t.Errorf("event %v lost the Degraded flag", e.Kind)
		}
	}
	if out := logBuf.String(); !strings.Contains(out, "degraded decision") ||
		!strings.Contains(out, "WARN") {
		t.Errorf("log missing degraded warning:\n%s", out)
	}
}
