package intercept

import (
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"github.com/lsds/browserflow/internal/audit"
	"github.com/lsds/browserflow/internal/browser"
	"github.com/lsds/browserflow/internal/disclosure"
	"github.com/lsds/browserflow/internal/fingerprint"
	"github.com/lsds/browserflow/internal/policy"
	"github.com/lsds/browserflow/internal/tdm"
	"github.com/lsds/browserflow/internal/webapp"
)

func newHTTPTestServer(t *testing.T, h http.Handler) *httptest.Server {
	t.Helper()
	srv := httptest.NewServer(h)
	t.Cleanup(srv.Close)
	return srv
}

// newNotesWorld builds a deployment including the Notes service, with or
// without the §4.4 service-specific payload adapter.
func newNotesWorld(t *testing.T, withAdapter bool) *world {
	t.Helper()
	tracker, err := disclosure.NewTracker(disclosure.Params{
		Fingerprint: fingerprint.Config{NGram: 6, Window: 4},
		Tpar:        0.5,
		Tdoc:        0.5,
	})
	if err != nil {
		t.Fatal(err)
	}
	registry := tdm.NewRegistry(audit.NewLog())
	for _, svc := range []struct {
		name   string
		lp, lc tdm.TagSet
	}{
		{name: webapp.ServiceWiki, lp: tdm.NewTagSet("tw"), lc: tdm.NewTagSet("tw")},
		{name: webapp.ServiceNotes, lp: tdm.NewTagSet(), lc: tdm.NewTagSet()},
	} {
		if err := registry.RegisterService(svc.name, svc.lp, svc.lc); err != nil {
			t.Fatal(err)
		}
	}
	engine, err := policy.NewEngine(tracker, registry, policy.ModeEnforcing)
	if err != nil {
		t.Fatal(err)
	}
	w := &world{server: webapp.NewServer(), engine: engine}
	w.srv = newHTTPTestServer(t, w.server)

	cfg := Config{
		Engine: engine,
		User:   "alice",
		OnEvent: func(e Event) {
			w.mu.Lock()
			w.events = append(w.events, e)
			w.mu.Unlock()
		},
	}
	if withAdapter {
		cfg.PayloadAdapters = map[string]PayloadAdapter{
			webapp.ServiceNotes: NotesPayloadAdapter,
		}
	}
	w.plugin, err = New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(w.plugin.Shutdown)
	w.browser = browser.New()
	w.plugin.AttachToBrowser(w.browser)
	return w
}

func TestNotesAdapterBlocksObfuscatedUpload(t *testing.T) {
	w := newNotesWorld(t, true)
	w.server.SeedWikiPage("guidelines", wikiSecret)
	w.server.SeedNote("todo", "Harmless grocery list for the week.")

	wikiTab := w.openWiki(t, "guidelines")
	notesTab, err := w.browser.OpenTab(w.srv.URL + "/notes/todo")
	if err != nil {
		t.Fatal(err)
	}
	w.plugin.Flush()
	ed, err := webapp.AttachNotesEditor(notesTab)
	if err != nil {
		t.Fatal(err)
	}

	wikiTab.CopyText(wikiTab.Document().Root().ByID("par-0"))
	err = ed.PasteAppend()
	if !errors.Is(err, browser.ErrBlocked) {
		t.Fatalf("err=%v, want ErrBlocked (adapter should see through the envelope)", err)
	}
	if got := w.server.Note("todo"); len(got) != 1 {
		t.Errorf("blocked upload reached backend: %v", got)
	}
}

func TestNotesWithoutAdapterUploadsButDOMWarns(t *testing.T) {
	w := newNotesWorld(t, false)
	w.server.SeedWikiPage("guidelines", wikiSecret)
	w.server.SeedNote("todo", "Harmless grocery list for the week.")

	wikiTab := w.openWiki(t, "guidelines")
	notesTab, err := w.browser.OpenTab(w.srv.URL + "/notes/todo")
	if err != nil {
		t.Fatal(err)
	}
	w.plugin.Flush()
	ed, err := webapp.AttachNotesEditor(notesTab)
	if err != nil {
		t.Fatal(err)
	}

	wikiTab.CopyText(wikiTab.Document().Root().ByID("par-0"))
	// Without the wire-format adapter the XHR hook cannot decode the
	// envelope, so the upload goes through (like a network DLP would miss
	// it)...
	if err := ed.PasteAppend(); err != nil {
		t.Fatalf("paste without adapter: %v", err)
	}
	if got := w.server.Note("todo"); len(got) != 2 {
		t.Fatalf("backend=%v", got)
	}
	// ...but the DOM mutation observers still see the plaintext and flag
	// the paragraph.
	w.plugin.Flush()
	var sawWarn bool
	for _, e := range w.eventList() {
		if e.Kind == EventEdit && e.Service == webapp.ServiceNotes && e.Verdict.Violation() {
			sawWarn = true
		}
	}
	if !sawWarn {
		t.Error("DOM observation missed the pasted secret in the notes tab")
	}
	pasted := ed.Paragraphs()[1]
	if !strings.Contains(pasted.Attr("style"), "background-color") {
		t.Errorf("pasted note paragraph not recoloured: %q", pasted.Attr("style"))
	}
}

func TestNotesPayloadAdapter(t *testing.T) {
	payload, err := webapp.EncodeNotesPayload(webapp.NotesPayload{Paragraphs: []string{"alpha", "beta"}})
	if err != nil {
		t.Fatal(err)
	}
	text, ok := NotesPayloadAdapter([]byte("payload=" + payload))
	if !ok || !strings.Contains(text, "alpha") || !strings.Contains(text, "beta") {
		t.Errorf("adapter=%q,%v", text, ok)
	}
	if _, ok := NotesPayloadAdapter([]byte("payload=!!!")); ok {
		t.Error("bad payload accepted")
	}
	if _, ok := NotesPayloadAdapter([]byte("%zz")); ok {
		t.Error("bad query accepted")
	}
}
