package intercept

import (
	"errors"
	"testing"

	"github.com/lsds/browserflow/internal/browser"
	"github.com/lsds/browserflow/internal/exactmatch"
	"github.com/lsds/browserflow/internal/policy"
)

// newSecretWorld is newWorld plus a registered exact-match secret.
func newSecretWorld(t *testing.T, mode policy.Mode) (*world, *exactmatch.Store) {
	t.Helper()
	w := newWorld(t, mode)
	secrets := exactmatch.NewStoreWithSalt([]byte("test"))
	if err := secrets.Register("prod-db-password", "sw0rdf1sh-9000"); err != nil {
		t.Fatal(err)
	}
	// Rebuild the plugin with the secret store attached.
	w.plugin.Shutdown()
	plugin, err := New(Config{
		Engine:  w.engine,
		User:    "alice",
		Secrets: secrets,
		OnEvent: func(e Event) {
			w.mu.Lock()
			w.events = append(w.events, e)
			w.mu.Unlock()
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(plugin.Shutdown)
	w.plugin = plugin
	w.browser = browser.New()
	w.plugin.AttachToBrowser(w.browser)
	return w, secrets
}

func TestSecretBlockedInFormEvenInAdvisoryMode(t *testing.T) {
	w, _ := newSecretWorld(t, policy.ModeAdvisory)
	w.server.SeedWikiPage("notes", "Starter paragraph.")
	wikiTab := w.openWiki(t, "notes")
	form := wikiTab.Document().Root().ByID("edit")
	err := wikiTab.SubmitForm(form, map[string]string{
		"content": "remember the db password is sw0rdf1sh-9000 for tonight",
	})
	if !errors.Is(err, browser.ErrBlocked) {
		t.Fatalf("err=%v, want ErrBlocked (secrets block regardless of mode)", err)
	}
	if got := w.server.WikiPage("notes"); len(got) != 1 {
		t.Errorf("secret reached backend: %v", got)
	}
	var sawSecret bool
	for _, e := range w.eventList() {
		if e.Kind == EventSecret {
			sawSecret = true
			if e.Verdict.Decision != policy.DecisionBlock {
				t.Errorf("secret verdict=%v", e.Verdict.Decision)
			}
		}
	}
	if !sawSecret {
		t.Error("no secret event emitted")
	}
}

func TestSecretBlockedInXHR(t *testing.T) {
	w, _ := newSecretWorld(t, policy.ModeAdvisory)
	w.server.SeedDoc("scratch", "Starter.")
	_, ed := w.openDocs(t, "scratch")
	err := ed.AppendParagraph("api credentials: sw0rdf1sh-9000")
	if !errors.Is(err, browser.ErrBlocked) {
		t.Fatalf("err=%v, want ErrBlocked", err)
	}
	if got := w.server.Doc("scratch"); len(got) != 1 {
		t.Errorf("secret reached docs backend: %v", got)
	}
}

func TestNonSecretTextUnaffected(t *testing.T) {
	w, _ := newSecretWorld(t, policy.ModeAdvisory)
	w.server.SeedDoc("scratch", "Starter.")
	_, ed := w.openDocs(t, "scratch")
	if err := ed.AppendParagraph("just a normal sentence without credentials"); err != nil {
		t.Fatalf("clean text blocked: %v", err)
	}
	if got := w.server.Doc("scratch"); len(got) != 2 {
		t.Errorf("backend=%v", got)
	}
}
