package intercept

import (
	"strings"
	"testing"

	"github.com/lsds/browserflow/internal/policy"
	"github.com/lsds/browserflow/internal/segment"
	"github.com/lsds/browserflow/internal/webapp"
)

// Paragraphs of three sentences each; the attacker copies one sentence
// from every paragraph — each excerpt stays below the paragraph threshold,
// but together they disclose the document (§4.1: "revealing one sentence
// from each paragraph would disclose the document").
var crossPars = []string{
	"The acquisition closes in March pending antitrust review. Deal terms value the target at ninety million dollars. Integration planning starts immediately after signature.",
	"Severance packages were approved for the duplicated roles. Retention bonuses cover the core engineering team only. Managers communicate individually next Tuesday morning.",
	"The combined roadmap drops the legacy storage product. Customers migrate to the new platform within a year. Pricing stays unchanged during the migration window.",
	"Press strategy is silence until the regulator files notice. Leaks trigger the prepared statement immediately. Employee briefings follow the public announcement only.",
}

func TestCrossParagraphDisclosureCaughtAtDocumentGranularity(t *testing.T) {
	w := newWorld(t, policy.ModeAdvisory)
	w.server.SeedWikiPage("merger", crossPars...)
	w.server.SeedDoc("draft", "My own harmless draft introduction paragraph.")

	wikiTab := w.openWiki(t, "merger")
	_ = wikiTab
	// The document author lowers the wiki document's disclosure threshold
	// (per-document thresholds, §4.2).
	wikiDocSeg := segment.DocSegmentID(segment.DocumentID("wiki:/wiki/merger"))
	w.engine.Tracker().Documents().SetThreshold(wikiDocSeg, 0.25)

	_, ed := w.openDocs(t, "draft")
	// Copy the first sentence of each wiki paragraph into the doc.
	for _, p := range crossPars {
		sentence := p[:strings.Index(p, ".")+1]
		if err := ed.AppendParagraph(sentence); err != nil {
			t.Fatal(err)
		}
	}
	w.plugin.Flush()

	var parViolation, docViolation bool
	for _, e := range w.eventList() {
		if e.Service != webapp.ServiceDocs || !e.Verdict.Violation() {
			continue
		}
		switch e.Kind {
		case EventEdit:
			parViolation = true
		case EventDoc:
			docViolation = true
		}
	}
	if parViolation {
		t.Error("single sentences should stay below the paragraph threshold")
	}
	if !docViolation {
		t.Error("document granularity missed the cross-paragraph disclosure")
	}
}

func TestDocumentGranularityCleanPage(t *testing.T) {
	w := newWorld(t, policy.ModeAdvisory)
	w.server.SeedDoc("draft", "Original text paragraph one.", "Original text paragraph two.")
	if _, err := w.browser.OpenTab(w.srv.URL + "/docs/draft"); err != nil {
		t.Fatal(err)
	}
	w.plugin.Flush()
	for _, e := range w.eventList() {
		if e.Kind == EventDoc && e.Verdict.Violation() {
			t.Errorf("clean page flagged at document granularity: %+v", e)
		}
	}
	// Document segment was tracked.
	if got := w.engine.Tracker().Documents().Stats().Segments; got == 0 {
		t.Error("no document segments tracked")
	}
}
