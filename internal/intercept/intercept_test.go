package intercept

import (
	"bytes"
	"errors"
	"log/slog"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"github.com/lsds/browserflow/internal/audit"
	"github.com/lsds/browserflow/internal/browser"
	"github.com/lsds/browserflow/internal/disclosure"
	"github.com/lsds/browserflow/internal/fingerprint"
	"github.com/lsds/browserflow/internal/metrics"
	"github.com/lsds/browserflow/internal/policy"
	"github.com/lsds/browserflow/internal/tdm"
	"github.com/lsds/browserflow/internal/webapp"
)

const wikiSecret = "The confidential interviewing guidelines require two interviewers for every single candidate session."

// world is a full simulated deployment: services, browser, plug-in.
type world struct {
	server  *webapp.Server
	srv     *httptest.Server
	browser *browser.Browser
	plugin  *Plugin
	engine  *policy.Engine
	latency *metrics.Recorder

	mu     sync.Mutex
	events []Event
}

// eventList returns a copy of the recorded events.
func (w *world) eventList() []Event {
	w.mu.Lock()
	defer w.mu.Unlock()
	return append([]Event(nil), w.events...)
}

func newWorld(t *testing.T, mode policy.Mode) *world {
	t.Helper()
	tracker, err := disclosure.NewTracker(disclosure.Params{
		Fingerprint: fingerprint.Config{NGram: 6, Window: 4},
		Tpar:        0.5,
		Tdoc:        0.5,
	})
	if err != nil {
		t.Fatal(err)
	}
	registry := tdm.NewRegistry(audit.NewLog())
	for _, svc := range []struct {
		name   string
		lp, lc tdm.TagSet
	}{
		{name: webapp.ServiceWiki, lp: tdm.NewTagSet("tw"), lc: tdm.NewTagSet("tw")},
		{name: webapp.ServiceITool, lp: tdm.NewTagSet("ti"), lc: tdm.NewTagSet("ti")},
		{name: webapp.ServiceDocs, lp: tdm.NewTagSet(), lc: tdm.NewTagSet()},
	} {
		if err := registry.RegisterService(svc.name, svc.lp, svc.lc); err != nil {
			t.Fatal(err)
		}
	}
	engine, err := policy.NewEngine(tracker, registry, mode)
	if err != nil {
		t.Fatal(err)
	}

	w := &world{
		server:  webapp.NewServer(),
		engine:  engine,
		latency: metrics.NewRecorder(),
	}
	w.srv = httptest.NewServer(w.server)
	t.Cleanup(w.srv.Close)

	w.plugin, err = New(Config{
		Engine:  engine,
		User:    "alice",
		Latency: w.latency,
		OnEvent: func(e Event) {
			w.mu.Lock()
			w.events = append(w.events, e)
			w.mu.Unlock()
		},
		EncryptionKey: deriveTestKey(),
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(w.plugin.Shutdown)

	w.browser = browser.New()
	w.plugin.AttachToBrowser(w.browser)
	return w
}

func deriveTestKey() []byte {
	key := make([]byte, 32)
	for i := range key {
		key[i] = byte(i)
	}
	return key
}

// openWiki loads the wiki page and waits for the initial label scan.
func (w *world) openWiki(t *testing.T, page string) *browser.Tab {
	t.Helper()
	tab, err := w.browser.OpenTab(w.srv.URL + "/wiki/" + page)
	if err != nil {
		t.Fatal(err)
	}
	w.plugin.Flush()
	return tab
}

func (w *world) openDocs(t *testing.T, doc string) (*browser.Tab, *webapp.DocsEditor) {
	t.Helper()
	tab, err := w.browser.OpenTab(w.srv.URL + "/docs/" + doc)
	if err != nil {
		t.Fatal(err)
	}
	w.plugin.Flush()
	ed, err := webapp.AttachDocsEditor(tab)
	if err != nil {
		t.Fatal(err)
	}
	return tab, ed
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Error("nil engine accepted")
	}
	w := newWorld(t, policy.ModeEncrypting)
	if _, err := New(Config{Engine: w.engine}); err == nil {
		t.Error("encrypting mode without key accepted")
	}
}

func TestPasteIntoDocsAdvisoryWarnsAndRecolours(t *testing.T) {
	w := newWorld(t, policy.ModeAdvisory)
	w.server.SeedWikiPage("guidelines", wikiSecret)
	w.server.SeedDoc("notes", "My own unrelated meeting notes live here today.")

	wikiTab := w.openWiki(t, "guidelines")
	_, ed := w.openDocs(t, "notes")

	// Copy the wiki paragraph and paste it into docs.
	par := wikiTab.Document().Root().ByID("par-0")
	if par == nil {
		t.Fatal("wiki paragraph missing")
	}
	wikiTab.CopyText(par)
	if err := ed.PasteAppend(); err != nil {
		t.Fatalf("advisory paste should not block: %v", err)
	}
	w.plugin.Flush()

	// Backend received the text (advisory mode).
	if got := w.server.Doc("notes"); len(got) != 2 {
		t.Fatalf("backend=%v", got)
	}
	// Paragraph recoloured red.
	pasted := ed.Paragraphs()[1]
	if !strings.Contains(pasted.Attr("style"), "background-color") {
		t.Errorf("pasted paragraph not recoloured: style=%q", pasted.Attr("style"))
	}
	// Warning events recorded.
	if w.plugin.WarnCount() == 0 {
		t.Error("no warnings recorded")
	}
	if w.latency.Count() == 0 {
		t.Error("no latencies recorded")
	}
}

func TestPasteIntoDocsEnforcingBlocks(t *testing.T) {
	w := newWorld(t, policy.ModeEnforcing)
	w.server.SeedWikiPage("guidelines", wikiSecret)
	w.server.SeedDoc("notes", "Benign starter paragraph for this document.")

	wikiTab := w.openWiki(t, "guidelines")
	_, ed := w.openDocs(t, "notes")

	wikiTab.CopyText(wikiTab.Document().Root().ByID("par-0"))
	err := ed.PasteAppend()
	if !errors.Is(err, browser.ErrBlocked) {
		t.Fatalf("err=%v, want ErrBlocked", err)
	}
	// The upload never reached the backend.
	if got := w.server.Doc("notes"); len(got) != 1 {
		t.Errorf("backend received blocked text: %v", got)
	}
}

func TestPasteIntoDocsEncryptingSealsPayload(t *testing.T) {
	w := newWorld(t, policy.ModeEncrypting)
	w.server.SeedWikiPage("guidelines", wikiSecret)
	w.server.SeedDoc("notes", "Benign starter paragraph for this document.")

	wikiTab := w.openWiki(t, "guidelines")
	_, ed := w.openDocs(t, "notes")

	wikiTab.CopyText(wikiTab.Document().Root().ByID("par-0"))
	if err := ed.PasteAppend(); err != nil {
		t.Fatalf("encrypting paste should not block: %v", err)
	}
	got := w.server.Doc("notes")
	if len(got) != 2 {
		t.Fatalf("backend=%v", got)
	}
	if !strings.HasPrefix(got[1], "bfenc:") {
		t.Fatalf("backend stored plaintext: %q", got[1])
	}
	plain, err := DecryptText(deriveTestKey(), got[1])
	if err != nil {
		t.Fatal(err)
	}
	if plain != wikiSecret {
		t.Errorf("decrypted=%q", plain)
	}
}

func TestOwnTextInDocsAllowed(t *testing.T) {
	w := newWorld(t, policy.ModeEnforcing)
	w.server.SeedDoc("notes", "Starter.")
	_, ed := w.openDocs(t, "notes")
	if err := ed.AppendParagraph("Fresh text typed directly into the docs editor, never seen elsewhere."); err != nil {
		t.Fatalf("own text blocked: %v", err)
	}
	w.plugin.Flush()
	if got := w.server.Doc("notes"); len(got) != 2 {
		t.Errorf("backend=%v", got)
	}
}

func TestFormSubmissionBlocked(t *testing.T) {
	w := newWorld(t, policy.ModeEnforcing)
	w.server.SeedEvaluation("bob", "Candidate bob showed deep knowledge of distributed consensus protocols today.")
	w.server.SeedWikiPage("notes", "Wiki starter paragraph.")

	itoolTab, err := w.browser.OpenTab(w.srv.URL + "/itool/bob")
	if err != nil {
		t.Fatal(err)
	}
	w.plugin.Flush()

	// Copy the evaluation and submit it through the wiki form.
	note := itoolTab.Document().Root().ByID("note-0")
	itoolTab.CopyText(note)

	wikiTab := w.openWiki(t, "notes")
	form := wikiTab.Document().Root().ByID("edit")
	err = wikiTab.SubmitForm(form, map[string]string{"content": w.browser.Clipboard()})
	if !errors.Is(err, browser.ErrBlocked) {
		t.Fatalf("err=%v, want ErrBlocked", err)
	}
	if got := w.server.WikiPage("notes"); len(got) != 1 {
		t.Errorf("blocked form content stored: %v", got)
	}
	// A form event with a violation was emitted.
	var sawForm bool
	for _, e := range w.eventList() {
		if e.Kind == EventForm && e.Verdict.Violation() {
			sawForm = true
		}
	}
	if !sawForm {
		t.Error("no form violation event")
	}
}

func TestFormSubmissionCleanTextPasses(t *testing.T) {
	w := newWorld(t, policy.ModeEnforcing)
	w.server.SeedWikiPage("notes", "Wiki starter paragraph.")
	wikiTab := w.openWiki(t, "notes")
	form := wikiTab.Document().Root().ByID("edit")
	if err := wikiTab.SubmitForm(form, map[string]string{"content": "A brand new public announcement."}); err != nil {
		t.Fatalf("clean form blocked: %v", err)
	}
	if got := w.server.WikiPage("notes"); len(got) != 2 {
		t.Errorf("WikiPage=%v", got)
	}
}

func TestRecolourClearsAfterRewrite(t *testing.T) {
	w := newWorld(t, policy.ModeAdvisory)
	w.server.SeedWikiPage("guidelines", wikiSecret)
	w.server.SeedDoc("notes", "Starter paragraph for the document.")

	wikiTab := w.openWiki(t, "guidelines")
	_, ed := w.openDocs(t, "notes")
	wikiTab.CopyText(wikiTab.Document().Root().ByID("par-0"))
	if err := ed.PasteAppend(); err != nil {
		t.Fatal(err)
	}
	w.plugin.Flush()
	pasted := ed.Paragraphs()[1]
	if pasted.Attr("style") == "" {
		t.Fatal("precondition: paragraph should be flagged")
	}
	// Rewrite the paragraph entirely.
	if err := ed.ReplaceParagraph(1, "Completely fresh content about gardening, tulips, roses and soil."); err != nil {
		t.Fatal(err)
	}
	w.plugin.Flush()
	if got := pasted.Attr("style"); got != "" {
		t.Errorf("style=%q after rewrite, want cleared", got)
	}
}

func TestUntrackedOriginIgnored(t *testing.T) {
	w := newWorld(t, policy.ModeEnforcing)
	// A URL outside the three services: hooks must pass through.
	mux := webapp.NewServer()
	_ = mux
	tab, err := w.browser.OpenTab(w.srv.URL + "/other/x")
	if err == nil {
		// Page 404s in webapp, so an error is expected; if not, hooks
		// still must not fire.
		_ = tab
	}
	if got := w.eventList(); len(got) != 0 {
		t.Errorf("events for untracked origin: %v", got)
	}
}

func TestDecryptTextErrors(t *testing.T) {
	key := deriveTestKey()
	if _, err := DecryptText(key, "not-encrypted"); err == nil {
		t.Error("bad prefix accepted")
	}
	if _, err := DecryptText(key, "bfenc:!!!"); err == nil {
		t.Error("bad base64 accepted")
	}
	if _, err := DecryptText(key, "bfenc:AAAA"); err == nil {
		t.Error("short ciphertext accepted")
	}
	if _, err := DecryptText([]byte("short"), "bfenc:AAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAA"); err == nil {
		t.Error("bad key size accepted")
	}
}

func TestLoggerReceivesViolationsAndErrors(t *testing.T) {
	w := newWorld(t, policy.ModeAdvisory)
	var buf bytes.Buffer
	logger := slog.New(slog.NewTextHandler(&buf, &slog.HandlerOptions{Level: slog.LevelDebug}))
	w.plugin.Shutdown()
	plugin, err := New(Config{Engine: w.engine, User: "alice", Logger: logger,
		OnEvent: func(Event) {}})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(plugin.Shutdown)
	w.plugin = plugin
	w.browser = browser.New()
	plugin.AttachToBrowser(w.browser)

	w.server.SeedWikiPage("guidelines", wikiSecret)
	w.server.SeedDoc("notes", "Starter paragraph.")
	wikiTab := w.openWiki(t, "guidelines")
	_, ed := w.openDocs(t, "notes")
	wikiTab.CopyText(wikiTab.Document().Root().ByID("par-0"))
	if err := ed.PasteAppend(); err != nil {
		t.Fatal(err)
	}
	w.plugin.Flush()
	if !strings.Contains(buf.String(), "policy violation") {
		t.Errorf("log missing violation: %s", buf.String())
	}
}

func TestShutdownDrainsQueue(t *testing.T) {
	w := newWorld(t, policy.ModeAdvisory)
	w.server.SeedWikiPage("p", "Some page text that needs scanning on load.")
	if _, err := w.browser.OpenTab(w.srv.URL + "/wiki/p"); err != nil {
		t.Fatal(err)
	}
	w.plugin.Shutdown()
	// Second shutdown is a no-op.
	w.plugin.Shutdown()
}
