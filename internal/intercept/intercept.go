// Package intercept implements the BrowserFlow plug-in (Figure 1, §5): it
// attaches to browser tabs, watches DOM mutations through mutation
// observers (§5.2), intercepts form submissions (§5.1) and asynchronous
// requests (§5.2), and drives the policy engine.
//
// Disclosure decisions run asynchronously to the user's typing on a
// dedicated worker goroutine, exactly like the paper's plug-in: the DOM
// mutation returns immediately, and the verdict later recolours the
// paragraph (red background on a violation) and is reported through the
// OnEvent callback. Outgoing requests, in contrast, are checked
// synchronously because they are the enforcement point.
package intercept

import (
	"crypto/aes"
	"crypto/cipher"
	"crypto/rand"
	"encoding/base64"
	"encoding/json"
	"fmt"
	"log/slog"
	"net/url"
	"strings"
	"sync"
	"time"

	"github.com/lsds/browserflow/internal/browser"
	"github.com/lsds/browserflow/internal/dom"
	"github.com/lsds/browserflow/internal/exactmatch"
	"github.com/lsds/browserflow/internal/metrics"
	"github.com/lsds/browserflow/internal/policy"
	"github.com/lsds/browserflow/internal/segment"
	"github.com/lsds/browserflow/internal/tdm"
	"github.com/lsds/browserflow/internal/webapp"
)

// EventKind classifies plug-in events.
type EventKind string

const (
	// EventEdit is an asynchronous disclosure decision for a paragraph
	// edit.
	EventEdit EventKind = "edit"

	// EventDoc is an asynchronous disclosure decision at whole-document
	// granularity (§4.1's second tracking granularity: it catches
	// cross-paragraph disclosure that no single paragraph triggers).
	EventDoc EventKind = "doc"

	// EventForm is a form-submission check.
	EventForm EventKind = "form"

	// EventXHR is an asynchronous-request check.
	EventXHR EventKind = "xhr"

	// EventSecret is an exact-match secret detection (§4.4's companion
	// system for short sensitive strings). Secret uploads are always
	// blocked, independent of the engine's mode.
	EventSecret EventKind = "secret"
)

// Event reports one plug-in decision.
type Event struct {
	Kind    EventKind
	Seg     segment.ID
	Service string
	Verdict policy.Verdict

	// Latency is the time from mutation to decision (EventEdit only).
	Latency time.Duration

	// TimedOut reports that a synchronous check exceeded CheckTimeout and
	// the request was allowed through (fail-open).
	TimedOut bool
}

// Engine is what the plug-in needs from a policy engine. *policy.Engine
// implements it locally; tagserver.RemoteEngine implements it against the
// shared enterprise tag service.
type Engine interface {
	// ObserveEdit records a paragraph edit and returns the verdict of the
	// text living in its service.
	ObserveEdit(seg segment.ID, service, text string) (policy.Verdict, error)

	// ObserveDocumentEdit records a whole-page observation.
	ObserveDocumentEdit(doc segment.ID, service, text string) (policy.Verdict, error)

	// CheckText evaluates ad-hoc text against a destination service.
	CheckText(text, destService string) (policy.Verdict, error)

	// Mode reports the enforcement mode.
	Mode() policy.Mode
}

var _ Engine = (*policy.Engine)(nil)

// Config configures a Plugin.
type Config struct {
	// Engine is the policy engine (required): local (*policy.Engine) or
	// remote (tagserver.RemoteEngine).
	Engine Engine

	// ServiceOf maps a page or request URL to a TDM service name. URLs it
	// rejects are outside BrowserFlow's scope and pass through. Defaults
	// to webapp.ServiceForPath on the URL path.
	ServiceOf func(*url.URL) (string, bool)

	// User is the identity attached to audit entries.
	User string

	// OnEvent, if set, receives every decision event. It may be called
	// concurrently from the decision worker (edit events) and from the
	// goroutine performing a form submission or XHR, so it must be safe
	// for concurrent use.
	OnEvent func(Event)

	// Latency, if set, records edit-decision latencies (Figure 12).
	Latency *metrics.Recorder

	// Logger, if set, receives structured logs: violations at Info,
	// decision errors at Error. Nil disables logging.
	Logger *slog.Logger

	// EncryptionKey is required when the engine runs in encrypting mode:
	// violating XHR payload text is sealed with AES-GCM under this key
	// before upload.
	EncryptionKey []byte

	// QueueSize bounds the asynchronous decision queue (default 1024).
	QueueSize int

	// CheckTimeout bounds the synchronous policy check on the
	// outgoing-request path. §6.2 notes that slow decisions surface as
	// "limited connectivity" errors in cloud services; with a timeout the
	// plug-in fails open instead — the upload proceeds, a timeout event
	// is emitted, and the asynchronous DOM path still flags the text.
	// Zero means no timeout.
	CheckTimeout time.Duration

	// Secrets, if set, adds exact-match detection of short secrets
	// (passwords, API keys) to the outgoing-request checks. Fingerprint
	// tracking cannot handle sub-paragraph text (§4.4); the exact-match
	// store covers that gap, and any hit blocks the upload regardless of
	// the engine's mode.
	Secrets *exactmatch.Store

	// PayloadAdapters maps a service name to the §4.4 "service-specific
	// transformation of the service's data to text segments": a decoder
	// that extracts user text from that service's request bodies. Without
	// an adapter, bodies are inspected with the built-in JSON/plain-text
	// heuristics.
	PayloadAdapters map[string]PayloadAdapter
}

// PayloadAdapter extracts the user text from one service's request body.
// It returns ok=false when the body carries no user text.
type PayloadAdapter func(body []byte) (text string, ok bool)

// NotesPayloadAdapter decodes the Notes service's base64-JSON envelope. It
// is the reference adapter implementation.
func NotesPayloadAdapter(body []byte) (string, bool) {
	values, err := url.ParseQuery(string(body))
	if err != nil {
		return "", false
	}
	payload, err := webapp.DecodeNotesPayload(values.Get("payload"))
	if err != nil {
		return "", false
	}
	return strings.Join(payload.Paragraphs, "\n\n"), true
}

// Plugin is one BrowserFlow plug-in instance. Create with New, attach with
// AttachToBrowser or AttachToTab, and Shutdown when done.
type Plugin struct {
	cfg Config

	queue chan editTask
	stop  chan struct{}
	done  chan struct{}

	stopOnce sync.Once
	pending  sync.WaitGroup

	mu            sync.Mutex
	warnCount     int
	degradedCount int
	recolours     map[*dom.Node]recolourOp
}

// recolourOp is a pending paragraph style update. The decision worker never
// touches the DOM directly — a real extension posts UI updates back to the
// renderer thread — so recolours are queued here and applied on the page
// goroutine by Flush.
type recolourOp struct {
	doc   *dom.Document
	style string
}

type editTask struct {
	seg      segment.ID
	service  string
	text     string
	par      *dom.Node // nil for document-granularity tasks
	doc      *dom.Document
	enqueued time.Time
}

// New returns a started Plugin.
func New(cfg Config) (*Plugin, error) {
	if cfg.Engine == nil {
		return nil, fmt.Errorf("intercept: Engine is required")
	}
	if cfg.ServiceOf == nil {
		cfg.ServiceOf = func(u *url.URL) (string, bool) {
			return webapp.ServiceForPath(u.Path)
		}
	}
	if cfg.QueueSize <= 0 {
		cfg.QueueSize = 1024
	}
	if cfg.Engine.Mode() == policy.ModeEncrypting && len(cfg.EncryptionKey) == 0 {
		return nil, fmt.Errorf("intercept: encrypting mode requires EncryptionKey")
	}
	p := &Plugin{
		cfg:       cfg,
		queue:     make(chan editTask, cfg.QueueSize),
		stop:      make(chan struct{}),
		done:      make(chan struct{}),
		recolours: make(map[*dom.Node]recolourOp),
	}
	go p.worker()
	return p, nil
}

// AttachToBrowser installs the plug-in on every tab the browser opens.
func (p *Plugin) AttachToBrowser(b *browser.Browser) {
	b.OnTabOpen(p.AttachToTab)
}

// AttachToTab installs the interception points on one tab.
func (p *Plugin) AttachToTab(tab *browser.Tab) {
	tab.RegisterSubmitHook(p.submitHook)
	tab.RegisterXHRHook(p.xhrHook)
	tab.OnNavigate(func() { p.observePage(tab) })
}

// Shutdown stops the decision worker after draining queued work.
func (p *Plugin) Shutdown() {
	p.stopOnce.Do(func() { close(p.stop) })
	<-p.done
}

// Flush blocks until every queued edit decision has been made, then
// applies pending paragraph recolours on the calling goroutine (which must
// be the one interacting with the page, like a browser's renderer thread).
func (p *Plugin) Flush() {
	p.pending.Wait()
	p.applyRecolours()
}

// applyRecolours drains the queued style updates.
func (p *Plugin) applyRecolours() {
	p.mu.Lock()
	ops := p.recolours
	p.recolours = make(map[*dom.Node]recolourOp)
	p.mu.Unlock()
	for par, op := range ops {
		if par.Attr("style") != op.style {
			// Best effort: the paragraph may have been detached meanwhile.
			_ = op.doc.SetAttr(par, "style", op.style)
		}
	}
}

// WarnCount returns how many warn/block/encrypt verdicts the plug-in has
// issued.
func (p *Plugin) WarnCount() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.warnCount
}

// DegradedCount returns how many decisions were made while the remote tag
// service was unreachable (a tagserver.FailoverEngine substituted its
// mode's fail-open/fail-closed default; see policy.Verdict.Degraded).
func (p *Plugin) DegradedCount() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.degradedCount
}

// --- page observation (§5.2 mutation observers) --------------------------

// observePage attaches mutation observers after a page load and performs
// the initial text extraction, assigning labels to pre-existing text.
func (p *Plugin) observePage(tab *browser.Tab) {
	service, ok := p.cfg.ServiceOf(tab.URL())
	if !ok {
		return
	}
	doc := tab.Document()
	root := doc.Body()

	// Initial scan: register every existing paragraph, then the whole
	// document.
	for _, par := range paragraphElements(root) {
		p.enqueueEdit(doc, par, service, tab)
	}
	p.enqueueDocument(doc, root, service, tab)

	// Observe subsequent mutations. Attribute mutations are ignored — the
	// plug-in itself recolours paragraphs via attributes.
	doc.Observe(root, func(rec dom.MutationRecord) {
		if rec.Type == dom.MutationAttributes {
			return
		}
		par := enclosingParagraph(rec.Target)
		if par == nil && len(rec.Added) == 1 {
			par = enclosingParagraph(rec.Added[0])
		}
		if par == nil {
			return
		}
		p.enqueueEdit(doc, par, service, tab)
		p.enqueueDocument(doc, root, service, tab)
	})
}

// enqueueDocument snapshots the page's full paragraph text and queues a
// document-granularity decision. The tracker's decision cache collapses
// the repeated observations a burst of paragraph edits produces.
func (p *Plugin) enqueueDocument(doc *dom.Document, root *dom.Node, service string, tab *browser.Tab) {
	var parts []string
	for _, par := range paragraphElements(root) {
		if text := par.InnerText(); text != "" {
			parts = append(parts, text)
		}
	}
	task := editTask{
		seg:      documentSegmentID(service, tab),
		service:  service,
		text:     strings.Join(parts, "\n\n"),
		doc:      doc,
		enqueued: time.Now(),
	}
	p.pending.Add(1)
	select {
	case p.queue <- task:
	case <-p.stop:
		p.pending.Done()
	}
}

// enqueueEdit snapshots a paragraph's text and queues the asynchronous
// disclosure decision.
func (p *Plugin) enqueueEdit(doc *dom.Document, par *dom.Node, service string, tab *browser.Tab) {
	seg := paragraphSegmentID(service, tab, par)
	task := editTask{
		seg:      seg,
		service:  service,
		text:     par.InnerText(),
		par:      par,
		doc:      doc,
		enqueued: time.Now(),
	}
	p.pending.Add(1)
	select {
	case p.queue <- task:
	case <-p.stop:
		p.pending.Done()
	}
}

// worker serialises disclosure decisions off the typing path.
func (p *Plugin) worker() {
	defer close(p.done)
	for {
		select {
		case task := <-p.queue:
			p.decide(task)
			p.pending.Done()
		case <-p.stop:
			// Drain whatever is already queued, then exit.
			for {
				select {
				case task := <-p.queue:
					p.decide(task)
					p.pending.Done()
				default:
					return
				}
			}
		}
	}
}

func (p *Plugin) decide(task editTask) {
	var (
		verdict policy.Verdict
		err     error
		kind    EventKind
	)
	if task.par == nil {
		kind = EventDoc
		verdict, err = p.cfg.Engine.ObserveDocumentEdit(task.seg, task.service, task.text)
	} else {
		kind = EventEdit
		verdict, err = p.cfg.Engine.ObserveEdit(task.seg, task.service, task.text)
	}
	latency := time.Since(task.enqueued)
	if err != nil {
		// The page may have raced ahead of service registration, or a
		// remote engine may be unreachable; decisions are advisory, so
		// log and move on rather than wedging the worker.
		if p.cfg.Logger != nil {
			p.cfg.Logger.Error("disclosure decision failed",
				"seg", string(task.seg), "service", task.service, "err", err)
		}
		return
	}
	if p.cfg.Latency != nil {
		p.cfg.Latency.Add(latency)
	}
	if task.par != nil {
		p.recolour(task, verdict)
	}
	p.emit(Event{
		Kind:    kind,
		Seg:     task.seg,
		Service: task.service,
		Verdict: verdict,
		Latency: latency,
	})
}

// recolour queues the paragraph style that reflects the verdict: a red
// background on a violation (Figure 2), cleared otherwise.
func (p *Plugin) recolour(task editTask, verdict policy.Verdict) {
	style := ""
	if verdict.Violation() {
		style = "background-color: #ff8a80"
	}
	p.mu.Lock()
	p.recolours[task.par] = recolourOp{doc: task.doc, style: style}
	p.mu.Unlock()
}

func (p *Plugin) emit(e Event) {
	if e.Verdict.Degraded {
		p.mu.Lock()
		p.degradedCount++
		p.mu.Unlock()
		if p.cfg.Logger != nil {
			p.cfg.Logger.Warn("degraded decision (tag service unreachable)",
				"kind", string(e.Kind), "seg", string(e.Seg),
				"service", e.Service, "decision", e.Verdict.Decision.String())
		}
	}
	if e.Verdict.Violation() {
		p.mu.Lock()
		p.warnCount++
		p.mu.Unlock()
		if p.cfg.Logger != nil {
			p.cfg.Logger.Info("policy violation",
				"kind", string(e.Kind), "seg", string(e.Seg),
				"service", e.Service, "decision", e.Verdict.Decision.String(),
				"violating", fmt.Sprint(e.Verdict.Violating))
		}
	}
	if p.cfg.OnEvent != nil {
		p.cfg.OnEvent(e)
	}
}

// --- form interception (§5.1) --------------------------------------------

// submitHook checks every visible form value against the destination
// service before the request leaves the browser.
func (p *Plugin) submitHook(tab *browser.Tab, form *dom.Node, visible url.Values) error {
	action := form.Attr("action")
	target := tab.URL()
	if action != "" {
		if u, err := url.Parse(action); err == nil {
			target = tab.URL().ResolveReference(u)
		}
	}
	service, ok := p.cfg.ServiceOf(target)
	if !ok {
		return nil
	}
	for _, values := range visible {
		for _, value := range values {
			if err := p.checkSecrets(value, service); err != nil {
				return err
			}
			verdict, err := p.cfg.Engine.CheckText(value, service)
			if err != nil {
				return fmt.Errorf("policy check: %w", err)
			}
			p.emit(Event{Kind: EventForm, Service: service, Verdict: verdict})
			if verdict.Decision == policy.DecisionBlock {
				return fmt.Errorf("form field discloses %v to %s", verdict.Violating, service)
			}
		}
	}
	return nil
}

// checkTextBounded runs CheckText, failing open after CheckTimeout. The
// abandoned check finishes in the background (its result is discarded);
// the asynchronous DOM observation path still evaluates the same text.
func (p *Plugin) checkTextBounded(text, service string) (policy.Verdict, bool, error) {
	if p.cfg.CheckTimeout <= 0 {
		v, err := p.cfg.Engine.CheckText(text, service)
		return v, false, err
	}
	type result struct {
		verdict policy.Verdict
		err     error
	}
	ch := make(chan result, 1)
	go func() {
		v, err := p.cfg.Engine.CheckText(text, service)
		ch <- result{verdict: v, err: err}
	}()
	timer := time.NewTimer(p.cfg.CheckTimeout)
	defer timer.Stop()
	select {
	case r := <-ch:
		return r.verdict, false, r.err
	case <-timer.C:
		return policy.Verdict{}, true, nil
	}
}

// checkSecrets blocks any text containing a registered exact-match secret.
func (p *Plugin) checkSecrets(text, service string) error {
	if p.cfg.Secrets == nil {
		return nil
	}
	matches := p.cfg.Secrets.Scan(text)
	if len(matches) == 0 {
		return nil
	}
	p.emit(Event{
		Kind:    EventSecret,
		Service: service,
		Verdict: policy.Verdict{Decision: policy.DecisionBlock, Service: service,
			Violating: []tdm.Tag{tdm.Tag("secret:" + matches[0].Name)}},
	})
	return fmt.Errorf("upload contains secret %q", matches[0].Name)
}

// --- XHR interception (§5.2) ----------------------------------------------

// xhrHook inspects asynchronous request bodies. Docs-style mutation
// payloads carry user text in a JSON "text" field; other bodies are checked
// as opaque text.
func (p *Plugin) xhrHook(tab *browser.Tab, req *browser.XHRRequest) error {
	service, ok := p.cfg.ServiceOf(req.URL)
	if !ok {
		return nil
	}
	var (
		text       string
		isMutation bool
	)
	if adapter, ok := p.cfg.PayloadAdapters[service]; ok {
		if text, ok = adapter(req.Body); !ok {
			return nil
		}
	} else {
		text, isMutation = extractXHRText(req.Body)
	}
	if text == "" {
		return nil
	}
	if err := p.checkSecrets(text, service); err != nil {
		return err
	}
	verdict, timedOut, err := p.checkTextBounded(text, service)
	if err != nil {
		return fmt.Errorf("policy check: %w", err)
	}
	if timedOut {
		p.emit(Event{Kind: EventXHR, Service: service, TimedOut: true,
			Verdict: policy.Verdict{Decision: policy.DecisionAllow, Service: service}})
		return nil
	}
	p.emit(Event{Kind: EventXHR, Service: service, Verdict: verdict})
	switch verdict.Decision {
	case policy.DecisionBlock:
		return fmt.Errorf("request discloses %v to %s", verdict.Violating, service)
	case policy.DecisionEncrypt:
		sealed, err := p.encryptText(text)
		if err != nil {
			return fmt.Errorf("encrypt payload: %w", err)
		}
		if isMutation {
			var m webapp.MutateRequest
			if err := json.Unmarshal(req.Body, &m); err == nil {
				m.Text = sealed
				if body, err := json.Marshal(m); err == nil {
					req.Body = body
					return nil
				}
			}
		}
		req.Body = []byte(sealed)
	}
	return nil
}

// extractXHRText pulls the user text out of a request body. It understands
// the docs mutation format and falls back to treating the body as plain
// text when it is not JSON.
func extractXHRText(body []byte) (text string, isMutation bool) {
	if len(body) == 0 {
		return "", false
	}
	var m webapp.MutateRequest
	if err := json.Unmarshal(body, &m); err == nil && m.Op != "" {
		return m.Text, true
	}
	return string(body), false
}

// encryptText seals text with AES-GCM and encodes it for JSON transport.
func (p *Plugin) encryptText(text string) (string, error) {
	block, err := aes.NewCipher(p.cfg.EncryptionKey)
	if err != nil {
		return "", err
	}
	gcm, err := cipher.NewGCM(block)
	if err != nil {
		return "", err
	}
	nonce := make([]byte, gcm.NonceSize())
	if _, err := rand.Read(nonce); err != nil {
		return "", err
	}
	sealed := gcm.Seal(nonce, nonce, []byte(text), nil)
	return "bfenc:" + base64.StdEncoding.EncodeToString(sealed), nil
}

// DecryptText reverses encryptText; it is used by authorised readers (and
// tests) holding the key.
func DecryptText(key []byte, sealed string) (string, error) {
	const prefix = "bfenc:"
	if len(sealed) < len(prefix) || sealed[:len(prefix)] != prefix {
		return "", fmt.Errorf("intercept: not an encrypted payload")
	}
	raw, err := base64.StdEncoding.DecodeString(sealed[len(prefix):])
	if err != nil {
		return "", err
	}
	block, err := aes.NewCipher(key)
	if err != nil {
		return "", err
	}
	gcm, err := cipher.NewGCM(block)
	if err != nil {
		return "", err
	}
	if len(raw) < gcm.NonceSize() {
		return "", fmt.Errorf("intercept: ciphertext too short")
	}
	plain, err := gcm.Open(nil, raw[:gcm.NonceSize()], raw[gcm.NonceSize():], nil)
	if err != nil {
		return "", err
	}
	return string(plain), nil
}

// --- paragraph identification ---------------------------------------------

// paragraphElements returns the trackable paragraph elements of a page:
// <p> tags and docs-style custom paragraphs.
func paragraphElements(root *dom.Node) []*dom.Node {
	return root.FindAll(isParagraphElement)
}

func isParagraphElement(n *dom.Node) bool {
	if n.Type != dom.ElementNode {
		return false
	}
	if n.Tag == "p" {
		return true
	}
	return n.Tag == "div" && (n.Class() == "kix-paragraph" || n.Class() == "note-par")
}

// enclosingParagraph walks up from a mutated node to its paragraph element.
func enclosingParagraph(n *dom.Node) *dom.Node {
	for cur := n; cur != nil; cur = cur.Parent() {
		if isParagraphElement(cur) {
			return cur
		}
	}
	return nil
}

// paragraphSegmentID derives a stable segment ID for a paragraph element:
// service + page path + element id.
func paragraphSegmentID(service string, tab *browser.Tab, par *dom.Node) segment.ID {
	doc := segment.DocumentID(service + ":" + tab.URL().Path)
	key := par.ID()
	if key == "" {
		key = fmt.Sprintf("anon-%p", par)
	}
	return segment.ParSegmentID(doc, key)
}

// documentSegmentID derives the whole-page segment ID.
func documentSegmentID(service string, tab *browser.Tab) segment.ID {
	return segment.DocSegmentID(segment.DocumentID(service + ":" + tab.URL().Path))
}
