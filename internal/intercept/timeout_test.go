package intercept

import (
	"testing"
	"time"

	"github.com/lsds/browserflow/internal/browser"
	"github.com/lsds/browserflow/internal/policy"
)

// newTimeoutWorld rebuilds the standard world with an (absurdly small)
// check timeout so every synchronous check fails open.
func newTimeoutWorld(t *testing.T) *world {
	t.Helper()
	w := newWorld(t, policy.ModeEnforcing)
	w.plugin.Shutdown()
	plugin, err := New(Config{
		Engine:       w.engine,
		User:         "alice",
		CheckTimeout: time.Nanosecond,
		OnEvent: func(e Event) {
			w.mu.Lock()
			w.events = append(w.events, e)
			w.mu.Unlock()
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(plugin.Shutdown)
	w.plugin = plugin
	w.browser = browser.New()
	w.plugin.AttachToBrowser(w.browser)
	return w
}

func TestCheckTimeoutFailsOpen(t *testing.T) {
	w := newTimeoutWorld(t)
	w.server.SeedWikiPage("guidelines", wikiSecret)
	w.server.SeedDoc("notes", "Starter paragraph for the notes doc.")

	wikiTab := w.openWiki(t, "guidelines")
	_, ed := w.openDocs(t, "notes")
	wikiTab.CopyText(wikiTab.Document().Root().ByID("par-0"))

	// Even in enforcing mode, the timed-out check lets the upload through
	// (fail-open) rather than stalling the service.
	if err := ed.PasteAppend(); err != nil {
		t.Fatalf("timed-out paste blocked: %v", err)
	}
	if got := w.server.Doc("notes"); len(got) != 2 {
		t.Fatalf("backend=%v", got)
	}
	var sawTimeout bool
	for _, e := range w.eventList() {
		if e.Kind == EventXHR && e.TimedOut {
			sawTimeout = true
			if e.Verdict.Decision != policy.DecisionAllow {
				t.Errorf("timeout verdict=%v", e.Verdict.Decision)
			}
		}
	}
	if !sawTimeout {
		t.Error("no timeout event emitted")
	}

	// The asynchronous DOM path still flags the pasted paragraph.
	w.plugin.Flush()
	var sawWarn bool
	for _, e := range w.eventList() {
		if e.Kind == EventEdit && e.Verdict.Violation() {
			sawWarn = true
		}
	}
	if !sawWarn {
		t.Error("asynchronous path missed the disclosure after fail-open")
	}
}

func TestNoTimeoutByDefault(t *testing.T) {
	w := newWorld(t, policy.ModeEnforcing)
	w.server.SeedWikiPage("guidelines", wikiSecret)
	w.server.SeedDoc("notes", "Starter paragraph.")
	wikiTab := w.openWiki(t, "guidelines")
	_, ed := w.openDocs(t, "notes")
	wikiTab.CopyText(wikiTab.Document().Root().ByID("par-0"))
	if err := ed.PasteAppend(); err == nil {
		t.Fatal("without a timeout the enforcing paste must block")
	}
	for _, e := range w.eventList() {
		if e.TimedOut {
			t.Errorf("unexpected timeout event: %+v", e)
		}
	}
}
