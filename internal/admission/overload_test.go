package admission

import (
	"context"
	"encoding/json"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"testing"
	"time"

	"github.com/lsds/browserflow/internal/audit"
	"github.com/lsds/browserflow/internal/disclosure"
	"github.com/lsds/browserflow/internal/fingerprint"
	"github.com/lsds/browserflow/internal/policy"
	"github.com/lsds/browserflow/internal/segment"
	"github.com/lsds/browserflow/internal/tdm"
)

// newPolicyEngine builds a real engine with a tagged wiki service and an
// untagged docs service, the §2 disclosure scenario.
func newPolicyEngine(t *testing.T) *policy.Engine {
	t.Helper()
	tracker, err := disclosure.NewTracker(disclosure.Params{
		Fingerprint: fingerprint.Config{NGram: 6, Window: 4},
		Tpar:        0.5,
		Tdoc:        0.5,
	})
	if err != nil {
		t.Fatal(err)
	}
	registry := tdm.NewRegistry(audit.NewLog())
	if err := registry.RegisterService("wiki", tdm.NewTagSet("tw"), tdm.NewTagSet("tw")); err != nil {
		t.Fatal(err)
	}
	if err := registry.RegisterService("docs", tdm.NewTagSet(), tdm.NewTagSet()); err != nil {
		t.Fatal(err)
	}
	engine, err := policy.NewEngine(tracker, registry, policy.ModeAdvisory)
	if err != nil {
		t.Fatal(err)
	}
	return engine
}

// recordingEngine wraps a real engine and records the executed observe
// subsequence in order (drive it with Workers: 1 for a total order).
type recordingEngine struct {
	inner *policy.Engine

	mu  sync.Mutex
	log []executedObserve
}

type executedObserve struct {
	seg     segment.ID
	service string
	hashes  []uint32
	verdict policy.Verdict
}

func (r *recordingEngine) ObserveEditFPCtx(ctx context.Context, seg segment.ID, service string, fp *fingerprint.Fingerprint) (policy.Verdict, error) {
	v, err := r.inner.ObserveEditFPCtx(ctx, seg, service, fp)
	if err == nil {
		r.mu.Lock()
		r.log = append(r.log, executedObserve{seg: seg, service: service, hashes: fp.Hashes(), verdict: v})
		r.mu.Unlock()
	}
	return v, err
}

func (r *recordingEngine) ObserveDocumentEditFPCtx(ctx context.Context, doc segment.ID, service string, fp *fingerprint.Fingerprint) (policy.Verdict, error) {
	return r.inner.ObserveDocumentEditFPCtx(ctx, doc, service, fp)
}

func (r *recordingEngine) ObserveBatchFPCtx(ctx context.Context, service string, items []disclosure.BatchObservation) ([]policy.Verdict, error) {
	return r.inner.ObserveBatchFPCtx(ctx, service, items)
}

// verdictJSON is the byte-comparison form of a verdict: everything the
// wire protocol exposes.
func verdictJSON(t *testing.T, v policy.Verdict) string {
	t.Helper()
	b, err := json.Marshal(struct {
		Decision  string
		Violating []tdm.Tag
		Sources   []disclosure.Source
	}{v.Decision.String(), v.Violating, v.Sources})
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

const wikiSecret = "Candidate evaluations are confidential and must never leave the internal interview tooling, including anonymised excerpts shared for calibration purposes."

// keystrokeStates returns the successive text states of typing s: the
// per-keystroke stream the docs editor produces.
func keystrokeStates(s string, stride int) []string {
	var states []string
	for i := stride; i < len(s); i += stride {
		states = append(states, s[:i])
	}
	states = append(states, s)
	return states
}

// Coalescing correctness: the verdicts the pipeline delivers are
// byte-identical to an unbatched engine fed the same executed subsequence
// of keystroke states — a fold is indistinguishable from slower typing.
// The scenario includes a real disclosure (wiki text typed into docs), so
// the equivalence covers violating verdicts, not just allows.
func TestCoalescedVerdictsMatchUnbatchedPath(t *testing.T) {
	engineA := newPolicyEngine(t) // behind the pipeline
	engineB := newPolicyEngine(t) // the unbatched reference

	cfg := fingerprint.Config{NGram: 6, Window: 4}
	seedFP, err := fingerprint.Compute(wikiSecret, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Both engines observe the tagged source identically.
	if _, err := engineA.ObserveEditFP("wiki/eval#p0", "wiki", seedFP); err != nil {
		t.Fatal(err)
	}
	if _, err := engineB.ObserveEditFP("wiki/eval#p0", "wiki", seedFP); err != nil {
		t.Fatal(err)
	}

	rec := &recordingEngine{inner: engineA}
	p, err := New(rec, Config{Workers: 1, CoalesceWindow: 3 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}

	// Editor 0 types the wiki secret into the external docs service (the
	// §2 accidental disclosure); the others type benign text. Keystrokes
	// are fired without waiting for verdicts — each is launched as soon as
	// the previous one is *admitted* (new job or fold), which pins the
	// enqueue order while leaving the pipeline free to fold trailing
	// states inside the debounce window.
	texts := []string{
		wikiSecret,
		"Meeting notes: the quarterly planning session moved to Thursday afternoon in the large conference room.",
		"Draft blog post about our new open source release and the community response to the first milestone.",
	}
	admitted := func() uint64 {
		st := p.Stats()
		return st.Interactive.Submitted + st.Folds
	}
	finals := make([]policy.Verdict, len(texts))
	var wg sync.WaitGroup
	for e, text := range texts {
		e := e
		seg := segment.ID(fmt.Sprintf("docs/doc%d#p0", e))
		states := keystrokeStates(text, 7)
		for si, state := range states {
			fpState, err := fingerprint.Compute(state, cfg)
			if err != nil {
				t.Fatal(err)
			}
			last := si == len(states)-1
			before := admitted()
			wg.Add(1)
			go func() {
				defer wg.Done()
				v, err := p.Observe(context.Background(), "docs", seg, segment.GranularityParagraph, fpState)
				if err != nil {
					t.Errorf("editor %d: %v", e, err)
					return
				}
				if last {
					finals[e] = v
				}
			}()
			waitFor(t, func() bool { return admitted() > before })
		}
	}
	wg.Wait()
	if err := p.Close(context.Background()); err != nil {
		t.Fatal(err)
	}

	// The disclosure must have been caught through the coalesced path.
	if !finals[0].Violation() {
		t.Fatalf("editor 0's final verdict %+v misses the wiki disclosure", finals[0])
	}
	if p.Stats().Folds == 0 {
		t.Fatal("no folds happened; the test exercised nothing")
	}

	// Replay the executed subsequence through the unbatched engine: every
	// verdict must be byte-identical.
	rec.mu.Lock()
	log := append([]executedObserve(nil), rec.log...)
	rec.mu.Unlock()
	lastBySeg := make(map[segment.ID]policy.Verdict)
	for i, exec := range log {
		ref, err := engineB.ObserveEditFP(exec.seg, exec.service, fingerprint.FromHashes(exec.hashes))
		if err != nil {
			t.Fatal(err)
		}
		got, want := verdictJSON(t, exec.verdict), verdictJSON(t, ref)
		if got != want {
			t.Fatalf("verdict divergence at executed observe %d (%s):\n pipeline:  %s\n unbatched: %s", i, exec.seg, got, want)
		}
		lastBySeg[exec.seg] = ref
	}
	// The verdict each editor's final keystroke received is the one for
	// its final executed state.
	for e := range texts {
		seg := segment.ID(fmt.Sprintf("docs/doc%d#p0", e))
		if got, want := verdictJSON(t, finals[e]), verdictJSON(t, lastBySeg[seg]); got != want {
			t.Fatalf("editor %d final verdict diverges:\n delivered: %s\n unbatched: %s", e, got, want)
		}
	}
}

// Sustained 2x saturation: the pipeline sheds with Retry-After hints under
// a bounded queue, keeps accepted interactive latency inside the SLO, and
// recovers full service once the load subsides.
func TestSustainedOverloadShedsAndRecovers(t *testing.T) {
	const (
		serviceTime = 2 * time.Millisecond
		workers     = 2
		queueCap    = 64
		// Capacity = workers/serviceTime = 1000 obs/s; offer 2x in 5ms
		// batches (sub-millisecond sleeps are unreliable under load).
		tickEvery = 5 * time.Millisecond
		perTick   = 10
		ticks     = 300 // 1.5s of offered load
	)
	eng := &fakeEngine{delay: serviceTime}
	p, err := New(eng, Config{
		Workers:          workers,
		InteractiveQueue: queueCap,
		MaxDwell:         500 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close(context.Background())

	runtime.GC()
	var before runtime.MemStats
	runtime.ReadMemStats(&before)

	var (
		mu        sync.Mutex
		latencies []time.Duration
		sheds     int
		hintLow   int
	)
	var wg sync.WaitGroup
	seq := 0
	for tick := 0; tick < ticks; tick++ {
		start := time.Now()
		for i := 0; i < perTick; i++ {
			seq++
			n := seq
			seg := segment.ID(fmt.Sprintf("docs/doc%d#p0", n%997)) // mostly distinct segments
			wg.Add(1)
			go func() {
				defer wg.Done()
				begin := time.Now()
				_, err := p.Observe(context.Background(), "docs", seg, segment.GranularityParagraph, fp(uint32(n)))
				el := time.Since(begin)
				mu.Lock()
				defer mu.Unlock()
				if oe, ok := AsOverload(err); ok {
					sheds++
					if oe.RetryAfter < time.Second {
						hintLow++
					}
					return
				}
				if err != nil {
					t.Errorf("observe: %v", err)
					return
				}
				latencies = append(latencies, el)
			}()
		}
		if rest := tickEvery - time.Since(start); rest > 0 {
			time.Sleep(rest)
		}
	}
	wg.Wait()

	st := p.Stats()
	if st.Interactive.MaxDepth > queueCap {
		t.Fatalf("queue depth %d exceeded cap %d: memory is not bounded", st.Interactive.MaxDepth, queueCap)
	}
	mu.Lock()
	if sheds == 0 {
		t.Fatal("2x sustained saturation never shed: queue must have buffered unboundedly")
	}
	if hintLow > 0 {
		t.Fatalf("%d shed responses carried a Retry-After below the 1s floor", hintLow)
	}
	if len(latencies) == 0 {
		t.Fatal("no requests were served at all")
	}
	sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
	idx := len(latencies) * 99 / 100
	if idx >= len(latencies) {
		idx = len(latencies) - 1
	}
	p99 := latencies[idx]
	mu.Unlock()
	// Accepted work is bounded by queue depth x service time / workers
	// plus scheduling slack — the SLO the bounded queue buys.
	slo := queueCap*serviceTime/workers + 250*time.Millisecond
	if p99 > slo {
		t.Fatalf("accepted interactive p99 = %s breaches the %s SLO", p99, slo)
	}

	// Load subsides: the queue drains and fresh requests are served
	// promptly with no shedding.
	waitFor(t, func() bool { return p.Stats().Interactive.Depth == 0 })
	shedBefore := p.Stats().Interactive.Shed
	for i := 0; i < 20; i++ {
		begin := time.Now()
		if _, err := p.Observe(context.Background(), "docs", segment.ID(fmt.Sprintf("docs/after#p%d", i)), segment.GranularityParagraph, fp(uint32(i))); err != nil {
			t.Fatalf("post-recovery observe %d: %v", i, err)
		}
		if el := time.Since(begin); el > 500*time.Millisecond {
			t.Fatalf("post-recovery latency %s: service did not recover", el)
		}
	}
	if got := p.Stats().Interactive.Shed; got != shedBefore {
		t.Fatalf("shedding continued after load subsided (%d -> %d)", shedBefore, got)
	}

	runtime.GC()
	var after runtime.MemStats
	runtime.ReadMemStats(&after)
	if grew := int64(after.HeapAlloc) - int64(before.HeapAlloc); grew > 64<<20 {
		t.Fatalf("heap grew %d bytes across the overload run: buffering is not bounded", grew)
	}
}

// Under pressure the bulk lane degrades first: its tighter dwell bound
// sheds bulk arrivals while interactive work is still being admitted.
func TestBulkDegradesBeforeInteractive(t *testing.T) {
	eng := &fakeEngine{gate: make(chan struct{})}
	p, err := New(eng, Config{
		Workers:          1,
		InteractiveQueue: 100,
		BulkQueue:        100,
		MaxDwell:         10 * time.Second,
		BulkMaxDwell:     50 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		close(eng.gate)
		p.Close(context.Background())
	}()

	var wg sync.WaitGroup
	// Wedge the worker, then queue one bulk flush and let it go stale.
	wg.Add(1)
	go func() {
		defer wg.Done()
		p.Observe(context.Background(), "docs", "docs/blocker#p0", segment.GranularityParagraph, fp(1))
	}()
	waitFor(t, func() bool { return p.Stats().Interactive.Executed == 1 })
	wg.Add(1)
	go func() {
		defer wg.Done()
		p.ObserveBatch(context.Background(), "docs", []disclosure.BatchObservation{{Seg: "docs/bulk#p0", FP: fp(2)}})
	}()
	waitFor(t, func() bool { return p.Stats().Bulk.Depth == 1 })
	time.Sleep(80 * time.Millisecond) // past BulkMaxDwell, far under MaxDwell

	// Bulk arrivals shed; interactive arrivals are still admitted.
	if _, err := p.ObserveBatch(context.Background(), "docs", []disclosure.BatchObservation{{Seg: "docs/bulk2#p0", FP: fp(3)}}); err == nil {
		t.Fatal("stale bulk lane admitted more bulk work")
	} else if oe, ok := AsOverload(err); !ok || oe.Lane != LaneBulk || oe.Reason != ReasonStale {
		t.Fatalf("bulk err = %v, want stale bulk OverloadError", err)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		if _, err := p.Observe(context.Background(), "docs", "docs/live#p0", segment.GranularityParagraph, fp(4)); err != nil {
			t.Errorf("interactive observe shed while only bulk was stale: %v", err)
		}
	}()
	waitFor(t, func() bool { return p.Stats().Interactive.Depth == 1 })

	for i := 0; i < 3; i++ {
		eng.gate <- struct{}{}
	}
	wg.Wait()
}
