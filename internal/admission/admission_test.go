package admission

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/lsds/browserflow/internal/disclosure"
	"github.com/lsds/browserflow/internal/fingerprint"
	"github.com/lsds/browserflow/internal/policy"
	"github.com/lsds/browserflow/internal/segment"
)

// fakeEngine is a controllable Engine: per-call latency, an optional gate
// channel that blocks every call until released, and execution recording.
type fakeEngine struct {
	delay time.Duration
	gate  chan struct{} // when non-nil, each call receives once before running

	mu    sync.Mutex
	calls []fakeCall
	n     atomic.Int64
}

type fakeCall struct {
	seg     segment.ID
	service string
	hashes  []uint32
	batch   int
}

func (f *fakeEngine) record(c fakeCall) {
	f.n.Add(1)
	f.mu.Lock()
	f.calls = append(f.calls, c)
	f.mu.Unlock()
}

func (f *fakeEngine) wait() {
	if f.gate != nil {
		<-f.gate
	}
	if f.delay > 0 {
		time.Sleep(f.delay)
	}
}

func (f *fakeEngine) ObserveEditFPCtx(_ context.Context, seg segment.ID, service string, fp *fingerprint.Fingerprint) (policy.Verdict, error) {
	f.wait()
	f.record(fakeCall{seg: seg, service: service, hashes: fp.Hashes()})
	return policy.Verdict{Decision: policy.DecisionAllow, Seg: seg, Service: service}, nil
}

func (f *fakeEngine) ObserveDocumentEditFPCtx(_ context.Context, doc segment.ID, service string, fp *fingerprint.Fingerprint) (policy.Verdict, error) {
	f.wait()
	f.record(fakeCall{seg: doc, service: service, hashes: fp.Hashes()})
	return policy.Verdict{Decision: policy.DecisionAllow, Seg: doc, Service: service}, nil
}

func (f *fakeEngine) ObserveBatchFPCtx(_ context.Context, service string, items []disclosure.BatchObservation) ([]policy.Verdict, error) {
	f.wait()
	f.record(fakeCall{service: service, batch: len(items)})
	out := make([]policy.Verdict, len(items))
	for i, item := range items {
		out[i] = policy.Verdict{Decision: policy.DecisionAllow, Seg: item.Seg, Service: service}
	}
	return out, nil
}

func fp(hashes ...uint32) *fingerprint.Fingerprint { return fingerprint.FromHashes(hashes) }

func TestNewValidation(t *testing.T) {
	if _, err := New(nil, Config{}); err == nil {
		t.Fatal("nil engine accepted")
	}
}

func TestObservePassthrough(t *testing.T) {
	eng := &fakeEngine{}
	p, err := New(eng, Config{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close(context.Background())

	v, err := p.Observe(context.Background(), "docs", "docs/d#p0", segment.GranularityParagraph, fp(1, 2, 3))
	if err != nil {
		t.Fatal(err)
	}
	if v.Decision != policy.DecisionAllow || v.Seg != "docs/d#p0" {
		t.Fatalf("verdict = %+v", v)
	}
	if _, err := p.ObserveBatch(context.Background(), "docs", []disclosure.BatchObservation{
		{Seg: "docs/d#p1", FP: fp(4, 5), Granularity: segment.GranularityParagraph},
	}); err != nil {
		t.Fatal(err)
	}
	st := p.Stats()
	if st.Interactive.Executed != 1 || st.Bulk.Executed != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

// Keystroke states of the same segment queued behind a blocked worker fold
// into one engine call for the newest state, and every folded waiter
// receives that verdict.
func TestCoalesceFoldsQueuedKeystrokes(t *testing.T) {
	eng := &fakeEngine{gate: make(chan struct{})}
	p, err := New(eng, Config{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		close(eng.gate)
		p.Close(context.Background())
	}()

	// Occupy the single worker with an unrelated segment.
	blockerDone := make(chan struct{})
	go func() {
		defer close(blockerDone)
		p.Observe(context.Background(), "docs", "docs/other#p0", segment.GranularityParagraph, fp(99))
	}()
	waitFor(t, func() bool { return p.Stats().Interactive.Executed == 1 })

	// Three keystroke states of one segment arrive while the worker is
	// busy: they must fold into a single queued job.
	var wg sync.WaitGroup
	verdicts := make([]policy.Verdict, 3)
	for i := 0; i < 3; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			v, err := p.Observe(context.Background(), "docs", "docs/d#p0", segment.GranularityParagraph, fp(uint32(i+1)))
			if err != nil {
				t.Errorf("observe %d: %v", i, err)
				return
			}
			verdicts[i] = v
		}()
		waitFor(t, func() bool {
			st := p.Stats()
			return st.Interactive.Depth >= 1 && int(st.Folds) >= i
		})
	}
	if got := p.Stats().Folds; got != 2 {
		t.Fatalf("folds = %d, want 2", got)
	}

	eng.gate <- struct{}{} // release the blocker
	eng.gate <- struct{}{} // release the folded job
	<-blockerDone
	wg.Wait()

	// One engine call for the folded group, carrying the newest state.
	eng.mu.Lock()
	defer eng.mu.Unlock()
	var folded *fakeCall
	for i := range eng.calls {
		if eng.calls[i].seg == "docs/d#p0" {
			folded = &eng.calls[i]
		}
	}
	if folded == nil {
		t.Fatal("folded segment never executed")
	}
	if len(eng.calls) != 2 {
		t.Fatalf("engine calls = %d, want 2 (blocker + folded)", len(eng.calls))
	}
	if len(folded.hashes) != 1 || folded.hashes[0] != 3 {
		t.Fatalf("folded call hashes = %v, want the newest state [3]", folded.hashes)
	}
}

// A full interactive queue sheds new arrivals with an OverloadError whose
// Retry-After hint is clamped to the configured window; the queue depth
// never exceeds its cap.
func TestQueueFullSheds(t *testing.T) {
	eng := &fakeEngine{gate: make(chan struct{})}
	p, err := New(eng, Config{
		Workers:          1,
		InteractiveQueue: 4,
		RetryAfterMin:    2 * time.Second,
		RetryAfterMax:    10 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		close(eng.gate)
		p.Close(context.Background())
	}()

	// One executing + 4 queued (distinct segments, so no folding).
	var wg sync.WaitGroup
	for i := 0; i < 5; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			p.Observe(context.Background(), "docs", segment.ID(fmt.Sprintf("docs/d#p%d", i)), segment.GranularityParagraph, fp(uint32(i)))
		}()
		if i == 0 {
			waitFor(t, func() bool { return p.Stats().Interactive.Executed == 1 })
		} else {
			waitFor(t, func() bool { return p.Stats().Interactive.Depth == i })
		}
	}

	_, err = p.Observe(context.Background(), "docs", "docs/extra#p0", segment.GranularityParagraph, fp(42))
	oe, ok := AsOverload(err)
	if !ok {
		t.Fatalf("err = %v, want OverloadError", err)
	}
	if oe.Reason != ReasonQueueFull || oe.Lane != LaneInteractive {
		t.Fatalf("overload = %+v", oe)
	}
	if oe.RetryAfter < 2*time.Second || oe.RetryAfter > 10*time.Second {
		t.Fatalf("retry-after = %s outside clamp window", oe.RetryAfter)
	}
	st := p.Stats()
	if st.Interactive.MaxDepth > 4 {
		t.Fatalf("max depth %d exceeded cap 4", st.Interactive.MaxDepth)
	}
	if st.Interactive.Shed != 1 {
		t.Fatalf("shed = %d, want 1", st.Interactive.Shed)
	}
	for i := 0; i < 5; i++ {
		eng.gate <- struct{}{}
	}
	wg.Wait()
}

// Adaptive shedding: long before the queue is full, a stale head-of-line
// item (dwell past the bound) sheds new arrivals.
func TestAdaptiveDwellShed(t *testing.T) {
	var now atomic.Pointer[time.Time]
	t0 := time.Unix(1000, 0)
	now.Store(&t0)
	clock := func() time.Time { return *now.Load() }

	eng := &fakeEngine{gate: make(chan struct{})}
	p, err := New(eng, Config{
		Workers:          1,
		InteractiveQueue: 1000,
		MaxDwell:         2 * time.Second,
		Clock:            clock,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		close(eng.gate)
		p.Close(context.Background())
	}()

	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			p.Observe(context.Background(), "docs", segment.ID(fmt.Sprintf("docs/d#p%d", i)), segment.GranularityParagraph, fp(uint32(i)))
		}()
		if i == 0 {
			waitFor(t, func() bool { return p.Stats().Interactive.Executed == 1 })
		} else {
			waitFor(t, func() bool { return p.Stats().Interactive.Depth == 1 })
		}
	}

	// Queue has one item and plenty of free slots: admitted.
	wg.Add(1)
	go func() {
		defer wg.Done()
		p.Observe(context.Background(), "docs", "docs/d#p2", segment.GranularityParagraph, fp(7))
	}()
	waitFor(t, func() bool { return p.Stats().Interactive.Depth == 2 })

	// Advance the clock past MaxDwell: the head item is stale, arrivals shed.
	t1 := t0.Add(3 * time.Second)
	now.Store(&t1)
	_, err = p.Observe(context.Background(), "docs", "docs/d#p3", segment.GranularityParagraph, fp(8))
	oe, ok := AsOverload(err)
	if !ok || oe.Reason != ReasonStale {
		t.Fatalf("err = %v, want stale-queue OverloadError", err)
	}
	// The hint reflects the measured backlog age (3s), not the floor.
	if oe.RetryAfter != 3*time.Second {
		t.Fatalf("retry-after = %s, want 3s (head dwell)", oe.RetryAfter)
	}

	for i := 0; i < 3; i++ {
		eng.gate <- struct{}{}
	}
	wg.Wait()
}

// Queued work whose every waiter expired is dropped, not executed.
func TestDeadlineDrop(t *testing.T) {
	eng := &fakeEngine{gate: make(chan struct{})}
	p, err := New(eng, Config{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		close(eng.gate)
		p.Close(context.Background())
	}()

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		p.Observe(context.Background(), "docs", "docs/blocker#p0", segment.GranularityParagraph, fp(1))
	}()
	waitFor(t, func() bool { return p.Stats().Interactive.Executed == 1 })

	ctx, cancel := context.WithCancel(context.Background())
	wg.Add(1)
	go func() {
		defer wg.Done()
		_, err := p.Observe(ctx, "docs", "docs/dead#p0", segment.GranularityParagraph, fp(2))
		if !errors.Is(err, context.Canceled) {
			t.Errorf("expired waiter got %v, want context.Canceled", err)
		}
	}()
	waitFor(t, func() bool { return p.Stats().Interactive.Depth == 1 })
	cancel() // the only waiter gives up while queued

	eng.gate <- struct{}{} // release the blocker; the dead job is skipped
	wg.Wait()
	waitFor(t, func() bool { return p.Stats().Interactive.DeadlineDrops == 1 })

	if n := eng.n.Load(); n != 1 {
		t.Fatalf("engine calls = %d, want 1 (dead job must not execute)", n)
	}
}

// The interactive lane is served ahead of a deep bulk backlog.
func TestPriorityInteractiveFirst(t *testing.T) {
	eng := &fakeEngine{gate: make(chan struct{})}
	p, err := New(eng, Config{Workers: 1, BulkQueue: 16})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		close(eng.gate)
		p.Close(context.Background())
	}()

	var wg sync.WaitGroup
	// Occupy the worker, then queue 3 bulk flushes and 1 interactive
	// observe (arriving last).
	wg.Add(1)
	go func() {
		defer wg.Done()
		p.Observe(context.Background(), "docs", "docs/blocker#p0", segment.GranularityParagraph, fp(1))
	}()
	waitFor(t, func() bool { return p.Stats().Interactive.Executed == 1 })
	for i := 0; i < 3; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			p.ObserveBatch(context.Background(), "docs", []disclosure.BatchObservation{
				{Seg: segment.ID(fmt.Sprintf("docs/bulk%d#p0", i)), FP: fp(uint32(10 + i))},
			})
		}()
		waitFor(t, func() bool { return p.Stats().Bulk.Depth == i+1 })
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		p.Observe(context.Background(), "docs", "docs/urgent#p0", segment.GranularityParagraph, fp(2))
	}()
	waitFor(t, func() bool { return p.Stats().Interactive.Depth == 1 })

	for i := 0; i < 5; i++ {
		eng.gate <- struct{}{}
	}
	wg.Wait()

	eng.mu.Lock()
	defer eng.mu.Unlock()
	// The urgent interactive observe must execute immediately after the
	// blocker, ahead of all three queued bulk flushes.
	if len(eng.calls) != 5 {
		t.Fatalf("calls = %d, want 5", len(eng.calls))
	}
	if eng.calls[1].seg != "docs/urgent#p0" {
		order := make([]string, len(eng.calls))
		for i, c := range eng.calls {
			order[i] = string(c.seg)
		}
		t.Fatalf("interactive not prioritised; order = %v", order)
	}
}

// The debounce window delays an idle observe so trailing keystrokes fold
// in even when workers are free.
func TestCoalesceWindowDebounces(t *testing.T) {
	eng := &fakeEngine{}
	p, err := New(eng, Config{Workers: 2, CoalesceWindow: 50 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close(context.Background())

	var wg sync.WaitGroup
	results := make([]policy.Verdict, 2)
	for i := 0; i < 2; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			v, err := p.Observe(context.Background(), "docs", "docs/d#p0", segment.GranularityParagraph, fp(uint32(i + 1)))
			if err != nil {
				t.Errorf("observe: %v", err)
			}
			results[i] = v
		}()
		if i == 0 {
			waitFor(t, func() bool { return p.Stats().Interactive.Depth == 1 })
		}
	}
	wg.Wait()
	if n := eng.n.Load(); n != 1 {
		t.Fatalf("engine calls = %d, want 1 (debounce window must fold)", n)
	}
	if p.Stats().Folds != 1 {
		t.Fatalf("folds = %d, want 1", p.Stats().Folds)
	}
}

// Close drains queued work through the engine before returning, and
// subsequent submissions are shed as draining.
func TestCloseDrains(t *testing.T) {
	eng := &fakeEngine{delay: 5 * time.Millisecond}
	p, err := New(eng, Config{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := p.Observe(context.Background(), "docs", segment.ID(fmt.Sprintf("docs/d#p%d", i)), segment.GranularityParagraph, fp(uint32(i))); err != nil {
				t.Errorf("queued observe failed during drain: %v", err)
			}
		}()
	}
	waitFor(t, func() bool {
		st := p.Stats()
		return st.Interactive.Depth+int(st.Interactive.Executed) >= 8
	})

	if err := p.Close(context.Background()); err != nil {
		t.Fatalf("close: %v", err)
	}
	wg.Wait()
	if n := eng.n.Load(); n != 8 {
		t.Fatalf("engine calls = %d, want all 8 drained", n)
	}

	_, err = p.Observe(context.Background(), "docs", "docs/late#p0", segment.GranularityParagraph, fp(9))
	if oe, ok := AsOverload(err); !ok || oe.Reason != ReasonDraining {
		t.Fatalf("post-close observe err = %v, want draining OverloadError", err)
	}
}

// A drain whose context expires force-fails stranded waiters instead of
// hanging.
func TestCloseTimeoutStrandsCleanly(t *testing.T) {
	eng := &fakeEngine{gate: make(chan struct{})}
	p, err := New(eng, Config{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	errs := make([]error, 3)
	for i := 0; i < 3; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, errs[i] = p.Observe(context.Background(), "docs", segment.ID(fmt.Sprintf("docs/d#p%d", i)), segment.GranularityParagraph, fp(uint32(i)))
		}()
	}
	waitFor(t, func() bool { return p.Stats().Interactive.Depth == 2 })

	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	closeErr := make(chan error, 1)
	go func() { closeErr <- p.Close(ctx) }()

	select {
	case err := <-closeErr:
		if err == nil {
			t.Fatal("close succeeded with a wedged worker")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("close hung past its context")
	}
	close(eng.gate) // un-wedge the worker so it can exit
	wg.Wait()

	var stranded int
	for _, err := range errs {
		if oe, ok := AsOverload(err); ok && oe.Reason == ReasonDraining {
			stranded++
		}
	}
	if stranded != 2 {
		t.Fatalf("stranded waiters = %d, want 2", stranded)
	}
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatal("condition never held")
}
