// Package admission is the overload-robust ingestion pipeline in front of
// the policy engine. At production scale the dominant traffic is the docs
// editor's per-keystroke observe stream (§5): millions of tiny, bursty
// requests whose verdicts are superseded milliseconds later by the next
// keystroke. Left unmanaged, that stream either collapses the engine or —
// worse — buffers without bound until the process dies. The pipeline makes
// overload an explicit, bounded, observable state instead:
//
//   - Priority lanes. Interactive disclosure checks (single observes on the
//     per-keystroke path) are served ahead of bulk traffic (batched
//     re-index flushes). Under saturation the bulk lane degrades first, by
//     design: a delayed re-index is an inconvenience, a delayed disclosure
//     warning is a policy failure.
//   - Per-document coalescing. Observing a segment is last-write-wins on
//     its content, so N queued keystroke states of one segment fold into a
//     single engine call for the newest state; every folded waiter receives
//     that verdict. A fold is indistinguishable from the user having typed
//     slower — the engine sees a subsequence of the segment's states — so
//     coalesced verdicts are byte-identical to an unbatched engine fed the
//     same subsequence. An optional debounce window holds a fresh observe
//     eligible-but-waiting so the following keystrokes can fold in even on
//     an idle server.
//   - Bounded queues with explicit load shedding. Each lane has a hard
//     depth cap; arrivals past it are rejected immediately with an
//     *OverloadError carrying a Retry-After hint (HTTP 429 upstream),
//     never buffered. Memory is bounded by cap × item size.
//   - Adaptive shedding. Before the queue is full, arrivals are shed when
//     the head-of-line item has waited longer than the lane's dwell bound —
//     a full queue that is also stale means the engine is not keeping up,
//     and admitting more work only manufactures deadline misses. The bulk
//     lane's dwell bound is a fraction of the interactive one, so bulk
//     sheds first. The same measured quantities drive the obs gauges
//     (queue depth, shed rate, lane latency histograms).
//   - Deadline propagation. Every waiter carries its request context; work
//     whose waiters have all expired by execution time is dropped, not
//     executed — the verdict would be undeliverable.
//   - Graceful drain. Close stops admitting, lets the workers finish every
//     queued item (so accepted-but-queued observes reach the journal before
//     the WAL closes), and only force-fails the remainder when the drain
//     context expires.
package admission

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"time"

	"github.com/lsds/browserflow/internal/disclosure"
	"github.com/lsds/browserflow/internal/fingerprint"
	"github.com/lsds/browserflow/internal/obs"
	"github.com/lsds/browserflow/internal/policy"
	"github.com/lsds/browserflow/internal/segment"
)

// Lane identifies a priority class.
type Lane int

const (
	// LaneInteractive carries per-keystroke observes and other
	// latency-sensitive disclosure checks. It is served first.
	LaneInteractive Lane = iota

	// LaneBulk carries batched flushes and re-index traffic. It degrades
	// first under load.
	LaneBulk

	numLanes
)

// String implements fmt.Stringer.
func (l Lane) String() string {
	switch l {
	case LaneInteractive:
		return "interactive"
	case LaneBulk:
		return "bulk"
	default:
		return fmt.Sprintf("lane(%d)", int(l))
	}
}

// Engine is the subset of the policy engine the pipeline drives.
// *policy.Engine satisfies it; tests substitute slow or blocking fakes.
type Engine interface {
	ObserveEditFPCtx(ctx context.Context, seg segment.ID, service string, fp *fingerprint.Fingerprint) (policy.Verdict, error)
	ObserveDocumentEditFPCtx(ctx context.Context, doc segment.ID, service string, fp *fingerprint.Fingerprint) (policy.Verdict, error)
	ObserveBatchFPCtx(ctx context.Context, service string, items []disclosure.BatchObservation) ([]policy.Verdict, error)
}

// Reasons a request is shed, carried on OverloadError and used as the
// obs shed-counter label.
const (
	// ReasonQueueFull: the lane's bounded queue is at capacity.
	ReasonQueueFull = "queue-full"

	// ReasonStale: adaptive shed — the lane's head-of-line item has waited
	// past the dwell bound, so the engine is not draining fast enough for
	// a new arrival to meet any reasonable deadline.
	ReasonStale = "queue-stale"

	// ReasonDraining: the pipeline is shutting down and admits no new work.
	ReasonDraining = "draining"
)

// OverloadError reports that the pipeline shed a request instead of
// queueing it. RetryAfter is the server's advice on when capacity is
// likely to exist again (HTTP Retry-After upstream).
type OverloadError struct {
	Lane       Lane
	Reason     string
	RetryAfter time.Duration
}

// Error implements error.
func (e *OverloadError) Error() string {
	return fmt.Sprintf("admission: %s lane overloaded (%s), retry after %s", e.Lane, e.Reason, e.RetryAfter)
}

// AsOverload unwraps an OverloadError from err, if present.
func AsOverload(err error) (*OverloadError, bool) {
	var oe *OverloadError
	if errors.As(err, &oe) {
		return oe, true
	}
	return nil, false
}

// ErrClosed is returned by Submit paths after Close has completed.
var ErrClosed = errors.New("admission: pipeline closed")

// Config tunes a Pipeline. The zero value gets production defaults.
type Config struct {
	// CoalesceWindow holds a freshly queued interactive observe back this
	// long so later keystrokes of the same segment can fold into it.
	// 0 disables debouncing: folding still happens whenever a same-segment
	// observe is queued behind a backlog, which costs idle traffic nothing.
	CoalesceWindow time.Duration

	// InteractiveQueue caps the interactive lane depth (default 4096).
	InteractiveQueue int

	// BulkQueue caps the bulk lane depth in flushes, not items
	// (default 256).
	BulkQueue int

	// Workers is the engine-call concurrency (default GOMAXPROCS).
	Workers int

	// MaxDwell is the interactive lane's adaptive-shed bound: when the
	// head-of-line item is older than this, new interactive arrivals are
	// shed (default 2s).
	MaxDwell time.Duration

	// BulkMaxDwell is the bulk lane's bound (default MaxDwell/4), so bulk
	// sheds before interactive capacity is threatened.
	BulkMaxDwell time.Duration

	// RetryAfterMin / RetryAfterMax clamp the Retry-After hint
	// (defaults 1s / 30s).
	RetryAfterMin time.Duration
	RetryAfterMax time.Duration

	// Clock is the injectable time source (default time.Now).
	Clock func() time.Time

	// Obs, when set, registers queue-depth gauges, shed/fold counters and
	// per-lane wait/exec latency histograms in the bundle's registry.
	Obs *obs.Obs
}

func (c Config) withDefaults() Config {
	if c.InteractiveQueue <= 0 {
		c.InteractiveQueue = 4096
	}
	if c.BulkQueue <= 0 {
		c.BulkQueue = 256
	}
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.MaxDwell <= 0 {
		c.MaxDwell = 2 * time.Second
	}
	if c.BulkMaxDwell <= 0 {
		c.BulkMaxDwell = c.MaxDwell / 4
	}
	if c.RetryAfterMin <= 0 {
		c.RetryAfterMin = time.Second
	}
	if c.RetryAfterMax <= 0 {
		c.RetryAfterMax = 30 * time.Second
	}
	if c.Clock == nil {
		c.Clock = time.Now
	}
	return c
}

// result is what a waiter receives: a single verdict (interactive) or a
// verdict slice (bulk), or an error.
type result struct {
	verdict policy.Verdict
	batch   []policy.Verdict
	err     error
}

// waiter is one blocked caller attached to a job. Folded jobs carry many.
type waiter struct {
	ctx  context.Context
	done chan result // buffered 1; the worker never blocks on delivery
}

type coalesceKey struct {
	service string
	seg     segment.ID
	gran    segment.Granularity
}

// job is one unit of queued work: a (possibly folded) interactive observe
// or a bulk flush.
type job struct {
	lane    Lane
	key     coalesceKey
	fp      *fingerprint.Fingerprint
	service string
	batch   []disclosure.BatchObservation

	enqueued time.Time
	readyAt  time.Time
	waiters  []*waiter
	folds    int
}

// laneState is one bounded FIFO plus its counters.
type laneState struct {
	queue    []*job // FIFO; index 0 is the head
	cap      int
	maxDwell time.Duration

	submitted     uint64
	executed      uint64
	shed          uint64
	deadlineDrops uint64
	maxDepth      int

	waitHist *obs.Histogram
	execHist *obs.Histogram
}

// LaneStats is a point-in-time view of one lane.
type LaneStats struct {
	// Depth is the current queue length; it never exceeds Cap — the
	// pipeline's bounded-memory guarantee.
	Depth int

	// Cap is the configured queue bound.
	Cap int

	// MaxDepth is the high-water mark since start.
	MaxDepth int

	// Submitted counts admitted jobs (folds are not re-submissions).
	Submitted uint64

	// Executed counts engine calls made for this lane.
	Executed uint64

	// Shed counts arrivals rejected with an OverloadError.
	Shed uint64

	// DeadlineDrops counts queued jobs skipped because every waiter's
	// context had expired before execution.
	DeadlineDrops uint64
}

// Stats is a point-in-time view of the pipeline.
type Stats struct {
	Interactive LaneStats
	Bulk        LaneStats

	// Folds counts keystroke observes folded into an already-queued
	// observe of the same segment.
	Folds uint64

	// Draining reports that Close has begun.
	Draining bool
}

// Lane returns the stats for one lane.
func (s Stats) Lane(l Lane) LaneStats {
	if l == LaneBulk {
		return s.Bulk
	}
	return s.Interactive
}

// Pipeline is the admission control layer. It is safe for concurrent use.
type Pipeline struct {
	engine Engine
	cfg    Config

	mu       sync.Mutex
	cond     *sync.Cond
	lanes    [numLanes]*laneState
	pending  map[coalesceKey]*job // queued (not yet executing) interactive observes
	folds    uint64
	draining bool
	closed   bool
	rr       uint64 // dequeue round counter for bulk anti-starvation

	wg sync.WaitGroup

	shedCtr map[string]*obs.Counter
	foldCtr *obs.Counter
	dropCtr *obs.Counter
}

// New builds a Pipeline over engine and starts its workers.
func New(engine Engine, cfg Config) (*Pipeline, error) {
	if engine == nil {
		return nil, fmt.Errorf("admission: engine is required")
	}
	cfg = cfg.withDefaults()
	p := &Pipeline{
		engine:  engine,
		cfg:     cfg,
		pending: make(map[coalesceKey]*job),
	}
	p.cond = sync.NewCond(&p.mu)
	p.lanes[LaneInteractive] = &laneState{cap: cfg.InteractiveQueue, maxDwell: cfg.MaxDwell}
	p.lanes[LaneBulk] = &laneState{cap: cfg.BulkQueue, maxDwell: cfg.BulkMaxDwell}
	p.registerObs()
	for i := 0; i < cfg.Workers; i++ {
		p.wg.Add(1)
		go p.worker()
	}
	return p, nil
}

// registerObs publishes the pipeline's health in the obs registry. Nil-safe:
// without a bundle the metric objects are detached no-ops.
func (p *Pipeline) registerObs() {
	reg := p.cfg.Obs.Registry()
	p.shedCtr = make(map[string]*obs.Counter)
	for lane := Lane(0); lane < numLanes; lane++ {
		for _, reason := range []string{ReasonQueueFull, ReasonStale, ReasonDraining} {
			name := fmt.Sprintf("bf_admission_shed_total{lane=%q,reason=%q}", lane.String(), reason)
			p.shedCtr[lane.String()+"/"+reason] = reg.Counter(name,
				"Requests shed by the admission pipeline, by lane and reason.")
		}
		p.lanes[lane].waitHist = reg.Histogram(
			fmt.Sprintf("bf_admission_queue_wait_seconds{lane=%q}", lane.String()),
			"Time jobs spend queued before the engine call starts.", nil)
		p.lanes[lane].execHist = reg.Histogram(
			fmt.Sprintf("bf_admission_exec_seconds{lane=%q}", lane.String()),
			"Engine execution time for admitted jobs.", nil)
	}
	p.foldCtr = reg.Counter("bf_admission_folds_total",
		"Keystroke observes folded into an already-queued observe of the same segment.")
	p.dropCtr = reg.Counter("bf_admission_deadline_drops_total",
		"Queued jobs dropped because every waiter's deadline expired before execution.")
	if reg != nil {
		reg.GaugeFunc("bf_admission_queue_depth{lane=\"interactive\"}",
			"Current admission queue depth by lane.",
			func() float64 { return float64(p.Stats().Interactive.Depth) })
		reg.GaugeFunc("bf_admission_queue_depth{lane=\"bulk\"}",
			"Current admission queue depth by lane.",
			func() float64 { return float64(p.Stats().Bulk.Depth) })
	}
}

// Observe submits one per-keystroke observe on the interactive lane and
// blocks until its (possibly folded) verdict is computed, the context
// expires, or the pipeline sheds it.
func (p *Pipeline) Observe(ctx context.Context, service string, seg segment.ID, gran segment.Granularity, fp *fingerprint.Fingerprint) (policy.Verdict, error) {
	if gran == 0 {
		gran = segment.GranularityParagraph
	}
	w := &waiter{ctx: ctx, done: make(chan result, 1)}
	now := p.cfg.Clock()

	p.mu.Lock()
	if p.draining {
		p.shedLocked(LaneInteractive, ReasonDraining, now)
		p.mu.Unlock()
		return policy.Verdict{}, &OverloadError{Lane: LaneInteractive, Reason: ReasonDraining, RetryAfter: p.cfg.RetryAfterMin}
	}
	key := coalesceKey{service: service, seg: seg, gran: gran}
	if j, ok := p.pending[key]; ok {
		// Fold: the newest keystroke state supersedes the queued one; all
		// waiters get the verdict for the newest state. The job keeps its
		// queue position, so folding never extends head-of-line dwell.
		j.fp = fp
		j.waiters = append(j.waiters, w)
		j.folds++
		p.folds++
		p.foldCtr.Inc()
		p.mu.Unlock()
	} else {
		if err := p.admitLocked(LaneInteractive, now); err != nil {
			p.mu.Unlock()
			return policy.Verdict{}, err
		}
		j := &job{
			lane:     LaneInteractive,
			key:      key,
			fp:       fp,
			service:  service,
			enqueued: now,
			readyAt:  now,
			waiters:  []*waiter{w},
		}
		if p.cfg.CoalesceWindow > 0 {
			j.readyAt = now.Add(p.cfg.CoalesceWindow)
			// Wake a worker when the debounce window elapses; the worker
			// re-checks readiness against the pipeline clock.
			time.AfterFunc(p.cfg.CoalesceWindow, p.cond.Broadcast)
		}
		p.pushLocked(j)
		p.mu.Unlock()
	}

	select {
	case r := <-w.done:
		return r.verdict, r.err
	case <-ctx.Done():
		return policy.Verdict{}, ctx.Err()
	}
}

// ObserveBatch submits a coalesced flush on the bulk lane and blocks until
// its verdicts are computed, the context expires, or the pipeline sheds it.
func (p *Pipeline) ObserveBatch(ctx context.Context, service string, items []disclosure.BatchObservation) ([]policy.Verdict, error) {
	w := &waiter{ctx: ctx, done: make(chan result, 1)}
	now := p.cfg.Clock()

	p.mu.Lock()
	if p.draining {
		p.shedLocked(LaneBulk, ReasonDraining, now)
		p.mu.Unlock()
		return nil, &OverloadError{Lane: LaneBulk, Reason: ReasonDraining, RetryAfter: p.cfg.RetryAfterMin}
	}
	if err := p.admitLocked(LaneBulk, now); err != nil {
		p.mu.Unlock()
		return nil, err
	}
	j := &job{
		lane:     LaneBulk,
		service:  service,
		batch:    items,
		enqueued: now,
		readyAt:  now,
		waiters:  []*waiter{w},
	}
	p.pushLocked(j)
	p.mu.Unlock()

	select {
	case r := <-w.done:
		return r.batch, r.err
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// admitLocked decides whether a new arrival may join lane's queue,
// returning an *OverloadError when it must be shed. Caller holds p.mu.
func (p *Pipeline) admitLocked(lane Lane, now time.Time) error {
	ls := p.lanes[lane]
	if len(ls.queue) >= ls.cap {
		p.shedLocked(lane, ReasonQueueFull, now)
		return &OverloadError{Lane: lane, Reason: ReasonQueueFull, RetryAfter: p.retryAfterLocked(lane, now)}
	}
	// Adaptive shed: a head-of-line item older than the dwell bound means
	// the lane is not draining; admitting more work only queues deadline
	// misses. The bulk lane's bound is tighter, so it degrades first.
	if len(ls.queue) > 0 {
		if dwell := now.Sub(ls.queue[0].enqueued); dwell > ls.maxDwell {
			p.shedLocked(lane, ReasonStale, now)
			return &OverloadError{Lane: lane, Reason: ReasonStale, RetryAfter: p.retryAfterLocked(lane, now)}
		}
	}
	return nil
}

// retryAfterLocked estimates when capacity will exist again: the time the
// current head-of-line item has already waited is a live measurement of the
// backlog's age, clamped to the configured window. Caller holds p.mu.
func (p *Pipeline) retryAfterLocked(lane Lane, now time.Time) time.Duration {
	est := p.cfg.RetryAfterMin
	if q := p.lanes[lane].queue; len(q) > 0 {
		if dwell := now.Sub(q[0].enqueued); dwell > est {
			est = dwell
		}
	}
	if est > p.cfg.RetryAfterMax {
		est = p.cfg.RetryAfterMax
	}
	return est
}

func (p *Pipeline) shedLocked(lane Lane, reason string, _ time.Time) {
	p.lanes[lane].shed++
	if c := p.shedCtr[lane.String()+"/"+reason]; c != nil {
		c.Inc()
	}
}

func (p *Pipeline) pushLocked(j *job) {
	ls := p.lanes[j.lane]
	ls.queue = append(ls.queue, j)
	ls.submitted++
	if d := len(ls.queue); d > ls.maxDepth {
		ls.maxDepth = d
	}
	if j.lane == LaneInteractive && j.key != (coalesceKey{}) {
		p.pending[j.key] = j
	}
	p.cond.Signal()
}

// nextLocked pops the next eligible job, preferring the interactive lane.
// Every eighth dequeue offers the bulk lane first so sustained interactive
// saturation degrades bulk to a trickle rather than total starvation.
// Returns (nil, wait) when no job is eligible; wait>0 means a queued job
// becomes ready at now+wait. Caller holds p.mu.
func (p *Pipeline) nextLocked(now time.Time) (*job, time.Duration) {
	order := [2]Lane{LaneInteractive, LaneBulk}
	if p.rr%8 == 7 {
		order = [2]Lane{LaneBulk, LaneInteractive}
	}
	var wait time.Duration
	for _, lane := range order {
		ls := p.lanes[lane]
		if len(ls.queue) == 0 {
			continue
		}
		head := ls.queue[0]
		if head.readyAt.After(now) && !p.draining {
			// Still inside its debounce window (drain ignores windows —
			// folding opportunities are over).
			if d := head.readyAt.Sub(now); wait == 0 || d < wait {
				wait = d
			}
			continue
		}
		ls.queue[0] = nil
		ls.queue = ls.queue[1:]
		if lane == LaneInteractive && head.key != (coalesceKey{}) {
			delete(p.pending, head.key)
		}
		p.rr++ // count successful dequeues only, so lane order is deterministic
		return head, 0
	}
	return nil, wait
}

// worker drains the lanes until the pipeline closes.
func (p *Pipeline) worker() {
	defer p.wg.Done()
	for {
		p.mu.Lock()
		var j *job
		for {
			if p.closed {
				p.mu.Unlock()
				return
			}
			now := p.cfg.Clock()
			var wait time.Duration
			j, wait = p.nextLocked(now)
			if j != nil {
				break
			}
			if p.draining && p.queuesEmptyLocked() {
				// Drained: wake Close and any sibling workers, then exit.
				p.cond.Broadcast()
				p.mu.Unlock()
				return
			}
			if wait > 0 {
				// A job is debouncing; its AfterFunc will broadcast.
				p.cond.Wait()
				continue
			}
			p.cond.Wait()
		}
		ls := p.lanes[j.lane]
		ls.executed++
		p.mu.Unlock()
		p.execute(j)
	}
}

func (p *Pipeline) queuesEmptyLocked() bool {
	for _, ls := range p.lanes {
		if len(ls.queue) > 0 {
			return false
		}
	}
	return true
}

// execute runs one job against the engine and fans the result out to every
// waiter that is still alive.
func (p *Pipeline) execute(j *job) {
	// Deadline propagation: waiters whose context expired while the job
	// was queued no longer want the answer. If none remain, the work is
	// dropped, not executed.
	live := j.waiters[:0]
	for _, w := range j.waiters {
		if w.ctx.Err() == nil {
			live = append(live, w)
		}
	}
	j.waiters = live
	if len(live) == 0 {
		p.mu.Lock()
		p.lanes[j.lane].executed-- // it never reached the engine
		p.lanes[j.lane].deadlineDrops++
		p.mu.Unlock()
		p.dropCtr.Inc()
		return
	}

	start := p.cfg.Clock()
	if h := p.lanes[j.lane].waitHist; h != nil {
		h.Observe(start.Sub(j.enqueued))
	}
	// Execute under the first live waiter's values (trace context) but
	// detached from its cancellation: folded siblings may outlive it.
	ctx := context.WithoutCancel(live[0].ctx)
	var r result
	if j.lane == LaneBulk {
		r.batch, r.err = p.engine.ObserveBatchFPCtx(ctx, j.service, j.batch)
	} else if j.key.gran == segment.GranularityDocument {
		r.verdict, r.err = p.engine.ObserveDocumentEditFPCtx(ctx, j.key.seg, j.service, j.fp)
	} else {
		r.verdict, r.err = p.engine.ObserveEditFPCtx(ctx, j.key.seg, j.service, j.fp)
	}
	if h := p.lanes[j.lane].execHist; h != nil {
		h.Observe(p.cfg.Clock().Sub(start))
	}
	for _, w := range live {
		w.done <- r // buffered; never blocks
	}
}

// Stats returns a point-in-time snapshot.
func (p *Pipeline) Stats() Stats {
	p.mu.Lock()
	defer p.mu.Unlock()
	mk := func(l Lane) LaneStats {
		ls := p.lanes[l]
		return LaneStats{
			Depth:         len(ls.queue),
			Cap:           ls.cap,
			MaxDepth:      ls.maxDepth,
			Submitted:     ls.submitted,
			Executed:      ls.executed,
			Shed:          ls.shed,
			DeadlineDrops: ls.deadlineDrops,
		}
	}
	return Stats{
		Interactive: mk(LaneInteractive),
		Bulk:        mk(LaneBulk),
		Folds:       p.folds,
		Draining:    p.draining,
	}
}

// Draining reports whether Close has begun.
func (p *Pipeline) Draining() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.draining
}

// Close stops admitting new work, drains everything already queued through
// the engine, and stops the workers. Jobs still queued when ctx expires are
// force-failed with a draining OverloadError. Safe to call more than once.
//
// Callers that journal mutations must Close the pipeline BEFORE closing
// the durability layer: drain is what guarantees accepted-but-queued
// observes reach the WAL on SIGTERM.
func (p *Pipeline) Close(ctx context.Context) error {
	p.mu.Lock()
	if p.closed && p.queuesEmptyLocked() {
		p.mu.Unlock()
		p.wg.Wait()
		return nil
	}
	p.draining = true
	p.cond.Broadcast()
	p.mu.Unlock()

	done := make(chan struct{})
	go func() {
		p.wg.Wait()
		close(done)
	}()

	select {
	case <-done:
		p.mu.Lock()
		p.closed = true
		p.mu.Unlock()
		return nil
	case <-ctx.Done():
		// Force-stop: fail whatever is still queued so no waiter hangs.
		p.mu.Lock()
		p.closed = true
		var stranded []*waiter
		for lane, ls := range p.lanes {
			for _, j := range ls.queue {
				stranded = append(stranded, j.waiters...)
				p.shedLocked(Lane(lane), ReasonDraining, p.cfg.Clock())
			}
			ls.queue = nil
		}
		p.pending = make(map[coalesceKey]*job)
		p.cond.Broadcast()
		p.mu.Unlock()
		for _, w := range stranded {
			w.done <- result{err: &OverloadError{Lane: LaneInteractive, Reason: ReasonDraining, RetryAfter: p.cfg.RetryAfterMin}}
		}
		// Do not wait for the workers here: one may be wedged inside an
		// engine call, which is exactly why the drain context expired.
		return fmt.Errorf("admission: drain aborted with work queued: %w", ctx.Err())
	}
}
