package segment

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestSplitBasic(t *testing.T) {
	text := "First paragraph line one.\nLine two.\n\nSecond paragraph.\n\n\n\nThird."
	pars := Split("doc1", text)
	if len(pars) != 3 {
		t.Fatalf("len=%d, want 3", len(pars))
	}
	if pars[0].Text != "First paragraph line one.\nLine two." {
		t.Errorf("pars[0].Text=%q", pars[0].Text)
	}
	if pars[1].Text != "Second paragraph." {
		t.Errorf("pars[1].Text=%q", pars[1].Text)
	}
	if pars[2].Text != "Third." {
		t.Errorf("pars[2].Text=%q", pars[2].Text)
	}
	for i, p := range pars {
		if p.Index != i {
			t.Errorf("pars[%d].Index=%d", i, p.Index)
		}
		if p.Doc != "doc1" {
			t.Errorf("pars[%d].Doc=%q", i, p.Doc)
		}
	}
}

func TestSplitEdgeCases(t *testing.T) {
	tests := []struct {
		name string
		give string
		want int
	}{
		{name: "empty", give: "", want: 0},
		{name: "only blank lines", give: "\n\n \n\t\n", want: 0},
		{name: "single line", give: "hello", want: 1},
		{name: "trailing newline", give: "hello\n", want: 1},
		{name: "leading blanks", give: "\n\nhello", want: 1},
		{name: "windows newlines treated as content", give: "a\n\nb", want: 2},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := Split("d", tt.give); len(got) != tt.want {
				t.Errorf("len=%d, want %d", len(got), tt.want)
			}
		})
	}
}

func TestSegmentIDs(t *testing.T) {
	doc := DocumentID("wiki/guidelines")
	docID := DocSegmentID(doc)
	parID := ParSegmentID(doc, "p3")
	if docID.IsParagraph() {
		t.Error("document ID reported as paragraph")
	}
	if !parID.IsParagraph() {
		t.Error("paragraph ID not reported as paragraph")
	}
	if parID.Document() != doc {
		t.Errorf("parID.Document()=%q, want %q", parID.Document(), doc)
	}
	if docID.Document() != doc {
		t.Errorf("docID.Document()=%q, want %q", docID.Document(), doc)
	}
}

func TestGranularityString(t *testing.T) {
	if GranularityParagraph.String() != "paragraph" {
		t.Error("paragraph string")
	}
	if GranularityDocument.String() != "document" {
		t.Error("document string")
	}
	if Granularity(99).String() != "granularity(99)" {
		t.Error("unknown granularity string")
	}
}

func TestJoinRoundTrip(t *testing.T) {
	text := "one one one.\n\ntwo two.\n\nthree."
	pars := Split("d", text)
	if got := Join(pars); got != text {
		t.Errorf("Join(Split(x))=%q, want %q", got, text)
	}
}

// Property: Split then Join then Split is a fixed point.
func TestQuickSplitJoinFixedPoint(t *testing.T) {
	f := func(lines []string) bool {
		text := strings.Join(lines, "\n")
		once := Split("d", text)
		again := Split("d", Join(once))
		if len(once) != len(again) {
			return false
		}
		for i := range once {
			if once[i].Text != again[i].Text {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: paragraph IDs within a document are unique.
func TestQuickUniqueIDs(t *testing.T) {
	f := func(blob string) bool {
		pars := Split("doc", blob)
		seen := make(map[ID]bool, len(pars))
		for _, p := range pars {
			if seen[p.ID] {
				return false
			}
			seen[p.ID] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
