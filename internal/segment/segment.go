// Package segment models BrowserFlow's text segments (§3.1, §4.1).
//
// BrowserFlow tracks text propagation at two granularities independently:
// individual paragraphs and entire documents. This package defines the
// segment identity scheme shared by the fingerprint index, the disclosure
// tracker and the TDM policy layer, and splits raw document text into
// paragraphs the way the browser plug-in derives them from DOM elements.
package segment

import (
	"fmt"
	"strings"
)

// Granularity selects one of the two tracking granularities of §4.1.
type Granularity int

const (
	// GranularityParagraph tracks individual paragraphs.
	GranularityParagraph Granularity = iota + 1

	// GranularityDocument tracks whole documents.
	GranularityDocument
)

// String implements fmt.Stringer.
func (g Granularity) String() string {
	switch g {
	case GranularityParagraph:
		return "paragraph"
	case GranularityDocument:
		return "document"
	default:
		return fmt.Sprintf("granularity(%d)", int(g))
	}
}

// DocumentID identifies a document within a service, e.g. "wiki/interview-guidelines".
type DocumentID string

// ID identifies one trackable text segment: either a whole document or one
// of its paragraphs.
type ID string

// DocSegmentID returns the segment ID of the whole document.
func DocSegmentID(doc DocumentID) ID {
	return ID(string(doc))
}

// ParSegmentID returns the segment ID for paragraph key within doc. The key
// is stable for the lifetime of the paragraph (in the browser it is the DOM
// element identity; for corpora it is the paragraph index).
func ParSegmentID(doc DocumentID, key string) ID {
	return ID(string(doc) + "#" + key)
}

// Document returns the document part of a segment ID.
func (id ID) Document() DocumentID {
	s := string(id)
	if i := strings.IndexByte(s, '#'); i >= 0 {
		return DocumentID(s[:i])
	}
	return DocumentID(s)
}

// IsParagraph reports whether id names a paragraph (rather than a whole
// document).
func (id ID) IsParagraph() bool {
	return strings.IndexByte(string(id), '#') >= 0
}

// Key maps a segment ID onto the 32-bit partition keyspace (FNV-1a). A
// paragraph and its owning document hash independently, so a document's
// paragraphs spread across partitions while each individual segment has
// exactly one home. The partition ring assigns contiguous key ranges to
// partitions; Key is the only routing function, shared by routers and
// partition nodes so ownership decisions agree byte-for-byte.
func Key(id ID) uint32 {
	const (
		offset32 = 2166136261
		prime32  = 16777619
	)
	h := uint32(offset32)
	for i := 0; i < len(id); i++ {
		h ^= uint32(id[i])
		h *= prime32
	}
	return h
}

// Paragraph is one paragraph of a document.
type Paragraph struct {
	// ID is the paragraph's segment ID.
	ID ID

	// Doc is the owning document.
	Doc DocumentID

	// Index is the zero-based position of the paragraph within the document.
	Index int

	// Text is the paragraph's raw (un-normalised) text.
	Text string
}

// Split breaks document text into paragraphs. Paragraphs are separated by
// one or more blank lines; single line breaks within a paragraph are kept.
// Whitespace-only paragraphs are dropped.
func Split(doc DocumentID, text string) []Paragraph {
	var out []Paragraph
	for _, block := range splitBlocks(text) {
		out = append(out, Paragraph{
			ID:    ParSegmentID(doc, fmt.Sprintf("p%d", len(out))),
			Doc:   doc,
			Index: len(out),
			Text:  block,
		})
	}
	return out
}

// splitBlocks splits text on blank lines into trimmed, non-empty blocks.
func splitBlocks(text string) []string {
	var (
		blocks []string
		cur    []string
	)
	flush := func() {
		if len(cur) == 0 {
			return
		}
		block := strings.TrimSpace(strings.Join(cur, "\n"))
		if block != "" {
			blocks = append(blocks, block)
		}
		cur = cur[:0]
	}
	for _, line := range strings.Split(text, "\n") {
		if strings.TrimSpace(line) == "" {
			flush()
			continue
		}
		cur = append(cur, line)
	}
	flush()
	return blocks
}

// Join reassembles paragraph texts into a document body with blank-line
// separators, the inverse of Split up to whitespace normalisation.
func Join(pars []Paragraph) string {
	texts := make([]string, len(pars))
	for i, p := range pars {
		texts[i] = p.Text
	}
	return strings.Join(texts, "\n\n")
}
