package obs

import (
	"bytes"
	"context"
	"errors"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite golden files")

// fakeClock is a deterministic, manually advanced time source.
type fakeClock struct {
	mu  sync.Mutex
	now time.Time
}

func newFakeClock() *fakeClock {
	return &fakeClock{now: time.Date(2026, 1, 2, 3, 4, 5, 0, time.UTC)}
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.now = c.now.Add(d)
	c.mu.Unlock()
}

// populate drives a fixed event sequence into a registry. Called twice
// in the determinism test to prove byte-identical output.
func populate(reg *Registry, clk *fakeClock) {
	obsv := reg.Counter("bf_engine_observe_total", "Engine observe calls.")
	obsv.Add(41)
	obsv.Inc()
	reg.Counter(`bf_http_requests_total{endpoint="observe",code="200"}`, "HTTP requests.").Add(7)
	reg.Counter(`bf_http_requests_total{endpoint="check",code="503"}`, "HTTP requests.").Add(2)
	reg.Gauge("bf_wal_checkpoint_age_seconds", "Seconds since last checkpoint.").Set(12.5)
	reg.GaugeFunc("bf_breaker_state", "Circuit breaker state.", func() float64 { return 1 })
	h := reg.Histogram(`bf_http_request_seconds{endpoint="observe"}`, "Request latency.", nil)
	h.Observe(0)                     // zero lands in the first bucket
	h.Observe(100 * time.Microsecond) // exact first boundary
	h.Observe(3 * time.Millisecond)
	h.Observe(70 * time.Millisecond)
	h.Observe(42 * time.Second) // overflow bucket
	rw := reg.RateWindow("bf_observe_rate", "Observes per second.", 10)
	for i := 0; i < 30; i++ {
		rw.Mark()
	}
	clk.Advance(time.Second)
	rw.MarkN(10)
	clk.Advance(time.Second) // both marked seconds are now complete
}

func exposition(t *testing.T) string {
	t.Helper()
	clk := newFakeClock()
	reg := NewRegistry(clk.Now)
	populate(reg, clk)
	var buf bytes.Buffer
	reg.WritePrometheus(&buf)
	return buf.String()
}

// TestPrometheusGolden locks the full exposition format against a
// golden file: family grouping, sorted series, histogram cumulative
// buckets, float formatting, rate windows.
func TestPrometheusGolden(t *testing.T) {
	got := exposition(t)
	golden := filepath.Join("testdata", "exposition.golden")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden: %v (run with -update-golden to create)", err)
	}
	if got != string(want) {
		t.Errorf("exposition mismatch:\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}

// TestPrometheusDeterministic is the acceptance-criteria check: two
// independent registries fed identical events under identical fake
// clocks produce byte-identical /v1/metrics output.
func TestPrometheusDeterministic(t *testing.T) {
	a := exposition(t)
	b := exposition(t)
	if a != b {
		t.Fatalf("two fake-clock runs differ:\n--- a ---\n%s\n--- b ---\n%s", a, b)
	}
	if a == "" {
		t.Fatal("empty exposition")
	}
}

// TestHistogramBoundaries pins the le semantics at bucket edges: a
// value exactly on a boundary belongs to that boundary's bucket, zero
// belongs to the first bucket, and values beyond the last bound go to
// the overflow cell.
func TestHistogramBoundaries(t *testing.T) {
	h := newHistogram([]float64{0.001, 0.01, 0.1})
	h.Observe(0)                      // -> bucket le=0.001
	h.Observe(time.Millisecond)       // exactly 0.001 -> bucket le=0.001
	h.Observe(time.Millisecond + 1)   // just over -> le=0.01
	h.Observe(10 * time.Millisecond)  // exactly 0.01 -> le=0.01
	h.Observe(100 * time.Millisecond) // exactly 0.1 -> le=0.1
	h.Observe(time.Second)            // overflow
	s := h.Snapshot()
	wantCounts := []uint64{2, 2, 1, 1}
	for i, want := range wantCounts {
		if s.Counts[i] != want {
			t.Errorf("bucket %d: got %d want %d (counts %v)", i, s.Counts[i], want, s.Counts)
		}
	}
	if s.Count != 6 {
		t.Errorf("Count = %d, want 6", s.Count)
	}
	var sum uint64
	for _, c := range s.Counts {
		sum += c
	}
	if sum != s.Count {
		t.Errorf("Count %d != sum of buckets %d", s.Count, sum)
	}
	wantSum := (0 + 0.001 + 0.001000001 + 0.01 + 0.1 + 1.0)
	if diff := s.SumSecs - wantSum; diff > 1e-9 || diff < -1e-9 {
		t.Errorf("SumSecs = %v, want %v", s.SumSecs, wantSum)
	}
}

// TestRateWindowRollover drives a rate window across slot boundaries
// with a fake clock and checks the reported rate as events age in and
// out of the window.
func TestRateWindowRollover(t *testing.T) {
	clk := newFakeClock()
	w := newRateWindow(clk.Now, 4)

	w.MarkN(8) // second 0, still in progress
	if got := w.Rate(); got != 0 {
		t.Fatalf("in-progress second counted: rate = %v, want 0", got)
	}
	clk.Advance(time.Second) // second 0 complete
	if got := w.Rate(); got != 2 {
		t.Fatalf("after 1s: rate = %v, want 2 (8 events / 4s window)", got)
	}
	w.MarkN(4)               // second 1
	clk.Advance(time.Second) // seconds 0+1 complete: 12 events
	if got := w.Rate(); got != 3 {
		t.Fatalf("after 2s: rate = %v, want 3", got)
	}
	// Advance until second 0 ages out: window covers seconds [1..4].
	clk.Advance(3 * time.Second)
	if got := w.Rate(); got != 1 {
		t.Fatalf("after rollover: rate = %v, want 1 (only the 4-event second remains)", got)
	}
	// And fully out.
	clk.Advance(4 * time.Second)
	if got := w.Rate(); got != 0 {
		t.Fatalf("after full drain: rate = %v, want 0", got)
	}
	// Slot reuse: the ring wraps and old epochs are reclaimed.
	w.MarkN(20)
	clk.Advance(time.Second)
	if got := w.Rate(); got != 5 {
		t.Fatalf("after reuse: rate = %v, want 5", got)
	}
}

// TestCounterStriping checks that values accumulated across stripes sum
// correctly and remain monotone.
func TestCounterStriping(t *testing.T) {
	var c Counter
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if got := c.Value(); got != 8000 {
		t.Fatalf("Value = %d, want 8000", got)
	}
}

// TestTraceContext checks ID propagation, span recording with the fake
// clock, inert handles without a trace, and ring-buffer eviction.
func TestTraceContext(t *testing.T) {
	clk := newFakeClock()
	log := NewTraceLog(clk.Now, 4)

	// No trace in ctx: handle is inert.
	sp := StartSpan(context.Background(), "noop")
	sp.End(nil)
	if got := len(log.Snapshot()); got != 0 {
		t.Fatalf("inert span recorded: %d spans", got)
	}

	ctx := WithTrace(context.Background(), "bf-test", log)
	if got := TraceID(ctx); got != "bf-test" {
		t.Fatalf("TraceID = %q", got)
	}
	sp = StartSpan(ctx, "engine.observe")
	sp.SetAttr("hashes", "12")
	clk.Advance(7 * time.Millisecond)
	sp.End(nil)

	sp2 := StartSpan(ctx, "wal.append")
	clk.Advance(3 * time.Millisecond)
	sp2.End(errors.New("disk full"))

	spans := log.Query("bf-test")
	if len(spans) != 2 {
		t.Fatalf("got %d spans, want 2", len(spans))
	}
	if spans[0].Name != "engine.observe" || spans[0].Duration != 7*time.Millisecond {
		t.Errorf("span 0 = %+v", spans[0])
	}
	if spans[0].Attrs["hashes"] != "12" {
		t.Errorf("span 0 attrs = %v", spans[0].Attrs)
	}
	if spans[1].Err != "disk full" || spans[1].Duration != 3*time.Millisecond {
		t.Errorf("span 1 = %+v", spans[1])
	}

	// Eviction: capacity 4, push 5 more spans, oldest must fall out.
	for i := 0; i < 5; i++ {
		RecordSpan(ctx, "filler", clk.Now(), time.Millisecond, nil, nil)
	}
	all := log.Snapshot()
	if len(all) != 4 {
		t.Fatalf("ring holds %d spans, want 4", len(all))
	}
	for _, s := range all {
		if s.Name == "engine.observe" {
			t.Fatal("oldest span not evicted")
		}
	}
}

// TestNewTraceIDUniqueness mints a batch of IDs and checks format and
// uniqueness; with a fake clock the sequence is reproducible.
func TestNewTraceIDUniqueness(t *testing.T) {
	clk := newFakeClock()
	o := New(clk.Now, 16)
	seen := make(map[string]bool)
	for i := 0; i < 1000; i++ {
		id := o.NewTraceID()
		if !strings.HasPrefix(id, "bf-") || len(id) != 19 {
			t.Fatalf("bad trace ID %q", id)
		}
		if seen[id] {
			t.Fatalf("duplicate trace ID %q", id)
		}
		seen[id] = true
	}
	// Reproducible under the same fake clock.
	o2 := New(newFakeClock().Now, 16)
	if a, b := o2.NewTraceID(), New(newFakeClock().Now, 16).NewTraceID(); a != b {
		t.Fatalf("fake-clock trace IDs not reproducible: %q vs %q", a, b)
	}
}

// TestNilObsSafe exercises every entry point on a nil *Obs.
func TestNilObsSafe(t *testing.T) {
	var o *Obs
	if o.Registry() != nil || o.Traces() != nil {
		t.Fatal("nil Obs returned non-nil components")
	}
	if id := o.NewTraceID(); id != "" {
		t.Fatalf("nil Obs minted ID %q", id)
	}
	var nilReg *Registry
	nilReg.Counter("x", "").Inc()
	nilReg.Gauge("x", "").Set(1)
	nilReg.GaugeFunc("x", "", func() float64 { return 0 })
	nilReg.Histogram("x", "", nil).Observe(time.Millisecond)
	nilReg.RateWindow("x", "", 5).Mark()
	var buf bytes.Buffer
	nilReg.WritePrometheus(&buf)
	if buf.Len() != 0 {
		t.Fatal("nil registry wrote output")
	}
	var nilLog *TraceLog
	nilLog.Record(Span{})
	if nilLog.Snapshot() != nil || nilLog.Query("x") != nil {
		t.Fatal("nil trace log returned spans")
	}
}
