package obs

import (
	"context"
	"sync"
	"time"
)

// TraceHeader is the HTTP header that carries a BrowserFlow trace ID
// end-to-end: minted at bfproxy (or a client), propagated through
// tagserver handlers, the policy engine, WAL appends, and the
// replication stream.
const TraceHeader = "X-BF-Trace"

// Span is one timed unit of work attributed to a trace. Spans carry
// names, identifiers, byte/hash counts, and durations — never monitored
// text (the journal's privacy rule applies to traces too).
type Span struct {
	Trace    string            `json:"trace"`
	Name     string            `json:"name"`
	Start    time.Time         `json:"start"`
	Duration time.Duration     `json:"duration_ns"`
	Err      string            `json:"err,omitempty"`
	Attrs    map[string]string `json:"attrs,omitempty"`
}

// TraceLog is a fixed-capacity ring buffer of completed spans. Writers
// append under a short mutex (span completion is not the per-hash hot
// path); readers snapshot.
type TraceLog struct {
	clock Clock
	mu    sync.Mutex
	ring  []Span
	next  int
	n     int
}

// DefaultTraceCap is the default ring capacity.
const DefaultTraceCap = 4096

// NewTraceLog builds a trace ring with the given clock (nil means
// time.Now) and capacity (<=0 means DefaultTraceCap).
func NewTraceLog(clock Clock, capacity int) *TraceLog {
	if clock == nil {
		clock = time.Now
	}
	if capacity <= 0 {
		capacity = DefaultTraceCap
	}
	return &TraceLog{clock: clock, ring: make([]Span, capacity)}
}

// Record appends a completed span to the ring, evicting the oldest span
// when full. Safe on a nil receiver (drops the span).
func (t *TraceLog) Record(s Span) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.ring[t.next] = s
	t.next = (t.next + 1) % len(t.ring)
	if t.n < len(t.ring) {
		t.n++
	}
	t.mu.Unlock()
}

// Snapshot returns all buffered spans, oldest first.
func (t *TraceLog) Snapshot() []Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Span, 0, t.n)
	start := t.next - t.n
	if start < 0 {
		start += len(t.ring)
	}
	for i := 0; i < t.n; i++ {
		out = append(out, t.ring[(start+i)%len(t.ring)])
	}
	return out
}

// Query returns the buffered spans for one trace ID, oldest first.
func (t *TraceLog) Query(trace string) []Span {
	var out []Span
	for _, s := range t.Snapshot() {
		if s.Trace == trace {
			out = append(out, s)
		}
	}
	return out
}

// traceCtx is what rides the context: the trace ID plus the ring the
// spans should land in, so any layer below can record spans without a
// package-level global.
type traceCtx struct {
	id  string
	log *TraceLog
}

type traceKey struct{}

// WithTrace returns a context carrying the trace ID and destination
// span log. A nil log still propagates the ID (spans are dropped).
func WithTrace(ctx context.Context, id string, log *TraceLog) context.Context {
	if id == "" {
		return ctx
	}
	return context.WithValue(ctx, traceKey{}, traceCtx{id: id, log: log})
}

// TraceID returns the trace ID carried by ctx, or "".
func TraceID(ctx context.Context) string {
	if ctx == nil {
		return ""
	}
	tc, _ := ctx.Value(traceKey{}).(traceCtx)
	return tc.id
}

// traceFrom returns the full trace context, if any.
func traceFrom(ctx context.Context) (traceCtx, bool) {
	if ctx == nil {
		return traceCtx{}, false
	}
	tc, ok := ctx.Value(traceKey{}).(traceCtx)
	return tc, ok && tc.id != ""
}

// SpanHandle finishes one in-flight span. The zero value is a no-op, so
// callers unconditionally `defer sp.End(nil)`.
type SpanHandle struct {
	tc    traceCtx
	name  string
	start time.Time
	attrs map[string]string
}

// StartSpan begins a span named name if ctx carries a trace. When ctx
// has no trace (or no span log) the returned handle is inert and End
// costs one branch — instrumented code paths pay nothing when tracing
// is off.
func StartSpan(ctx context.Context, name string) SpanHandle {
	tc, ok := traceFrom(ctx)
	if !ok || tc.log == nil {
		return SpanHandle{}
	}
	return SpanHandle{tc: tc, name: name, start: tc.log.clock()}
}

// Active reports whether the span will be recorded; hot paths use it
// to skip attribute computation when tracing is off.
func (h SpanHandle) Active() bool { return h.tc.log != nil }

// SetAttr attaches a key/value attribute to the span. Values must
// follow the privacy rule: hashes, IDs, and counts only.
func (h *SpanHandle) SetAttr(key, value string) {
	if h.tc.log == nil {
		return
	}
	if h.attrs == nil {
		h.attrs = make(map[string]string, 2)
	}
	h.attrs[key] = value
}

// End completes the span, recording its duration and error (if any).
func (h SpanHandle) End(err error) {
	if h.tc.log == nil {
		return
	}
	end := h.tc.log.clock()
	s := Span{
		Trace:    h.tc.id,
		Name:     h.name,
		Start:    h.start,
		Duration: end.Sub(h.start),
		Attrs:    h.attrs,
	}
	if err != nil {
		s.Err = err.Error()
	}
	h.tc.log.Record(s)
}

// RecordSpan records an already-measured span against the trace carried
// by ctx. Used by layers that time work themselves (e.g. retry loops).
func RecordSpan(ctx context.Context, name string, start time.Time, d time.Duration, err error, attrs map[string]string) {
	tc, ok := traceFrom(ctx)
	if !ok || tc.log == nil {
		return
	}
	s := Span{Trace: tc.id, Name: name, Start: start, Duration: d, Attrs: attrs}
	if err != nil {
		s.Err = err.Error()
	}
	tc.log.Record(s)
}
