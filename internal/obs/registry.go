package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
	"unsafe"
)

// numStripes is the number of independent cells a Counter spreads its
// increments over. Must be a power of two.
const numStripes = 16

// cacheLine pads striped cells so adjacent stripes do not share a cache
// line (false sharing would serialise the "independent" stripes).
const cacheLine = 64

type stripedCell struct {
	v atomic.Uint64
	_ [cacheLine - 8]byte
}

// stripeIdx picks a stripe for the calling goroutine. Goroutine stacks
// are distinct allocations, so the address of a stack variable is a
// cheap, stable-enough per-goroutine discriminator. Bits below the frame
// alignment are discarded.
func stripeIdx() int {
	var b byte
	return int(uintptr(unsafe.Pointer(&b)) >> 9 & (numStripes - 1))
}

// Counter is a monotone event counter. Add is a single atomic add on a
// lock-striped cell; Value sums the stripes.
type Counter struct {
	cells [numStripes]stripedCell
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add adds n (n must be >= 0; counters are monotone).
func (c *Counter) Add(n uint64) {
	c.cells[stripeIdx()].v.Add(n)
}

// Value returns the current total. Concurrent adds may or may not be
// included, but the value never decreases across calls.
func (c *Counter) Value() uint64 {
	var t uint64
	for i := range c.cells {
		t += c.cells[i].v.Load()
	}
	return t
}

// Gauge is a settable instantaneous value.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// SetInt stores an integral value.
func (g *Gauge) SetInt(v int64) { g.Set(float64(v)) }

// Add adds delta (CAS loop; gauges are not hot-path).
func (g *Gauge) Add(delta float64) {
	for {
		old := g.bits.Load()
		nv := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, nv) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// DefBuckets are the default latency histogram bounds in seconds,
// spanning 100µs to ~10s — the range the paper's tail-latency figures
// (§6.2) care about.
var DefBuckets = []float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01,
	0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// Histogram is a fixed-bucket latency histogram. Observe performs one
// atomic add on the matching bucket cell and one atomic add on the
// nanosecond sum — no locks, no allocation. The exposed _count is
// derived from the bucket cells in a single pass, so a scraped snapshot
// always satisfies count == Σ buckets (no torn snapshots).
type Histogram struct {
	bounds  []float64 // sorted upper bounds, seconds
	cells   []atomic.Uint64
	sumNano atomic.Int64
}

func newHistogram(bounds []float64) *Histogram {
	b := append([]float64(nil), bounds...)
	sort.Float64s(b)
	return &Histogram{
		bounds: b,
		cells:  make([]atomic.Uint64, len(b)+1), // +1 = +Inf overflow
	}
}

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) {
	sec := d.Seconds()
	// Binary search for the first bound >= sec (le semantics: a value
	// exactly on a boundary lands in that boundary's bucket).
	lo, hi := 0, len(h.bounds)
	for lo < hi {
		mid := (lo + hi) / 2
		if h.bounds[mid] < sec {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	h.cells[lo].Add(1)
	h.sumNano.Add(int64(d))
}

// HistogramSnapshot is a consistent view of a histogram: Counts has one
// entry per bound plus the +Inf overflow, and Count == Σ Counts.
type HistogramSnapshot struct {
	Bounds  []float64
	Counts  []uint64
	Count   uint64
	SumSecs float64
}

// Snapshot reads every bucket cell once and derives the total from the
// same reads, so the invariant Count == Σ Counts holds even under
// concurrent observation.
func (h *Histogram) Snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Bounds: h.bounds,
		Counts: make([]uint64, len(h.cells)),
	}
	for i := range h.cells {
		c := h.cells[i].Load()
		s.Counts[i] = c
		s.Count += c
	}
	s.SumSecs = time.Duration(h.sumNano.Load()).Seconds()
	return s
}

// rateSlot is one second of a RateWindow ring.
type rateSlot struct {
	epoch atomic.Int64 // unix second this slot currently represents
	count atomic.Uint64
}

// RateWindow counts events over a sliding window of whole seconds and
// reports events/second. Mark is lock-free: one epoch check and one
// atomic add. The window is aligned to the registry clock, so rollover
// is deterministic under a fake clock.
type RateWindow struct {
	clock Clock
	slots []rateSlot
}

func newRateWindow(clock Clock, windowSecs int) *RateWindow {
	if windowSecs < 1 {
		windowSecs = 1
	}
	// One extra slot so the current (partial) second never aliases the
	// oldest full second being summed.
	return &RateWindow{clock: clock, slots: make([]rateSlot, windowSecs+1)}
}

// Mark records one event at the current clock second.
func (w *RateWindow) Mark() { w.MarkN(1) }

// MarkN records n events at the current clock second.
func (w *RateWindow) MarkN(n uint64) { w.markSec(w.clock().Unix(), n) }

// MarkAt records one event at t's second. Callers that already hold a
// timestamp (e.g. the RED wrapper, which reads the clock for the
// latency histogram anyway) use this to avoid a second clock read on
// the hot path.
func (w *RateWindow) MarkAt(t time.Time) { w.markSec(t.Unix(), 1) }

func (w *RateWindow) markSec(sec int64, n uint64) {
	s := &w.slots[int(sec%int64(len(w.slots)))]
	if e := s.epoch.Load(); e != sec {
		// The slot has rolled around to a new second: claim it and reset.
		// A racing marker that loses the CAS observes the new epoch on
		// retry and adds to the freshly reset counter.
		if s.epoch.CompareAndSwap(e, sec) {
			s.count.Store(0)
		}
	}
	s.count.Add(n)
}

// Rate returns events/second over the last window, excluding the
// current in-progress second.
func (w *RateWindow) Rate() float64 {
	sec := w.clock().Unix()
	window := int64(len(w.slots) - 1)
	var total uint64
	for i := range w.slots {
		e := w.slots[i].epoch.Load()
		if e >= sec-window && e < sec {
			total += w.slots[i].count.Load()
		}
	}
	return float64(total) / float64(window)
}

const (
	kindCounter = iota
	kindGauge
	kindGaugeFunc
	kindHistogram
	kindRate
)

type metric struct {
	name   string // full series name, possibly with {labels}
	family string // name up to '{'
	help   string
	kind   int
	ctr    *Counter
	gauge  *Gauge
	fn     func() float64
	hist   *Histogram
	rate   *RateWindow
}

// Registry is a process-wide metric registry. Metric creation
// (get-or-create by name) takes a lock; all recording on the returned
// metric objects is lock-free. The exposition output is fully sorted,
// so two registries fed identical events under identical clocks produce
// byte-identical output.
type Registry struct {
	clock   Clock
	real    bool // clock is the wall clock; Since may take the monotonic fast path
	mu      sync.RWMutex
	metrics map[string]*metric
}

// NewRegistry builds a registry with the given clock (nil means time.Now).
func NewRegistry(clock Clock) *Registry {
	real := clock == nil
	if clock == nil {
		clock = time.Now
	}
	return &Registry{clock: clock, real: real, metrics: make(map[string]*metric)}
}

// Clock returns the registry's time source.
func (r *Registry) Clock() Clock {
	if r == nil {
		return time.Now
	}
	return r.clock
}

// Now is shorthand for Clock()(). Safe on nil (falls back to time.Now).
func (r *Registry) Now() time.Time { return r.Clock()() }

// Since returns the elapsed time since start on the registry's clock.
// Under the real clock it uses time.Since, which reads only the cheap
// monotonic counter instead of the full wall clock — about half the
// cost of a second Now() on the latency-measurement hot path. Fake
// clocks keep the deterministic Sub path.
func (r *Registry) Since(start time.Time) time.Duration {
	if r == nil || r.real {
		return time.Since(start)
	}
	return r.clock().Sub(start)
}

func (r *Registry) lookup(name string, kind int) (*metric, bool) {
	r.mu.RLock()
	m, ok := r.metrics[name]
	r.mu.RUnlock()
	if ok && m.kind != kind {
		panic(fmt.Sprintf("obs: metric %q re-registered with a different kind", name))
	}
	return m, ok
}

func family(name string) string {
	if i := strings.IndexByte(name, '{'); i >= 0 {
		return name[:i]
	}
	return name
}

func (r *Registry) register(name, help string, kind int, build func(*metric)) *metric {
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.metrics[name]; ok {
		if m.kind != kind {
			panic(fmt.Sprintf("obs: metric %q re-registered with a different kind", name))
		}
		return m
	}
	m := &metric{name: name, family: family(name), help: help, kind: kind}
	build(m)
	r.metrics[name] = m
	return m
}

// Counter returns the counter registered under name, creating it if
// needed. name may carry a Prometheus label suffix, e.g.
// `bf_http_requests_total{endpoint="observe",code="200"}`.
func (r *Registry) Counter(name, help string) *Counter {
	if r == nil {
		return &Counter{}
	}
	if m, ok := r.lookup(name, kindCounter); ok {
		return m.ctr
	}
	return r.register(name, help, kindCounter, func(m *metric) { m.ctr = &Counter{} }).ctr
}

// Gauge returns the gauge registered under name, creating it if needed.
func (r *Registry) Gauge(name, help string) *Gauge {
	if r == nil {
		return &Gauge{}
	}
	if m, ok := r.lookup(name, kindGauge); ok {
		return m.gauge
	}
	return r.register(name, help, kindGauge, func(m *metric) { m.gauge = &Gauge{} }).gauge
}

// GaugeFunc registers a gauge whose value is computed by fn at scrape
// time. Re-registering the same name replaces the function.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.metrics[name]; ok {
		if m.kind != kindGaugeFunc {
			panic(fmt.Sprintf("obs: metric %q re-registered with a different kind", name))
		}
		m.fn = fn
		return
	}
	r.metrics[name] = &metric{name: name, family: family(name), help: help, kind: kindGaugeFunc, fn: fn}
}

// Histogram returns the histogram registered under name, creating it
// with the given bucket bounds (seconds) if needed; nil bounds means
// DefBuckets.
func (r *Registry) Histogram(name, help string, bounds []float64) *Histogram {
	if r == nil {
		return newHistogram(DefBuckets)
	}
	if bounds == nil {
		bounds = DefBuckets
	}
	if m, ok := r.lookup(name, kindHistogram); ok {
		return m.hist
	}
	return r.register(name, help, kindHistogram, func(m *metric) { m.hist = newHistogram(bounds) }).hist
}

// RateWindow returns the rate window registered under name, creating it
// with the given window length (seconds) if needed. Exposed as a gauge
// reporting events/second.
func (r *Registry) RateWindow(name, help string, windowSecs int) *RateWindow {
	if r == nil {
		return newRateWindow(time.Now, windowSecs)
	}
	if m, ok := r.lookup(name, kindRate); ok {
		return m.rate
	}
	return r.register(name, help, kindRate, func(m *metric) { m.rate = newRateWindow(r.clock, windowSecs) }).rate
}

// fmtFloat renders a float the same way every time: integral values are
// printed without an exponent or trailing zeros, everything else uses
// the shortest round-trip representation.
func fmtFloat(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return strconv.FormatFloat(v, 'f', -1, 64)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func typeName(kind int) string {
	switch kind {
	case kindCounter:
		return "counter"
	case kindHistogram:
		return "histogram"
	default:
		return "gauge"
	}
}

// WritePrometheus writes the registry contents in Prometheus text
// exposition format. Families and series are emitted in sorted order;
// with a deterministic clock and identical event sequences the output
// is byte-identical across runs.
func (r *Registry) WritePrometheus(w io.Writer) {
	if r == nil {
		return
	}
	r.mu.RLock()
	ms := make([]*metric, 0, len(r.metrics))
	for _, m := range r.metrics {
		ms = append(ms, m)
	}
	r.mu.RUnlock()
	sort.Slice(ms, func(i, j int) bool {
		if ms[i].family != ms[j].family {
			return ms[i].family < ms[j].family
		}
		return ms[i].name < ms[j].name
	})
	var b strings.Builder
	lastFamily := ""
	for _, m := range ms {
		if m.family != lastFamily {
			if m.help != "" {
				fmt.Fprintf(&b, "# HELP %s %s\n", m.family, m.help)
			}
			fmt.Fprintf(&b, "# TYPE %s %s\n", m.family, typeName(m.kind))
			lastFamily = m.family
		}
		switch m.kind {
		case kindCounter:
			fmt.Fprintf(&b, "%s %d\n", m.name, m.ctr.Value())
		case kindGauge:
			fmt.Fprintf(&b, "%s %s\n", m.name, fmtFloat(m.gauge.Value()))
		case kindGaugeFunc:
			fmt.Fprintf(&b, "%s %s\n", m.name, fmtFloat(m.fn()))
		case kindRate:
			fmt.Fprintf(&b, "%s %s\n", m.name, fmtFloat(m.rate.Rate()))
		case kindHistogram:
			s := m.hist.Snapshot()
			base, labels := splitLabels(m.name)
			var cum uint64
			for i, bound := range s.Bounds {
				cum += s.Counts[i]
				fmt.Fprintf(&b, "%s_bucket%s %d\n", base, withLabel(labels, "le", fmtFloat(bound)), cum)
			}
			cum += s.Counts[len(s.Counts)-1]
			fmt.Fprintf(&b, "%s_bucket%s %d\n", base, withLabel(labels, "le", "+Inf"), cum)
			fmt.Fprintf(&b, "%s_sum%s %s\n", base, labels, fmtFloat(s.SumSecs))
			fmt.Fprintf(&b, "%s_count%s %d\n", base, labels, s.Count)
		}
	}
	io.WriteString(w, b.String())
}

// splitLabels separates `name{a="b"}` into `name` and `{a="b"}`.
func splitLabels(name string) (base, labels string) {
	if i := strings.IndexByte(name, '{'); i >= 0 {
		return name[:i], name[i:]
	}
	return name, ""
}

// withLabel appends key="value" to an existing (possibly empty) label set.
func withLabel(labels, key, value string) string {
	extra := key + `="` + value + `"`
	if labels == "" {
		return "{" + extra + "}"
	}
	return labels[:len(labels)-1] + "," + extra + "}"
}
