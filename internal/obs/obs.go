// Package obs is BrowserFlow's end-to-end observability layer: a
// process-wide metrics registry (counters, gauges, fixed-bucket latency
// histograms, rate windows), request tracing with ring-buffer span
// storage, and RED middleware for HTTP endpoints.
//
// Design constraints, in order:
//
//  1. Hot-path safety. Counter increments and histogram observations are
//     single atomic adds on lock-striped cells — no mutex is taken on the
//     observe path. Registration (creating a metric) takes a lock, but
//     metrics are registered once at startup.
//  2. Determinism under test. Every time source in the package is the
//     registry's injectable clock, so histogram contents, rate windows,
//     span durations, and the full Prometheus exposition are
//     byte-reproducible with a fake clock.
//  3. Privacy. Traces carry span names, IDs, hashes, and durations only —
//     never monitored text. This matches the journal's privacy rule.
//
// An *Obs value bundles a Registry and a TraceLog and is plumbed through
// the daemons; a nil *Obs is valid everywhere and disables instrumentation
// at near-zero cost.
package obs

import (
	"encoding/binary"
	"fmt"
	"sync/atomic"
	"time"
)

// Clock is the injectable time source. Production code uses time.Now;
// tests substitute a fake for byte-deterministic output.
type Clock func() time.Time

// Obs bundles the metric registry and trace log that instrumented
// components share. All methods are safe on a nil receiver, which
// disables instrumentation.
type Obs struct {
	reg    *Registry
	traces *TraceLog
	idSeq  atomic.Uint64
	idBase uint64
}

// New constructs an observability bundle with the given clock (nil means
// time.Now) and a trace ring of traceCap spans (<=0 means DefaultTraceCap).
func New(clock Clock, traceCap int) *Obs {
	if clock == nil {
		clock = time.Now
	}
	o := &Obs{
		reg:    NewRegistry(clock),
		traces: NewTraceLog(clock, traceCap),
	}
	// Seed the trace-ID base from the clock so IDs differ between
	// processes but remain deterministic under a fake clock.
	o.idBase = uint64(clock().UnixNano())
	return o
}

// Registry returns the bundled metric registry (nil on a nil Obs).
func (o *Obs) Registry() *Registry {
	if o == nil {
		return nil
	}
	return o.reg
}

// Traces returns the bundled trace log (nil on a nil Obs).
func (o *Obs) Traces() *TraceLog {
	if o == nil {
		return nil
	}
	return o.traces
}

// NewTraceID mints a process-unique trace identifier of the form
// "bf-<16 hex>". Deterministic under a fake clock: the ID is the seed
// time mixed with a process-local sequence number.
func (o *Obs) NewTraceID() string {
	if o == nil {
		return ""
	}
	n := o.idSeq.Add(1)
	var b [16]byte
	binary.BigEndian.PutUint64(b[:8], o.idBase)
	binary.BigEndian.PutUint64(b[8:], n)
	h := fnv64a(b[:])
	return fmt.Sprintf("bf-%016x", h)
}

// fnv64a is a tiny inline FNV-1a so obs depends on nothing.
func fnv64a(p []byte) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for _, c := range p {
		h ^= uint64(c)
		h *= prime64
	}
	return h
}
