package obs

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"sync/atomic"
)

// statusWriter captures the response code written by a handler.
type statusWriter struct {
	http.ResponseWriter
	code int
}

func (w *statusWriter) WriteHeader(code int) {
	if w.code == 0 {
		w.code = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(p []byte) (int, error) {
	if w.code == 0 {
		w.code = http.StatusOK
	}
	return w.ResponseWriter.Write(p)
}

// Instrument wraps an HTTP handler with RED metrics (request rate,
// error count, duration histogram) under the given endpoint label, and
// lifts an inbound X-BF-Trace header into the request context so every
// layer below can attach spans. Safe on a nil *Obs (returns h
// unchanged).
func (o *Obs) Instrument(endpoint string, h http.Handler) http.Handler {
	if o == nil {
		return h
	}
	reg := o.reg
	requests := func(code int) *Counter {
		return reg.Counter(
			fmt.Sprintf("bf_http_requests_total{endpoint=%q,code=%q}", endpoint, strconv.Itoa(code)),
			"HTTP requests by endpoint and status code.")
	}
	// Per-code counters are cached lock-free: the registry lookup takes
	// an RLock and the name needs a Sprintf, so paying them once per
	// distinct status code (instead of once per request) keeps the RED
	// wrapper off the hot path's lock and allocator.
	var codeCounters [600]atomic.Pointer[Counter]
	counterFor := func(code int) *Counter {
		if code < 0 || code >= len(codeCounters) {
			return requests(code)
		}
		if c := codeCounters[code].Load(); c != nil {
			return c
		}
		c := requests(code)
		codeCounters[code].Store(c)
		return c
	}
	errors := reg.Counter(
		fmt.Sprintf("bf_http_errors_total{endpoint=%q}", endpoint),
		"HTTP responses with a 5xx status code.")
	duration := reg.Histogram(
		fmt.Sprintf("bf_http_request_seconds{endpoint=%q}", endpoint),
		"HTTP request latency by endpoint.", nil)
	rate := reg.RateWindow(
		fmt.Sprintf("bf_http_request_rate{endpoint=%q}", endpoint),
		"HTTP requests per second over a 10s window.", 10)
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := reg.Now()
		ctx := r.Context()
		trace := r.Header.Get(TraceHeader)
		if trace != "" {
			ctx = WithTrace(ctx, trace, o.traces)
			r = r.WithContext(ctx)
			w.Header().Set(TraceHeader, trace)
		}
		sw := &statusWriter{ResponseWriter: w}
		h.ServeHTTP(sw, r)
		code := sw.code
		if code == 0 {
			code = http.StatusOK
		}
		elapsed := reg.Since(start)
		end := start.Add(elapsed)
		counterFor(code).Inc()
		rate.MarkAt(end)
		duration.Observe(elapsed)
		var errSpan error
		if code >= 500 {
			errors.Inc()
			errSpan = fmt.Errorf("status %d", code)
		}
		RecordSpan(ctx, "http."+endpoint, start, elapsed, errSpan,
			map[string]string{"code": strconv.Itoa(code)})
	})
}

// InstrumentFunc is Instrument for a HandlerFunc.
func (o *Obs) InstrumentFunc(endpoint string, h http.HandlerFunc) http.Handler {
	return o.Instrument(endpoint, h)
}

// StampRequest copies the trace ID carried by the request's context
// onto its X-BF-Trace header, so outbound calls (client → tagserver,
// replica → primary) keep the trace stitched together.
func StampRequest(req *http.Request) {
	if req == nil {
		return
	}
	if id := TraceID(req.Context()); id != "" && req.Header.Get(TraceHeader) == "" {
		req.Header.Set(TraceHeader, id)
	}
}

// MetricsHandler serves the registry in Prometheus text exposition
// format.
func (o *Obs) MetricsHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if o != nil {
			o.reg.WritePrometheus(w)
		}
	})
}

// traceResponse is the JSON shape served by /v1/debug/traces.
type traceResponse struct {
	Trace string `json:"trace,omitempty"`
	Spans []Span `json:"spans"`
}

// TracesHandler serves the span ring buffer as JSON. `?trace=<id>`
// filters to one trace; `?limit=<n>` caps the unfiltered listing
// (default 256, newest last). Spans contain hashes, IDs, and durations
// only — never monitored text.
func (o *Obs) TracesHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		if o == nil {
			json.NewEncoder(w).Encode(traceResponse{Spans: []Span{}})
			return
		}
		trace := r.URL.Query().Get("trace")
		var spans []Span
		if trace != "" {
			spans = o.traces.Query(trace)
		} else {
			spans = o.traces.Snapshot()
			limit := 256
			if ls := r.URL.Query().Get("limit"); ls != "" {
				if n, err := strconv.Atoi(ls); err == nil && n > 0 {
					limit = n
				}
			}
			if len(spans) > limit {
				spans = spans[len(spans)-limit:]
			}
		}
		if spans == nil {
			spans = []Span{}
		}
		json.NewEncoder(w).Encode(traceResponse{Trace: trace, Spans: spans})
	})
}
