package obs

import (
	"bufio"
	"fmt"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestRegistryStress hammers one registry from 32 goroutines — counters,
// gauges, histograms, rate windows, and lazy per-label registration —
// while a scraper goroutine concurrently renders /v1/metrics. Run under
// -race (make obs / make check). Asserts:
//
//   - counters observed by the scraper are monotone non-decreasing,
//   - every scraped histogram snapshot is untorn (count == Σ buckets,
//     cumulative buckets non-decreasing, +Inf bucket == count),
//   - final totals equal the number of events pushed.
func TestRegistryStress(t *testing.T) {
	const (
		writers = 32
		iters   = 2000
	)
	o := New(nil, 1024)
	reg := o.Registry()
	srv := httptest.NewServer(o.MetricsHandler())
	defer srv.Close()

	ctr := reg.Counter("bf_stress_total", "stress counter")
	hist := reg.Histogram("bf_stress_seconds", "stress histogram", nil)
	rate := reg.RateWindow("bf_stress_rate", "stress rate", 5)
	gauge := reg.Gauge("bf_stress_gauge", "stress gauge")

	stop := make(chan struct{})
	var scrapeErr atomic.Value // string

	// Scraper: loops over the HTTP endpoint, checking monotonicity and
	// snapshot consistency on each pass.
	var scraper sync.WaitGroup
	scraper.Add(1)
	go func() {
		defer scraper.Done()
		var lastTotal uint64
		client := srv.Client()
		for {
			select {
			case <-stop:
				return
			default:
			}
			resp, err := client.Get(srv.URL)
			if err != nil {
				scrapeErr.Store("scrape: " + err.Error())
				return
			}
			var (
				total       uint64
				histCount   uint64
				histInf     uint64
				prevBucket  uint64
				sumBuckets  uint64
				haveBuckets bool
			)
			prevBucket = 0
			sc := bufio.NewScanner(resp.Body)
			for sc.Scan() {
				line := sc.Text()
				switch {
				case strings.HasPrefix(line, "bf_stress_total "):
					total, _ = strconv.ParseUint(strings.Fields(line)[1], 10, 64)
				case strings.HasPrefix(line, "bf_stress_seconds_bucket"):
					v, _ := strconv.ParseUint(strings.Fields(line)[1], 10, 64)
					if v < prevBucket {
						scrapeErr.Store(fmt.Sprintf("torn histogram: bucket %d < previous %d", v, prevBucket))
					}
					sumBuckets = v // cumulative; last seen is the running max
					prevBucket = v
					haveBuckets = true
					if strings.Contains(line, `le="+Inf"`) {
						histInf = v
					}
				case strings.HasPrefix(line, "bf_stress_seconds_count "):
					histCount, _ = strconv.ParseUint(strings.Fields(line)[1], 10, 64)
				}
			}
			resp.Body.Close()
			if total < lastTotal {
				scrapeErr.Store(fmt.Sprintf("counter went backwards: %d -> %d", lastTotal, total))
				return
			}
			lastTotal = total
			if haveBuckets {
				if histInf != histCount {
					scrapeErr.Store(fmt.Sprintf("torn histogram: +Inf bucket %d != count %d", histInf, histCount))
					return
				}
				if sumBuckets != histCount {
					scrapeErr.Store(fmt.Sprintf("torn histogram: bucket sum %d != count %d", sumBuckets, histCount))
					return
				}
			}
		}
	}()

	var wg sync.WaitGroup
	for g := 0; g < writers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				ctr.Inc()
				hist.Observe(time.Duration(i%2000) * time.Microsecond)
				rate.Mark()
				gauge.Set(float64(i))
				// Lazy per-label registration race: the same names from
				// all goroutines, plus a per-goroutine one.
				reg.Counter(fmt.Sprintf("bf_stress_labeled_total{w=%q}", strconv.Itoa(g%4)), "labeled").Inc()
			}
		}(g)
	}
	wg.Wait()
	close(stop)
	scraper.Wait()

	if msg := scrapeErr.Load(); msg != nil {
		t.Fatal(msg)
	}
	if got := ctr.Value(); got != writers*iters {
		t.Fatalf("counter total = %d, want %d", got, writers*iters)
	}
	s := hist.Snapshot()
	if s.Count != writers*iters {
		t.Fatalf("histogram count = %d, want %d", s.Count, writers*iters)
	}
	var sum uint64
	for _, c := range s.Counts {
		sum += c
	}
	if sum != s.Count {
		t.Fatalf("histogram torn at rest: Σ buckets %d != count %d", sum, s.Count)
	}
	var labeled uint64
	for g := 0; g < 4; g++ {
		labeled += reg.Counter(fmt.Sprintf("bf_stress_labeled_total{w=%q}", strconv.Itoa(g)), "labeled").Value()
	}
	if labeled != writers*iters {
		t.Fatalf("labeled counters total = %d, want %d", labeled, writers*iters)
	}
}

// TestTraceLogStress records spans from many goroutines while snapshots
// are taken concurrently; run under -race.
func TestTraceLogStress(t *testing.T) {
	log := NewTraceLog(nil, 256)
	stop := make(chan struct{})
	var readers sync.WaitGroup
	readers.Add(1)
	go func() {
		defer readers.Done()
		for {
			select {
			case <-stop:
				return
			default:
				_ = log.Snapshot()
				_ = log.Query("bf-stress-7")
			}
		}
	}()
	var wg sync.WaitGroup
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				log.Record(Span{Trace: fmt.Sprintf("bf-stress-%d", g), Name: "span", Duration: time.Millisecond})
			}
		}(g)
	}
	wg.Wait()
	close(stop)
	readers.Wait()
	if got := len(log.Snapshot()); got != 256 {
		t.Fatalf("ring size = %d, want 256", got)
	}
}
