package obs

import (
	"net/http"
	"net/http/pprof"
)

// DebugHandler serves the opt-in debug surface daemons mount on a
// -debug-listen address: net/http/pprof under /debug/pprof/, the
// Prometheus exposition at /v1/metrics, and the span ring at
// /v1/debug/traces. The handler carries no authentication — bind it to
// loopback (the daemons' flag docs say so) and never to a public
// address. Safe on a nil *Obs: only the pprof endpoints are mounted.
func (o *Obs) DebugHandler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	if o != nil {
		mux.Handle("/v1/metrics", o.MetricsHandler())
		mux.Handle("/v1/debug/traces", o.TracesHandler())
	}
	return mux
}
