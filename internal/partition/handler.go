package partition

import (
	"encoding/json"
	"errors"
	"net/http"
	"strconv"
	"time"

	"github.com/lsds/browserflow/internal/segment"
	"github.com/lsds/browserflow/internal/tagserver"
)

// NewHandler exposes the router over the node wire protocol: a client
// built for a single tag service (or a ClusterClient built for one
// replica group) talks to the routing tier without changes. Endpoints
// that make no sense on a stateless tier (/v1/metrics) are not served.
func NewHandler(rt *Router) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/observe", rt.handleObserve)
	mux.HandleFunc("/v1/observe/batch", rt.handleObserveBatch)
	mux.HandleFunc("/v1/check", rt.handleCheck)
	mux.HandleFunc("/v1/upload", rt.handleUpload)
	mux.HandleFunc("/v1/suppress", rt.handleSuppress)
	mux.HandleFunc("/v1/label", rt.handleLabel)
	mux.HandleFunc("/v1/stats", rt.handleStats)
	mux.HandleFunc("/v1/part/ring", rt.handleRing)
	mux.HandleFunc("/healthz", rt.handleHealthz)
	return mux
}

// routerHealth is the routing tier's /healthz document.
type routerHealth struct {
	Status      string            `json:"status"`
	Role        string            `json:"role"`
	RingVersion uint64            `json:"ringVersion"`
	Clock       uint64            `json:"clock"`
	Partitions  []routerPartition `json:"partitions"`
}

type routerPartition struct {
	ID    string   `json:"id"`
	Lo    uint32   `json:"lo"`
	Hi    uint32   `json:"hi"`
	Nodes []string `json:"nodes"`
}

func writeJSON(w http.ResponseWriter, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(v); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

// writeRouterError maps routed-call failures onto the node protocol's
// status classes so client-side retry/backoff behaviour carries over.
func writeRouterError(w http.ResponseWriter, err error) {
	if oe, ok := tagserver.AsOverloaded(err); ok {
		if oe.RetryAfter > 0 {
			secs := int(oe.RetryAfter / time.Second)
			if oe.RetryAfter%time.Second != 0 {
				secs++
			}
			w.Header().Set("Retry-After", strconv.Itoa(secs))
		}
		http.Error(w, err.Error(), http.StatusTooManyRequests)
		return
	}
	if tagserver.IsUnavailable(err) {
		http.Error(w, err.Error(), http.StatusBadGateway)
		return
	}
	if _, ok := tagserver.AsNotPrimary(err); ok {
		http.Error(w, err.Error(), http.StatusServiceUnavailable)
		return
	}
	// A deliberate node answer (e.g. 404 unknown segment) relays verbatim,
	// keeping partitioned error responses byte-identical to a single node.
	var se *tagserver.StatusError
	if errors.As(err, &se) {
		http.Error(w, se.Message, se.Code)
		return
	}
	http.Error(w, err.Error(), http.StatusBadRequest)
}

func decodePost(w http.ResponseWriter, r *http.Request, into interface{}) bool {
	if r.Method != http.MethodPost {
		http.Error(w, "POST required", http.StatusMethodNotAllowed)
		return false
	}
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 8<<20)).Decode(into); err != nil {
		http.Error(w, "bad request: "+err.Error(), http.StatusBadRequest)
		return false
	}
	return true
}

func (rt *Router) handleObserve(w http.ResponseWriter, r *http.Request) {
	var req tagserver.ObserveRequest
	if !decodePost(w, r, &req) {
		return
	}
	if req.Seg == "" || req.Service == "" {
		http.Error(w, "seg and service required", http.StatusBadRequest)
		return
	}
	v, err := rt.ObserveHashes(r.Context(), req.Service, req.Seg, req.Hashes, req.Granularity)
	if err != nil {
		writeRouterError(w, err)
		return
	}
	writeJSON(w, v)
}

func (rt *Router) handleObserveBatch(w http.ResponseWriter, r *http.Request) {
	var req tagserver.BatchObserveRequest
	if !decodePost(w, r, &req) {
		return
	}
	if req.Service == "" {
		http.Error(w, "service required", http.StatusBadRequest)
		return
	}
	// Items route independently: a batch may span partitions, so there is
	// no single home to hand the whole flush to.
	resp := tagserver.BatchObserveResponse{Verdicts: make([]tagserver.VerdictResponse, 0, len(req.Items))}
	for _, item := range req.Items {
		if item.Seg == "" {
			http.Error(w, "seg required", http.StatusBadRequest)
			return
		}
		v, err := rt.ObserveHashes(r.Context(), req.Service, item.Seg, item.Hashes, item.Granularity)
		if err != nil {
			writeRouterError(w, err)
			return
		}
		resp.Verdicts = append(resp.Verdicts, v)
	}
	writeJSON(w, resp)
}

func (rt *Router) handleCheck(w http.ResponseWriter, r *http.Request) {
	var req tagserver.CheckRequest
	if !decodePost(w, r, &req) {
		return
	}
	if req.Dest == "" {
		http.Error(w, "dest required", http.StatusBadRequest)
		return
	}
	v, err := rt.CheckHashes(r.Context(), req.Dest, req.Hashes)
	if err != nil {
		writeRouterError(w, err)
		return
	}
	writeJSON(w, v)
}

func (rt *Router) handleUpload(w http.ResponseWriter, r *http.Request) {
	var req tagserver.UploadRequest
	if !decodePost(w, r, &req) {
		return
	}
	if req.Seg == "" || req.Dest == "" {
		http.Error(w, "seg and dest required", http.StatusBadRequest)
		return
	}
	v, err := rt.Upload(r.Context(), req.Seg, req.Dest)
	if err != nil {
		writeRouterError(w, err)
		return
	}
	writeJSON(w, v)
}

func (rt *Router) handleSuppress(w http.ResponseWriter, r *http.Request) {
	var req tagserver.SuppressRequest
	if !decodePost(w, r, &req) {
		return
	}
	if err := rt.Suppress(r.Context(), req.User, req.Seg, req.Tag, req.Justification); err != nil {
		writeRouterError(w, err)
		return
	}
	writeJSON(w, map[string]bool{"ok": true})
}

func (rt *Router) handleLabel(w http.ResponseWriter, r *http.Request) {
	seg := segment.ID(r.URL.Query().Get("seg"))
	if seg == "" {
		http.Error(w, "seg required", http.StatusBadRequest)
		return
	}
	label, err := rt.Label(r.Context(), seg)
	if err != nil {
		writeRouterError(w, err)
		return
	}
	writeJSON(w, label)
}

func (rt *Router) handleStats(w http.ResponseWriter, r *http.Request) {
	stats, err := rt.Stats(r.Context())
	if err != nil {
		writeRouterError(w, err)
		return
	}
	writeJSON(w, stats)
}

// handleRing serves the installed ring in the framed on-disk format, so
// clients and sibling routers bootstrap from the tier itself.
func (rt *Router) handleRing(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "GET required", http.StatusMethodNotAllowed)
		return
	}
	ring := rt.Ring()
	encoded, err := EncodeRing(ring)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set(tagserver.HeaderRingVersion, strconv.FormatUint(ring.Version, 10))
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Write(encoded)
}

func (rt *Router) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	ring := rt.Ring()
	h := routerHealth{
		Status:      "ok",
		Role:        "router",
		RingVersion: ring.Version,
		Clock:       rt.Clock(),
		Partitions:  make([]routerPartition, 0, len(ring.Partitions)),
	}
	for _, p := range ring.Partitions {
		h.Partitions = append(h.Partitions, routerPartition{ID: p.ID, Lo: p.Lo, Hi: p.Hi, Nodes: p.Nodes})
	}
	writeJSON(w, h)
}
