package partition

import (
	"testing"

	"github.com/lsds/browserflow/internal/fingerprint"
)

// TestInstallDiscardsStaleRing pins the topology version to monotone
// under racing refreshes: SetRing's version check and install's ring
// swap are separate lock acquisitions, so a refresh that lost the race
// to a newer ring must be discarded by install itself, not regress the
// version.
func TestInstallDiscardsStaleRing(t *testing.T) {
	rt, err := NewRouter(SingleRing("p0", "http://a"), RouterOptions{FP: fingerprint.DefaultConfig()})
	if err != nil {
		t.Fatal(err)
	}

	v3 := SingleRing("p0", "http://a")
	v3.Version = 3
	if err := rt.SetRing(v3); err != nil {
		t.Fatal(err)
	}

	// Simulate the losing side of the race: a v2 refresh passed SetRing's
	// check before v3 was swapped in, and its install runs afterwards.
	v2 := SingleRing("p0", "http://b")
	v2.Version = 2
	if err := rt.install(v2); err != nil {
		t.Fatal(err)
	}
	if got := rt.Ring().Version; got != 3 {
		t.Fatalf("ring version regressed to v%d after stale install, want v3", got)
	}
	if nodes := rt.Ring().Partitions[0].Nodes[0]; nodes != "http://a" {
		t.Fatalf("stale install replaced the newer ring's nodes: %s", nodes)
	}

	// Equal versions are discarded too.
	dup := SingleRing("p0", "http://c")
	dup.Version = 3
	if err := rt.install(dup); err != nil {
		t.Fatal(err)
	}
	if nodes := rt.Ring().Partitions[0].Nodes[0]; nodes != "http://a" {
		t.Fatalf("equal-version install replaced the installed ring's nodes: %s", nodes)
	}
}
