package partition

import (
	"bytes"
	"math"
	"os"
	"path/filepath"
	"testing"

	"github.com/lsds/browserflow/internal/segment"
)

func twoRing(t *testing.T) *Ring {
	t.Helper()
	r := &Ring{
		Version: 3,
		Partitions: []Partition{
			{ID: "p0", Lo: 0, Hi: math.MaxUint32 / 2, Nodes: []string{"http://a:1", "http://a:2"}},
			{ID: "p1", Lo: math.MaxUint32/2 + 1, Hi: math.MaxUint32, Nodes: []string{"http://b:1"}},
		},
	}
	if err := r.Validate(); err != nil {
		t.Fatalf("validate: %v", err)
	}
	return r
}

func TestRingFindCoversKeyspace(t *testing.T) {
	r := twoRing(t)
	for _, key := range []uint32{0, 1, math.MaxUint32 / 2, math.MaxUint32/2 + 1, math.MaxUint32} {
		p, ok := r.Find(key)
		if !ok {
			t.Fatalf("Find(%d): no partition", key)
		}
		if !p.Contains(key) {
			t.Fatalf("Find(%d) = %q [%d,%d]: does not contain key", key, p.ID, p.Lo, p.Hi)
		}
	}
	// Home agrees with segment.Key.
	seg := segment.ID("wiki/guide#p3")
	p, ok := r.Home(seg)
	if !ok {
		t.Fatalf("Home: no partition")
	}
	if want, _ := r.Find(segment.Key(seg)); want.ID != p.ID {
		t.Fatalf("Home = %q, Find(Key) = %q", p.ID, want.ID)
	}
}

func TestRingValidateRejectsBadTopologies(t *testing.T) {
	max := uint32(math.MaxUint32)
	cases := []struct {
		name string
		ps   []Partition
	}{
		{"empty", nil},
		{"gap-at-zero", []Partition{{ID: "a", Lo: 1, Hi: max, Nodes: []string{"n"}}}},
		{"gap-at-end", []Partition{{ID: "a", Lo: 0, Hi: max - 1, Nodes: []string{"n"}}}},
		{"overlap", []Partition{
			{ID: "a", Lo: 0, Hi: 10, Nodes: []string{"n"}},
			{ID: "b", Lo: 10, Hi: max, Nodes: []string{"n"}},
		}},
		{"hole", []Partition{
			{ID: "a", Lo: 0, Hi: 10, Nodes: []string{"n"}},
			{ID: "b", Lo: 12, Hi: max, Nodes: []string{"n"}},
		}},
		{"dup-id", []Partition{
			{ID: "a", Lo: 0, Hi: 10, Nodes: []string{"n"}},
			{ID: "a", Lo: 11, Hi: max, Nodes: []string{"n"}},
		}},
		{"empty-id", []Partition{{ID: "", Lo: 0, Hi: max, Nodes: []string{"n"}}}},
		{"no-nodes", []Partition{{ID: "a", Lo: 0, Hi: max}}},
		{"inverted", []Partition{
			{ID: "a", Lo: 0, Hi: max, Nodes: []string{"n"}},
			{ID: "b", Lo: 20, Hi: 10, Nodes: []string{"n"}},
		}},
	}
	for _, tc := range cases {
		r := &Ring{Version: 1, Partitions: tc.ps}
		if err := r.Validate(); err == nil {
			t.Errorf("%s: Validate accepted invalid ring", tc.name)
		}
	}
}

func TestRingCodecRoundTrip(t *testing.T) {
	r := twoRing(t)
	data, err := EncodeRing(r)
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	got, err := DecodeRing(data)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if got.Version != r.Version || len(got.Partitions) != len(r.Partitions) {
		t.Fatalf("round trip mismatch: %+v", got)
	}
	for i := range r.Partitions {
		if got.Partitions[i].ID != r.Partitions[i].ID ||
			got.Partitions[i].Lo != r.Partitions[i].Lo ||
			got.Partitions[i].Hi != r.Partitions[i].Hi {
			t.Fatalf("partition %d mismatch: %+v vs %+v", i, got.Partitions[i], r.Partitions[i])
		}
	}
}

func TestRingCodecFailsClosed(t *testing.T) {
	r := twoRing(t)
	data, err := EncodeRing(r)
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	// Bit flip anywhere in the payload or frame must be rejected.
	for _, off := range []int{0, 4, len(ringMagic) + 1, len(ringMagic) + 6, len(data) - 2} {
		bad := bytes.Clone(data)
		bad[off] ^= 0x40
		if _, err := DecodeRing(bad); err == nil {
			t.Errorf("flip at %d: decode accepted corrupt ring", off)
		}
	}
	// Truncations.
	for _, n := range []int{0, 3, len(ringMagic), len(ringMagic) + 4, len(data) - 1} {
		if _, err := DecodeRing(data[:n]); err == nil {
			t.Errorf("truncate to %d: decode accepted corrupt ring", n)
		}
	}
}

func TestRingFileRoundTrip(t *testing.T) {
	r := twoRing(t)
	path := filepath.Join(t.TempDir(), "ring")
	if err := SaveRingFile(path, r); err != nil {
		t.Fatalf("save: %v", err)
	}
	got, err := LoadRingFile(path)
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	if got.Version != r.Version {
		t.Fatalf("version %d, want %d", got.Version, r.Version)
	}
	// Corrupt on disk → load fails closed.
	data, _ := os.ReadFile(path)
	data[len(data)/2] ^= 0xff
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadRingFile(path); err == nil {
		t.Fatal("load accepted corrupt ring file")
	}
}

func TestSplitRing(t *testing.T) {
	r := SingleRing("p0", "http://a:1")
	next, err := SplitRing(r, "p0", math.MaxUint32/2, "p1", []string{"http://b:1"})
	if err != nil {
		t.Fatalf("split: %v", err)
	}
	if next.Version != r.Version+1 {
		t.Fatalf("version %d, want %d", next.Version, r.Version+1)
	}
	if len(next.Partitions) != 2 {
		t.Fatalf("partitions %d, want 2", len(next.Partitions))
	}
	p0, _ := next.ByID("p0")
	p1, _ := next.ByID("p1")
	if p0.Lo != 0 || p0.Hi != math.MaxUint32/2 {
		t.Fatalf("p0 range [%d,%d]", p0.Lo, p0.Hi)
	}
	if p1.Lo != math.MaxUint32/2+1 || p1.Hi != math.MaxUint32 {
		t.Fatalf("p1 range [%d,%d]", p1.Lo, p1.Hi)
	}
	// Source ring unchanged (Clone semantics).
	if len(r.Partitions) != 1 || r.Partitions[0].Hi != math.MaxUint32 {
		t.Fatalf("source ring mutated: %+v", r.Partitions)
	}
	// Invalid split points.
	if _, err := SplitRing(next, "p0", math.MaxUint32/2, "p2", []string{"n"}); err == nil {
		t.Fatal("split at hi accepted")
	}
	if _, err := SplitRing(next, "missing", 10, "p2", []string{"n"}); err == nil {
		t.Fatal("split of unknown partition accepted")
	}
	if _, err := SplitRing(next, "p0", 10, "p1", []string{"n"}); err == nil {
		t.Fatal("split onto duplicate id accepted")
	}
}

// FuzzDecodeRing proves the ring parser fails closed: arbitrary bytes
// either decode to a ring that re-validates, or error — never panic, never
// a partially-valid topology. Routers trust this file at startup, so a
// corrupt ring must refuse to load rather than misroute segments.
func FuzzDecodeRing(f *testing.F) {
	r := &Ring{
		Version: 7,
		Partitions: []Partition{
			{ID: "p0", Lo: 0, Hi: 1 << 30, Nodes: []string{"http://a:1"}},
			{ID: "p1", Lo: 1<<30 + 1, Hi: math.MaxUint32, Nodes: []string{"http://b:1", "http://b:2"}},
		},
	}
	if seed, err := EncodeRing(r); err == nil {
		f.Add(seed)
		f.Add(seed[:len(seed)-3])
		mut := bytes.Clone(seed)
		mut[len(ringMagic)+5] ^= 0x10
		f.Add(mut)
	}
	f.Add([]byte(ringMagic))
	f.Add([]byte("BFRING01\x00\x00\x00\x00"))
	f.Fuzz(func(t *testing.T, data []byte) {
		got, err := DecodeRing(data)
		if err != nil {
			if got != nil {
				t.Fatalf("error %v returned non-nil ring", err)
			}
			return
		}
		// Accepted rings must satisfy every structural invariant.
		if err := got.Validate(); err != nil {
			t.Fatalf("decoded ring fails validation: %v", err)
		}
		for _, key := range []uint32{0, 1 << 16, math.MaxUint32} {
			if _, ok := got.Find(key); !ok {
				t.Fatalf("decoded ring does not cover key %d", key)
			}
		}
	})
}
