// Package partition implements BrowserFlow's horizontal partitioning
// subsystem: a consistent-hash ring that assigns contiguous ranges of the
// 32-bit segment keyspace to partitions (each an ordinary replicated
// primary group from internal/replication), and a stateless routing tier
// that scatter-gathers cross-partition disclosure queries so partitioned
// verdicts stay byte-identical to a single node.
//
// The ring is a versioned document. Every node and every router holds a
// copy; writes carry no ring state, but a node that no longer owns a
// segment answers 421 with an X-BF-Ring-Version header so stale routers
// refetch the ring (GET /v1/part/ring) and re-dispatch. Ring versions only
// move forward; a split publishes version v+1 after the target partition
// has been promoted under a bumped fencing term, so the 421s from both the
// fencing guard and the ownership check converge on the new topology.
package partition

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"math"
	"os"
	"path/filepath"
	"sort"

	"github.com/lsds/browserflow/internal/segment"
)

// Partition is one entry of the ring: a named primary group owning the
// inclusive key range [Lo, Hi].
type Partition struct {
	// ID names the partition ("p0", "p1", ...). IDs are unique within a
	// ring and stable across ring versions; a split reuses the source's ID
	// for the shrunk range and mints a new ID for the moved range.
	ID string `json:"id"`

	// Lo and Hi bound the owned key range, inclusive on both ends, so the
	// full 32-bit keyspace [0, MaxUint32] is coverable without overflow.
	Lo uint32 `json:"lo"`
	Hi uint32 `json:"hi"`

	// Nodes lists the group's member base URLs. By convention the first
	// entry is the bootstrap primary; routers confirm the actual primary
	// through the usual 421/healthz discovery of ClusterClient, so the
	// order only seeds discovery and does not need updating on failover.
	Nodes []string `json:"nodes"`
}

// Contains reports whether key falls inside the partition's range.
func (p *Partition) Contains(key uint32) bool {
	return key >= p.Lo && key <= p.Hi
}

// Ring is one version of the cluster topology. The zero value is invalid;
// construct through DecodeRing/ParseRing or validate with Validate.
type Ring struct {
	// Version is the monotone topology version. Nodes reject SetRing calls
	// that do not increase it.
	Version uint64 `json:"version"`

	// Partitions cover the keyspace exactly: sorted by Lo, contiguous,
	// non-overlapping, first Lo = 0, last Hi = MaxUint32.
	Partitions []Partition `json:"partitions"`

	// byID interns partition IDs for O(1) lookup. Built by Validate.
	byID map[string]int
}

// Validate checks structural invariants and builds the interned ID table.
// A ring that fails validation must not be installed: routing with partial
// coverage would silently drop segments, which for a DLP system means
// silently not tracking them — fail closed instead.
func (r *Ring) Validate() error {
	if len(r.Partitions) == 0 {
		return fmt.Errorf("ring v%d: no partitions", r.Version)
	}
	if !sort.SliceIsSorted(r.Partitions, func(i, j int) bool {
		return r.Partitions[i].Lo < r.Partitions[j].Lo
	}) {
		return fmt.Errorf("ring v%d: partitions not sorted by lo", r.Version)
	}
	byID := make(map[string]int, len(r.Partitions))
	for i := range r.Partitions {
		p := &r.Partitions[i]
		if p.ID == "" {
			return fmt.Errorf("ring v%d: partition %d has empty id", r.Version, i)
		}
		if _, dup := byID[p.ID]; dup {
			return fmt.Errorf("ring v%d: duplicate partition id %q", r.Version, p.ID)
		}
		byID[p.ID] = i
		if p.Lo > p.Hi {
			return fmt.Errorf("ring v%d: partition %q range inverted [%d, %d]", r.Version, p.ID, p.Lo, p.Hi)
		}
		if len(p.Nodes) == 0 {
			return fmt.Errorf("ring v%d: partition %q has no nodes", r.Version, p.ID)
		}
		for _, n := range p.Nodes {
			if n == "" {
				return fmt.Errorf("ring v%d: partition %q has an empty node address", r.Version, p.ID)
			}
		}
		if i == 0 {
			if p.Lo != 0 {
				return fmt.Errorf("ring v%d: keyspace starts at %d, want 0", r.Version, p.Lo)
			}
		} else if prev := &r.Partitions[i-1]; p.Lo != prev.Hi+1 {
			return fmt.Errorf("ring v%d: gap or overlap between %q (hi %d) and %q (lo %d)",
				r.Version, prev.ID, prev.Hi, p.ID, p.Lo)
		}
	}
	if last := &r.Partitions[len(r.Partitions)-1]; last.Hi != math.MaxUint32 {
		return fmt.Errorf("ring v%d: keyspace ends at %d, want %d", r.Version, last.Hi, uint32(math.MaxUint32))
	}
	r.byID = byID
	return nil
}

// Find returns the partition owning key. The ranges cover the keyspace, so
// on a validated ring Find always succeeds; the boolean guards the
// unvalidated zero value.
func (r *Ring) Find(key uint32) (*Partition, bool) {
	// Binary search for the first partition with Hi >= key.
	i := sort.Search(len(r.Partitions), func(i int) bool {
		return r.Partitions[i].Hi >= key
	})
	if i >= len(r.Partitions) || !r.Partitions[i].Contains(key) {
		return nil, false
	}
	return &r.Partitions[i], true
}

// Home returns the partition owning seg.
func (r *Ring) Home(seg segment.ID) (*Partition, bool) {
	return r.Find(segment.Key(seg))
}

// ByID returns the partition with the given ID.
func (r *Ring) ByID(id string) (*Partition, bool) {
	if r.byID != nil {
		i, ok := r.byID[id]
		if !ok {
			return nil, false
		}
		return &r.Partitions[i], true
	}
	for i := range r.Partitions {
		if r.Partitions[i].ID == id {
			return &r.Partitions[i], true
		}
	}
	return nil, false
}

// Clone returns a deep copy safe to mutate (e.g. to build version v+1).
func (r *Ring) Clone() *Ring {
	c := &Ring{Version: r.Version, Partitions: make([]Partition, len(r.Partitions))}
	copy(c.Partitions, r.Partitions)
	for i := range c.Partitions {
		c.Partitions[i].Nodes = append([]string(nil), r.Partitions[i].Nodes...)
	}
	return c
}

// ringMagic frames the on-disk ring file. The trailing CRC32C covers the
// JSON payload so a torn write or bit flip fails closed at load instead of
// routing with a corrupt topology.
const ringMagic = "BFRING01"

var ringCRCTable = crc32.MakeTable(crc32.Castagnoli)

// EncodeRing serialises the ring in the framed on-disk format:
// magic | uint32 payload length | JSON payload | uint32 CRC32C(payload).
func EncodeRing(r *Ring) ([]byte, error) {
	if err := r.Validate(); err != nil {
		return nil, err
	}
	payload, err := json.Marshal(r)
	if err != nil {
		return nil, err
	}
	out := make([]byte, 0, len(ringMagic)+8+len(payload))
	out = append(out, ringMagic...)
	out = binary.LittleEndian.AppendUint32(out, uint32(len(payload)))
	out = append(out, payload...)
	out = binary.LittleEndian.AppendUint32(out, crc32.Checksum(payload, ringCRCTable))
	return out, nil
}

// DecodeRing parses a framed ring file. Any framing, checksum, JSON or
// structural error fails closed with an error; DecodeRing never returns a
// partially-valid ring and never panics on corrupt input (FuzzDecodeRing
// holds it to that).
func DecodeRing(data []byte) (*Ring, error) {
	if len(data) < len(ringMagic)+8 {
		return nil, fmt.Errorf("ring: truncated file (%d bytes)", len(data))
	}
	if string(data[:len(ringMagic)]) != ringMagic {
		return nil, fmt.Errorf("ring: bad magic %q", data[:len(ringMagic)])
	}
	n := binary.LittleEndian.Uint32(data[len(ringMagic):])
	body := data[len(ringMagic)+4:]
	if uint64(n)+4 != uint64(len(body)) {
		return nil, fmt.Errorf("ring: payload length %d does not match file size", n)
	}
	payload, sum := body[:n], binary.LittleEndian.Uint32(body[n:])
	if got := crc32.Checksum(payload, ringCRCTable); got != sum {
		return nil, fmt.Errorf("ring: checksum mismatch (stored %08x, computed %08x)", sum, got)
	}
	return ParseRing(payload)
}

// ParseRing parses and validates the bare JSON ring document — the form
// exchanged over /v1/part/ring, where HTTP already frames the bytes.
func ParseRing(payload []byte) (*Ring, error) {
	var r Ring
	if err := json.Unmarshal(payload, &r); err != nil {
		return nil, fmt.Errorf("ring: %w", err)
	}
	if err := r.Validate(); err != nil {
		return nil, err
	}
	return &r, nil
}

// MarshalJSONRing returns the bare JSON document for a validated ring.
func MarshalJSONRing(r *Ring) ([]byte, error) {
	if err := r.Validate(); err != nil {
		return nil, err
	}
	return json.Marshal(r)
}

// LoadRingFile reads and decodes a framed ring file.
func LoadRingFile(path string) (*Ring, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	r, err := DecodeRing(data)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return r, nil
}

// SaveRingFile atomically persists the ring in the framed format: write to
// a temp file in the same directory, fsync, rename over the destination,
// fsync the directory. A crash leaves either the old or the new version,
// never a torn file (and DecodeRing rejects a torn file anyway).
func SaveRingFile(path string, r *Ring) error {
	data, err := EncodeRing(r)
	if err != nil {
		return err
	}
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".ring-*")
	if err != nil {
		return err
	}
	tmpName := tmp.Name()
	defer os.Remove(tmpName)
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmpName, path); err != nil {
		return err
	}
	if d, err := os.Open(dir); err == nil {
		d.Sync()
		d.Close()
	}
	return nil
}

// SingleRing returns a one-partition ring covering the whole keyspace —
// the degenerate topology under which the router behaves exactly like a
// plain ClusterClient.
func SingleRing(id string, nodes ...string) *Ring {
	r := &Ring{
		Version: 1,
		Partitions: []Partition{{
			ID: id, Lo: 0, Hi: math.MaxUint32, Nodes: nodes,
		}},
	}
	if err := r.Validate(); err != nil {
		panic(err) // impossible: full coverage by construction
	}
	return r
}

// SplitRing returns version v+1 of r with partition srcID's range split at
// key `at`: the source keeps [lo, at], the new partition newID owns
// [at+1, hi] on the given nodes. It fails if the split point does not fall
// strictly inside the source range (each side must keep at least one key).
func SplitRing(r *Ring, srcID string, at uint32, newID string, nodes []string) (*Ring, error) {
	src, ok := r.ByID(srcID)
	if !ok {
		return nil, fmt.Errorf("ring v%d: no partition %q", r.Version, srcID)
	}
	if at < src.Lo || at >= src.Hi {
		return nil, fmt.Errorf("split at %d outside (%d, %d)", at, src.Lo, src.Hi)
	}
	if _, dup := r.ByID(newID); dup {
		return nil, fmt.Errorf("ring v%d: partition %q already exists", r.Version, newID)
	}
	next := r.Clone()
	next.Version = r.Version + 1
	for i := range next.Partitions {
		if next.Partitions[i].ID == srcID {
			moved := Partition{ID: newID, Lo: at + 1, Hi: next.Partitions[i].Hi, Nodes: append([]string(nil), nodes...)}
			next.Partitions[i].Hi = at
			rest := append([]Partition{moved}, next.Partitions[i+1:]...)
			next.Partitions = append(next.Partitions[:i+1], rest...)
			break
		}
	}
	if err := next.Validate(); err != nil {
		return nil, err
	}
	return next, nil
}
