package partition_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"net/url"
	"sync"
	"testing"

	"github.com/lsds/browserflow/internal/audit"
	"github.com/lsds/browserflow/internal/disclosure"
	"github.com/lsds/browserflow/internal/fingerprint"
	"github.com/lsds/browserflow/internal/partition"
	"github.com/lsds/browserflow/internal/policy"
	"github.com/lsds/browserflow/internal/segment"
	"github.com/lsds/browserflow/internal/tagserver"
	"github.com/lsds/browserflow/internal/tdm"
)

// The golden suite holds the partitioned cluster to its core contract:
// for the same request script, a 2- or 3-partition cluster behind the
// routing tier answers with bytes identical to a single node. Three
// scripts model the seed web-app scenarios: a wiki->docs paste (Dpar
// violation), an itool->notes copy with a declassification, and
// document-granularity edit tracking (Ddoc).

// op is one scripted wire request.
type op struct {
	kind    string // observe, batch, check, suppress, upload, label
	service string
	seg     string
	text    string
	texts   []string // batch: one per item, segs derived
	dest    string
	user    string
	tag     string
	why     string
	gran    string
}

// The scripts use enough distinct segments that an even 2- or 3-way
// keyspace split places origins and destinations on different
// partitions (asserted in TestGoldenScriptsSpanPartitions).
const (
	wikiPlan   = "The 2027 acquisition plan targets Initech for three hundred million dollars pending diligence on their flux capacitor patents and the retention of their core engineering group."
	wikiBudget = "Quarterly budget review: the platform group is over plan by twelve percent, driven by the new datacenter lease and unbudgeted compliance tooling for the audit."
	iToolPerf  = "Performance review draft for the infrastructure team lead: exceeds expectations on incident response, needs development on cross-team communication and delegation."
	docsIntro  = "This public engineering blog post describes our migration to an incremental winnowing pipeline and the throughput lessons we learned along the way."
)

func scripts() map[string][]op {
	return map[string][]op{
		// A user pastes confidential wiki content into a public docs page:
		// the observe on the docs segment must attribute the wiki origin
		// and flag the release.
		"wiki-paste": {
			{kind: "observe", service: "wiki", seg: "wiki/acquisitions#p0", text: wikiPlan},
			{kind: "observe", service: "wiki", seg: "wiki/budget#p0", text: wikiBudget},
			{kind: "observe", service: "docs", seg: "docs/blog-draft#p0", text: docsIntro},
			{kind: "observe", service: "docs", seg: "docs/blog-draft#p1", text: wikiPlan},
			{kind: "check", dest: "docs", text: wikiPlan},
			{kind: "check", dest: "docs", text: docsIntro},
			{kind: "label", seg: "docs/blog-draft#p1"},
			{kind: "upload", seg: "docs/blog-draft#p1", dest: "docs"},
			{kind: "observe", service: "docs", seg: "docs/blog-draft#p1", text: wikiPlan}, // re-observe: decision cache
		},
		// An itool performance review is copied into notes; after a
		// manager suppresses the tag with justification, the release
		// check relaxes.
		"itool-notes": {
			{kind: "observe", service: "itool", seg: "itool/reviews#p0", text: iToolPerf},
			{kind: "observe", service: "notes", seg: "notes/todo#p0", text: iToolPerf},
			{kind: "label", seg: "notes/todo#p0"},
			{kind: "upload", seg: "notes/todo#p0", dest: "notes"},
			{kind: "suppress", user: "alice", seg: "itool/reviews#p0", tag: "ti", why: "review published"},
			{kind: "label", seg: "itool/reviews#p0"},
			{kind: "upload", seg: "itool/reviews#p0", dest: "notes"},
		},
		// Document-granularity tracking across edits, flushed as batches
		// the way the extension ships coalesced DOM mutations.
		"docs-edits": {
			{kind: "observe", service: "wiki", seg: "wiki/roadmap", text: wikiPlan + " " + wikiBudget, gran: "document"},
			{kind: "batch", service: "docs", texts: []string{docsIntro, wikiBudget}, gran: "document"},
			{kind: "observe", service: "docs", seg: "docs/summary", text: wikiPlan + " " + docsIntro, gran: "document"},
			{kind: "check", dest: "docs", text: wikiBudget},
			{kind: "label", seg: "docs/summary"},
		},
	}
}

// newEngine builds the fixture engine: wiki and itool are confidential
// origins, docs and notes are public destinations.
func newEngine(t *testing.T) *policy.Engine {
	t.Helper()
	tracker, err := disclosure.NewTracker(disclosure.Params{
		Fingerprint: fingerprint.DefaultConfig(),
		Tpar:        0.5,
		Tdoc:        0.5,
	})
	if err != nil {
		t.Fatal(err)
	}
	registry := tdm.NewRegistry(audit.NewLog())
	for _, svc := range []struct {
		name     string
		lp, lc   tdm.TagSet
	}{
		{"wiki", tdm.NewTagSet("tw"), tdm.NewTagSet("tw")},
		{"itool", tdm.NewTagSet("ti"), tdm.NewTagSet("ti")},
		{"docs", tdm.NewTagSet(), tdm.NewTagSet()},
		{"notes", tdm.NewTagSet(), tdm.NewTagSet()},
	} {
		if err := registry.RegisterService(svc.name, svc.lp, svc.lc); err != nil {
			t.Fatal(err)
		}
	}
	engine, err := policy.NewEngine(tracker, registry, policy.ModeEnforcing)
	if err != nil {
		t.Fatal(err)
	}
	return engine
}

// testPartState is a minimal tagserver.PartitionState over a shared ring.
type testPartState struct {
	id      string
	mu      sync.Mutex
	ring    *partition.Ring
	encoded []byte
}

func (ps *testPartState) set(t *testing.T, r *partition.Ring) {
	t.Helper()
	encoded, err := partition.EncodeRing(r)
	if err != nil {
		t.Fatal(err)
	}
	ps.mu.Lock()
	ps.ring, ps.encoded = r, encoded
	ps.mu.Unlock()
}

func (ps *testPartState) ID() string { return ps.id }

func (ps *testPartState) RingVersion() uint64 {
	ps.mu.Lock()
	defer ps.mu.Unlock()
	return ps.ring.Version
}

func (ps *testPartState) Owns(seg segment.ID) bool {
	ps.mu.Lock()
	defer ps.mu.Unlock()
	p, ok := ps.ring.ByID(ps.id)
	return ok && p.Contains(segment.Key(seg))
}

func (ps *testPartState) KeyRange() (uint32, uint32) {
	ps.mu.Lock()
	defer ps.mu.Unlock()
	p, _ := ps.ring.ByID(ps.id)
	return p.Lo, p.Hi
}

func (ps *testPartState) Sole() bool {
	ps.mu.Lock()
	defer ps.mu.Unlock()
	return len(ps.ring.Partitions) == 1
}

func (ps *testPartState) Resharding() bool { return false }

func (ps *testPartState) RingBytes() []byte {
	ps.mu.Lock()
	defer ps.mu.Unlock()
	return ps.encoded
}

func (ps *testPartState) SetRing(encoded []byte) (uint64, error) {
	ring, err := partition.DecodeRing(encoded)
	if err != nil {
		return 0, err
	}
	ps.mu.Lock()
	defer ps.mu.Unlock()
	if ring.Version <= ps.ring.Version {
		return 0, fmt.Errorf("ring v%d not newer than v%d", ring.Version, ps.ring.Version)
	}
	ps.ring, ps.encoded = ring, append([]byte(nil), encoded...)
	return ring.Version, nil
}

// evenRing splits the keyspace into p equal inclusive ranges.
func evenRing(t *testing.T, urls []string) *partition.Ring {
	t.Helper()
	p := len(urls)
	width := uint64(math.MaxUint32+1) / uint64(p)
	ring := &partition.Ring{Version: 1}
	for i := 0; i < p; i++ {
		lo := uint32(uint64(i) * width)
		hi := uint32(math.MaxUint32)
		if i < p-1 {
			hi = uint32(uint64(i+1)*width - 1)
		}
		ring.Partitions = append(ring.Partitions, partition.Partition{
			ID: fmt.Sprintf("p%d", i), Lo: lo, Hi: hi, Nodes: []string{urls[i]},
		})
	}
	if err := ring.Validate(); err != nil {
		t.Fatal(err)
	}
	return ring
}

// startCluster brings up p partition nodes plus a routing tier over
// them, returning the router front's base URL.
func startCluster(t *testing.T, p int) string {
	t.Helper()
	states := make([]*testPartState, p)
	urls := make([]string, p)
	for i := 0; i < p; i++ {
		states[i] = &testPartState{id: fmt.Sprintf("p%d", i)}
		server, err := tagserver.NewServer(newEngine(t), tagserver.WithPartition(states[i]))
		if err != nil {
			t.Fatal(err)
		}
		srv := httptest.NewServer(server)
		t.Cleanup(srv.Close)
		urls[i] = srv.URL
	}
	ring := evenRing(t, urls)
	for _, ps := range states {
		ps.set(t, ring)
	}
	rt, err := partition.NewRouter(ring, partition.RouterOptions{FP: fingerprint.DefaultConfig()})
	if err != nil {
		t.Fatal(err)
	}
	rt.Prime(t.Context())
	front := httptest.NewServer(partition.NewHandler(rt))
	t.Cleanup(front.Close)
	return front.URL
}

// startSingle brings up the single-node reference.
func startSingle(t *testing.T) string {
	t.Helper()
	server, err := tagserver.NewServer(newEngine(t))
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(server)
	t.Cleanup(srv.Close)
	return srv.URL
}

// hashesOf fingerprints text with the shared config.
func hashesOf(t *testing.T, text string) []uint32 {
	t.Helper()
	fp, err := fingerprint.Compute(text, fingerprint.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if fp.Empty() {
		t.Fatalf("fingerprint of %q is empty; lengthen the fixture text", text[:20])
	}
	return fp.Hashes()
}

// play executes one op against base and returns "status\nbody".
func play(t *testing.T, base string, o op) string {
	t.Helper()
	var (
		path    string
		payload interface{}
	)
	switch o.kind {
	case "observe":
		path = "/v1/observe"
		payload = tagserver.ObserveRequest{Device: "golden", Service: o.service, Seg: segment.ID(o.seg), Hashes: hashesOf(t, o.text), Granularity: o.gran}
	case "batch":
		path = "/v1/observe/batch"
		items := make([]tagserver.BatchObserveItem, len(o.texts))
		for i, text := range o.texts {
			items[i] = tagserver.BatchObserveItem{
				Seg:         segment.ID(fmt.Sprintf("docs/batch#p%d", i)),
				Hashes:      hashesOf(t, text),
				Granularity: o.gran,
			}
		}
		payload = tagserver.BatchObserveRequest{Device: "golden", Service: o.service, Items: items}
	case "check":
		path = "/v1/check"
		payload = tagserver.CheckRequest{Device: "golden", Dest: o.dest, Hashes: hashesOf(t, o.text)}
	case "suppress":
		path = "/v1/suppress"
		payload = tagserver.SuppressRequest{User: o.user, Seg: segment.ID(o.seg), Tag: tdm.Tag(o.tag), Justification: o.why}
	case "upload":
		path = "/v1/upload"
		payload = tagserver.UploadRequest{Device: "golden", Seg: segment.ID(o.seg), Dest: o.dest}
	case "label":
		resp, err := http.Get(base + "/v1/label?seg=" + url.QueryEscape(o.seg))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return fmt.Sprintf("%d\n%s", resp.StatusCode, body)
	default:
		t.Fatalf("unknown op kind %q", o.kind)
	}
	data, err := json.Marshal(payload)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(base+path, "application/json", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	return fmt.Sprintf("%d\n%s", resp.StatusCode, body)
}

// TestGoldenPartitionedVerdicts replays each scenario against a single
// node and against 2- and 3-partition clusters, requiring byte-identical
// responses at every step.
func TestGoldenPartitionedVerdicts(t *testing.T) {
	for name, script := range scripts() {
		t.Run(name, func(t *testing.T) {
			single := startSingle(t)
			want := make([]string, len(script))
			for i, o := range script {
				want[i] = play(t, single, o)
			}
			for _, p := range []int{2, 3} {
				t.Run(fmt.Sprintf("partitions=%d", p), func(t *testing.T) {
					front := startCluster(t, p)
					for i, o := range script {
						got := play(t, front, o)
						if got != want[i] {
							t.Errorf("step %d (%s %s%s): partitioned response diverged\nsingle:      %q\npartitioned: %q",
								i, o.kind, o.seg, o.dest, want[i], got)
						}
					}
				})
			}
		})
	}
}

// TestPrimeFoldsBothGranularityClocks holds Prime to the
// stamps-ahead-of-cluster invariant for both clock families: paragraph
// and document observations advance independent logical clocks, and a
// restarted router that folded only one could stamp behind the other,
// breaking deterministic replay.
func TestPrimeFoldsBothGranularityClocks(t *testing.T) {
	var (
		mu   sync.Mutex
		seen = map[string]bool{}
	)
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/v1/part/query" {
			http.NotFound(w, r)
			return
		}
		var req tagserver.PartQueryRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		mu.Lock()
		seen[req.Granularity] = true
		mu.Unlock()
		clock := uint64(5)
		if req.Granularity == "document" {
			clock = 9
		}
		json.NewEncoder(w).Encode(tagserver.PartResolveWire{Clock: clock}) //nolint:errcheck
	}))
	t.Cleanup(srv.Close)

	rt, err := partition.NewRouter(partition.SingleRing("p0", srv.URL), partition.RouterOptions{FP: fingerprint.DefaultConfig()})
	if err != nil {
		t.Fatal(err)
	}
	rt.Prime(t.Context())

	mu.Lock()
	defer mu.Unlock()
	if !seen["paragraph"] || !seen["document"] {
		t.Fatalf("Prime queried granularities %v, want both paragraph and document", seen)
	}
	if got := rt.Clock(); got < 9 {
		t.Fatalf("primed clock = %d, want >= 9 (the document clock)", got)
	}
}

// TestGoldenScriptsSpanPartitions pins the fixtures to actually exercise
// cross-partition resolution: under an even 2-way split, the scripted
// segments must not all land on one partition.
func TestGoldenScriptsSpanPartitions(t *testing.T) {
	ring := evenRing(t, []string{"http://a", "http://b"})
	seen := map[string]bool{}
	for _, script := range scripts() {
		for _, o := range script {
			if o.seg == "" {
				continue
			}
			home, ok := ring.Home(segment.ID(o.seg))
			if !ok {
				t.Fatalf("no home for %s", o.seg)
			}
			seen[home.ID] = true
		}
	}
	if len(seen) < 2 {
		t.Fatalf("all scripted segments land on one partition (%v); rename fixtures so the scripts cross partitions", seen)
	}
}
