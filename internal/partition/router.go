package partition

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"github.com/lsds/browserflow/internal/fingerprint"
	"github.com/lsds/browserflow/internal/policy"
	"github.com/lsds/browserflow/internal/segment"
	"github.com/lsds/browserflow/internal/tagserver"
	"github.com/lsds/browserflow/internal/tdm"
)

// RouterOptions configures a Router.
type RouterOptions struct {
	// Device names the router on partition nodes' audit and idempotency
	// trails. Defaults to "router".
	Device string

	// FP is the fingerprint configuration shared with the cluster.
	FP fingerprint.Config

	// ClientOptions apply to every per-node client the router builds.
	ClientOptions []tagserver.ClientOption

	// ScatterTimeout bounds each partition's leg of a scatter-gather
	// query. A partition that cannot answer within the deadline fails the
	// whole request: a missing contribution could hide the authoritative
	// holder of a hash, and for a DLP system "could not check" must not
	// become "allowed". Defaults to 5s.
	ScatterTimeout time.Duration

	// MaxRingRefreshes bounds how many stale-ring redirects (421 with a
	// ring version) one request follows before giving up. Defaults to 2.
	MaxRingRefreshes int

	// Logf, when set, receives routing-tier events (ring flips, refreshes).
	Logf func(format string, args ...interface{})
}

// Router is the partition-aware routing tier. It holds a versioned ring,
// one failover-aware ClusterClient per partition group, and a Lamport
// clock whose stamps impose the cross-partition first-observation order.
// Routers are stateless apart from the ring and the clock: any number can
// front the same cluster, and a restarted router re-learns both (the ring
// from any node, the clock by folding partition clocks — see Prime).
type Router struct {
	opts  RouterOptions
	clock atomic.Uint64

	mu      sync.Mutex
	ring    *Ring
	clients map[string]*tagserver.ClusterClient // partition ID -> group client
}

// NewRouter builds a router over a validated ring.
func NewRouter(ring *Ring, opts RouterOptions) (*Router, error) {
	if err := ring.Validate(); err != nil {
		return nil, err
	}
	if opts.Device == "" {
		opts.Device = "router"
	}
	if opts.ScatterTimeout <= 0 {
		opts.ScatterTimeout = 5 * time.Second
	}
	if opts.MaxRingRefreshes <= 0 {
		opts.MaxRingRefreshes = 2
	}
	rt := &Router{opts: opts}
	if err := rt.install(ring); err != nil {
		return nil, err
	}
	return rt, nil
}

func (rt *Router) logf(format string, args ...interface{}) {
	if rt.opts.Logf != nil {
		rt.opts.Logf(format, args...)
	}
}

// install swaps in a new ring, building group clients for its partitions.
// Clients are reused across versions when a partition keeps its ID and
// node set, so long-lived routers keep their discovered-primary state
// through splits that do not touch the group.
func (rt *Router) install(ring *Ring) error {
	next := make(map[string]*tagserver.ClusterClient, len(ring.Partitions))
	rt.mu.Lock()
	old := rt.clients
	rt.mu.Unlock()
	for i := range ring.Partitions {
		p := &ring.Partitions[i]
		if cc := old[p.ID]; cc != nil && sameNodes(cc, p.Nodes) {
			next[p.ID] = cc
			continue
		}
		cc, err := tagserver.NewClusterClient(p.Nodes[0], p.Nodes[1:], rt.opts.Device, rt.opts.FP, rt.opts.ClientOptions...)
		if err != nil {
			return fmt.Errorf("partition %q: %w", p.ID, err)
		}
		next[p.ID] = cc
	}
	rt.mu.Lock()
	defer rt.mu.Unlock()
	// Re-check monotonicity under the same lock as the swap: two racing
	// refreshes can both pass SetRing's version check, and the slower
	// (older) install must not clobber the newer ring.
	if rt.ring != nil && ring.Version <= rt.ring.Version {
		return nil
	}
	rt.ring = ring
	rt.clients = next
	return nil
}

func sameNodes(cc *tagserver.ClusterClient, nodes []string) bool {
	// The cluster client mutates its primary on failover; comparing the
	// bootstrap list is enough to decide reuse (discovery re-converges).
	return cc != nil && cc.Bootstrap() == strings.Join(nodes, ",")
}

// Ring returns the currently installed ring.
func (rt *Router) Ring() *Ring {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	return rt.ring
}

// SetRing installs a newer ring version; older or equal versions are
// ignored (refreshes race benignly).
func (rt *Router) SetRing(ring *Ring) error {
	if err := ring.Validate(); err != nil {
		return err
	}
	rt.mu.Lock()
	cur := rt.ring.Version
	rt.mu.Unlock()
	if ring.Version <= cur {
		return nil
	}
	rt.logf("partition: installing ring v%d (%d partitions)", ring.Version, len(ring.Partitions))
	return rt.install(ring)
}

// snapshot returns the ring and the group client for each of its
// partitions under one lock acquisition.
func (rt *Router) snapshot() (*Ring, map[string]*tagserver.ClusterClient) {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	return rt.ring, rt.clients
}

// tick mints the next Lamport stamp.
func (rt *Router) tick() uint64 { return rt.clock.Add(1) }

// fold raises the Lamport clock to at least c.
func (rt *Router) fold(c uint64) {
	for {
		cur := rt.clock.Load()
		if c <= cur || rt.clock.CompareAndSwap(cur, c) {
			return
		}
	}
}

// Clock returns the router's current Lamport time.
func (rt *Router) Clock() uint64 { return rt.clock.Load() }

// Prime folds every partition's logical clock into the router's, so a
// freshly (re)started router stamps ahead of the cluster instead of in
// its past — the invariant that keeps journal replay deterministic. Nodes
// that cannot be reached are skipped (their clock folds in on the first
// scatter that touches them).
func (rt *Router) Prime(ctx context.Context) {
	ring, clients := rt.snapshot()
	// Paragraph and document observations advance independent clocks;
	// folding only one could still stamp behind the cluster, so prime
	// from both.
	for _, gran := range []string{"paragraph", "document"} {
		replies := rt.scatter(ctx, ring, clients, nil, nil, gran)
		for _, r := range replies {
			if r != nil {
				rt.fold(r.Clock)
			}
		}
	}
}

// refreshRing refetches the ring after a stale-ring 421, trying every
// partition group until one serves a newer version.
func (rt *Router) refreshRing(ctx context.Context) error {
	_, clients := rt.snapshot()
	var lastErr error
	for id, cc := range clients {
		encoded, _, err := cc.PartRing(ctx)
		if err != nil {
			lastErr = fmt.Errorf("partition %q: %w", id, err)
			continue
		}
		ring, err := DecodeRing(encoded)
		if err != nil {
			lastErr = fmt.Errorf("partition %q: %w", id, err)
			continue
		}
		if ring.Version > rt.Ring().Version {
			return rt.SetRing(ring)
		}
	}
	if lastErr == nil {
		lastErr = fmt.Errorf("partition: no node served a newer ring")
	}
	return lastErr
}

// isRingRedirect reports whether err is a partition-ownership 421 (the
// node is healthy but the router's ring is stale).
func isRingRedirect(err error) bool {
	np, ok := tagserver.AsNotPrimary(err)
	return ok && np.RingVersion > 0
}

// homeFor resolves seg's home partition and its group client.
func homeFor(ring *Ring, clients map[string]*tagserver.ClusterClient, seg segment.ID) (*Partition, *tagserver.ClusterClient, error) {
	home, ok := ring.Home(seg)
	if !ok {
		return nil, nil, fmt.Errorf("partition: ring v%d does not cover key %d", ring.Version, segment.Key(seg))
	}
	cc := clients[home.ID]
	if cc == nil {
		return nil, nil, fmt.Errorf("partition: no client for partition %q", home.ID)
	}
	return home, cc, nil
}

// scatter queries every partition except skip for its contribution to a
// disclosure resolve, each leg under its own deadline. A leg that fails
// yields a nil entry; callers that need completeness must check.
func (rt *Router) scatter(ctx context.Context, ring *Ring, clients map[string]*tagserver.ClusterClient, errs []error, hashes []uint32, granularity string) []*tagserver.PartResolveWire {
	return rt.scatterExcept(ctx, ring, clients, errs, hashes, granularity, "")
}

func (rt *Router) scatterExcept(ctx context.Context, ring *Ring, clients map[string]*tagserver.ClusterClient, errs []error, hashes []uint32, granularity, skip string) []*tagserver.PartResolveWire {
	replies := make([]*tagserver.PartResolveWire, len(ring.Partitions))
	var wg sync.WaitGroup
	for i := range ring.Partitions {
		p := &ring.Partitions[i]
		if p.ID == skip {
			continue
		}
		cc := clients[p.ID]
		if cc == nil {
			if errs != nil {
				errs[i] = fmt.Errorf("partition %q: no client", p.ID)
			}
			continue
		}
		wg.Add(1)
		go func(i int, id string, cc *tagserver.ClusterClient) {
			defer wg.Done()
			legCtx, cancel := context.WithTimeout(ctx, rt.opts.ScatterTimeout)
			defer cancel()
			r, err := cc.PartQuery(legCtx, hashes, granularity)
			if err != nil {
				if errs != nil {
					errs[i] = fmt.Errorf("partition %q: %w", id, err)
				}
				return
			}
			replies[i] = &r
		}(i, p.ID, cc)
	}
	wg.Wait()
	return replies
}

// ObserveHashes routes one observation: phase 1 at the segment's home
// partition (decision-cache probe), on a miss a scatter-gather resolve
// across the other partitions, phase 2 applying the merged result at the
// home. A sole-partition ring short-circuits inside the node (one round
// trip); a stale ring is refreshed on 421 and the observation re-routed.
func (rt *Router) ObserveHashes(ctx context.Context, service string, seg segment.ID, hashes []uint32, granularity string) (tagserver.VerdictResponse, error) {
	hs := fingerprint.FromHashes(hashes).Hashes()
	var lastErr error
	for refresh := 0; refresh <= rt.opts.MaxRingRefreshes; refresh++ {
		ring, clients := rt.snapshot()
		home, cc, err := homeFor(ring, clients, seg)
		if err != nil {
			return tagserver.VerdictResponse{}, err
		}
		stamp := rt.tick()
		resp, err := cc.PartObserve(ctx, service, seg, hs, granularity, stamp, nil)
		if err != nil {
			if isRingRedirect(err) {
				lastErr = err
				if rerr := rt.refreshRing(ctx); rerr != nil {
					return tagserver.VerdictResponse{}, fmt.Errorf("stale ring: %w (refresh failed: %v)", err, rerr)
				}
				continue
			}
			return tagserver.VerdictResponse{}, err
		}
		if resp.Verdict != nil {
			return *resp.Verdict, nil
		}

		// Cache miss: gather the other partitions' contributions and merge.
		replies := make([]policy.PartResolve, 0, len(ring.Partitions))
		replies = append(replies, tagserver.FromWireResolve(resp.Resolve))
		errs := make([]error, len(ring.Partitions))
		wires := rt.scatterExcept(ctx, ring, clients, errs, hs, granularity, home.ID)
		for i := range wires {
			if errs[i] != nil {
				// Fail closed: a missing contribution could hide the
				// authoritative holder and flip a block to an allow.
				return tagserver.VerdictResponse{}, fmt.Errorf("partition scatter: %w", errs[i])
			}
			if wires[i] != nil {
				replies = append(replies, tagserver.FromWireResolve(wires[i]))
			}
		}
		sources, tags, maxClock := policy.MergeResolves(len(hs), seg, replies)
		rt.fold(maxClock)

		resolved := &tagserver.PartResolved{Sources: tagserver.ToWireSources(sources), Tags: tags}
		resp, err = cc.PartObserve(ctx, service, seg, hs, granularity, stamp, resolved)
		if err != nil {
			if isRingRedirect(err) {
				// Ownership moved between the phases; the merged resolve may
				// predate the move, so re-route the whole observation.
				lastErr = err
				if rerr := rt.refreshRing(ctx); rerr != nil {
					return tagserver.VerdictResponse{}, fmt.Errorf("stale ring: %w (refresh failed: %v)", err, rerr)
				}
				continue
			}
			return tagserver.VerdictResponse{}, err
		}
		if resp.Verdict == nil {
			return tagserver.VerdictResponse{}, fmt.Errorf("partition %q: resolved observe returned no verdict", home.ID)
		}
		return *resp.Verdict, nil
	}
	return tagserver.VerdictResponse{}, fmt.Errorf("partition: ring refresh loop exhausted: %w", lastErr)
}

// CheckHashes routes a release check: scatter the disclosure query to
// every partition, merge, and evaluate the resolved check on one node
// (the first partition — enforcement state for ad-hoc checks is the
// service table, which every node carries).
func (rt *Router) CheckHashes(ctx context.Context, dest string, hashes []uint32) (tagserver.VerdictResponse, error) {
	hs := fingerprint.FromHashes(hashes).Hashes()
	ring, clients := rt.snapshot()
	errs := make([]error, len(ring.Partitions))
	wires := rt.scatter(ctx, ring, clients, errs, hs, "")
	replies := make([]policy.PartResolve, 0, len(wires))
	for i := range wires {
		if errs[i] != nil {
			return tagserver.VerdictResponse{}, fmt.Errorf("partition scatter: %w", errs[i])
		}
		if wires[i] != nil {
			replies = append(replies, tagserver.FromWireResolve(wires[i]))
		}
	}
	// No observer to exclude: ad-hoc content is not a tracked segment.
	sources, tags, maxClock := policy.MergeResolves(len(hs), "", replies)
	rt.fold(maxClock)

	// The check label's implicit set is the union of the winning sources'
	// explicit tags — exactly what checkSources computes from a shared
	// registry.
	implicit := unionTags(tags)
	cc := clients[ring.Partitions[0].ID]
	if cc == nil {
		return tagserver.VerdictResponse{}, fmt.Errorf("partition: no client for %q", ring.Partitions[0].ID)
	}
	v, err := cc.PartCheck(ctx, dest, tagserver.ToWireSources(sources), implicit)
	if err != nil {
		return tagserver.VerdictResponse{}, err
	}
	return tagserver.VerdictResponse{Decision: v.Decision, Violating: v.Violating, Sources: v.Sources}, nil
}

// unionTags flattens a per-source tag map into a sorted distinct list.
func unionTags(tags map[segment.ID][]string) []string {
	if len(tags) == 0 {
		return nil
	}
	set := make(map[string]struct{})
	for _, names := range tags {
		for _, n := range names {
			set[n] = struct{}{}
		}
	}
	out := make([]string, 0, len(set))
	for n := range set {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Suppress routes a declassification to the segment's home partition
// (labels and their audit trail live there), refreshing the ring on 421.
func (rt *Router) Suppress(ctx context.Context, user string, seg segment.ID, tag tdm.Tag, justification string) error {
	var lastErr error
	for refresh := 0; refresh <= rt.opts.MaxRingRefreshes; refresh++ {
		ring, clients := rt.snapshot()
		_, cc, err := homeFor(ring, clients, seg)
		if err != nil {
			return err
		}
		err = cc.PartSuppress(ctx, user, seg, tag, justification)
		if err == nil || !isRingRedirect(err) {
			return err
		}
		lastErr = err
		if rerr := rt.refreshRing(ctx); rerr != nil {
			return fmt.Errorf("stale ring: %w (refresh failed: %v)", err, rerr)
		}
	}
	return fmt.Errorf("partition: ring refresh loop exhausted: %w", lastErr)
}

// Upload routes a tracked-segment release check to the segment's home
// partition, where its label lives.
func (rt *Router) Upload(ctx context.Context, seg segment.ID, dest string) (tagserver.VerdictResponse, error) {
	ring, clients := rt.snapshot()
	_, cc, err := homeFor(ring, clients, seg)
	if err != nil {
		return tagserver.VerdictResponse{}, err
	}
	v, err := cc.Upload(ctx, seg, dest)
	if err != nil {
		return tagserver.VerdictResponse{}, err
	}
	return tagserver.VerdictResponse{Decision: v.Decision, Violating: v.Violating, Sources: v.Sources}, nil
}

// Label fetches a segment's label from its home partition.
func (rt *Router) Label(ctx context.Context, seg segment.ID) (tagserver.LabelResponse, error) {
	ring, clients := rt.snapshot()
	_, cc, err := homeFor(ring, clients, seg)
	if err != nil {
		return tagserver.LabelResponse{}, err
	}
	return cc.Label(ctx, seg)
}

// Stats sums database sizes across partitions. DistinctHashes is an upper
// bound: a hash held by segments on two partitions counts once per
// partition.
func (rt *Router) Stats(ctx context.Context) (tagserver.StatsResponse, error) {
	ring, clients := rt.snapshot()
	var (
		mu  sync.Mutex
		sum tagserver.StatsResponse
		wg  sync.WaitGroup
	)
	errs := make([]error, len(ring.Partitions))
	for i := range ring.Partitions {
		p := &ring.Partitions[i]
		cc := clients[p.ID]
		if cc == nil {
			errs[i] = fmt.Errorf("partition %q: no client", p.ID)
			continue
		}
		wg.Add(1)
		go func(i int, cc *tagserver.ClusterClient) {
			defer wg.Done()
			legCtx, cancel := context.WithTimeout(ctx, rt.opts.ScatterTimeout)
			defer cancel()
			s, err := cc.Stats(legCtx)
			if err != nil {
				errs[i] = err
				return
			}
			mu.Lock()
			sum.Segments += s.Segments
			sum.DistinctHashes += s.DistinctHashes
			sum.AuditEntries += s.AuditEntries
			mu.Unlock()
		}(i, cc)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return tagserver.StatsResponse{}, err
		}
	}
	return sum, nil
}
