// Package policyfile loads enterprise data disclosure policies from JSON.
// §3.1: "Policies are set by enterprise-wide administrators once" — this is
// the artefact administrators author and ship to every device:
//
//	{
//	  "services": [
//	    {"name": "itool", "privilege": ["ti"], "confidentiality": ["ti"]},
//	    {"name": "wiki",  "privilege": ["tw"], "confidentiality": ["tw"]},
//	    {"name": "docs"}
//	  ],
//	  "mode": "advisory",
//	  "tpar": 0.5,
//	  "tdoc": 0.5,
//	  "secrets": [
//	    {"name": "prod-db-password", "value": "..."}
//	  ]
//	}
package policyfile

import (
	"encoding/json"
	"fmt"
	"io"
	"os"

	"github.com/lsds/browserflow/internal/policy"
)

// ServiceSpec declares one cloud service.
type ServiceSpec struct {
	Name            string   `json:"name"`
	Privilege       []string `json:"privilege,omitempty"`
	Confidentiality []string `json:"confidentiality,omitempty"`
}

// SecretSpec registers one exact-match secret.
type SecretSpec struct {
	Name  string `json:"name"`
	Value string `json:"value"`
}

// Policy is the root document.
type Policy struct {
	Services []ServiceSpec `json:"services"`

	// Mode is "advisory" (default), "enforcing" or "encrypting".
	Mode string `json:"mode,omitempty"`

	// Tpar and Tdoc are the default disclosure thresholds (default 0.5).
	Tpar float64 `json:"tpar,omitempty"`
	Tdoc float64 `json:"tdoc,omitempty"`

	// Secrets to protect by exact matching.
	Secrets []SecretSpec `json:"secrets,omitempty"`
}

// Parse reads and validates a policy document.
func Parse(r io.Reader) (Policy, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var p Policy
	if err := dec.Decode(&p); err != nil {
		return Policy{}, fmt.Errorf("policyfile: %w", err)
	}
	if err := p.Validate(); err != nil {
		return Policy{}, err
	}
	p.applyDefaults()
	return p, nil
}

// Load parses a policy file from disk.
func Load(path string) (Policy, error) {
	f, err := os.Open(path)
	if err != nil {
		return Policy{}, fmt.Errorf("policyfile: %w", err)
	}
	defer f.Close()
	return Parse(f)
}

// Validate checks structural constraints.
func (p Policy) Validate() error {
	if len(p.Services) == 0 {
		return fmt.Errorf("policyfile: at least one service is required")
	}
	seen := make(map[string]bool, len(p.Services))
	for _, svc := range p.Services {
		if svc.Name == "" {
			return fmt.Errorf("policyfile: service with empty name")
		}
		if seen[svc.Name] {
			return fmt.Errorf("policyfile: duplicate service %q", svc.Name)
		}
		seen[svc.Name] = true
	}
	switch p.Mode {
	case "", "advisory", "enforcing", "encrypting":
	default:
		return fmt.Errorf("policyfile: unknown mode %q", p.Mode)
	}
	if p.Tpar < 0 || p.Tpar > 1 {
		return fmt.Errorf("policyfile: tpar %v out of [0,1]", p.Tpar)
	}
	if p.Tdoc < 0 || p.Tdoc > 1 {
		return fmt.Errorf("policyfile: tdoc %v out of [0,1]", p.Tdoc)
	}
	for _, s := range p.Secrets {
		if s.Name == "" || s.Value == "" {
			return fmt.Errorf("policyfile: secret entries need name and value")
		}
	}
	return nil
}

func (p *Policy) applyDefaults() {
	if p.Mode == "" {
		p.Mode = "advisory"
	}
	if p.Tpar == 0 {
		p.Tpar = 0.5
	}
	if p.Tdoc == 0 {
		p.Tdoc = 0.5
	}
}

// PolicyMode converts the mode string.
func (p Policy) PolicyMode() policy.Mode {
	switch p.Mode {
	case "enforcing":
		return policy.ModeEnforcing
	case "encrypting":
		return policy.ModeEncrypting
	default:
		return policy.ModeAdvisory
	}
}

// Write serialises the policy as indented JSON.
func (p Policy) Write(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(p)
}
