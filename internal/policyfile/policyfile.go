// Package policyfile loads, compiles and lints enterprise data disclosure
// policies. §3.1: "Policies are set by enterprise-wide administrators
// once" — this is the artefact administrators author and ship to every
// device. Beyond the flat service list, the language supports named
// service classes that services inherit labels from, tag-propagation
// rules ("a segment tagged X also counts as tagged Y"), and declared
// sanitizer transforms ("redaction counts as suppression of these tags"):
//
//	{
//	  "classes": [
//	    {"name": "internal", "privilege": ["tc"], "confidentiality": ["tc"]}
//	  ],
//	  "services": [
//	    {"name": "itool", "class": "internal", "privilege": ["ti"], "confidentiality": ["ti"]},
//	    {"name": "wiki",  "privilege": ["tw"], "confidentiality": ["tw"]},
//	    {"name": "docs"}
//	  ],
//	  "propagation": [
//	    {"tag": "ti", "implies": ["tc"]}
//	  ],
//	  "transforms": [
//	    {"name": "redact-pii", "suppresses": ["ti"]}
//	  ],
//	  "mode": "advisory",
//	  "tpar": 0.5,
//	  "tdoc": 0.5,
//	  "secrets": [
//	    {"name": "prod-db-password", "value": "..."}
//	  ]
//	}
//
// Compile resolves class inheritance and propagation into flat per-service
// label rows and emits a tdm.CheckTable — dense uint64 bitset rows over
// interned tag IDs — which the TDM registry consults instead of walking
// the tag-set semilattice (see tdm.InstallCheckTable). Lint runs the
// static analysis pass behind `bfctl policy lint`.
package policyfile

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"

	"github.com/lsds/browserflow/internal/policy"
)

// ClassSpec declares a named service class whose labels member services
// inherit. Classes may themselves extend other classes; cycles are
// rejected.
type ClassSpec struct {
	Name            string   `json:"name"`
	Extends         []string `json:"extends,omitempty"`
	Privilege       []string `json:"privilege,omitempty"`
	Confidentiality []string `json:"confidentiality,omitempty"`
	Untrusted       []string `json:"untrusted,omitempty"`
}

// ServiceSpec declares one cloud service. Its effective labels are the
// union of its own lists and those of its class chain. Untrusted is an
// assertion, not a subtraction: a tag that ends up both granted and
// untrusted for the same service is a policy contradiction and rejected.
type ServiceSpec struct {
	Name            string   `json:"name"`
	Class           string   `json:"class,omitempty"`
	Privilege       []string `json:"privilege,omitempty"`
	Confidentiality []string `json:"confidentiality,omitempty"`
	Untrusted       []string `json:"untrusted,omitempty"`
}

// PropagationRule declares tag implication: a segment carrying Tag is
// treated as also carrying every tag in Implies. The compiler expands the
// transitive closure into every confidentiality label at compile time, so
// the runtime engine never walks the rule graph.
type PropagationRule struct {
	Tag     string   `json:"tag"`
	Implies []string `json:"implies"`
}

// TransformSpec declares a sanitizer: applying the named transform to a
// segment counts as (audited) suppression of the listed tags — e.g.
// "redaction counts as suppression of the PII tag".
type TransformSpec struct {
	Name       string   `json:"name"`
	Suppresses []string `json:"suppresses"`
}

// SecretSpec registers one exact-match secret.
type SecretSpec struct {
	Name  string `json:"name"`
	Value string `json:"value"`
}

// Policy is the root document.
type Policy struct {
	Classes  []ClassSpec   `json:"classes,omitempty"`
	Services []ServiceSpec `json:"services"`

	Propagation []PropagationRule `json:"propagation,omitempty"`
	Transforms  []TransformSpec   `json:"transforms,omitempty"`

	// Mode is "advisory" (default), "enforcing" or "encrypting".
	Mode string `json:"mode,omitempty"`

	// Tpar and Tdoc are the default disclosure thresholds (default 0.5).
	Tpar float64 `json:"tpar,omitempty"`
	Tdoc float64 `json:"tdoc,omitempty"`

	// Secrets to protect by exact matching.
	Secrets []SecretSpec `json:"secrets,omitempty"`
}

// Error is a positional policy error. Offset is the byte offset of the
// offending element into the source document, or -1 when the policy was
// built in memory; the rendering matches store.CorruptSnapshotError so
// every load failure points at the byte.
type Error struct {
	Path   string // JSON path of the offending element ("services[2].name")
	Offset int64  // byte offset into the document; -1 when unknown
	Msg    string
}

// Error implements the error interface.
func (e *Error) Error() string {
	switch {
	case e.Offset >= 0 && e.Path != "":
		return fmt.Sprintf("policyfile: %s at byte %d: %s", e.Path, e.Offset, e.Msg)
	case e.Offset >= 0:
		return fmt.Sprintf("policyfile: at byte %d: %s", e.Offset, e.Msg)
	case e.Path != "":
		return fmt.Sprintf("policyfile: %s: %s", e.Path, e.Msg)
	default:
		return "policyfile: " + e.Msg
	}
}

// Parse reads and validates a policy document.
func Parse(r io.Reader) (Policy, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return Policy{}, fmt.Errorf("policyfile: %w", err)
	}
	return ParseBytes(data)
}

// ParseBytes parses and validates a policy document from memory. Decode
// and validation failures carry the byte offset of the offending element.
func ParseBytes(data []byte) (Policy, error) {
	p, err := decode(data)
	if err != nil {
		return Policy{}, err
	}
	idx := scanOffsets(data)
	if diag := firstError(p.diagnostics(idx, false)); diag != nil {
		return Policy{}, diag.err()
	}
	p.applyDefaults()
	return p, nil
}

// decode unmarshals the document, converting the standard library's
// decode errors into positional ones: json.SyntaxError and
// json.UnmarshalTypeError know the byte they stopped at, and losing that
// offset made broken policies needlessly hard to fix.
func decode(data []byte) (Policy, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var p Policy
	if err := dec.Decode(&p); err != nil {
		var syn *json.SyntaxError
		if errors.As(err, &syn) {
			return Policy{}, &Error{Offset: syn.Offset, Msg: syn.Error()}
		}
		var typ *json.UnmarshalTypeError
		if errors.As(err, &typ) {
			return Policy{}, &Error{Path: typ.Field, Offset: typ.Offset, Msg: fmt.Sprintf("cannot decode %s into %s", typ.Value, typ.Type)}
		}
		return Policy{}, &Error{Offset: dec.InputOffset(), Msg: err.Error()}
	}
	// A second document after the first is an authoring error, not
	// trailing whitespace.
	if dec.More() {
		return Policy{}, &Error{Offset: dec.InputOffset(), Msg: "trailing data after policy document"}
	}
	return p, nil
}

// Load parses a policy file from disk.
func Load(path string) (Policy, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Policy{}, fmt.Errorf("policyfile: %w", err)
	}
	return ParseBytes(data)
}

// Validate checks the structural constraints Parse enforces: service and
// class naming, mode and thresholds, class references and inheritance
// cycles, privilege/untrusted contradictions, and that every
// confidentiality tag is granted in at least one privilege label. For a
// policy built in memory the errors carry paths but no byte offsets.
func (p Policy) Validate() error {
	if diag := firstError(p.diagnostics(nil, false)); diag != nil {
		return diag.err()
	}
	return nil
}

func (p *Policy) applyDefaults() {
	if p.Mode == "" {
		p.Mode = "advisory"
	}
	if p.Tpar == 0 {
		p.Tpar = 0.5
	}
	if p.Tdoc == 0 {
		p.Tdoc = 0.5
	}
}

// PolicyMode converts the mode string.
func (p Policy) PolicyMode() policy.Mode {
	switch p.Mode {
	case "enforcing":
		return policy.ModeEnforcing
	case "encrypting":
		return policy.ModeEncrypting
	default:
		return policy.ModeAdvisory
	}
}

// Write serialises the policy as indented JSON.
func (p Policy) Write(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(p)
}
