package policyfile

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sort"
	"strconv"

	"github.com/lsds/browserflow/internal/tdm"
)

// Compiled is a policy flattened for the runtime: class inheritance and
// propagation resolved into per-service labels, the label universe
// interned, and the §3.1 release check lowered to a tdm.CheckTable of
// dense bitset rows. The compiled form is deterministic — the same
// document always produces the same table and the same Hash — so two
// devices can compare policy fingerprints over /healthz.
type Compiled struct {
	// Source is the validated policy the artefact was compiled from, with
	// defaults applied.
	Source Policy

	// Services holds the flat resolved labels, sorted by name.
	Services []ResolvedService

	// Table is the compiled bitset check table for
	// (*tdm.Registry).InstallCheckTable.
	Table *tdm.CheckTable

	// Transforms maps each sanitizer transform name to the tags applying
	// it suppresses.
	Transforms map[string][]tdm.Tag

	hash string
}

// Compile validates and flattens a policy. It refuses to compile a policy
// carrying any error-severity diagnostic, so a compiled table can only
// exist for a loadable policy — the fuzz harness leans on this: every
// input either fails with a typed error or yields a Validate-clean table.
func Compile(p Policy) (*Compiled, error) {
	if diag := firstError(p.diagnostics(nil, false)); diag != nil {
		return nil, diag.err()
	}
	p.applyDefaults()

	res := newResolver(p)
	c := &Compiled{Source: p, Transforms: make(map[string][]tdm.Tag, len(p.Transforms))}
	for _, s := range p.Services {
		c.Services = append(c.Services, res.resolveService(s))
	}
	sort.Slice(c.Services, func(i, j int) bool { return c.Services[i].Name < c.Services[j].Name })

	// The tag universe is every tag the policy mentions, sorted, so bit
	// positions and the policy hash are independent of declaration order.
	universe := stringSet{}
	for _, rs := range c.Services {
		for _, t := range rs.Privilege {
			universe[string(t)] = true
		}
		for _, t := range rs.Confidentiality {
			universe[string(t)] = true
		}
		for _, t := range rs.Untrusted {
			universe[string(t)] = true
		}
	}
	for _, tr := range p.Transforms {
		universe.addAll(tr.Suppresses)
	}
	tags := toTags(universe.sorted())

	c.Table = tdm.NewCheckTable(tags)
	for _, rs := range c.Services {
		if err := c.Table.AddRow(rs.Name, rs.Privilege, rs.Confidentiality); err != nil {
			return nil, fmt.Errorf("policyfile: compile %s: %w", rs.Name, err)
		}
	}
	for _, tr := range p.Transforms {
		set := stringSet{}
		set.addAll(tr.Suppresses)
		c.Transforms[tr.Name] = toTags(set.sorted())
	}

	c.hash = c.fingerprint()
	return c, nil
}

// Hash returns the compiled policy's fingerprint: a sha256 over the
// resolved labels, tag universe, transforms, mode and thresholds. Devices
// expose it on /healthz so drift between fleet members is visible.
func (c *Compiled) Hash() string { return c.hash }

func (c *Compiled) fingerprint() string {
	h := sha256.New()
	w := func(parts ...string) {
		for _, s := range parts {
			h.Write([]byte(s))
			h.Write([]byte{0})
		}
	}
	w("mode", c.Source.Mode,
		"tpar", strconv.FormatFloat(c.Source.Tpar, 'g', -1, 64),
		"tdoc", strconv.FormatFloat(c.Source.Tdoc, 'g', -1, 64))
	w("tags")
	for _, t := range c.Table.Tags {
		w(string(t))
	}
	for _, rs := range c.Services {
		w("service", rs.Name)
		w("priv")
		for _, t := range rs.Privilege {
			w(string(t))
		}
		w("conf")
		for _, t := range rs.Confidentiality {
			w(string(t))
		}
		w("untrusted")
		for _, t := range rs.Untrusted {
			w(string(t))
		}
	}
	names := make([]string, 0, len(c.Transforms))
	for name := range c.Transforms {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		w("transform", name)
		for _, t := range c.Transforms[name] {
			w(string(t))
		}
	}
	// Secrets participate by name only: the fingerprint is shared over
	// /healthz and must not leak secret material.
	for _, s := range c.Source.Secrets {
		w("secret", s.Name)
	}
	return hex.EncodeToString(h.Sum(nil))
}
