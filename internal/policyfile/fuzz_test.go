package policyfile

import (
	"errors"
	"os"
	"path/filepath"
	"testing"
)

// fuzzSeeds feeds the corpus: the three shipping policies plus every
// broken fixture, so the fuzzer starts from both sides of the
// valid/invalid boundary.
func fuzzSeeds(f *testing.F) {
	f.Helper()
	names, err := filepath.Glob(filepath.Join("testdata", "*.json"))
	if err != nil {
		f.Fatal(err)
	}
	for _, name := range names {
		data, err := os.ReadFile(name)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(data)
	}
	f.Add([]byte(`{`))
	f.Add([]byte(`{"services":[{"name":"a","privilege":["t"],"confidentiality":["t"],"untrusted":["t"]}]}`))
	f.Add([]byte(`{"classes":[{"name":"a","extends":["a"]}],"services":[{"name":"s"}]}`))
	f.Add([]byte(`{"services":[{"name":"s"}],"propagation":[{"tag":"a","implies":["b"]},{"tag":"b","implies":["a"]}]}`))
}

// FuzzParsePolicy asserts the parser's contract: any input either fails
// with a typed *Error (never a panic, never an untyped error) or yields a
// policy that re-validates clean.
func FuzzParsePolicy(f *testing.F) {
	fuzzSeeds(f)
	f.Fuzz(func(t *testing.T, data []byte) {
		p, err := ParseBytes(data)
		if err != nil {
			var perr *Error
			if !errors.As(err, &perr) {
				t.Fatalf("untyped parse error %T: %v", err, err)
			}
			return
		}
		if err := p.Validate(); err != nil {
			t.Fatalf("parsed policy fails Validate: %v", err)
		}
		// Lint on a parseable document never reports errors the parser
		// let through.
		if d := firstError(Lint(data)); d != nil {
			t.Fatalf("parse accepted what lint rejects: %s", d)
		}
	})
}

// FuzzCompilePolicy asserts the compiler's contract: parse→compile never
// panics, and every successful compile yields a deterministic table whose
// rows cover exactly the policy's services with all tags interned.
func FuzzCompilePolicy(f *testing.F) {
	fuzzSeeds(f)
	f.Fuzz(func(t *testing.T, data []byte) {
		p, err := ParseBytes(data)
		if err != nil {
			return
		}
		c, err := Compile(p)
		if err != nil {
			t.Fatalf("validated policy fails Compile: %v", err)
		}
		c2, err := Compile(p)
		if err != nil || c.Hash() != c2.Hash() {
			t.Fatalf("compile not deterministic: %v / %s vs %s", err, c.Hash(), c2.Hash())
		}
		if len(c.Table.Rows) != len(p.Services) {
			t.Fatalf("rows=%d services=%d", len(c.Table.Rows), len(p.Services))
		}
		inTable := make(map[string]bool, len(c.Table.Tags))
		for _, tag := range c.Table.Tags {
			inTable[string(tag)] = true
		}
		for _, rs := range c.Services {
			for _, tag := range rs.Privilege {
				if !inTable[string(tag)] {
					t.Fatalf("privilege tag %q not interned", tag)
				}
			}
			for _, tag := range rs.Confidentiality {
				if !inTable[string(tag)] {
					t.Fatalf("confidentiality tag %q not interned", tag)
				}
			}
		}
	})
}
