package policyfile

import (
	"bytes"
	"encoding/json"
	"fmt"
	"strconv"
)

// offsetIndex maps JSON paths ("services[2].name") to the byte offset of
// the value at that path, letting validation and lint diagnostics point
// at the exact byte of the offending element — the same affordance
// store.CorruptSnapshotError gives corrupt checkpoints.
type offsetIndex map[string]int64

// at returns the byte offset recorded for path, or -1 when the index is
// nil (in-memory policy) or the path was never materialised.
func (idx offsetIndex) at(path string) int64 {
	if idx == nil {
		return -1
	}
	if off, ok := idx[path]; ok {
		return off
	}
	return -1
}

// scanOffsets tokenises the document once, recording where every value
// starts. It is best-effort: a document that fails to tokenise yields the
// offsets collected up to the failure (decode has already reported the
// syntax error with its own offset).
func scanOffsets(data []byte) offsetIndex {
	idx := make(offsetIndex)
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.UseNumber()
	var walk func(path string) error
	walk = func(path string) error {
		start := valueStart(data, dec.InputOffset())
		tok, err := dec.Token()
		if err != nil {
			return err
		}
		if path != "" {
			idx[path] = start
		}
		delim, ok := tok.(json.Delim)
		if !ok {
			return nil
		}
		switch delim {
		case '{':
			for dec.More() {
				keyTok, err := dec.Token()
				if err != nil {
					return err
				}
				key, _ := keyTok.(string)
				child := key
				if path != "" {
					child = path + "." + key
				}
				if err := walk(child); err != nil {
					return err
				}
			}
			_, err = dec.Token() // consume '}'
			return err
		case '[':
			for i := 0; dec.More(); i++ {
				if err := walk(path + "[" + strconv.Itoa(i) + "]"); err != nil {
					return err
				}
			}
			_, err = dec.Token() // consume ']'
			return err
		}
		return nil
	}
	_ = walk("")
	return idx
}

// valueStart advances off past the JSON punctuation and whitespace that
// separates the previous token from the next value, landing on its first
// byte.
func valueStart(data []byte, off int64) int64 {
	for int(off) < len(data) {
		switch data[off] {
		case ' ', '\t', '\n', '\r', ',', ':':
			off++
		default:
			return off
		}
	}
	return off
}

// tagPath returns the path of the i-th tag in a label list, e.g.
// tagPath("services", 2, "privilege", 0) -> "services[2].privilege[0]".
func tagPath(section string, i int, field string, j int) string {
	return fmt.Sprintf("%s[%d].%s[%d]", section, i, field, j)
}

// elemPath returns the path of the i-th element of a section.
func elemPath(section string, i int) string {
	return fmt.Sprintf("%s[%d]", section, i)
}
