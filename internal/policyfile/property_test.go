package policyfile

import (
	"fmt"
	"math/rand"
	"testing"

	"github.com/lsds/browserflow/internal/segment"
	"github.com/lsds/browserflow/internal/tdm"
)

var propTagPool = []string{"t0", "t1", "t2", "t3"}

// randomPolicy draws a small policy from a fixed tag pool. Most draws are
// not lint-clean; the property tests filter on the linter's own verdict.
func randomPolicy(rng *rand.Rand) Policy {
	var p Policy
	n := 2 + rng.Intn(4)
	for i := 0; i < n; i++ {
		var svc ServiceSpec
		svc.Name = fmt.Sprintf("svc%d", i)
		for _, t := range propTagPool {
			if rng.Intn(3) == 0 {
				svc.Privilege = append(svc.Privilege, t)
			}
			if rng.Intn(4) == 0 {
				svc.Confidentiality = append(svc.Confidentiality, t)
			}
		}
		p.Services = append(p.Services, svc)
	}
	if rng.Intn(3) == 0 {
		p.Propagation = append(p.Propagation, PropagationRule{
			Tag:     propTagPool[rng.Intn(len(propTagPool))],
			Implies: []string{propTagPool[rng.Intn(len(propTagPool))]},
		})
	}
	return p
}

// simulateFlows replays a random flow sequence against a compiled policy:
// segments are authored at random services (default tag assignment), and
// content moves between services only when CheckRelease allows it, each
// move deriving a new segment at the destination with implicit tags from
// its source. It reports whether a fail-open hole was reached: tagged
// content admitted into a service whose resolved confidentiality label is
// empty, where a retype (which drops implicit tags) would launder it.
func simulateFlows(t *testing.T, c *Compiled, rng *rand.Rand, steps int) bool {
	t.Helper()
	reg := tdm.NewRegistry(nil)
	confEmpty := make(map[string]bool, len(c.Services))
	names := make([]string, 0, len(c.Services))
	for _, rs := range c.Services {
		if err := reg.RegisterService(rs.Name, tdm.NewTagSet(rs.Privilege...), tdm.NewTagSet(rs.Confidentiality...)); err != nil {
			t.Fatal(err)
		}
		confEmpty[rs.Name] = len(rs.Confidentiality) == 0
		names = append(names, rs.Name)
	}
	if err := reg.InstallCheckTable(c.Table); err != nil {
		t.Fatal(err)
	}

	hole := false
	var segs []segment.ID
	next := 0
	author := func(svc string) segment.ID {
		seg := segment.ID(fmt.Sprintf("seg-%d", next))
		next++
		if _, err := reg.ObserveSegment(seg, svc); err != nil {
			t.Fatal(err)
		}
		segs = append(segs, seg)
		return seg
	}
	for i := 0; i < steps; i++ {
		if len(segs) == 0 || rng.Intn(2) == 0 {
			author(names[rng.Intn(len(names))])
			continue
		}
		src := segs[rng.Intn(len(segs))]
		dst := names[rng.Intn(len(names))]
		ok, _, err := reg.CheckRelease(src, dst)
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			continue
		}
		tagged := reg.Label(src).Effective().Len() > 0
		derived := author(dst)
		reg.RefreshImplicit(derived, []segment.ID{src})
		if tagged && confEmpty[dst] {
			hole = true
		}
	}
	return hole
}

// TestLintCleanNeverFailsOpen is the linter's soundness property for the
// fail-open rule: under any flow sequence the policy itself permits,
// tagged content never lands in a service that assigns no confidentiality
// label — the static rule covers the dynamic hole.
func TestLintCleanNeverFailsOpen(t *testing.T) {
	clean := 0
	for seed := int64(0); seed < 300; seed++ {
		rng := rand.New(rand.NewSource(seed))
		p := randomPolicy(rng)
		if len(p.diagnostics(nil, true)) != 0 {
			continue
		}
		clean++
		c, err := Compile(p)
		if err != nil {
			t.Fatalf("seed %d: lint-clean policy fails Compile: %v", seed, err)
		}
		for run := int64(0); run < 3; run++ {
			frng := rand.New(rand.NewSource(seed<<8 | run))
			if simulateFlows(t, c, frng, 60) {
				t.Fatalf("seed %d run %d: lint-clean policy reached a fail-open hole", seed, run)
			}
		}
	}
	if clean < 10 {
		t.Fatalf("only %d lint-clean policies in 300 draws; generator too strict to test anything", clean)
	}
}

// TestFailOpenFixtureReachesHole is the companion completeness check: the
// fixture the linter warns about really does leak under the flows it
// permits, so the warning is not theoretical.
func TestFailOpenFixtureReachesHole(t *testing.T) {
	p, err := ParseBytes(readFixture(t, "broken-failopen.json"))
	if err != nil {
		t.Fatal(err)
	}
	c, err := Compile(p)
	if err != nil {
		t.Fatal(err)
	}
	hole := false
	for run := int64(0); run < 10 && !hole; run++ {
		hole = simulateFlows(t, c, rand.New(rand.NewSource(run)), 80)
	}
	if !hole {
		t.Fatal("fail-open fixture never reached the hole the linter warns about")
	}
}

// cleanPolicies yields lint-clean policies: the shipping fixtures plus
// random draws, the inputs for metamorphic injection.
func cleanPolicies(t *testing.T) []Policy {
	t.Helper()
	var out []Policy
	for _, name := range []string{"seed-webapps.json", "enterprise-classes.json", "encrypting-notes.json"} {
		p, err := ParseBytes(readFixture(t, name))
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, p)
	}
	for seed := int64(0); seed < 200 && len(out) < 20; seed++ {
		rng := rand.New(rand.NewSource(seed))
		p := randomPolicy(rng)
		if len(p.diagnostics(nil, true)) == 0 {
			p.applyDefaults()
			out = append(out, p)
		}
	}
	return out
}

// lintHasRule lints an in-memory policy and reports whether rule fired.
func lintHasRule(p Policy, rule string) bool {
	for _, d := range p.diagnostics(nil, true) {
		if d.Rule == rule {
			return true
		}
	}
	return false
}

// TestMetamorphicInjections: injecting a defect into ANY lint-clean policy
// must always trip the matching rule, whatever else the policy contains.
func TestMetamorphicInjections(t *testing.T) {
	for i, base := range cleanPolicies(t) {
		res := newResolver(base)
		// A granted tag to contradict, and an assigned tag to dangle from a
		// conf-less service.
		var grantedSvc int = -1
		var grantedTag string
		allConf := stringSet{}
		for si, s := range base.Services {
			priv, conf, _ := res.service(s)
			if grantedSvc < 0 && len(priv) > 0 {
				grantedSvc, grantedTag = si, priv.sorted()[0]
			}
			for tag := range conf {
				allConf[tag] = true
			}
		}

		t.Run(fmt.Sprintf("policy%d/contradiction", i), func(t *testing.T) {
			if grantedSvc < 0 {
				t.Skip("no granted tag to contradict")
			}
			mut := base
			mut.Services = append([]ServiceSpec(nil), base.Services...)
			s := mut.Services[grantedSvc]
			s.Untrusted = append(append([]string(nil), s.Untrusted...), grantedTag)
			mut.Services[grantedSvc] = s
			if !lintHasRule(mut, "contradiction") {
				t.Error("injected contradiction not flagged")
			}
		})
		t.Run(fmt.Sprintf("policy%d/unreachable", i), func(t *testing.T) {
			mut := base
			mut.Services = append([]ServiceSpec(nil), base.Services...)
			s := mut.Services[0]
			s.Privilege = append(append([]string(nil), s.Privilege...), "zz-never-assigned")
			mut.Services[0] = s
			if !lintHasRule(mut, "unreachable-tag") {
				t.Error("injected unreachable grant not flagged")
			}
		})
		t.Run(fmt.Sprintf("policy%d/ungranted", i), func(t *testing.T) {
			mut := base
			mut.Services = append([]ServiceSpec(nil), base.Services...)
			s := mut.Services[0]
			s.Confidentiality = append(append([]string(nil), s.Confidentiality...), "zz-never-granted")
			mut.Services[0] = s
			if !lintHasRule(mut, "ungranted-tag") {
				t.Error("injected ungranted assignment not flagged")
			}
		})
		t.Run(fmt.Sprintf("policy%d/failopen", i), func(t *testing.T) {
			if len(allConf) == 0 {
				t.Skip("no assigned tag to leak")
			}
			mut := base
			mut.Services = append([]ServiceSpec(nil), base.Services...)
			mut.Services = append(mut.Services, ServiceSpec{Name: "zz-hole", Privilege: []string{allConf.sorted()[0]}})
			if !lintHasRule(mut, "fail-open") {
				t.Error("injected fail-open hole not flagged")
			}
		})
		t.Run(fmt.Sprintf("policy%d/cycle", i), func(t *testing.T) {
			mut := base
			mut.Classes = append(append([]ClassSpec(nil), base.Classes...),
				ClassSpec{Name: "zz-cyc-a", Extends: []string{"zz-cyc-b"}},
				ClassSpec{Name: "zz-cyc-b", Extends: []string{"zz-cyc-a"}})
			if !lintHasRule(mut, "inheritance-cycle") {
				t.Error("injected extends cycle not flagged")
			}
		})
	}
}
