package policyfile

import (
	"sort"

	"github.com/lsds/browserflow/internal/tdm"
)

// ResolvedService is one service's flat labels after class inheritance and
// propagation expansion: exactly what gets registered with the TDM
// registry and compiled into a check-table row. Tag slices are sorted.
type ResolvedService struct {
	Name            string
	Privilege       []tdm.Tag
	Confidentiality []tdm.Tag
	Untrusted       []tdm.Tag
}

// stringSet is the resolver's working representation of a label.
type stringSet map[string]bool

func (s stringSet) addAll(tags []string) {
	for _, t := range tags {
		s[t] = true
	}
}

func (s stringSet) sorted() []string {
	out := make([]string, 0, len(s))
	for t := range s {
		out = append(out, t)
	}
	sort.Strings(out)
	return out
}

func toTags(tags []string) []tdm.Tag {
	if len(tags) == 0 {
		return nil
	}
	out := make([]tdm.Tag, len(tags))
	for i, t := range tags {
		out[i] = tdm.Tag(t)
	}
	return out
}

// classLabels is one class's labels after flattening its extends chain.
type classLabels struct {
	priv, conf, untrusted stringSet
}

// resolver flattens class inheritance and the propagation rule graph. It
// tolerates broken input (unknown classes, cycles) by resolving what it
// can — diagnostics reports those defects separately, and Compile refuses
// to run on a policy that carries any.
type resolver struct {
	classes map[string]ClassSpec
	// resolved memoises classLabels per class; cyclic and unknown
	// references contribute nothing.
	resolved map[string]*classLabels
	// onPath marks classes on the current DFS path; cycles is every class
	// found to sit on an extends cycle.
	onPath map[string]bool
	cycles map[string]bool
	// implies is the transitive propagation closure: implies[t] is every
	// tag a segment carrying t also counts as carrying (t excluded).
	implies map[string]stringSet
}

func newResolver(p Policy) *resolver {
	r := &resolver{
		classes:  make(map[string]ClassSpec, len(p.Classes)),
		resolved: make(map[string]*classLabels),
		onPath:   make(map[string]bool),
		cycles:   make(map[string]bool),
	}
	for _, c := range p.Classes {
		if _, dup := r.classes[c.Name]; !dup {
			r.classes[c.Name] = c
		}
	}
	for name := range r.classes {
		r.class(name)
	}
	r.implies = closePropagation(p.Propagation)
	return r
}

// class resolves one class's flattened labels, memoised. An unknown name
// yields empty labels; a class on an extends cycle is recorded in cycles
// and its back-edge contributes nothing (the diagnostics pass reports the
// cycle as an error, so the partial resolution is never shipped).
func (r *resolver) class(name string) *classLabels {
	if got, ok := r.resolved[name]; ok {
		return got
	}
	if r.onPath[name] {
		r.cycles[name] = true
		return &classLabels{priv: stringSet{}, conf: stringSet{}, untrusted: stringSet{}}
	}
	spec, ok := r.classes[name]
	out := &classLabels{priv: stringSet{}, conf: stringSet{}, untrusted: stringSet{}}
	if !ok {
		r.resolved[name] = out
		return out
	}
	r.onPath[name] = true
	for _, parent := range spec.Extends {
		pl := r.class(parent)
		for t := range pl.priv {
			out.priv[t] = true
		}
		for t := range pl.conf {
			out.conf[t] = true
		}
		for t := range pl.untrusted {
			out.untrusted[t] = true
		}
		if r.cycles[parent] {
			r.cycles[name] = true
		}
	}
	delete(r.onPath, name)
	out.priv.addAll(spec.Privilege)
	out.conf.addAll(spec.Confidentiality)
	out.untrusted.addAll(spec.Untrusted)
	r.resolved[name] = out
	return out
}

// service resolves one service's flat labels: its own lists unioned with
// its class chain, with the propagation closure applied to the
// confidentiality label (a segment authored at the service is born
// carrying the implied tags too). Privilege is NOT expanded: propagation
// widens what data counts as tagged, never what a service may receive.
func (r *resolver) service(s ServiceSpec) (priv, conf, untrusted stringSet) {
	priv = stringSet{}
	conf = stringSet{}
	untrusted = stringSet{}
	if s.Class != "" {
		cl := r.class(s.Class)
		for t := range cl.priv {
			priv[t] = true
		}
		for t := range cl.conf {
			conf[t] = true
		}
		for t := range cl.untrusted {
			untrusted[t] = true
		}
	}
	priv.addAll(s.Privilege)
	conf.addAll(s.Confidentiality)
	untrusted.addAll(s.Untrusted)
	for t := range conf {
		for imp := range r.implies[t] {
			conf[imp] = true
		}
	}
	return priv, conf, untrusted
}

// resolveService returns the exported form.
func (r *resolver) resolveService(s ServiceSpec) ResolvedService {
	priv, conf, untrusted := r.service(s)
	return ResolvedService{
		Name:            s.Name,
		Privilege:       toTags(priv.sorted()),
		Confidentiality: toTags(conf.sorted()),
		Untrusted:       toTags(untrusted.sorted()),
	}
}

// closePropagation computes the transitive closure of the rule graph.
// Rules may form cycles ("a implies b implies a"); the closure simply
// saturates, so cyclic rules are legal and mean the tags are equivalent.
func closePropagation(rules []PropagationRule) map[string]stringSet {
	direct := make(map[string]stringSet, len(rules))
	for _, rule := range rules {
		set := direct[rule.Tag]
		if set == nil {
			set = stringSet{}
			direct[rule.Tag] = set
		}
		set.addAll(rule.Implies)
	}
	closure := make(map[string]stringSet, len(direct))
	for tag := range direct {
		seen := stringSet{tag: true}
		stack := []string{tag}
		for len(stack) > 0 {
			cur := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for next := range direct[cur] {
				if !seen[next] {
					seen[next] = true
					stack = append(stack, next)
				}
			}
		}
		delete(seen, tag)
		closure[tag] = seen
	}
	return closure
}
