package policyfile

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func readFixture(t *testing.T, name string) []byte {
	t.Helper()
	data, err := os.ReadFile(filepath.Join("testdata", name))
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// hasRule reports whether any diagnostic carries the rule, and checks that
// every diagnostic from a real document points at a byte.
func hasRule(t *testing.T, diags []Diagnostic, rule string) bool {
	t.Helper()
	found := false
	for _, d := range diags {
		if d.Offset < 0 {
			t.Errorf("diagnostic without byte offset: %s", d)
		}
		if d.Rule == rule {
			found = true
		}
	}
	return found
}

func TestLintShippingPoliciesClean(t *testing.T) {
	for _, name := range []string{"seed-webapps.json", "enterprise-classes.json", "encrypting-notes.json"} {
		t.Run(name, func(t *testing.T) {
			diags := Lint(readFixture(t, name))
			for _, d := range diags {
				t.Errorf("unexpected diagnostic: %s", d)
			}
			if _, err := ParseBytes(readFixture(t, name)); err != nil {
				t.Errorf("ParseBytes: %v", err)
			}
		})
	}
}

func TestLintBrokenFixtures(t *testing.T) {
	tests := []struct {
		fixture  string
		rule     string
		severity Severity
	}{
		{"broken-contradiction.json", "contradiction", SeverityError},
		{"broken-unreachable.json", "unreachable-tag", SeverityWarning},
		{"broken-failopen.json", "fail-open", SeverityWarning},
		{"broken-cycle.json", "inheritance-cycle", SeverityError},
		{"broken-dup.json", "duplicate-service", SeverityError},
		{"broken-ungranted.json", "ungranted-tag", SeverityError},
	}
	for _, tt := range tests {
		t.Run(tt.fixture, func(t *testing.T) {
			diags := Lint(readFixture(t, tt.fixture))
			if len(diags) == 0 {
				t.Fatal("lint found nothing")
			}
			if !hasRule(t, diags, tt.rule) {
				t.Errorf("missing %s diagnostic, got: %v", tt.rule, diags)
			}
			for _, d := range diags {
				if d.Rule == tt.rule && d.Severity != tt.severity {
					t.Errorf("rule %s severity=%v want %v", tt.rule, d.Severity, tt.severity)
				}
			}
		})
	}
}

func TestLintSyntaxErrorOffset(t *testing.T) {
	diags := Lint([]byte(`{"services": [}`))
	if len(diags) != 1 || diags[0].Rule != "syntax" {
		t.Fatalf("diags=%v", diags)
	}
	if diags[0].Offset <= 0 {
		t.Errorf("syntax diagnostic offset=%d", diags[0].Offset)
	}
	if diags[0].Severity != SeverityError {
		t.Errorf("severity=%v", diags[0].Severity)
	}
}

func TestLintOffsetsPointAtElement(t *testing.T) {
	doc := `{"services": [{"name": "a", "privilege": ["t"], "confidentiality": ["t"]}, {"name": "a"}]}`
	diags := Lint([]byte(doc))
	var dup *Diagnostic
	for i := range diags {
		if diags[i].Rule == "duplicate-service" {
			dup = &diags[i]
		}
	}
	if dup == nil {
		t.Fatalf("no duplicate-service diagnostic in %v", diags)
	}
	if dup.Path != "services[1].name" {
		t.Errorf("path=%q", dup.Path)
	}
	want := int64(strings.Index(doc, `"a"}`))
	if dup.Offset != want {
		t.Errorf("offset=%d want %d (byte of the second name)", dup.Offset, want)
	}
}

func TestDiagnosticString(t *testing.T) {
	d := Diagnostic{Rule: "contradiction", Severity: SeverityError, Path: "services[1]", Offset: 42, Msg: "boom"}
	if got, want := d.String(), "error: services[1] at byte 42: boom [contradiction]"; got != want {
		t.Errorf("got %q want %q", got, want)
	}
	d = Diagnostic{Rule: "fail-open", Severity: SeverityWarning, Offset: -1, Msg: "hole"}
	if got, want := d.String(), "warning: hole [fail-open]"; got != want {
		t.Errorf("got %q want %q", got, want)
	}
}

func TestValidateIgnoresWarnings(t *testing.T) {
	// Fixtures whose only findings are warnings must still parse: lint
	// severity is advisory, load severity is not.
	for _, name := range []string{"broken-unreachable.json", "broken-failopen.json"} {
		if _, err := ParseBytes(readFixture(t, name)); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
	// Error-severity fixtures must not.
	for _, name := range []string{"broken-contradiction.json", "broken-cycle.json", "broken-dup.json", "broken-ungranted.json"} {
		if _, err := ParseBytes(readFixture(t, name)); err == nil {
			t.Errorf("%s: parsed", name)
		}
	}
}

func TestValidateInMemoryPaths(t *testing.T) {
	p := Policy{Services: []ServiceSpec{
		{Name: "a", Privilege: []string{"t"}, Confidentiality: []string{"t"}},
		{Name: "a"},
	}}
	err := p.Validate()
	if err == nil {
		t.Fatal("duplicate accepted")
	}
	perr, ok := err.(*Error)
	if !ok {
		t.Fatalf("err type %T", err)
	}
	if perr.Offset != -1 || perr.Path != "services[1].name" {
		t.Errorf("err=%+v", *perr)
	}
	if !strings.Contains(err.Error(), "services[1].name") {
		t.Errorf("rendering %q lost the path", err.Error())
	}
}

func TestValidateUngrantedConfidentialityTag(t *testing.T) {
	p := Policy{Services: []ServiceSpec{
		{Name: "wiki", Privilege: []string{"tw"}, Confidentiality: []string{"tw", "torphan"}},
	}}
	err := p.Validate()
	if err == nil {
		t.Fatal("ungranted tag accepted")
	}
	if !strings.Contains(err.Error(), "torphan") {
		t.Errorf("error %q does not name the tag", err.Error())
	}
}

func TestLintUnknownClassAndExtends(t *testing.T) {
	doc := `{"classes":[{"name":"a","extends":["ghost"],"privilege":["t"],"confidentiality":["t"]}],"services":[{"name":"s","class":"phantom","privilege":["t"],"confidentiality":["t"]}]}`
	diags := Lint([]byte(doc))
	if !hasRule(t, diags, "unknown-class") {
		t.Errorf("missing unknown-class: %v", diags)
	}
	n := 0
	for _, d := range diags {
		if d.Rule == "unknown-class" {
			n++
		}
	}
	if n != 2 {
		t.Errorf("unknown-class count=%d want 2 (extends + service class)", n)
	}
}

func TestLintInheritedContradiction(t *testing.T) {
	// The contradiction is only visible after class resolution: the class
	// grants the tag, the service distrusts it.
	doc := `{"classes":[{"name":"c","privilege":["t"],"confidentiality":["t"]}],"services":[{"name":"s","class":"c","untrusted":["t"]}]}`
	diags := Lint([]byte(doc))
	if !hasRule(t, diags, "contradiction") {
		t.Errorf("missing contradiction: %v", diags)
	}
}

func TestLintPropagatedFailOpen(t *testing.T) {
	// The hole is only visible after propagation: "ti implies tc" makes tc
	// assigned, so granting tc reaches sink with no confidentiality label.
	doc := `{"services":[
	  {"name":"itool","privilege":["ti","tc"],"confidentiality":["ti"]},
	  {"name":"sink","privilege":["tc"]}
	],"propagation":[{"tag":"ti","implies":["tc"]}]}`
	diags := Lint([]byte(doc))
	if !hasRule(t, diags, "fail-open") {
		t.Errorf("missing fail-open: %v", diags)
	}
}
