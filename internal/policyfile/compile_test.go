package policyfile

import (
	"reflect"
	"sort"
	"testing"

	"github.com/lsds/browserflow/internal/tdm"
)

func compileFixture(t *testing.T, name string) *Compiled {
	t.Helper()
	p, err := ParseBytes(readFixture(t, name))
	if err != nil {
		t.Fatal(err)
	}
	c, err := Compile(p)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestCompileResolvesClassesAndPropagation(t *testing.T) {
	c := compileFixture(t, "enterprise-classes.json")

	byName := make(map[string]ResolvedService, len(c.Services))
	for _, rs := range c.Services {
		byName[rs.Name] = rs
	}
	hr := byName["hr-portal"]
	// pii-handler extends base-internal: corp+pii on both labels, and
	// "pii implies corp" is already satisfied.
	if got, want := hr.Privilege, []tdm.Tag{"corp", "pii"}; !reflect.DeepEqual(got, want) {
		t.Errorf("hr-portal priv=%v want %v", got, want)
	}
	if got, want := hr.Confidentiality, []tdm.Tag{"corp", "pii"}; !reflect.DeepEqual(got, want) {
		t.Errorf("hr-portal conf=%v want %v", got, want)
	}
	wiki := byName["wiki"]
	if got, want := wiki.Privilege, []tdm.Tag{"corp", "wiki"}; !reflect.DeepEqual(got, want) {
		t.Errorf("wiki priv=%v want %v", got, want)
	}
	crm := byName["crm"]
	if got, want := crm.Untrusted, []tdm.Tag{"pii"}; !reflect.DeepEqual(got, want) {
		t.Errorf("crm untrusted=%v want %v", got, want)
	}
	if len(byName["public-blog"].Privilege) != 0 {
		t.Errorf("public-blog priv=%v", byName["public-blog"].Privilege)
	}

	// Services and the tag universe are sorted for determinism.
	if !sort.SliceIsSorted(c.Services, func(i, j int) bool { return c.Services[i].Name < c.Services[j].Name }) {
		t.Error("services not sorted")
	}
	if !sort.SliceIsSorted(c.Table.Tags, func(i, j int) bool { return c.Table.Tags[i] < c.Table.Tags[j] }) {
		t.Errorf("tag universe not sorted: %v", c.Table.Tags)
	}
	if got, want := c.Transforms["redact-pii"], []tdm.Tag{"pii"}; !reflect.DeepEqual(got, want) {
		t.Errorf("transforms=%v want %v", got, want)
	}
}

func TestCompileRefusesInvalidPolicy(t *testing.T) {
	p := Policy{Services: []ServiceSpec{{Name: "a"}, {Name: "a"}}}
	if _, err := Compile(p); err == nil {
		t.Fatal("compiled a duplicate-service policy")
	}
	if _, err := Compile(Policy{}); err == nil {
		t.Fatal("compiled an empty policy")
	}
}

func TestCompileHashDeterministicAcrossOrder(t *testing.T) {
	a := `{"services":[
	  {"name":"wiki","privilege":["tw"],"confidentiality":["tw"]},
	  {"name":"itool","privilege":["ti","tw"],"confidentiality":["ti"]}
	]}`
	b := `{"services":[
	  {"name":"itool","privilege":["tw","ti"],"confidentiality":["ti"]},
	  {"name":"wiki","privilege":["tw"],"confidentiality":["tw"]}
	]}`
	compile := func(doc string) *Compiled {
		p, err := ParseBytes([]byte(doc))
		if err != nil {
			t.Fatal(err)
		}
		c, err := Compile(p)
		if err != nil {
			t.Fatal(err)
		}
		return c
	}
	ca, cb := compile(a), compile(b)
	if ca.Hash() == "" || ca.Hash() != cb.Hash() {
		t.Errorf("hash not order-independent: %s vs %s", ca.Hash(), cb.Hash())
	}
	// A semantic change moves the hash.
	cc := compile(`{"services":[
	  {"name":"wiki","privilege":["tw"],"confidentiality":["tw"]},
	  {"name":"itool","privilege":["ti","tw"],"confidentiality":["ti"]}
	],"mode":"enforcing"}`)
	if cc.Hash() == ca.Hash() {
		t.Error("mode change did not move the hash")
	}
}

func TestCompiledTableInstalls(t *testing.T) {
	c := compileFixture(t, "seed-webapps.json")
	reg := tdm.NewRegistry(nil)
	for _, rs := range c.Services {
		if err := reg.RegisterService(rs.Name, tdm.NewTagSet(rs.Privilege...), tdm.NewTagSet(rs.Confidentiality...)); err != nil {
			t.Fatal(err)
		}
	}
	if err := reg.InstallCheckTable(c.Table); err != nil {
		t.Fatal(err)
	}
	if !reg.FastCheckEnabled() {
		t.Error("fast check not enabled")
	}

	// A drifted registry refuses the stale table.
	drifted := tdm.NewRegistry(nil)
	for _, rs := range c.Services {
		if err := drifted.RegisterService(rs.Name, tdm.NewTagSet("tother"), tdm.NewTagSet(rs.Confidentiality...)); err != nil {
			t.Fatal(err)
		}
	}
	if err := drifted.InstallCheckTable(c.Table); err == nil {
		t.Error("stale table installed")
	}
}

func TestCompileAppliesDefaults(t *testing.T) {
	p, err := ParseBytes([]byte(`{"services":[{"name":"docs"}]}`))
	if err != nil {
		t.Fatal(err)
	}
	c, err := Compile(p)
	if err != nil {
		t.Fatal(err)
	}
	if c.Source.Mode != "advisory" || c.Source.Tpar != 0.5 || c.Source.Tdoc != 0.5 {
		t.Errorf("defaults not applied: %+v", c.Source)
	}
}
