package policyfile

import (
	"errors"
	"fmt"
	"sort"
)

// Severity classifies a Diagnostic. Errors make a policy unloadable;
// warnings are lint findings a deliberately unusual policy may carry
// (tags can also enter the system as user custom tags at runtime, so an
// "unreachable" grant is suspicious rather than impossible).
type Severity int

const (
	SeverityWarning Severity = iota
	SeverityError
)

// String renders the severity the way compilers do.
func (s Severity) String() string {
	if s == SeverityError {
		return "error"
	}
	return "warning"
}

// Diagnostic is one finding from validation or lint: a rule identifier, a
// severity, and the JSON path plus byte offset of the offending element.
type Diagnostic struct {
	Rule     string // stable rule id, e.g. "contradiction", "unreachable-tag"
	Severity Severity
	Path     string // JSON path of the offending element; "" for whole-document findings
	Offset   int64  // byte offset into the source document; -1 when unknown
	Msg      string
}

// String renders the diagnostic in the positional style of Error:
// "error: services[1].untrusted[0] at byte 212: ... [contradiction]".
func (d Diagnostic) String() string {
	s := d.Severity.String() + ": "
	switch {
	case d.Offset >= 0 && d.Path != "":
		s += fmt.Sprintf("%s at byte %d: %s", d.Path, d.Offset, d.Msg)
	case d.Offset >= 0:
		s += fmt.Sprintf("at byte %d: %s", d.Offset, d.Msg)
	case d.Path != "":
		s += d.Path + ": " + d.Msg
	default:
		s += d.Msg
	}
	return s + " [" + d.Rule + "]"
}

// err converts the diagnostic to the *Error Parse and Validate return.
func (d *Diagnostic) err() *Error {
	if d == nil {
		return nil
	}
	return &Error{Path: d.Path, Offset: d.Offset, Msg: d.Msg}
}

// firstError returns the first error-severity diagnostic, or nil.
func firstError(diags []Diagnostic) *Diagnostic {
	for i := range diags {
		if diags[i].Severity == SeverityError {
			return &diags[i]
		}
	}
	return nil
}

// Lint parses the document and returns every diagnostic the analyses
// produce, including the warning-severity ones Parse ignores. A document
// that does not decode yields a single syntax diagnostic carrying the
// decoder's byte offset.
func Lint(data []byte) []Diagnostic {
	p, err := decode(data)
	if err != nil {
		var perr *Error
		if errors.As(err, &perr) {
			return []Diagnostic{{Rule: "syntax", Severity: SeverityError, Path: perr.Path, Offset: perr.Offset, Msg: perr.Msg}}
		}
		return []Diagnostic{{Rule: "syntax", Severity: SeverityError, Offset: -1, Msg: err.Error()}}
	}
	return p.diagnostics(scanOffsets(data), true)
}

// diagnostics is the single analysis pass behind Validate, Parse and Lint.
// With lintLevel false it emits only the error-severity rules (the
// structural and semantic constraints a policy must satisfy to load); with
// lintLevel true it adds the warning-severity flow analyses. idx may be
// nil for in-memory policies, in which case offsets are -1.
func (p Policy) diagnostics(idx offsetIndex, lintLevel bool) []Diagnostic {
	var out []Diagnostic
	add := func(rule string, sev Severity, path, format string, args ...any) {
		out = append(out, Diagnostic{Rule: rule, Severity: sev, Path: path, Offset: idx.at(path), Msg: fmt.Sprintf(format, args...)})
	}

	// Document-level structure.
	switch p.Mode {
	case "", "advisory", "enforcing", "encrypting":
	default:
		add("bad-mode", SeverityError, "mode", "unknown mode %q (want advisory, enforcing or encrypting)", p.Mode)
	}
	if p.Tpar < 0 || p.Tpar > 1 {
		add("bad-threshold", SeverityError, "tpar", "tpar %v outside [0,1]", p.Tpar)
	}
	if p.Tdoc < 0 || p.Tdoc > 1 {
		add("bad-threshold", SeverityError, "tdoc", "tdoc %v outside [0,1]", p.Tdoc)
	}
	for i, s := range p.Secrets {
		if s.Name == "" {
			add("bad-secret", SeverityError, elemPath("secrets", i), "secret with empty name")
		}
		if s.Value == "" {
			add("bad-secret", SeverityError, elemPath("secrets", i), "secret %q has empty value", s.Name)
		}
	}

	// Classes: naming, references, inheritance cycles.
	classSeen := make(map[string]bool, len(p.Classes))
	for i, c := range p.Classes {
		path := elemPath("classes", i)
		if c.Name == "" {
			add("empty-name", SeverityError, path, "class with empty name")
			continue
		}
		if classSeen[c.Name] {
			add("duplicate-class", SeverityError, path+".name", "duplicate class %q", c.Name)
		}
		classSeen[c.Name] = true
		for j, parent := range c.Extends {
			if _, ok := findClass(p.Classes, parent); !ok {
				add("unknown-class", SeverityError, tagPath("classes", i, "extends", j), "class %q extends unknown class %q", c.Name, parent)
			}
		}
	}

	res := newResolver(p)
	for i, c := range p.Classes {
		if res.cycles[c.Name] {
			add("inheritance-cycle", SeverityError, elemPath("classes", i)+".extends", "class %q participates in an extends cycle", c.Name)
		}
	}

	// Propagation and transform structure.
	for i, rule := range p.Propagation {
		if rule.Tag == "" {
			add("bad-propagation", SeverityError, elemPath("propagation", i), "propagation rule with empty tag")
		}
		if len(rule.Implies) == 0 {
			add("bad-propagation", SeverityError, elemPath("propagation", i), "propagation rule for %q implies nothing", rule.Tag)
		}
		for j, t := range rule.Implies {
			if t == "" {
				add("bad-propagation", SeverityError, tagPath("propagation", i, "implies", j), "propagation rule for %q implies an empty tag", rule.Tag)
			}
		}
	}
	transformSeen := make(map[string]bool, len(p.Transforms))
	for i, tr := range p.Transforms {
		path := elemPath("transforms", i)
		if tr.Name == "" {
			add("bad-transform", SeverityError, path, "transform with empty name")
		} else if transformSeen[tr.Name] {
			add("bad-transform", SeverityError, path+".name", "duplicate transform %q", tr.Name)
		}
		transformSeen[tr.Name] = true
		if len(tr.Suppresses) == 0 {
			add("bad-transform", SeverityError, path, "transform %q suppresses nothing", tr.Name)
		}
	}

	// Services: naming, class references, contradictions.
	if len(p.Services) == 0 {
		add("no-services", SeverityError, "services", "no services defined")
	}
	svcSeen := make(map[string]bool, len(p.Services))
	resolved := make([]struct{ priv, conf, untrusted stringSet }, len(p.Services))
	for i, s := range p.Services {
		path := elemPath("services", i)
		if s.Name == "" {
			add("empty-name", SeverityError, path, "service with empty name")
		} else if svcSeen[s.Name] {
			add("duplicate-service", SeverityError, path+".name", "duplicate service %q", s.Name)
		}
		svcSeen[s.Name] = true
		if s.Class != "" && !classSeen[s.Class] {
			add("unknown-class", SeverityError, path+".class", "service %q references unknown class %q", s.Name, s.Class)
		}
		priv, conf, untrusted := res.service(s)
		resolved[i].priv, resolved[i].conf, resolved[i].untrusted = priv, conf, untrusted
		var contra []string
		for t := range priv {
			if untrusted[t] {
				contra = append(contra, t)
			}
		}
		sort.Strings(contra)
		for _, t := range contra {
			cpath := path
			for j, raw := range s.Untrusted {
				if raw == t {
					cpath = tagPath("services", i, "untrusted", j)
					break
				}
			}
			add("contradiction", SeverityError, cpath, "tag %q is both privileged and untrusted for service %q", t, s.Name)
		}
	}

	// Cross-service tag flow: every confidentiality tag must be granted
	// somewhere, or no service could ever receive the data it marks and the
	// rule is dead weight hiding a typo.
	allPriv := stringSet{}
	allConf := stringSet{}
	for i := range resolved {
		for t := range resolved[i].priv {
			allPriv[t] = true
		}
		for t := range resolved[i].conf {
			allConf[t] = true
		}
	}
	privOcc, confOcc := p.tagOccurrences()
	var ungranted []string
	for t := range allConf {
		if !allPriv[t] {
			ungranted = append(ungranted, t)
		}
	}
	sort.Strings(ungranted)
	for _, t := range ungranted {
		add("ungranted-tag", SeverityError, confOcc[t], "confidentiality tag %q is granted to no service", t)
	}

	if !lintLevel {
		return out
	}

	// Lint-only flow analyses.
	var unreachable []string
	for t := range allPriv {
		if !allConf[t] {
			unreachable = append(unreachable, t)
		}
	}
	sort.Strings(unreachable)
	for _, t := range unreachable {
		add("unreachable-tag", SeverityWarning, privOcc[t], "tag %q is granted to services but assigned by no confidentiality label", t)
	}
	for i, s := range p.Services {
		if len(resolved[i].conf) != 0 {
			continue
		}
		reachable := false
		for t := range resolved[i].priv {
			if allConf[t] {
				reachable = true
				break
			}
		}
		if reachable {
			add("fail-open", SeverityWarning, elemPath("services", i), "service %q receives tagged flows but assigns no confidentiality label: content authored there leaks untracked", s.Name)
		}
	}
	return out
}

// tagOccurrences indexes the first raw occurrence of every tag in
// privilege position and in confidentiality position, so flow diagnostics
// can point at the byte where the tag was written.
func (p Policy) tagOccurrences() (privOcc, confOcc map[string]string) {
	privOcc = make(map[string]string)
	confOcc = make(map[string]string)
	record := func(m map[string]string, tag, path string) {
		if _, ok := m[tag]; !ok {
			m[tag] = path
		}
	}
	for i, s := range p.Services {
		for j, t := range s.Privilege {
			record(privOcc, t, tagPath("services", i, "privilege", j))
		}
		for j, t := range s.Confidentiality {
			record(confOcc, t, tagPath("services", i, "confidentiality", j))
		}
	}
	for i, c := range p.Classes {
		for j, t := range c.Privilege {
			record(privOcc, t, tagPath("classes", i, "privilege", j))
		}
		for j, t := range c.Confidentiality {
			record(confOcc, t, tagPath("classes", i, "confidentiality", j))
		}
	}
	for i, rule := range p.Propagation {
		for j, t := range rule.Implies {
			record(confOcc, t, tagPath("propagation", i, "implies", j))
		}
	}
	return privOcc, confOcc
}

// findClass finds a class spec by name.
func findClass(classes []ClassSpec, name string) (ClassSpec, bool) {
	for _, c := range classes {
		if c.Name == name {
			return c, true
		}
	}
	return ClassSpec{}, false
}
