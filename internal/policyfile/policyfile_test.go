package policyfile

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/lsds/browserflow/internal/policy"
)

const validPolicy = `{
  "services": [
    {"name": "itool", "privilege": ["ti"], "confidentiality": ["ti"]},
    {"name": "wiki",  "privilege": ["tw"], "confidentiality": ["tw"]},
    {"name": "docs"}
  ],
  "mode": "enforcing",
  "tpar": 0.4,
  "secrets": [{"name": "db", "value": "hunter22"}]
}`

func TestParseValid(t *testing.T) {
	p, err := Parse(strings.NewReader(validPolicy))
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Services) != 3 {
		t.Errorf("services=%d", len(p.Services))
	}
	if p.Mode != "enforcing" || p.PolicyMode() != policy.ModeEnforcing {
		t.Errorf("mode=%q", p.Mode)
	}
	if p.Tpar != 0.4 {
		t.Errorf("tpar=%v", p.Tpar)
	}
	// Defaults applied.
	if p.Tdoc != 0.5 {
		t.Errorf("tdoc default=%v", p.Tdoc)
	}
	if len(p.Secrets) != 1 || p.Secrets[0].Name != "db" {
		t.Errorf("secrets=%+v", p.Secrets)
	}
}

func TestParseDefaults(t *testing.T) {
	p, err := Parse(strings.NewReader(`{"services":[{"name":"docs"}]}`))
	if err != nil {
		t.Fatal(err)
	}
	if p.Mode != "advisory" || p.Tpar != 0.5 || p.Tdoc != 0.5 {
		t.Errorf("defaults: %+v", p)
	}
	if p.PolicyMode() != policy.ModeAdvisory {
		t.Error("default mode should be advisory")
	}
}

func TestParseErrors(t *testing.T) {
	tests := []struct {
		name string
		give string
	}{
		{name: "malformed", give: `{`},
		{name: "no services", give: `{"services":[]}`},
		{name: "empty name", give: `{"services":[{"name":""}]}`},
		{name: "duplicate", give: `{"services":[{"name":"a"},{"name":"a"}]}`},
		{name: "bad mode", give: `{"services":[{"name":"a"}],"mode":"yolo"}`},
		{name: "bad tpar", give: `{"services":[{"name":"a"}],"tpar":2}`},
		{name: "bad tdoc", give: `{"services":[{"name":"a"}],"tdoc":-1}`},
		{name: "secret missing value", give: `{"services":[{"name":"a"}],"secrets":[{"name":"x"}]}`},
		{name: "unknown field", give: `{"services":[{"name":"a"}],"bogus":1}`},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := Parse(strings.NewReader(tt.give)); err == nil {
				t.Errorf("accepted: %s", tt.give)
			}
		})
	}
}

func TestLoadFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "policy.json")
	if err := os.WriteFile(path, []byte(validPolicy), 0o600); err != nil {
		t.Fatal(err)
	}
	p, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Services) != 3 {
		t.Errorf("services=%d", len(p.Services))
	}
	if _, err := Load(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Error("missing file accepted")
	}
}

func TestWriteRoundTrip(t *testing.T) {
	p, err := Parse(strings.NewReader(validPolicy))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := p.Write(&buf); err != nil {
		t.Fatal(err)
	}
	p2, err := Parse(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(p2.Services) != len(p.Services) || p2.Mode != p.Mode || p2.Tpar != p.Tpar {
		t.Errorf("round trip mismatch: %+v vs %+v", p2, p)
	}
}

func TestPolicyModeMapping(t *testing.T) {
	for mode, want := range map[string]policy.Mode{
		"advisory":   policy.ModeAdvisory,
		"enforcing":  policy.ModeEnforcing,
		"encrypting": policy.ModeEncrypting,
		"":           policy.ModeAdvisory,
	} {
		p := Policy{Mode: mode}
		if got := p.PolicyMode(); got != want {
			t.Errorf("mode %q -> %v, want %v", mode, got, want)
		}
	}
}
