//go:build !unix

package wal

import "errors"

// Map implements MapFS on platforms without a usable mmap by reporting
// the capability unavailable; MapFile then degrades to ReadFile.
func (OSFS) Map(name string) ([]byte, func() error, error) {
	return nil, nil, errors.New("wal: memory mapping unsupported on this platform")
}
