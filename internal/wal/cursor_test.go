package wal

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"testing"
	"time"
)

func openTestLog(t *testing.T, dir string, opts Options) *Log {
	t.Helper()
	opts.Dir = dir
	if opts.Policy == 0 {
		opts.Policy = SyncNone
	}
	l, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { l.Close() })
	return l
}

func appendN(t *testing.T, l *Log, start, n int) {
	t.Helper()
	for i := start; i < start+n; i++ {
		if err := l.Append(Record{Type: 1, Data: []byte(fmt.Sprintf("record-%04d", i))}); err != nil {
			t.Fatal(err)
		}
	}
}

func TestPosStringParseRoundTrip(t *testing.T) {
	for _, p := range []Pos{{}, {Segment: 1, Offset: 17}, {Segment: 1 << 40, Offset: 123456789}} {
		got, err := ParsePos(p.String())
		if err != nil {
			t.Fatalf("ParsePos(%q): %v", p.String(), err)
		}
		if got != p {
			t.Errorf("round trip %v -> %q -> %v", p, p.String(), got)
		}
	}
	for _, bad := range []string{"", "1", "1,", "x,y", "1,-5"} {
		if _, err := ParsePos(bad); err == nil {
			t.Errorf("ParsePos(%q) succeeded, want error", bad)
		}
	}
	if !(Pos{Segment: 1, Offset: 99}).Less(Pos{Segment: 2, Offset: 17}) {
		t.Error("segment ordering broken")
	}
	if !(Pos{Segment: 2, Offset: 17}).Less(Pos{Segment: 2, Offset: 18}) {
		t.Error("offset ordering broken")
	}
}

// ReadFrom must hand back the exact bytes on disk so a mirroring consumer
// stays byte-identical: reading the whole log via the cursor and decoding
// the frames must match Replay, and the raw bytes must match the segment
// files themselves.
func TestReadFromMatchesDiskBytes(t *testing.T) {
	dir := t.TempDir()
	l := openTestLog(t, dir, Options{SegmentBytes: 256}) // force several rotations
	appendN(t, l, 0, 50)

	var (
		streamed []Record
		perSeg   = map[uint64]*bytes.Buffer{}
	)
	pos := Pos{}
	for {
		frames, n, start, next, err := l.ReadFrom(pos, 100) // small reads: exercise chunking
		if err != nil {
			t.Fatal(err)
		}
		if n == 0 {
			break
		}
		recs, used := DecodeFrames(frames, 0)
		if used != len(frames) || len(recs) != n {
			t.Fatalf("DecodeFrames used %d of %d bytes, %d of %d records", used, len(frames), len(recs), n)
		}
		streamed = append(streamed, recs...)
		buf := perSeg[start.Segment]
		if buf == nil {
			buf = &bytes.Buffer{}
			perSeg[start.Segment] = buf
		}
		buf.Write(frames)
		pos = next
	}
	if len(streamed) != 50 {
		t.Fatalf("streamed %d records, want 50", len(streamed))
	}

	var replayed []Record
	if err := l.Replay(0, func(seg uint64, rec Record) error {
		replayed = append(replayed, rec)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(replayed) != len(streamed) {
		t.Fatalf("replay found %d records, cursor streamed %d", len(replayed), len(streamed))
	}
	for i := range replayed {
		if replayed[i].Type != streamed[i].Type || !bytes.Equal(replayed[i].Data, streamed[i].Data) {
			t.Fatalf("record %d differs between Replay and cursor", i)
		}
	}

	// Byte-identity: header + streamed frames must equal the file bytes.
	for seg, buf := range perSeg {
		disk, err := os.ReadFile(filepath.Join(dir, SegmentName(seg)))
		if err != nil {
			t.Fatal(err)
		}
		want := append(SegmentHeader(seg), buf.Bytes()...)
		if !bytes.Equal(disk, want) {
			t.Errorf("segment %d: mirrored bytes differ from disk (%d vs %d bytes)", seg, len(want), len(disk))
		}
	}
	if pos != l.End() {
		t.Errorf("cursor stopped at %v, End() = %v", pos, l.End())
	}
}

func TestReadFromCaughtUpAndCount(t *testing.T) {
	dir := t.TempDir()
	l := openTestLog(t, dir, Options{})
	appendN(t, l, 0, 7)

	n, err := l.CountFrom(Pos{})
	if err != nil || n != 7 {
		t.Fatalf("CountFrom(zero) = %d, %v; want 7, nil", n, err)
	}
	end := l.End()
	if n, err := l.CountFrom(end); err != nil || n != 0 {
		t.Fatalf("CountFrom(end) = %d, %v; want 0, nil", n, err)
	}
	frames, cnt, _, next, err := l.ReadFrom(end, 0)
	if err != nil || cnt != 0 || len(frames) != 0 || next != end {
		t.Fatalf("ReadFrom(end) = %d bytes, %d recs, next=%v, err=%v", len(frames), cnt, next, err)
	}
}

func TestReadFromRollsOverSealedSegment(t *testing.T) {
	dir := t.TempDir()
	l := openTestLog(t, dir, Options{})
	appendN(t, l, 0, 3)
	endOfFirst := l.End()
	if _, err := l.Rotate(); err != nil {
		t.Fatal(err)
	}
	appendN(t, l, 3, 2)

	// Reading from the sealed segment's end must roll into the next one.
	frames, n, start, _, err := l.ReadFrom(endOfFirst, 0)
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Fatalf("rollover read %d records, want 2", n)
	}
	if start.Segment != endOfFirst.Segment+1 || start.Offset != HeaderSize {
		t.Fatalf("rollover start = %v, want {%d,%d}", start, endOfFirst.Segment+1, HeaderSize)
	}
	recs, _ := DecodeFrames(frames, 0)
	if string(recs[0].Data) != "record-0003" {
		t.Fatalf("rollover first record = %q", recs[0].Data)
	}
}

func TestReadFromPositionGone(t *testing.T) {
	dir := t.TempDir()
	l := openTestLog(t, dir, Options{})
	appendN(t, l, 0, 3)
	barrier, err := l.Rotate()
	if err != nil {
		t.Fatal(err)
	}
	if err := l.TruncateBefore(barrier); err != nil {
		t.Fatal(err)
	}
	// Below the truncation floor.
	if _, _, _, _, err := l.ReadFrom(Pos{Segment: 1, Offset: HeaderSize}, 0); !errors.Is(err, ErrPositionGone) {
		t.Errorf("truncated position: err = %v, want ErrPositionGone", err)
	}
	// Beyond the end (diverged reader).
	end := l.End()
	for _, ahead := range []Pos{
		{Segment: end.Segment, Offset: end.Offset + 9},
		{Segment: end.Segment + 5, Offset: HeaderSize},
	} {
		if _, _, _, _, err := l.ReadFrom(ahead, 0); !errors.Is(err, ErrPositionGone) {
			t.Errorf("ahead position %v: err = %v, want ErrPositionGone", ahead, err)
		}
	}
}

func TestWaitFromWakesOnAppend(t *testing.T) {
	dir := t.TempDir()
	l := openTestLog(t, dir, Options{})
	end := l.End()

	done := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		done <- l.WaitFrom(ctx, end)
	}()
	time.Sleep(20 * time.Millisecond) // let the waiter block
	appendN(t, l, 0, 1)
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("WaitFrom = %v, want nil after append", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("WaitFrom did not wake on append")
	}

	// Data already present: returns immediately.
	if err := l.WaitFrom(context.Background(), Pos{}); err != nil {
		t.Fatalf("WaitFrom with data available = %v", err)
	}

	// Context cancellation unblocks.
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	if err := l.WaitFrom(ctx, l.End()); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("WaitFrom after deadline = %v", err)
	}
}

func TestWaitFromWakesOnClose(t *testing.T) {
	dir := t.TempDir()
	l := openTestLog(t, dir, Options{})
	done := make(chan error, 1)
	go func() { done <- l.WaitFrom(context.Background(), l.End()) }()
	time.Sleep(20 * time.Millisecond)
	l.Close()
	select {
	case err := <-done:
		if !errors.Is(err, ErrClosed) {
			t.Fatalf("WaitFrom after Close = %v, want ErrClosed", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("WaitFrom did not wake on Close")
	}
}

// Reader must visit exactly the records Replay visits, track positions
// that ReadFrom accepts, and support resuming mid-segment.
func TestReaderMatchesReplayAndResumes(t *testing.T) {
	dir := t.TempDir()
	l := openTestLog(t, dir, Options{SegmentBytes: 256})
	appendN(t, l, 0, 40)
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}

	r, err := NewReader(OSFS{}, dir, Pos{}, 0)
	if err != nil {
		t.Fatal(err)
	}
	var (
		all  []Record
		mids []Pos
	)
	for {
		mids = append(mids, r.Pos())
		rec, err := r.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		all = append(all, rec)
	}
	if len(all) != 40 {
		t.Fatalf("reader found %d records, want 40", len(all))
	}

	// Resume from the position before record 25.
	r2, err := NewReader(OSFS{}, dir, mids[25], 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 25; i < 40; i++ {
		rec, err := r2.Next()
		if err != nil {
			t.Fatalf("resumed reader at %d: %v", i, err)
		}
		if !bytes.Equal(rec.Data, all[i].Data) {
			t.Fatalf("resumed record %d = %q, want %q", i, rec.Data, all[i].Data)
		}
	}
	if _, err := r2.Next(); err != io.EOF {
		t.Fatalf("resumed reader end = %v, want io.EOF", err)
	}
}

// OpenTail performs Open's validation without creating an append
// segment: a torn tail is truncated and End lands exactly at the last
// valid byte, so a restarting replica resumes streaming from there.
func TestOpenTailTruncatesTornTail(t *testing.T) {
	dir := t.TempDir()
	l := openTestLog(t, dir, Options{})
	appendN(t, l, 0, 5)
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	end := l.End()
	seg := end.Segment
	l.Close()

	path := filepath.Join(dir, SegmentName(seg))
	// Append garbage: a torn half-written frame.
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0xde, 0xad, 0xbe, 0xef, 0x00, 0x00}); err != nil {
		t.Fatal(err)
	}
	f.Close()

	info, err := OpenTail(OSFS{}, dir, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if info.End != end {
		t.Errorf("OpenTail End = %v, want %v", info.End, end)
	}
	if info.Records != 5 {
		t.Errorf("OpenTail Records = %d, want 5", info.Records)
	}
	if info.TornBytesTruncated != 6 {
		t.Errorf("OpenTail TornBytesTruncated = %d, want 6", info.TornBytesTruncated)
	}
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if fi.Size() != end.Offset {
		t.Errorf("segment size after OpenTail = %d, want %d", fi.Size(), end.Offset)
	}
	// And unlike Open, no fresh append segment appears.
	segs, err := ListSegments(OSFS{}, dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) != len(info.Segments) {
		t.Errorf("OpenTail created segments: %v vs %v", segs, info.Segments)
	}
}

// OpenTail on an empty or missing directory reports a zero End, telling
// the replica it must bootstrap from a snapshot.
func TestOpenTailEmpty(t *testing.T) {
	info, err := OpenTail(OSFS{}, filepath.Join(t.TempDir(), "nope"), 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !info.End.IsZero() || info.Records != 0 || len(info.Segments) != 0 {
		t.Errorf("OpenTail on missing dir = %+v, want zero", info)
	}
}

// Mid-log corruption stays fatal for OpenTail, same as Open.
func TestOpenTailMidLogCorruption(t *testing.T) {
	dir := t.TempDir()
	l := openTestLog(t, dir, Options{})
	appendN(t, l, 0, 3)
	first := l.End().Segment
	if _, err := l.Rotate(); err != nil {
		t.Fatal(err)
	}
	appendN(t, l, 3, 3)
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	l.Close()

	// Flip a byte in the middle of the first (now older) segment.
	path := filepath.Join(dir, SegmentName(first))
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[HeaderSize+10] ^= 0xff
	if err := os.WriteFile(path, data, 0o600); err != nil {
		t.Fatal(err)
	}
	var corrupt *CorruptError
	if _, err := OpenTail(OSFS{}, dir, 0, nil); !errors.As(err, &corrupt) {
		t.Fatalf("OpenTail over mid-log corruption = %v, want *CorruptError", err)
	}
}
