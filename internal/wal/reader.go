package wal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"path/filepath"
)

// TailInfo describes a validated log directory that was opened for
// reading only — no fresh append segment is created, so the directory's
// bytes are exactly what a byte-mirroring consumer (a replica) has
// accumulated.
type TailInfo struct {
	// Segments are the live segment indexes, ascending.
	Segments []uint64

	// End is the position one past the last valid record — where the
	// next mirrored byte belongs. Zero when the directory holds no
	// segments.
	End Pos

	// Records is the number of valid records across all segments.
	Records int64

	// TornBytesTruncated is how many trailing bytes the torn-tail scan
	// discarded from the newest segment.
	TornBytesTruncated int64
}

// OpenTail validates dir with Open's exact recovery semantics — strict
// mid-log corruption checks, torn-tail truncation (or removal) of the
// newest segment — but does not open the log for appending. Replicas use
// it after a restart to find the position their mirrored copy of the
// primary's log ends at, so they can resume the replication stream
// without re-bootstrapping. maxRecord <= 0 means DefaultMaxRecordBytes;
// logf may be nil.
func OpenTail(fs FS, dir string, maxRecord int, logf func(string, ...interface{})) (TailInfo, error) {
	if fs == nil {
		fs = OSFS{}
	}
	if maxRecord <= 0 {
		maxRecord = DefaultMaxRecordBytes
	}
	if logf == nil {
		logf = func(string, ...interface{}) {}
	}
	var info TailInfo
	segs, err := ListSegments(fs, dir)
	if err != nil {
		return info, err
	}
	for i, idx := range segs {
		path := filepath.Join(dir, SegmentName(idx))
		data, err := fs.ReadFile(path)
		if err != nil {
			return info, fmt.Errorf("wal: read %s: %w", path, err)
		}
		recs, validLen, scanErr := scanSegment(data, idx, maxRecord)
		last := i == len(segs)-1
		if scanErr != nil && !last {
			return info, &CorruptError{Path: path, Offset: int64(validLen), Reason: scanErr.Error()}
		}
		end := int64(len(data))
		if scanErr != nil {
			if validLen < headerSize {
				logf("wal: removing torn segment %s (%s)", path, scanErr)
				info.TornBytesTruncated += int64(len(data))
				if err := fs.Remove(path); err != nil {
					return info, fmt.Errorf("wal: remove torn segment: %w", err)
				}
				continue
			}
			logf("wal: truncating torn tail of %s at byte %d (%s)", path, validLen, scanErr)
			info.TornBytesTruncated += int64(len(data) - validLen)
			if err := fs.Truncate(path, int64(validLen)); err != nil {
				return info, fmt.Errorf("wal: truncate torn tail: %w", err)
			}
			end = int64(validLen)
		}
		info.Segments = append(info.Segments, idx)
		info.Records += int64(len(recs))
		info.End = Pos{Segment: idx, Offset: end}
	}
	return info, nil
}

// Reader iterates the records of a log directory from a starting
// position, loading one segment image at a time. It is a read-only,
// FS-level view: it takes no locks and sees whatever bytes are on disk
// when each segment is loaded. Replication and recovery use it so that
// segment-walk logic lives in one place.
type Reader struct {
	fs        FS
	dir       string
	maxRecord int
	segs      []uint64 // remaining segments to visit (current not included)
	data      []byte   // loaded segment image (nil before first load)
	seg       uint64   // index of the loaded segment
	off       int      // next frame offset within data
	loaded    bool
}

// NewReader positions a Reader at from within dir. A zero from starts at
// the oldest segment. If from.Segment no longer exists (truncated below a
// checkpoint), iteration starts at the first live segment above it.
// maxRecord <= 0 means DefaultMaxRecordBytes.
func NewReader(fs FS, dir string, from Pos, maxRecord int) (*Reader, error) {
	if fs == nil {
		fs = OSFS{}
	}
	if maxRecord <= 0 {
		maxRecord = DefaultMaxRecordBytes
	}
	segs, err := ListSegments(fs, dir)
	if err != nil {
		return nil, err
	}
	r := &Reader{fs: fs, dir: dir, maxRecord: maxRecord}
	for i, idx := range segs {
		if idx >= from.Segment {
			r.segs = segs[i:]
			break
		}
	}
	if len(r.segs) > 0 && r.segs[0] == from.Segment && from.Offset > headerSize {
		// Resume mid-segment.
		if err := r.load(r.segs[0], int(from.Offset)); err != nil {
			return nil, err
		}
		r.segs = r.segs[1:]
	}
	return r, nil
}

// load reads segment idx and validates its header, positioning the scan
// at off.
func (r *Reader) load(idx uint64, off int) error {
	path := filepath.Join(r.dir, SegmentName(idx))
	data, err := r.fs.ReadFile(path)
	if err != nil {
		return fmt.Errorf("wal: read %s: %w", path, err)
	}
	if len(data) < headerSize {
		return &CorruptError{Path: path, Offset: 0, Reason: fmt.Sprintf("short header: %d bytes", len(data))}
	}
	if _, _, scanErr := scanSegment(data[:headerSize], idx, r.maxRecord); scanErr != nil {
		return &CorruptError{Path: path, Offset: 0, Reason: scanErr.Error()}
	}
	if off < headerSize {
		off = headerSize
	}
	if off > len(data) {
		return &CorruptError{Path: path, Offset: int64(len(data)), Reason: fmt.Sprintf("start offset %d beyond segment end", off)}
	}
	r.data, r.seg, r.off, r.loaded = data, idx, off, true
	return nil
}

// Next returns the next record, or io.EOF at the end of the log. A
// malformed frame in the newest segment is treated as the end (torn
// tail); in any older segment it is a *CorruptError.
func (r *Reader) Next() (Record, error) {
	for {
		if !r.loaded {
			if len(r.segs) == 0 {
				return Record{}, io.EOF
			}
			idx := r.segs[0]
			r.segs = r.segs[1:]
			if err := r.load(idx, headerSize); err != nil {
				if len(r.segs) == 0 {
					if _, corrupt := err.(*CorruptError); corrupt {
						return Record{}, io.EOF // torn newest segment
					}
				}
				return Record{}, err
			}
		}
		if r.off >= len(r.data) {
			r.loaded = false
			continue
		}
		recs, span, scanErr := scanFrameAt(r.data, r.off, r.maxRecord)
		if scanErr != nil {
			if len(r.segs) == 0 {
				return Record{}, io.EOF // torn tail of the newest segment
			}
			path := filepath.Join(r.dir, SegmentName(r.seg))
			return Record{}, &CorruptError{Path: path, Offset: int64(r.off), Reason: scanErr.Error()}
		}
		r.off += span
		return recs, nil
	}
}

// Pos returns the position of the next record Next would return (or the
// end of the last visited segment at EOF).
func (r *Reader) Pos() Pos {
	if !r.loaded {
		if len(r.segs) > 0 {
			return Pos{Segment: r.segs[0], Offset: headerSize}
		}
		return Pos{Segment: r.seg, Offset: int64(r.off)}
	}
	return Pos{Segment: r.seg, Offset: int64(r.off)}
}

// scanFrameAt decodes the single frame at data[off:].
func scanFrameAt(data []byte, off, maxRecord int) (Record, int, error) {
	rest := data[off:]
	if len(rest) < frameOverhead {
		return Record{}, 0, fmt.Errorf("truncated frame header (%d bytes)", len(rest))
	}
	wantCRC := binary.BigEndian.Uint32(rest[0:4])
	length := binary.BigEndian.Uint32(rest[4:8])
	if int64(length) > int64(maxRecord) {
		return Record{}, 0, fmt.Errorf("frame length %d exceeds limit %d", length, maxRecord)
	}
	total := frameOverhead + int(length)
	if len(rest) < total {
		return Record{}, 0, fmt.Errorf("truncated frame: have %d of %d bytes", len(rest), total)
	}
	if crc32.Checksum(rest[4:total], castagnoli) != wantCRC {
		return Record{}, 0, fmt.Errorf("frame CRC mismatch")
	}
	rec := Record{
		Type: rest[8],
		Data: append([]byte(nil), rest[frameOverhead:total]...),
	}
	return rec, total, nil
}
