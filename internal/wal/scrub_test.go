package wal

import (
	"errors"
	"os"
	"path/filepath"
	"testing"
)

// buildSealedLog appends records across several segments and returns the
// sealed segment indexes (ascending) after closing the log.
func buildSealedLog(t *testing.T, dir string, segments, perSeg int) []uint64 {
	t.Helper()
	l, err := Open(Options{Dir: dir, Policy: SyncAlways, SegmentBytes: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	var sealed []uint64
	for s := 0; s < segments; s++ {
		for r := 0; r < perSeg; r++ {
			if err := l.Append(Record{Type: 1, Data: []byte{byte(s), byte(r), 0xaa}}); err != nil {
				t.Fatal(err)
			}
		}
		sealed = append(sealed, l.CurrentSegment())
		if _, err := l.Rotate(); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	return sealed
}

// flipByte corrupts one byte inside a record frame of segment idx.
func flipByte(t *testing.T, dir string, idx uint64, off int64) {
	t.Helper()
	path := filepath.Join(dir, SegmentName(idx))
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	buf := []byte{0}
	if _, err := f.ReadAt(buf, off); err != nil {
		t.Fatal(err)
	}
	buf[0] ^= 0x41
	if _, err := f.WriteAt(buf, off); err != nil {
		t.Fatal(err)
	}
}

func TestVerifySegmentFile(t *testing.T) {
	dir := t.TempDir()
	sealed := buildSealedLog(t, dir, 2, 5)

	recs, _, err := VerifySegmentFile(nil, dir, sealed[0], 0)
	if err != nil {
		t.Fatalf("valid segment failed verification: %v", err)
	}
	if recs != 5 {
		t.Fatalf("verified %d records, want 5", recs)
	}

	flipByte(t, dir, sealed[0], headerSize+frameOverhead+1)
	_, _, err = VerifySegmentFile(nil, dir, sealed[0], 0)
	var ce *CorruptError
	if !errors.As(err, &ce) {
		t.Fatalf("corrupted segment verified clean (err=%v)", err)
	}
	if ce.Offset != headerSize {
		t.Fatalf("corruption reported at byte %d, want %d (frame start)", ce.Offset, headerSize)
	}
}

func TestOpenQuarantinesCorruptSealedSegment(t *testing.T) {
	dir := t.TempDir()
	sealed := buildSealedLog(t, dir, 3, 4)
	flipByte(t, dir, sealed[1], headerSize+5)

	// Strict mode still refuses.
	if _, err := Open(Options{Dir: dir}); err == nil {
		t.Fatal("strict Open accepted mid-log corruption")
	} else {
		var ce *CorruptError
		if !errors.As(err, &ce) {
			t.Fatalf("strict Open error = %v, want *CorruptError", err)
		}
	}

	l, err := Open(Options{Dir: dir, QuarantineCorrupt: true})
	if err != nil {
		t.Fatalf("quarantining Open failed: %v", err)
	}
	defer l.Close()
	st := l.Stats()
	if st.QuarantinedSegments != 1 {
		t.Fatalf("QuarantinedSegments = %d, want 1", st.QuarantinedSegments)
	}
	if st.RecoveryGaps != 1 {
		t.Fatalf("RecoveryGaps = %d, want 1", st.RecoveryGaps)
	}
	// Recovered records exclude the quarantined segment (4 per segment,
	// one of three sealed segments gone).
	if st.RecoveredRecords != 8 {
		t.Fatalf("RecoveredRecords = %d, want 8", st.RecoveredRecords)
	}
	qpath := filepath.Join(dir, SegmentName(sealed[1])+QuarantineSuffix)
	if _, err := os.Stat(qpath); err != nil {
		t.Fatalf("quarantine file missing: %v", err)
	}
	if _, err := os.Stat(filepath.Join(dir, SegmentName(sealed[1]))); !os.IsNotExist(err) {
		t.Fatalf("corrupt segment still present under its original name (err=%v)", err)
	}
	if got := CountQuarantined(nil, dir); got != 1 {
		t.Fatalf("CountQuarantined = %d, want 1", got)
	}

	// Replay sees only the surviving segments, in order, no error.
	var seen []uint64
	if err := l.Replay(0, func(seg uint64, rec Record) error {
		seen = append(seen, seg)
		return nil
	}); err != nil {
		t.Fatalf("replay over the gap failed: %v", err)
	}
	if len(seen) != 8 {
		t.Fatalf("replayed %d records, want 8", len(seen))
	}
	for _, seg := range seen {
		if seg == sealed[1] {
			t.Fatal("replay surfaced a record from the quarantined segment")
		}
	}

	// A second restart over the gap is clean (the quarantined name no
	// longer parses as a segment) and still reports the gap.
	l.Close()
	l2, err := Open(Options{Dir: dir, QuarantineCorrupt: true})
	if err != nil {
		t.Fatalf("restart over quarantine gap failed: %v", err)
	}
	defer l2.Close()
	if st := l2.Stats(); st.RecoveryGaps == 0 {
		t.Fatal("restart did not report the recovery gap")
	}
}

func TestLogQuarantineLiveSegment(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(Options{Dir: dir, Policy: SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if err := l.Append(Record{Type: 1, Data: []byte("one")}); err != nil {
		t.Fatal(err)
	}
	sealedIdx := l.CurrentSegment()
	if _, err := l.Rotate(); err != nil {
		t.Fatal(err)
	}

	if err := l.Quarantine(l.CurrentSegment()); err == nil {
		t.Fatal("quarantining the active segment succeeded")
	}
	if err := l.Quarantine(sealedIdx + 100); err == nil {
		t.Fatal("quarantining an unknown segment succeeded")
	}

	if err := l.Quarantine(sealedIdx); err != nil {
		t.Fatalf("quarantining sealed segment: %v", err)
	}
	if got := l.Stats().QuarantinedSegments; got != 1 {
		t.Fatalf("QuarantinedSegments = %d, want 1", got)
	}
	for _, s := range l.SealedSegments() {
		if s == sealedIdx {
			t.Fatal("quarantined segment still listed as sealed")
		}
	}
	if _, err := os.Stat(filepath.Join(dir, SegmentName(sealedIdx)+QuarantineSuffix)); err != nil {
		t.Fatalf("quarantine file missing: %v", err)
	}
	if err := l.Quarantine(sealedIdx); err == nil {
		t.Fatal("double quarantine succeeded")
	}
}
