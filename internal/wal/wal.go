// Package wal implements the append-only write-ahead log behind
// BrowserFlow's crash-safe durability: every state mutation accepted by the
// shared tag service is journalled here before (or, for relaxed fsync
// policies, shortly after) the client is acknowledged, so that a crash
// loses at most the un-synced suffix of the log — never a previously
// synced observation, suppression or audit record.
//
// # On-disk format
//
// The log is a directory of segment files named wal-%016x.log. Each
// segment starts with a 17-byte header:
//
//	offset  size  field
//	0       8     magic "BFWALSEG"
//	8       1     format version (1)
//	9       8     segment index, big-endian
//
// followed by length-prefixed, CRC-framed records:
//
//	offset  size  field
//	0       4     CRC32C (Castagnoli) over bytes 4..end of frame
//	4       4     payload length, big-endian
//	8       1     record type (application-defined)
//	9       n     payload
//
// # Recovery semantics
//
// Open scans every segment. A bad frame in the *newest* segment is a torn
// tail — the expected signature of a crash mid-write — and the segment is
// truncated at the first bad byte. A bad frame (or bad header) in any
// older segment is mid-log corruption: Open fails with *CorruptError
// rather than silently dropping interior records, because replaying around
// a hole would resurrect a state the log never contained. Appends always
// go to a fresh segment, so a recovered (truncated) tail is never written
// to again.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"github.com/lsds/browserflow/internal/metrics"
)

// Segment header constants.
const (
	segMagic      = "BFWALSEG"
	formatVersion = 1
	headerSize    = 8 + 1 + 8
	frameOverhead = 4 + 4 + 1
)

// DefaultSegmentBytes is the rotation threshold used when Options leaves
// SegmentBytes zero.
const DefaultSegmentBytes = 4 << 20

// DefaultMaxRecordBytes bounds a single record payload; longer lengths in
// a frame header are treated as corruption.
const DefaultMaxRecordBytes = 16 << 20

// DefaultSyncInterval is the group-commit cadence of SyncInterval when
// Options leaves Interval zero.
const DefaultSyncInterval = 50 * time.Millisecond

// castagnoli is the CRC32C table (the polynomial used by ext4, iSCSI and
// most storage formats; hardware-accelerated on amd64/arm64).
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// ErrClosed reports an operation on a closed log.
var ErrClosed = errors.New("wal: log is closed")

// SyncPolicy selects when appended records are fsynced.
type SyncPolicy int

const (
	// SyncAlways fsyncs on every Append before it returns: an
	// acknowledged record survives kill -9 and power loss.
	SyncAlways SyncPolicy = iota + 1

	// SyncInterval batches fsyncs on a timer (group commit): Append
	// returns after the OS write; a crash loses at most one interval of
	// acknowledged records.
	SyncInterval

	// SyncNone never fsyncs (the OS flushes at its leisure): fastest, and
	// a crash may lose everything since the last OS writeback.
	SyncNone
)

// String implements fmt.Stringer.
func (p SyncPolicy) String() string {
	switch p {
	case SyncAlways:
		return "always"
	case SyncInterval:
		return "interval"
	case SyncNone:
		return "none"
	default:
		return fmt.Sprintf("syncpolicy(%d)", int(p))
	}
}

// ParseSyncPolicy converts a -fsync flag value to a SyncPolicy.
func ParseSyncPolicy(s string) (SyncPolicy, error) {
	switch s {
	case "always":
		return SyncAlways, nil
	case "interval":
		return SyncInterval, nil
	case "none":
		return SyncNone, nil
	default:
		return 0, fmt.Errorf("wal: unknown fsync policy %q (want always, interval or none)", s)
	}
}

// Record is one journalled entry: an application-defined type byte and an
// opaque payload.
type Record struct {
	Type byte
	Data []byte
}

// CorruptError reports mid-log corruption that recovery must not paper
// over.
type CorruptError struct {
	Path   string
	Offset int64
	Reason string
}

// Error implements error.
func (e *CorruptError) Error() string {
	return fmt.Sprintf("wal: %s corrupt at byte %d: %s", e.Path, e.Offset, e.Reason)
}

// Options configures Open.
type Options struct {
	// Dir is the log directory (created if missing).
	Dir string

	// FS is the filesystem to write through; nil means OSFS.
	FS FS

	// Policy selects the fsync policy; zero means SyncAlways.
	Policy SyncPolicy

	// Interval is the group-commit cadence for SyncInterval (default
	// DefaultSyncInterval).
	Interval time.Duration

	// SegmentBytes rotates to a new segment past this size (default
	// DefaultSegmentBytes).
	SegmentBytes int64

	// MinSegment is the lowest index the fresh append segment may take.
	// Recovery passes checkpointBarrier+1 so that new appends can never
	// land below an installed checkpoint's epoch — even when every
	// segment file was lost in a crash (possible under SyncNone, whose
	// directory entries are never fsynced).
	MinSegment uint64

	// MaxRecordBytes bounds one record payload (default
	// DefaultMaxRecordBytes).
	MaxRecordBytes int

	// QuarantineCorrupt changes how Open treats mid-log corruption in a
	// sealed (non-newest) segment: instead of refusing to start, the
	// corrupt segment is renamed aside with QuarantineSuffix and recovery
	// resumes from the next valid segment boundary, reporting the gap in
	// Stats. The default (false) keeps the strict fail-fast behaviour;
	// store.Durable opts in because its recovery can re-cover the gap
	// from the newest checkpoint and the anti-entropy digests catch any
	// replica the gap diverged.
	QuarantineCorrupt bool

	// Logf, when set, receives recovery notes (torn tails truncated,
	// segments removed).
	Logf func(format string, args ...interface{})
}

func (o *Options) withDefaults() Options {
	opts := *o
	if opts.FS == nil {
		opts.FS = OSFS{}
	}
	if opts.Policy == 0 {
		opts.Policy = SyncAlways
	}
	if opts.Interval <= 0 {
		opts.Interval = DefaultSyncInterval
	}
	if opts.SegmentBytes <= 0 {
		opts.SegmentBytes = DefaultSegmentBytes
	}
	if opts.MaxRecordBytes <= 0 {
		opts.MaxRecordBytes = DefaultMaxRecordBytes
	}
	if opts.Logf == nil {
		opts.Logf = func(string, ...interface{}) {}
	}
	return opts
}

// Stats is a point-in-time summary of the log, exported as durability
// metrics.
type Stats struct {
	// RecordsAppended and BytesAppended count Appends by this process.
	RecordsAppended int64
	BytesAppended   int64

	// Fsyncs counts file syncs; FsyncLatency summarises their duration.
	Fsyncs       int64
	FsyncLatency metrics.Summary

	// Segments is the number of live segment files; CurrentSegment is the
	// index appends go to.
	Segments       int
	CurrentSegment uint64

	// RecoveredRecords is the number of valid records found on disk at
	// Open; TornBytesTruncated is how many trailing bytes the torn-tail
	// scan discarded.
	RecoveredRecords   int64
	TornBytesTruncated int64

	// QuarantinedSegments counts segments this Log renamed aside (at Open
	// under QuarantineCorrupt, or live via Quarantine). RecoveryGaps is
	// the number of missing segment indexes inside the live range at
	// Open — each gap is a span of records that recovery skipped.
	QuarantinedSegments int64
	RecoveryGaps        int
}

// Log is an append-only, CRC-framed, segmented write-ahead log. It is safe
// for concurrent use.
type Log struct {
	opts Options
	fs   FS

	mu      sync.Mutex
	cur     File
	curSeg  uint64
	curSize int64
	segs    []uint64         // live segment indexes, ascending (includes curSeg)
	sizes   map[uint64]int64 // live segment sizes in bytes (curSeg tracks curSize)
	notify  chan struct{}    // closed+replaced on append: wakes WaitFrom
	dirty   bool             // bytes written since the last sync
	closed  bool

	records     int64
	bytes       int64
	fsyncs      int64
	recovered   int64
	tornBytes   int64
	quarantined int64
	gaps        int
	fsyncLat    *metrics.Recorder

	stopFlush chan struct{}
	flushDone chan struct{}
}

// SegmentName returns the file name of segment idx.
func SegmentName(idx uint64) string {
	return fmt.Sprintf("wal-%016x.log", idx)
}

// ParseSegmentName inverts SegmentName, reporting false for file names
// that are not WAL segments.
func ParseSegmentName(name string) (uint64, bool) {
	var idx uint64
	if _, err := fmt.Sscanf(name, "wal-%016x.log", &idx); err != nil {
		return 0, false
	}
	if name != SegmentName(idx) {
		return 0, false
	}
	return idx, true
}

// parseSegmentName is the internal alias of ParseSegmentName.
func parseSegmentName(name string) (uint64, bool) { return ParseSegmentName(name) }

// Open validates the log directory (truncating a torn tail, failing on
// mid-log corruption), then creates a fresh segment for appends.
func Open(o Options) (*Log, error) {
	opts := o.withDefaults()
	if opts.Dir == "" {
		return nil, fmt.Errorf("wal: Dir is required")
	}
	if err := opts.FS.MkdirAll(opts.Dir, 0o700); err != nil {
		return nil, fmt.Errorf("wal: mkdir: %w", err)
	}
	l := &Log{
		opts:     opts,
		fs:       opts.FS,
		fsyncLat: metrics.NewRecorder(),
		sizes:    make(map[uint64]int64),
		notify:   make(chan struct{}),
	}

	segs, err := ListSegments(opts.FS, opts.Dir)
	if err != nil {
		return nil, err
	}
	// Validate every segment up front: strict for all but the newest,
	// torn-tail truncation for the newest.
	for i, idx := range segs {
		path := filepath.Join(opts.Dir, SegmentName(idx))
		data, err := opts.FS.ReadFile(path)
		if err != nil {
			return nil, fmt.Errorf("wal: read %s: %w", path, err)
		}
		recs, validLen, scanErr := scanSegment(data, idx, opts.MaxRecordBytes)
		last := i == len(segs)-1
		if scanErr != nil && !last {
			if !opts.QuarantineCorrupt {
				return nil, &CorruptError{Path: path, Offset: int64(validLen), Reason: scanErr.Error()}
			}
			// Mid-log corruption with quarantine enabled: pull the whole
			// segment aside (a partial replay of an interior segment would
			// resurrect a state the log never contained) and leave a gap
			// for recovery to report. Records above the newest checkpoint
			// that lived here are lost locally; anti-entropy digests
			// detect and repair any replica this diverges.
			opts.Logf("wal: quarantining corrupt sealed segment %s (byte %d: %s)", path, validLen, scanErr)
			if err := quarantineFile(opts.FS, opts.Dir, path); err != nil {
				return nil, err
			}
			l.quarantined++
			segs[i] = 0 // mark removed
			continue
		}
		if scanErr != nil {
			// Torn tail on the newest segment: truncate at the first bad
			// byte. A segment whose header never made it to disk intact
			// carries no records at all and is removed outright.
			if validLen < headerSize {
				opts.Logf("wal: removing torn segment %s (%s)", path, scanErr)
				l.tornBytes += int64(len(data))
				if err := opts.FS.Remove(path); err != nil {
					return nil, fmt.Errorf("wal: remove torn segment: %w", err)
				}
				segs[i] = 0 // mark removed
				continue
			}
			opts.Logf("wal: truncating torn tail of %s at byte %d (%s)", path, validLen, scanErr)
			l.tornBytes += int64(len(data) - validLen)
			if err := opts.FS.Truncate(path, int64(validLen)); err != nil {
				return nil, fmt.Errorf("wal: truncate torn tail: %w", err)
			}
			l.sizes[idx] = int64(validLen)
		} else {
			l.sizes[idx] = int64(len(data))
		}
		l.recovered += int64(len(recs))
	}
	live := segs[:0]
	for _, idx := range segs {
		if idx != 0 {
			live = append(live, idx)
		}
	}
	l.segs = append([]uint64(nil), live...)
	for i := 1; i < len(l.segs); i++ {
		if missing := int(l.segs[i] - l.segs[i-1] - 1); missing > 0 {
			l.gaps += missing
			opts.Logf("wal: recovery gap: segments %d..%d missing (quarantined or lost)",
				l.segs[i-1]+1, l.segs[i]-1)
		}
	}
	// A gap at the front of the log is invisible to the pairwise scan:
	// detect it through quarantined segment files at or above the
	// checkpoint barrier the MinSegment floor encodes — those records
	// would otherwise have been replayed. Quarantine files below the
	// floor are old decay already healed by a later checkpoint.
	if names, err := opts.FS.ReadDirNames(opts.Dir); err == nil {
		var floor uint64
		if opts.MinSegment > 0 {
			floor = opts.MinSegment - 1
		}
		for _, name := range names {
			if !strings.HasSuffix(name, QuarantineSuffix) {
				continue
			}
			idx, ok := parseSegmentName(strings.TrimSuffix(name, QuarantineSuffix))
			if !ok || idx < floor {
				continue
			}
			if len(l.segs) == 0 || idx < l.segs[0] {
				l.gaps++
				opts.Logf("wal: recovery gap: segment %d quarantined ahead of the live log", idx)
			}
		}
	}

	next := uint64(1)
	if n := len(l.segs); n > 0 {
		next = l.segs[n-1] + 1
	}
	if next < opts.MinSegment {
		next = opts.MinSegment
	}
	if err := l.createSegmentLocked(next); err != nil {
		return nil, err
	}
	if opts.Policy == SyncInterval {
		l.stopFlush = make(chan struct{})
		l.flushDone = make(chan struct{})
		go l.flushLoop()
	}
	return l, nil
}

// ListSegments returns the segment indexes present in dir, ascending.
func ListSegments(fs FS, dir string) ([]uint64, error) {
	names, err := fs.ReadDirNames(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, fmt.Errorf("wal: read dir: %w", err)
	}
	var segs []uint64
	for _, name := range names {
		if idx, ok := parseSegmentName(name); ok {
			segs = append(segs, idx)
		}
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i] < segs[j] })
	return segs, nil
}

// RemoveSegmentsBelow deletes every segment file in dir with an index
// strictly below seg. Recovery uses it to clear segments already covered
// by a checkpoint before Open's strict mid-log validation runs.
func RemoveSegmentsBelow(fs FS, dir string, seg uint64) (removed int, err error) {
	if fs == nil {
		fs = OSFS{}
	}
	segs, err := ListSegments(fs, dir)
	if err != nil {
		return 0, err
	}
	for _, idx := range segs {
		if idx >= seg {
			break
		}
		if err := fs.Remove(filepath.Join(dir, SegmentName(idx))); err != nil {
			return removed, fmt.Errorf("wal: remove obsolete segment: %w", err)
		}
		removed++
	}
	if removed > 0 {
		if err := fs.SyncDir(dir); err != nil {
			return removed, err
		}
	}
	return removed, nil
}

// scanSegment parses one segment image. It returns the records up to the
// first invalid byte, the number of valid bytes, and a non-nil error
// describing the first problem (nil when the whole image is valid).
func scanSegment(data []byte, wantIdx uint64, maxRecord int) ([]Record, int, error) {
	if len(data) < headerSize {
		return nil, 0, fmt.Errorf("short header: %d bytes", len(data))
	}
	if string(data[:8]) != segMagic {
		return nil, 0, fmt.Errorf("bad magic %q", data[:8])
	}
	if data[8] != formatVersion {
		return nil, 0, fmt.Errorf("unsupported format version %d", data[8])
	}
	if idx := binary.BigEndian.Uint64(data[9:17]); idx != wantIdx {
		return nil, 0, fmt.Errorf("segment index %d does not match file name (%d)", idx, wantIdx)
	}
	var recs []Record
	off := headerSize
	for off < len(data) {
		rest := data[off:]
		if len(rest) < frameOverhead {
			return recs, off, fmt.Errorf("truncated frame header (%d bytes)", len(rest))
		}
		wantCRC := binary.BigEndian.Uint32(rest[0:4])
		length := binary.BigEndian.Uint32(rest[4:8])
		if int64(length) > int64(maxRecord) {
			return recs, off, fmt.Errorf("frame length %d exceeds limit %d", length, maxRecord)
		}
		total := frameOverhead + int(length)
		if len(rest) < total {
			return recs, off, fmt.Errorf("truncated frame: have %d of %d bytes", len(rest), total)
		}
		if crc := crc32.Checksum(rest[4:total], castagnoli); crc != wantCRC {
			return recs, off, fmt.Errorf("frame CRC mismatch (want %08x, have %08x)", wantCRC, crc)
		}
		recs = append(recs, Record{
			Type: rest[8],
			Data: append([]byte(nil), rest[frameOverhead:total]...),
		})
		off += total
	}
	return recs, off, nil
}

// EncodeFrame frames one record (exported for tests and tools).
func EncodeFrame(rec Record) []byte {
	buf := make([]byte, frameOverhead+len(rec.Data))
	binary.BigEndian.PutUint32(buf[4:8], uint32(len(rec.Data)))
	buf[8] = rec.Type
	copy(buf[frameOverhead:], rec.Data)
	binary.BigEndian.PutUint32(buf[0:4], crc32.Checksum(buf[4:], castagnoli))
	return buf
}

// createSegmentLocked opens segment idx for appending: header written,
// file synced, directory entry synced. Callers hold l.mu (or are Open).
func (l *Log) createSegmentLocked(idx uint64) error {
	path := filepath.Join(l.opts.Dir, SegmentName(idx))
	f, err := l.fs.OpenFile(path, os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o600)
	if err != nil {
		return fmt.Errorf("wal: create segment: %w", err)
	}
	if _, err := f.Write(SegmentHeader(idx)); err != nil {
		f.Close()
		return fmt.Errorf("wal: write segment header: %w", err)
	}
	if l.opts.Policy != SyncNone {
		if err := f.Sync(); err != nil {
			f.Close()
			return fmt.Errorf("wal: sync segment header: %w", err)
		}
		if err := l.fs.SyncDir(l.opts.Dir); err != nil {
			f.Close()
			return err
		}
	}
	if l.cur != nil {
		l.cur.Close()
	}
	l.cur = f
	l.curSeg = idx
	l.curSize = headerSize
	l.segs = append(l.segs, idx)
	l.sizes[idx] = headerSize
	return nil
}

// Append journals one record. Under SyncAlways the record is durable when
// Append returns; under SyncInterval it becomes durable within one
// group-commit interval; under SyncNone whenever the OS flushes.
func (l *Log) Append(rec Record) error {
	if len(rec.Data) > l.opts.MaxRecordBytes {
		return fmt.Errorf("wal: record of %d bytes exceeds limit %d", len(rec.Data), l.opts.MaxRecordBytes)
	}
	frame := EncodeFrame(rec)
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	if l.curSize > headerSize && l.curSize+int64(len(frame)) > l.opts.SegmentBytes {
		if err := l.rotateLocked(); err != nil {
			return err
		}
	}
	if _, err := l.cur.Write(frame); err != nil {
		return fmt.Errorf("wal: append: %w", err)
	}
	l.curSize += int64(len(frame))
	l.sizes[l.curSeg] = l.curSize
	l.records++
	l.bytes += int64(len(frame))
	l.dirty = true
	l.notifyLocked()
	if l.opts.Policy == SyncAlways {
		return l.syncLocked()
	}
	return nil
}

// syncLocked fsyncs the current segment. Callers hold l.mu.
func (l *Log) syncLocked() error {
	start := time.Now()
	if err := l.cur.Sync(); err != nil {
		return fmt.Errorf("wal: fsync: %w", err)
	}
	l.fsyncLat.Add(time.Since(start))
	l.fsyncs++
	l.dirty = false
	return nil
}

// Sync forces an fsync regardless of policy (shutdown flush).
func (l *Log) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	return l.syncLocked()
}

// rotateLocked syncs and closes the current segment and opens the next.
func (l *Log) rotateLocked() error {
	if l.opts.Policy != SyncNone || l.dirty {
		if err := l.syncLocked(); err != nil {
			return err
		}
	}
	return l.createSegmentLocked(l.curSeg + 1)
}

// Rotate forces a rotation to a fresh segment and returns its index: every
// record appended before Rotate lives in a segment with a strictly smaller
// index. The checkpointer uses this as its epoch barrier.
func (l *Log) Rotate() (uint64, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return 0, ErrClosed
	}
	if err := l.rotateLocked(); err != nil {
		return 0, err
	}
	return l.curSeg, nil
}

// TruncateBefore removes every segment with an index strictly below seg
// (the current segment is never removed). The checkpointer calls it after
// a checkpoint covering those segments is durably installed.
func (l *Log) TruncateBefore(seg uint64) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	var (
		kept     []uint64
		removed  int
		firstErr error
	)
	for _, idx := range l.segs {
		if idx < seg && idx != l.curSeg && firstErr == nil {
			if err := l.fs.Remove(filepath.Join(l.opts.Dir, SegmentName(idx))); err != nil {
				firstErr = fmt.Errorf("wal: truncate: %w", err)
				kept = append(kept, idx)
				continue
			}
			delete(l.sizes, idx)
			removed++
			continue
		}
		kept = append(kept, idx)
	}
	l.segs = kept
	if removed > 0 {
		if err := l.fs.SyncDir(l.opts.Dir); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// Replay streams every record in segments with index >= fromSeg, oldest
// first, to fn. It reads from disk, so it reflects exactly what a restart
// would see; records appended after Replay begins may or may not be
// included.
func (l *Log) Replay(fromSeg uint64, fn func(seg uint64, rec Record) error) error {
	l.mu.Lock()
	segs := append([]uint64(nil), l.segs...)
	l.mu.Unlock()
	for _, idx := range segs {
		if idx < fromSeg {
			continue
		}
		path := filepath.Join(l.opts.Dir, SegmentName(idx))
		data, err := l.fs.ReadFile(path)
		if err != nil {
			return fmt.Errorf("wal: replay read %s: %w", path, err)
		}
		recs, validLen, scanErr := scanSegment(data, idx, l.opts.MaxRecordBytes)
		if scanErr != nil && idx != l.curSeg {
			return &CorruptError{Path: path, Offset: int64(validLen), Reason: scanErr.Error()}
		}
		for _, rec := range recs {
			if err := fn(idx, rec); err != nil {
				return err
			}
		}
	}
	return nil
}

// CurrentSegment returns the index appends currently go to.
func (l *Log) CurrentSegment() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.curSeg
}

// Stats returns a point-in-time summary.
func (l *Log) Stats() Stats {
	l.mu.Lock()
	defer l.mu.Unlock()
	return Stats{
		RecordsAppended:     l.records,
		BytesAppended:       l.bytes,
		Fsyncs:              l.fsyncs,
		FsyncLatency:        l.fsyncLat.Summarize(),
		Segments:            len(l.segs),
		CurrentSegment:      l.curSeg,
		RecoveredRecords:    l.recovered,
		TornBytesTruncated:  l.tornBytes,
		QuarantinedSegments: l.quarantined,
		RecoveryGaps:        l.gaps,
	}
}

// flushLoop is the SyncInterval group-commit goroutine.
func (l *Log) flushLoop() {
	defer close(l.flushDone)
	ticker := time.NewTicker(l.opts.Interval)
	defer ticker.Stop()
	for {
		select {
		case <-l.stopFlush:
			return
		case <-ticker.C:
			l.mu.Lock()
			if !l.closed && l.dirty {
				if err := l.syncLocked(); err != nil {
					l.opts.Logf("wal: group commit: %v", err)
				}
			}
			l.mu.Unlock()
		}
	}
}

// Close flushes and closes the log. Further operations return ErrClosed.
func (l *Log) Close() error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return ErrClosed
	}
	if l.stopFlush != nil {
		close(l.stopFlush)
	}
	var err error
	if l.dirty {
		err = l.syncLocked()
	}
	if cerr := l.cur.Close(); err == nil && cerr != nil {
		err = fmt.Errorf("wal: close: %w", cerr)
	}
	l.closed = true
	l.notifyLocked() // wake any WaitFrom so it observes the close
	l.mu.Unlock()
	if l.flushDone != nil {
		<-l.flushDone
	}
	return err
}
