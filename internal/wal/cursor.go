// Cursor support: exported positions into the log, frame-granular tail
// reads, and change notification. This is the substrate of WAL-shipping
// replication (internal/replication): a primary serves raw frame bytes
// from ReadFrom, replicas mirror them verbatim so their directories stay
// byte-identical prefixes of the primary's, and WaitFrom gives the stream
// endpoint its long-poll wakeup without busy-reading segment files.
package wal

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"path/filepath"
)

// Exported framing constants for consumers that ship or mirror raw
// segment bytes.
const (
	// HeaderSize is the length of a segment file header.
	HeaderSize = headerSize

	// FrameOverhead is the length of one frame header (CRC + length +
	// type) preceding the payload.
	FrameOverhead = frameOverhead
)

// ErrPositionGone reports a read position that the log can no longer
// serve: either the segments below it were truncated away by a
// checkpoint (the reader must re-bootstrap from a snapshot), or the
// position lies beyond the log's end (the reader has diverged — e.g. it
// mirrored bytes a crashed primary lost to torn-tail truncation).
var ErrPositionGone = errors.New("wal: position gone")

// Pos addresses a byte offset within a segment of the log. The zero Pos
// means "from the very beginning". Offsets always point at a frame
// boundary (or a segment end); the first valid offset in any segment is
// HeaderSize.
type Pos struct {
	Segment uint64
	Offset  int64
}

// String renders the position as "<segment>,<offset>" — the wire form
// used by the replication stream's from= parameter.
func (p Pos) String() string { return fmt.Sprintf("%d,%d", p.Segment, p.Offset) }

// ParsePos inverts Pos.String.
func ParsePos(s string) (Pos, error) {
	var p Pos
	if _, err := fmt.Sscanf(s, "%d,%d", &p.Segment, &p.Offset); err != nil {
		return Pos{}, fmt.Errorf("wal: bad position %q (want \"segment,offset\"): %w", s, err)
	}
	if p.Offset < 0 {
		return Pos{}, fmt.Errorf("wal: bad position %q: negative offset", s)
	}
	return p, nil
}

// IsZero reports whether p is the zero position.
func (p Pos) IsZero() bool { return p == Pos{} }

// Less orders positions lexicographically by (segment, offset).
func (p Pos) Less(q Pos) bool {
	if p.Segment != q.Segment {
		return p.Segment < q.Segment
	}
	return p.Offset < q.Offset
}

// SegmentHeader returns the canonical 17-byte header of segment idx.
// Mirroring consumers write it so their segment files are byte-identical
// to the primary's.
func SegmentHeader(idx uint64) []byte {
	hdr := make([]byte, headerSize)
	copy(hdr, segMagic)
	hdr[8] = formatVersion
	binary.BigEndian.PutUint64(hdr[9:17], idx)
	return hdr
}

// DecodeFrames parses a buffer of concatenated frames (the byte form
// produced by Log.ReadFrom and shipped over the replication stream). It
// returns the decoded records and the number of bytes consumed. A
// trailing partial or corrupt frame stops the scan without error:
// consumers on unreliable transports apply the valid prefix and re-fetch
// the rest. maxRecord <= 0 means DefaultMaxRecordBytes.
func DecodeFrames(data []byte, maxRecord int) ([]Record, int) {
	if maxRecord <= 0 {
		maxRecord = DefaultMaxRecordBytes
	}
	var recs []Record
	off := 0
	for off < len(data) {
		rest := data[off:]
		if len(rest) < frameOverhead {
			break
		}
		wantCRC := binary.BigEndian.Uint32(rest[0:4])
		length := binary.BigEndian.Uint32(rest[4:8])
		if int64(length) > int64(maxRecord) {
			break
		}
		total := frameOverhead + int(length)
		if len(rest) < total {
			break
		}
		if crc32.Checksum(rest[4:total], castagnoli) != wantCRC {
			break
		}
		recs = append(recs, Record{
			Type: rest[8],
			Data: append([]byte(nil), rest[frameOverhead:total]...),
		})
		off += total
	}
	return recs, off
}

// End returns the position one past the last appended byte — where the
// next record will land.
func (l *Log) End() Pos {
	l.mu.Lock()
	defer l.mu.Unlock()
	return Pos{Segment: l.curSeg, Offset: l.curSize}
}

// normalizeLocked canonicalises p against the live segment set: the zero
// position becomes the start of the oldest segment, sub-header offsets
// snap to HeaderSize, and positions at the end of a sealed segment roll
// over to the start of the next. It reports ok=false when the position
// cannot be served, with ahead=true when it lies beyond the log end
// (divergence) as opposed to below its truncation floor.
func (l *Log) normalizeLocked(p Pos) (_ Pos, ok, ahead bool) {
	if p.IsZero() {
		if len(l.segs) == 0 {
			return p, false, false
		}
		p = Pos{Segment: l.segs[0], Offset: headerSize}
	}
	if p.Offset < headerSize {
		p.Offset = headerSize
	}
	for {
		if p.Segment == l.curSeg {
			if p.Offset > l.curSize {
				return p, false, true
			}
			return p, true, false
		}
		sz, live := l.sizes[p.Segment]
		if !live {
			return p, false, p.Segment > l.curSeg
		}
		if p.Offset > sz {
			return p, false, true
		}
		if p.Offset == sz {
			// Rollover: the next live segment (usually +1, but MinSegment
			// recovery floors can leave index gaps).
			next, found := l.nextLiveLocked(p.Segment)
			if !found {
				return p, false, true
			}
			p = Pos{Segment: next, Offset: headerSize}
			continue
		}
		return p, true, false
	}
}

// nextLiveLocked returns the smallest live segment index strictly above
// seg.
func (l *Log) nextLiveLocked(seg uint64) (uint64, bool) {
	for _, idx := range l.segs {
		if idx > seg {
			return idx, true
		}
	}
	return 0, false
}

// positionErr renders a normalizeLocked failure as an ErrPositionGone.
func positionErr(p Pos, ahead bool) error {
	if ahead {
		return fmt.Errorf("%w: position %s is beyond the log end", ErrPositionGone, p)
	}
	return fmt.Errorf("%w: position %s was truncated below the checkpoint floor", ErrPositionGone, p)
}

// ReadFrom returns up to maxBytes of raw, CRC-framed record bytes
// starting at position from, never crossing a segment boundary. It
// reports the number of whole records in the returned bytes, the
// normalised position the bytes actually start at (which may differ from
// the request when it rolls over a sealed segment's end), and the
// position immediately after them. A caught-up reader gets (nil, 0,
// end, end, nil). maxBytes <= 0 means 1 MiB; the first record is always
// included whole even when it alone exceeds maxBytes.
func (l *Log) ReadFrom(from Pos, maxBytes int) (frames []byte, n int, start, next Pos, err error) {
	if maxBytes <= 0 {
		maxBytes = 1 << 20
	}
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return nil, 0, from, from, ErrClosed
	}
	p, ok, ahead := l.normalizeLocked(from)
	if !ok {
		l.mu.Unlock()
		return nil, 0, from, from, positionErr(p, ahead)
	}
	limit := l.sizes[p.Segment]
	if p.Segment == l.curSeg {
		limit = l.curSize
	}
	dir, maxRecord := l.opts.Dir, l.opts.MaxRecordBytes
	l.mu.Unlock()

	if p.Offset == limit {
		// normalizeLocked only leaves a position at a segment end when
		// that segment is the current one: caught up.
		return nil, 0, p, p, nil
	}
	path := filepath.Join(dir, SegmentName(p.Segment))
	data, err := l.fs.ReadFile(path)
	if err != nil {
		return nil, 0, p, p, fmt.Errorf("wal: read %s: %w", path, err)
	}
	if int64(len(data)) > limit {
		// The current segment grew after we snapshotted curSize; serve
		// only the bytes the snapshot covers so callers see a stable
		// prefix.
		data = data[:limit]
	}
	if int64(len(data)) < limit {
		return nil, 0, p, p, fmt.Errorf("wal: read %s: %d bytes on disk, expected %d", path, len(data), limit)
	}
	span, count, scanErr := scanFrameRange(data, int(p.Offset), maxRecord, maxBytes)
	if scanErr != nil {
		return nil, 0, p, p, &CorruptError{Path: path, Offset: p.Offset + int64(span), Reason: scanErr.Error()}
	}
	out := append([]byte(nil), data[p.Offset:int(p.Offset)+span]...)
	return out, count, p, Pos{Segment: p.Segment, Offset: p.Offset + int64(span)}, nil
}

// scanFrameRange walks whole frames in data[off:], stopping once span
// would exceed maxBytes (but always admitting the first frame). It
// returns the byte span and record count of the valid run; err is
// non-nil when a frame inside the range is malformed.
func scanFrameRange(data []byte, off, maxRecord, maxBytes int) (span, count int, err error) {
	start := off
	for off < len(data) {
		rest := data[off:]
		if len(rest) < frameOverhead {
			return off - start, count, fmt.Errorf("truncated frame header (%d bytes)", len(rest))
		}
		wantCRC := binary.BigEndian.Uint32(rest[0:4])
		length := binary.BigEndian.Uint32(rest[4:8])
		if int64(length) > int64(maxRecord) {
			return off - start, count, fmt.Errorf("frame length %d exceeds limit %d", length, maxRecord)
		}
		total := frameOverhead + int(length)
		if len(rest) < total {
			return off - start, count, fmt.Errorf("truncated frame: have %d of %d bytes", len(rest), total)
		}
		if count > 0 && off-start+total > maxBytes {
			break
		}
		if crc32.Checksum(rest[4:total], castagnoli) != wantCRC {
			return off - start, count, fmt.Errorf("frame CRC mismatch")
		}
		off += total
		count++
	}
	return off - start, count, nil
}

// WaitFrom blocks until the log holds records at or after position from,
// the context is done, or the log is closed. It returns nil when data is
// available, the context error on cancellation, ErrClosed after Close,
// and ErrPositionGone when the position can no longer be served.
func (l *Log) WaitFrom(ctx context.Context, from Pos) error {
	for {
		l.mu.Lock()
		if l.closed {
			l.mu.Unlock()
			return ErrClosed
		}
		p, ok, ahead := l.normalizeLocked(from)
		if !ok {
			l.mu.Unlock()
			return positionErr(p, ahead)
		}
		if p.Segment != l.curSeg || p.Offset < l.curSize {
			l.mu.Unlock()
			return nil
		}
		ch := l.notify
		l.mu.Unlock()
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-ch:
		}
	}
}

// CountFrom counts the records at or after position from — the primary's
// measure of a replica's lag. The caught-up fast path costs one mutex
// acquisition and no I/O.
func (l *Log) CountFrom(from Pos) (int64, error) {
	var total int64
	pos := from
	for {
		_, n, _, next, err := l.ReadFrom(pos, 1<<20)
		if err != nil {
			return total, err
		}
		if n == 0 {
			return total, nil
		}
		total += int64(n)
		pos = next
	}
}

// BytesFrom returns how many framed record bytes lie at or after
// position from — the primary's byte-granularity measure of a replica's
// lag. Per-segment file headers are not counted (they are not payload
// the replica is missing). Unlike CountFrom it costs one mutex
// acquisition and no I/O: the live segment size table already holds
// every number needed.
func (l *Log) BytesFrom(from Pos) (int64, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return 0, ErrClosed
	}
	p, ok, ahead := l.normalizeLocked(from)
	if !ok {
		return 0, positionErr(p, ahead)
	}
	var total int64
	for _, idx := range l.segs {
		if idx < p.Segment {
			continue
		}
		sz := l.sizes[idx]
		if idx == l.curSeg {
			sz = l.curSize
		}
		start := int64(headerSize)
		if idx == p.Segment {
			start = p.Offset
		}
		if sz > start {
			total += sz - start
		}
	}
	return total, nil
}

// notifyLocked wakes every WaitFrom blocked on the previous notify
// channel. Callers hold l.mu.
func (l *Log) notifyLocked() {
	close(l.notify)
	l.notify = make(chan struct{})
}
