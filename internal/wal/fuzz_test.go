package wal_test

import (
	"encoding/binary"
	"os"
	"path/filepath"
	"testing"

	"github.com/lsds/browserflow/internal/faultinject"
	"github.com/lsds/browserflow/internal/wal"
)

// segmentImage builds a valid segment file image for seeding the fuzzer.
func segmentImage(idx uint64, recs ...wal.Record) []byte {
	hdr := make([]byte, 17)
	copy(hdr, "BFWALSEG")
	hdr[8] = 1
	binary.BigEndian.PutUint64(hdr[9:17], idx)
	out := hdr
	for _, r := range recs {
		out = append(out, wal.EncodeFrame(r)...)
	}
	return out
}

// FuzzOpenSegment feeds arbitrary bytes to the WAL reader as the newest
// segment on disk. Whatever the bytes, Open must not panic; when it
// succeeds, Replay must yield only CRC-valid records and a second
// open-after-truncation must succeed (no silent partial state left
// behind).
func FuzzOpenSegment(f *testing.F) {
	f.Add(segmentImage(1))
	f.Add(segmentImage(1, wal.Record{Type: 1, Data: []byte("hello")}))
	f.Add(segmentImage(1,
		wal.Record{Type: 2, Data: []byte("first")},
		wal.Record{Type: 3, Data: nil},
	))
	f.Add(segmentImage(2, wal.Record{Type: 1, Data: []byte("wrong index")}))
	f.Add([]byte("BFWALSEG"))
	f.Add([]byte{})
	full := segmentImage(1, wal.Record{Type: 1, Data: []byte("torn tail target")})
	f.Add(full[:len(full)-3])
	flipped := append([]byte(nil), full...)
	flipped[len(flipped)-1] ^= 0x20
	f.Add(flipped)

	f.Fuzz(func(t *testing.T, data []byte) {
		fs := faultinject.NewMemFS(1)
		dir := "/wal"
		if err := fs.MkdirAll(dir, 0o700); err != nil {
			t.Fatal(err)
		}
		path := filepath.Join(dir, wal.SegmentName(1))
		h, err := fs.OpenFile(path, os.O_CREATE|os.O_WRONLY, 0o600)
		if err != nil {
			t.Fatal(err)
		}
		if len(data) > 0 {
			if _, err := h.Write(data); err != nil {
				t.Fatal(err)
			}
		}
		h.Close()

		l, err := wal.Open(wal.Options{Dir: dir, FS: fs, Policy: wal.SyncNone})
		if err != nil {
			return // corrupt enough to reject outright is fine
		}
		count := 0
		if err := l.Replay(0, func(_ uint64, rec wal.Record) error {
			count++
			return nil
		}); err != nil {
			t.Errorf("Open accepted the directory but Replay failed: %v", err)
		}
		l.Close()

		// The tail Open truncated must stay clean: reopening cannot fail.
		l2, err := wal.Open(wal.Options{Dir: dir, FS: fs, Policy: wal.SyncNone})
		if err != nil {
			t.Fatalf("reopen after recovery failed: %v", err)
		}
		count2 := 0
		l2.Replay(0, func(uint64, wal.Record) error { count2++; return nil })
		if count2 != count {
			t.Errorf("recovered %d records, reopen sees %d", count, count2)
		}
		l2.Close()
	})
}
