package wal

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
)

// FS is the filesystem surface the durability layer writes through. The
// indirection exists so that crash-injection tests (internal/faultinject)
// can substitute an in-memory filesystem with page-cache semantics —
// unsynced writes may be lost, torn or bit-flipped at a simulated crash —
// while production code runs on OSFS.
type FS interface {
	// OpenFile opens name with the given flags, creating it when
	// os.O_CREATE is set.
	OpenFile(name string, flag int, perm os.FileMode) (File, error)

	// ReadFile returns the entire contents of name.
	ReadFile(name string) ([]byte, error)

	// Rename atomically replaces newname with oldname. Durability of the
	// directory entry requires a subsequent SyncDir.
	Rename(oldname, newname string) error

	// Remove deletes name.
	Remove(name string) error

	// Truncate shortens name to size bytes.
	Truncate(name string, size int64) error

	// ReadDirNames returns the names (not paths) of the entries in dir.
	ReadDirNames(dir string) ([]string, error)

	// MkdirAll creates dir and any missing parents.
	MkdirAll(dir string, perm os.FileMode) error

	// SyncDir fsyncs the directory itself, making previously created or
	// renamed entries durable.
	SyncDir(dir string) error
}

// MapFS is an optional FS capability: filesystems that can memory-map a
// file expose its full contents as a read-only view without copying it
// onto the heap. Callers discover the capability with a type assertion
// and MUST fall back to ReadFile when it is absent or Map fails — an
// in-memory or exotic filesystem not supporting mmap is expected, not an
// error. The returned release function unmaps the view; the slice must
// not be touched afterwards.
type MapFS interface {
	Map(name string) (data []byte, release func() error, err error)
}

// MapFile returns the contents of name through fs's MapFS capability when
// available, falling back to a plain ReadFile copy. mapped reports which
// path was taken; release must be called exactly once when the caller is
// done with data (it is a no-op for the ReadFile fallback).
func MapFile(fs FS, name string) (data []byte, release func() error, mapped bool, err error) {
	if mf, ok := fs.(MapFS); ok {
		if data, rel, err := mf.Map(name); err == nil {
			return data, rel, true, nil
		}
		// Fall through: mmap refusal (platform, filesystem, empty file
		// semantics) downgrades to a heap read, never to a failure.
	}
	data, err = fs.ReadFile(name)
	if err != nil {
		return nil, nil, false, err
	}
	return data, func() error { return nil }, false, nil
}

// File is the subset of *os.File the write-ahead log needs.
type File interface {
	io.Writer
	io.Closer

	// Sync flushes the file's data to stable storage.
	Sync() error
}

// OSFS is the production FS backed by the real filesystem.
type OSFS struct{}

var _ FS = OSFS{}

// OpenFile implements FS.
func (OSFS) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	return os.OpenFile(name, flag, perm)
}

// ReadFile implements FS.
func (OSFS) ReadFile(name string) ([]byte, error) { return os.ReadFile(name) }

// Rename implements FS.
func (OSFS) Rename(oldname, newname string) error { return os.Rename(oldname, newname) }

// Remove implements FS.
func (OSFS) Remove(name string) error { return os.Remove(name) }

// Truncate implements FS.
func (OSFS) Truncate(name string, size int64) error { return os.Truncate(name, size) }

// ReadDirNames implements FS.
func (OSFS) ReadDirNames(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	names := make([]string, 0, len(entries))
	for _, e := range entries {
		names = append(names, e.Name())
	}
	return names, nil
}

// MkdirAll implements FS.
func (OSFS) MkdirAll(dir string, perm os.FileMode) error { return os.MkdirAll(dir, perm) }

// SyncDir implements FS. Some platforms (and some filesystems) reject
// fsync on directories; those errors are deliberately swallowed — the
// caller has no portable recourse and the write itself already succeeded.
func (OSFS) SyncDir(dir string) error {
	d, err := os.Open(filepath.Clean(dir))
	if err != nil {
		return fmt.Errorf("wal: open dir for sync: %w", err)
	}
	defer d.Close()
	if err := d.Sync(); err != nil {
		// EINVAL/ENOTSUP on directories is platform noise, not data loss.
		return nil //nolint:nilerr
	}
	return nil
}
