package wal

// At-rest verification and quarantine. Sealed segments are immutable, so
// any CRC mismatch found after a successful recovery is silent data decay
// (bit rot, firmware lies, a misdirected write) rather than a torn tail.
// The store's scrubber re-verifies sealed segments with VerifySegmentFile
// and pulls a decayed one out of the replay path with Quarantine — a
// rename, never a delete, so the evidence survives for forensics and a
// smarter future repair.

import (
	"fmt"
	"path/filepath"
	"strings"
)

// QuarantineSuffix is appended to a corrupt file's name when it is pulled
// out of the recovery path. Quarantined names no longer parse as WAL
// segments (or checkpoints), so every list/replay/recovery scan skips
// them without special cases.
const QuarantineSuffix = ".quarantine"

// VerifySegmentFile re-validates every frame of segment idx in dir,
// returning the record count and valid byte length. A header or frame
// error comes back as *CorruptError with the byte offset of the first
// invalid byte — the same strictness Open applies to sealed segments.
func VerifySegmentFile(fsys FS, dir string, idx uint64, maxRecord int) (records int, bytes int64, err error) {
	if fsys == nil {
		fsys = OSFS{}
	}
	if maxRecord <= 0 {
		maxRecord = DefaultMaxRecordBytes
	}
	path := filepath.Join(dir, SegmentName(idx))
	data, release, _, err := MapFile(fsys, path)
	if err != nil {
		return 0, 0, fmt.Errorf("wal: verify read %s: %w", path, err)
	}
	defer release() //nolint:errcheck
	recs, validLen, scanErr := scanSegment(data, idx, maxRecord)
	if scanErr != nil {
		return len(recs), int64(validLen), &CorruptError{Path: path, Offset: int64(validLen), Reason: scanErr.Error()}
	}
	return len(recs), int64(validLen), nil
}

// CountQuarantined counts quarantined files in dir (WAL segments and
// checkpoints alike); /healthz surfaces it so an operator notices decay
// the node healed around.
func CountQuarantined(fsys FS, dir string) int {
	if fsys == nil {
		fsys = OSFS{}
	}
	names, err := fsys.ReadDirNames(dir)
	if err != nil {
		return 0
	}
	n := 0
	for _, name := range names {
		if strings.HasSuffix(name, QuarantineSuffix) {
			n++
		}
	}
	return n
}

// quarantineFile renames path aside and syncs the directory entry.
func quarantineFile(fsys FS, dir, path string) error {
	if err := fsys.Rename(path, path+QuarantineSuffix); err != nil {
		return fmt.Errorf("wal: quarantine %s: %w", path, err)
	}
	return fsys.SyncDir(dir)
}

// QuarantineFile renames any file in dir aside with QuarantineSuffix
// (checkpoint scrubbing uses it; segment quarantine on a live log goes
// through Log.Quarantine so the in-memory tables stay consistent).
func QuarantineFile(fsys FS, dir, name string) error {
	if fsys == nil {
		fsys = OSFS{}
	}
	return quarantineFile(fsys, dir, filepath.Join(dir, name))
}

// SealedSegments returns the live segment indexes strictly below the
// current append segment — the immutable set the scrubber walks.
func (l *Log) SealedSegments() []uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]uint64, 0, len(l.segs))
	for _, idx := range l.segs {
		if idx < l.curSeg {
			out = append(out, idx)
		}
	}
	return out
}

// SegmentPath returns the path of segment idx inside the log directory.
func (l *Log) SegmentPath(idx uint64) string {
	return filepath.Join(l.opts.Dir, SegmentName(idx))
}

// MaxRecordBytes returns the configured per-record payload bound.
func (l *Log) MaxRecordBytes() int { return l.opts.MaxRecordBytes }

// Quarantine renames sealed segment idx aside and drops it from the live
// tables: replay, cursors and stats stop seeing it immediately, and the
// next Open sees a segment-index gap instead of mid-log corruption. The
// active append segment cannot be quarantined.
func (l *Log) Quarantine(idx uint64) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	if idx == l.curSeg {
		return fmt.Errorf("wal: cannot quarantine the active segment %d", idx)
	}
	found := false
	for _, s := range l.segs {
		if s == idx {
			found = true
			break
		}
	}
	if !found {
		return fmt.Errorf("wal: segment %d is not live", idx)
	}
	if err := quarantineFile(l.fs, l.opts.Dir, filepath.Join(l.opts.Dir, SegmentName(idx))); err != nil {
		return err
	}
	kept := l.segs[:0]
	for _, s := range l.segs {
		if s != idx {
			kept = append(kept, s)
		}
	}
	l.segs = kept
	delete(l.sizes, idx)
	l.quarantined++
	l.notifyLocked() // wake tailing cursors so they renormalise over the gap
	return nil
}
