package wal_test

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"

	"github.com/lsds/browserflow/internal/faultinject"
	"github.com/lsds/browserflow/internal/wal"
)

// collect replays the whole log into memory.
func collect(t *testing.T, l *wal.Log, fromSeg uint64) []wal.Record {
	t.Helper()
	var out []wal.Record
	if err := l.Replay(fromSeg, func(_ uint64, rec wal.Record) error {
		out = append(out, rec)
		return nil
	}); err != nil {
		t.Fatalf("replay: %v", err)
	}
	return out
}

func rec(typ byte, payload string) wal.Record {
	return wal.Record{Type: typ, Data: []byte(payload)}
}

func TestAppendCloseReopenRoundTrip(t *testing.T) {
	dir := t.TempDir()
	l, err := wal.Open(wal.Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	want := []wal.Record{rec(1, "alpha"), rec(2, "bravo"), rec(3, ""), rec(9, "charlie")}
	for _, r := range want {
		if err := l.Append(r); err != nil {
			t.Fatalf("append: %v", err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}

	l2, err := wal.Open(wal.Options{Dir: dir})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer l2.Close()
	got := collect(t, l2, 0)
	if len(got) != len(want) {
		t.Fatalf("recovered %d records, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i].Type != want[i].Type || !bytes.Equal(got[i].Data, want[i].Data) {
			t.Errorf("record %d = {%d %q}, want {%d %q}", i, got[i].Type, got[i].Data, want[i].Type, want[i].Data)
		}
	}
	if s := l2.Stats(); s.RecoveredRecords != int64(len(want)) {
		t.Errorf("RecoveredRecords = %d, want %d", s.RecoveredRecords, len(want))
	}
}

func TestRotationPreservesOrder(t *testing.T) {
	dir := t.TempDir()
	// Tiny segments so every few appends rotate.
	l, err := wal.Open(wal.Options{Dir: dir, SegmentBytes: 64})
	if err != nil {
		t.Fatal(err)
	}
	const n = 50
	for i := 0; i < n; i++ {
		if err := l.Append(rec(1, fmt.Sprintf("record-%03d", i))); err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
	}
	if s := l.Stats(); s.Segments < 3 {
		t.Fatalf("expected rotation to create several segments, have %d", s.Segments)
	}
	got := collect(t, l, 0)
	if len(got) != n {
		t.Fatalf("replayed %d records, want %d", len(got), n)
	}
	for i, r := range got {
		if want := fmt.Sprintf("record-%03d", i); string(r.Data) != want {
			t.Fatalf("record %d = %q, want %q (order broken)", i, r.Data, want)
		}
	}
	l.Close()
}

func TestTornTailTruncatedOnOpen(t *testing.T) {
	fs := faultinject.NewMemFS(1)
	dir := "/wal"
	l, err := wal.Open(wal.Options{Dir: dir, FS: fs})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := l.Append(rec(1, fmt.Sprintf("ok-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	seg := l.CurrentSegment()
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	// Simulate a torn final write: half a frame appended to the segment.
	frame := wal.EncodeFrame(rec(1, "torn-record"))
	path := filepath.Join(dir, wal.SegmentName(seg))
	f, err := fs.OpenFile(path, os.O_WRONLY, 0o600)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(frame[:len(frame)/2]); err != nil {
		t.Fatal(err)
	}
	f.Close()

	l2, err := wal.Open(wal.Options{Dir: dir, FS: fs})
	if err != nil {
		t.Fatalf("open with torn tail: %v", err)
	}
	defer l2.Close()
	got := collect(t, l2, 0)
	if len(got) != 3 {
		t.Fatalf("recovered %d records, want 3 (torn record dropped)", len(got))
	}
	if s := l2.Stats(); s.TornBytesTruncated != int64(len(frame)/2) {
		t.Errorf("TornBytesTruncated = %d, want %d", s.TornBytesTruncated, len(frame)/2)
	}
	// The truncated tail must never break a subsequent reopen.
	l2.Close()
	l3, err := wal.Open(wal.Options{Dir: dir, FS: fs})
	if err != nil {
		t.Fatalf("second reopen: %v", err)
	}
	l3.Close()
}

func TestMidLogCorruptionIsFatal(t *testing.T) {
	fs := faultinject.NewMemFS(2)
	dir := "/wal"
	l, err := wal.Open(wal.Options{Dir: dir, FS: fs, SegmentBytes: 64})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		if err := l.Append(rec(1, fmt.Sprintf("record-%03d", i))); err != nil {
			t.Fatal(err)
		}
	}
	segs, err := wal.ListSegments(fs, dir)
	if err != nil || len(segs) < 3 {
		t.Fatalf("want >=3 segments (err=%v, got %d)", err, len(segs))
	}
	l.Close()

	// Flip a payload byte in the FIRST segment: interior corruption.
	first := filepath.Join(dir, wal.SegmentName(segs[0]))
	if err := fs.FlipByte(first, 30, 0x40); err != nil {
		t.Fatal(err)
	}
	_, err = wal.Open(wal.Options{Dir: dir, FS: fs})
	var corrupt *wal.CorruptError
	if !errors.As(err, &corrupt) {
		t.Fatalf("open over mid-log corruption = %v, want *CorruptError", err)
	}
	if corrupt.Path != first {
		t.Errorf("corrupt path = %s, want %s", corrupt.Path, first)
	}
}

func TestRotateIsAnEpochBarrier(t *testing.T) {
	dir := t.TempDir()
	l, err := wal.Open(wal.Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	for i := 0; i < 5; i++ {
		if err := l.Append(rec(1, "before")); err != nil {
			t.Fatal(err)
		}
	}
	barrier, err := l.Rotate()
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if err := l.Append(rec(2, "after")); err != nil {
			t.Fatal(err)
		}
	}
	// Everything before the barrier lives strictly below it; Replay from
	// the barrier sees exactly the records after it.
	if err := l.Replay(0, func(seg uint64, r wal.Record) error {
		if string(r.Data) == "before" && seg >= barrier {
			return fmt.Errorf("pre-barrier record in segment %d >= %d", seg, barrier)
		}
		if string(r.Data) == "after" && seg < barrier {
			return fmt.Errorf("post-barrier record in segment %d < %d", seg, barrier)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	after := collect(t, l, barrier)
	if len(after) != 4 {
		t.Fatalf("replay from barrier saw %d records, want 4", len(after))
	}
}

func TestTruncateBefore(t *testing.T) {
	fs := faultinject.NewMemFS(3)
	dir := "/wal"
	l, err := wal.Open(wal.Options{Dir: dir, FS: fs})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	l.Append(rec(1, "old"))
	barrier, err := l.Rotate()
	if err != nil {
		t.Fatal(err)
	}
	l.Append(rec(1, "new"))
	if err := l.TruncateBefore(barrier); err != nil {
		t.Fatal(err)
	}
	segs, err := wal.ListSegments(fs, dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range segs {
		if s < barrier {
			t.Errorf("segment %d survived TruncateBefore(%d)", s, barrier)
		}
	}
	got := collect(t, l, 0)
	if len(got) != 1 || string(got[0].Data) != "new" {
		t.Fatalf("after truncation replay = %v, want just %q", got, "new")
	}
}

// With SyncAlways every acked record survives a simulated power loss.
func TestSyncAlwaysSurvivesCrash(t *testing.T) {
	fs := faultinject.NewMemFS(4)
	dir := "/wal"
	l, err := wal.Open(wal.Options{Dir: dir, FS: fs, Policy: wal.SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	const n = 7
	for i := 0; i < n; i++ {
		if err := l.Append(rec(1, fmt.Sprintf("acked-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	// Power loss: no Close, no final sync.
	fs.Crash()
	l2, err := wal.Open(wal.Options{Dir: dir, FS: fs})
	if err != nil {
		t.Fatalf("open after crash: %v", err)
	}
	defer l2.Close()
	got := collect(t, l2, 0)
	if len(got) != n {
		t.Fatalf("recovered %d records after crash, want %d", len(got), n)
	}
}

// With SyncNone a crash may lose records, but recovery still yields a
// clean prefix and never fails.
func TestSyncNoneCrashLeavesValidPrefix(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		fs := faultinject.NewMemFS(seed)
		dir := "/wal"
		l, err := wal.Open(wal.Options{Dir: dir, FS: fs, Policy: wal.SyncNone})
		if err != nil {
			t.Fatal(err)
		}
		const n = 9
		for i := 0; i < n; i++ {
			if err := l.Append(rec(1, fmt.Sprintf("record-%d", i))); err != nil {
				t.Fatal(err)
			}
		}
		fs.Crash()
		l2, err := wal.Open(wal.Options{Dir: dir, FS: fs})
		if err != nil {
			t.Fatalf("seed %d: open after crash: %v", seed, err)
		}
		got := collect(t, l2, 0)
		if len(got) > n {
			t.Fatalf("seed %d: recovered %d records, only %d written", seed, len(got), n)
		}
		for i, r := range got {
			if want := fmt.Sprintf("record-%d", i); string(r.Data) != want {
				t.Fatalf("seed %d: record %d = %q, want %q (not a prefix)", seed, i, r.Data, want)
			}
		}
		l2.Close()
	}
}

func TestSyncIntervalGroupCommit(t *testing.T) {
	dir := t.TempDir()
	l, err := wal.Open(wal.Options{
		Dir:      dir,
		Policy:   wal.SyncInterval,
		Interval: 5 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	before := l.Stats().Fsyncs
	if err := l.Append(rec(1, "grouped")); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for l.Stats().Fsyncs == before && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if l.Stats().Fsyncs == before {
		t.Error("group commit never fsynced the appended record")
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestParseSyncPolicy(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want wal.SyncPolicy
		ok   bool
	}{
		{"always", wal.SyncAlways, true},
		{"interval", wal.SyncInterval, true},
		{"none", wal.SyncNone, true},
		{"sometimes", 0, false},
		{"", 0, false},
	} {
		got, err := wal.ParseSyncPolicy(tc.in)
		if (err == nil) != tc.ok || got != tc.want {
			t.Errorf("ParseSyncPolicy(%q) = (%v, %v), want (%v, ok=%v)", tc.in, got, err, tc.want, tc.ok)
		}
	}
	for _, p := range []wal.SyncPolicy{wal.SyncAlways, wal.SyncInterval, wal.SyncNone} {
		back, err := wal.ParseSyncPolicy(p.String())
		if err != nil || back != p {
			t.Errorf("round trip %v -> %q -> (%v, %v)", p, p.String(), back, err)
		}
	}
}

func TestOversizedRecordRejected(t *testing.T) {
	dir := t.TempDir()
	l, err := wal.Open(wal.Options{Dir: dir, MaxRecordBytes: 16})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if err := l.Append(rec(1, "this payload is longer than sixteen bytes")); err == nil {
		t.Error("oversized record accepted")
	}
	if err := l.Append(rec(1, "short")); err != nil {
		t.Errorf("normal record rejected: %v", err)
	}
}

func TestClosedLogRejectsOperations(t *testing.T) {
	dir := t.TempDir()
	l, err := wal.Open(wal.Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if err := l.Append(rec(1, "x")); !errors.Is(err, wal.ErrClosed) {
		t.Errorf("Append after Close = %v, want ErrClosed", err)
	}
	if _, err := l.Rotate(); !errors.Is(err, wal.ErrClosed) {
		t.Errorf("Rotate after Close = %v, want ErrClosed", err)
	}
	if err := l.Sync(); !errors.Is(err, wal.ErrClosed) {
		t.Errorf("Sync after Close = %v, want ErrClosed", err)
	}
}
