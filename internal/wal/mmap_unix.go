//go:build unix

package wal

import (
	"fmt"
	"os"
	"syscall"
)

var _ MapFS = OSFS{}

// Map implements MapFS with a read-only private mapping of the whole
// file. Checkpoint recovery uses it to decode multi-gigabyte snapshots
// without first copying them onto the heap; pages are faulted in on
// demand and dropped by the kernel once the mapping is released.
func (OSFS) Map(name string) ([]byte, func() error, error) {
	f, err := os.Open(name)
	if err != nil {
		return nil, nil, err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return nil, nil, err
	}
	size := st.Size()
	if size == 0 {
		// mmap(2) rejects zero-length mappings; an empty file has an
		// empty, trivially-releasable view.
		return nil, func() error { return nil }, nil
	}
	if size != int64(int(size)) {
		return nil, nil, fmt.Errorf("wal: %s too large to map (%d bytes)", name, size)
	}
	data, err := syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_PRIVATE)
	if err != nil {
		return nil, nil, fmt.Errorf("wal: mmap %s: %w", name, err)
	}
	return data, func() error { return syscall.Munmap(data) }, nil
}
