package proxy

import (
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"testing"

	"github.com/lsds/browserflow/internal/audit"
	"github.com/lsds/browserflow/internal/disclosure"
	"github.com/lsds/browserflow/internal/dlpmon"
	"github.com/lsds/browserflow/internal/fingerprint"
	"github.com/lsds/browserflow/internal/policy"
	"github.com/lsds/browserflow/internal/tdm"
	"github.com/lsds/browserflow/internal/webapp"
)

const proxySecret = "Internal pricing strategy for the enterprise tier doubles the per-seat cost after the first hundred users."

// upstream records requests it receives.
type upstream struct {
	srv  *httptest.Server
	got  []string
	path string
}

func newUpstream(t *testing.T) *upstream {
	t.Helper()
	u := &upstream{}
	u.srv = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		body, _ := io.ReadAll(r.Body)
		u.got = append(u.got, string(body))
		u.path = r.URL.Path
		w.Header().Set("X-Upstream", "yes")
		w.WriteHeader(200)
		io.WriteString(w, "upstream ok")
	}))
	t.Cleanup(u.srv.Close)
	return u
}

func newMonitor(t *testing.T) *dlpmon.Monitor {
	t.Helper()
	m, err := dlpmon.New(dlpmon.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.AddSensitive("pricing", proxySecret); err != nil {
		t.Fatal(err)
	}
	return m
}

func newEngine(t *testing.T) *policy.Engine {
	t.Helper()
	tracker, err := disclosure.NewTracker(disclosure.Params{
		Fingerprint: fingerprint.DefaultConfig(),
		Tpar:        0.5,
		Tdoc:        0.5,
	})
	if err != nil {
		t.Fatal(err)
	}
	registry := tdm.NewRegistry(audit.NewLog())
	if err := registry.RegisterService("wiki", tdm.NewTagSet("tw"), tdm.NewTagSet("tw")); err != nil {
		t.Fatal(err)
	}
	if err := registry.RegisterService("docs", tdm.NewTagSet(), tdm.NewTagSet()); err != nil {
		t.Fatal(err)
	}
	engine, err := policy.NewEngine(tracker, registry, policy.ModeEnforcing)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := engine.ObserveEdit("wiki/pricing#p0", "wiki", proxySecret); err != nil {
		t.Fatal(err)
	}
	return engine
}

func mustURL(t *testing.T, s string) *url.URL {
	t.Helper()
	u, err := url.Parse(s)
	if err != nil {
		t.Fatal(err)
	}
	return u
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Error("missing upstream accepted")
	}
	if _, err := New(Config{Upstream: &url.URL{}, Engine: newEngine(t)}); err == nil {
		t.Error("engine without ServiceOf accepted")
	}
}

func TestForwardsCleanRequests(t *testing.T) {
	up := newUpstream(t)
	p, err := New(Config{Upstream: mustURL(t, up.srv.URL), Monitor: newMonitor(t)})
	if err != nil {
		t.Fatal(err)
	}
	front := httptest.NewServer(p)
	defer front.Close()

	resp, err := http.PostForm(front.URL+"/docs/x", url.Values{"content": {"a clean sentence"}})
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 || resp.Header.Get("X-Upstream") != "yes" {
		t.Errorf("status=%d header=%q", resp.StatusCode, resp.Header.Get("X-Upstream"))
	}
	body, _ := io.ReadAll(resp.Body)
	if string(body) != "upstream ok" {
		t.Errorf("body=%q", body)
	}
	if up.path != "/docs/x" {
		t.Errorf("upstream path=%q", up.path)
	}
	if s := p.Stats(); s.Forwarded != 1 || s.Blocked != 0 {
		t.Errorf("stats=%+v", s)
	}
}

func TestBlocksCorpusMatch(t *testing.T) {
	up := newUpstream(t)
	p, err := New(Config{Upstream: mustURL(t, up.srv.URL), Monitor: newMonitor(t)})
	if err != nil {
		t.Fatal(err)
	}
	front := httptest.NewServer(p)
	defer front.Close()

	resp, err := http.PostForm(front.URL+"/anywhere", url.Values{"content": {proxySecret}})
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusForbidden {
		t.Errorf("status=%d, want 403", resp.StatusCode)
	}
	if len(up.got) != 0 {
		t.Error("blocked body reached upstream")
	}
	if s := p.Stats(); s.Blocked != 1 {
		t.Errorf("stats=%+v", s)
	}
}

func TestBlocksPolicyViolation(t *testing.T) {
	up := newUpstream(t)
	p, err := New(Config{
		Upstream: mustURL(t, up.srv.URL),
		Engine:   newEngine(t),
		ServiceOf: func(u *url.URL) (string, bool) {
			return webapp.ServiceForPath(u.Path)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	front := httptest.NewServer(p)
	defer front.Close()

	// Posting the wiki text to docs violates the TDM.
	resp, err := http.PostForm(front.URL+"/docs/report", url.Values{"content": {proxySecret}})
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusForbidden {
		t.Errorf("status=%d, want 403", resp.StatusCode)
	}
	// The same text back to the wiki is fine.
	resp2, err := http.PostForm(front.URL+"/wiki/page", url.Values{"content": {proxySecret}})
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != 200 {
		t.Errorf("wiki post status=%d, want 200", resp2.StatusCode)
	}
	// Unmapped destinations skip the policy check.
	resp3, err := http.PostForm(front.URL+"/other/endpoint", url.Values{"content": {proxySecret}})
	if err != nil {
		t.Fatal(err)
	}
	resp3.Body.Close()
	if resp3.StatusCode != 200 {
		t.Errorf("unmapped post status=%d, want 200", resp3.StatusCode)
	}
}

func TestGetRequestsPassThrough(t *testing.T) {
	up := newUpstream(t)
	p, err := New(Config{Upstream: mustURL(t, up.srv.URL), Monitor: newMonitor(t)})
	if err != nil {
		t.Fatal(err)
	}
	front := httptest.NewServer(p)
	defer front.Close()
	resp, err := http.Get(front.URL + "/wiki/page?q=1")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Errorf("status=%d", resp.StatusCode)
	}
}

func TestUpstreamFailure(t *testing.T) {
	p, err := New(Config{Upstream: mustURL(t, "http://127.0.0.1:1")})
	if err != nil {
		t.Fatal(err)
	}
	front := httptest.NewServer(p)
	defer front.Close()
	resp, err := http.Post(front.URL+"/x", "text/plain", strings.NewReader("hi"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadGateway {
		t.Errorf("status=%d, want 502", resp.StatusCode)
	}
}

// TestMaxInflightSheds saturates the inflight gate with requests parked in
// a slow upstream and asserts the overflow arrival is shed immediately
// with 429 + Retry-After while admitted requests complete normally.
func TestMaxInflightSheds(t *testing.T) {
	release := make(chan struct{})
	entered := make(chan struct{}, 8)
	slow := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		entered <- struct{}{}
		<-release
		w.WriteHeader(200)
	}))
	defer slow.Close()

	p, err := New(Config{Upstream: mustURL(t, slow.URL), MaxInflight: 2})
	if err != nil {
		t.Fatal(err)
	}
	front := httptest.NewServer(p)
	defer front.Close()

	// Fill both slots.
	type result struct {
		status int
		err    error
	}
	done := make(chan result, 2)
	for i := 0; i < 2; i++ {
		go func() {
			resp, err := http.Post(front.URL+"/x", "text/plain", strings.NewReader("hi"))
			if err != nil {
				done <- result{err: err}
				return
			}
			resp.Body.Close()
			done <- result{status: resp.StatusCode}
		}()
	}
	<-entered
	<-entered

	// The third arrival must shed without waiting for the slow upstream.
	resp, err := http.Post(front.URL+"/x", "text/plain", strings.NewReader("hi"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overflow status=%d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("shed response missing Retry-After")
	}

	close(release)
	for i := 0; i < 2; i++ {
		r := <-done
		if r.err != nil {
			t.Fatal(r.err)
		}
		if r.status != 200 {
			t.Errorf("admitted status=%d, want 200", r.status)
		}
	}

	st := p.Stats()
	if st.Shed != 1 {
		t.Errorf("Shed=%d, want 1", st.Shed)
	}
	if st.Forwarded != 2 {
		t.Errorf("Forwarded=%d, want 2", st.Forwarded)
	}

	// Slots freed: a new request is admitted again.
	resp2, err := http.Post(front.URL+"/x", "text/plain", strings.NewReader("hi"))
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != 200 {
		t.Errorf("post-recovery status=%d, want 200", resp2.StatusCode)
	}
}
