package proxy

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"github.com/lsds/browserflow/internal/faultinject"
	"github.com/lsds/browserflow/internal/resilience"
)

// An oversized body is rejected with 413 before any inspection or
// forwarding: the upstream never sees a byte of it.
func TestBodyLimitRejectsOversized(t *testing.T) {
	up := newUpstream(t)
	p, err := New(Config{
		Upstream:     mustURL(t, up.srv.URL),
		Monitor:      newMonitor(t),
		MaxBodyBytes: 128,
	})
	if err != nil {
		t.Fatal(err)
	}
	front := httptest.NewServer(p)
	defer front.Close()

	big := strings.Repeat("x", 4096)
	resp, err := http.Post(front.URL+"/docs/x", "text/plain", strings.NewReader(big))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Errorf("status=%d, want 413", resp.StatusCode)
	}
	if len(up.got) != 0 {
		t.Errorf("oversized body reached upstream: %q", up.got)
	}
	if s := p.Stats(); s.Blocked != 1 || s.Forwarded != 0 {
		t.Errorf("stats=%+v", s)
	}

	// A body inside the limit still flows.
	resp, err = http.Post(front.URL+"/docs/x", "text/plain", strings.NewReader("small and clean"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("small body status=%d", resp.StatusCode)
	}
	if s := p.Stats(); s.Forwarded != 1 {
		t.Errorf("stats=%+v", s)
	}
}

// An upstream connection failure surfaces as 502, deterministically
// injected rather than relying on a dead port.
func TestInjectedUpstreamFault(t *testing.T) {
	up := newUpstream(t)
	inj := faultinject.New(up.srv.Client().Transport, 1)
	inj.AddRule(faultinject.Rule{Kind: faultinject.KindConnError})
	p, err := New(Config{Upstream: mustURL(t, up.srv.URL), Transport: inj})
	if err != nil {
		t.Fatal(err)
	}
	front := httptest.NewServer(p)
	defer front.Close()

	resp, err := http.Get(front.URL + "/wiki/page")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadGateway {
		t.Errorf("status=%d, want 502", resp.StatusCode)
	}
	if len(up.got) != 0 && up.path != "" {
		t.Errorf("faulted request reached upstream: path=%q", up.path)
	}
}

// The proxy's transport composes with resilience middleware: a transient
// connection failure on an idempotent request is retried transparently.
func TestRetryMiddlewareComposition(t *testing.T) {
	up := newUpstream(t)
	inj := faultinject.New(up.srv.Client().Transport, 1)
	inj.AddRule(faultinject.Rule{Kind: faultinject.KindConnError, Times: 1})
	rt := resilience.NewRetryTransport(inj, resilience.RetryPolicy{
		MaxAttempts: 3,
		Sleep:       func(time.Duration) {},
	})
	p, err := New(Config{Upstream: mustURL(t, up.srv.URL), Transport: rt})
	if err != nil {
		t.Fatal(err)
	}
	front := httptest.NewServer(p)
	defer front.Close()

	resp, err := http.Get(front.URL + "/wiki/page")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || string(body) != "upstream ok" {
		t.Errorf("status=%d body=%q after transparent retry", resp.StatusCode, body)
	}
	if got := inj.Attempts("/wiki/page"); got != 2 {
		t.Errorf("attempts=%d, want 2 (one fault, one retry)", got)
	}
	if s := rt.Stats(); s.Retries != 1 || s.GiveUps != 0 {
		t.Errorf("retry stats=%+v", s)
	}
}
