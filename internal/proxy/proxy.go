// Package proxy provides the §4.4 extension path for data that leaves the
// browser: "Imprecise data flow tracking should be extended to be aware of
// data sources outside the browser. This can be achieved by integrating
// with DLP systems that monitor data flow in native applications."
//
// The Proxy is an HTTP forwarding gateway for native applications: every
// request body passing through it is inspected by both the network DLP
// monitor (exact corpus fingerprints) and, optionally, the BrowserFlow
// policy engine (label-aware, destination-specific). Violating requests
// are rejected with 403 before reaching the upstream service.
package proxy

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"sync/atomic"

	"github.com/lsds/browserflow/internal/dlpmon"
	"github.com/lsds/browserflow/internal/obs"
	"github.com/lsds/browserflow/internal/policy"
)

// DefaultMaxBodyBytes bounds inspected request bodies (overridable with
// Config.MaxBodyBytes). The proxy buffers each body to inspect it, so an
// unbounded body is an easy memory-exhaustion vector.
const DefaultMaxBodyBytes = 8 << 20

// Config configures a Proxy.
type Config struct {
	// Upstream is the base URL requests are forwarded to (required).
	Upstream *url.URL

	// Monitor, if set, runs corpus fingerprint inspection on bodies.
	Monitor *dlpmon.Monitor

	// Engine, if set, additionally evaluates decoded body text against
	// the TDM policy for the destination service.
	Engine *policy.Engine

	// ServiceOf maps the forwarded request URL to a TDM service name for
	// Engine checks. Requests it rejects skip the policy check.
	ServiceOf func(*url.URL) (string, bool)

	// Transport performs the upstream requests (default
	// http.DefaultTransport).
	Transport http.RoundTripper

	// MaxBodyBytes bounds the request bodies the proxy buffers for
	// inspection (default DefaultMaxBodyBytes). Larger requests are
	// rejected with 413 before any inspection or forwarding.
	MaxBodyBytes int64

	// Obs, if set, makes the proxy the trace root: requests without an
	// X-BF-Trace header are minted one, every hop below (engine, WAL,
	// replica apply) attaches spans to it, and forward/block outcomes are
	// counted in the bundle's registry. Nil disables instrumentation.
	Obs *obs.Obs

	// MaxInflight bounds concurrently served requests. Arrivals past the
	// bound are shed immediately with 429 and a Retry-After hint instead
	// of queueing: the proxy buffers every body it inspects, so admitting
	// unbounded concurrency converts a traffic burst into memory growth.
	// 0 disables the gate.
	MaxInflight int
}

// Stats counts proxy outcomes.
type Stats struct {
	Forwarded int64
	Blocked   int64

	// Shed counts requests rejected with 429 by the MaxInflight gate.
	Shed int64
}

// Proxy is an inspecting HTTP forwarder. It implements http.Handler.
type Proxy struct {
	cfg      Config
	inflight chan struct{} // nil when MaxInflight is 0

	forwarded atomic.Int64
	blocked   atomic.Int64
	shed      atomic.Int64
}

var _ http.Handler = (*Proxy)(nil)

// New returns a Proxy.
func New(cfg Config) (*Proxy, error) {
	if cfg.Upstream == nil {
		return nil, fmt.Errorf("proxy: Upstream is required")
	}
	if cfg.Transport == nil {
		cfg.Transport = http.DefaultTransport
	}
	if cfg.MaxBodyBytes <= 0 {
		cfg.MaxBodyBytes = DefaultMaxBodyBytes
	}
	if cfg.Engine != nil && cfg.ServiceOf == nil {
		return nil, fmt.Errorf("proxy: Engine requires ServiceOf")
	}
	if cfg.MaxInflight < 0 {
		return nil, fmt.Errorf("proxy: MaxInflight must be >= 0")
	}
	p := &Proxy{cfg: cfg}
	if cfg.MaxInflight > 0 {
		p.inflight = make(chan struct{}, cfg.MaxInflight)
	}
	return p, nil
}

// Stats returns the forward/block/shed counters.
func (p *Proxy) Stats() Stats {
	return Stats{
		Forwarded: p.forwarded.Load(),
		Blocked:   p.blocked.Load(),
		Shed:      p.shed.Load(),
	}
}

// ServeHTTP inspects and forwards one request.
func (p *Proxy) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	// Inflight gate first: shed before buffering or inspecting anything,
	// so an overloaded proxy answers in constant time and memory.
	if p.inflight != nil {
		select {
		case p.inflight <- struct{}{}:
			defer func() { <-p.inflight }()
		default:
			p.shed.Add(1)
			if o := p.cfg.Obs; o != nil {
				o.Registry().Counter("bf_proxy_requests_total{outcome=\"shed\"}",
					"Proxy requests by outcome (forwarded, blocked, shed, error).").Add(1)
			}
			w.Header().Set("Retry-After", "1")
			http.Error(w, fmt.Sprintf("proxy: overloaded, %d requests in flight", p.cfg.MaxInflight), http.StatusTooManyRequests)
			return
		}
	}

	outcome := "error"
	if o := p.cfg.Obs; o != nil {
		trace := r.Header.Get(obs.TraceHeader)
		if trace == "" {
			trace = o.NewTraceID()
		}
		r = r.WithContext(obs.WithTrace(r.Context(), trace, o.Traces()))
		w.Header().Set(obs.TraceHeader, trace)
		sp := obs.StartSpan(r.Context(), "proxy.request")
		start := o.Registry().Now()
		defer func() {
			sp.SetAttr("outcome", outcome)
			sp.End(nil)
			reg := o.Registry()
			reg.Counter("bf_proxy_requests_total{outcome=\""+outcome+"\"}",
				"Proxy requests by outcome (forwarded, blocked, shed, error).").Add(1)
			reg.Histogram("bf_proxy_request_seconds",
				"Proxy end-to-end request latency.", nil).
				Observe(reg.Now().Sub(start))
		}()
	}

	body, err := p.readBody(w, r)
	if err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			p.blocked.Add(1)
			outcome = "blocked"
			http.Error(w, fmt.Sprintf("proxy: request body exceeds %d bytes", tooLarge.Limit), http.StatusRequestEntityTooLarge)
			return
		}
		http.Error(w, "proxy: read body: "+err.Error(), http.StatusBadGateway)
		return
	}

	target := p.cfg.Upstream.ResolveReference(&url.URL{Path: r.URL.Path, RawQuery: r.URL.RawQuery})

	// 1. Corpus fingerprint inspection (network DLP).
	if p.cfg.Monitor != nil {
		verdict, err := p.cfg.Monitor.InspectBody(r.Header.Get("Content-Type"), body)
		if err != nil {
			http.Error(w, "proxy: inspect: "+err.Error(), http.StatusBadGateway)
			return
		}
		if verdict.Blocked() {
			p.blocked.Add(1)
			outcome = "blocked"
			http.Error(w, fmt.Sprintf("proxy: blocked, request discloses %q", verdict.Matches[0].Name), http.StatusForbidden)
			return
		}
	}

	// 2. TDM policy evaluation against the destination service.
	if p.cfg.Engine != nil && len(body) > 0 {
		if service, ok := p.cfg.ServiceOf(target); ok {
			if text, ok := decodeText(r.Header.Get("Content-Type"), body); ok {
				verdict, err := p.cfg.Engine.CheckText(text, service)
				if err != nil {
					http.Error(w, "proxy: policy: "+err.Error(), http.StatusBadGateway)
					return
				}
				if verdict.Decision == policy.DecisionBlock {
					p.blocked.Add(1)
					outcome = "blocked"
					http.Error(w, fmt.Sprintf("proxy: blocked, discloses %v to %s", verdict.Violating, service), http.StatusForbidden)
					return
				}
			}
		}
	}

	// 3. Forward.
	out, err := http.NewRequestWithContext(r.Context(), r.Method, target.String(), bytes.NewReader(body))
	if err != nil {
		http.Error(w, "proxy: build request: "+err.Error(), http.StatusBadGateway)
		return
	}
	out.Header = r.Header.Clone()
	// Propagate the request trace to the upstream so its spans join ours.
	obs.StampRequest(out)
	resp, err := p.cfg.Transport.RoundTrip(out)
	if err != nil {
		http.Error(w, "proxy: upstream: "+err.Error(), http.StatusBadGateway)
		return
	}
	defer resp.Body.Close()
	p.forwarded.Add(1)
	outcome = "forwarded"

	for k, vs := range resp.Header {
		for _, v := range vs {
			w.Header().Add(k, v)
		}
	}
	w.WriteHeader(resp.StatusCode)
	if _, err := io.Copy(w, resp.Body); err != nil {
		// Response already partially written; nothing sensible to do.
		return
	}
}

// readBody buffers the request body for inspection, bounded by
// MaxBodyBytes: an oversized body surfaces as *http.MaxBytesError.
func (p *Proxy) readBody(w http.ResponseWriter, r *http.Request) ([]byte, error) {
	if r.Body == nil {
		return nil, nil
	}
	bounded := http.MaxBytesReader(w, r.Body, p.cfg.MaxBodyBytes)
	defer bounded.Close()
	return io.ReadAll(bounded)
}

// decodeText extracts scannable text using the same decoders as the DLP
// monitor.
func decodeText(contentType string, body []byte) (string, bool) {
	for _, dec := range []dlpmon.Decoder{dlpmon.FormDecoder, dlpmon.JSONDecoder} {
		if text, ok := dec(contentType, body); ok {
			return text, true
		}
	}
	return "", false
}
