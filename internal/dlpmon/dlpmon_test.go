package dlpmon

import (
	"encoding/base64"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"testing"

	"github.com/lsds/browserflow/internal/fingerprint"
)

const sensitive = "The board approved acquiring the storage startup for ninety million dollars, pending regulatory review in two jurisdictions."

func newMonitor(t *testing.T) *Monitor {
	t.Helper()
	m, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.AddSensitive("board-minutes", sensitive); err != nil {
		t.Fatal(err)
	}
	return m
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{Threshold: 2}); err == nil {
		t.Error("bad threshold accepted")
	}
	if _, err := New(Config{Fingerprint: fingerprint.Config{NGram: -1, Window: 1}}); err == nil {
		t.Error("bad fingerprint config accepted")
	}
	m, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	if m.CorpusSize() != 0 {
		t.Error("fresh monitor has corpus entries")
	}
}

func TestDetectsFormExfiltration(t *testing.T) {
	m := newMonitor(t)
	body := url.Values{"content": {sensitive}, "csrf": {"tok"}}.Encode()
	v, err := m.InspectBody("application/x-www-form-urlencoded", []byte(body))
	if err != nil {
		t.Fatal(err)
	}
	if !v.Inspected || !v.Blocked() {
		t.Fatalf("form exfiltration missed: %+v", v)
	}
	if v.Matches[0].Name != "board-minutes" || v.Matches[0].Containment < 0.9 {
		t.Errorf("match=%+v", v.Matches[0])
	}
}

func TestDetectsJSONExfiltration(t *testing.T) {
	m := newMonitor(t)
	body, _ := json.Marshal(map[string]interface{}{
		"op":   "replace",
		"par":  3,
		"text": sensitive,
	})
	v, err := m.InspectBody("application/json", body)
	if err != nil {
		t.Fatal(err)
	}
	if !v.Blocked() {
		t.Fatalf("JSON exfiltration missed: %+v", v)
	}
}

func TestCleanBodiesPass(t *testing.T) {
	m := newMonitor(t)
	body := url.Values{"content": {"A perfectly harmless status update about the cafeteria menu."}}.Encode()
	v, err := m.InspectBody("application/x-www-form-urlencoded", []byte(body))
	if err != nil {
		t.Fatal(err)
	}
	if v.Blocked() {
		t.Errorf("clean body blocked: %+v", v)
	}
}

// The baseline's core weakness: an obfuscated wire format (base64 JSON
// envelope) slips through because no decoder understands it.
func TestObfuscatedPayloadEvadesBaseline(t *testing.T) {
	m := newMonitor(t)
	inner, _ := json.Marshal(map[string][]string{"paragraphs": {sensitive}})
	envelope := url.Values{"payload": {base64.StdEncoding.EncodeToString(inner)}}.Encode()
	v, err := m.InspectBody("application/x-www-form-urlencoded", []byte(envelope))
	if err != nil {
		t.Fatal(err)
	}
	if v.Blocked() {
		t.Error("baseline unexpectedly saw through the obfuscated envelope")
	}
	if !v.Inspected {
		t.Error("form decoder should still have applied")
	}
}

func TestUnknownContentTypeNotInspected(t *testing.T) {
	m := newMonitor(t)
	v, err := m.InspectBody("application/octet-stream", []byte(sensitive))
	if err != nil {
		t.Fatal(err)
	}
	if v.Inspected || v.Blocked() {
		t.Errorf("binary body inspected: %+v", v)
	}
}

func TestInspectRequestRestoresBody(t *testing.T) {
	m := newMonitor(t)
	body := url.Values{"content": {sensitive}}.Encode()
	req := httptest.NewRequest("POST", "http://x/submit", strings.NewReader(body))
	req.Header.Set("Content-Type", "application/x-www-form-urlencoded")
	v, err := m.InspectRequest(req)
	if err != nil {
		t.Fatal(err)
	}
	if !v.Blocked() {
		t.Fatal("request not blocked")
	}
	// Body must be readable again.
	if err := req.ParseForm(); err != nil {
		t.Fatal(err)
	}
	if req.PostFormValue("content") != sensitive {
		t.Error("body not restored after inspection")
	}
}

func TestInspectRequestNilBody(t *testing.T) {
	m := newMonitor(t)
	req := httptest.NewRequest("GET", "http://x/", nil)
	req.Body = nil
	v, err := m.InspectRequest(req)
	if err != nil || v.Inspected {
		t.Errorf("nil body: v=%+v err=%v", v, err)
	}
}

func TestRoundTripperBlocks(t *testing.T) {
	m := newMonitor(t)
	reached := false
	backend := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		reached = true
	}))
	defer backend.Close()
	client := &http.Client{Transport: m.RoundTripper(nil)}

	// Sensitive form post blocked.
	_, err := client.PostForm(backend.URL, url.Values{"content": {sensitive}})
	if err == nil || !strings.Contains(err.Error(), "board-minutes") {
		t.Errorf("err=%v, want blocked error naming the document", err)
	}
	if reached {
		t.Error("blocked request reached the backend")
	}

	// Clean post passes.
	resp, err := client.PostForm(backend.URL, url.Values{"content": {"hello world"}})
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if !reached {
		t.Error("clean request did not reach the backend")
	}
}

func TestThresholdRespected(t *testing.T) {
	m, err := New(Config{Threshold: 0.9})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.AddSensitive("doc", sensitive); err != nil {
		t.Fatal(err)
	}
	// Half the document is below the 0.9 threshold.
	half := sensitive[:len(sensitive)/2]
	v, err := m.InspectBody("application/x-www-form-urlencoded", []byte(url.Values{"c": {half}}.Encode()))
	if err != nil {
		t.Fatal(err)
	}
	if v.Blocked() {
		t.Errorf("partial copy blocked at threshold 0.9: %+v", v)
	}
}

func TestDecoders(t *testing.T) {
	if _, ok := FormDecoder("text/plain", nil); ok {
		t.Error("FormDecoder applied to wrong type")
	}
	if _, ok := JSONDecoder("application/json", []byte("{bad")); ok {
		t.Error("JSONDecoder accepted malformed JSON")
	}
	text, ok := JSONDecoder("application/json", []byte(`{"a":["x","y"],"b":{"c":"z"}}`))
	if !ok || !strings.Contains(text, "x") || !strings.Contains(text, "z") {
		t.Errorf("JSONDecoder=%q,%v", text, ok)
	}
}
