// Package dlpmon implements the comparison baseline of §2.2: a
// network-level data-leakage-prevention (DLP) monitor in the style of
// application-level firewalls. It inspects *outgoing HTTP request bodies*
// for fingerprint matches against a corpus of sensitive documents and can
// block matching requests.
//
// The baseline deliberately has the limitations the paper attributes to
// network DLP:
//
//   - it only understands wire formats it has decoders for (form-encoded
//     and JSON by default) — obfuscated or proprietary formats must be
//     reverse-engineered per service;
//   - it sees data only at the network boundary, after any client-side
//     encoding/encryption; and
//   - it has no notion of labels or transitive propagation: it can only
//     compare bytes against the registered corpus.
//
// BrowserFlow's in-browser interception avoids all three (§5), which the
// RunBaselineComparison experiment quantifies.
package dlpmon

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"sort"
	"strings"
	"sync"

	"github.com/lsds/browserflow/internal/fingerprint"
)

// Match is one sensitive document detected in an outgoing request.
type Match struct {
	// Name identifies the sensitive document.
	Name string

	// Containment is the fraction of the document's fingerprint found in
	// the request body.
	Containment float64
}

// Verdict is the outcome of inspecting one request.
type Verdict struct {
	// Inspected reports whether any decoder produced text to scan.
	Inspected bool

	// Matches lists the sensitive documents the body disclosed, by
	// descending containment.
	Matches []Match
}

// Blocked reports whether the monitor would block the request.
func (v Verdict) Blocked() bool { return len(v.Matches) > 0 }

// Decoder extracts scannable text from a request body of a given content
// type. ok=false means the decoder does not apply.
type Decoder func(contentType string, body []byte) (text string, ok bool)

// FormDecoder handles application/x-www-form-urlencoded bodies by
// concatenating all field values.
func FormDecoder(contentType string, body []byte) (string, bool) {
	if !strings.HasPrefix(contentType, "application/x-www-form-urlencoded") {
		return "", false
	}
	values, err := url.ParseQuery(string(body))
	if err != nil {
		return "", false
	}
	var parts []string
	for _, vs := range values {
		parts = append(parts, vs...)
	}
	sort.Strings(parts)
	return strings.Join(parts, "\n"), true
}

// JSONDecoder handles application/json bodies by collecting every string
// value in the document.
func JSONDecoder(contentType string, body []byte) (string, bool) {
	if !strings.HasPrefix(contentType, "application/json") {
		return "", false
	}
	var doc interface{}
	if err := json.Unmarshal(body, &doc); err != nil {
		return "", false
	}
	var parts []string
	collectStrings(doc, &parts)
	return strings.Join(parts, "\n"), true
}

func collectStrings(v interface{}, out *[]string) {
	switch x := v.(type) {
	case string:
		*out = append(*out, x)
	case []interface{}:
		for _, e := range x {
			collectStrings(e, out)
		}
	case map[string]interface{}:
		keys := make([]string, 0, len(x))
		for k := range x {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			collectStrings(x[k], out)
		}
	}
}

// Config configures a Monitor.
type Config struct {
	// Fingerprint holds the winnowing parameters (defaults to the paper's
	// 15/30 when zero).
	Fingerprint fingerprint.Config

	// Threshold is the containment above which a document counts as
	// disclosed (defaults to 0.5).
	Threshold float64

	// Decoders are tried in order; the first that applies wins. Defaults
	// to FormDecoder then JSONDecoder.
	Decoders []Decoder
}

// Monitor is a network-level DLP scanner. It is safe for concurrent use.
type Monitor struct {
	cfg Config

	mu     sync.RWMutex
	corpus map[string]*fingerprint.Fingerprint
}

// New returns a Monitor.
func New(cfg Config) (*Monitor, error) {
	if cfg.Fingerprint == (fingerprint.Config{}) {
		cfg.Fingerprint = fingerprint.DefaultConfig()
	}
	if err := cfg.Fingerprint.Validate(); err != nil {
		return nil, err
	}
	if cfg.Threshold == 0 {
		cfg.Threshold = 0.5
	}
	if cfg.Threshold < 0 || cfg.Threshold > 1 {
		return nil, fmt.Errorf("dlpmon: threshold %v out of [0,1]", cfg.Threshold)
	}
	if cfg.Decoders == nil {
		cfg.Decoders = []Decoder{FormDecoder, JSONDecoder}
	}
	return &Monitor{
		cfg:    cfg,
		corpus: make(map[string]*fingerprint.Fingerprint),
	}, nil
}

// AddSensitive registers a sensitive document under name.
func (m *Monitor) AddSensitive(name, text string) error {
	fp, err := fingerprint.Compute(text, m.cfg.Fingerprint)
	if err != nil {
		return err
	}
	m.mu.Lock()
	m.corpus[name] = fp
	m.mu.Unlock()
	return nil
}

// CorpusSize returns the number of registered documents.
func (m *Monitor) CorpusSize() int {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return len(m.corpus)
}

// InspectBody scans a raw body with the configured decoders.
func (m *Monitor) InspectBody(contentType string, body []byte) (Verdict, error) {
	var text string
	decoded := false
	for _, dec := range m.cfg.Decoders {
		if t, ok := dec(contentType, body); ok {
			text, decoded = t, true
			break
		}
	}
	if !decoded {
		return Verdict{}, nil
	}
	bodyFP, err := fingerprint.Compute(text, m.cfg.Fingerprint)
	if err != nil {
		return Verdict{}, err
	}
	verdict := Verdict{Inspected: true}
	m.mu.RLock()
	defer m.mu.RUnlock()
	for name, fp := range m.corpus {
		if fp.Empty() {
			continue
		}
		if c := fp.Containment(bodyFP); c >= m.cfg.Threshold {
			verdict.Matches = append(verdict.Matches, Match{Name: name, Containment: c})
		}
	}
	sort.Slice(verdict.Matches, func(i, j int) bool {
		if verdict.Matches[i].Containment != verdict.Matches[j].Containment {
			return verdict.Matches[i].Containment > verdict.Matches[j].Containment
		}
		return verdict.Matches[i].Name < verdict.Matches[j].Name
	})
	return verdict, nil
}

// InspectRequest scans an *http.Request, restoring its body for onward
// transmission.
func (m *Monitor) InspectRequest(req *http.Request) (Verdict, error) {
	if req.Body == nil {
		return Verdict{}, nil
	}
	body, err := io.ReadAll(req.Body)
	req.Body.Close()
	if err != nil {
		return Verdict{}, fmt.Errorf("dlpmon: read body: %w", err)
	}
	req.Body = io.NopCloser(bytes.NewReader(body))
	return m.InspectBody(req.Header.Get("Content-Type"), body)
}

// blockedError is returned through the transport when a request matches.
type blockedError struct {
	matches []Match
}

func (e *blockedError) Error() string {
	names := make([]string, len(e.matches))
	for i, m := range e.matches {
		names[i] = m.Name
	}
	return "dlpmon: request blocked, discloses " + strings.Join(names, ", ")
}

// RoundTripper wraps next so that matching requests are blocked at the
// network boundary — the application-firewall deployment model.
func (m *Monitor) RoundTripper(next http.RoundTripper) http.RoundTripper {
	if next == nil {
		next = http.DefaultTransport
	}
	return roundTripperFunc(func(req *http.Request) (*http.Response, error) {
		verdict, err := m.InspectRequest(req)
		if err != nil {
			return nil, err
		}
		if verdict.Blocked() {
			return nil, &blockedError{matches: verdict.Matches}
		}
		return next.RoundTrip(req)
	})
}

type roundTripperFunc func(*http.Request) (*http.Response, error)

func (f roundTripperFunc) RoundTrip(req *http.Request) (*http.Response, error) {
	return f(req)
}
