// Package rollhash implements a 32-bit Karp–Rabin rolling hash over
// fixed-length byte windows.
//
// It is the hash function used in step S2 of BrowserFlow's fingerprinting
// pipeline (§4.1 of the paper): every n-gram of the normalised text is hashed
// with an efficient rolling hash so that fingerprinting a text segment costs
// O(len) regardless of the n-gram length.
package rollhash

import "errors"

// Base is the multiplier of the polynomial hash. It is a prime chosen so that
// consecutive window hashes distribute well across the 32-bit space.
const Base uint32 = 16777619

// ErrWindowSize reports an invalid (non-positive) window length.
var ErrWindowSize = errors.New("rollhash: window length must be positive")

// Hasher computes rolling hashes over a sliding window of n bytes.
//
// Feed bytes one at a time with Roll; once n bytes have been written, Roll
// reports the hash of the last n bytes. The zero value is not usable; create
// a Hasher with New.
type Hasher struct {
	n     int
	pow   uint32 // Base^(n-1), used to remove the outgoing byte
	hash  uint32
	ring  []byte
	pos   int
	count int
}

// New returns a Hasher over windows of n bytes.
func New(n int) (*Hasher, error) {
	h := &Hasher{}
	if err := h.Init(n); err != nil {
		return nil, err
	}
	return h, nil
}

// Init (re)configures h for windows of n bytes, clearing any buffered
// state. The ring buffer is reused when it already has capacity, so a
// Hasher embedded in a caller's scratch space can switch window lengths —
// or be reset for a new input — without allocating.
func (h *Hasher) Init(n int) error {
	if n <= 0 {
		return ErrWindowSize
	}
	pow := uint32(1)
	for i := 0; i < n-1; i++ {
		pow *= Base
	}
	h.n = n
	h.pow = pow
	if cap(h.ring) < n {
		h.ring = make([]byte, n)
	} else {
		h.ring = h.ring[:n]
	}
	h.Reset()
	return nil
}

// WindowLen returns the configured window length n.
func (h *Hasher) WindowLen() int { return h.n }

// Roll feeds one byte into the window. It returns the hash of the most
// recent n bytes and true once at least n bytes have been written; before
// that it returns 0 and false.
func (h *Hasher) Roll(b byte) (uint32, bool) {
	if h.count >= h.n {
		out := h.ring[h.pos]
		h.hash -= uint32(out) * h.pow
	} else {
		h.count++
	}
	h.hash = h.hash*Base + uint32(b)
	h.ring[h.pos] = b
	h.pos++
	if h.pos == h.n {
		h.pos = 0
	}
	if h.count < h.n {
		return 0, false
	}
	return h.hash, true
}

// Reset clears the window so the Hasher can be reused on a new input.
func (h *Hasher) Reset() {
	h.hash = 0
	h.pos = 0
	h.count = 0
}

// Sum returns the hash of data, which must be exactly one window long for
// the result to be comparable with Roll outputs of a Hasher with n ==
// len(data). It is primarily a test oracle: Sum(data) equals the rolling
// hash produced after writing each byte of data in order.
func Sum(data []byte) uint32 {
	var hash uint32
	for _, b := range data {
		hash = hash*Base + uint32(b)
	}
	return hash
}

// AppendNGrams appends the rolling hashes of every n-gram of data to dst
// and returns the extended slice, resetting h first. Inputs shorter than
// one window append nothing. With a warm Hasher and sufficient capacity in
// dst the call performs no allocations — the S2 building block of the
// zero-allocation fingerprinting scratch path.
func (h *Hasher) AppendNGrams(dst []uint32, data []byte) []uint32 {
	if len(data) < h.n {
		return dst
	}
	h.Reset()
	for _, b := range data {
		if v, ok := h.Roll(b); ok {
			dst = append(dst, v)
		}
	}
	return dst
}

// AppendNGrams appends the rolling hashes of every n-gram of data to dst.
// It is the capacity-reusing form of NGrams.
func AppendNGrams(dst []uint32, data []byte, n int) ([]uint32, error) {
	var h Hasher
	if err := h.Init(n); err != nil {
		return dst, err
	}
	return h.AppendNGrams(dst, data), nil
}

// NGrams returns the rolling hashes of every n-gram of data, in order. It
// returns nil if data holds fewer than n bytes.
func NGrams(data []byte, n int) ([]uint32, error) {
	if n <= 0 {
		return nil, ErrWindowSize
	}
	if len(data) < n {
		return nil, nil
	}
	var h Hasher
	if err := h.Init(n); err != nil {
		return nil, err
	}
	return h.AppendNGrams(make([]uint32, 0, len(data)-n+1), data), nil
}
