package rollhash

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewRejectsBadWindow(t *testing.T) {
	for _, n := range []int{0, -1, -100} {
		if _, err := New(n); err == nil {
			t.Errorf("New(%d): want error, got nil", n)
		}
	}
}

func TestRollMatchesSum(t *testing.T) {
	tests := []struct {
		name string
		data string
		n    int
	}{
		{name: "exact window", data: "hellow", n: 6},
		{name: "longer input", data: "helloworld", n: 6},
		{name: "window one", data: "abc", n: 1},
		{name: "binary bytes", data: "\x00\xff\x10\x20\x30", n: 3},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			h, err := New(tt.n)
			if err != nil {
				t.Fatalf("New(%d): %v", tt.n, err)
			}
			data := []byte(tt.data)
			for i, b := range data {
				got, ok := h.Roll(b)
				wantOK := i >= tt.n-1
				if ok != wantOK {
					t.Fatalf("Roll #%d: ok=%v, want %v", i, ok, wantOK)
				}
				if !ok {
					continue
				}
				want := Sum(data[i-tt.n+1 : i+1])
				if got != want {
					t.Errorf("Roll #%d: hash=%#x, want %#x", i, got, want)
				}
			}
		})
	}
}

func TestRollIncompleteWindow(t *testing.T) {
	h, err := New(10)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 9; i++ {
		if v, ok := h.Roll('a'); ok || v != 0 {
			t.Fatalf("Roll #%d before window full: got (%d,%v), want (0,false)", i, v, ok)
		}
	}
	if _, ok := h.Roll('a'); !ok {
		t.Fatal("Roll #10: window full, want ok=true")
	}
}

func TestReset(t *testing.T) {
	h, err := New(3)
	if err != nil {
		t.Fatal(err)
	}
	feed := func(s string) (last uint32) {
		for _, b := range []byte(s) {
			if v, ok := h.Roll(b); ok {
				last = v
			}
		}
		return last
	}
	first := feed("abcdef")
	h.Reset()
	second := feed("abcdef")
	if first != second {
		t.Errorf("hash after Reset differs: %#x vs %#x", first, second)
	}
}

func TestNGrams(t *testing.T) {
	hashes, err := NGrams([]byte("helloworld"), 6)
	if err != nil {
		t.Fatal(err)
	}
	if len(hashes) != 5 {
		t.Fatalf("len(hashes)=%d, want 5", len(hashes))
	}
	want := []uint32{
		Sum([]byte("hellow")),
		Sum([]byte("ellowo")),
		Sum([]byte("llowor")),
		Sum([]byte("loworl")),
		Sum([]byte("oworld")),
	}
	for i, w := range want {
		if hashes[i] != w {
			t.Errorf("hashes[%d]=%#x, want %#x", i, hashes[i], w)
		}
	}
}

func TestNGramsShortInput(t *testing.T) {
	hashes, err := NGrams([]byte("hi"), 6)
	if err != nil {
		t.Fatal(err)
	}
	if hashes != nil {
		t.Errorf("NGrams on short input: got %v, want nil", hashes)
	}
}

func TestNGramsBadWindow(t *testing.T) {
	if _, err := NGrams([]byte("hi"), 0); err == nil {
		t.Error("NGrams(n=0): want error")
	}
}

// Property: the rolling hash of any window equals the direct polynomial sum
// of that window, for random inputs and window sizes.
func TestQuickRollEquivalence(t *testing.T) {
	f := func(data []byte, nRaw uint8) bool {
		n := int(nRaw)%16 + 1
		if len(data) < n {
			return true
		}
		got, err := NGrams(data, n)
		if err != nil {
			return false
		}
		for i := range got {
			if got[i] != Sum(data[i:i+n]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// Property: equal windows hash equally regardless of surrounding context
// (shift invariance), the key property winnowing relies on.
func TestQuickShiftInvariance(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	const n = 8
	window := make([]byte, n)
	for trial := 0; trial < 200; trial++ {
		rng.Read(window)
		prefix := make([]byte, rng.Intn(32))
		rng.Read(prefix)
		data := append(append([]byte{}, prefix...), window...)
		hashes, err := NGrams(data, n)
		if err != nil {
			t.Fatal(err)
		}
		if got, want := hashes[len(hashes)-1], Sum(window); got != want {
			t.Fatalf("trial %d: embedded window hash %#x, want %#x", trial, got, want)
		}
	}
}

func BenchmarkRoll(b *testing.B) {
	h, err := New(15)
	if err != nil {
		b.Fatal(err)
	}
	data := make([]byte, 4096)
	rand.New(rand.NewSource(1)).Read(data)
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Reset()
		for _, c := range data {
			h.Roll(c)
		}
	}
}
