package browserflow

// Concurrency stress: many simulated users observing, checking and
// declassifying against one Middleware. Run with -race; correctness
// assertions are coarse (counts, no panics) since interleavings vary.

import (
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"testing"
)

func TestStressConcurrentUsers(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test")
	}
	mw := newMW(t, ModeAdvisory)

	words := []string{"ledger", "invoice", "payroll", "forecast", "audit",
		"budget", "reserve", "accrual", "margin", "liability", "equity", "asset"}
	mkText := func(rng *rand.Rand, n int) string {
		var sb strings.Builder
		for i := 0; i < n; i++ {
			sb.WriteString(words[rng.Intn(len(words))])
			sb.WriteByte(' ')
		}
		return sb.String()
	}

	const workers = 8
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for u := 0; u < workers; u++ {
		wg.Add(1)
		go func(user int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(user)))
			service := []string{"wiki", "itool", "docs"}[user%3]
			for i := 0; i < 60; i++ {
				seg := SegmentID(fmt.Sprintf("%s/u%d#p%d", service, user, i%10))
				text := mkText(rng, 30)
				if _, err := mw.ObserveParagraph(service, seg, text); err != nil {
					errs <- err
					return
				}
				if _, err := mw.CheckText(text, "docs"); err != nil {
					errs <- err
					return
				}
				if i%13 == 0 {
					if _, err := mw.Sources(text); err != nil {
						errs <- err
						return
					}
					mw.SetParagraphThreshold(seg, 0.4)
				}
				if i%17 == 0 {
					label := mw.Label(seg)
					if label == nil {
						errs <- fmt.Errorf("user %d: segment %s lost its label", user, seg)
						return
					}
				}
				if i%23 == 0 && service != "docs" {
					tag := Tag(service[0:1] + string(rune('t'+0)))
					_ = tag
					// Suppress the service's own tag on the segment.
					want := Tag("tw")
					if service == "itool" {
						want = "ti"
					}
					if err := mw.Suppress(fmt.Sprintf("user%d", user), seg, want, "stress"); err != nil {
						errs <- fmt.Errorf("suppress: %w", err)
						return
					}
				}
			}
		}(u)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	stats := mw.Stats()
	if stats.ParagraphSegments != workers*10 {
		t.Errorf("segments=%d, want %d", stats.ParagraphSegments, workers*10)
	}
	if stats.AuditEntries == 0 {
		t.Error("no audit entries recorded")
	}
}

func TestStressConcurrentSaveLoad(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test")
	}
	mw := newMW(t, ModeAdvisory)
	dir := t.TempDir()
	var wg sync.WaitGroup
	for u := 0; u < 4; u++ {
		wg.Add(1)
		go func(user int) {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				seg := SegmentID(fmt.Sprintf("wiki/s%d#p%d", user, i))
				if _, err := mw.ObserveParagraph("wiki", seg, guide+fmt.Sprint(user, i)); err != nil {
					t.Error(err)
					return
				}
				if i%5 == 0 {
					path := fmt.Sprintf("%s/state-%d.bf", dir, user)
					if err := mw.Save(path, ""); err != nil {
						t.Error(err)
						return
					}
				}
			}
		}(u)
	}
	wg.Wait()
}
