package browserflow

// The benchmark harness regenerates every table and figure of the paper's
// evaluation (§6). Each benchmark reports the headline metric(s) of its
// table/figure through b.ReportMetric, so `go test -bench=. -benchmem`
// yields the same rows/series the paper plots; cmd/bfbench prints the full
// series. Scales are laptop-sized here — use `bfbench -scale paper` for
// corpus sizes approaching Table 1.

import (
	"strings"
	"testing"

	"github.com/lsds/browserflow/internal/disclosure"
	"github.com/lsds/browserflow/internal/expt"
	"github.com/lsds/browserflow/internal/fingerprint"
)

// benchScale keeps -bench=. runs fast while preserving shapes.
func benchScale() expt.Scale {
	return expt.Scale{
		Seed:              1,
		Revisions:         60,
		ArticleParagraphs: 12,
		Books:             3,
		BookMinBytes:      30 << 10,
		BookMaxBytes:      60 << 10,
	}
}

// BenchmarkTable1Datasets regenerates the Table 1 dataset summary.
func BenchmarkTable1Datasets(b *testing.B) {
	var rows int
	for i := 0; i < b.N; i++ {
		r := expt.RunTable1(benchScale())
		rows = len(r.Rows)
	}
	b.ReportMetric(float64(rows), "table-rows")
}

// BenchmarkFigure8LengthChange regenerates the article length-change CDF.
func BenchmarkFigure8LengthChange(b *testing.B) {
	var median float64
	for i := 0; i < b.N; i++ {
		r := expt.RunFigure8(benchScale())
		median = r.Points[len(r.Points)/2].RelChange
	}
	b.ReportMetric(median, "median-rel-change")
}

// BenchmarkFigure9aStableArticles regenerates the stable-article
// disclosure curves; the reported metric is the mean final disclosure
// percentage (paper: stays near 100%).
func BenchmarkFigure9aStableArticles(b *testing.B) {
	benchFigure9(b, true)
}

// BenchmarkFigure9bVolatileArticles regenerates the volatile-article
// curves (paper: decays towards zero).
func BenchmarkFigure9bVolatileArticles(b *testing.B) {
	benchFigure9(b, false)
}

func benchFigure9(b *testing.B, stable bool) {
	b.Helper()
	var finalPct float64
	for i := 0; i < b.N; i++ {
		r, err := expt.RunFigure9(benchScale(), stable, 6, fingerprint.DefaultConfig(), 0.5)
		if err != nil {
			b.Fatal(err)
		}
		finalPct = 0
		for _, s := range r.Series {
			finalPct += s.FinalPct()
		}
		finalPct /= float64(len(r.Series))
	}
	b.ReportMetric(finalPct, "final-disclosing-%")
}

// BenchmarkFigure10Manuals regenerates the manuals comparison; the metric
// is the mean absolute gap between BrowserFlow and ground truth.
func BenchmarkFigure10Manuals(b *testing.B) {
	var gap float64
	for i := 0; i < b.N; i++ {
		r, err := expt.RunFigure10(benchScale(), fingerprint.DefaultConfig(), 0.5)
		if err != nil {
			b.Fatal(err)
		}
		var total float64
		var n int
		for _, c := range r.Chapters {
			for _, row := range c.Rows {
				d := row.BrowserFlowPct - row.GroundTruthPct
				if d < 0 {
					d = -d
				}
				total += d
				n++
			}
		}
		gap = total / float64(n)
	}
	b.ReportMetric(gap, "mean-gap-pct")
}

// BenchmarkFigure11ThresholdSweep regenerates the Tpar sweep; the metric
// is the detected/ground-truth ratio at the paper's default Tpar = 0.5.
func BenchmarkFigure11ThresholdSweep(b *testing.B) {
	var ratio float64
	for i := 0; i < b.N; i++ {
		r, err := expt.RunFigure11(benchScale(), fingerprint.DefaultConfig(), 0.1)
		if err != nil {
			b.Fatal(err)
		}
		ratio = r.RatioAt(0.5)
	}
	b.ReportMetric(ratio, "ratio-at-0.5")
}

// BenchmarkFigure12ResponseTime regenerates the three editing workflows;
// metrics are the per-workflow P99 in milliseconds (paper: 99% < 200 ms).
func BenchmarkFigure12ResponseTime(b *testing.B) {
	var r expt.Fig12Result
	var err error
	for i := 0; i < b.N; i++ {
		r, err = expt.RunFigure12(benchScale(), disclosure.DefaultParams())
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(r.W1.P99.Microseconds())/1000, "w1-p99-ms")
	b.ReportMetric(float64(r.W2.P99.Microseconds())/1000, "w2-p99-ms")
	b.ReportMetric(float64(r.W3.P99.Microseconds())/1000, "w3-p99-ms")
}

// BenchmarkFigure13Scalability regenerates the database-size scaling
// curve; the metric is the P95 growth factor from the smallest to the
// largest database (paper: sub-linear in hash count).
func BenchmarkFigure13Scalability(b *testing.B) {
	var growth, hashGrowth float64
	for i := 0; i < b.N; i++ {
		r, err := expt.RunFigure13(benchScale(), disclosure.DefaultParams(), 3, 6)
		if err != nil {
			b.Fatal(err)
		}
		first, last := r.Points[0], r.Points[len(r.Points)-1]
		if first.P95 > 0 {
			growth = float64(last.P95) / float64(first.P95)
		}
		if first.Hashes > 0 {
			hashGrowth = float64(last.Hashes) / float64(first.Hashes)
		}
	}
	b.ReportMetric(growth, "p95-growth")
	b.ReportMetric(hashGrowth, "hash-growth")
}

// BenchmarkAblationCache measures the decision cache's effect on typing
// latency (DESIGN.md ablation; backs the Figure 12 <30 ms mass).
func BenchmarkAblationCache(b *testing.B) {
	var r expt.AblationCacheResult
	var err error
	for i := 0; i < b.N; i++ {
		r, err = expt.RunAblationCache(benchScale(), disclosure.DefaultParams())
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(r.HitRate, "hit-rate")
	b.ReportMetric(float64(r.HitMedian.Nanoseconds())/1e6, "hit-p50-ms")
	b.ReportMetric(float64(r.MissMedian.Nanoseconds())/1e6, "miss-p50-ms")
}

// BenchmarkAblationAuthoritative measures the Figure 7 overlap false
// positives with and without authoritative fingerprints.
func BenchmarkAblationAuthoritative(b *testing.B) {
	var r expt.AblationAuthoritativeResult
	var err error
	for i := 0; i < b.N; i++ {
		r, err = expt.RunAblationAuthoritative(benchScale(), disclosure.DefaultParams(), 10)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(r.FalsePositivesWith), "fp-with-auth")
	b.ReportMetric(float64(r.FalsePositivesWithout), "fp-without-auth")
}

// BenchmarkAblationWinnowParams sweeps the fingerprinting parameter grid.
func BenchmarkAblationWinnowParams(b *testing.B) {
	var points int
	for i := 0; i < b.N; i++ {
		r, err := expt.RunAblationWinnowParams(benchScale())
		if err != nil {
			b.Fatal(err)
		}
		points = len(r.Points)
	}
	b.ReportMetric(float64(points), "grid-points")
}

// BenchmarkBaselineComparison replays the §2.2 exfiltration scenarios
// against BrowserFlow and the network-DLP baseline; metrics are the
// detection counts out of 3 scenarios.
func BenchmarkBaselineComparison(b *testing.B) {
	var bf, dlp int
	for i := 0; i < b.N; i++ {
		r, err := expt.RunBaselineComparison(benchScale(), disclosure.DefaultParams())
		if err != nil {
			b.Fatal(err)
		}
		bf, dlp = 0, 0
		for _, s := range r.Scenarios {
			if s.BrowserFlow {
				bf++
			}
			if s.NetworkDLP {
				dlp++
			}
		}
	}
	b.ReportMetric(float64(bf), "browserflow-detected")
	b.ReportMetric(float64(dlp), "networkdlp-detected")
}

// BenchmarkOrgSim runs the end-to-end organisation simulation; metrics are
// precision and recall against the simulation's ground truth.
func BenchmarkOrgSim(b *testing.B) {
	var r expt.OrgSimResult
	var err error
	for i := 0; i < b.N; i++ {
		cfg := expt.DefaultOrgSimConfig()
		cfg.Events = 200
		r, err = expt.RunOrgSim(cfg, disclosure.DefaultParams())
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(r.Precision(), "precision")
	b.ReportMetric(r.Recall(), "recall")
	b.ReportMetric(r.DetectableRecall(), "detectable-recall")
}

// BenchmarkMiddlewareObserve measures the end-to-end public-API
// observation path with a populated database.
func BenchmarkMiddlewareObserve(b *testing.B) {
	mw, err := New(DefaultConfig(), paperServices()...)
	if err != nil {
		b.Fatal(err)
	}
	base := strings.Repeat("Sensitive quarterly figures and staffing plans for the next two fiscal years. ", 4)
	for i := 0; i < 100; i++ {
		seg := SegmentID("wiki/seed#" + string(rune('a'+i%26)) + string(rune('a'+(i/26)%26)))
		if _, err := mw.ObserveParagraph("wiki", seg, base+string(rune('a'+i%26))); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := mw.ObserveParagraph("docs", "docs/probe#p0", base); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMiddlewareCheckText measures the form-interception path.
func BenchmarkMiddlewareCheckText(b *testing.B) {
	mw, err := New(DefaultConfig(), paperServices()...)
	if err != nil {
		b.Fatal(err)
	}
	text := strings.Repeat("Authoritative source paragraph that the probe text fully contains today. ", 4)
	if _, err := mw.ObserveParagraph("wiki", "wiki/src#p0", text); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := mw.CheckText(text, "docs"); err != nil {
			b.Fatal(err)
		}
	}
}
