package main

import (
	"bytes"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"github.com/lsds/browserflow/internal/obs"
)

// obsTestServer serves the observability surface of a node with a few
// recorded spans and metrics.
func obsTestServer(t *testing.T) (*httptest.Server, *obs.Obs) {
	t.Helper()
	o := obs.New(nil, 64)
	o.Registry().Counter("bf_test_total", "Test counter.").Add(7)
	mux := http.NewServeMux()
	mux.Handle("/v1/metrics", o.MetricsHandler())
	mux.Handle("/v1/debug/traces", o.TracesHandler())
	srv := httptest.NewServer(mux)
	t.Cleanup(srv.Close)
	return srv, o
}

func TestBfctlMetrics(t *testing.T) {
	srv, _ := obsTestServer(t)
	var out bytes.Buffer
	if err := run([]string{"-server", srv.URL, "metrics"}, strings.NewReader(""), &out); err != nil {
		t.Fatalf("metrics: %v", err)
	}
	if !strings.Contains(out.String(), "bf_test_total 7") {
		t.Fatalf("metrics output missing counter:\n%s", out.String())
	}
}

func TestBfctlTrace(t *testing.T) {
	srv, o := obsTestServer(t)
	id := o.NewTraceID()
	ctx := obs.WithTrace(t.Context(), id, o.Traces())
	sp := obs.StartSpan(ctx, "engine.observe")
	sp.SetAttr("seg", "wiki/a#p0")
	sp.End(nil)

	var out bytes.Buffer
	if err := run([]string{"-server", srv.URL, "trace", id}, strings.NewReader(""), &out); err != nil {
		t.Fatalf("trace: %v", err)
	}
	got := out.String()
	if !strings.Contains(got, id) || !strings.Contains(got, "engine.observe") || !strings.Contains(got, "seg=wiki/a#p0") {
		t.Fatalf("trace output missing span details:\n%s", got)
	}

	// Listing mode: no ID enumerates buffered trace IDs.
	out.Reset()
	if err := run([]string{"-server", srv.URL, "trace"}, strings.NewReader(""), &out); err != nil {
		t.Fatalf("trace list: %v", err)
	}
	if !strings.Contains(out.String(), id) || !strings.Contains(out.String(), "1 span(s)") {
		t.Fatalf("trace listing missing id:\n%s", out.String())
	}
}

func TestBfctlMetricsRequiresServer(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"metrics"}, strings.NewReader(""), &out); err == nil {
		t.Fatal("expected error without -server")
	}
	if err := run([]string{"trace", "bf-x"}, strings.NewReader(""), &out); err == nil {
		t.Fatal("expected error without -server")
	}
}
