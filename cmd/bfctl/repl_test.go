package main

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
)

// fakeReplNode serves just enough of the /v1/repl/* API for CLI tests.
type fakeReplNode struct {
	status   replStatus
	promoted atomic.Bool
	fences   atomic.Int64
	lastTerm atomic.Uint64
	srv      *httptest.Server
}

func newFakeReplNode(t *testing.T, status replStatus) *fakeReplNode {
	t.Helper()
	n := &fakeReplNode{status: status}
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/repl/status", func(w http.ResponseWriter, r *http.Request) {
		json.NewEncoder(w).Encode(n.status) //nolint:errcheck
	})
	mux.HandleFunc("/v1/repl/promote", func(w http.ResponseWriter, r *http.Request) {
		n.promoted.Store(true)
		json.NewEncoder(w).Encode(map[string]any{ //nolint:errcheck
			"promoted": true, "role": "primary",
			"term": n.status.Term + 1, "primary": n.srv.URL,
		})
	})
	mux.HandleFunc("/v1/repl/fence", func(w http.ResponseWriter, r *http.Request) {
		var body struct {
			Term    uint64 `json:"term"`
			Primary string `json:"primary"`
		}
		if err := json.NewDecoder(r.Body).Decode(&body); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		n.fences.Add(1)
		n.lastTerm.Store(body.Term)
		json.NewEncoder(w).Encode(map[string]any{ //nolint:errcheck
			"role": "fenced", "term": body.Term, "primary": body.Primary, "fenced": true,
		})
	})
	n.srv = httptest.NewServer(mux)
	t.Cleanup(n.srv.Close)
	return n
}

func replCtl(t *testing.T, args ...string) (string, error) {
	t.Helper()
	var out bytes.Buffer
	err := run(args, strings.NewReader(""), &out)
	return out.String(), err
}

func TestReplStatusCommand(t *testing.T) {
	node := newFakeReplNode(t, replStatus{
		Role: "replica", Term: 2, Primary: "http://primary:7000",
		Position: "4,1234", LagRecords: 7, AppliedRecords: 900, Connected: true,
	})
	out, err := replCtl(t, "-server", node.srv.URL, "repl-status")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"role:     replica", "term:     2", "lag:      7 records", "position: 4,1234"} {
		if !strings.Contains(out, want) {
			t.Errorf("repl-status output missing %q:\n%s", want, out)
		}
	}
}

// promote refuses to abandon acked writes: a replica that still lags its
// primary is not promoted unless the operator forces it.
func TestPromoteRefusesLaggingReplica(t *testing.T) {
	node := newFakeReplNode(t, replStatus{Role: "replica", Term: 0, LagRecords: 5, Connected: true})
	_, err := replCtl(t, "-server", node.srv.URL, "promote")
	if err == nil || !strings.Contains(err.Error(), "lags") {
		t.Fatalf("promote on lagging replica: err = %v, want lag refusal", err)
	}
	if node.promoted.Load() {
		t.Error("lagging replica was promoted anyway")
	}

	if _, err := replCtl(t, "-server", node.srv.URL, "-force", "promote"); err != nil {
		t.Fatalf("forced promote: %v", err)
	}
	if !node.promoted.Load() {
		t.Error("-force did not promote")
	}
}

// The full operator flow: promote the caught-up replica, then fence the
// deposed primary under the new term.
func TestPromoteAndFenceOldPrimary(t *testing.T) {
	replica := newFakeReplNode(t, replStatus{Role: "replica", Term: 4, LagRecords: 0, Connected: true})
	old := newFakeReplNode(t, replStatus{Role: "primary", Term: 4})

	out, err := replCtl(t, "-server", replica.srv.URL, "-old-primary", old.srv.URL, "promote")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "now primary at term 5") {
		t.Errorf("promote output: %q", out)
	}
	if got := old.fences.Load(); got != 1 {
		t.Fatalf("old primary saw %d fence calls, want 1", got)
	}
	if got := old.lastTerm.Load(); got != 5 {
		t.Errorf("old primary fenced at term %d, want 5", got)
	}
	if !strings.Contains(out, "now fenced at term 5") {
		t.Errorf("fence output: %q", out)
	}
}

// An unreachable old primary is the expected failover case (it crashed);
// promote succeeds and reports that fencing happens on first contact.
func TestPromoteWithDeadOldPrimary(t *testing.T) {
	replica := newFakeReplNode(t, replStatus{Role: "replica", Term: 0, Connected: false, LastError: "connection refused"})
	dead := httptest.NewServer(http.NotFoundHandler())
	deadURL := dead.URL
	dead.Close()

	out, err := replCtl(t, "-server", replica.srv.URL, "-old-primary", deadURL, "-force", "promote")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "unreachable") {
		t.Errorf("promote output should note the unreachable old primary: %q", out)
	}
}

// Promoting a node that is already primary is a no-op, not an error.
func TestPromoteIdempotentOnPrimary(t *testing.T) {
	node := newFakeReplNode(t, replStatus{Role: "primary", Term: 3})
	out, err := replCtl(t, "-server", node.srv.URL, "promote")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "already primary") {
		t.Errorf("promote output: %q", out)
	}
	if node.promoted.Load() {
		t.Error("already-primary node got a promote call")
	}
}
