package main

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"sort"
	"strings"

	"github.com/lsds/browserflow/internal/store"
	"github.com/lsds/browserflow/internal/wal"
)

// runFsck verifies a durable directory offline: every WAL segment's CRC
// framing and every checkpoint image's container CRCs, reporting the byte
// offset of the first bad byte in anything corrupt. It never modifies the
// directory (quarantine is the running node's job); a non-zero corruption
// count is returned as an error so scripts can gate on the exit status.
func runFsck(dir string, key []byte, stdout io.Writer) error {
	segs, err := wal.ListSegments(wal.OSFS{}, dir)
	if err != nil {
		return fmt.Errorf("list segments: %w", err)
	}
	names, err := wal.OSFS{}.ReadDirNames(dir)
	if err != nil {
		return fmt.Errorf("read dir: %w", err)
	}
	sort.Strings(names)

	corrupt := 0
	totalRecords, totalBytes := 0, int64(0)
	for _, idx := range segs {
		recs, bytes, verr := wal.VerifySegmentFile(nil, dir, idx, 0)
		totalRecords += recs
		totalBytes += bytes
		if verr == nil {
			fmt.Fprintf(stdout, "ok       %s  %d records, %d bytes\n", wal.SegmentName(idx), recs, bytes)
			continue
		}
		corrupt++
		var ce *wal.CorruptError
		if errors.As(verr, &ce) {
			fmt.Fprintf(stdout, "CORRUPT  %s  at byte %d: %s\n", wal.SegmentName(idx), ce.Offset, ce.Reason)
		} else {
			fmt.Fprintf(stdout, "CORRUPT  %s  %v\n", wal.SegmentName(idx), verr)
		}
	}

	checkpoints := 0
	for _, name := range names {
		if _, ok := store.ParseCheckpointName(name); !ok {
			continue
		}
		checkpoints++
		bytes, verr := store.VerifyCheckpointFile(nil, dir+"/"+name, key)
		if verr == nil {
			fmt.Fprintf(stdout, "ok       %s  %d bytes\n", name, bytes)
			continue
		}
		corrupt++
		var cse *store.CorruptSnapshotError
		if errors.As(verr, &cse) {
			fmt.Fprintf(stdout, "CORRUPT  %s  at byte %d: %s\n", name, cse.Offset, cse.Reason)
		} else {
			fmt.Fprintf(stdout, "CORRUPT  %s  %v\n", name, verr)
		}
	}

	quarantined := 0
	for _, name := range names {
		if strings.HasSuffix(name, wal.QuarantineSuffix) {
			quarantined++
			fmt.Fprintf(stdout, "quarantined  %s\n", name)
		}
	}

	fmt.Fprintf(stdout, "fsck: %d segments (%d records, %d bytes), %d checkpoints, %d quarantined, %d corrupt\n",
		len(segs), totalRecords, totalBytes, checkpoints, quarantined, corrupt)
	if corrupt > 0 {
		return fmt.Errorf("fsck: %d corrupt file(s) in %s", corrupt, dir)
	}
	return nil
}

// runScrubStatus prints a running node's self-healing storage state: the
// /healthz storage block (scrub freshness, quarantine inventory, disk
// degradation).
func runScrubStatus(server string, stdout io.Writer) error {
	body, err := obsGet(server, "/healthz")
	if err != nil {
		return err
	}
	var health struct {
		Storage *struct {
			ScrubPasses      int64  `json:"scrubPasses"`
			LastScrubAge     string `json:"lastScrubAge"`
			FramesVerified   int64  `json:"framesVerified"`
			CorruptionsFound int64  `json:"corruptionsFound"`
			Quarantines      int64  `json:"quarantines"`
			QuarantinedFiles int    `json:"quarantinedFiles"`
			LastCorruption   string `json:"lastCorruption"`
			DiskDegraded     bool   `json:"diskDegraded"`
			DegradedCause    string `json:"degradedCause"`
			FailOpen         bool   `json:"failOpen"`
			DroppedRecords   int64  `json:"droppedRecords"`
			DiskRecoveries   int64  `json:"diskRecoveries"`
		} `json:"storage"`
	}
	if err := json.Unmarshal(body, &health); err != nil {
		return fmt.Errorf("decode healthz: %w", err)
	}
	st := health.Storage
	if st == nil {
		fmt.Fprintln(stdout, "node has no durability layer (no storage block on /healthz)")
		return nil
	}
	fmt.Fprintf(stdout, "scrub passes:      %d\n", st.ScrubPasses)
	if st.LastScrubAge != "" {
		fmt.Fprintf(stdout, "last pass age:     %s\n", st.LastScrubAge)
	}
	fmt.Fprintf(stdout, "frames verified:   %d\n", st.FramesVerified)
	fmt.Fprintf(stdout, "corruptions found: %d\n", st.CorruptionsFound)
	fmt.Fprintf(stdout, "quarantines:       %d (on disk now: %d)\n", st.Quarantines, st.QuarantinedFiles)
	if st.LastCorruption != "" {
		fmt.Fprintf(stdout, "last corruption:   %s\n", st.LastCorruption)
	}
	if st.DiskDegraded {
		policy := "fail-closed"
		if st.FailOpen {
			policy = "fail-open"
		}
		fmt.Fprintf(stdout, "disk:              DEGRADED (%s, %s), %d records dropped\n",
			st.DegradedCause, policy, st.DroppedRecords)
	} else {
		fmt.Fprintf(stdout, "disk:              healthy (%d recoveries)\n", st.DiskRecoveries)
	}
	return nil
}

// dispatchStorage routes the self-healing storage operator commands; it
// reports whether cmd was one of them. `bfctl fsck -wal-dir DIR` verifies
// a durable directory offline; `bfctl scrub-status -server URL` shows a
// running node's scrub and degradation state.
func dispatchStorage(cmd, dir string, key []byte, server string, stdout io.Writer) (bool, error) {
	switch cmd {
	case "fsck":
		if dir == "" {
			return true, errors.New("fsck requires -wal-dir")
		}
		return true, runFsck(dir, key, stdout)
	case "scrub-status":
		if server == "" {
			return true, errors.New("scrub-status requires -server")
		}
		return true, runScrubStatus(server, stdout)
	}
	return false, nil
}
