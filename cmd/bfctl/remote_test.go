package main

import (
	"bytes"
	"net/http/httptest"
	"strings"
	"testing"

	"github.com/lsds/browserflow"
	"github.com/lsds/browserflow/internal/tagserver"
)

// startTagService serves a shared tag service for remote-mode tests.
func startTagService(t *testing.T) *httptest.Server {
	t.Helper()
	cfg := browserflow.DefaultConfig()
	cfg.Mode = browserflow.ModeEnforcing
	mw, err := browserflow.New(cfg,
		browserflow.Service{Name: "wiki", Privilege: []browserflow.Tag{"tw"}, Confidentiality: []browserflow.Tag{"tw"}},
		browserflow.Service{Name: "docs"},
	)
	if err != nil {
		t.Fatal(err)
	}
	server, err := tagserver.NewServer(mw.Engine())
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(server)
	t.Cleanup(srv.Close)
	return srv
}

func remoteCtl(t *testing.T, server string, args ...string) (string, error) {
	t.Helper()
	full := append([]string{"-server", server}, args...)
	var out bytes.Buffer
	err := run(full, strings.NewReader(""), &out)
	return out.String(), err
}

func TestRemoteMode(t *testing.T) {
	srv := startTagService(t)

	out, err := remoteCtl(t, srv.URL, "-service", "wiki", "-seg", "wiki/plan#p0", "-text", ctlSecret, "observe")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "decision: allow") {
		t.Errorf("observe: %q", out)
	}

	out, err = remoteCtl(t, srv.URL, "-dest", "docs", "-text", ctlSecret, "check")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "decision: block") || !strings.Contains(out, "wiki/plan#p0") {
		t.Errorf("check: %q", out)
	}

	out, err = remoteCtl(t, srv.URL, "-seg", "wiki/plan#p0", "label")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "tw") {
		t.Errorf("label: %q", out)
	}

	// Suppress on a destination copy.
	if _, err := remoteCtl(t, srv.URL, "-service", "docs", "-seg", "docs/copy#p0", "-text", ctlSecret, "observe"); err != nil {
		t.Fatal(err)
	}
	if _, err := remoteCtl(t, srv.URL, "-user", "alice", "-seg", "docs/copy#p0", "-tag", "tw", "-why", "ok", "suppress"); err != nil {
		t.Fatal(err)
	}

	out, err = remoteCtl(t, srv.URL, "stats")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "segments: 2") || !strings.Contains(out, "audit entries: 1") {
		t.Errorf("stats: %q", out)
	}
}

func TestRemoteModeErrors(t *testing.T) {
	srv := startTagService(t)
	// Unsupported command remotely.
	if _, err := remoteCtl(t, srv.URL, "add-service"); err == nil {
		t.Error("add-service accepted remotely")
	}
	// Missing flags.
	for _, args := range [][]string{{"observe"}, {"check"}, {"suppress"}, {"label"}} {
		if _, err := remoteCtl(t, srv.URL, args...); err == nil {
			t.Errorf("%v without flags accepted", args)
		}
	}
	// Unreachable server.
	if _, err := remoteCtl(t, "http://127.0.0.1:1", "stats"); err == nil {
		t.Error("unreachable server accepted")
	}
}
