package main

import (
	"bytes"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// policyFixture resolves a policyfile testdata fixture from the CLI
// package, so the CLI lints exactly the documents the analyzer's own
// suite covers.
func policyFixture(name string) string {
	return filepath.Join("..", "..", "internal", "policyfile", "testdata", name)
}

func TestBfctlPolicyLintClean(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{"policy", "lint",
		policyFixture("seed-webapps.json"),
		policyFixture("enterprise-classes.json"),
		policyFixture("encrypting-notes.json"),
	}, strings.NewReader(""), &out)
	if err != nil {
		t.Fatalf("lint of shipping policies failed: %v\n%s", err, out.String())
	}
	if got := strings.Count(out.String(), ": clean"); got != 3 {
		t.Fatalf("want 3 clean lines, got %d:\n%s", got, out.String())
	}
}

func TestBfctlPolicyLintBroken(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{"policy", "lint",
		policyFixture("broken-failopen.json"),
		policyFixture("broken-contradiction.json"),
	}, strings.NewReader(""), &out)
	if err == nil {
		t.Fatalf("lint of broken policies succeeded:\n%s", out.String())
	}
	if !strings.Contains(err.Error(), "2 of 2 file(s) flagged") {
		t.Fatalf("error does not count flagged files: %v", err)
	}
	got := out.String()
	for _, want := range []string{"[fail-open]", "[contradiction]", "broken-failopen.json", "broken-contradiction.json"} {
		if !strings.Contains(got, want) {
			t.Errorf("lint output missing %q:\n%s", want, got)
		}
	}
	// Every diagnostic line carries a byte offset.
	if !regexp.MustCompile(`at byte \d+`).MatchString(got) {
		t.Errorf("lint output has no byte offsets:\n%s", got)
	}
}

// TestBfctlPolicyLintOneBadApple: a broken file fails the run but does
// not suppress diagnostics (or the clean verdict) for its siblings.
func TestBfctlPolicyLintOneBadApple(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{"policy", "lint",
		policyFixture("seed-webapps.json"),
		policyFixture("broken-dup.json"),
	}, strings.NewReader(""), &out)
	if err == nil || !strings.Contains(err.Error(), "1 of 2") {
		t.Fatalf("err=%v", err)
	}
	got := out.String()
	if !strings.Contains(got, "seed-webapps.json: clean") {
		t.Errorf("clean sibling not reported:\n%s", got)
	}
	if !strings.Contains(got, "[duplicate-service]") {
		t.Errorf("duplicate-service not flagged:\n%s", got)
	}
}

func TestBfctlPolicyUsage(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"policy"}, strings.NewReader(""), &out); err == nil {
		t.Fatal("bare policy command succeeded")
	}
	if err := run([]string{"policy", "lint"}, strings.NewReader(""), &out); err == nil {
		t.Fatal("lint without files succeeded")
	}
	if err := run([]string{"policy", "frobnicate"}, strings.NewReader(""), &out); err == nil {
		t.Fatal("unknown subcommand succeeded")
	}
	if err := run([]string{"policy", "lint", policyFixture("no-such-file.json")}, strings.NewReader(""), &out); err == nil {
		t.Fatal("missing file succeeded")
	}
}
