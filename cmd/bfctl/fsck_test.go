package main

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/lsds/browserflow/internal/audit"
	"github.com/lsds/browserflow/internal/disclosure"
	"github.com/lsds/browserflow/internal/fingerprint"
	"github.com/lsds/browserflow/internal/policy"
	"github.com/lsds/browserflow/internal/segment"
	"github.com/lsds/browserflow/internal/store"
	"github.com/lsds/browserflow/internal/tdm"
	"github.com/lsds/browserflow/internal/wal"
)

// seedDurableDir builds a real durable directory on the OS filesystem:
// some journalled mutations, a sealed segment, and one checkpoint.
func seedDurableDir(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	tracker, err := disclosure.NewTracker(disclosure.Params{
		Fingerprint: fingerprint.Config{NGram: 6, Window: 3},
		Tpar:        0.3, Tdoc: 0.3,
	})
	if err != nil {
		t.Fatal(err)
	}
	registry := tdm.NewRegistry(audit.NewLog())
	if err := registry.RegisterService("wiki", tdm.NewTagSet("tw"), tdm.NewTagSet("tw")); err != nil {
		t.Fatal(err)
	}
	engine, err := policy.NewEngine(tracker, registry, policy.ModeAdvisory)
	if err != nil {
		t.Fatal(err)
	}
	durable, err := store.OpenDurable(store.DurableOptions{Dir: dir, Fsync: wal.SyncAlways}, tracker, registry)
	if err != nil {
		t.Fatal(err)
	}
	engine.SetJournal(durable)
	observe := func(seg segment.ID, text string) {
		t.Helper()
		if _, err := engine.ObserveEdit(seg, "wiki", text); err != nil {
			t.Fatal(err)
		}
	}
	observe("wiki/doc#p0", "the quarterly revenue forecast was revised downwards")
	observe("wiki/doc#p1", "launch codes and rollout schedule for the atlas project")
	if err := durable.Close(); err != nil { // Close checkpoints + truncates
		t.Fatal(err)
	}
	// Close's checkpoint pruned every covered segment, so re-open the raw
	// WAL and seal a segment with records that no checkpoint covers —
	// exactly the kind of file a scrub-era fsck has to verify.
	log, err := wal.Open(wal.Options{Dir: dir, Policy: wal.SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if err := log.Append(wal.Record{Type: 1, Data: []byte("post-checkpoint payload with enough bytes to flip")}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := log.Rotate(); err != nil {
		t.Fatal(err)
	}
	if err := log.Close(); err != nil {
		t.Fatal(err)
	}
	return dir
}

// TestFsckCleanAndCorrupt: a clean directory passes; after a bit flip in
// a sealed segment, fsck reports the file with a byte offset and errors.
func TestFsckCleanAndCorrupt(t *testing.T) {
	dir := seedDurableDir(t)

	var out bytes.Buffer
	if err := run([]string{"-wal-dir", dir, "fsck"}, nil, &out); err != nil {
		t.Fatalf("clean fsck failed: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "0 corrupt") {
		t.Fatalf("clean fsck output missing summary:\n%s", out.String())
	}

	// Flip one payload byte in the first surviving sealed segment.
	matches, err := filepath.Glob(filepath.Join(dir, "wal-*.log"))
	if err != nil || len(matches) == 0 {
		t.Fatalf("no segments to corrupt: %v (matches %v)", err, matches)
	}
	var seg string
	for _, m := range matches {
		if info, err := os.Stat(m); err == nil && info.Size() > wal.HeaderSize+8 {
			seg = m
			break
		}
	}
	if seg == "" {
		t.Fatalf("no segment with records among %v", matches)
	}
	data, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	data[wal.HeaderSize+5] ^= 0x20
	if err := os.WriteFile(seg, data, 0o600); err != nil {
		t.Fatal(err)
	}

	out.Reset()
	err = run([]string{"-wal-dir", dir, "fsck"}, nil, &out)
	if err == nil {
		t.Fatalf("fsck passed a corrupt segment:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "CORRUPT") || !strings.Contains(out.String(), "at byte") {
		t.Fatalf("fsck output missing corruption report with byte offset:\n%s", out.String())
	}
}

// TestFsckRequiresDir: fsck without -wal-dir is an error, not a panic.
func TestFsckRequiresDir(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"fsck"}, nil, &out); err == nil {
		t.Fatal("fsck without -wal-dir succeeded")
	}
}

// TestScrubStatusCommand renders a node's /healthz storage block.
func TestScrubStatusCommand(t *testing.T) {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		json.NewEncoder(w).Encode(map[string]any{ //nolint:errcheck
			"status": "ok",
			"storage": map[string]any{
				"scrubPasses":      4,
				"lastScrubAge":     "32s",
				"framesVerified":   1234,
				"corruptionsFound": 1,
				"quarantines":      1,
				"quarantinedFiles": 1,
				"lastCorruption":   "wal-0000000000000002.log: frame CRC mismatch",
				"diskDegraded":     true,
				"degradedCause":    "enospc",
				"failOpen":         false,
				"droppedRecords":   0,
				"diskRecoveries":   2,
			},
		})
	})
	srv := httptest.NewServer(mux)
	defer srv.Close()

	var out bytes.Buffer
	if err := run([]string{"-server", srv.URL, "scrub-status"}, nil, &out); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"scrub passes:      4",
		"last pass age:     32s",
		"frames verified:   1234",
		"quarantines:       1 (on disk now: 1)",
		"DEGRADED (enospc, fail-closed)",
	} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("scrub-status output missing %q:\n%s", want, out.String())
		}
	}
}
