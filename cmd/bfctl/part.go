package main

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"github.com/lsds/browserflow/internal/partition"
	"github.com/lsds/browserflow/internal/wal"
)

// partGetRing fetches and decodes a node's installed ring.
func partGetRing(base string) (*partition.Ring, error) {
	resp, err := replHTTP.Get(strings.TrimRight(base, "/") + "/v1/part/ring")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("%s: %s", resp.Status, strings.TrimSpace(string(body)))
	}
	return partition.DecodeRing(body)
}

// partSetRing installs an encoded ring on a node.
func partSetRing(base string, encoded []byte) error {
	resp, err := replHTTP.Post(strings.TrimRight(base, "/")+"/v1/part/ring",
		"application/octet-stream", bytes.NewReader(encoded))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("%s: %s", resp.Status, strings.TrimSpace(string(body)))
	}
	return nil
}

// partPrune drops the inclusive key range [lo, hi] on a node.
func partPrune(base string, lo, hi uint32) (int, error) {
	payload, err := json.Marshal(map[string]uint32{"lo": lo, "hi": hi})
	if err != nil {
		return 0, err
	}
	resp, err := replHTTP.Post(strings.TrimRight(base, "/")+"/v1/part/prune",
		"application/json", bytes.NewReader(payload))
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if resp.StatusCode != http.StatusOK {
		return 0, fmt.Errorf("%s: %s", resp.Status, strings.TrimSpace(string(body)))
	}
	var out struct {
		Removed int `json:"removed"`
	}
	if err := json.Unmarshal(body, &out); err != nil {
		return 0, fmt.Errorf("decode prune response: %w", err)
	}
	return out.Removed, nil
}

// nodeHealth is the slice of /healthz the topology view needs.
type nodeHealth struct {
	Status      string `json:"status"`
	Replication *struct {
		Role string `json:"role"`
		Term uint64 `json:"term"`
	} `json:"replication"`
	Partition *struct {
		ID          string `json:"id"`
		RingVersion uint64 `json:"ringVersion"`
		Resharding  bool   `json:"resharding"`
	} `json:"partition"`
}

func getNodeHealth(base string) (nodeHealth, error) {
	var h nodeHealth
	resp, err := replHTTP.Get(strings.TrimRight(base, "/") + "/healthz")
	if err != nil {
		return h, err
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(io.LimitReader(resp.Body, 1<<20)).Decode(&h); err != nil {
		return h, err
	}
	return h, nil
}

// runTopology prints the whole-cluster view: every partition's key range
// and every member node's role, term and ring version — the operator's
// one-look answer to "who owns what, and does everyone agree on the
// topology".
func runTopology(ring *partition.Ring, stdout io.Writer) {
	fmt.Fprintf(stdout, "ring:     v%d, %d partitions\n", ring.Version, len(ring.Partitions))
	for _, p := range ring.Partitions {
		fmt.Fprintf(stdout, "partition %s  range [%d, %d]\n", p.ID, p.Lo, p.Hi)
		for _, node := range p.Nodes {
			h, err := getNodeHealth(node)
			if err != nil {
				fmt.Fprintf(stdout, "  %-28s unreachable: %v\n", node, err)
				continue
			}
			role, term := "standalone", uint64(0)
			if h.Replication != nil {
				role, term = h.Replication.Role, h.Replication.Term
			}
			line := fmt.Sprintf("  %-28s %-8s term %d", node, role, term)
			if h.Partition != nil {
				line += fmt.Sprintf("  ring v%d", h.Partition.RingVersion)
				if h.Partition.RingVersion != ring.Version {
					line += " (STALE)"
				}
				if h.Partition.Resharding {
					line += " resharding"
				}
			}
			fmt.Fprintln(stdout, line)
		}
	}
}

// splitArgs carries the `split` command's inputs.
type splitArgs struct {
	server      string // source partition primary
	srcID       string // partition being split
	at          uint32 // last key the source keeps
	newID       string // ID for the moved range's partition
	target      string // split-target replica to promote
	targetNodes []string
	force       bool
}

// splitCatchUpTimeout bounds how long runSplit waits for the split
// target's mirror to cover the source's post-flip WAL position.
// Overridable for tests.
var splitCatchUpTimeout = 30 * time.Second

// waitSplitCatchUp blocks until the target's mirrored WAL position
// covers the source's current high-water mark, so promotion cannot
// abandon acked writes for the moved range. It runs after the source's
// ring flip: from then on the source 421s moved-range writes, so the
// mark the target must reach no longer grows for that range and the
// wait converges under live traffic.
func waitSplitCatchUp(source, target string, force bool, stdout io.Writer) error {
	srcSt, err := replGetStatus(source)
	if err != nil {
		return fmt.Errorf("status %s: %w", source, err)
	}
	srcPos, err := wal.ParsePos(srcSt.Position)
	if err != nil {
		return fmt.Errorf("source %s position: %w", source, err)
	}
	deadline := time.Now().Add(splitCatchUpTimeout)
	for {
		st, err := replGetStatus(target)
		if err != nil {
			return fmt.Errorf("status %s: %w", target, err)
		}
		if pos, perr := wal.ParsePos(st.Position); perr == nil && !pos.Less(srcPos) {
			return nil
		}
		if time.Now().After(deadline) {
			if force {
				fmt.Fprintf(stdout, "warning: split target %s mirror at %s has not covered source position %s; -force abandons the gap\n",
					target, st.Position, srcSt.Position)
				return nil
			}
			return fmt.Errorf("split target %s mirror at %s has not covered the source's position %s after %s; wait for catch-up or pass -force to abandon the gap",
				target, st.Position, srcSt.Position, splitCatchUpTimeout)
		}
		time.Sleep(100 * time.Millisecond)
	}
}

// runSplit drives a live reshard to completion:
//
//  1. fetch the ring from the source and build version v+1 with the
//     range [at+1, hi] moved to newID (a re-run that finds the split
//     ring already installed converges on it);
//  2. install the new ring on the source FIRST, while the target is
//     still mirroring: from that moment the source answers 421 for the
//     moved range, so no write can be acked there that the target's
//     stopped mirror would never see (the moved range is briefly
//     routable-but-unowned until step 4 — fail-closed unavailability,
//     never silent loss);
//  3. wait until the target's mirror covers the source's now-frozen
//     high-water mark (refusing to proceed on timeout unless -force);
//  4. promote the target under a bumped fencing term (no -old-primary:
//     the source stays primary of the kept range, so it must not be
//     term-fenced — the ring flip in step 2 is the moved range's fence);
//  5. install the new ring on the rest of the cluster;
//  6. prune the moved range from the source.
//
// Every step is idempotent: re-running a half-finished split converges.
func runSplit(a splitArgs, stdout io.Writer) error {
	ring, err := partGetRing(a.server)
	if err != nil {
		return fmt.Errorf("fetch ring from %s: %w", a.server, err)
	}
	var (
		next    *partition.Ring
		srcHi   uint32
		flipped bool // the source already carries the post-split ring (re-run)
	)
	if moved, ok := ring.ByID(a.newID); ok {
		// Re-run of a half-finished split: the source's installed ring
		// already has the moved range; converge on it instead of minting
		// another version.
		src, ok := ring.ByID(a.srcID)
		if !ok || src.Hi != a.at || moved.Lo != a.at+1 {
			return fmt.Errorf("ring v%d already has partition %q but not as a split of %q at %d; refusing to continue",
				ring.Version, a.newID, a.srcID, a.at)
		}
		next, srcHi, flipped = ring, moved.Hi, true
		fmt.Fprintf(stdout, "ring v%d already carries the split; resuming\n", ring.Version)
	} else {
		src, ok := ring.ByID(a.srcID)
		if !ok {
			return fmt.Errorf("ring v%d has no partition %q", ring.Version, a.srcID)
		}
		srcHi = src.Hi
		if len(a.targetNodes) == 0 {
			a.targetNodes = []string{a.target}
		}
		if next, err = partition.SplitRing(ring, a.srcID, a.at, a.newID, a.targetNodes); err != nil {
			return err
		}
	}
	encoded, err := partition.EncodeRing(next)
	if err != nil {
		return err
	}

	st, err := replGetStatus(a.target)
	if err != nil {
		return fmt.Errorf("status %s: %w", a.target, err)
	}
	if st.Role != "primary" {
		if !st.Connected && !a.force {
			return fmt.Errorf("split target %s is not mirroring the source (last error: %s); fix it or pass -force", a.target, st.LastError)
		}
		// Flip the source before the target stops mirroring (step 2).
		if !flipped {
			if err := partSetRing(a.server, encoded); err != nil {
				return fmt.Errorf("install ring v%d on source %s: %w", next.Version, a.server, err)
			}
			fmt.Fprintf(stdout, "ring v%d installed on source %s (moved range now fenced there)\n", next.Version, a.server)
		}
		if err := waitSplitCatchUp(a.server, a.target, a.force, stdout); err != nil {
			return err
		}
		// Skip the generic lag check: the catch-up above proved the mirror
		// covers every record the source acked before the flip, and records
		// past that mark are kept-range traffic the target's filter drops.
		if err := promote(a.target, "", a.force, true, stdout); err != nil {
			return fmt.Errorf("promote split target: %w", err)
		}
	} else {
		fmt.Fprintf(stdout, "split target %s already primary at term %d\n", a.target, st.Term)
		if !flipped {
			if err := partSetRing(a.server, encoded); err != nil {
				return fmt.Errorf("install ring v%d on source %s: %w", next.Version, a.server, err)
			}
			fmt.Fprintf(stdout, "ring v%d installed on source %s\n", next.Version, a.server)
		}
	}

	for _, p := range next.Partitions {
		for _, node := range p.Nodes {
			if node == a.server {
				continue
			}
			if err := partSetRing(node, encoded); err != nil {
				fmt.Fprintf(stdout, "warning: install ring v%d on %s: %v (routers will carry it on first 421)\n", next.Version, node, err)
				continue
			}
			fmt.Fprintf(stdout, "ring v%d installed on %s\n", next.Version, node)
		}
	}

	removed, err := partPrune(a.server, a.at+1, srcHi)
	if err != nil {
		return fmt.Errorf("prune moved range on source: %w", err)
	}
	kept, _ := next.ByID(a.srcID)
	fmt.Fprintf(stdout, "split complete: %s keeps [%d, %d], %s owns [%d, %d] (%d segments pruned from source)\n",
		a.srcID, kept.Lo, a.at, a.newID, a.at+1, srcHi, removed)
	return nil
}

// dispatchPart routes the partition operator commands; it reports
// whether cmd was one of them.
func dispatchPart(cmd string, a splitArgs, stdout io.Writer) (bool, error) {
	switch cmd {
	case "split":
		switch {
		case a.server == "":
			return true, errors.New("split requires -server (the source partition primary)")
		case a.srcID == "":
			return true, errors.New("split requires -src-partition")
		case a.newID == "":
			return true, errors.New("split requires -new-partition")
		case a.target == "":
			return true, errors.New("split requires -target (the filtered replica to promote)")
		}
		return true, runSplit(a, stdout)
	case "ring":
		if a.server == "" {
			return true, errors.New("ring requires -server")
		}
		ring, err := partGetRing(a.server)
		if err != nil {
			return true, err
		}
		runTopology(ring, stdout)
		return true, nil
	}
	return false, nil
}
