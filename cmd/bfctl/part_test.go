package main

import (
	"bytes"
	"encoding/json"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/lsds/browserflow/internal/partition"
)

// splitEventLog records the cluster-wide order of split operations so
// tests can assert the protocol's safety ordering.
type splitEventLog struct {
	mu     sync.Mutex
	events []string
}

func (l *splitEventLog) add(e string) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.events = append(l.events, e)
}

func (l *splitEventLog) index(e string) int {
	l.mu.Lock()
	defer l.mu.Unlock()
	for i, got := range l.events {
		if got == e {
			return i
		}
	}
	return -1
}

// fakePartNode serves the slices of /v1/repl/* and /v1/part/* that
// runSplit drives, against a mutable status.
type fakePartNode struct {
	name   string
	log    *splitEventLog
	mu     sync.Mutex
	status replStatus
	ring   []byte
	// onRingInstall runs after a ring POST is recorded — the happy-path
	// test uses it to simulate the target's mirror draining once the
	// source stops acking moved-range writes.
	onRingInstall func()
	srv           *httptest.Server
}

func (n *fakePartNode) setStatus(mutate func(*replStatus)) {
	n.mu.Lock()
	defer n.mu.Unlock()
	mutate(&n.status)
}

func newFakePartNode(t *testing.T, name string, log *splitEventLog, status replStatus, ring []byte) *fakePartNode {
	t.Helper()
	n := &fakePartNode{name: name, log: log, status: status, ring: ring}
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/repl/status", func(w http.ResponseWriter, r *http.Request) {
		n.mu.Lock()
		st := n.status
		n.mu.Unlock()
		json.NewEncoder(w).Encode(st) //nolint:errcheck
	})
	mux.HandleFunc("/v1/repl/promote", func(w http.ResponseWriter, r *http.Request) {
		n.log.add(n.name + ":promote")
		n.setStatus(func(st *replStatus) { st.Role, st.Term = "primary", st.Term+1 })
		n.mu.Lock()
		term := n.status.Term
		n.mu.Unlock()
		json.NewEncoder(w).Encode(map[string]any{ //nolint:errcheck
			"promoted": true, "role": "primary", "term": term, "primary": n.srv.URL,
		})
	})
	mux.HandleFunc("/v1/part/ring", func(w http.ResponseWriter, r *http.Request) {
		switch r.Method {
		case http.MethodGet:
			n.mu.Lock()
			ring := n.ring
			n.mu.Unlock()
			w.Write(ring) //nolint:errcheck
		case http.MethodPost:
			n.log.add(n.name + ":ring")
			if n.onRingInstall != nil {
				n.onRingInstall()
			}
			json.NewEncoder(w).Encode(map[string]any{"version": 2}) //nolint:errcheck
		}
	})
	mux.HandleFunc("/v1/part/prune", func(w http.ResponseWriter, r *http.Request) {
		n.log.add(n.name + ":prune")
		json.NewEncoder(w).Encode(map[string]any{"removed": 7}) //nolint:errcheck
	})
	n.srv = httptest.NewServer(mux)
	t.Cleanup(n.srv.Close)
	return n
}

// TestSplitFlipsSourceBeforePromote pins the split protocol's write-loss
// guard: the source must install the post-split ring (fencing the moved
// range) BEFORE the target is promoted — promotion stops the target's
// mirror, so any write the source acks after it would be silently
// destroyed by the prune. The target only reports catch-up after the
// source's flip, so passing also proves the catch-up wait runs between
// the two.
func TestSplitFlipsSourceBeforePromote(t *testing.T) {
	log := &splitEventLog{}
	source := newFakePartNode(t, "source", log, replStatus{
		Role: "primary", Term: 1, Position: "3,400", Connected: true,
	}, nil)
	target := newFakePartNode(t, "target", log, replStatus{
		Role: "replica", Term: 1, Position: "3,100", Connected: true,
	}, nil)

	ring := partition.SingleRing("p0", source.srv.URL)
	encoded, err := partition.EncodeRing(ring)
	if err != nil {
		t.Fatal(err)
	}
	source.ring = encoded
	// The mirror drains only once the source stops acking moved-range
	// writes — i.e. after its ring flip.
	source.onRingInstall = func() {
		target.setStatus(func(st *replStatus) { st.Position = "3,400" })
	}

	var out bytes.Buffer
	err = runSplit(splitArgs{
		server: source.srv.URL, srcID: "p0", at: math.MaxUint32 / 2,
		newID: "p1", target: target.srv.URL,
	}, &out)
	if err != nil {
		t.Fatalf("split: %v\n%s", err, out.String())
	}

	flip, promote, prune := log.index("source:ring"), log.index("target:promote"), log.index("source:prune")
	if flip == -1 || promote == -1 || prune == -1 {
		t.Fatalf("split skipped a step: events %v", log.events)
	}
	if flip > promote {
		t.Errorf("source ring flip (%d) after target promote (%d): the mirror-stop window is open; events %v",
			flip, promote, log.events)
	}
	if prune < promote || prune < log.index("target:ring") {
		t.Errorf("prune ran before the topology settled: events %v", log.events)
	}
}

// TestSplitRefusesWhenTargetCannotCatchUp: if the target's mirror never
// covers the source's post-flip position, the split must stop before
// promotion and before anything is pruned — the acked writes still only
// exist on the source.
func TestSplitRefusesWhenTargetCannotCatchUp(t *testing.T) {
	oldTimeout := splitCatchUpTimeout
	splitCatchUpTimeout = 200 * time.Millisecond
	t.Cleanup(func() { splitCatchUpTimeout = oldTimeout })

	log := &splitEventLog{}
	source := newFakePartNode(t, "source", log, replStatus{
		Role: "primary", Term: 1, Position: "3,400", Connected: true,
	}, nil)
	target := newFakePartNode(t, "target", log, replStatus{
		Role: "replica", Term: 1, Position: "3,100", Connected: true,
	}, nil)

	ring := partition.SingleRing("p0", source.srv.URL)
	encoded, err := partition.EncodeRing(ring)
	if err != nil {
		t.Fatal(err)
	}
	source.ring = encoded

	var out bytes.Buffer
	err = runSplit(splitArgs{
		server: source.srv.URL, srcID: "p0", at: math.MaxUint32 / 2,
		newID: "p1", target: target.srv.URL,
	}, &out)
	if err == nil || !strings.Contains(err.Error(), "has not covered") {
		t.Fatalf("split with a stuck target: err = %v, want catch-up refusal", err)
	}
	if log.index("target:promote") != -1 {
		t.Errorf("stuck target was promoted anyway: events %v", log.events)
	}
	if log.index("source:prune") != -1 {
		t.Errorf("moved range pruned despite failed catch-up: events %v", log.events)
	}
}
