package main

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"
)

// replHTTP is the client used for /v1/repl/* operator calls. Promotion
// and fencing are quick control-plane requests, so a short timeout keeps
// a dead node from hanging the CLI.
var replHTTP = &http.Client{Timeout: 10 * time.Second}

// replStatus mirrors the wire shape of /v1/repl/status.
type replStatus struct {
	Role           string `json:"role"`
	Term           uint64 `json:"term"`
	Primary        string `json:"primary"`
	Position       string `json:"position"`
	LagRecords     int64  `json:"lag_records"`
	AppliedRecords int64  `json:"appliedRecords"`
	Bootstraps     int64  `json:"bootstraps"`
	Connected      bool   `json:"connected"`
	LastError      string `json:"lastError"`
}

// replGetStatus fetches a node's replication status.
func replGetStatus(base string) (replStatus, error) {
	var st replStatus
	resp, err := replHTTP.Get(strings.TrimRight(base, "/") + "/v1/repl/status")
	if err != nil {
		return st, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if err != nil {
		return st, err
	}
	if resp.StatusCode != http.StatusOK {
		return st, fmt.Errorf("%s: %s", resp.Status, strings.TrimSpace(string(body)))
	}
	if err := json.Unmarshal(body, &st); err != nil {
		return st, fmt.Errorf("decode status: %w", err)
	}
	return st, nil
}

// runReplStatus prints a node's replication state: role, fencing term,
// applied position and how far behind the primary it is.
func runReplStatus(server string, stdout io.Writer) error {
	st, err := replGetStatus(server)
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "role:     %s\nterm:     %d\n", st.Role, st.Term)
	if st.Primary != "" {
		fmt.Fprintf(stdout, "primary:  %s\n", st.Primary)
	}
	fmt.Fprintf(stdout, "position: %s\nlag:      %d records\napplied:  %d records\nconnected: %v\n",
		st.Position, st.LagRecords, st.AppliedRecords, st.Connected)
	if st.LastError != "" {
		fmt.Fprintf(stdout, "last error: %s\n", st.LastError)
	}
	// On a partitioned node, widen to the whole-cluster view: its ring
	// names every group, and each member's health names its role.
	if ring, err := partGetRing(server); err == nil {
		fmt.Fprintln(stdout)
		runTopology(ring, stdout)
	}
	return nil
}

// runPromote promotes the replica at server to primary. Unless -force is
// given it refuses while the replica still lags the primary, because
// promoting a lagging replica abandons the acked writes it has not yet
// applied. With -old-primary it then fences the deposed primary
// explicitly so the old node refuses writes even before any client
// carries the new term to it.
func runPromote(server, oldPrimary string, force bool, stdout io.Writer) error {
	return promote(server, oldPrimary, force, false, stdout)
}

// promote implements runPromote. skipLagCheck is for callers that have
// already established a stronger catch-up guarantee than the raw record
// lag (bfctl split verifies the target's mirror covers the source's
// frozen high-water mark, after which any remaining lag is traffic its
// segment filter discards anyway).
func promote(server, oldPrimary string, force, skipLagCheck bool, stdout io.Writer) error {
	st, err := replGetStatus(server)
	if err != nil {
		return fmt.Errorf("status %s: %w", server, err)
	}
	if st.Role == "primary" {
		fmt.Fprintf(stdout, "%s is already primary at term %d\n", server, st.Term)
		return nil
	}
	if st.LagRecords > 0 && !force && !skipLagCheck {
		return fmt.Errorf("replica lags primary by %d records; catch up first or pass -force to abandon them", st.LagRecords)
	}
	if !st.Connected && !force {
		fmt.Fprintf(stdout, "warning: replica is not connected to its primary (last error: %s); promoting anyway assumes the primary is down\n", st.LastError)
	}

	resp, err := replHTTP.Post(strings.TrimRight(server, "/")+"/v1/repl/promote", "application/json", nil)
	if err != nil {
		return fmt.Errorf("promote %s: %w", server, err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("promote %s: %s: %s", server, resp.Status, strings.TrimSpace(string(body)))
	}
	var out struct {
		Promoted bool   `json:"promoted"`
		Role     string `json:"role"`
		Term     uint64 `json:"term"`
		Primary  string `json:"primary"`
	}
	if err := json.Unmarshal(body, &out); err != nil {
		return fmt.Errorf("decode promote response: %w", err)
	}
	fmt.Fprintf(stdout, "%s is now %s at term %d\n", server, out.Role, out.Term)

	if oldPrimary == "" {
		return nil
	}
	fenceBody, err := json.Marshal(map[string]interface{}{
		"term":    out.Term,
		"primary": out.Primary,
	})
	if err != nil {
		return err
	}
	fresp, err := replHTTP.Post(strings.TrimRight(oldPrimary, "/")+"/v1/repl/fence",
		"application/json", bytes.NewReader(fenceBody))
	if err != nil {
		// The old primary being unreachable is the expected failover case:
		// it will fence itself on first contact with any term-carrying
		// client once it returns.
		fmt.Fprintf(stdout, "old primary %s unreachable (%v); it will be fenced on first contact\n", oldPrimary, err)
		return nil
	}
	defer fresp.Body.Close()
	fbody, _ := io.ReadAll(io.LimitReader(fresp.Body, 1<<20))
	if fresp.StatusCode != http.StatusOK {
		return fmt.Errorf("fence %s: %s: %s", oldPrimary, fresp.Status, strings.TrimSpace(string(fbody)))
	}
	var fout struct {
		Role   string `json:"role"`
		Term   uint64 `json:"term"`
		Fenced bool   `json:"fenced"`
	}
	if err := json.Unmarshal(fbody, &fout); err != nil {
		return fmt.Errorf("decode fence response: %w", err)
	}
	fmt.Fprintf(stdout, "old primary %s is now %s at term %d\n", oldPrimary, fout.Role, fout.Term)
	return nil
}

// dispatchRepl routes the replication operator commands; it reports
// whether cmd was one of them.
func dispatchRepl(cmd, server, oldPrimary string, force bool, stdout io.Writer) (bool, error) {
	switch cmd {
	case "promote":
		if server == "" {
			return true, errors.New("promote requires -server (the replica to promote)")
		}
		return true, runPromote(server, oldPrimary, force, stdout)
	case "repl-status":
		if server == "" {
			return true, errors.New("repl-status requires -server")
		}
		return true, runReplStatus(server, stdout)
	}
	return false, nil
}
