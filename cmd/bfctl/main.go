// Command bfctl manages a BrowserFlow state file: services, observations,
// release checks, tag suppression and the audit trail.
//
// Usage:
//
//	bfctl -state s.bf init
//	bfctl -state s.bf add-service -name wiki -lp tw -lc tw
//	bfctl -state s.bf observe -service wiki -seg wiki/guide#p0 -text "..."
//	bfctl -state s.bf check -dest docs -text "..."
//	bfctl -state s.bf suppress -user alice -seg wiki/guide#p0 -tag tw -why "approved"
//	bfctl -state s.bf label -seg wiki/guide#p0
//	bfctl -state s.bf stats
//	bfctl -state s.bf audit
//	bfctl policy lint policy.json shadow-policy.json
//
// Against a replicated tag service, bfctl is also the failover operator:
//
//	bfctl -server http://replica:7001 repl-status
//	bfctl -server http://replica:7001 -old-primary http://primary:7000 promote
//
// promote refuses while the replica still lags its primary (override
// with -force) and, with -old-primary, fences the deposed primary so it
// rejects writes immediately.
//
// Pass -passphrase to keep the state encrypted at rest.
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"strings"

	"github.com/lsds/browserflow"
	"github.com/lsds/browserflow/internal/fingerprint"
	"github.com/lsds/browserflow/internal/store"
	"github.com/lsds/browserflow/internal/tagserver"
)

func main() {
	if err := run(os.Args[1:], os.Stdin, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "bfctl:", err)
		os.Exit(1)
	}
}

func run(args []string, stdin io.Reader, stdout io.Writer) error {
	fs := flag.NewFlagSet("bfctl", flag.ContinueOnError)
	var (
		statePath  = fs.String("state", "browserflow.state", "state file path")
		passphrase = fs.String("passphrase", "", "encrypt/decrypt state at rest")
		mode       = fs.String("mode", "advisory", "enforcement mode: advisory, enforcing, encrypting")
		policyPath = fs.String("policy", "", "policy JSON file (init): registers its services")
		serverURL  = fs.String("server", "", "shared tag service URL; observe/check/suppress/label/stats run remotely")
		device     = fs.String("device", "bfctl", "device name reported to the tag service")
		oldPrimary = fs.String("old-primary", "", "deposed primary to fence after promote")
		force      = fs.Bool("force", false, "promote even when the replica lags its primary")
		walDir     = fs.String("wal-dir", "", "durable directory to verify offline (fsck)")

		name = fs.String("name", "", "service name (add-service)")
		lp   = fs.String("lp", "", "comma-separated privilege tags (add-service)")
		lc   = fs.String("lc", "", "comma-separated confidentiality tags (add-service)")

		srcPartition = fs.String("src-partition", "", "partition being split (split)")
		splitAt      = fs.Uint64("split-at", 0, "last partition key the source keeps (split)")
		newPartition = fs.String("new-partition", "", "partition ID for the moved range (split)")
		target       = fs.String("target", "", "split-target replica URL to promote (split)")
		targetNodes  = fs.String("target-nodes", "", "comma-separated node URLs of the new partition group (split; default: -target)")

		service = fs.String("service", "", "origin service (observe)")
		seg     = fs.String("seg", "", "segment ID")
		text    = fs.String("text", "", "text ('-' reads stdin)")
		dest    = fs.String("dest", "", "destination service (check)")
		user    = fs.String("user", "", "acting user")
		tag     = fs.String("tag", "", "tag (suppress/allocate/grant)")
		why     = fs.String("why", "", "justification (suppress)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() < 1 {
		return errors.New("command required: init, add-service, observe, check, sources, attribute, suppress, allocate, grant, label, stats, audit, promote, repl-status, split, ring, metrics, trace, fsck, scrub-status, policy")
	}
	cmd := fs.Arg(0)

	// Replication operator commands talk to /v1/repl/* directly.
	if handled, err := dispatchRepl(cmd, *serverURL, *oldPrimary, *force, stdout); handled {
		return err
	}

	// Partition operator commands: `split` reshards a partition live,
	// `ring` prints the whole-cluster topology.
	if *splitAt > math.MaxUint32 {
		return fmt.Errorf("-split-at %d exceeds the 32-bit keyspace", *splitAt)
	}
	var tnodes []string
	if *targetNodes != "" {
		tnodes = strings.Split(*targetNodes, ",")
	}
	if handled, err := dispatchPart(cmd, splitArgs{
		server: *serverURL, srcID: *srcPartition, at: uint32(*splitAt),
		newID: *newPartition, target: *target, targetNodes: tnodes, force: *force,
	}, stdout); handled {
		return err
	}

	// Observability operator commands: `metrics` dumps /v1/metrics,
	// `trace <id>` prints one trace's spans from /v1/debug/traces.
	if handled, err := dispatchObs(cmd, *serverURL, fs.Arg(1), stdout); handled {
		return err
	}

	// Policy-file operator commands: `policy lint <files...>` runs the
	// static analyzer bftagd applies at startup.
	if handled, err := dispatchPolicy(cmd, fs.Args()[1:], stdout); handled {
		return err
	}

	// Self-healing storage operator commands: `fsck` verifies a durable
	// directory offline, `scrub-status` shows a node's scrub state.
	var fsckKey []byte
	if *passphrase != "" {
		fsckKey = store.DeriveKey(*passphrase)
	}
	if handled, err := dispatchStorage(cmd, *walDir, fsckKey, *serverURL, stdout); handled {
		return err
	}

	policyMode, err := parseMode(*mode)
	if err != nil {
		return err
	}
	body := *text
	if body == "-" {
		raw, err := io.ReadAll(stdin)
		if err != nil {
			return err
		}
		body = string(raw)
	}

	if *serverURL != "" {
		return runRemote(remoteArgs{
			cmd: cmd, server: *serverURL, device: *device,
			service: *service, seg: *seg, body: body, dest: *dest,
			user: *user, tag: *tag, why: *why,
		}, stdout)
	}

	var mw *browserflow.Middleware
	if cmd == "init" && *policyPath != "" {
		if mw, err = browserflow.NewFromPolicyFile(*policyPath); err != nil {
			return err
		}
	} else {
		cfg := browserflow.DefaultConfig()
		cfg.Mode = policyMode
		if mw, err = browserflow.New(cfg); err != nil {
			return err
		}
	}
	if cmd != "init" {
		if err := mw.Load(*statePath, *passphrase); err != nil {
			return fmt.Errorf("load state (run init first?): %w", err)
		}
	}

	save := true
	switch cmd {
	case "init":
		// Fresh state; nothing else to do.

	case "add-service":
		if *name == "" {
			return errors.New("add-service requires -name")
		}
		err = mw.RegisterService(browserflow.Service{
			Name:            *name,
			Privilege:       splitTags(*lp),
			Confidentiality: splitTags(*lc),
		})
		if err != nil {
			return err
		}
		fmt.Fprintf(stdout, "service %s registered (Lp=%s Lc=%s)\n", *name, *lp, *lc)

	case "observe":
		if *service == "" || *seg == "" || body == "" {
			return errors.New("observe requires -service, -seg and -text")
		}
		verdict, err := mw.ObserveParagraph(*service, browserflow.SegmentID(*seg), body)
		if err != nil {
			return err
		}
		printVerdict(stdout, verdict)

	case "check":
		if *dest == "" || body == "" {
			return errors.New("check requires -dest and -text")
		}
		verdict, err := mw.CheckText(body, *dest)
		if err != nil {
			return err
		}
		printVerdict(stdout, verdict)
		save = false

	case "suppress":
		if *user == "" || *seg == "" || *tag == "" {
			return errors.New("suppress requires -user, -seg and -tag")
		}
		if err := mw.Suppress(*user, browserflow.SegmentID(*seg), browserflow.Tag(*tag), *why); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "tag %s suppressed on %s by %s\n", *tag, *seg, *user)

	case "allocate":
		if *user == "" || *tag == "" {
			return errors.New("allocate requires -user and -tag")
		}
		if err := mw.AllocateTag(*user, browserflow.Tag(*tag)); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "tag %s allocated to %s\n", *tag, *user)

	case "grant":
		if *user == "" || *tag == "" || *service == "" {
			return errors.New("grant requires -user, -tag and -service")
		}
		if err := mw.GrantTag(*user, *service, browserflow.Tag(*tag)); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "tag %s granted to %s\n", *tag, *service)

	case "sources":
		if body == "" {
			return errors.New("sources requires -text")
		}
		sources, err := mw.Sources(body)
		if err != nil {
			return err
		}
		if len(sources) == 0 {
			fmt.Fprintln(stdout, "no sources: text discloses nothing tracked")
		}
		for _, src := range sources {
			fmt.Fprintf(stdout, "discloses %.0f%% of %s (threshold %.2f)\n", src.Disclosure*100, src.Seg, src.Threshold)
		}
		save = false

	case "attribute":
		if *seg == "" || body == "" {
			return errors.New("attribute requires -seg and -text")
		}
		spans, err := mw.Attribute(body, browserflow.SegmentID(*seg))
		if err != nil {
			return err
		}
		if len(spans) == 0 {
			fmt.Fprintln(stdout, "no passages attributed")
		}
		for _, s := range spans {
			fmt.Fprintf(stdout, "[%d:%d] %q\n", s.Start, s.End, body[s.Start:s.End])
		}
		save = false

	case "label":
		if *seg == "" {
			return errors.New("label requires -seg")
		}
		label := mw.Label(browserflow.SegmentID(*seg))
		if label == nil {
			fmt.Fprintf(stdout, "segment %s untracked\n", *seg)
		} else {
			fmt.Fprintf(stdout, "%s: %s\n", *seg, label)
		}
		save = false

	case "services":
		for _, svc := range mw.Registry().Services() {
			fmt.Fprintf(stdout, "%-12s Lp=%s Lc=%s\n", svc.Name, svc.Privilege, svc.Confidentiality)
		}
		save = false

	case "stats":
		s := mw.Stats()
		fmt.Fprintf(stdout, "paragraph segments: %d\ndocument segments:  %d\ndistinct hashes:    %d\naudit entries:      %d\n",
			s.ParagraphSegments, s.DocumentSegments, s.DistinctHashes, s.AuditEntries)
		save = false

	case "audit":
		for _, e := range mw.AuditEntries() {
			fmt.Fprintf(stdout, "%4d %s %-9s user=%s tag=%s seg=%s svc=%s %q\n",
				e.Seq, e.Time.Format("2006-01-02T15:04:05"), e.Action, e.User, e.Tag, e.Segment, e.Service, e.Justification)
		}
		save = false

	default:
		return fmt.Errorf("unknown command %q", cmd)
	}

	if save {
		if err := mw.Save(*statePath, *passphrase); err != nil {
			return fmt.Errorf("save state: %w", err)
		}
	}
	return nil
}

// remoteArgs carries the flags a remote invocation needs.
type remoteArgs struct {
	cmd, server, device            string
	service, body, dest, user, why string
	seg, tag                       string
}

// runRemote executes the command against a shared tag service.
func runRemote(a remoteArgs, stdout io.Writer) error {
	client, err := tagserver.NewClient(a.server, a.device, fingerprint.DefaultConfig())
	if err != nil {
		return err
	}
	switch a.cmd {
	case "observe":
		if a.service == "" || a.seg == "" || a.body == "" {
			return errors.New("observe requires -service, -seg and -text")
		}
		v, err := client.Observe(a.service, browserflow.SegmentID(a.seg), a.body)
		if err != nil {
			return err
		}
		printRemoteVerdict(stdout, v)

	case "check":
		if a.dest == "" || a.body == "" {
			return errors.New("check requires -dest and -text")
		}
		v, err := client.Check(a.body, a.dest)
		if err != nil {
			return err
		}
		printRemoteVerdict(stdout, v)

	case "suppress":
		if a.user == "" || a.seg == "" || a.tag == "" {
			return errors.New("suppress requires -user, -seg and -tag")
		}
		if err := client.Suppress(a.user, browserflow.SegmentID(a.seg), browserflow.Tag(a.tag), a.why); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "tag %s suppressed on %s by %s (remote)\n", a.tag, a.seg, a.user)

	case "label":
		if a.seg == "" {
			return errors.New("label requires -seg")
		}
		label, err := client.Label(browserflow.SegmentID(a.seg))
		if err != nil {
			return err
		}
		fmt.Fprintf(stdout, "%s: explicit=%v implicit=%v suppressed=%v\n",
			a.seg, label.Explicit, label.Implicit, label.Suppressed)

	case "stats":
		stats, err := client.Stats()
		if err != nil {
			return err
		}
		fmt.Fprintf(stdout, "segments: %d\ndistinct hashes: %d\naudit entries: %d\n",
			stats.Segments, stats.DistinctHashes, stats.AuditEntries)

	default:
		return fmt.Errorf("command %q not available in -server mode (use: observe, check, suppress, label, stats)", a.cmd)
	}
	return nil
}

func printRemoteVerdict(w io.Writer, v tagserver.Verdict) {
	fmt.Fprintf(w, "decision: %s\n", v.Decision)
	if len(v.Violating) > 0 {
		fmt.Fprintf(w, "violating tags: %v\n", v.Violating)
	}
	for _, src := range v.Sources {
		fmt.Fprintf(w, "discloses %.0f%% of %s\n", src.Disclosure*100, src.Seg)
	}
}

func parseMode(s string) (browserflow.Mode, error) {
	switch s {
	case "advisory":
		return browserflow.ModeAdvisory, nil
	case "enforcing":
		return browserflow.ModeEnforcing, nil
	case "encrypting":
		return browserflow.ModeEncrypting, nil
	default:
		return 0, fmt.Errorf("unknown mode %q", s)
	}
}

func splitTags(s string) []browserflow.Tag {
	if s == "" {
		return nil
	}
	parts := strings.Split(s, ",")
	out := make([]browserflow.Tag, 0, len(parts))
	for _, p := range parts {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, browserflow.Tag(p))
		}
	}
	return out
}

func printVerdict(w io.Writer, v browserflow.Verdict) {
	fmt.Fprintf(w, "decision: %s\n", v.Decision)
	if len(v.Violating) > 0 {
		fmt.Fprintf(w, "violating tags: %v\n", v.Violating)
	}
	for _, src := range v.Sources {
		fmt.Fprintf(w, "discloses %.0f%% of %s (threshold %.2f)\n", src.Disclosure*100, src.Seg, src.Threshold)
	}
}
