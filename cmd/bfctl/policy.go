package main

import (
	"errors"
	"fmt"
	"io"
	"os"

	"github.com/lsds/browserflow/internal/policyfile"
)

// dispatchPolicy handles the policy-file operator family. `policy lint`
// runs the static analyzer over one or more policy files and prints every
// diagnostic with its rule ID and byte offset; any diagnostic — warning
// or error — makes the command fail, so a clean exit means the file is
// safe to ship to bftagd (which runs the same analysis at startup).
func dispatchPolicy(cmd string, args []string, stdout io.Writer) (bool, error) {
	if cmd != "policy" {
		return false, nil
	}
	if len(args) < 1 {
		return true, errors.New("policy subcommand required: lint")
	}
	switch args[0] {
	case "lint":
		if len(args) < 2 {
			return true, errors.New("policy lint requires at least one policy file")
		}
		return true, runPolicyLint(args[1:], stdout)
	default:
		return true, fmt.Errorf("unknown policy subcommand %q (want: lint)", args[0])
	}
}

// runPolicyLint lints each file independently so one broken policy does
// not hide diagnostics in the others, then fails if any file produced
// diagnostics.
func runPolicyLint(paths []string, stdout io.Writer) error {
	flagged := 0
	for _, path := range paths {
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		diags := policyfile.Lint(data)
		if len(diags) == 0 {
			fmt.Fprintf(stdout, "%s: clean\n", path)
			continue
		}
		flagged++
		for _, d := range diags {
			fmt.Fprintf(stdout, "%s: %s\n", path, d)
		}
	}
	if flagged > 0 {
		return fmt.Errorf("policy lint: %d of %d file(s) flagged", flagged, len(paths))
	}
	return nil
}
