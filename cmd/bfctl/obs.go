package main

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"sort"
	"strings"
	"time"
)

// obsHTTP is the client for observability operator calls. Metrics and
// trace lookups are read-only control-plane requests; a short timeout
// keeps a wedged node from hanging the CLI.
var obsHTTP = &http.Client{Timeout: 10 * time.Second}

// wireSpan mirrors the JSON shape of one span served by
// /v1/debug/traces (internal/obs.Span).
type wireSpan struct {
	Trace    string            `json:"trace"`
	Name     string            `json:"name"`
	Start    time.Time         `json:"start"`
	Duration time.Duration     `json:"duration_ns"`
	Err      string            `json:"err,omitempty"`
	Attrs    map[string]string `json:"attrs,omitempty"`
}

// wireTraces mirrors the JSON envelope of /v1/debug/traces.
type wireTraces struct {
	Trace string     `json:"trace"`
	Spans []wireSpan `json:"spans"`
}

// obsGet fetches one observability endpoint, bounding the body read.
func obsGet(base, pathAndQuery string) ([]byte, error) {
	resp, err := obsHTTP.Get(strings.TrimRight(base, "/") + pathAndQuery)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, 8<<20))
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("%s: %s", resp.Status, strings.TrimSpace(string(body)))
	}
	return body, nil
}

// runMetrics dumps a node's Prometheus exposition (/v1/metrics).
func runMetrics(server string, stdout io.Writer) error {
	body, err := obsGet(server, "/v1/metrics")
	if err != nil {
		return err
	}
	_, err = stdout.Write(body)
	return err
}

// runTrace fetches and pretty-prints the spans of one trace ID from a
// node's span ring (/v1/debug/traces?trace=<id>), oldest first. Without
// an ID it lists the distinct trace IDs currently buffered.
func runTrace(server, traceID string, stdout io.Writer) error {
	q := "/v1/debug/traces"
	if traceID != "" {
		q += "?trace=" + url.QueryEscape(traceID)
	}
	body, err := obsGet(server, q)
	if err != nil {
		return err
	}
	var out wireTraces
	if err := json.Unmarshal(body, &out); err != nil {
		return fmt.Errorf("decode traces: %w", err)
	}

	if traceID == "" {
		// Listing mode: summarise the buffered traces.
		counts := map[string]int{}
		var order []string
		for _, s := range out.Spans {
			if counts[s.Trace] == 0 {
				order = append(order, s.Trace)
			}
			counts[s.Trace]++
		}
		sort.Strings(order)
		if len(order) == 0 {
			fmt.Fprintln(stdout, "no spans buffered")
			return nil
		}
		for _, id := range order {
			fmt.Fprintf(stdout, "%s  %d span(s)\n", id, counts[id])
		}
		return nil
	}

	if len(out.Spans) == 0 {
		fmt.Fprintf(stdout, "trace %s: no spans buffered on %s\n", traceID, server)
		return nil
	}
	fmt.Fprintf(stdout, "trace %s (%d spans)\n", traceID, len(out.Spans))
	for _, s := range out.Spans {
		fmt.Fprintf(stdout, "  %-28s %12s", s.Name, s.Duration.Round(time.Microsecond))
		if len(s.Attrs) > 0 {
			keys := make([]string, 0, len(s.Attrs))
			for k := range s.Attrs {
				keys = append(keys, k)
			}
			sort.Strings(keys)
			for _, k := range keys {
				fmt.Fprintf(stdout, " %s=%s", k, s.Attrs[k])
			}
		}
		if s.Err != "" {
			fmt.Fprintf(stdout, " err=%q", s.Err)
		}
		fmt.Fprintln(stdout)
	}
	return nil
}

// dispatchObs routes the observability operator commands; it reports
// whether cmd was one of them. `bfctl -server URL metrics` dumps the
// Prometheus exposition; `bfctl -server URL trace <id>` prints one
// trace's spans (omit <id> to list buffered trace IDs).
func dispatchObs(cmd, server, traceID string, stdout io.Writer) (bool, error) {
	switch cmd {
	case "metrics":
		if server == "" {
			return true, errors.New("metrics requires -server")
		}
		return true, runMetrics(server, stdout)
	case "trace":
		if server == "" {
			return true, errors.New("trace requires -server")
		}
		return true, runTrace(server, traceID, stdout)
	}
	return false, nil
}
