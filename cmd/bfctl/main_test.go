package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// ctl invokes run with a state file in dir, returning stdout.
func ctl(t *testing.T, dir string, args ...string) (string, error) {
	t.Helper()
	full := append([]string{"-state", filepath.Join(dir, "state.bf")}, args...)
	var out bytes.Buffer
	err := run(full, strings.NewReader(""), &out)
	return out.String(), err
}

func mustCtl(t *testing.T, dir string, args ...string) string {
	t.Helper()
	out, err := ctl(t, dir, args...)
	if err != nil {
		t.Fatalf("bfctl %v: %v", args, err)
	}
	return out
}

const ctlSecret = "The acquisition target list for next quarter includes three storage startups and a database vendor."

func TestLifecycle(t *testing.T) {
	dir := t.TempDir()
	mustCtl(t, dir, "init")
	mustCtl(t, dir, "-name", "wiki", "-lp", "tw", "-lc", "tw", "add-service")
	mustCtl(t, dir, "-name", "docs", "add-service")

	out := mustCtl(t, dir, "-service", "wiki", "-seg", "wiki/m&a#p0", "-text", ctlSecret, "observe")
	if !strings.Contains(out, "decision: allow") {
		t.Errorf("observe output: %q", out)
	}

	// Release check against docs flags the text.
	out = mustCtl(t, dir, "-dest", "docs", "-text", ctlSecret, "check")
	if !strings.Contains(out, "decision: warn") || !strings.Contains(out, "tw") {
		t.Errorf("check output: %q", out)
	}

	// Label inspection.
	out = mustCtl(t, dir, "-seg", "wiki/m&a#p0", "label")
	if !strings.Contains(out, "tw") {
		t.Errorf("label output: %q", out)
	}

	// Suppression + audit.
	mustCtl(t, dir, "-user", "alice", "-seg", "wiki/m&a#p0", "-tag", "tw", "-why", "board approved", "suppress")
	out = mustCtl(t, dir, "audit")
	if !strings.Contains(out, "suppress") || !strings.Contains(out, "alice") {
		t.Errorf("audit output: %q", out)
	}

	// Stats.
	out = mustCtl(t, dir, "stats")
	if !strings.Contains(out, "paragraph segments: 1") {
		t.Errorf("stats output: %q", out)
	}

	// Services listing.
	out = mustCtl(t, dir, "services")
	if !strings.Contains(out, "wiki") || !strings.Contains(out, "Lp={tw}") {
		t.Errorf("services output: %q", out)
	}
}

func TestSourcesAndAttribute(t *testing.T) {
	dir := t.TempDir()
	mustCtl(t, dir, "init")
	mustCtl(t, dir, "-name", "wiki", "-lp", "tw", "-lc", "tw", "add-service")
	mustCtl(t, dir, "-service", "wiki", "-seg", "wiki/m&a#p0", "-text", ctlSecret, "observe")

	out := mustCtl(t, dir, "-text", ctlSecret, "sources")
	if !strings.Contains(out, "wiki/m&a#p0") || !strings.Contains(out, "100%") {
		t.Errorf("sources output: %q", out)
	}
	out = mustCtl(t, dir, "-text", "nothing related here at all today", "sources")
	if !strings.Contains(out, "no sources") {
		t.Errorf("sources output: %q", out)
	}

	out = mustCtl(t, dir, "-seg", "wiki/m&a#p0", "-text", "prefix words "+ctlSecret, "attribute")
	if !strings.Contains(out, "[") || !strings.Contains(out, "quarter") {
		t.Errorf("attribute output: %q", out)
	}
	out = mustCtl(t, dir, "-seg", "wiki/m&a#p0", "-text", "unrelated body", "attribute")
	if !strings.Contains(out, "no passages") {
		t.Errorf("attribute output: %q", out)
	}
	// Missing flags.
	if _, err := ctl(t, dir, "sources"); err == nil {
		t.Error("sources without text accepted")
	}
	if _, err := ctl(t, dir, "attribute"); err == nil {
		t.Error("attribute without flags accepted")
	}
}

func TestEnforcingMode(t *testing.T) {
	dir := t.TempDir()
	mustCtl(t, dir, "init")
	mustCtl(t, dir, "-name", "wiki", "-lp", "tw", "-lc", "tw", "add-service")
	mustCtl(t, dir, "-name", "docs", "add-service")
	mustCtl(t, dir, "-service", "wiki", "-seg", "wiki/x#p0", "-text", ctlSecret, "observe")
	out := mustCtl(t, dir, "-mode", "enforcing", "-dest", "docs", "-text", ctlSecret, "check")
	if !strings.Contains(out, "decision: block") {
		t.Errorf("enforcing check: %q", out)
	}
}

func TestEncryptedState(t *testing.T) {
	dir := t.TempDir()
	mustCtl(t, dir, "-passphrase", "pw", "init")
	mustCtl(t, dir, "-passphrase", "pw", "-name", "wiki", "-lp", "tw", "-lc", "tw", "add-service")
	// Wrong passphrase fails to load.
	if _, err := ctl(t, dir, "-passphrase", "nope", "stats"); err == nil {
		t.Error("wrong passphrase accepted")
	}
	out := mustCtl(t, dir, "-passphrase", "pw", "stats")
	if !strings.Contains(out, "paragraph segments") {
		t.Errorf("stats: %q", out)
	}
}

func TestStdinText(t *testing.T) {
	dir := t.TempDir()
	mustCtl(t, dir, "init")
	mustCtl(t, dir, "-name", "wiki", "-lp", "tw", "-lc", "tw", "add-service")
	var out bytes.Buffer
	err := run([]string{"-state", filepath.Join(dir, "state.bf"),
		"-service", "wiki", "-seg", "wiki/s#p0", "-text", "-", "observe"},
		strings.NewReader(ctlSecret), &out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "decision:") {
		t.Errorf("output: %q", out.String())
	}
}

func TestInitFromPolicyFile(t *testing.T) {
	dir := t.TempDir()
	policyPath := filepath.Join(dir, "policy.json")
	policyJSON := `{"services":[{"name":"wiki","privilege":["tw"],"confidentiality":["tw"]},{"name":"docs"}]}`
	if err := os.WriteFile(policyPath, []byte(policyJSON), 0o600); err != nil {
		t.Fatal(err)
	}
	mustCtl(t, dir, "-policy", policyPath, "init")
	out := mustCtl(t, dir, "services")
	if !strings.Contains(out, "wiki") || !strings.Contains(out, "docs") {
		t.Errorf("services after policy init: %q", out)
	}
	// Observing against a policy-registered service works immediately.
	out = mustCtl(t, dir, "-service", "wiki", "-seg", "wiki/a#p0", "-text", ctlSecret, "observe")
	if !strings.Contains(out, "decision: allow") {
		t.Errorf("observe: %q", out)
	}
	// Bad policy file errors.
	if _, err := ctl(t, dir, "-policy", filepath.Join(dir, "missing.json"), "init"); err == nil {
		t.Error("missing policy accepted")
	}
}

func TestTagCommands(t *testing.T) {
	dir := t.TempDir()
	mustCtl(t, dir, "init")
	mustCtl(t, dir, "-name", "wiki", "-lp", "tw", "-lc", "tw", "add-service")
	mustCtl(t, dir, "-user", "bob", "-tag", "tn", "allocate")
	mustCtl(t, dir, "-user", "bob", "-tag", "tn", "-service", "wiki", "grant")
	out := mustCtl(t, dir, "audit")
	if !strings.Contains(out, "allocate") || !strings.Contains(out, "grant") {
		t.Errorf("audit: %q", out)
	}
}

func TestErrors(t *testing.T) {
	dir := t.TempDir()
	tests := []struct {
		name string
		args []string
	}{
		{name: "no command", args: nil},
		{name: "unknown command", args: []string{"frobnicate"}},
		{name: "missing state", args: []string{"stats"}},
		{name: "bad mode", args: []string{"-mode", "yolo", "init"}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := ctl(t, dir, tt.args...); err == nil {
				t.Errorf("args %v: want error", tt.args)
			}
		})
	}
	// Missing required flags per command.
	mustCtl(t, dir, "init")
	for _, args := range [][]string{
		{"add-service"},
		{"observe"},
		{"check"},
		{"suppress"},
		{"allocate"},
		{"grant"},
		{"label"},
	} {
		if _, err := ctl(t, dir, args...); err == nil {
			t.Errorf("%v without flags: want error", args)
		}
	}
}

func TestSplitTags(t *testing.T) {
	got := splitTags(" a, b ,,c ")
	if len(got) != 3 || got[0] != "a" || got[1] != "b" || got[2] != "c" {
		t.Errorf("splitTags=%v", got)
	}
	if splitTags("") != nil {
		t.Error("empty splitTags should be nil")
	}
}
