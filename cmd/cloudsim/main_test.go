package main

import (
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/lsds/browserflow/internal/webapp"
)

func TestDemoRunsEndToEnd(t *testing.T) {
	if err := run([]string{"-demo"}); err != nil {
		t.Fatal(err)
	}
}

func TestDemoWritesFigure2HTML(t *testing.T) {
	path := filepath.Join(t.TempDir(), "fig2.html")
	if err := run([]string{"-demo", "-htmlout", path}); err != nil {
		t.Fatal(err)
	}
	html, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(html), "background-color") {
		t.Error("Figure 2 artifact missing the red paragraph background")
	}
	if !strings.Contains(string(html), "kix-paragraph") {
		t.Error("artifact missing the docs editor structure")
	}
}

func TestRunBadFlag(t *testing.T) {
	if err := run([]string{"-bogus"}); err == nil {
		t.Error("want flag error")
	}
}

func TestSeededContentServed(t *testing.T) {
	server := webapp.NewServer()
	seed(server)
	srv := httptest.NewServer(server)
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/wiki/interview-guidelines")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(body), "two independent interviewers") {
		t.Error("seeded wiki content missing")
	}

	resp2, err := http.Get(srv.URL + "/docs/shared-notes")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	body2, err := io.ReadAll(resp2.Body)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(body2), "kix-paragraph") {
		t.Error("seeded doc content missing")
	}
}
