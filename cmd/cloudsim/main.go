// Command cloudsim runs the three simulated cloud services (wiki, itool,
// docs) on a local HTTP address, optionally driving a demonstration of the
// BrowserFlow plug-in against them.
//
// Usage:
//
//	cloudsim -addr :8080             # serve the three services
//	cloudsim -demo                   # run the paste-detection demo and exit
package main

import (
	"flag"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"

	"github.com/lsds/browserflow/internal/audit"
	"github.com/lsds/browserflow/internal/browser"
	"github.com/lsds/browserflow/internal/disclosure"
	"github.com/lsds/browserflow/internal/intercept"
	"github.com/lsds/browserflow/internal/metrics"
	"github.com/lsds/browserflow/internal/policy"
	"github.com/lsds/browserflow/internal/tdm"
	"github.com/lsds/browserflow/internal/webapp"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "cloudsim:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("cloudsim", flag.ContinueOnError)
	var (
		addr    = fs.String("addr", ":8080", "listen address")
		demo    = fs.Bool("demo", false, "run the in-process plug-in demo and exit")
		htmlOut = fs.String("htmlout", "", "with -demo: write the docs tab's final DOM (Figure 2's red-paragraph state) to this HTML file")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	server := webapp.NewServer()
	seed(server)

	if *demo {
		return runDemo(server, *htmlOut)
	}

	fmt.Printf("cloudsim: serving wiki/itool/docs on %s\n", *addr)
	fmt.Printf("try: curl http://localhost%s/wiki/interview-guidelines\n", *addr)
	return http.ListenAndServe(*addr, server)
}

func seed(s *webapp.Server) {
	s.SeedWikiPage("interview-guidelines",
		"Interviews always involve two independent interviewers and a written evaluation filed the same day.",
		"Candidate evaluations must never leave the internal tools, including anonymised excerpts.")
	s.SeedEvaluation("candidate-42",
		"Excellent grasp of consistency models; recommended for the distributed systems team.")
	s.SeedDoc("shared-notes",
		"Meeting notes shared with the external design agency.")
}

// runDemo builds a full in-process deployment and replays the §2 scenario:
// a user copies wiki text into the external docs editor and BrowserFlow
// warns. With htmlOut set, the docs tab's final DOM — including the red
// paragraph background of Figure 2 — is written to disk.
func runDemo(server *webapp.Server, htmlOut string) error {
	tracker, err := disclosure.NewTracker(disclosure.DefaultParams())
	if err != nil {
		return err
	}
	registry := tdm.NewRegistry(audit.NewLog())
	for _, svc := range []struct {
		name   string
		lp, lc tdm.TagSet
	}{
		{name: webapp.ServiceWiki, lp: tdm.NewTagSet("tw"), lc: tdm.NewTagSet("tw")},
		{name: webapp.ServiceITool, lp: tdm.NewTagSet("ti"), lc: tdm.NewTagSet("ti")},
		{name: webapp.ServiceDocs, lp: tdm.NewTagSet(), lc: tdm.NewTagSet()},
	} {
		if err := registry.RegisterService(svc.name, svc.lp, svc.lc); err != nil {
			return err
		}
	}
	engine, err := policy.NewEngine(tracker, registry, policy.ModeAdvisory)
	if err != nil {
		return err
	}

	httpSrv := httptest.NewServer(server)
	defer httpSrv.Close()

	latency := metrics.NewRecorder()
	plugin, err := intercept.New(intercept.Config{
		Engine:  engine,
		User:    "demo-user",
		Latency: latency,
		OnEvent: func(e intercept.Event) {
			if e.Verdict.Violation() {
				fmt.Printf("  [%s] %s: decision=%s violating=%v\n",
					e.Kind, e.Service, e.Verdict.Decision, e.Verdict.Violating)
			}
		},
	})
	if err != nil {
		return err
	}
	defer plugin.Shutdown()

	b := browser.New()
	plugin.AttachToBrowser(b)

	fmt.Println("demo: opening wiki tab (labels assigned to existing text)")
	wikiTab, err := b.OpenTab(httpSrv.URL + "/wiki/interview-guidelines")
	if err != nil {
		return err
	}
	plugin.Flush()

	fmt.Println("demo: opening docs tab")
	docsTab, err := b.OpenTab(httpSrv.URL + "/docs/shared-notes")
	if err != nil {
		return err
	}
	plugin.Flush()

	fmt.Println("demo: copying a wiki paragraph and pasting into docs")
	wikiTab.CopyText(wikiTab.Document().Root().ByID("par-0"))
	editor, err := webapp.AttachDocsEditor(docsTab)
	if err != nil {
		return err
	}
	if err := editor.PasteAppend(); err != nil {
		return err
	}
	plugin.Flush()

	fmt.Printf("demo: %d warnings issued, decision latency %s\n",
		plugin.WarnCount(), latency.Summarize())

	if htmlOut != "" {
		html := docsTab.Document().Root().OuterHTML()
		if err := os.WriteFile(htmlOut, []byte(html), 0o644); err != nil {
			return fmt.Errorf("write %s: %w", htmlOut, err)
		}
		fmt.Printf("demo: docs tab DOM (Figure 2 state) written to %s\n", htmlOut)
	}
	return nil
}
