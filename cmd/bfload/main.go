// Command bfload is an open-loop load generator for the BrowserFlow tag
// service. It models N concurrent editors typing with fixed think time:
// each editor fires one observe per keystroke batch at its *intended*
// schedule, never waiting for the previous response, and every latency is
// measured from the intended send time. This is the wrk2 discipline that
// avoids coordinated omission: a server that stalls does not slow the
// offered load down, it accumulates backlog and the stall shows up in the
// tail instead of being silently edited out of the measurement.
//
// bfload ramps the editor count in steps until the p99 latency SLO or the
// shed-rate bound is breached, then reports the largest editor count the
// node sustained. 429 responses count as shed, not errors: shedding under
// overload is the admission pipeline doing its job, and the capacity
// number is "editors served within SLO while shedding stays rare".
//
// Usage:
//
//	bfload                                # in-process server, ramp to breach
//	bfload -target http://host:7000       # load an external bftagd
//	bfload -editors 100 -step 100 -slo 250ms -out BENCH_6.json
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"sort"
	"strings"
	"sync"
	"time"

	"github.com/lsds/browserflow/internal/admission"
	"github.com/lsds/browserflow/internal/audit"
	"github.com/lsds/browserflow/internal/disclosure"
	"github.com/lsds/browserflow/internal/fingerprint"
	"github.com/lsds/browserflow/internal/policy"
	"github.com/lsds/browserflow/internal/segment"
	"github.com/lsds/browserflow/internal/tagserver"
	"github.com/lsds/browserflow/internal/tdm"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "bfload:", err)
		os.Exit(1)
	}
}

// stepResult is one rung of the ramp.
type stepResult struct {
	Editors    int     `json:"editors"`
	OfferedRPS float64 `json:"offeredRPS"`
	DoneRPS    float64 `json:"doneRPS"`
	P50Ms      float64 `json:"p50Ms"`
	P99Ms      float64 `json:"p99Ms"`
	MaxMs      float64 `json:"maxMs"`
	OK         int64   `json:"ok"`
	Shed       int64   `json:"shed"`
	Errors     int64   `json:"errors"`
	ShedRate   float64 `json:"shedRate"`
	Breached   bool    `json:"breached"`
}

// benchReport is the BENCH_6.json document.
type benchReport struct {
	Bench          string       `json:"bench"`
	Date           string       `json:"date"`
	Target         string       `json:"target"`
	ThinkMs        float64      `json:"thinkMs"`
	Stride         int          `json:"stride"`
	SLOMs          float64      `json:"sloMs"`
	MaxShedRate    float64      `json:"maxShedRate"`
	StepDurationMs float64      `json:"stepDurationMs"`
	Steps          []stepResult `json:"steps"`
	EditorsPerNode int          `json:"editorsPerNode"`
	RampExhausted  bool         `json:"rampExhausted,omitempty"`
}

// collector aggregates per-request outcomes for one ramp step.
type collector struct {
	mu        sync.Mutex
	latencies []time.Duration
	ok        int64
	shed      int64
	errs      int64
}

func (c *collector) record(lat time.Duration, status int, err error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	switch {
	case err != nil:
		c.errs++
	case status == http.StatusOK:
		c.ok++
		c.latencies = append(c.latencies, lat)
	case status == http.StatusTooManyRequests || status == http.StatusServiceUnavailable:
		c.shed++
	default:
		c.errs++
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("bfload", flag.ContinueOnError)
	var (
		target     = fs.String("target", "", "tag-service base URL, or a comma-separated node list (primary first) driven through the failover-aware cluster client; empty runs an in-process server")
		editors    = fs.Int("editors", 50, "editor count for the first ramp step")
		step       = fs.Int("step", 50, "editors added per ramp step")
		maxEditors = fs.Int("max-editors", 5000, "stop ramping past this editor count")
		think      = fs.Duration("think", 50*time.Millisecond, "think time between an editor's keystroke batches")
		stride     = fs.Int("stride", 20, "characters typed per observe (keystroke batch size)")
		duration   = fs.Duration("duration", 3*time.Second, "measurement window per ramp step")
		slo        = fs.Duration("slo", 250*time.Millisecond, "p99 latency SLO; the ramp stops when a step breaches it")
		maxShed    = fs.Float64("max-shed", 0.01, "shed-rate bound; the ramp stops when a step exceeds it")
		warmup     = fs.Duration("warmup", 500*time.Millisecond, "per-step settling window excluded from measurement (connection setup, cold caches)")
		out        = fs.String("out", "", "write the BENCH_6 report to this JSON file")
		service    = fs.String("service", "docs", "service name observes are attributed to")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *editors <= 0 || *step <= 0 || *stride <= 0 {
		return fmt.Errorf("-editors, -step and -stride must be positive")
	}

	base := *target
	if base == "" {
		srv, err := inprocServer()
		if err != nil {
			return err
		}
		defer srv.Close()
		base = srv.URL
		fmt.Println("bfload: in-process tag service at", base)
	}

	states := keystrokeStates(documentText(1600), *stride)
	client := &http.Client{
		Timeout: 10 * time.Second,
		Transport: &http.Transport{
			MaxIdleConns:        4096,
			MaxIdleConnsPerHost: 4096,
		},
	}

	// A comma-separated target is a replicated group: drive observes
	// through the cluster client so 421 failovers are followed instead of
	// counted as errors.
	obsFn := func(service, seg string, hashes []uint32) (int, error) {
		return observe(client, base, service, seg, hashes)
	}
	if nodes := strings.Split(base, ","); len(nodes) > 1 {
		cc, err := tagserver.NewClusterClient(nodes[0], nodes[1:], "bfload", fingerprint.DefaultConfig())
		if err != nil {
			return err
		}
		obsFn = func(service, seg string, hashes []uint32) (int, error) {
			_, err := cc.ObserveHashes(context.Background(), service, segment.ID(seg), hashes, "")
			switch {
			case err == nil:
				return http.StatusOK, nil
			case isOverloaded(err):
				return http.StatusTooManyRequests, nil
			case tagserver.IsUnavailable(err):
				return http.StatusServiceUnavailable, nil
			default:
				return 0, err
			}
		}
		fmt.Printf("bfload: cluster client over %d nodes (primary %s)\n", len(nodes), nodes[0])
	}

	report := benchReport{
		Bench:          "BENCH_6",
		Date:           time.Now().UTC().Format(time.RFC3339),
		Target:         base,
		ThinkMs:        float64(*think) / float64(time.Millisecond),
		Stride:         *stride,
		SLOMs:          float64(*slo) / float64(time.Millisecond),
		MaxShedRate:    *maxShed,
		StepDurationMs: float64(*duration) / float64(time.Millisecond),
	}

	lastGood := 0
	for n := *editors; n <= *maxEditors; n += *step {
		res := runStep(obsFn, *service, n, states, *think, *duration, *warmup)
		res.Breached = time.Duration(res.P99Ms*float64(time.Millisecond)) > *slo ||
			res.ShedRate > *maxShed || res.Errors > 0
		report.Steps = append(report.Steps, res)
		fmt.Printf("bfload: editors=%-5d offered=%.0f/s done=%.0f/s p50=%.1fms p99=%.1fms shed=%.2f%% errs=%d%s\n",
			n, res.OfferedRPS, res.DoneRPS, res.P50Ms, res.P99Ms, 100*res.ShedRate, res.Errors,
			map[bool]string{true: "  <-- SLO breach"}[res.Breached])
		if res.Breached {
			break
		}
		lastGood = n
	}
	report.EditorsPerNode = lastGood
	if len(report.Steps) > 0 && !report.Steps[len(report.Steps)-1].Breached {
		report.RampExhausted = true
	}
	fmt.Printf("bfload: capacity %d editors/node (p99 SLO %s, shed bound %.1f%%)\n",
		report.EditorsPerNode, *slo, 100**maxShed)

	if *out != "" {
		data, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(*out, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Println("bfload: wrote", *out)
	}
	return nil
}

// observeFn issues one observation, returning the effective HTTP status.
type observeFn func(service, seg string, hashes []uint32) (int, error)

// isOverloaded reports whether err is the cluster client's 429 surface.
func isOverloaded(err error) bool {
	_, ok := tagserver.AsOverloaded(err)
	return ok
}

// runStep drives n open-loop editors for warmup+window; requests whose
// intended send time falls inside the warmup are sent but not measured.
func runStep(obsFn observeFn, service string, n int, states [][]uint32, think, window, warmup time.Duration) stepResult {
	col := &collector{}
	ctx, cancel := context.WithTimeout(context.Background(), warmup+window)
	defer cancel()

	var wg sync.WaitGroup
	start := time.Now()
	measureFrom := start.Add(warmup)
	for e := 0; e < n; e++ {
		wg.Add(1)
		go func(e int) {
			defer wg.Done()
			editorLoop(ctx, obsFn, service, e, states, think, measureFrom, col)
		}(e)
	}
	wg.Wait()
	elapsed := time.Since(start) - warmup

	col.mu.Lock()
	defer col.mu.Unlock()
	sort.Slice(col.latencies, func(i, j int) bool { return col.latencies[i] < col.latencies[j] })
	total := col.ok + col.shed + col.errs
	res := stepResult{
		Editors:    n,
		OfferedRPS: float64(total) / elapsed.Seconds(),
		DoneRPS:    float64(col.ok) / elapsed.Seconds(),
		OK:         col.ok,
		Shed:       col.shed,
		Errors:     col.errs,
	}
	if total > 0 {
		res.ShedRate = float64(col.shed) / float64(total)
	}
	if len(col.latencies) > 0 {
		res.P50Ms = ms(quantile(col.latencies, 0.50))
		res.P99Ms = ms(quantile(col.latencies, 0.99))
		res.MaxMs = ms(col.latencies[len(col.latencies)-1])
	}
	return res
}

// editorLoop fires observes on the editor's intended schedule, never
// waiting for responses (open loop). Latency for request i is measured
// from start+i*think, the moment the keystroke happened, not from when
// the client got around to sending it.
func editorLoop(ctx context.Context, obsFn observeFn, service string, editor int, states [][]uint32, think time.Duration, measureFrom time.Time, col *collector) {
	seg := fmt.Sprintf("load/e%d#p0", editor)
	start := time.Now()
	var inflight sync.WaitGroup
	defer inflight.Wait()
	for i := 0; ; i++ {
		intended := start.Add(time.Duration(i) * think)
		if d := time.Until(intended); d > 0 {
			select {
			case <-ctx.Done():
				return
			case <-time.After(d):
			}
		} else if ctx.Err() != nil {
			return
		}
		hashes := states[i%len(states)]
		inflight.Add(1)
		go func(intended time.Time) {
			defer inflight.Done()
			status, err := obsFn(service, seg, hashes)
			if !intended.Before(measureFrom) {
				col.record(time.Since(intended), status, err)
			}
		}(intended)
	}
}

func observe(client *http.Client, base, service, seg string, hashes []uint32) (int, error) {
	body, err := json.Marshal(map[string]any{
		"service": service,
		"seg":     seg,
		"hashes":  hashes,
	})
	if err != nil {
		return 0, err
	}
	resp, err := client.Post(base+"/v1/observe", "application/json", strings.NewReader(string(body)))
	if err != nil {
		return 0, err
	}
	resp.Body.Close()
	return resp.StatusCode, nil
}

// inprocServer assembles engine + admission pipeline + tag server in
// process, so bfload with no -target benchmarks this build directly.
func inprocServer() (*httptest.Server, error) {
	tracker, err := disclosure.NewTracker(disclosure.Params{
		Fingerprint: fingerprint.DefaultConfig(),
		Tpar:        0.5,
		Tdoc:        0.5,
	})
	if err != nil {
		return nil, err
	}
	registry := tdm.NewRegistry(audit.NewLog())
	if err := registry.RegisterService("wiki", tdm.NewTagSet("tw"), tdm.NewTagSet("tw")); err != nil {
		return nil, err
	}
	if err := registry.RegisterService("docs", tdm.NewTagSet(), tdm.NewTagSet()); err != nil {
		return nil, err
	}
	engine, err := policy.NewEngine(tracker, registry, policy.ModeAdvisory)
	if err != nil {
		return nil, err
	}
	pipeline, err := admission.New(engine, admission.Config{})
	if err != nil {
		return nil, err
	}
	server, err := tagserver.NewServer(engine, tagserver.WithAdmission(pipeline))
	if err != nil {
		return nil, err
	}
	return httptest.NewServer(server), nil
}

// documentText generates a deterministic pseudo-document: enough distinct
// n-grams for realistic fingerprints, identical across runs.
func documentText(chars int) string {
	rng := rand.New(rand.NewSource(6))
	var b strings.Builder
	for b.Len() < chars {
		word := make([]byte, 3+rng.Intn(8))
		for i := range word {
			word[i] = byte('a' + rng.Intn(26))
		}
		b.Write(word)
		b.WriteByte(' ')
	}
	return b.String()[:chars]
}

// keystrokeStates returns the fingerprint hash sets of the document's
// growing prefixes, one per stride characters — what a browser extension
// would ship as the user types.
func keystrokeStates(text string, stride int) [][]uint32 {
	var states [][]uint32
	for end := stride; end <= len(text); end += stride {
		fp, err := fingerprint.Compute(text[:end], fingerprint.DefaultConfig())
		if err != nil || fp.Empty() {
			continue
		}
		states = append(states, fp.Hashes())
	}
	if len(states) == 0 {
		fp, _ := fingerprint.Compute(text, fingerprint.DefaultConfig())
		states = append(states, fp.Hashes())
	}
	return states
}

func quantile(sorted []time.Duration, q float64) time.Duration {
	idx := int(float64(len(sorted)) * q)
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

func ms(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }
