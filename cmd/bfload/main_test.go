package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

// A tiny ramp against the in-process server completes and writes a
// well-formed BENCH_6 report.
func TestBfloadSmoke(t *testing.T) {
	out := filepath.Join(t.TempDir(), "bench.json")
	err := run([]string{
		"-editors", "2",
		"-step", "2",
		"-max-editors", "2",
		"-think", "20ms",
		"-duration", "300ms",
		"-slo", "5s", // generous: the smoke test asserts mechanics, not capacity
		"-out", out,
	})
	if err != nil {
		t.Fatal(err)
	}

	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var report benchReport
	if err := json.Unmarshal(data, &report); err != nil {
		t.Fatalf("report not valid JSON: %v", err)
	}
	if report.Bench != "BENCH_6" {
		t.Errorf("bench=%q, want BENCH_6", report.Bench)
	}
	if len(report.Steps) != 1 {
		t.Fatalf("steps=%d, want 1", len(report.Steps))
	}
	st := report.Steps[0]
	if st.Editors != 2 {
		t.Errorf("step editors=%d, want 2", st.Editors)
	}
	if st.OK == 0 {
		t.Error("no successful observes recorded")
	}
	if st.Errors != 0 {
		t.Errorf("errors=%d, want 0", st.Errors)
	}
	if st.P99Ms <= 0 {
		t.Errorf("p99=%v, want > 0", st.P99Ms)
	}
	if report.EditorsPerNode != 2 {
		t.Errorf("editorsPerNode=%d, want 2", report.EditorsPerNode)
	}
	if !report.RampExhausted {
		t.Error("ramp should report exhausted (no breach at max-editors)")
	}
}

// keystrokeStates produces strictly growing prefixes with usable hashes.
func TestKeystrokeStates(t *testing.T) {
	states := keystrokeStates(documentText(800), 40)
	if len(states) < 10 {
		t.Fatalf("states=%d, want >= 10", len(states))
	}
	prev := 0
	for i, s := range states {
		if len(s) == 0 {
			t.Fatalf("state %d has no hashes", i)
		}
		if len(s) < prev {
			// Winnowing can plateau but prefixes should not shrink much;
			// a shrink of more than a window's worth means corruption.
			if prev-len(s) > 8 {
				t.Fatalf("state %d shrank from %d to %d hashes", i, prev, len(s))
			}
		}
		prev = len(s)
	}
}
