// Command bfdash serves the read-only operations dashboard over a saved
// BrowserFlow state file.
//
// Usage:
//
//	bfdash -state s.bf -passphrase pw -addr :8088
package main

import (
	"flag"
	"fmt"
	"net/http"
	"os"

	"github.com/lsds/browserflow"
	"github.com/lsds/browserflow/internal/dashboard"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "bfdash:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("bfdash", flag.ContinueOnError)
	var (
		statePath  = fs.String("state", "browserflow.state", "state file path")
		passphrase = fs.String("passphrase", "", "state passphrase")
		addr       = fs.String("addr", ":8088", "listen address")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	mw, err := browserflow.New(browserflow.DefaultConfig())
	if err != nil {
		return err
	}
	if err := mw.Load(*statePath, *passphrase); err != nil {
		return fmt.Errorf("load state: %w", err)
	}
	h, err := dashboard.New(mw.Tracker(), mw.Registry())
	if err != nil {
		return err
	}
	stats := mw.Stats()
	fmt.Printf("bfdash: serving on %s (%d segments, %d audit entries)\n",
		*addr, stats.ParagraphSegments, stats.AuditEntries)
	return http.ListenAndServe(*addr, h)
}
