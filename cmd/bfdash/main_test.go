package main

import (
	"path/filepath"
	"testing"

	"github.com/lsds/browserflow"
)

func TestRunErrors(t *testing.T) {
	if err := run([]string{"-badflag"}); err == nil {
		t.Error("bad flag accepted")
	}
	if err := run([]string{"-state", filepath.Join(t.TempDir(), "missing")}); err == nil {
		t.Error("missing state accepted")
	}
}

func TestRunListenFailure(t *testing.T) {
	// A valid state but an unusable listen address: setup succeeds, the
	// listener fails fast.
	dir := t.TempDir()
	statePath := filepath.Join(dir, "s.bf")
	mw, err := browserflow.New(browserflow.DefaultConfig(),
		browserflow.Service{Name: "wiki", Privilege: []browserflow.Tag{"tw"}, Confidentiality: []browserflow.Tag{"tw"}})
	if err != nil {
		t.Fatal(err)
	}
	if err := mw.Save(statePath, ""); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-state", statePath, "-addr", "256.256.256.256:0"}); err == nil {
		t.Error("expected listen error")
	}
}
