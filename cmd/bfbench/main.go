// Command bfbench regenerates the paper's evaluation tables and figures
// (§6) from the synthetic corpora.
//
// Usage:
//
//	bfbench -experiment all
//	bfbench -experiment fig9a
//	bfbench -experiment fig13 -scale paper
//
// Experiments: table1, fig8, fig9a, fig9b, fig10, fig11, fig12, fig13,
// ablation-cache, ablation-auth, ablation-winnow, all.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"github.com/lsds/browserflow/internal/disclosure"
	"github.com/lsds/browserflow/internal/expt"
	"github.com/lsds/browserflow/internal/fingerprint"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "bfbench:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("bfbench", flag.ContinueOnError)
	var (
		experiment = fs.String("experiment", "all", "experiment to run (table1, fig8, fig9a, fig9b, fig10, fig11, fig12, fig13, ablation-cache, ablation-auth, ablation-winnow, all)")
		scaleName  = fs.String("scale", "default", "corpus scale: default or paper")
		seed       = fs.Int64("seed", 1, "generator seed")
		revisions  = fs.Int("revisions", 0, "override revisions per article")
		books      = fs.Int("books", 0, "override e-book count")
		tpar       = fs.Float64("tpar", 0.5, "paragraph disclosure threshold")
		samples    = fs.Int("samples", 10, "revision samples per article (fig9)")
		steps      = fs.Int("steps", 5, "database size steps (fig13)")
		probes     = fs.Int("probes", 20, "paste probes per step (fig13)")
		outDir     = fs.String("out", "", "also write each experiment's output to <out>/<name>.txt")
		benchJSON  = fs.String("benchjson", "", "write the hotpath experiment's result as JSON to this file")
		hashes     = fs.String("hashes", "", "comma-separated distinct-hash targets for -experiment corpus (default 1000000,5000000,10000000)")
		rssBudget  = fs.Int("rss-budget-mb", 0, "fail -experiment corpus if process RSS exceeds this budget (MB)")
		cmpJSON    = fs.Bool("compare-json", true, "also time the legacy JSON snapshot parse in -experiment corpus")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	scale := expt.DefaultScale()
	if *scaleName == "paper" {
		scale = expt.PaperScale()
	} else if *scaleName != "default" {
		return fmt.Errorf("unknown scale %q", *scaleName)
	}
	scale.Seed = *seed
	if *revisions > 0 {
		scale.Revisions = *revisions
	}
	if *books > 0 {
		scale.Books = *books
	}

	fpCfg := fingerprint.DefaultConfig()
	params := disclosure.DefaultParams()
	params.Tpar = *tpar

	runners := map[string]func() (string, error){
		"table1": func() (string, error) {
			return expt.RunTable1(scale).Format(), nil
		},
		"fig8": func() (string, error) {
			return expt.RunFigure8(scale).Format(), nil
		},
		"fig9a": func() (string, error) {
			r, err := expt.RunFigure9(scale, true, *samples, fpCfg, *tpar)
			return r.Format(), err
		},
		"fig9b": func() (string, error) {
			r, err := expt.RunFigure9(scale, false, *samples, fpCfg, *tpar)
			return r.Format(), err
		},
		"fig9adoc": func() (string, error) {
			r, err := expt.RunFigure9Doc(scale, true, *samples, fpCfg)
			return r.Format(), err
		},
		"fig9bdoc": func() (string, error) {
			r, err := expt.RunFigure9Doc(scale, false, *samples, fpCfg)
			return r.Format(), err
		},
		"fig10": func() (string, error) {
			r, err := expt.RunFigure10(scale, fpCfg, *tpar)
			return r.Format(), err
		},
		"fig11": func() (string, error) {
			r, err := expt.RunFigure11(scale, fpCfg, 0.1)
			return r.Format(), err
		},
		"fig12": func() (string, error) {
			r, err := expt.RunFigure12(scale, params)
			return r.Format(), err
		},
		"fig13": func() (string, error) {
			r, err := expt.RunFigure13(scale, params, *steps, *probes)
			return r.Format(), err
		},
		"ablation-cache": func() (string, error) {
			r, err := expt.RunAblationCache(scale, params)
			return r.Format(), err
		},
		"ablation-auth": func() (string, error) {
			r, err := expt.RunAblationAuthoritative(scale, params, 20)
			return r.Format(), err
		},
		"ablation-winnow": func() (string, error) {
			r, err := expt.RunAblationWinnowParams(scale)
			return r.Format(), err
		},
		"baseline": func() (string, error) {
			r, err := expt.RunBaselineComparison(scale, params)
			return r.Format(), err
		},
		"orgsim": func() (string, error) {
			cfg := expt.DefaultOrgSimConfig()
			cfg.Seed = *seed
			r, err := expt.RunOrgSim(cfg, params)
			if err != nil {
				return "", err
			}
			sweep, err := expt.RunOrgSimSweep(cfg, params, 5)
			if err != nil {
				return "", err
			}
			return r.Format() + "\n" + sweep.Format(), nil
		},
		"usability": func() (string, error) {
			r, err := expt.RunUsabilityComparison(scale, params)
			return r.Format(), err
		},
		"replication": func() (string, error) {
			dir, err := os.MkdirTemp("", "bfrepl")
			if err != nil {
				return "", err
			}
			defer os.RemoveAll(dir)
			r, err := expt.RunReplication(params, expt.DefaultReplBenchConfig(dir))
			if err != nil {
				return "", err
			}
			// -benchjson records the read-scaling series (BENCH_4.json);
			// only when replication is the selected experiment, so an
			// `-experiment all -benchjson` run keeps the hotpath result.
			if *benchJSON != "" && *experiment == "replication" {
				data, err := json.MarshalIndent(r, "", "  ")
				if err != nil {
					return "", err
				}
				if err := os.WriteFile(*benchJSON, append(data, '\n'), 0o644); err != nil {
					return "", fmt.Errorf("write %s: %w", *benchJSON, err)
				}
			}
			return r.Format(), nil
		},
		"obs-overhead": func() (string, error) {
			r, err := expt.RunObsOverhead(scale, params)
			if err != nil {
				return "", err
			}
			// -benchjson records the instrumentation-tier series
			// (BENCH_5.json); only when obs-overhead is the selected
			// experiment, so an `-experiment all -benchjson` run keeps the
			// hotpath result.
			if *benchJSON != "" && *experiment == "obs-overhead" {
				data, err := json.MarshalIndent(r, "", "  ")
				if err != nil {
					return "", err
				}
				if err := os.WriteFile(*benchJSON, append(data, '\n'), 0o644); err != nil {
					return "", fmt.Errorf("write %s: %w", *benchJSON, err)
				}
			}
			return r.Format(), nil
		},
		"corpus": func() (string, error) {
			cfg := expt.DefaultCorpusConfig()
			cfg.Seed = *seed
			cfg.CompareJSON = *cmpJSON
			cfg.RSSBudgetMB = *rssBudget
			cfg.Logf = func(format string, args ...interface{}) {
				fmt.Fprintf(os.Stderr, format+"\n", args...)
			}
			if *hashes != "" {
				cfg.StepHashes = cfg.StepHashes[:0]
				for _, f := range strings.Split(*hashes, ",") {
					n, err := strconv.Atoi(strings.TrimSpace(f))
					if err != nil || n <= 0 {
						return "", fmt.Errorf("bad -hashes value %q", f)
					}
					cfg.StepHashes = append(cfg.StepHashes, n)
				}
			}
			// Load the previous run before -benchjson overwrites it, so the
			// output ends with benchstat-style deltas against it.
			var prev *expt.CorpusResult
			if *benchJSON != "" {
				if data, err := os.ReadFile(*benchJSON); err == nil {
					var p expt.CorpusResult
					if json.Unmarshal(data, &p) == nil && len(p.Steps) > 0 {
						prev = &p
					}
				}
			}
			r, err := expt.RunCorpus(cfg, params)
			if err != nil {
				return "", err
			}
			out := r.Format()
			if prev != nil {
				out += "\n" + expt.FormatCorpusDelta(*prev, r)
			}
			// -benchjson records BENCH_7.json; only when corpus is the
			// selected experiment, same convention as replication above.
			if *benchJSON != "" && *experiment == "corpus" {
				data, err := json.MarshalIndent(r, "", "  ")
				if err != nil {
					return "", err
				}
				if err := os.WriteFile(*benchJSON, append(data, '\n'), 0o644); err != nil {
					return "", fmt.Errorf("write %s: %w", *benchJSON, err)
				}
			}
			return out, nil
		},
		"hotpath": func() (string, error) {
			r, err := expt.RunHotPath(scale, params)
			if err != nil {
				return "", err
			}
			if *benchJSON != "" {
				data, err := json.MarshalIndent(r, "", "  ")
				if err != nil {
					return "", err
				}
				if err := os.WriteFile(*benchJSON, append(data, '\n'), 0o644); err != nil {
					return "", fmt.Errorf("write %s: %w", *benchJSON, err)
				}
			}
			return r.Format(), nil
		},
		"partition": func() (string, error) {
			r, err := expt.RunPartition(expt.DefaultPartBenchConfig())
			if err != nil {
				return "", err
			}
			// -benchjson records the partition scaling series (BENCH_9.json);
			// only when partition is the selected experiment, same convention
			// as replication above.
			if *benchJSON != "" && *experiment == "partition" {
				data, err := json.MarshalIndent(r, "", "  ")
				if err != nil {
					return "", err
				}
				if err := os.WriteFile(*benchJSON, append(data, '\n'), 0o644); err != nil {
					return "", fmt.Errorf("write %s: %w", *benchJSON, err)
				}
			}
			return r.Format(), nil
		},
		"scrub-overhead": func() (string, error) {
			r, err := expt.RunScrubOverhead(scale, params)
			if err != nil {
				return "", err
			}
			// -benchjson records BENCH_8.json; only when scrub-overhead is
			// the selected experiment, same convention as replication above.
			if *benchJSON != "" && *experiment == "scrub-overhead" {
				data, err := json.MarshalIndent(r, "", "  ")
				if err != nil {
					return "", err
				}
				if err := os.WriteFile(*benchJSON, append(data, '\n'), 0o644); err != nil {
					return "", fmt.Errorf("write %s: %w", *benchJSON, err)
				}
			}
			return r.Format(), nil
		},
	}
	// corpus is deliberately excluded: the 10M-hash ladder takes minutes
	// and is run on demand (`make corpus`, `make corpus-bench`).
	order := []string{"table1", "fig8", "fig9a", "fig9b", "fig9adoc",
		"fig9bdoc", "fig10", "fig11", "fig12", "fig13", "ablation-cache",
		"ablation-auth", "ablation-winnow", "baseline", "orgsim", "usability",
		"hotpath", "replication", "obs-overhead", "scrub-overhead", "partition"}

	selected := order
	if *experiment != "all" {
		if _, ok := runners[*experiment]; !ok {
			return fmt.Errorf("unknown experiment %q (try: %s, corpus, all)", *experiment, strings.Join(order, ", "))
		}
		selected = []string{*experiment}
	}
	if *outDir != "" {
		if err := os.MkdirAll(*outDir, 0o755); err != nil {
			return fmt.Errorf("create out dir: %w", err)
		}
	}
	for _, name := range selected {
		out, err := runners[name]()
		if err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
		fmt.Println(out)
		if *outDir != "" {
			path := filepath.Join(*outDir, name+".txt")
			if err := os.WriteFile(path, []byte(out), 0o644); err != nil {
				return fmt.Errorf("write %s: %w", path, err)
			}
		}
	}
	return nil
}
