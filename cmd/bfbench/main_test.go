package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunSingleExperiments(t *testing.T) {
	// Keep fast: only cheap experiments, overridden to tiny corpora.
	for _, exp := range []string{"table1", "fig8", "ablation-winnow"} {
		t.Run(exp, func(t *testing.T) {
			if err := run([]string{"-experiment", exp, "-revisions", "10", "-books", "2"}); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestRunFig11(t *testing.T) {
	if err := run([]string{"-experiment", "fig11"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunWritesOutputFiles(t *testing.T) {
	dir := t.TempDir()
	if err := run([]string{"-experiment", "table1", "-out", dir}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "table1.txt"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "Wikipedia") {
		t.Errorf("output file content: %q", data)
	}
}

func TestRunErrors(t *testing.T) {
	tests := []struct {
		name string
		args []string
	}{
		{name: "unknown experiment", args: []string{"-experiment", "fig99"}},
		{name: "unknown scale", args: []string{"-scale", "galactic"}},
		{name: "bad flag", args: []string{"-nope"}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if err := run(tt.args); err == nil {
				t.Errorf("args %v: want error", tt.args)
			}
		})
	}
}
