package main

import (
	"os"
	"path/filepath"
	"testing"
)

func TestRunValidation(t *testing.T) {
	if err := run(nil); err == nil {
		t.Error("missing policy accepted")
	}
	if err := run([]string{"-badflag"}); err == nil {
		t.Error("bad flag accepted")
	}
	if err := run([]string{"-policy", "/nonexistent.json"}); err == nil {
		t.Error("missing policy file accepted")
	}
}

func TestRunListenFailure(t *testing.T) {
	dir := t.TempDir()
	policyPath := filepath.Join(dir, "policy.json")
	policyJSON := `{"services":[{"name":"wiki","privilege":["tw"],"confidentiality":["tw"]}]}`
	if err := os.WriteFile(policyPath, []byte(policyJSON), 0o600); err != nil {
		t.Fatal(err)
	}
	// Setup succeeds; the unusable address fails fast.
	if err := run([]string{"-policy", policyPath, "-addr", "256.256.256.256:0"}); err == nil {
		t.Error("expected listen error")
	}
	// Bad saved state is reported.
	statePath := filepath.Join(dir, "state.bf")
	if err := os.WriteFile(statePath, []byte("{corrupt"), 0o600); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-policy", policyPath, "-state", statePath}); err == nil {
		t.Error("corrupt state accepted")
	}
}
