package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunValidation(t *testing.T) {
	if err := run(nil); err == nil {
		t.Error("missing policy accepted")
	}
	if err := run([]string{"-badflag"}); err == nil {
		t.Error("bad flag accepted")
	}
	if err := run([]string{"-policy", "/nonexistent.json"}); err == nil {
		t.Error("missing policy file accepted")
	}
}

func TestRunListenFailure(t *testing.T) {
	dir := t.TempDir()
	policyPath := filepath.Join(dir, "policy.json")
	policyJSON := `{"services":[{"name":"wiki","privilege":["tw"],"confidentiality":["tw"]}]}`
	if err := os.WriteFile(policyPath, []byte(policyJSON), 0o600); err != nil {
		t.Fatal(err)
	}
	// Setup succeeds; the unusable address fails fast.
	if err := run([]string{"-policy", policyPath, "-addr", "256.256.256.256:0"}); err == nil {
		t.Error("expected listen error")
	}
	// Bad saved state is reported.
	statePath := filepath.Join(dir, "state.bf")
	if err := os.WriteFile(statePath, []byte("{corrupt"), 0o600); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-policy", policyPath, "-state", statePath}); err == nil {
		t.Error("corrupt state accepted")
	}
}

// TestRunPolicyLintGate: a policy with a lint diagnostic — here a
// fail-open hole, which is only a warning for Validate — must stop the
// server unless the operator opts out with -policy-lint=false.
func TestRunPolicyLintGate(t *testing.T) {
	dir := t.TempDir()
	policyPath := filepath.Join(dir, "failopen.json")
	policyJSON := `{"services":[
		{"name":"wiki","privilege":["tw"],"confidentiality":["tw"]},
		{"name":"pastebin","privilege":["tw"]}
	]}`
	if err := os.WriteFile(policyPath, []byte(policyJSON), 0o600); err != nil {
		t.Fatal(err)
	}
	err := run([]string{"-policy", policyPath})
	if err == nil {
		t.Fatal("fail-open policy accepted with lint on")
	}
	if !strings.Contains(err.Error(), "policy lint failed") {
		t.Fatalf("unexpected error: %v", err)
	}
	// Opting out skips the gate; the unusable address proves we got past
	// policy loading into the serve path.
	err = run([]string{"-policy", policyPath, "-policy-lint=false", "-addr", "256.256.256.256:0"})
	if err == nil || strings.Contains(err.Error(), "policy lint") {
		t.Fatalf("lint opt-out did not reach the listener: %v", err)
	}
}
