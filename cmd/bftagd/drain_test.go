package main

import (
	"encoding/json"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"
)

// healthAdmission mirrors the /healthz admission section the test polls.
type healthAdmission struct {
	Admission *struct {
		Interactive struct {
			Depth     int    `json:"depth"`
			Submitted uint64 `json:"submitted"`
			Executed  uint64 `json:"executed"`
		} `json:"interactive"`
	} `json:"admission"`
	Segments int `json:"segments"`
}

func getAdmissionHealth(t *testing.T, base string) healthAdmission {
	t.Helper()
	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var h healthAdmission
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	return h
}

// A SIGTERM arriving while an observe sits in the admission queue (held
// there by a long debounce window) must not lose it: the shutdown path
// drains the queue through the engine BEFORE closing the WAL, so the
// queued observe is durably journaled and survives a restart.
func TestShutdownDrainsAdmissionBeforeWALClose(t *testing.T) {
	dir := t.TempDir()
	policyPath := filepath.Join(dir, "policy.json")
	policyJSON := `{"services":[{"name":"wiki","privilege":["tw"],"confidentiality":["tw"]}]}`
	if err := os.WriteFile(policyPath, []byte(policyJSON), 0o600); err != nil {
		t.Fatal(err)
	}
	walDir := filepath.Join(dir, "wal")
	addr := freeAddr(t)
	base := "http://" + addr

	args := []string{
		"-policy", policyPath,
		"-wal-dir", walDir,
		"-addr", addr,
		"-shutdown-grace", "10s",
		"-coalesce-window", "30s", // park observes in the queue: only drain (or the window) releases them
		"-admit-workers", "1",
	}

	errCh := make(chan error, 1)
	go func() { errCh <- run(args) }()
	waitHealthy(t, base)

	// Fire an observe; the debounce window keeps it queued, so the POST
	// blocks awaiting its verdict.
	obsCh := make(chan int, 1)
	go func() {
		body := `{"device":"d","service":"wiki","seg":"wiki/s#p0","hashes":[1,2,3]}`
		resp, err := http.Post(base+"/v1/observe", "application/json", strings.NewReader(body))
		if err != nil {
			obsCh <- -1
			return
		}
		resp.Body.Close()
		obsCh <- resp.StatusCode
	}()

	// Wait until it is admitted and sitting in the interactive lane.
	deadline := time.Now().Add(5 * time.Second)
	for {
		h := getAdmissionHealth(t, base)
		if h.Admission != nil && h.Admission.Interactive.Depth >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("observe never reached the admission queue")
		}
		time.Sleep(5 * time.Millisecond)
	}

	// SIGTERM with the observe still queued. Drain must execute it (the
	// client gets its verdict) and journal it before the WAL closes.
	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case status := <-obsCh:
		if status != http.StatusOK {
			t.Fatalf("queued observe status=%d, want 200 (drained through the engine)", status)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("queued observe never completed during shutdown drain")
	}
	select {
	case err := <-errCh:
		if err != nil {
			t.Fatalf("run returned %v after SIGTERM, want clean drain", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("daemon did not shut down")
	}

	// Restart on the same WAL: the drained observe was durably recorded.
	addr2 := freeAddr(t)
	base2 := "http://" + addr2
	errCh2 := make(chan error, 1)
	go func() {
		errCh2 <- run([]string{
			"-policy", policyPath,
			"-wal-dir", walDir,
			"-addr", addr2,
			"-shutdown-grace", "5s",
		})
	}()
	waitHealthy(t, base2)
	if h := getAdmissionHealth(t, base2); h.Segments < 1 {
		t.Errorf("recovered segments=%d, want >=1: drained observe was lost", h.Segments)
	}
	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-errCh2:
		if err != nil {
			t.Fatalf("second run returned %v", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("second daemon did not shut down")
	}
}
