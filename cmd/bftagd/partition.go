package main

import (
	"fmt"
	"math"
	"strconv"
	"strings"
	"sync"

	"github.com/lsds/browserflow/internal/partition"
	"github.com/lsds/browserflow/internal/replication"
	"github.com/lsds/browserflow/internal/segment"
)

// partState is bftagd's view of the cluster topology: the ring document
// it loaded (and persists across flips), its own partition ID, and an
// optional explicit key-range override for a split target whose
// partition is not yet published in the ring. It implements
// tagserver.PartitionState.
type partState struct {
	id   string
	path string
	logf func(format string, args ...interface{})

	mu       sync.Mutex
	ring     *partition.Ring
	encoded  []byte
	override *replication.SplitRange
}

func newPartState(id, path string, override *replication.SplitRange, logf func(string, ...interface{})) (*partState, error) {
	ring, err := partition.LoadRingFile(path)
	if err != nil {
		return nil, err
	}
	encoded, err := partition.EncodeRing(ring)
	if err != nil {
		return nil, err
	}
	if override == nil {
		if _, ok := ring.ByID(id); !ok {
			return nil, fmt.Errorf("partition %q is not in ring v%d (use -split-range for a not-yet-published split target)", id, ring.Version)
		}
	}
	return &partState{id: id, path: path, logf: logf, ring: ring, encoded: encoded, override: override}, nil
}

func (ps *partState) ID() string { return ps.id }

func (ps *partState) RingVersion() uint64 {
	ps.mu.Lock()
	defer ps.mu.Unlock()
	return ps.ring.Version
}

// Owns reports whether seg's key falls in this node's range: the
// explicit split override when one is active, otherwise this partition's
// ring entry. A node whose partition is absent from the ring owns
// nothing — fail closed rather than accept observations the routing tier
// will never find.
func (ps *partState) Owns(seg segment.ID) bool {
	key := segment.Key(seg)
	ps.mu.Lock()
	defer ps.mu.Unlock()
	if ps.override != nil {
		return ps.override.Contains(key)
	}
	p, ok := ps.ring.ByID(ps.id)
	return ok && p.Contains(key)
}

func (ps *partState) KeyRange() (lo, hi uint32) {
	ps.mu.Lock()
	defer ps.mu.Unlock()
	if ps.override != nil {
		return ps.override.Lo, ps.override.Hi
	}
	if p, ok := ps.ring.ByID(ps.id); ok {
		return p.Lo, p.Hi
	}
	return 1, 0 // empty range
}

// Sole reports whether this node can resolve observations alone: a
// one-partition ring with no split in progress.
func (ps *partState) Sole() bool {
	ps.mu.Lock()
	defer ps.mu.Unlock()
	return ps.override == nil && len(ps.ring.Partitions) == 1
}

func (ps *partState) Resharding() bool {
	ps.mu.Lock()
	defer ps.mu.Unlock()
	return ps.override != nil
}

func (ps *partState) RingBytes() []byte {
	ps.mu.Lock()
	defer ps.mu.Unlock()
	return ps.encoded
}

// SetRing installs a newer ring version, persisting it so a restart
// comes back with the flipped topology. Once the installed ring names
// this node's partition, any split override is retired — the ring is now
// the authority for the range.
func (ps *partState) SetRing(encoded []byte) (uint64, error) {
	ring, err := partition.DecodeRing(encoded)
	if err != nil {
		return 0, err
	}
	ps.mu.Lock()
	defer ps.mu.Unlock()
	if ring.Version <= ps.ring.Version {
		return 0, fmt.Errorf("ring v%d is not newer than installed v%d", ring.Version, ps.ring.Version)
	}
	if err := partition.SaveRingFile(ps.path, ring); err != nil {
		return 0, fmt.Errorf("persist ring: %w", err)
	}
	ps.ring = ring
	ps.encoded = append([]byte(nil), encoded...)
	if ps.override != nil {
		if _, ok := ring.ByID(ps.id); ok {
			ps.override = nil
		}
	}
	ps.logf("partition %s: installed ring v%d (%d partitions)", ps.id, ring.Version, len(ring.Partitions))
	return ring.Version, nil
}

// durableSegmentFilter converts a split range into the durable store's
// recovery filter (nil when the node owns the whole keyspace).
func durableSegmentFilter(sr *replication.SplitRange) func(segment.ID) bool {
	if sr == nil {
		return nil
	}
	return func(seg segment.ID) bool {
		return sr.Contains(segment.Key(seg))
	}
}

// parseSplitRange parses "lo:hi" (inclusive 32-bit bounds).
func parseSplitRange(v string) (*replication.SplitRange, error) {
	lo, hi, ok := strings.Cut(v, ":")
	if !ok {
		return nil, fmt.Errorf("-split-range wants lo:hi, got %q", v)
	}
	l, err := strconv.ParseUint(lo, 10, 32)
	if err != nil {
		return nil, fmt.Errorf("-split-range lo: %w", err)
	}
	h, err := strconv.ParseUint(hi, 10, 32)
	if err != nil {
		return nil, fmt.Errorf("-split-range hi: %w", err)
	}
	if l > h || h > math.MaxUint32 {
		return nil, fmt.Errorf("-split-range %q: inverted or out of range", v)
	}
	return &replication.SplitRange{Lo: uint32(l), Hi: uint32(h)}, nil
}
