package main

import (
	"fmt"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"
)

// freeAddr reserves an ephemeral port and releases it for the daemon.
func freeAddr(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	return addr
}

// waitHealthy polls /healthz until the daemon answers.
func waitHealthy(t *testing.T, base string) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get(base + "/healthz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return
			}
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatal("daemon never became healthy")
}

// The daemon serves with body bounds and drains gracefully on SIGINT,
// saving state on the way out.
func TestGracefulShutdown(t *testing.T) {
	dir := t.TempDir()
	policyPath := filepath.Join(dir, "policy.json")
	policyJSON := `{"services":[{"name":"wiki","privilege":["tw"],"confidentiality":["tw"]}]}`
	if err := os.WriteFile(policyPath, []byte(policyJSON), 0o600); err != nil {
		t.Fatal(err)
	}
	statePath := filepath.Join(dir, "state.bf")
	addr := freeAddr(t)
	base := "http://" + addr

	errCh := make(chan error, 1)
	go func() {
		errCh <- run([]string{
			"-policy", policyPath,
			"-addr", addr,
			"-state", statePath,
			"-save-every", "0",
			"-max-body", "512",
			"-shutdown-grace", "5s",
		})
	}()
	waitHealthy(t, base)

	// Within bounds: observed normally.
	small := `{"device":"d","service":"wiki","seg":"wiki/s#p0","hashes":[1,2,3]}`
	resp, err := http.Post(base+"/v1/observe", "application/json", strings.NewReader(small))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("observe status=%d", resp.StatusCode)
	}

	// Past -max-body: rejected with 413.
	big := fmt.Sprintf(`{"device":"d","service":"wiki","seg":"wiki/s#p1","hashes":[%s1]}`,
		strings.Repeat("1,", 2048))
	resp, err = http.Post(base+"/v1/observe", "application/json", strings.NewReader(big))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Errorf("oversized observe status=%d, want 413", resp.StatusCode)
	}

	// SIGINT: the daemon drains and exits cleanly.
	if err := syscall.Kill(os.Getpid(), syscall.SIGINT); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-errCh:
		if err != nil {
			t.Fatalf("run returned %v after SIGINT, want clean shutdown", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("daemon did not shut down within the grace period")
	}

	// State was persisted on the way out.
	if _, err := os.Stat(statePath); err != nil {
		t.Errorf("state not saved at shutdown: %v", err)
	}
}
