package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"
)

// TestMain doubles as a re-exec shim: when BFTAGD_TEST_ARGS is set, the
// test binary becomes the daemon itself. The kill -9 test uses this to run
// a real bftagd process it can destroy without ceremony.
func TestMain(m *testing.M) {
	if args := os.Getenv("BFTAGD_TEST_ARGS"); args != "" {
		if err := run(strings.Split(args, "\n")); err != nil {
			fmt.Fprintln(os.Stderr, "bftagd:", err)
			os.Exit(1)
		}
		os.Exit(0)
	}
	os.Exit(m.Run())
}

func writeTestPolicy(t *testing.T, dir string) string {
	t.Helper()
	policyPath := filepath.Join(dir, "policy.json")
	policyJSON := `{"services":[
		{"name":"wiki","privilege":["tw"],"confidentiality":["tw"]},
		{"name":"pad","privilege":[],"confidentiality":[]}
	]}`
	if err := os.WriteFile(policyPath, []byte(policyJSON), 0o600); err != nil {
		t.Fatal(err)
	}
	return policyPath
}

func postJSON(t *testing.T, url string, body string) (int, []byte) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, data
}

func getHealth(t *testing.T, base string) map[string]any {
	t.Helper()
	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var h map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	return h
}

const checkBody = `{"device":"d","dest":"pad","hashes":[1,2,3,4,5,6,7,8,9,10]}`

// seedObservations drives a few mutations through the wire API: two
// singular observes, a batched flush, and a suppression — every journalled
// record family the daemon produces in normal operation.
func seedObservations(t *testing.T, base string) {
	t.Helper()
	for _, req := range []struct{ path, body string }{
		{"/v1/observe", `{"device":"d","service":"wiki","seg":"wiki/s#p0","hashes":[1,2,3,4,5,6,7,8,9,10]}`},
		{"/v1/observe", `{"device":"d","service":"wiki","seg":"wiki/s#p1","hashes":[11,12,13,14,15],"granularity":"document"}`},
		{"/v1/observe/batch", `{"device":"d","service":"pad","items":[` +
			`{"seg":"pad/n#p0","hashes":[1,2,3,4,5,6,7,8,9,10]},` +
			`{"seg":"pad/n#p1","hashes":[21,22,23]}]}`},
	} {
		status, body := postJSON(t, base+req.path, req.body)
		if status != http.StatusOK {
			t.Fatalf("%s status=%d body=%s", req.path, status, body)
		}
	}
}

// A clean SIGTERM with -wal-dir flushes a final checkpoint; the next start
// recovers it with nothing left to replay, and the recovered process
// returns the same /v1/check verdicts as the one that shut down.
func TestDurableShutdownAndRecover(t *testing.T) {
	dir := t.TempDir()
	policyPath := writeTestPolicy(t, dir)
	walDir := filepath.Join(dir, "wal")

	start := func() (string, chan error) {
		addr := freeAddr(t)
		errCh := make(chan error, 1)
		go func() {
			errCh <- run([]string{
				"-policy", policyPath,
				"-addr", addr,
				"-wal-dir", walDir,
				"-fsync", "always",
				"-checkpoint-every", "0",
				"-shutdown-grace", "5s",
			})
		}()
		base := "http://" + addr
		waitHealthy(t, base)
		return base, errCh
	}
	stop := func(errCh chan error) {
		t.Helper()
		if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
			t.Fatal(err)
		}
		select {
		case err := <-errCh:
			if err != nil {
				t.Fatalf("run returned %v after SIGTERM, want clean shutdown", err)
			}
		case <-time.After(10 * time.Second):
			t.Fatal("daemon did not shut down within the grace period")
		}
	}

	base, errCh := start()
	seedObservations(t, base)
	_, wantVerdict := postJSON(t, base+"/v1/check", checkBody)
	stop(errCh)

	// Second life: recovery must come from the shutdown checkpoint alone.
	base, errCh = start()
	defer stop(errCh)

	if _, got := postJSON(t, base+"/v1/check", checkBody); !bytes.Equal(got, wantVerdict) {
		t.Errorf("verdict after restart = %s, want %s", got, wantVerdict)
	}
	h := getHealth(t, base)
	dur, ok := h["durability"].(map[string]any)
	if !ok {
		t.Fatalf("healthz has no durability block: %v", h)
	}
	if ckpt, _ := dur["checkpointLoaded"].(string); ckpt == "" {
		t.Errorf("clean shutdown left no checkpoint to load: %v", dur)
	}
	if replayed, _ := dur["recordsReplayed"].(float64); replayed != 0 {
		t.Errorf("clean shutdown still replayed %v records", replayed)
	}
}

// Kill -9 is the whole point of the WAL: a real bftagd subprocess is
// destroyed without any shutdown path running, then a second instance on
// the same -wal-dir must replay the log and give identical /v1/check
// verdicts, reporting the recovery in its durability metrics.
func TestKillNineRecovery(t *testing.T) {
	dir := t.TempDir()
	policyPath := writeTestPolicy(t, dir)
	walDir := filepath.Join(dir, "wal")
	addr := freeAddr(t)
	base := "http://" + addr

	args := []string{
		"-policy", policyPath,
		"-addr", addr,
		"-wal-dir", walDir,
		"-fsync", "always",
		"-checkpoint-every", "0", // no background checkpoints: recovery is pure replay
	}
	cmd := exec.Command(os.Args[0])
	cmd.Env = append(os.Environ(), "BFTAGD_TEST_ARGS="+strings.Join(args, "\n"))
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer cmd.Process.Kill()
	waitHealthy(t, base)

	seedObservations(t, base)
	_, wantVerdict := postJSON(t, base+"/v1/check", checkBody)

	// No SIGTERM, no drain, no final checkpoint: SIGKILL.
	if err := cmd.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	cmd.Wait()

	// Second instance, in-process, same WAL directory.
	addr2 := freeAddr(t)
	base2 := "http://" + addr2
	errCh := make(chan error, 1)
	go func() {
		errCh <- run(append(append([]string(nil), args...), "-addr", addr2))
	}()
	waitHealthy(t, base2)
	defer func() {
		syscall.Kill(os.Getpid(), syscall.SIGTERM)
		select {
		case <-errCh:
		case <-time.After(10 * time.Second):
			t.Fatal("recovered daemon did not shut down")
		}
	}()

	if _, got := postJSON(t, base2+"/v1/check", checkBody); !bytes.Equal(got, wantVerdict) {
		t.Errorf("verdict after kill -9 recovery = %s, want %s", got, wantVerdict)
	}

	h := getHealth(t, base2)
	dur, ok := h["durability"].(map[string]any)
	if !ok {
		t.Fatalf("healthz has no durability block: %v", h)
	}
	if replayed, _ := dur["recordsReplayed"].(float64); replayed < 3 {
		t.Errorf("recovery replayed %v records, want >= 3 (the seeded mutations)", replayed)
	}

	// The durability gauges are visible on the metrics endpoint.
	resp, err := http.Get(base2 + "/v1/metrics")
	if err != nil {
		t.Fatal(err)
	}
	metrics, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, want := range []string{
		"browserflow_wal_records_total",
		"browserflow_recovery_records_replayed",
	} {
		if !strings.Contains(string(metrics), want) {
			t.Errorf("metrics missing %s", want)
		}
	}
}
