package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"github.com/lsds/browserflow/internal/faultinject"
	"github.com/lsds/browserflow/internal/fingerprint"
	"github.com/lsds/browserflow/internal/resilience"
	"github.com/lsds/browserflow/internal/segment"
	"github.com/lsds/browserflow/internal/tagserver"
	"github.com/lsds/browserflow/internal/wal"
)

// startDaemon launches the test binary as a real bftagd subprocess via
// the BFTAGD_TEST_ARGS re-exec shim, so it can be destroyed with SIGKILL.
func startDaemon(t *testing.T, args ...string) *exec.Cmd {
	t.Helper()
	cmd := exec.Command(os.Args[0])
	cmd.Env = append(os.Environ(), "BFTAGD_TEST_ARGS="+strings.Join(args, "\n"))
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		cmd.Process.Kill()
		cmd.Wait()
	})
	return cmd
}

// replHealth returns the replication block of a node's /healthz.
func replHealth(t *testing.T, base string) map[string]any {
	t.Helper()
	h := getHealth(t, base)
	repl, ok := h["replication"].(map[string]any)
	if !ok {
		t.Fatalf("healthz %s has no replication block: %v", base, h)
	}
	return repl
}

// waitRepl polls a node's replication health until cond accepts it.
func waitRepl(t *testing.T, base, what string, cond func(map[string]any) bool) map[string]any {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	var last map[string]any
	for time.Now().Before(deadline) {
		resp, err := http.Get(base + "/healthz")
		if err == nil {
			var h map[string]any
			derr := json.NewDecoder(resp.Body).Decode(&h)
			resp.Body.Close()
			if derr == nil {
				if repl, ok := h["replication"].(map[string]any); ok {
					last = repl
					if cond(repl) {
						return repl
					}
				}
			}
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("%s: %s never happened; last replication health: %v", base, what, last)
	return nil
}

// assertWALPrefix verifies the literal byte-prefix property: every WAL
// segment file the replica mirrored is a byte-for-byte prefix of the
// primary's file of the same name.
func assertWALPrefix(t *testing.T, primaryDir, replicaDir string) {
	t.Helper()
	entries, err := os.ReadDir(replicaDir)
	if err != nil {
		t.Fatal(err)
	}
	compared := 0
	for _, e := range entries {
		if _, ok := wal.ParseSegmentName(e.Name()); !ok {
			continue
		}
		got, err := os.ReadFile(filepath.Join(replicaDir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		want, err := os.ReadFile(filepath.Join(primaryDir, e.Name()))
		if err != nil {
			t.Fatalf("replica has %s but primary does not: %v", e.Name(), err)
		}
		if len(got) > len(want) || !bytes.Equal(got, want[:len(got)]) {
			t.Fatalf("replica %s is not a byte prefix of the primary's (replica %d bytes, primary %d bytes)",
				e.Name(), len(got), len(want))
		}
		compared++
	}
	if compared == 0 {
		t.Fatalf("replica dir %s mirrored no WAL segments", replicaDir)
	}
}

// sentence builds a deterministic paragraph long enough to fingerprint.
func sentence(i int) string {
	return fmt.Sprintf("revision %d of the quarterly capacity planning forecast "+
		"covering datacenter utilisation and the migration schedule for cohort %d",
		i, i%7)
}

// TestReplicationEndToEnd is the acceptance run for the replicated
// deployment, against real bftagd subprocesses at fsync=always:
//
//  1. a primary and two replicas come up; replicas report role, term and
//     lag on /healthz;
//  2. over a thousand mixed mutations are driven through a chaos
//     transport (connection errors + ambiguous reset-after-delivery);
//     retries ride the Idempotency-Key so every mutation is acked exactly
//     once;
//  3. both replicas converge to the primary's exact WAL position and
//     their mirrored segments are literal byte prefixes of the primary's;
//  4. replicas serve reads (identical verdicts) and fence writes (421 +
//     primary address);
//  5. a replica killed with SIGKILL resumes from its local mirror without
//     re-bootstrapping;
//  6. the primary is killed, a caught-up replica is promoted (term 1) and
//     serves every acked write — zero acked-write loss;
//  7. the deposed primary restarts, is fenced, and refuses writes while a
//     ClusterClient pointed at the dead address fails over on its own.
func TestReplicationEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess end-to-end test")
	}
	dir := t.TempDir()
	policyPath := writeTestPolicy(t, dir)
	primaryWAL := filepath.Join(dir, "primary")
	r1WAL := filepath.Join(dir, "replica1")
	r2WAL := filepath.Join(dir, "replica2")

	primaryAddr := freeAddr(t)
	r1Addr := freeAddr(t)
	r2Addr := freeAddr(t)
	primaryBase := "http://" + primaryAddr
	r1Base := "http://" + r1Addr
	r2Base := "http://" + r2Addr

	primaryArgs := []string{
		"-policy", policyPath, "-addr", primaryAddr, "-advertise", primaryBase,
		"-wal-dir", primaryWAL, "-fsync", "always", "-checkpoint-every", "0",
	}
	replicaArgs := func(addr, base, walDir string) []string {
		return []string{
			"-policy", policyPath, "-addr", addr, "-advertise", base,
			"-wal-dir", walDir, "-fsync", "always",
			"-replica-of", primaryBase,
		}
	}

	primaryProc := startDaemon(t, primaryArgs...)
	waitHealthy(t, primaryBase)
	r1Proc := startDaemon(t, replicaArgs(r1Addr, r1Base, r1WAL)...)
	r2Proc := startDaemon(t, replicaArgs(r2Addr, r2Base, r2WAL)...)
	_ = r1Proc
	waitHealthy(t, r1Base)
	waitHealthy(t, r2Base)

	// (1) Replicas advertise their cluster position on /healthz.
	for _, base := range []string{r1Base, r2Base} {
		repl := waitRepl(t, base, "bootstrap + first stream", func(m map[string]any) bool {
			connected, _ := m["connected"].(bool)
			return connected
		})
		if role, _ := repl["role"].(string); role != "replica" {
			t.Fatalf("%s role = %q, want replica", base, repl["role"])
		}
		if _, ok := repl["term"]; !ok {
			t.Fatalf("%s replication health has no term: %v", base, repl)
		}
		if _, ok := repl["lag_records"]; !ok {
			t.Fatalf("%s replication health has no lag_records: %v", base, repl)
		}
	}
	if role, _ := replHealth(t, primaryBase)["role"].(string); role != "primary" {
		t.Fatalf("primary role = %q, want primary", role)
	}

	// (2) Mixed mutations through a chaos transport. Connection errors
	// are always retriable; reset-after-delivery is the ambiguous case
	// that only the Idempotency-Key makes safe to retry.
	inj := faultinject.New(http.DefaultTransport, 42)
	inj.AddRule(faultinject.Rule{Kind: faultinject.KindConnError, P: 0.05})
	inj.AddRule(faultinject.Rule{Kind: faultinject.KindResetAfterSend, P: 0.05})
	client, err := tagserver.NewClient(primaryBase, "laptop", fingerprint.DefaultConfig(),
		tagserver.WithTransport(inj),
		tagserver.WithRetry(resilience.RetryPolicy{MaxAttempts: 8, Sleep: func(time.Duration) {}}),
	)
	if err != nil {
		t.Fatal(err)
	}

	mutations := 0
	for b := 0; b < 55; b++ {
		items := make([]tagserver.BatchItem, 0, 20)
		for i := 0; i < 20; i++ {
			n := b*20 + i
			items = append(items, tagserver.BatchItem{
				Seg:  segment.ID(fmt.Sprintf("pad/doc%d#p%d", n%13, n)),
				Text: sentence(n),
			})
		}
		if _, err := client.ObserveBatch("pad", items); err != nil {
			t.Fatalf("batch %d: %v", b, err)
		}
		mutations += len(items)
	}
	wikiSegs := make([]segment.ID, 0, 30)
	for i := 0; i < 30; i++ {
		seg := segment.ID(fmt.Sprintf("wiki/page%d#p0", i))
		if _, err := client.Observe("wiki", seg, sentence(1000+i)); err != nil {
			t.Fatalf("observe %d: %v", i, err)
		}
		wikiSegs = append(wikiSegs, seg)
		mutations++
	}
	for i := 0; i < 10; i++ {
		if err := client.Suppress("alice", wikiSegs[i], "tw", "reviewed"); err != nil {
			t.Fatalf("suppress %d: %v", i, err)
		}
		mutations++
	}
	if mutations < 1000 {
		t.Fatalf("drove only %d mutations, want >= 1000", mutations)
	}

	// Probe state the whole cluster must agree on.
	probe := `{"device":"d","dest":"pad","hashes":[1,2,3,4,5,6,7,8,9,10]}`
	status, wantVerdict := postJSON(t, primaryBase+"/v1/check", probe)
	if status != http.StatusOK {
		t.Fatalf("primary check: %d %s", status, wantVerdict)
	}
	primaryPos, _ := replHealth(t, primaryBase)["position"].(string)
	if primaryPos == "" {
		t.Fatal("primary reports no WAL position")
	}

	// (3) Replicas converge to the primary's exact position...
	caughtUp := func(m map[string]any) bool {
		lag, _ := m["lag_records"].(float64)
		pos, _ := m["position"].(string)
		return lag == 0 && pos == primaryPos
	}
	waitRepl(t, r1Base, "catch up to "+primaryPos, caughtUp)
	waitRepl(t, r2Base, "catch up to "+primaryPos, caughtUp)

	// ...and their mirrored logs are byte prefixes of the primary's.
	assertWALPrefix(t, primaryWAL, r1WAL)
	assertWALPrefix(t, primaryWAL, r2WAL)

	// (4) Replicas answer reads identically and fence writes.
	for _, base := range []string{r1Base, r2Base} {
		if _, got := postJSON(t, base+"/v1/check", probe); !bytes.Equal(got, wantVerdict) {
			t.Errorf("replica %s verdict = %s, want %s", base, got, wantVerdict)
		}
		rclient, err := tagserver.NewClient(base, "laptop", fingerprint.DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		_, err = rclient.Observe("pad", "pad/reject#p0", sentence(9999))
		np, ok := tagserver.AsNotPrimary(err)
		if !ok {
			t.Fatalf("write on replica %s: err = %v, want NotPrimaryError", base, err)
		}
		if np.Primary != primaryBase {
			t.Errorf("replica %s redirected write to %q, want %q", base, np.Primary, primaryBase)
		}
	}

	// (5) SIGKILL a replica mid-life; on restart it must resume streaming
	// from its local mirror position, not re-bootstrap from a snapshot.
	if err := r2Proc.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	r2Proc.Wait()
	// More writes while the replica is down, so the restart has a tail to
	// stream from its resume position.
	for i := 0; i < 40; i++ {
		seg := segment.ID(fmt.Sprintf("pad/late%d#p0", i))
		if _, err := client.Observe("pad", seg, sentence(2000+i)); err != nil {
			t.Fatalf("post-kill observe %d: %v", i, err)
		}
	}
	primaryPos, _ = replHealth(t, primaryBase)["position"].(string)
	startDaemon(t, replicaArgs(r2Addr, r2Base, r2WAL)...)
	waitHealthy(t, r2Base)
	repl := waitRepl(t, r2Base, "resume + catch up to "+primaryPos, func(m map[string]any) bool {
		lag, _ := m["lag_records"].(float64)
		pos, _ := m["position"].(string)
		return lag == 0 && pos == primaryPos
	})
	if boots, _ := repl["bootstraps"].(float64); boots != 0 {
		t.Errorf("restarted replica re-bootstrapped %v times, want 0 (resume from local WAL)", boots)
	}
	assertWALPrefix(t, primaryWAL, r2WAL)
	waitRepl(t, r1Base, "catch up to "+primaryPos, func(m map[string]any) bool {
		pos, _ := m["position"].(string)
		return pos == primaryPos
	})
	status, wantVerdict = postJSON(t, primaryBase+"/v1/check", probe)
	if status != http.StatusOK {
		t.Fatalf("primary check: %d %s", status, wantVerdict)
	}

	// (6) Kill the primary outright and promote the caught-up replica 1.
	if err := primaryProc.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	primaryProc.Wait()

	resp, err := http.Post(r1Base+"/v1/repl/promote", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	var promoted struct {
		Promoted bool   `json:"promoted"`
		Role     string `json:"role"`
		Term     uint64 `json:"term"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&promoted); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if !promoted.Promoted || promoted.Role != "primary" || promoted.Term != 1 {
		t.Fatalf("promote = %+v, want promoted primary at term 1", promoted)
	}

	// Zero acked-write loss: the promoted node answers the probe exactly
	// as the dead primary did, and accepts new writes.
	if _, got := postJSON(t, r1Base+"/v1/check", probe); !bytes.Equal(got, wantVerdict) {
		t.Errorf("new primary verdict = %s, want %s (acked writes lost?)", got, wantVerdict)
	}
	newClient, err := tagserver.NewClient(r1Base, "laptop", fingerprint.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := newClient.Observe("pad", "pad/after-failover#p0", sentence(3001)); err != nil {
		t.Fatalf("write on promoted primary: %v", err)
	}

	// (7) The deposed primary restarts believing it is still primary;
	// an explicit fence (bfctl promote -old-primary does this) forces it
	// to refuse writes with a redirect to the new primary.
	startDaemon(t, primaryArgs...)
	waitHealthy(t, primaryBase)
	fence, err := json.Marshal(map[string]any{"term": promoted.Term, "primary": r1Base})
	if err != nil {
		t.Fatal(err)
	}
	fstatus, fbody := postJSON(t, primaryBase+"/v1/repl/fence", string(fence))
	_ = fence
	if fstatus != http.StatusOK {
		t.Fatalf("fence old primary: %d %s", fstatus, fbody)
	}
	if role, _ := replHealth(t, primaryBase)["role"].(string); role != "fenced" {
		t.Fatalf("old primary role = %q after fence, want fenced", role)
	}
	oldClient, err := tagserver.NewClient(primaryBase, "laptop", fingerprint.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	_, err = oldClient.Observe("pad", "pad/stale#p0", sentence(3002))
	if np, ok := tagserver.AsNotPrimary(err); !ok {
		t.Fatalf("write on fenced primary: err = %v, want NotPrimaryError", err)
	} else if np.Primary != r1Base {
		t.Errorf("fenced primary redirected to %q, want %q", np.Primary, r1Base)
	}

	// A cluster client still configured for the dead topology follows the
	// 421 to the new primary on its own.
	cc, err := tagserver.NewClusterClient(primaryBase, []string{r2Base}, "laptop", fingerprint.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	ctx := t.Context()
	if _, err := cc.Observe(ctx, "pad", "pad/failover#p0", sentence(3003)); err != nil {
		t.Fatalf("cluster client write after failover: %v", err)
	}
	if got := cc.Primary(); got != r1Base {
		t.Errorf("cluster client primary = %q, want %q", got, r1Base)
	}
	if _, err := cc.Check(ctx, sentence(3003), "pad"); err != nil {
		t.Fatalf("cluster client read after failover: %v", err)
	}
}
