// Command bftagd runs the shared enterprise tag service: a central
// BrowserFlow engine that devices sync fingerprint hashes through, making
// disclosure tracking consistent across every employee's browser.
//
// Usage:
//
//	bftagd -policy policy.json -addr :7000
//	bftagd -policy policy.json -state tags.bf -save-every 100
//	bftagd -policy policy.json -read-timeout 10s -write-timeout 30s \
//	       -shutdown-grace 10s -max-body 1048576
//
// Devices connect with internal/tagserver.Client; text never leaves the
// device — only winnowed fingerprint hashes cross the wire. The server
// exposes /healthz for the client-side failover layer's recovery probes,
// carries read/write timeouts so slow peers cannot wedge it, bounds
// request bodies (413 past -max-body), and drains in-flight requests on
// SIGINT/SIGTERM before stopping the expiry janitor and saving state.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"sync/atomic"
	"syscall"
	"time"

	"github.com/lsds/browserflow"
	"github.com/lsds/browserflow/internal/store"
	"github.com/lsds/browserflow/internal/tagserver"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "bftagd:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("bftagd", flag.ContinueOnError)
	var (
		policyPath   = fs.String("policy", "", "policy JSON file (required)")
		statePath    = fs.String("state", "", "optional state file to load and periodically save")
		passphrase   = fs.String("passphrase", "", "state passphrase")
		saveEvery    = fs.Int("save-every", 500, "save state every N observe requests (0 disables)")
		addr         = fs.String("addr", ":7000", "listen address")
		expire       = fs.Duration("expire-every", 0, "run fingerprint expiry at this interval (0 disables)")
		retain       = fs.Uint64("retain", 100000, "observations to retain when expiry runs")
		readTimeout  = fs.Duration("read-timeout", 10*time.Second, "per-request read timeout")
		writeTimeout = fs.Duration("write-timeout", 30*time.Second, "per-request write timeout")
		grace        = fs.Duration("shutdown-grace", 10*time.Second, "time allowed for in-flight requests to drain on SIGINT/SIGTERM")
		maxBody      = fs.Int64("max-body", tagserver.DefaultMaxBodyBytes, "maximum request body size in bytes (413 past this)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *policyPath == "" {
		return fmt.Errorf("-policy is required")
	}
	mw, err := browserflow.NewFromPolicyFile(*policyPath)
	if err != nil {
		return err
	}
	if *statePath != "" {
		if _, err := os.Stat(*statePath); err == nil {
			if err := mw.Load(*statePath, *passphrase); err != nil {
				return fmt.Errorf("load state: %w", err)
			}
		}
	}

	server, err := tagserver.NewServer(mw.Engine(), tagserver.WithMaxBodyBytes(*maxBody))
	if err != nil {
		return err
	}

	// Periodic removal of old fingerprints (§4.4). Deferred shutdown runs
	// after the HTTP server has drained, so the janitor never races
	// in-flight requests at exit.
	if *expire > 0 {
		janitor := store.NewJanitor(mw.Tracker(), *expire, *retain)
		defer janitor.Shutdown()
	}

	// Periodic persistence keyed on observe traffic.
	var observeCount atomic.Int64
	handler := http.Handler(server)
	if *statePath != "" && *saveEvery > 0 {
		handler = http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			server.ServeHTTP(w, r)
			if r.URL.Path == "/v1/observe" {
				if n := observeCount.Add(1); n%int64(*saveEvery) == 0 {
					if err := mw.Save(*statePath, *passphrase); err != nil {
						fmt.Fprintln(os.Stderr, "bftagd: save state:", err)
					}
				}
			}
		})
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}

	srv := &http.Server{
		Handler:           handler,
		ReadTimeout:       *readTimeout,
		ReadHeaderTimeout: *readTimeout,
		WriteTimeout:      *writeTimeout,
		IdleTimeout:       2 * *readTimeout,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errCh := make(chan error, 1)
	go func() { errCh <- srv.Serve(ln) }()

	stats := mw.Stats()
	fmt.Printf("bftagd: serving on %s (%d segments, %d hashes)\n",
		ln.Addr(), stats.ParagraphSegments, stats.DistinctHashes)

	select {
	case err := <-errCh:
		return err
	case <-ctx.Done():
		stop() // restore default signal handling for a second Ctrl-C
		fmt.Fprintln(os.Stderr, "bftagd: shutting down...")
		shCtx, cancel := context.WithTimeout(context.Background(), *grace)
		defer cancel()
		shutdownErr := srv.Shutdown(shCtx)
		if *statePath != "" {
			if err := mw.Save(*statePath, *passphrase); err != nil {
				fmt.Fprintln(os.Stderr, "bftagd: save state:", err)
			}
		}
		return shutdownErr
	}
}
