// Command bftagd runs the shared enterprise tag service: a central
// BrowserFlow engine that devices sync fingerprint hashes through, making
// disclosure tracking consistent across every employee's browser.
//
// Usage:
//
//	bftagd -policy policy.json -addr :7000
//	bftagd -policy policy.json -state tags.bf -save-every 100
//
// Devices connect with internal/tagserver.Client; text never leaves the
// device — only winnowed fingerprint hashes cross the wire.
package main

import (
	"flag"
	"fmt"
	"net/http"
	"os"
	"sync/atomic"

	"github.com/lsds/browserflow"
	"github.com/lsds/browserflow/internal/store"
	"github.com/lsds/browserflow/internal/tagserver"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "bftagd:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("bftagd", flag.ContinueOnError)
	var (
		policyPath = fs.String("policy", "", "policy JSON file (required)")
		statePath  = fs.String("state", "", "optional state file to load and periodically save")
		passphrase = fs.String("passphrase", "", "state passphrase")
		saveEvery  = fs.Int("save-every", 500, "save state every N observe requests (0 disables)")
		addr       = fs.String("addr", ":7000", "listen address")
		expire     = fs.Duration("expire-every", 0, "run fingerprint expiry at this interval (0 disables)")
		retain     = fs.Uint64("retain", 100000, "observations to retain when expiry runs")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *policyPath == "" {
		return fmt.Errorf("-policy is required")
	}
	mw, err := browserflow.NewFromPolicyFile(*policyPath)
	if err != nil {
		return err
	}
	if *statePath != "" {
		if _, err := os.Stat(*statePath); err == nil {
			if err := mw.Load(*statePath, *passphrase); err != nil {
				return fmt.Errorf("load state: %w", err)
			}
		}
	}

	server, err := tagserver.NewServer(mw.Engine())
	if err != nil {
		return err
	}

	// Periodic removal of old fingerprints (§4.4).
	if *expire > 0 {
		janitor := store.NewJanitor(mw.Tracker(), *expire, *retain)
		defer janitor.Shutdown()
	}

	// Periodic persistence keyed on observe traffic.
	var observeCount atomic.Int64
	handler := http.Handler(server)
	if *statePath != "" && *saveEvery > 0 {
		handler = http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			server.ServeHTTP(w, r)
			if r.URL.Path == "/v1/observe" {
				if n := observeCount.Add(1); n%int64(*saveEvery) == 0 {
					if err := mw.Save(*statePath, *passphrase); err != nil {
						fmt.Fprintln(os.Stderr, "bftagd: save state:", err)
					}
				}
			}
		})
	}

	stats := mw.Stats()
	fmt.Printf("bftagd: serving on %s (%d segments, %d hashes)\n",
		*addr, stats.ParagraphSegments, stats.DistinctHashes)
	return http.ListenAndServe(*addr, handler)
}
