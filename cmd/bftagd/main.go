// Command bftagd runs the shared enterprise tag service: a central
// BrowserFlow engine that devices sync fingerprint hashes through, making
// disclosure tracking consistent across every employee's browser.
//
// Usage:
//
//	bftagd -policy policy.json -addr :7000
//	bftagd -policy policy.json -wal-dir /var/lib/bftagd \
//	       -fsync interval -fsync-interval 50ms -checkpoint-every 1m
//	bftagd -policy policy.json -state tags.bf -save-every 100
//	bftagd -policy policy.json -read-timeout 10s -write-timeout 30s \
//	       -shutdown-grace 10s -max-body 1048576
//
// The policy file is compiled at startup: service classes and
// propagation rules are resolved into flat bitset check tables installed
// on the registry, and the compile fingerprint is published on /healthz
// so a fleet can be audited for policy agreement. Before compiling, the
// file is linted (bfctl policy lint's analysis) and the server refuses to
// start on any diagnostic — including warnings like fail-open holes —
// unless -policy-lint=false.
//
// Devices connect with internal/tagserver.Client; text never leaves the
// device — only winnowed fingerprint hashes cross the wire. The server
// exposes /healthz for the client-side failover layer's recovery probes,
// carries read/write timeouts so slow peers cannot wedge it, bounds
// request bodies (413 past -max-body), and drains in-flight requests on
// SIGINT/SIGTERM before stopping the expiry janitor and flushing state.
//
// With -wal-dir, every state mutation is journalled to a write-ahead log
// and checkpointed in the background; after a crash the service recovers
// the newest checkpoint plus the surviving WAL suffix. The legacy
// -state/-save-every snapshot loop remains as a fallback when the WAL is
// disabled.
//
// A durable bftagd is also a replication primary: it serves
// /v1/repl/snapshot and /v1/repl/stream so replicas can bootstrap from a
// checkpoint and tail the WAL. Start a read replica with
//
//	bftagd -policy policy.json -wal-dir /var/lib/bftagd-replica \
//	       -replica-of http://primary:7000 -addr :7001
//
// The replica byte-mirrors the primary's log into its own -wal-dir,
// serves read-only traffic, and answers writes with 421 + the primary's
// address. `bfctl promote` turns a caught-up replica into the new
// primary under a higher fencing term; the deposed primary refuses
// writes once it observes that term. -term-file overrides where the term
// is persisted, -repl-listen moves the replication API onto its own
// listener, and -advertise sets the URL peers are redirected to.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"sync/atomic"
	"syscall"
	"time"

	"github.com/lsds/browserflow"
	"github.com/lsds/browserflow/internal/admission"
	"github.com/lsds/browserflow/internal/obs"
	policyPkg "github.com/lsds/browserflow/internal/policy"
	"github.com/lsds/browserflow/internal/policyfile"
	"github.com/lsds/browserflow/internal/replication"
	"github.com/lsds/browserflow/internal/store"
	"github.com/lsds/browserflow/internal/tagserver"
	"github.com/lsds/browserflow/internal/tdm"
	"github.com/lsds/browserflow/internal/wal"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "bftagd:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("bftagd", flag.ContinueOnError)
	var (
		policyPath   = fs.String("policy", "", "policy JSON file (required)")
		policyLint   = fs.Bool("policy-lint", true, "lint the policy file at startup and refuse to serve on any diagnostic (including warnings)")
		statePath    = fs.String("state", "", "optional state file to load and periodically save (fallback when -wal-dir is unset)")
		passphrase   = fs.String("passphrase", "", "state passphrase (encrypts snapshots and checkpoints at rest)")
		saveEvery    = fs.Int("save-every", 500, "save state every N observations (batch items count individually; 0 disables)")
		walDir       = fs.String("wal-dir", "", "directory for the write-ahead log and checkpoints (enables crash-safe durability)")
		fsyncMode    = fs.String("fsync", "always", "WAL fsync policy: always | interval | none")
		fsyncEvery   = fs.Duration("fsync-interval", wal.DefaultSyncInterval, "group-commit cadence for -fsync interval")
		ckptEvery    = fs.Duration("checkpoint-every", time.Minute, "background checkpoint cadence (0 = checkpoint only at shutdown)")
		scrubEvery   = fs.Duration("scrub-every", time.Hour, "at-rest scrub cadence re-verifying sealed WAL segments and checkpoints (0 disables)")
		scrubRateMB  = fs.Int("scrub-rate-mb", 8, "scrub read-rate bound in MiB/s (0 = unthrottled)")
		onDiskFull   = fs.String("on-disk-full", store.OnDiskFullPrune, "ENOSPC policy: prune (free obsolete segments/checkpoints and retry) | fail (degrade immediately)")
		addr         = fs.String("addr", ":7000", "listen address")
		expire       = fs.Duration("expire-every", 0, "run fingerprint expiry at this interval (0 disables)")
		compactEvery = fs.Duration("compact-every", 10*time.Minute, "merge index heads into their compacted runs at this interval (0 disables)")
		retain       = fs.Uint64("retain", 100000, "observations to retain when expiry runs")
		readTimeout  = fs.Duration("read-timeout", 10*time.Second, "per-request read timeout")
		writeTimeout = fs.Duration("write-timeout", 30*time.Second, "per-request write timeout")
		grace        = fs.Duration("shutdown-grace", 10*time.Second, "time allowed for in-flight requests to drain on SIGINT/SIGTERM")
		maxBody      = fs.Int64("max-body", tagserver.DefaultMaxBodyBytes, "maximum request body size in bytes (413 past this)")
		replicaOf    = fs.String("replica-of", "", "run as a read replica of this primary URL (requires -wal-dir for the mirrored log)")
		replListen   = fs.String("repl-listen", "", "serve the /v1/repl/* API on this separate address (default: the main -addr)")
		termFile     = fs.String("term-file", "", "file persisting the replication fencing term (default: <wal-dir>/TERM)")
		advertise    = fs.String("advertise", "", "base URL peers are told to dial for this node (default: http://<listen addr>)")
		debugListen  = fs.String("debug-listen", "", "serve pprof + /v1/metrics + /v1/debug/traces on this address (loopback only; empty disables)")

		ringFile    = fs.String("ring-file", "", "partition ring file (enables partition mode; flips are persisted here)")
		partitionID = fs.String("partition-id", "", "this node's partition ID in the ring (required with -ring-file)")
		splitRange  = fs.String("split-range", "", "inclusive key range lo:hi this node owns during a split (filtered replica bootstrap, or restart of a promoted split target)")

		admitOn        = fs.Bool("admission", true, "route observes through the admission pipeline (coalescing, bounded queues, 429 load shedding)")
		coalesceWindow = fs.Duration("coalesce-window", 0, "debounce window folding a segment's keystroke observes into one engine call (0 folds only under backlog)")
		admitQueue     = fs.Int("admit-queue", 4096, "interactive admission queue depth (arrivals past it are shed with 429)")
		admitBulkQueue = fs.Int("admit-bulk-queue", 256, "bulk (batch flush) admission queue depth")
		admitWorkers   = fs.Int("admit-workers", 0, "admission worker concurrency (0 = GOMAXPROCS)")
		admitDwell     = fs.Duration("admit-max-dwell", 2*time.Second, "interactive head-of-line age past which arrivals are shed; the bulk lane sheds at a quarter of it")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *policyPath == "" {
		return fmt.Errorf("-policy is required")
	}
	if *replicaOf != "" && *walDir == "" {
		return fmt.Errorf("-replica-of requires -wal-dir for the mirrored log")
	}
	if *ringFile != "" && *partitionID == "" {
		return fmt.Errorf("-ring-file requires -partition-id")
	}
	if *splitRange != "" && *ringFile == "" {
		return fmt.Errorf("-split-range requires -ring-file")
	}
	var split *replication.SplitRange
	if *splitRange != "" {
		var serr error
		split, serr = parseSplitRange(*splitRange)
		if serr != nil {
			return serr
		}
	}
	if *policyLint {
		data, rerr := os.ReadFile(*policyPath)
		if rerr != nil {
			return rerr
		}
		if diags := policyfile.Lint(data); len(diags) > 0 {
			for _, d := range diags {
				fmt.Fprintf(os.Stderr, "bftagd: %s: %s\n", *policyPath, d)
			}
			return fmt.Errorf("policy lint failed: %d diagnostic(s) in %s (use -policy-lint=false to serve anyway)", len(diags), *policyPath)
		}
	}
	mw, err := browserflow.NewFromPolicyFile(*policyPath)
	if err != nil {
		return err
	}

	var key []byte
	if *passphrase != "" {
		key = store.DeriveKey(*passphrase)
	}
	logf := func(format string, args ...interface{}) {
		fmt.Fprintf(os.Stderr, "bftagd: "+format+"\n", args...)
	}

	// Listen before building the replication node so the default
	// advertised address can include the kernel-assigned port.
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	if *advertise == "" {
		*advertise = "http://" + ln.Addr().String()
	}

	// Observability bundle: RED metrics + span ring shared by the tag
	// service handlers, the replication API, and the replica applier.
	o := obs.New(nil, 0)

	// durableBox is the journal behind /healthz durability stats; on a
	// replica it is nil until promotion installs one.
	var durableBox atomic.Pointer[store.Durable]
	defer func() {
		if d := durableBox.Swap(nil); d != nil {
			d.Close()
		}
	}()

	// Partition mode: the node loads its ring, answers ownership 421s for
	// segments homed elsewhere, and serves the /v1/part/* scatter-gather
	// API to the routing tier.
	var pstate *partState
	if *ringFile != "" {
		pstate, err = newPartState(*partitionID, *ringFile, split, logf)
		if err != nil {
			ln.Close()
			return err
		}
	}

	// Filtered snapshots let a split target bootstrap only the moving key
	// range; the filter rebuilds the checkpoint with out-of-range index
	// state removed (labels stay — they are global shadow state).
	filterSnapshot := func(blob []byte, lo, hi uint32) ([]byte, error) {
		return store.FilterSnapshotRange(blob, mw.Tracker().Params(), lo, hi)
	}
	primaryOpts := replication.PrimaryOptions{Logf: logf, FilterSnapshot: filterSnapshot}

	// Replication state: every durable node gets a fencing term and the
	// /v1/repl/* API; plain snapshot-mode nodes are standalone.
	var node *replication.Node
	var replService *replication.Service
	if *walDir != "" {
		if *termFile == "" {
			*termFile = filepath.Join(*walDir, "TERM")
		}
		role := replication.RolePrimary
		if *replicaOf != "" {
			role = replication.RoleReplica
		}
		node, err = replication.NewNode(replication.NodeOptions{
			Role:     role,
			Self:     *advertise,
			Primary:  *replicaOf,
			TermFile: *termFile,
			Logf:     logf,
		})
		if err != nil {
			ln.Close()
			return err
		}
		replService = replication.NewService(node, primaryOpts, logf)
		replService.SetObs(o)
		replService.OnPromote(func(d *store.Durable) {
			durableBox.Store(d)
		})
	}

	// Durable primary mode: recover checkpoint + WAL, then journal every
	// mutation and serve the replication log.
	var durable *store.Durable
	serverOpts := []tagserver.ServerOption{
		tagserver.WithMaxBodyBytes(*maxBody),
		tagserver.WithObs(o),
		tagserver.WithPolicyInfo(mw.PolicyHash(), len(mw.Registry().Services())),
	}
	serverOpts = append(serverOpts, tagserver.WithDurabilitySource(func() (store.DurabilityStats, bool) {
		if d := durableBox.Load(); d != nil {
			return d.Stats(), true
		}
		return store.DurabilityStats{}, false
	}))
	if replService != nil {
		serverOpts = append(serverOpts, tagserver.WithReplicationStatus(func() tagserver.HealthReplication {
			st := replService.Status()
			return tagserver.HealthReplication{
				Role:           st.Role,
				Term:           st.Term,
				Primary:        st.Primary,
				Position:       st.Position,
				LagRecords:     st.LagRecords,
				LagBytes:       st.LagBytes,
				AppliedRecords: st.AppliedRecords,
				Bootstraps:     st.Bootstraps,
				Connected:      st.Connected,
				LastError:      st.LastError,
			}
		}))
	}
	if *replicaOf != "" {
		// Replica mode: no local durable store; the engine is fed by the
		// mirrored stream and promotion opens the durable store in place.
		policy, err := wal.ParseSyncPolicy(*fsyncMode)
		if err != nil {
			ln.Close()
			return err
		}
		replica, err := replication.OpenReplica(node, mw.Engine(), replication.ReplicaOptions{
			Dir:                    *walDir,
			Key:                    key,
			NoSync:                 policy == wal.SyncNone,
			PromoteFsync:           policy,
			PromoteFsyncInterval:   *fsyncEvery,
			PromoteCheckpointEvery: *ckptEvery,
			Split:                  split,
			Logf:                   logf,
			Obs:                    o,
		})
		if err != nil {
			ln.Close()
			return fmt.Errorf("open replica dir: %w", err)
		}
		replService.SetReplica(replica)
		replica.Start()
		defer replica.Stop()
		st := replica.Status()
		fmt.Printf("bftagd: replica of %s (term %d, resuming at %s)\n", *replicaOf, st.Term, st.Position)
	} else if *walDir != "" {
		policy, err := wal.ParseSyncPolicy(*fsyncMode)
		if err != nil {
			return err
		}
		// The policy file is the source of truth for service definitions;
		// remember them so services added to the file since the last
		// checkpoint survive the restore below.
		policyServices := mw.Registry().Services()

		durable, err = store.OpenDurable(store.DurableOptions{
			Dir:             *walDir,
			Key:             key,
			Fsync:           policy,
			FsyncInterval:   *fsyncEvery,
			CheckpointEvery: *ckptEvery,
			ScrubEvery:      *scrubEvery,
			ScrubRateMB:     *scrubRateMB,
			OnDiskFull:      *onDiskFull,
			SegmentFilter:   durableSegmentFilter(split),
			// Disk-fault policy follows the engine mode: an advisory
			// deployment keeps serving verdicts from memory on a dead disk
			// (fail-open); enforcing/encrypting deployments stop acking
			// (fail-closed) — nothing is confirmed the journal cannot hold.
			FailOpen: mw.Engine().Mode() == policyPkg.ModeAdvisory,
			Logf: func(format string, args ...interface{}) {
				fmt.Fprintf(os.Stderr, "bftagd: "+format+"\n", args...)
			},
		}, mw.Tracker(), mw.Registry())
		if err != nil {
			return fmt.Errorf("open wal dir: %w", err)
		}
		durableBox.Store(durable)

		// Re-register policy-file services the checkpoint restore dropped.
		for _, svc := range policyServices {
			err := mw.Registry().RegisterService(svc.Name, svc.Privilege, svc.Confidentiality)
			if err != nil && !errors.Is(err, tdm.ErrServiceExists) {
				return fmt.Errorf("re-register service %s: %w", svc.Name, err)
			}
		}

		mw.Engine().SetJournal(durable)
		replService.SetPrimary(replication.NewPrimary(node, durable, primaryOpts))

		rec := durable.Stats().Recovery
		fmt.Printf("bftagd: durability on (%s, fsync=%s): recovered %d WAL records", *walDir, policy, rec.RecordsReplayed)
		if rec.CheckpointLoaded != "" {
			fmt.Printf(" on top of %s", rec.CheckpointLoaded)
		}
		if rec.TornBytesTruncated > 0 {
			fmt.Printf(", truncated %d torn bytes", rec.TornBytesTruncated)
		}
		fmt.Printf(" in %v\n", rec.Duration.Round(time.Millisecond))
	} else if *statePath != "" {
		if _, err := os.Stat(*statePath); err == nil {
			if err := mw.Load(*statePath, *passphrase); err != nil {
				return fmt.Errorf("load state: %w", err)
			}
		}
	}

	// Admission control in front of the engine: per-segment coalescing of
	// keystroke observes, bounded lanes with 429 + Retry-After shedding, and
	// graceful drain. Created after the durability wiring so every drained
	// job reaches the journal, and closed (deferred below, explicitly on
	// SIGTERM) BEFORE the durable store: drain-then-close is what keeps
	// accepted-but-queued observes from being lost on shutdown.
	var pipeline *admission.Pipeline
	if *admitOn {
		pipeline, err = admission.New(mw.Engine(), admission.Config{
			CoalesceWindow:   *coalesceWindow,
			InteractiveQueue: *admitQueue,
			BulkQueue:        *admitBulkQueue,
			Workers:          *admitWorkers,
			MaxDwell:         *admitDwell,
			Obs:              o,
		})
		if err != nil {
			ln.Close()
			return err
		}
		serverOpts = append(serverOpts, tagserver.WithAdmission(pipeline))
		// Registered after the durableBox defer, so it runs before it:
		// queues drain through the engine while the WAL is still open.
		defer pipeline.Close(context.Background()) //nolint:errcheck
	}

	if pstate != nil {
		serverOpts = append(serverOpts, tagserver.WithPartition(pstate))
	}
	server, err := tagserver.NewServer(mw.Engine(), serverOpts...)
	if err != nil {
		return err
	}

	// Periodic removal of old fingerprints (§4.4). Deferred shutdown runs
	// after the HTTP server has drained, so the janitor never races
	// in-flight requests at exit.
	if *expire > 0 {
		janitor := store.NewJanitor(mw.Tracker(), *expire, *retain)
		defer janitor.Shutdown()
	}

	// Periodic index compaction: merge the mutable posting heads into their
	// delta-encoded runs so a long-lived daemon converges on the compact
	// corpus-scale layout instead of accumulating head growth between the
	// size-triggered merges.
	if *compactEvery > 0 {
		compactStop := make(chan struct{})
		go func() {
			ticker := time.NewTicker(*compactEvery)
			defer ticker.Stop()
			for {
				select {
				case <-ticker.C:
					mw.Tracker().Paragraphs().Compact()
					mw.Tracker().Documents().Compact()
				case <-compactStop:
					return
				}
			}
		}()
		defer close(compactStop)
	}

	// Legacy periodic persistence keyed on observation traffic; superseded
	// by the WAL when -wal-dir is set. Saves are triggered on bucket
	// transitions of the server's observation counter, which weighs
	// batched flushes by their item count instead of counting a whole
	// /v1/observe/batch request as one observation.
	handler := http.Handler(server)
	if durable == nil && *statePath != "" && *saveEvery > 0 {
		var savedBucket atomic.Int64
		handler = http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			server.ServeHTTP(w, r)
			switch r.URL.Path {
			case "/v1/observe", "/v1/observe/batch":
				bucket := server.Observes() / int64(*saveEvery)
				if prev := savedBucket.Load(); bucket > prev && savedBucket.CompareAndSwap(prev, bucket) {
					if err := mw.Save(*statePath, *passphrase); err != nil {
						fmt.Fprintln(os.Stderr, "bftagd: save state:", err)
					}
				}
			}
		})
	}

	// Replication wiring: the write guard fences mutations on non-primary
	// nodes, and the /v1/repl/* API is mounted either on the main address
	// or (with -repl-listen) on its own listener.
	var replSrv *http.Server
	var replLn net.Listener
	if replService != nil {
		mux := http.NewServeMux()
		if *replListen == "" {
			mux.Handle("/v1/repl/", replService.Handler())
		} else {
			replLn, err = net.Listen("tcp", *replListen)
			if err != nil {
				ln.Close()
				return fmt.Errorf("repl listen: %w", err)
			}
			replSrv = &http.Server{
				Handler:           replService.Handler(),
				ReadHeaderTimeout: *readTimeout,
				IdleTimeout:       2 * *readTimeout,
			}
		}
		mux.Handle("/", replication.Guard(node, handler, logf))
		handler = mux
	}

	srv := &http.Server{
		Handler:           handler,
		ReadTimeout:       *readTimeout,
		ReadHeaderTimeout: *readTimeout,
		WriteTimeout:      *writeTimeout,
		IdleTimeout:       2 * *readTimeout,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errCh := make(chan error, 1)
	go func() { errCh <- srv.Serve(ln) }()
	if replSrv != nil {
		go func() { errCh <- replSrv.Serve(replLn) }()
		fmt.Printf("bftagd: replication API on %s\n", replLn.Addr())
	}

	// Opt-in debug surface: pprof, Prometheus exposition and the span
	// ring on their own (ideally loopback) listener.
	var dbgSrv *http.Server
	if *debugListen != "" {
		dbgLn, err := net.Listen("tcp", *debugListen)
		if err != nil {
			ln.Close()
			return fmt.Errorf("debug listen: %w", err)
		}
		dbgSrv = &http.Server{Handler: o.DebugHandler(), ReadHeaderTimeout: *readTimeout}
		go func() { errCh <- dbgSrv.Serve(dbgLn) }()
		fmt.Printf("bftagd: debug API (pprof, metrics, traces) on %s\n", dbgLn.Addr())
	}

	stats := mw.Stats()
	fmt.Printf("bftagd: serving on %s (%d segments, %d hashes)\n",
		ln.Addr(), stats.ParagraphSegments, stats.DistinctHashes)

	select {
	case err := <-errCh:
		return err
	case <-ctx.Done():
		stop() // restore default signal handling for a second Ctrl-C
		fmt.Fprintln(os.Stderr, "bftagd: shutting down...")
		shCtx, cancel := context.WithTimeout(context.Background(), *grace)
		defer cancel()
		// Drain the admission queues CONCURRENTLY with the HTTP shutdown:
		// in-flight observe handlers are blocked awaiting verdicts for
		// queued (possibly debouncing) jobs, and srv.Shutdown waits for
		// those handlers — draining after it returns would deadlock until
		// the grace expires. Drain completes (so handlers unblock and
		// Shutdown can finish), and only then does the durable store
		// close: every accepted-but-queued observe reaches the WAL, or a
		// clean SIGTERM silently drops acknowledged work.
		drainCh := make(chan error, 1)
		if pipeline != nil {
			go func() { drainCh <- pipeline.Close(shCtx) }()
		} else {
			drainCh <- nil
		}
		shutdownErr := srv.Shutdown(shCtx)
		if err := <-drainCh; err != nil {
			fmt.Fprintln(os.Stderr, "bftagd: drain admission:", err)
			if shutdownErr == nil {
				shutdownErr = err
			}
		}
		if replSrv != nil {
			if err := replSrv.Shutdown(shCtx); err != nil && shutdownErr == nil {
				shutdownErr = err
			}
		}
		if dbgSrv != nil {
			if err := dbgSrv.Shutdown(shCtx); err != nil && shutdownErr == nil {
				shutdownErr = err
			}
		}
		if d := durableBox.Swap(nil); d != nil {
			// Final checkpoint + WAL sync so a clean SIGTERM leaves a fresh
			// checkpoint and an empty replay set.
			if err := d.Close(); err != nil {
				fmt.Fprintln(os.Stderr, "bftagd: flush durability:", err)
			}
		} else if *statePath != "" {
			if err := mw.Save(*statePath, *passphrase); err != nil {
				fmt.Fprintln(os.Stderr, "bftagd: save state:", err)
			}
		}
		return shutdownErr
	}
}
