package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"net/http/httptest"
	"net/url"
	"os/exec"
	"path/filepath"
	"testing"

	"github.com/lsds/browserflow/internal/fingerprint"
	"github.com/lsds/browserflow/internal/partition"
	"github.com/lsds/browserflow/internal/segment"
	"github.com/lsds/browserflow/internal/tagserver"
)

// partNode is one daemon in the partitioned chaos cluster.
type partNode struct {
	addr, base string
	walDir     string
	ringPath   string
	args       []string
	proc       *exec.Cmd
}

// newPartNode allocates an address and directories for one cluster
// member; each node keeps its own ring-file copy because SetRing
// persists the flip in place.
func newPartNode(t *testing.T, dir, name string, ring *partition.Ring) *partNode {
	t.Helper()
	n := &partNode{
		addr:     freeAddr(t),
		walDir:   filepath.Join(dir, name),
		ringPath: filepath.Join(dir, name+".ring"),
	}
	n.base = "http://" + n.addr
	if err := partition.SaveRingFile(n.ringPath, ring); err != nil {
		t.Fatal(err)
	}
	return n
}

func (n *partNode) start(t *testing.T, policyPath, partitionID string, extra ...string) {
	t.Helper()
	n.args = append([]string{
		"-policy", policyPath, "-addr", n.addr, "-advertise", n.base,
		"-wal-dir", n.walDir, "-fsync", "always",
		"-ring-file", n.ringPath, "-partition-id", partitionID,
	}, extra...)
	n.proc = startDaemon(t, n.args...)
	waitHealthy(t, n.base)
}

func (n *partNode) kill(t *testing.T) {
	t.Helper()
	if err := n.proc.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	n.proc.Wait()
}

// restart relaunches the node with the args of its last start.
func (n *partNode) restart(t *testing.T) {
	t.Helper()
	n.proc = startDaemon(t, n.args...)
	waitHealthy(t, n.base)
}

// waitCaughtUp blocks until every listed replica is connected with zero lag,
// so read-path comparisons against the single-node reference are
// deterministic.
func waitCaughtUp(t *testing.T, bases ...string) {
	t.Helper()
	for _, base := range bases {
		waitRepl(t, base, "catch up", func(m map[string]any) bool {
			connected, _ := m["connected"].(bool)
			lag, _ := m["lag_records"].(float64)
			return connected && lag == 0
		})
	}
}

// chaosOp is one wire request mirrored to the reference node and the
// partitioned cluster.
type chaosOp struct {
	method, path, body string
}

func observeOp(service string, seg segment.ID, hashes []uint32) chaosOp {
	b, _ := json.Marshal(tagserver.ObserveRequest{Device: "chaos", Service: service, Seg: seg, Hashes: hashes})
	return chaosOp{"POST", "/v1/observe", string(b)}
}

func checkOp(dest string, hashes []uint32) chaosOp {
	b, _ := json.Marshal(tagserver.CheckRequest{Device: "chaos", Dest: dest, Hashes: hashes})
	return chaosOp{"POST", "/v1/check", string(b)}
}

func suppressOp(seg segment.ID, tag string) chaosOp {
	b, _ := json.Marshal(map[string]string{"user": "alice", "seg": string(seg), "tag": tag, "justification": "reviewed"})
	return chaosOp{"POST", "/v1/suppress", string(b)}
}

func uploadOp(seg segment.ID, dest string) chaosOp {
	b, _ := json.Marshal(tagserver.UploadRequest{Device: "chaos", Seg: seg, Dest: dest})
	return chaosOp{"POST", "/v1/upload", string(b)}
}

func labelOp(seg segment.ID) chaosOp {
	return chaosOp{"GET", "/v1/label?seg=" + url.QueryEscape(string(seg)), ""}
}

// playOp sends the op and returns "status\nbody".
func playOp(t *testing.T, base string, o chaosOp) string {
	t.Helper()
	var (
		resp *http.Response
		err  error
	)
	if o.method == "GET" {
		resp, err = http.Get(base + o.path)
	} else {
		resp, err = http.Post(base+o.path, "application/json", bytes.NewReader([]byte(o.body)))
	}
	if err != nil {
		t.Fatalf("%s %s against %s: %v", o.method, o.path, base, err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	return fmt.Sprintf("%d\n%s", resp.StatusCode, buf.String())
}

// mirror drives the ops against both deployments and fails on any
// byte divergence.
func mirror(t *testing.T, single, front, phase string, ops []chaosOp) {
	t.Helper()
	for i, o := range ops {
		want := playOp(t, single, o)
		got := playOp(t, front, o)
		if got != want {
			t.Fatalf("%s op %d (%s %s): partitioned cluster diverged\nsingle:      %q\npartitioned: %q",
				phase, i, o.method, o.path, want, got)
		}
	}
}

// hashesFor fingerprints text like the extension would.
func hashesFor(t *testing.T, text string) []uint32 {
	t.Helper()
	fp, err := fingerprint.Compute(text, fingerprint.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return fp.Hashes()
}

// segInRange finds a segment name with the given prefix whose placement
// key falls inside [lo, hi].
func segInRange(t *testing.T, prefix string, lo, hi uint32) segment.ID {
	t.Helper()
	for i := 0; i < 1_000_000; i++ {
		seg := segment.ID(fmt.Sprintf("%s%d#p0", prefix, i))
		if k := segment.Key(seg); k >= lo && k <= hi {
			return seg
		}
	}
	t.Fatalf("no %s* segment keys in [%d, %d]", prefix, lo, hi)
	return ""
}

// TestPartitionChaos is the acceptance run for the partitioned cluster,
// against real bftagd subprocesses at fsync=always:
//
//  1. three partition groups (primary + replica each) come up under ring
//     v1; a routing tier spans them and a plain single node serves as the
//     behavioural reference;
//  2. a mixed workload (confidential observes, cross-partition pastes,
//     release checks, suppressions, uploads, label reads) produces
//     byte-identical responses from the cluster and the reference;
//  3. partition p1's primary dies by SIGKILL; its caught-up replica is
//     promoted and the old primary, restarted, is fenced — the tier keeps
//     answering identically with zero acked-write loss;
//  4. p2 is split live: a filtered replica mirrors only the moving key
//     range, is SIGKILLed mid-bootstrap and resumes from its local WAL;
//     ring v2 flips on the source first (fencing the moved range while
//     the mirror still runs), the caught-up target is promoted and the
//     moved range pruned — the tier follows the 421 ring redirect on its
//     own;
//  5. after the dust settles, verdicts still match byte-for-byte and the
//     per-partition segment counts sum to the reference's.
func TestPartitionChaos(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess end-to-end test")
	}
	dir := t.TempDir()
	policyPath := writeTestPolicy(t, dir)

	// Reference single node.
	singleAddr := freeAddr(t)
	singleBase := "http://" + singleAddr
	startDaemon(t, "-policy", policyPath, "-addr", singleAddr, "-advertise", singleBase,
		"-wal-dir", filepath.Join(dir, "single"), "-fsync", "always")
	waitHealthy(t, singleBase)

	// (1) Three partitions, two nodes each, even keyspace thirds. Node
	// addresses must be in the ring before the daemons load it, so
	// allocate first, then write each node's ring copy.
	type group struct{ primary, replica *partNode }
	groups := make([]group, 3)
	bases := make([][]string, 3)
	for i := range groups {
		groups[i] = group{
			primary: &partNode{addr: freeAddr(t)},
			replica: &partNode{addr: freeAddr(t)},
		}
		groups[i].primary.base = "http://" + groups[i].primary.addr
		groups[i].replica.base = "http://" + groups[i].replica.addr
		bases[i] = []string{groups[i].primary.base, groups[i].replica.base}
	}
	width := uint64(math.MaxUint32+1) / 3
	ring := &partition.Ring{Version: 1}
	for i := 0; i < 3; i++ {
		lo := uint32(uint64(i) * width)
		hi := uint32(math.MaxUint32)
		if i < 2 {
			hi = uint32(uint64(i+1)*width - 1)
		}
		ring.Partitions = append(ring.Partitions, partition.Partition{
			ID: fmt.Sprintf("p%d", i), Lo: lo, Hi: hi, Nodes: bases[i],
		})
	}
	if err := ring.Validate(); err != nil {
		t.Fatal(err)
	}
	for i, g := range groups {
		id := fmt.Sprintf("p%d", i)
		for role, n := range map[string]*partNode{"primary": g.primary, "replica": g.replica} {
			n.walDir = filepath.Join(dir, id+"-"+role)
			n.ringPath = filepath.Join(dir, id+"-"+role+".ring")
			if err := partition.SaveRingFile(n.ringPath, ring); err != nil {
				t.Fatal(err)
			}
		}
		g.primary.start(t, policyPath, id)
		g.replica.start(t, policyPath, id, "-replica-of", g.primary.base)
	}

	// The routing tier runs in-process: same Router the bfproxy router
	// mode serves, pointed at the subprocess cluster.
	rt, err := partition.NewRouter(ring, partition.RouterOptions{FP: fingerprint.DefaultConfig()})
	if err != nil {
		t.Fatal(err)
	}
	rt.Prime(t.Context())
	frontSrv := httptest.NewServer(partition.NewHandler(rt))
	t.Cleanup(frontSrv.Close)
	front := frontSrv.URL

	// (2) Mixed workload. Confidential wiki pages plus pad copies of the
	// same text force cross-partition resolution whenever source and
	// destination segments hash to different thirds.
	wikiSegs := make([]segment.ID, 0, 18)
	var writes, reads []chaosOp
	homes := map[string]bool{}
	for i := 0; i < 18; i++ {
		wseg := segment.ID(fmt.Sprintf("wiki/page%d#p0", i))
		pseg := segment.ID(fmt.Sprintf("pad/copy%d#p0", i))
		wikiSegs = append(wikiSegs, wseg)
		for _, seg := range []segment.ID{wseg, pseg} {
			home, ok := ring.Home(seg)
			if !ok {
				t.Fatalf("no home for %s", seg)
			}
			homes[home.ID] = true
		}
		text := sentence(i)
		writes = append(writes,
			observeOp("wiki", wseg, hashesFor(t, text)),
			observeOp("pad", pseg, hashesFor(t, text)),
			checkOp("pad", hashesFor(t, text)),
		)
		reads = append(reads, labelOp(pseg), uploadOp(pseg, "pad"))
	}
	if len(homes) != 3 {
		t.Fatalf("workload segments land on %d partitions, want all 3", len(homes))
	}
	// Suppressions are writes; the uploads that observe their effect are
	// reads, so they run after the replication barrier below (the cluster
	// serves reads from replicas, and a replica mid-catch-up would answer
	// with the pre-suppression label).
	for i := 0; i < 6; i++ {
		writes = append(writes, suppressOp(wikiSegs[i], "tw"))
		reads = append(reads, labelOp(wikiSegs[i]), uploadOp(wikiSegs[i], "pad"))
	}
	mirror(t, singleBase, front, "initial writes", writes)
	waitCaughtUp(t, groups[0].replica.base, groups[1].replica.base, groups[2].replica.base)
	mirror(t, singleBase, front, "initial reads", reads)

	// Probe the cluster must keep answering identically across failures.
	probe := checkOp("pad", hashesFor(t, sentence(3)))
	wantProbe := playOp(t, singleBase, probe)
	if got := playOp(t, front, probe); got != wantProbe {
		t.Fatalf("probe before chaos: got %q want %q", got, wantProbe)
	}

	// (3) Kill p1's primary. Its replica is caught up (barrier above), so
	// promotion loses nothing; the restarted old primary is fenced with
	// the new term and the tier's cluster client follows the 421 chain.
	groups[1].primary.kill(t)
	presp, err := http.Post(groups[1].replica.base+"/v1/repl/promote", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	var promoted struct {
		Role string `json:"role"`
		Term uint64 `json:"term"`
	}
	if err := json.NewDecoder(presp.Body).Decode(&promoted); err != nil {
		t.Fatal(err)
	}
	presp.Body.Close()
	if promoted.Role != "primary" || promoted.Term == 0 {
		t.Fatalf("promote p1 replica = %+v, want primary with bumped term", promoted)
	}
	groups[1].primary.restart(t)
	fence, _ := json.Marshal(map[string]any{"term": promoted.Term, "primary": groups[1].replica.base})
	if status, body := postJSON(t, groups[1].primary.base+"/v1/repl/fence", string(fence)); status != http.StatusOK {
		t.Fatalf("fence old p1 primary: %d %s", status, body)
	}

	// Zero acked-write loss: the probe answers exactly as before the kill,
	// and new writes (some homed on p1) keep matching the reference.
	if got := playOp(t, front, probe); got != wantProbe {
		t.Fatalf("probe after p1 failover: got %q want %q (acked writes lost?)", got, wantProbe)
	}
	var postFailover []chaosOp
	for i := 18; i < 30; i++ {
		text := sentence(i)
		postFailover = append(postFailover,
			observeOp("wiki", segment.ID(fmt.Sprintf("wiki/page%d#p0", i)), hashesFor(t, text)),
			observeOp("pad", segment.ID(fmt.Sprintf("pad/copy%d#p0", i)), hashesFor(t, text)),
			checkOp("pad", hashesFor(t, text)),
		)
	}
	mirror(t, singleBase, front, "post-failover", postFailover)

	// (4) Live split of p2: the top half of its range moves to p3.
	src := ring.Partitions[2]
	at := src.Lo + (src.Hi-src.Lo)/2
	target := newPartNode(t, dir, "p3-target", ring)
	target.start(t, policyPath, "p3",
		"-replica-of", groups[2].primary.base,
		"-split-range", fmt.Sprintf("%d:%d", at+1, src.Hi))
	// Mid-split SIGKILL: once the filtered mirror has applied something,
	// destroy it. The restart must recover through the same segment filter
	// (out-of-range WAL records skipped) and resume, not diverge.
	waitRepl(t, target.base, "filtered bootstrap", func(m map[string]any) bool {
		connected, _ := m["connected"].(bool)
		lag, _ := m["lag_records"].(float64)
		return connected && lag == 0
	})
	target.kill(t)
	var midSplit []chaosOp
	for i := 30; i < 40; i++ {
		text := sentence(i)
		midSplit = append(midSplit,
			observeOp("wiki", segment.ID(fmt.Sprintf("wiki/page%d#p0", i)), hashesFor(t, text)),
			checkOp("pad", hashesFor(t, text)),
		)
	}
	mirror(t, singleBase, front, "mid-split", midSplit)
	target.restart(t)
	waitCaughtUp(t, target.base)

	// Complete the split the way bfctl split does: flip the ring on the
	// source FIRST, while the target is still mirroring — from then on
	// the source 421s writes for the moved range, so none can be acked
	// there that the target's stopped mirror would miss — wait for the
	// target to cover the source's frozen high-water mark, promote it,
	// flip the rest of the cluster, then prune the moved range.
	next, err := partition.SplitRing(ring, "p2", at, "p3", []string{target.base})
	if err != nil {
		t.Fatal(err)
	}
	encoded, err := partition.EncodeRing(next)
	if err != nil {
		t.Fatal(err)
	}
	installRing := func(base string) (int, []byte) {
		resp, err := http.Post(base+"/v1/part/ring", "application/octet-stream", bytes.NewReader(encoded))
		if err != nil {
			t.Fatalf("install ring on %s: %v", base, err)
		}
		defer resp.Body.Close()
		var buf bytes.Buffer
		buf.ReadFrom(resp.Body)
		return resp.StatusCode, buf.Bytes()
	}
	if status, body := installRing(groups[2].primary.base); status != http.StatusOK {
		t.Fatalf("install ring v2 on split source: %d %s", status, body)
	}
	waitCaughtUp(t, target.base)
	if status, body := postJSON(t, target.base+"/v1/repl/promote", "application/json"); status != http.StatusOK {
		t.Fatalf("promote split target: %d %s", status, body)
	}
	for _, base := range []string{
		groups[0].primary.base, groups[0].replica.base,
		groups[1].primary.base, groups[1].replica.base,
		groups[2].replica.base, target.base,
	} {
		if status, body := installRing(base); status != http.StatusOK {
			t.Fatalf("install ring v2 on %s: %d %s", base, status, body)
		}
	}
	pruneBody, _ := json.Marshal(map[string]uint32{"lo": at + 1, "hi": src.Hi})
	if status, body := postJSON(t, groups[2].primary.base+"/v1/part/prune", string(pruneBody)); status != http.StatusOK {
		t.Fatalf("prune moved range: %d %s", status, body)
	}

	// (5) The router still holds ring v1; a write homed in the moved range
	// hits the old source, gets the 421 ring redirect, refreshes, and
	// lands on p3 — byte-identical to the reference throughout.
	movedSeg := segInRange(t, "wiki/moved", at+1, src.Hi)
	var postSplit []chaosOp
	postSplit = append(postSplit,
		observeOp("wiki", movedSeg, hashesFor(t, sentence(50))),
		observeOp("pad", segInRange(t, "pad/moved", at+1, src.Hi), hashesFor(t, sentence(50))),
		checkOp("pad", hashesFor(t, sentence(50))),
	)
	for i := 40; i < 46; i++ {
		text := sentence(i)
		postSplit = append(postSplit,
			observeOp("wiki", segment.ID(fmt.Sprintf("wiki/page%d#p0", i)), hashesFor(t, text)),
			checkOp("pad", hashesFor(t, text)),
		)
	}
	mirror(t, singleBase, front, "post-split", postSplit)
	if v := rt.Ring().Version; v != next.Version {
		t.Fatalf("router still on ring v%d after redirect, want v%d", v, next.Version)
	}
	if got := playOp(t, front, probe); got != wantProbe {
		t.Fatalf("probe after split: got %q want %q", got, wantProbe)
	}

	// Segment counts: every segment lives on exactly one partition, so the
	// cluster total must equal the reference's.
	segCount := func(base string) float64 {
		resp, err := http.Get(base + "/v1/stats")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var stats struct {
			Segments float64 `json:"segments"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
			t.Fatal(err)
		}
		return stats.Segments
	}
	if got, want := segCount(front), segCount(singleBase); got != want {
		t.Errorf("cluster segment total = %v, reference = %v", got, want)
	}
}
