// Command bfproxy runs the native-application gateway of §4.4: an
// inspecting HTTP forwarder that applies corpus fingerprint matching (and
// optionally a BrowserFlow state file's TDM policy) to traffic from
// applications outside the browser.
//
// Usage:
//
//	bfproxy -upstream http://internal-services:8080 -addr :9090 \
//	        -sensitive secrets.txt -sensitive plans.txt
//	bfproxy -upstream http://host:8080 -state s.bf -passphrase pw
//	bfproxy -upstream http://host:8080 -read-timeout 10s \
//	        -write-timeout 30s -shutdown-grace 10s -max-body 8388608
//	bfproxy -ring-file /etc/bf/ring -addr :8000
//
// With -ring-file, bfproxy instead runs the partition routing tier: a
// stateless front over a consistent-hash-partitioned tag-service
// cluster that speaks the classic wire API, routes single-partition
// observes in one round trip, scatter-gathers cross-partition checks
// with per-partition deadlines (-scatter-timeout), and follows 421
// ring redirects as the cluster reshards.
//
// The gateway carries read/write timeouts, bounds inspected request
// bodies (413 past -max-body), sheds arrivals past -max-inflight with
// 429 + Retry-After, and drains in-flight requests gracefully on
// SIGINT/SIGTERM.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"net/url"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"
	"time"

	"github.com/lsds/browserflow"
	"github.com/lsds/browserflow/internal/dlpmon"
	"github.com/lsds/browserflow/internal/obs"
	"github.com/lsds/browserflow/internal/proxy"
	"github.com/lsds/browserflow/internal/webapp"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "bfproxy:", err)
		os.Exit(1)
	}
}

// stringList collects repeatable -sensitive flags.
type stringList []string

func (s *stringList) String() string { return fmt.Sprint([]string(*s)) }

func (s *stringList) Set(v string) error {
	*s = append(*s, v)
	return nil
}

func run(args []string) error {
	fs := flag.NewFlagSet("bfproxy", flag.ContinueOnError)
	var (
		upstreamRaw  = fs.String("upstream", "", "upstream base URL (required)")
		addr         = fs.String("addr", ":9090", "listen address")
		threshold    = fs.Float64("threshold", 0.5, "corpus match threshold")
		statePath    = fs.String("state", "", "optional BrowserFlow state file for TDM policy checks")
		passphrase   = fs.String("passphrase", "", "state file passphrase")
		readTimeout  = fs.Duration("read-timeout", 10*time.Second, "per-request read timeout")
		writeTimeout = fs.Duration("write-timeout", 30*time.Second, "per-request write timeout")
		grace        = fs.Duration("shutdown-grace", 10*time.Second, "time allowed for in-flight requests to drain on SIGINT/SIGTERM")
		maxBody      = fs.Int64("max-body", proxy.DefaultMaxBodyBytes, "maximum inspected request body size in bytes (413 past this)")
		maxInflight  = fs.Int("max-inflight", 256, "maximum concurrently served requests; arrivals past it are shed with 429 (0 disables)")
		debugListen  = fs.String("debug-listen", "", "serve pprof + /v1/metrics + /v1/debug/traces on this address (loopback only; empty disables)")
		ringFile     = fs.String("ring-file", "", "partition ring file: serve the cluster routing tier instead of the inspecting forwarder")
		device       = fs.String("device", "router", "device name the routing tier stamps on partition nodes' audit trails")
		scatterTO    = fs.Duration("scatter-timeout", 5*time.Second, "per-partition deadline for scatter-gather queries (routing tier)")
		sensitive    stringList
	)
	fs.Var(&sensitive, "sensitive", "file whose contents are sensitive (repeatable)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *ringFile != "" {
		return runRouter(routerConfig{
			ringFile:       *ringFile,
			addr:           *addr,
			device:         *device,
			scatterTimeout: *scatterTO,
			readTimeout:    *readTimeout,
			writeTimeout:   *writeTimeout,
			grace:          *grace,
		})
	}
	if *upstreamRaw == "" {
		return fmt.Errorf("-upstream is required")
	}
	upstream, err := url.Parse(*upstreamRaw)
	if err != nil {
		return fmt.Errorf("parse upstream: %w", err)
	}

	monitor, err := dlpmon.New(dlpmon.Config{Threshold: *threshold})
	if err != nil {
		return err
	}
	for _, path := range sensitive {
		data, err := os.ReadFile(path)
		if err != nil {
			return fmt.Errorf("read sensitive file: %w", err)
		}
		if err := monitor.AddSensitive(filepath.Base(path), string(data)); err != nil {
			return err
		}
	}

	// The proxy is the trace root: requests without an X-BF-Trace header
	// are minted one here and carry it to the upstream.
	o := obs.New(nil, 0)
	cfg := proxy.Config{Upstream: upstream, Monitor: monitor, MaxBodyBytes: *maxBody, MaxInflight: *maxInflight, Obs: o}
	if *statePath != "" {
		mw, err := browserflow.New(browserflow.DefaultConfig())
		if err != nil {
			return err
		}
		if err := mw.Load(*statePath, *passphrase); err != nil {
			return fmt.Errorf("load state: %w", err)
		}
		cfg.Engine = mw.Engine()
		cfg.ServiceOf = func(u *url.URL) (string, bool) {
			return webapp.ServiceForPath(u.Path)
		}
	}

	p, err := proxy.New(cfg)
	if err != nil {
		return err
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}

	srv := &http.Server{
		Handler:           p,
		ReadTimeout:       *readTimeout,
		ReadHeaderTimeout: *readTimeout,
		WriteTimeout:      *writeTimeout,
		IdleTimeout:       2 * *readTimeout,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errCh := make(chan error, 1)
	go func() { errCh <- srv.Serve(ln) }()

	// Opt-in debug surface: pprof, Prometheus exposition and the span
	// ring on their own (ideally loopback) listener.
	var dbgSrv *http.Server
	if *debugListen != "" {
		dbgLn, err := net.Listen("tcp", *debugListen)
		if err != nil {
			ln.Close()
			return fmt.Errorf("debug listen: %w", err)
		}
		dbgSrv = &http.Server{Handler: o.DebugHandler(), ReadHeaderTimeout: *readTimeout}
		go func() { errCh <- dbgSrv.Serve(dbgLn) }()
		fmt.Printf("bfproxy: debug API (pprof, metrics, traces) on %s\n", dbgLn.Addr())
	}

	fmt.Printf("bfproxy: %s -> %s (%d sensitive documents)\n", ln.Addr(), upstream, monitor.CorpusSize())

	select {
	case err := <-errCh:
		return err
	case <-ctx.Done():
		stop()
		fmt.Fprintln(os.Stderr, "bfproxy: shutting down...")
		shCtx, cancel := context.WithTimeout(context.Background(), *grace)
		defer cancel()
		shutdownErr := srv.Shutdown(shCtx)
		if dbgSrv != nil {
			if err := dbgSrv.Shutdown(shCtx); err != nil && shutdownErr == nil {
				shutdownErr = err
			}
		}
		return shutdownErr
	}
}
