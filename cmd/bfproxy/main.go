// Command bfproxy runs the native-application gateway of §4.4: an
// inspecting HTTP forwarder that applies corpus fingerprint matching (and
// optionally a BrowserFlow state file's TDM policy) to traffic from
// applications outside the browser.
//
// Usage:
//
//	bfproxy -upstream http://internal-services:8080 -addr :9090 \
//	        -sensitive secrets.txt -sensitive plans.txt
//	bfproxy -upstream http://host:8080 -state s.bf -passphrase pw
package main

import (
	"flag"
	"fmt"
	"net/http"
	"net/url"
	"os"
	"path/filepath"

	"github.com/lsds/browserflow"
	"github.com/lsds/browserflow/internal/dlpmon"
	"github.com/lsds/browserflow/internal/proxy"
	"github.com/lsds/browserflow/internal/webapp"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "bfproxy:", err)
		os.Exit(1)
	}
}

// stringList collects repeatable -sensitive flags.
type stringList []string

func (s *stringList) String() string { return fmt.Sprint([]string(*s)) }

func (s *stringList) Set(v string) error {
	*s = append(*s, v)
	return nil
}

func run(args []string) error {
	fs := flag.NewFlagSet("bfproxy", flag.ContinueOnError)
	var (
		upstreamRaw = fs.String("upstream", "", "upstream base URL (required)")
		addr        = fs.String("addr", ":9090", "listen address")
		threshold   = fs.Float64("threshold", 0.5, "corpus match threshold")
		statePath   = fs.String("state", "", "optional BrowserFlow state file for TDM policy checks")
		passphrase  = fs.String("passphrase", "", "state file passphrase")
		sensitive   stringList
	)
	fs.Var(&sensitive, "sensitive", "file whose contents are sensitive (repeatable)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *upstreamRaw == "" {
		return fmt.Errorf("-upstream is required")
	}
	upstream, err := url.Parse(*upstreamRaw)
	if err != nil {
		return fmt.Errorf("parse upstream: %w", err)
	}

	monitor, err := dlpmon.New(dlpmon.Config{Threshold: *threshold})
	if err != nil {
		return err
	}
	for _, path := range sensitive {
		data, err := os.ReadFile(path)
		if err != nil {
			return fmt.Errorf("read sensitive file: %w", err)
		}
		if err := monitor.AddSensitive(filepath.Base(path), string(data)); err != nil {
			return err
		}
	}

	cfg := proxy.Config{Upstream: upstream, Monitor: monitor}
	if *statePath != "" {
		mw, err := browserflow.New(browserflow.DefaultConfig())
		if err != nil {
			return err
		}
		if err := mw.Load(*statePath, *passphrase); err != nil {
			return fmt.Errorf("load state: %w", err)
		}
		cfg.Engine = mw.Engine()
		cfg.ServiceOf = func(u *url.URL) (string, bool) {
			return webapp.ServiceForPath(u.Path)
		}
	}

	p, err := proxy.New(cfg)
	if err != nil {
		return err
	}
	fmt.Printf("bfproxy: %s -> %s (%d sensitive documents)\n", *addr, upstream, monitor.CorpusSize())
	return http.ListenAndServe(*addr, p)
}
