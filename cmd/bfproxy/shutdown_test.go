package main

import (
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"
)

// freeAddr reserves an ephemeral port and releases it for the daemon.
func freeAddr(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	return addr
}

// The gateway bounds inspected bodies, forwards clean traffic, and drains
// gracefully on SIGTERM.
func TestGracefulShutdown(t *testing.T) {
	upstream := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
	}))
	defer upstream.Close()

	dir := t.TempDir()
	sensPath := filepath.Join(dir, "secrets.txt")
	if err := os.WriteFile(sensPath, []byte("the confidential acquisition negotiation summary for the board"), 0o600); err != nil {
		t.Fatal(err)
	}
	addr := freeAddr(t)
	base := "http://" + addr

	errCh := make(chan error, 1)
	go func() {
		errCh <- run([]string{
			"-upstream", upstream.URL,
			"-addr", addr,
			"-sensitive", sensPath,
			"-max-body", "256",
			"-shutdown-grace", "5s",
		})
	}()

	// Wait for the gateway to serve.
	deadline := time.Now().Add(5 * time.Second)
	var up bool
	for time.Now().Before(deadline) {
		resp, err := http.Get(base + "/ping")
		if err == nil {
			resp.Body.Close()
			up = true
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if !up {
		t.Fatal("gateway never came up")
	}

	// Clean traffic forwards.
	resp, err := http.Post(base+"/docs/x", "text/plain", strings.NewReader("a clean short note"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("clean post status=%d", resp.StatusCode)
	}

	// Past -max-body: rejected with 413 before inspection or forwarding.
	resp, err = http.Post(base+"/docs/x", "text/plain", strings.NewReader(strings.Repeat("x", 4096)))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Errorf("oversized post status=%d, want 413", resp.StatusCode)
	}

	// SIGTERM: the gateway drains and exits cleanly.
	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-errCh:
		if err != nil {
			t.Fatalf("run returned %v after SIGTERM, want clean shutdown", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("gateway did not shut down within the grace period")
	}
}
