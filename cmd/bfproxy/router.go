package main

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"github.com/lsds/browserflow/internal/fingerprint"
	"github.com/lsds/browserflow/internal/partition"
)

// routerConfig carries the flag values the routing-tier mode uses.
type routerConfig struct {
	ringFile       string
	addr           string
	device         string
	scatterTimeout time.Duration
	readTimeout    time.Duration
	writeTimeout   time.Duration
	grace          time.Duration
}

// runRouter serves the partition routing tier: a stateless front that
// speaks the node wire protocol to clients and scatter-gathers
// cross-partition disclosure queries over the ring's primary groups.
func runRouter(cfg routerConfig) error {
	ring, err := partition.LoadRingFile(cfg.ringFile)
	if err != nil {
		return err
	}
	logf := func(format string, args ...interface{}) {
		fmt.Fprintf(os.Stderr, "bfproxy: "+format+"\n", args...)
	}
	rt, err := partition.NewRouter(ring, partition.RouterOptions{
		Device:         cfg.device,
		FP:             fingerprint.DefaultConfig(),
		ScatterTimeout: cfg.scatterTimeout,
		Logf:           logf,
	})
	if err != nil {
		return err
	}

	ln, err := net.Listen("tcp", cfg.addr)
	if err != nil {
		return err
	}

	// Fold the partitions' logical clocks into the router's before
	// serving, so a restarted router stamps ahead of the cluster.
	primeCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	rt.Prime(primeCtx)
	cancel()

	srv := &http.Server{
		Handler:           partition.NewHandler(rt),
		ReadTimeout:       cfg.readTimeout,
		ReadHeaderTimeout: cfg.readTimeout,
		WriteTimeout:      cfg.writeTimeout,
		IdleTimeout:       2 * cfg.readTimeout,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errCh := make(chan error, 1)
	go func() { errCh <- srv.Serve(ln) }()

	fmt.Printf("bfproxy: routing tier on %s (ring v%d, %d partitions, clock %d)\n",
		ln.Addr(), ring.Version, len(ring.Partitions), rt.Clock())

	select {
	case err := <-errCh:
		return err
	case <-ctx.Done():
		stop()
		fmt.Fprintln(os.Stderr, "bfproxy: shutting down...")
		shCtx, cancel := context.WithTimeout(context.Background(), cfg.grace)
		defer cancel()
		return srv.Shutdown(shCtx)
	}
}
