package main

import (
	"os"
	"path/filepath"
	"testing"
)

func TestRunValidation(t *testing.T) {
	if err := run(nil); err == nil {
		t.Error("missing upstream accepted")
	}
	if err := run([]string{"-upstream", "http://x", "-badflag"}); err == nil {
		t.Error("bad flag accepted")
	}
	if err := run([]string{"-upstream", "http://x", "-sensitive", "/nonexistent"}); err == nil {
		t.Error("missing sensitive file accepted")
	}
	if err := run([]string{"-upstream", "http://x", "-state", "/nonexistent"}); err == nil {
		t.Error("missing state file accepted")
	}
	if err := run([]string{"-upstream", "http://x", "-threshold", "7"}); err == nil {
		t.Error("bad threshold accepted")
	}
}

func TestSensitiveFileLoading(t *testing.T) {
	// Use an unroutable addr so ListenAndServe fails fast after setup
	// succeeds — the error must be about listening, not configuration.
	dir := t.TempDir()
	sensPath := filepath.Join(dir, "secrets.txt")
	if err := os.WriteFile(sensPath, []byte("the secret plans for the quarter"), 0o600); err != nil {
		t.Fatal(err)
	}
	err := run([]string{"-upstream", "http://127.0.0.1:1", "-addr", "256.256.256.256:0", "-sensitive", sensPath})
	if err == nil {
		t.Fatal("expected listen error")
	}
}

func TestStringList(t *testing.T) {
	var s stringList
	if err := s.Set("a"); err != nil {
		t.Fatal(err)
	}
	if err := s.Set("b"); err != nil {
		t.Fatal(err)
	}
	if len(s) != 2 || s.String() == "" {
		t.Errorf("stringList=%v", s)
	}
}
