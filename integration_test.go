package browserflow

// Integration test: the public Middleware driving the full simulated stack
// (HTTP services, browser, plug-in), including a state save/restore cycle
// in the middle of the scenario — the deployment lifecycle an IT
// department would run.

import (
	"errors"
	"net/http/httptest"
	"path/filepath"
	"testing"

	"github.com/lsds/browserflow/internal/browser"
	"github.com/lsds/browserflow/internal/intercept"
	"github.com/lsds/browserflow/internal/webapp"
)

const playbook = "The incident response playbook mandates paging the on-call lead before any external communication is drafted or sent."

func TestIntegrationFullStackWithRestart(t *testing.T) {
	services := webapp.NewServer()
	services.SeedWikiPage("playbook", playbook)
	services.SeedDoc("external", "Notes shared with the vendor.")
	srv := httptest.NewServer(services)
	defer srv.Close()

	cfg := DefaultConfig()
	cfg.Mode = ModeEnforcing
	newDeployment := func(mw *Middleware) (*browser.Browser, *intercept.Plugin) {
		t.Helper()
		plugin, err := intercept.New(intercept.Config{Engine: mw.Engine(), User: "alice"})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(plugin.Shutdown)
		b := browser.New()
		plugin.AttachToBrowser(b)
		return b, plugin
	}

	// Phase 1: first session observes the wiki content.
	mw1, err := New(cfg, paperServices()...)
	if err != nil {
		t.Fatal(err)
	}
	b1, plugin1 := newDeployment(mw1)
	if _, err := b1.OpenTab(srv.URL + "/wiki/playbook"); err != nil {
		t.Fatal(err)
	}
	plugin1.Flush()
	if mw1.Stats().ParagraphSegments == 0 {
		t.Fatal("phase 1: nothing observed")
	}

	// Persist and "restart".
	statePath := filepath.Join(t.TempDir(), "state.enc")
	if err := mw1.Save(statePath, "deployment-key"); err != nil {
		t.Fatal(err)
	}
	mw2, err := New(cfg, paperServices()...)
	if err != nil {
		t.Fatal(err)
	}
	if err := mw2.Load(statePath, "deployment-key"); err != nil {
		t.Fatal(err)
	}

	// Phase 2: a fresh browser under the restored middleware still blocks
	// the paste into the external docs service.
	b2, plugin2 := newDeployment(mw2)
	wikiTab, err := b2.OpenTab(srv.URL + "/wiki/playbook")
	if err != nil {
		t.Fatal(err)
	}
	docsTab, err := b2.OpenTab(srv.URL + "/docs/external")
	if err != nil {
		t.Fatal(err)
	}
	plugin2.Flush()

	wikiTab.CopyText(wikiTab.Document().Root().ByID("par-0"))
	editor, err := webapp.AttachDocsEditor(docsTab)
	if err != nil {
		t.Fatal(err)
	}
	if err := editor.PasteAppend(); !errors.Is(err, browser.ErrBlocked) {
		t.Fatalf("paste after restart: err=%v, want ErrBlocked", err)
	}
	if got := services.Doc("external"); len(got) != 1 {
		t.Errorf("blocked paste reached backend: %v", got)
	}

	// The blocked paste still exists locally, so the plug-in tracked the
	// docs paragraph and it carries the wiki tag implicitly.
	plugin2.Flush()
	pastedSeg := SegmentID("docs:/docs/external#kix-1")
	label := mw2.Label(pastedSeg)
	if label == nil || !label.Implicit().Has("tw") {
		t.Fatalf("pasted paragraph label=%v, want implicit tw", label)
	}
	verdict, err := mw2.CheckUpload(pastedSeg, "docs")
	if err != nil {
		t.Fatal(err)
	}
	if verdict.Decision != DecisionBlock {
		t.Fatalf("CheckUpload=%v, want block", verdict.Decision)
	}

	// Per §3.1, the user declassifies the tag on the *destination*
	// segment, case by case, leaving an audit trail.
	if err := mw2.Suppress("alice", pastedSeg, "tw", "vendor under NDA"); err != nil {
		t.Fatal(err)
	}
	verdict, err = mw2.CheckUpload(pastedSeg, "docs")
	if err != nil {
		t.Fatal(err)
	}
	if verdict.Decision != DecisionAllow {
		t.Errorf("after suppression: %v (violating %v)", verdict.Decision, verdict.Violating)
	}
	entries := mw2.AuditEntries()
	if len(entries) == 0 || entries[len(entries)-1].User != "alice" {
		t.Errorf("audit=%+v", entries)
	}
}
