// Liveproxy drives the full simulated stack: the three HTTP cloud services,
// a multi-tab browser, and the BrowserFlow plug-in intercepting DOM
// mutations, form submissions and AJAX requests — the §5 implementation
// paths end to end.
//
// Run with:
//
//	go run ./examples/liveproxy
package main

import (
	"errors"
	"fmt"
	"log"
	"net/http/httptest"

	"github.com/lsds/browserflow/internal/audit"
	"github.com/lsds/browserflow/internal/browser"
	"github.com/lsds/browserflow/internal/disclosure"
	"github.com/lsds/browserflow/internal/intercept"
	"github.com/lsds/browserflow/internal/metrics"
	"github.com/lsds/browserflow/internal/policy"
	"github.com/lsds/browserflow/internal/tdm"
	"github.com/lsds/browserflow/internal/webapp"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// Backend services with seeded content.
	services := webapp.NewServer()
	services.SeedWikiPage("playbook",
		"The incident playbook requires paging the on-call lead before any public statement is drafted.",
		"Postmortems are internal documents and must not be shared with vendors.")
	services.SeedDoc("vendor-notes", "Notes shared with the vendor about the integration timeline.")
	srv := httptest.NewServer(services)
	defer srv.Close()

	// Policy: wiki text is tagged tw; docs is untrusted.
	tracker, err := disclosure.NewTracker(disclosure.DefaultParams())
	if err != nil {
		return err
	}
	registry := tdm.NewRegistry(audit.NewLog())
	for _, svc := range []struct {
		name   string
		lp, lc tdm.TagSet
	}{
		{name: webapp.ServiceWiki, lp: tdm.NewTagSet("tw"), lc: tdm.NewTagSet("tw")},
		{name: webapp.ServiceITool, lp: tdm.NewTagSet("ti"), lc: tdm.NewTagSet("ti")},
		{name: webapp.ServiceDocs, lp: tdm.NewTagSet(), lc: tdm.NewTagSet()},
	} {
		if err := registry.RegisterService(svc.name, svc.lp, svc.lc); err != nil {
			return err
		}
	}
	engine, err := policy.NewEngine(tracker, registry, policy.ModeEnforcing)
	if err != nil {
		return err
	}

	latency := metrics.NewRecorder()
	plugin, err := intercept.New(intercept.Config{
		Engine:  engine,
		User:    "oncall",
		Latency: latency,
		OnEvent: func(e intercept.Event) {
			if e.Verdict.Violation() {
				fmt.Printf("  plugin[%s] %s: %s %v\n", e.Kind, e.Service, e.Verdict.Decision, e.Verdict.Violating)
			}
		},
	})
	if err != nil {
		return err
	}
	defer plugin.Shutdown()

	b := browser.New()
	plugin.AttachToBrowser(b)

	fmt.Println("opening wiki and docs tabs...")
	wikiTab, err := b.OpenTab(srv.URL + "/wiki/playbook")
	if err != nil {
		return err
	}
	docsTab, err := b.OpenTab(srv.URL + "/docs/vendor-notes")
	if err != nil {
		return err
	}
	plugin.Flush()

	// 1. Pasting the playbook into the vendor doc is blocked at the XHR.
	fmt.Println("\n1. paste wiki playbook into the vendor doc (AJAX path):")
	wikiTab.CopyText(wikiTab.Document().Root().ByID("par-0"))
	editor, err := webapp.AttachDocsEditor(docsTab)
	if err != nil {
		return err
	}
	if err := editor.PasteAppend(); errors.Is(err, browser.ErrBlocked) {
		fmt.Println("  upload blocked before leaving the browser ✔")
	} else if err != nil {
		return err
	}
	fmt.Printf("  vendor doc on the server still has %d paragraph(s)\n", len(services.Doc("vendor-notes")))

	// 2. Typing fresh text is fine.
	fmt.Println("\n2. type fresh text into the vendor doc:")
	if err := editor.AppendParagraph("Integration timeline: API keys next week, sandbox the week after."); err != nil {
		return err
	}
	fmt.Printf("  vendor doc now has %d paragraphs ✔\n", len(services.Doc("vendor-notes")))

	// 3. Submitting wiki text through the wiki's own form is fine.
	fmt.Println("\n3. add a paragraph to the wiki through its form (form path):")
	form := wikiTab.Document().Root().ByID("edit")
	if err := wikiTab.SubmitForm(form, map[string]string{"content": "Remember to rotate the pager schedule each Monday."}); err != nil {
		return err
	}
	fmt.Printf("  wiki page now has %d paragraphs ✔\n", len(services.WikiPage("playbook")))

	plugin.Flush()
	fmt.Printf("\ndisclosure decisions: %s\n", latency.Summarize())
	return nil
}
