// Interview walks through the paper's §2 scenario and the Figures 3–5 TDM
// flows: an Interview Tool and an internal Wiki that must stay separate, an
// untrusted Google-Docs-like service, tag suppression with an audit trail,
// and user-allocated custom tags.
//
// Run with:
//
//	go run ./examples/interview
package main

import (
	"fmt"
	"log"

	"github.com/lsds/browserflow"
)

const (
	evaluation = "Candidate showed deep understanding of replication protocols " +
		"and reasoned clearly about failure detectors during the systems interview."
	guidelines = "Interviewers must file their written evaluation before discussing " +
		"the candidate with anyone, and never reuse questions from this bank."
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	cfg := browserflow.DefaultConfig()
	cfg.Mode = browserflow.ModeEnforcing
	mw, err := browserflow.New(cfg,
		browserflow.Service{Name: "itool", Privilege: []browserflow.Tag{"ti"}, Confidentiality: []browserflow.Tag{"ti"}},
		browserflow.Service{Name: "wiki", Privilege: []browserflow.Tag{"tw"}, Confidentiality: []browserflow.Tag{"tw"}},
		browserflow.Service{Name: "docs"},
	)
	if err != nil {
		return err
	}

	// --- Figure 3: default tags block cross-service flows -------------
	fmt.Println("== Figure 3: default tag assignment ==")
	if _, err := mw.ObserveParagraph("itool", "itool/eval#p0", evaluation); err != nil {
		return err
	}
	verdict, err := mw.CheckUpload("itool/eval#p0", "wiki")
	if err != nil {
		return err
	}
	fmt.Printf("copy evaluation itool -> wiki: %s (violating %v)\n", verdict.Decision, verdict.Violating)

	// Public text from docs flows anywhere.
	if _, err := mw.ObserveParagraph("docs", "docs/pub#p0", "A public blog announcement about our new office opening."); err != nil {
		return err
	}
	verdict, err = mw.CheckUpload("docs/pub#p0", "wiki")
	if err != nil {
		return err
	}
	fmt.Printf("copy public text docs -> wiki: %s\n", verdict.Decision)

	// --- Figure 4: suppression declassifies, with accountability -------
	fmt.Println("\n== Figure 4: tag suppression ==")
	if _, err := mw.ObserveParagraph("wiki", "wiki/eval-copy#p0", evaluation); err != nil {
		return err
	}
	verdict, err = mw.CheckUpload("wiki/eval-copy#p0", "wiki")
	if err != nil {
		return err
	}
	fmt.Printf("evaluation copied into wiki page: %s (implicit tags %v)\n", verdict.Decision, verdict.Violating)
	if err := mw.Suppress("alice", "wiki/eval-copy#p0", "ti", "candidate consented to sharing"); err != nil {
		return err
	}
	verdict, err = mw.CheckUpload("wiki/eval-copy#p0", "wiki")
	if err != nil {
		return err
	}
	fmt.Printf("after alice suppresses ti: %s\n", verdict.Decision)

	// --- Figure 5: custom tags restrict further ------------------------
	fmt.Println("\n== Figure 5: custom tags ==")
	if _, err := mw.ObserveParagraph("wiki", "wiki/secret#p0", guidelines); err != nil {
		return err
	}
	if err := mw.AllocateTag("bob", "question-bank"); err != nil {
		return err
	}
	if err := mw.AddTagToSegment("bob", "wiki/secret#p0", "question-bank"); err != nil {
		return err
	}
	verdict, err = mw.CheckUpload("wiki/secret#p0", "wiki")
	if err != nil {
		return err
	}
	fmt.Printf("segment stays usable in the wiki (auto-granted): %s\n", verdict.Decision)
	verdict, err = mw.CheckText(guidelines, "docs")
	if err != nil {
		return err
	}
	fmt.Printf("pasting guidelines into docs: %s (violating %v)\n", verdict.Decision, verdict.Violating)

	// --- the audit trail ------------------------------------------------
	fmt.Println("\n== Audit trail ==")
	for _, e := range mw.AuditEntries() {
		fmt.Printf("%d. %s by %s tag=%s seg=%s %q\n", e.Seq, e.Action, e.User, e.Tag, e.Segment, e.Justification)
	}
	return nil
}
