// Nativeapp demonstrates the §4.4 extension path for traffic that never
// touches the browser: a "native application" (plain http.Client) posts
// text through the BrowserFlow gateway (internal/proxy), which combines
// the network DLP monitor with the TDM policy engine.
//
// Run with:
//
//	go run ./examples/nativeapp
package main

import (
	"fmt"
	"io"
	"log"
	"net/http"
	"net/http/httptest"
	"net/url"

	"github.com/lsds/browserflow"
	"github.com/lsds/browserflow/internal/dlpmon"
	"github.com/lsds/browserflow/internal/proxy"
	"github.com/lsds/browserflow/internal/webapp"
)

const roadmap = "The combined product roadmap retires the legacy storage line " +
	"and moves every customer to the new platform within twelve months."

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// Upstream: the simulated cloud services.
	services := webapp.NewServer()
	services.SeedWikiPage("roadmap", roadmap)
	upstream := httptest.NewServer(services)
	defer upstream.Close()
	upstreamURL, err := url.Parse(upstream.URL)
	if err != nil {
		return err
	}

	// BrowserFlow policy: the roadmap was observed in the wiki. The
	// gateway enforces, so run the engine in enforcing mode.
	cfg := browserflow.DefaultConfig()
	cfg.Mode = browserflow.ModeEnforcing
	mw, err := browserflow.New(cfg,
		browserflow.Service{Name: "wiki", Privilege: []browserflow.Tag{"tw"}, Confidentiality: []browserflow.Tag{"tw"}},
		browserflow.Service{Name: "docs"},
	)
	if err != nil {
		return err
	}
	if _, err := mw.ObserveParagraph("wiki", "wiki/roadmap#p0", roadmap); err != nil {
		return err
	}

	// Gateway A: classic network DLP — corpus matching only. It has no
	// notion of destinations, so it blocks the roadmap even when posted
	// back to its own wiki.
	monitor, err := dlpmon.New(dlpmon.Config{})
	if err != nil {
		return err
	}
	if err := monitor.AddSensitive("roadmap", roadmap); err != nil {
		return err
	}
	dlpGW, err := proxy.New(proxy.Config{Upstream: upstreamURL, Monitor: monitor})
	if err != nil {
		return err
	}
	dlpFront := httptest.NewServer(dlpGW)
	defer dlpFront.Close()

	// Gateway B: BrowserFlow's TDM policy — label-aware, so the same text
	// is allowed back into the wiki but blocked towards docs.
	policyGW, err := proxy.New(proxy.Config{
		Upstream: upstreamURL,
		Engine:   mw.Engine(),
		ServiceOf: func(u *url.URL) (string, bool) {
			return webapp.ServiceForPath(u.Path)
		},
	})
	if err != nil {
		return err
	}
	policyFront := httptest.NewServer(policyGW)
	defer policyFront.Close()

	// The "native app" — e.g. a desktop sync client — posts through a
	// gateway.
	post := func(front, path, content string) {
		resp, err := http.PostForm(front+path, url.Values{"content": {content}})
		if err != nil {
			log.Fatal(err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		fmt.Printf("  POST %-14s -> %d %s\n", path, resp.StatusCode, firstLine(string(body)))
	}

	fmt.Println("through the network-DLP gateway (no destination awareness):")
	post(dlpFront.URL, "/wiki/roadmap", roadmap) // blocked — even its own service!
	post(dlpFront.URL, "/docs/extern", roadmap)  // blocked

	fmt.Println("\nthrough the TDM policy gateway (label-aware):")
	post(policyFront.URL, "/wiki/roadmap", roadmap)                      // allowed: own service
	post(policyFront.URL, "/docs/extern", roadmap)                       // blocked: untrusted destination
	post(policyFront.URL, "/wiki/roadmap", "a harmless status update..") // allowed: clean text

	d, p := dlpGW.Stats(), policyGW.Stats()
	fmt.Printf("\nstats: dlp forwarded=%d blocked=%d | policy forwarded=%d blocked=%d\n",
		d.Forwarded, d.Blocked, p.Forwarded, p.Blocked)
	return nil
}

func firstLine(s string) string {
	for i, c := range s {
		if c == '\n' {
			return s[:i]
		}
	}
	if len(s) > 60 {
		return s[:60] + "..."
	}
	return s
}
