// Enterprise demonstrates the shared tag-service deployment: two
// employees' devices run the BrowserFlow plug-in against one central tag
// service (cmd/bftagd in production), so text observed on Alice's laptop
// is recognised — and blocked — when Bob pastes it on his.
//
// Only winnowed fingerprint hashes cross the wire; the text itself never
// leaves either device.
//
// Run with:
//
//	go run ./examples/enterprise
package main

import (
	"errors"
	"fmt"
	"log"
	"net/http/httptest"

	"github.com/lsds/browserflow"
	"github.com/lsds/browserflow/internal/browser"
	"github.com/lsds/browserflow/internal/fingerprint"
	"github.com/lsds/browserflow/internal/intercept"
	"github.com/lsds/browserflow/internal/policy"
	"github.com/lsds/browserflow/internal/tagserver"
	"github.com/lsds/browserflow/internal/webapp"
)

const schedule = "Cutover weekend: payments move Saturday 02:00, identity Sunday 03:00, " +
	"rollback owners are listed per team in the internal runbook only."

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// The central tag service (what bftagd serves in production).
	cfg := browserflow.DefaultConfig()
	cfg.Mode = browserflow.ModeEnforcing
	mw, err := browserflow.New(cfg,
		browserflow.Service{Name: "wiki", Privilege: []browserflow.Tag{"tw"}, Confidentiality: []browserflow.Tag{"tw"}},
		browserflow.Service{Name: "itool", Privilege: []browserflow.Tag{"ti"}, Confidentiality: []browserflow.Tag{"ti"}},
		browserflow.Service{Name: "docs"},
		browserflow.Service{Name: "notes"},
	)
	if err != nil {
		return err
	}
	tagService, err := tagserver.NewServer(mw.Engine())
	if err != nil {
		return err
	}
	tagSrv := httptest.NewServer(tagService)
	defer tagSrv.Close()
	fmt.Println("tag service up (hashes-only wire)")

	// Shared cloud services.
	apps := webapp.NewServer()
	apps.SeedWikiPage("cutover", schedule)
	apps.SeedDoc("vendor-notes", "Vendor integration notes.")
	appSrv := httptest.NewServer(apps)
	defer appSrv.Close()

	newDevice := func(name string) (*browser.Browser, *intercept.Plugin, error) {
		client, err := tagserver.NewClient(tagSrv.URL, name, fingerprint.DefaultConfig())
		if err != nil {
			return nil, nil, err
		}
		plugin, err := intercept.New(intercept.Config{
			Engine: tagserver.NewRemoteEngine(client, policy.ModeEnforcing),
			User:   name,
		})
		if err != nil {
			return nil, nil, err
		}
		b := browser.New()
		plugin.AttachToBrowser(b)
		return b, plugin, nil
	}

	// Alice reads the cutover plan on her laptop.
	aliceBrowser, alicePlugin, err := newDevice("alice-laptop")
	if err != nil {
		return err
	}
	defer alicePlugin.Shutdown()
	aliceTab, err := aliceBrowser.OpenTab(appSrv.URL + "/wiki/cutover")
	if err != nil {
		return err
	}
	alicePlugin.Flush()
	fmt.Println("alice-laptop: wiki page observed, labels registered centrally")

	// Bob — different device, never opened the wiki — pastes the plan
	// (received over chat, say) into the vendor-facing doc.
	bobBrowser, bobPlugin, err := newDevice("bob-laptop")
	if err != nil {
		return err
	}
	defer bobPlugin.Shutdown()
	docsTab, err := bobBrowser.OpenTab(appSrv.URL + "/docs/vendor-notes")
	if err != nil {
		return err
	}
	bobPlugin.Flush()
	ed, err := webapp.AttachDocsEditor(docsTab)
	if err != nil {
		return err
	}
	bobBrowser.SetClipboard(aliceTab.Document().Root().ByID("par-0").InnerText())
	if err := ed.PasteAppend(); errors.Is(err, browser.ErrBlocked) {
		fmt.Println("bob-laptop: paste into vendor doc BLOCKED by the shared policy ✔")
	} else if err != nil {
		return err
	} else {
		fmt.Println("bob-laptop: paste went through (unexpected)")
	}
	fmt.Printf("vendor doc on the server still has %d paragraph(s)\n", len(apps.Doc("vendor-notes")))

	stats := mw.Stats()
	fmt.Printf("central state: %d segments, %d distinct hashes, %d audit entries\n",
		stats.ParagraphSegments, stats.DistinctHashes, stats.AuditEntries)
	return nil
}
