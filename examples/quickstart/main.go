// Quickstart: fingerprint-based disclosure detection in five minutes.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"github.com/lsds/browserflow"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// Two services: an internal wiki whose text is tagged "tw", and an
	// external docs service trusted with nothing.
	mw, err := browserflow.New(browserflow.DefaultConfig(),
		browserflow.Service{
			Name:            "wiki",
			Privilege:       []browserflow.Tag{"tw"},
			Confidentiality: []browserflow.Tag{"tw"},
		},
		browserflow.Service{Name: "docs"},
	)
	if err != nil {
		return err
	}

	secret := "The migration plan moves every internal workload to the Dublin " +
		"region by March, decommissioning both on-premise data centres."

	// Text created in the wiki gets the wiki's confidentiality label.
	if _, err := mw.ObserveParagraph("wiki", "wiki/plan#p0", secret); err != nil {
		return err
	}
	fmt.Println("observed secret paragraph in the wiki; label:", mw.Label("wiki/plan#p0"))

	// The user pastes the text into a docs form: BrowserFlow flags it.
	verdict, err := mw.CheckText(secret, "docs")
	if err != nil {
		return err
	}
	fmt.Printf("pasting verbatim into docs: decision=%s violating=%v\n", verdict.Decision, verdict.Violating)

	// A lightly edited copy is still caught...
	edited := "The migration plan moves every internal workload to the Dublin " +
		"region by June, decommissioning both on-premise data centres."
	verdict, err = mw.CheckText(edited, "docs")
	if err != nil {
		return err
	}
	fmt.Printf("pasting an edited copy:     decision=%s (disclosure %.0f%%)\n",
		verdict.Decision, verdict.Sources[0].Disclosure*100)

	// ...but a full rewrite is not: the text no longer discloses anything.
	rewritten := "All company workloads will relocate abroad next spring, and " +
		"the old machine rooms will close afterwards."
	verdict, err = mw.CheckText(rewritten, "docs")
	if err != nil {
		return err
	}
	fmt.Printf("pasting a full rewrite:     decision=%s\n", verdict.Decision)

	// Pairwise similarity is available directly.
	d, err := mw.Similarity(secret, edited)
	if err != nil {
		return err
	}
	fmt.Printf("similarity(secret, edited) = %.2f\n", d)
	return nil
}
