// Revisions tracks disclosure across an evolving document corpus — the
// Figures 9/10 experiments in miniature. A base document is observed, then
// successive revisions (light edits, sentence churn, full rewrites) are
// checked against it, showing disclosure decaying as similarity fades.
//
// Run with:
//
//	go run ./examples/revisions
package main

import (
	"fmt"
	"log"
	"strings"

	"github.com/lsds/browserflow"
	"github.com/lsds/browserflow/internal/dataset"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	mw, err := browserflow.New(browserflow.DefaultConfig(),
		browserflow.Service{Name: "wiki", Privilege: []browserflow.Tag{"tw"}, Confidentiality: []browserflow.Tag{"tw"}},
		browserflow.Service{Name: "docs"},
	)
	if err != nil {
		return err
	}

	// A small revision chain from the synthetic corpus generator: one
	// volatile article, 40 revisions.
	cfg := dataset.DefaultRevisionCorpusConfig()
	cfg.Revisions = 40
	cfg.Paragraphs = 8
	articles := dataset.GenerateRevisionCorpus(cfg)
	article := articles[len(articles)-1] // a volatile one
	fmt.Printf("article %q: %d revisions, volatility %.2f\n",
		article.Title, len(article.Revisions), article.Volatility)

	// Observe the base revision's paragraphs in the wiki.
	for i, p := range article.Base() {
		seg := browserflow.SegmentID(fmt.Sprintf("wiki/article#p%d", i))
		if _, err := mw.ObserveParagraph("wiki", seg, p); err != nil {
			return err
		}
	}

	// Walk the revision history: how many base paragraphs does each
	// revision still disclose, and would uploading it to docs be flagged?
	fmt.Println("\nrev  disclosing-base-paragraphs  docs-upload")
	for r := 0; r < len(article.Revisions); r += 8 {
		revText := strings.Join(article.Revisions[r], "\n\n")
		sources, err := mw.Sources(revText)
		if err != nil {
			return err
		}
		verdict, err := mw.CheckText(revText, "docs")
		if err != nil {
			return err
		}
		fmt.Printf("%3d  %26d  %s\n", r, len(sources), verdict.Decision)
	}

	// The last revision of a volatile article has drifted: individual
	// fresh paragraphs are safe to publish even though early ones were
	// not.
	last := article.Latest()
	fresh := 0
	for _, p := range last {
		verdict, err := mw.CheckText(p, "docs")
		if err != nil {
			return err
		}
		if verdict.Decision == browserflow.DecisionAllow {
			fresh++
		}
	}
	fmt.Printf("\nlatest revision: %d/%d paragraphs publishable to docs\n", fresh, len(last))
	return nil
}
