package browserflow

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// guide is long enough for the paper's default 15/30 winnowing parameters.
var guide = strings.Repeat("The interviewing guidelines require two independent interviewers for every candidate evaluation session without exception. ", 3)

func paperServices() []Service {
	return []Service{
		{Name: "itool", Privilege: []Tag{"ti"}, Confidentiality: []Tag{"ti"}},
		{Name: "wiki", Privilege: []Tag{"tw"}, Confidentiality: []Tag{"tw"}},
		{Name: "docs"},
	}
}

func newMW(t *testing.T, mode Mode) *Middleware {
	t.Helper()
	cfg := DefaultConfig()
	cfg.Mode = mode
	mw, err := New(cfg, paperServices()...)
	if err != nil {
		t.Fatal(err)
	}
	return mw
}

func TestNewValidation(t *testing.T) {
	bad := DefaultConfig()
	bad.NGram = 0
	if _, err := New(bad); err == nil {
		t.Error("invalid config accepted")
	}
	dup := paperServices()
	dup = append(dup, dup[0])
	if _, err := New(DefaultConfig(), dup...); err == nil {
		t.Error("duplicate service accepted")
	}
}

func TestEndToEndPasteFlow(t *testing.T) {
	mw := newMW(t, ModeAdvisory)
	v, err := mw.ObserveParagraph("wiki", "wiki/guide#p0", guide)
	if err != nil {
		t.Fatal(err)
	}
	if v.Decision != DecisionAllow {
		t.Fatalf("own-service edit: %v", v.Decision)
	}
	v, err = mw.ObserveParagraph("docs", "docs/new#p0", guide)
	if err != nil {
		t.Fatal(err)
	}
	if v.Decision != DecisionWarn {
		t.Fatalf("paste into docs: decision=%v, want warn", v.Decision)
	}
	if len(v.Sources) == 0 || v.Sources[0].Seg != "wiki/guide#p0" {
		t.Errorf("sources=%v", v.Sources)
	}
	if len(v.Violating) != 1 || v.Violating[0] != "tw" {
		t.Errorf("violating=%v", v.Violating)
	}
}

func TestCheckTextAndUpload(t *testing.T) {
	mw := newMW(t, ModeEnforcing)
	if _, err := mw.ObserveParagraph("wiki", "wiki/guide#p0", guide); err != nil {
		t.Fatal(err)
	}
	v, err := mw.CheckText(guide, "docs")
	if err != nil {
		t.Fatal(err)
	}
	if v.Decision != DecisionBlock {
		t.Errorf("CheckText decision=%v, want block", v.Decision)
	}
	v, err = mw.CheckUpload("wiki/guide#p0", "wiki")
	if err != nil {
		t.Fatal(err)
	}
	if v.Decision != DecisionAllow {
		t.Errorf("upload to own service: %v", v.Decision)
	}
}

func TestSuppressionAndAudit(t *testing.T) {
	mw := newMW(t, ModeEnforcing)
	if _, err := mw.ObserveParagraph("wiki", "wiki/guide#p0", guide); err != nil {
		t.Fatal(err)
	}
	if _, err := mw.ObserveParagraph("docs", "docs/new#p0", guide); err != nil {
		t.Fatal(err)
	}
	if err := mw.Suppress("alice", "docs/new#p0", "tw", "legal approved"); err != nil {
		t.Fatal(err)
	}
	v, err := mw.CheckUpload("docs/new#p0", "docs")
	if err != nil {
		t.Fatal(err)
	}
	if v.Decision != DecisionAllow {
		t.Errorf("after suppression: %v", v.Decision)
	}
	entries := mw.AuditEntries()
	if len(entries) != 1 || entries[0].User != "alice" {
		t.Errorf("audit=%+v", entries)
	}
	// Label retains the suppressed tag.
	label := mw.Label("docs/new#p0")
	if label == nil || !label.Suppressed().Has("tw") {
		t.Errorf("label=%v", label)
	}
}

func TestCustomTagLifecycle(t *testing.T) {
	mw := newMW(t, ModeEnforcing)
	if _, err := mw.ObserveParagraph("wiki", "wiki/secret#p0", guide); err != nil {
		t.Fatal(err)
	}
	if err := mw.AllocateTag("alice", "tn"); err != nil {
		t.Fatal(err)
	}
	if err := mw.AddTagToSegment("alice", "wiki/secret#p0", "tn"); err != nil {
		t.Fatal(err)
	}
	// The wiki stores the segment, so tn was auto-granted there.
	if v, _ := mw.CheckUpload("wiki/secret#p0", "wiki"); v.Decision != DecisionAllow {
		t.Errorf("own service after custom tag: %v", v.Decision)
	}
	if err := mw.GrantTag("alice", "itool", "tn"); err != nil {
		t.Fatal(err)
	}
	if err := mw.RevokeTag("alice", "itool", "tn"); err != nil {
		t.Fatal(err)
	}
	if err := mw.GrantTag("bob", "itool", "tn"); err == nil {
		t.Error("non-owner grant accepted")
	}
}

func TestSimilarityAndSources(t *testing.T) {
	mw := newMW(t, ModeAdvisory)
	d, err := mw.Similarity(guide, guide)
	if err != nil {
		t.Fatal(err)
	}
	if d != 1.0 {
		t.Errorf("self similarity=%v", d)
	}
	if _, err := mw.ObserveParagraph("wiki", "wiki/guide#p0", guide); err != nil {
		t.Fatal(err)
	}
	sources, err := mw.Sources(guide)
	if err != nil {
		t.Fatal(err)
	}
	if len(sources) != 1 || sources[0].Seg != "wiki/guide#p0" {
		t.Errorf("sources=%v", sources)
	}
}

func TestNewFromPolicyFile(t *testing.T) {
	policyJSON := `{
  "services": [
    {"name": "wiki", "privilege": ["tw"], "confidentiality": ["tw"]},
    {"name": "docs"}
  ],
  "mode": "enforcing",
  "secrets": [{"name": "db", "value": "hunter22-prod"}]
}`
	path := filepath.Join(t.TempDir(), "policy.json")
	if err := writeFile(path, policyJSON); err != nil {
		t.Fatal(err)
	}
	mw, err := NewFromPolicyFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if mw.Config().Mode != ModeEnforcing {
		t.Errorf("mode=%v", mw.Config().Mode)
	}
	if _, err := mw.ObserveParagraph("wiki", "wiki/x#p0", guide); err != nil {
		t.Fatal(err)
	}
	v, err := mw.CheckText(guide, "docs")
	if err != nil {
		t.Fatal(err)
	}
	if v.Decision != DecisionBlock {
		t.Errorf("decision=%v", v.Decision)
	}
	// Secrets registered.
	if got := mw.ScanSecrets("use hunter22-prod tonight"); len(got) != 1 || got[0].Name != "db" {
		t.Errorf("secrets=%v", got)
	}
	if mw.SecretStore() == nil {
		t.Error("no secret store")
	}
	// Bad file.
	if _, err := NewFromPolicyFile(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Error("missing policy file accepted")
	}
}

func TestRegisterSecretValidation(t *testing.T) {
	mw := newMW(t, ModeAdvisory)
	if err := mw.RegisterSecret("tiny", "ab"); err == nil {
		t.Error("short secret accepted")
	}
	if err := mw.RegisterSecret("ok", "long-enough"); err != nil {
		t.Fatal(err)
	}
	if got := mw.ScanSecrets("nothing here"); got != nil {
		t.Errorf("scan=%v", got)
	}
}

func writeFile(path, content string) error {
	return os.WriteFile(path, []byte(content), 0o600)
}

func TestPerSegmentThresholds(t *testing.T) {
	// A non-repeating source: repetition would make partial copies carry
	// the full fingerprint.
	source := "Quarterly revenue grew twelve percent while infrastructure spending fell by a third. " +
		"The board approved expanding the Dublin office and hiring forty engineers. " +
		"Two competitor acquisitions remain under review by outside counsel this quarter."
	mw := newMW(t, ModeEnforcing)
	if _, err := mw.ObserveParagraph("wiki", "wiki/report#p0", source); err != nil {
		t.Fatal(err)
	}
	// Raise the source's threshold to 0.95: a half copy passes.
	mw.SetParagraphThreshold("wiki/report#p0", 0.95)
	v, err := mw.CheckText(source[:len(source)/2], "docs")
	if err != nil {
		t.Fatal(err)
	}
	if v.Decision != DecisionAllow {
		t.Errorf("half copy at threshold 0.95: %v", v.Decision)
	}
	// Drop it to 0: even a short excerpt is flagged.
	mw.SetParagraphThreshold("wiki/report#p0", 0)
	v, err = mw.CheckText(source[:len(source)/3], "docs")
	if err != nil {
		t.Fatal(err)
	}
	if v.Decision != DecisionBlock {
		t.Errorf("excerpt at threshold 0: %v", v.Decision)
	}
}

func TestAttribute(t *testing.T) {
	mw := newMW(t, ModeAdvisory)
	if _, err := mw.ObserveParagraph("wiki", "wiki/guide#p0", guide); err != nil {
		t.Fatal(err)
	}
	observed := "my own intro sentence first, then the paste: " + guide
	spans, err := mw.Attribute(observed, "wiki/guide#p0")
	if err != nil {
		t.Fatal(err)
	}
	if len(spans) == 0 {
		t.Fatal("no spans attributed")
	}
	for _, s := range spans {
		if s.Start < 0 || s.End > len(observed) || s.Start >= s.End {
			t.Errorf("bad span %+v", s)
		}
	}
}

func TestForget(t *testing.T) {
	mw := newMW(t, ModeAdvisory)
	if _, err := mw.ObserveParagraph("wiki", "wiki/guide#p0", guide); err != nil {
		t.Fatal(err)
	}
	mw.Forget("wiki/guide#p0")
	sources, err := mw.Sources(guide)
	if err != nil {
		t.Fatal(err)
	}
	if len(sources) != 0 {
		t.Errorf("sources after Forget=%v", sources)
	}
}

func TestStats(t *testing.T) {
	mw := newMW(t, ModeAdvisory)
	if _, err := mw.ObserveParagraph("wiki", "wiki/guide#p0", guide); err != nil {
		t.Fatal(err)
	}
	if _, err := mw.ObserveDocument("wiki", "wiki/guide", guide); err != nil {
		t.Fatal(err)
	}
	s := mw.Stats()
	if s.ParagraphSegments != 1 || s.DocumentSegments != 1 || s.DistinctHashes == 0 {
		t.Errorf("stats=%+v", s)
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	mw := newMW(t, ModeAdvisory)
	if _, err := mw.ObserveParagraph("wiki", "wiki/guide#p0", guide); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "state.enc")
	if err := mw.Save(path, "passphrase"); err != nil {
		t.Fatal(err)
	}
	mw2 := newMW(t, ModeAdvisory)
	if err := mw2.Load(path, "passphrase"); err != nil {
		t.Fatal(err)
	}
	sources, err := mw2.Sources(guide)
	if err != nil {
		t.Fatal(err)
	}
	if len(sources) != 1 {
		t.Errorf("restored sources=%v", sources)
	}
	if err := mw2.Load(path, "wrong"); err == nil {
		t.Error("wrong passphrase accepted")
	}
}

func TestRegisterServiceAfterNew(t *testing.T) {
	mw := newMW(t, ModeAdvisory)
	if err := mw.RegisterService(Service{Name: "evernote"}); err != nil {
		t.Fatal(err)
	}
	if err := mw.RegisterService(Service{Name: "wiki"}); err == nil {
		t.Error("duplicate registration accepted")
	}
	if _, err := mw.CheckText("anything at all", "evernote"); err != nil {
		t.Errorf("new service unusable: %v", err)
	}
}

func TestOverride(t *testing.T) {
	mw := newMW(t, ModeEnforcing)
	v := mw.Override("alice", "docs/x#p0", "docs", "approved")
	if v.Decision != DecisionAllow {
		t.Errorf("override=%v", v.Decision)
	}
	if len(mw.AuditEntries()) != 1 {
		t.Error("override not audited")
	}
}

func TestErrorsPropagate(t *testing.T) {
	mw := newMW(t, ModeAdvisory)
	if _, err := mw.ObserveParagraph("ghost", "x#p0", "text"); err == nil {
		t.Error("unknown service accepted")
	}
	if _, err := mw.CheckText("text", "ghost"); err == nil {
		t.Error("unknown service accepted in CheckText")
	}
	var pathErr error = errors.New("x")
	_ = pathErr
	if err := mw.Load(filepath.Join(t.TempDir(), "missing"), ""); err == nil {
		t.Error("missing snapshot accepted")
	}
}
