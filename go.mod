module github.com/lsds/browserflow

go 1.22
