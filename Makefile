# BrowserFlow build targets. Stdlib-only Go; no external tooling required.

GO ?= go

.PHONY: all build vet test race check cover bench benchall experiments clean

all: build check

# check is the gate: static analysis plus the full suite under the race
# detector. The resilience and failover layers are concurrency-heavy, so
# -race runs by default, not as an opt-in.
check: vet
	$(GO) test -race ./...

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

cover:
	$(GO) test -cover ./...

# bench runs the Algorithm 1 hot-path benchmarks (single-threaded allocs,
# goroutine-scaling series vs the single-lock ablation and the seed
# reference, batched flush) and records the comparison as BENCH_2.json.
bench:
	$(GO) test -run 'XXX' -bench 'Observe' -benchmem ./internal/disclosure
	$(GO) run ./cmd/bfbench -experiment hotpath -benchjson BENCH_2.json

# benchall runs every benchmark in the repository.
benchall:
	$(GO) test -bench=. -benchmem ./...

# Regenerate every table and figure of the paper's evaluation.
experiments:
	$(GO) run ./cmd/bfbench -experiment all

# Record the outputs the repro instructions ask for.
outputs:
	$(GO) test ./... 2>&1 | tee test_output.txt
	$(GO) test -bench=. -benchmem ./... 2>&1 | tee bench_output.txt

clean:
	$(GO) clean ./...
	rm -f test_output.txt bench_output.txt
