# BrowserFlow build targets. Stdlib-only Go; no external tooling required.

GO ?= go

.PHONY: all build vet test race cover bench experiments clean

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

cover:
	$(GO) test -cover ./...

bench:
	$(GO) test -bench=. -benchmem ./...

# Regenerate every table and figure of the paper's evaluation.
experiments:
	$(GO) run ./cmd/bfbench -experiment all

# Record the outputs the repro instructions ask for.
outputs:
	$(GO) test ./... 2>&1 | tee test_output.txt
	$(GO) test -bench=. -benchmem ./... 2>&1 | tee bench_output.txt

clean:
	$(GO) clean ./...
	rm -f test_output.txt bench_output.txt
