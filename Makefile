# BrowserFlow build targets. Stdlib-only Go; no external tooling required.

GO ?= go

.PHONY: all build vet test race check crash repl part fuzz obs overload scrub policy vuln cover bench repl-bench obs-bench load-bench scrub-bench part-bench corpus corpus-bench benchall experiments clean

all: build check

# check is the gate: static analysis, the full suite under the race
# detector (which includes the crash/corruption-injection recovery
# property suite in internal/store), the replication partition/promotion
# suite, the overload/admission chaos suite, a short fuzz smoke over the
# two recovery parsers that read attacker-controlled bytes after a crash,
# and a vulnerability scan when govulncheck is installed.
check: vet
	$(GO) test -race ./...
	$(MAKE) crash
	$(MAKE) repl
	$(MAKE) part
	$(MAKE) obs
	$(MAKE) overload
	$(MAKE) scrub
	$(MAKE) policy
	$(MAKE) fuzz
	$(MAKE) corpus
	$(MAKE) vuln

# crash runs only the durability crash-injection suites, race-enabled.
crash:
	$(GO) test -race -run 'Crash|Recovery|Torn|Corrupt' ./internal/store ./internal/wal ./cmd/bftagd

# repl runs the replication suites race-enabled: partitions, chaos
# streams, re-bootstrap, fenced promotion, the end-to-end
# primary + 2 replica subprocess run, and the operator CLI flow.
repl:
	$(GO) test -race -run 'Replica|Partition|Chaos|Promot|Stream|Replication|Idempotent|Cluster|NotPrimary' ./internal/replication ./internal/tagserver ./cmd/bftagd ./cmd/bfctl

# part runs the partitioned-cluster suites race-enabled: the ring codec
# and split arithmetic, the golden byte-equivalence suite (2- and
# 3-partition verdicts identical to a single node), the router/merge
# unit suites, and the 3-partition × 2-replica subprocess chaos run
# (primary kill -9 + fenced promotion, mid-split kill -9 of the
# filtered bootstrap, live reshard with ring flip + prune, zero
# acked-write loss at fsync=always).
part:
	$(GO) test -race ./internal/partition
	$(GO) test -race -run 'PartitionChaos' ./cmd/bftagd

# obs runs the observability suites race-enabled: the deterministic-clock
# registry/exposition golden tests, the trace ring + propagation suites,
# the concurrent scrape stress, the end-to-end chaos trace stitch
# (client retry → proxy → primary engine/WAL → replica apply under one
# trace ID), the /healthz replication/durability field coverage, and the
# bfctl metrics/trace operator commands.
obs:
	$(GO) test -race ./internal/obs ./internal/metrics
	$(GO) test -race -run 'Trace|Healthz|ObsGauges|Metrics|Instrument|Prometheus|Span' ./internal/tagserver ./internal/proxy ./cmd/bfctl

# overload runs the admission/backpressure chaos suites race-enabled:
# coalescing equivalence vs the unbatched engine, sustained 2x-saturation
# shed-and-recover, priority-lane degradation, control-plane liveness
# under queue saturation, inflight-gate shedding at the proxy, Retry-After
# handling in the resilient client, and the SIGTERM drain-before-WAL-close
# ordering in the daemon.
overload:
	$(GO) test -race ./internal/admission
	$(GO) test -race -run 'Overload|Saturation|Shed|RetryAfter|Stall|Inflight|Drain|Bfload' ./internal/tagserver ./internal/proxy ./internal/resilience ./internal/faultinject ./cmd/bftagd ./cmd/bfload

# scrub runs the self-healing storage chaos suites race-enabled: at-rest
# decay detection and quarantine (scrubber + recovery paths), disk-fault
# degradation under injected EIO/ENOSPC/EROFS with fail-open/fail-closed
# policies and ENOSPC prune self-recovery, the 503 + Retry-After HTTP
# surface of a degraded node, replica anti-entropy digest exchange with
# divergence-triggered re-bootstrap, the digest set-algebra/codec suites,
# and the bfctl fsck / scrub-status operator commands.
scrub:
	$(GO) test -race -run 'Scrub|Quarantine|Degrad|DiskFault|ENOSPC|ReadOnly|Diverg|Digest|Fsck|VerifySegment' \
		./internal/store ./internal/wal ./internal/index ./internal/replication ./internal/tagserver ./cmd/bfctl

# policy runs the policy-language verification harness race-enabled: the
# analyzer/compiler/property suites with a coverage floor on the package
# that decides what may leave the browser, the golden byte-equivalence
# suite (compiled bitset verdicts identical to the semilattice across the
# seed scenario scripts, plus the alloc pins), the bfctl linter against
# every broken fixture (must flag each) and every shipping fixture (must
# pass), and a short fuzz smoke over both policy fuzz targets.
POLICY_COVER_FLOOR ?= 90
policy:
	$(GO) test -race -coverprofile=/tmp/policyfile.cover ./internal/policyfile
	@total=$$($(GO) tool cover -func=/tmp/policyfile.cover | awk '/^total:/ {gsub(/%/, "", $$3); print $$3}'); \
	echo "policy: internal/policyfile coverage $$total% (floor $(POLICY_COVER_FLOOR)%)"; \
	awk "BEGIN { exit !($$total >= $(POLICY_COVER_FLOOR)) }" || \
		{ echo "policy: coverage $$total% below floor $(POLICY_COVER_FLOOR)%"; exit 1; }
	$(GO) test -race -run 'Golden' ./internal/policy
	@for f in internal/policyfile/testdata/broken-*.json; do \
		if $(GO) run ./cmd/bfctl policy lint $$f >/dev/null 2>&1; then \
			echo "policy: lint passed broken fixture $$f"; exit 1; \
		fi; \
	done; echo "policy: all broken fixtures flagged"
	$(GO) run ./cmd/bfctl policy lint internal/policyfile/testdata/seed-webapps.json \
		internal/policyfile/testdata/enterprise-classes.json \
		internal/policyfile/testdata/encrypting-notes.json
	$(GO) test -fuzz 'FuzzParsePolicy' -fuzztime 5s ./internal/policyfile
	$(GO) test -fuzz 'FuzzCompilePolicy' -fuzztime 5s ./internal/policyfile

# vuln scans the module with govulncheck when it is installed; absent the
# tool (the default container has no network to fetch it), the gate is a
# no-op so check stays runnable offline.
vuln:
	@if command -v govulncheck >/dev/null 2>&1; then \
		govulncheck ./...; \
	else \
		echo "vuln: govulncheck not installed, skipping (go install golang.org/x/vuln/cmd/govulncheck@latest)"; \
	fi

# fuzz smoke: ten seconds per recovery parser (Go runs one fuzz target
# per invocation, hence one command each): the WAL segment reader, the
# legacy JSON snapshot loader, the BFLOWSNB binary checkpoint decoder,
# and the index digest codec the anti-entropy comparator trusts.
FUZZTIME ?= 10s
fuzz:
	$(GO) test -fuzz 'FuzzOpenSegment' -fuzztime $(FUZZTIME) ./internal/wal
	$(GO) test -fuzz 'FuzzLoadSnapshot' -fuzztime $(FUZZTIME) ./internal/store
	$(GO) test -fuzz 'FuzzRestoreBinarySnapshot' -fuzztime $(FUZZTIME) ./internal/store
	$(GO) test -fuzz 'FuzzDecodeDigest' -fuzztime $(FUZZTIME) ./internal/index
	$(GO) test -fuzz 'FuzzDecodeRing' -fuzztime $(FUZZTIME) ./internal/partition
	$(GO) test -fuzz 'FuzzParsePolicy' -fuzztime $(FUZZTIME) ./internal/policyfile
	$(GO) test -fuzz 'FuzzCompilePolicy' -fuzztime $(FUZZTIME) ./internal/policyfile

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

cover:
	$(GO) test -cover ./...

# bench runs the Algorithm 1 hot-path benchmarks (single-threaded allocs,
# goroutine-scaling series vs the single-lock ablation and the seed
# reference, batched flush) and records the comparison as BENCH_2.json.
bench:
	$(GO) test -run 'XXX' -bench 'Observe' -benchmem ./internal/disclosure
	$(GO) run ./cmd/bfbench -experiment hotpath -benchjson BENCH_2.json

# repl-bench runs the replication read-scaling benchmark (1 primary +
# 2 streaming replicas, write burst + check-QPS vs read-pool size) and
# records it as BENCH_4.json.
repl-bench:
	$(GO) run ./cmd/bfbench -experiment replication -benchjson BENCH_4.json

# obs-bench measures what the observability layer costs the Algorithm 1
# hot path (RED per call, full tracing, concurrent Prometheus scrape,
# and the batched server path the < 5% bar applies to) and records it
# as BENCH_5.json.
obs-bench:
	$(GO) run ./cmd/bfbench -experiment obs-overhead -benchjson BENCH_5.json

# load-bench ramps open-loop editors against an in-process tag service
# until the p99 SLO breaks and records the capacity as BENCH_6.json.
load-bench:
	$(GO) run ./cmd/bfload -editors 100 -step 25 -max-editors 600 -think 50ms -duration 3s -slo 250ms -out BENCH_6.json

# scrub-bench measures what the at-rest scrubber costs the journalled
# observe hot path (scrubber off vs an aggressive 1s cadence, the < 3%
# bar) and records it as BENCH_8.json.
scrub-bench:
	$(GO) run ./cmd/bfbench -experiment scrub-overhead -benchjson BENCH_8.json

# part-bench measures aggregate observe throughput as the keyspace
# spreads over 1/2/3 partitions of fixed per-node capacity behind the
# routing tier (the ≥1.6x-at-2-partitions bar) and records it as
# BENCH_9.json.
part-bench:
	$(GO) run ./cmd/bfbench -experiment partition -benchjson BENCH_9.json

# corpus is the memory-regression gate in check: load 1M distinct hashes
# (the paper's corpus is ~10M across 180 e-books), measure bytes/hash and
# checkpoint recovery, and FAIL if process RSS exceeds the budget. The
# legacy-JSON comparison is disabled here because materialising the JSON
# image would dominate the budget.
CORPUS_RSS_BUDGET_MB ?= 256
corpus:
	$(GO) run ./cmd/bfbench -experiment corpus -hashes 1000000 \
		-compare-json=false -rss-budget-mb $(CORPUS_RSS_BUDGET_MB)

# corpus-bench runs the full 1M/5M/10M ladder with the legacy-JSON
# recovery comparison and records it as BENCH_7.json, printing
# benchstat-style deltas against the previous recording.
corpus-bench:
	$(GO) run ./cmd/bfbench -experiment corpus -benchjson BENCH_7.json

# benchall runs every benchmark in the repository.
benchall:
	$(GO) test -bench=. -benchmem ./...

# Regenerate every table and figure of the paper's evaluation.
experiments:
	$(GO) run ./cmd/bfbench -experiment all

# Record the outputs the repro instructions ask for.
outputs:
	$(GO) test ./... 2>&1 | tee test_output.txt
	$(GO) test -bench=. -benchmem ./... 2>&1 | tee bench_output.txt

clean:
	$(GO) clean ./...
	rm -f test_output.txt bench_output.txt
